(* Cross-validation of the runtime against the executable semantics: the
   same random program runs on both, and the order of actions the real
   runtime executes on a handler must be one of the orders the exhaustive
   semantics explorer admits.  This ties the implementation (lib/core) to
   the model (lib/semantics) — the strongest form of "the runtime
   implements Fig. 3" we can test.

   Also: failure injection (a raising call must not take the processor
   down) and example-level smoke runs. *)

module R = Scoop.Runtime
module Reg = Scoop.Registration
module Sh = Scoop.Shared
module S = Qs_sched.Sched
module Sem = Qs_semantics

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A client program: a list of tagged operations on the single shared
   handler. *)
type op = Call of string | Query of string

let ops_gen client =
  let open QCheck2.Gen in
  let fresh =
    let c = ref 0 in
    fun kind ->
      incr c;
      Printf.sprintf "%s%d_%d" kind client !c
  in
  list_size (int_range 1 4)
    (oneof
       [
         map (fun () -> Call (fresh "c")) unit;
         map (fun () -> Query (fresh "q")) unit;
       ])

let program_gen = QCheck2.Gen.(pair (ops_gen 1) (ops_gen 2))

let print_program (a, b) =
  let s ops =
    String.concat ";"
      (List.map (function Call t -> t | Query t -> "?" ^ t) ops)
  in
  Printf.sprintf "client1=[%s] client2=[%s]" (s a) (s b)

(* The semantics side: explore all orders of actions executed on x. *)
let semantic_orders mode (ops1, ops2) =
  let x = 10 in
  let block ops =
    Sem.Syntax.Separate
      ( [ x ],
        Sem.Syntax.seq
          (List.map
             (function
               | Call tag -> Sem.Syntax.Call (x, tag)
               | Query tag -> Sem.Syntax.Query (x, tag))
             ops) )
  in
  let init = Sem.State.init [ (1, block ops1); (2, block ops2) ] in
  let traces, truncated =
    Sem.Explore.observable_traces ~max_runs:200_000 mode init
      ~filter:(Sem.Explore.on_handler x)
  in
  (traces, truncated)

(* The runtime side: execute the same program and observe the actual
   order of actions on the handler. *)
let runtime_order config (ops1, ops2) =
  R.run ~domains:2 ~config (fun rt ->
    let h = R.processor rt in
    let log = Sh.create h (ref []) in
    let latch = Qs_sched.Latch.create 2 in
    let client ops =
      S.spawn (fun () ->
        R.separate rt h (fun reg ->
          List.iter
            (function
              | Call tag -> Sh.apply reg log (fun l -> l := tag :: !l)
              | Query tag ->
                (* The query's observable effect on x: record its tag
                   while the handler is synced w.r.t. this client. *)
                Sh.get reg log (fun l -> l := tag :: !l))
            ops);
        Qs_sched.Latch.count_down latch)
    in
    client ops1;
    client ops2;
    Qs_sched.Latch.wait latch;
    R.separate rt h (fun reg -> Sh.get reg log (fun l -> List.rev !l)))

let mode_of_config config =
  if not (Scoop.Config.uses_qoq config) then Sem.Step.original
  else if config.Scoop.Config.client_query then Sem.Step.qs_client_exec
  else Sem.Step.qs

let prop_runtime_within_semantics config =
  QCheck2.Test.make ~count:25
    ~name:
      (Printf.sprintf "runtime orders are semantically admissible [%s]"
         config.Scoop.Config.name)
    ~print:print_program program_gen
    (fun program ->
      let traces, truncated = semantic_orders (mode_of_config config) program in
      let observed = runtime_order config program in
      (* If exploration was truncated we cannot decide membership; the
         generator keeps programs small enough that it never is. *)
      QCheck2.assume (not truncated);
      List.mem observed traces)

(* Repeat each runtime execution several times to catch different real
   interleavings. *)
let prop_runtime_within_semantics_repeated config =
  QCheck2.Test.make ~count:8
    ~name:
      (Printf.sprintf "repeated runs stay admissible [%s]"
         config.Scoop.Config.name)
    ~print:print_program program_gen
    (fun program ->
      let traces, truncated = semantic_orders (mode_of_config config) program in
      QCheck2.assume (not truncated);
      List.for_all
        (fun _ -> List.mem (runtime_order config program) traces)
        (List.init 5 Fun.id))

(* -- failure injection ----------------------------------------------------------- *)

let test_raising_call_does_not_kill_processor () =
  R.run (fun rt ->
    let h = R.processor rt in
    let cell = Sh.create h (ref 0) in
    (* The faulting registration is poisoned (dirty-processor rule): the
       failure surfaces at the next sync point... *)
    (try
       R.separate rt h (fun reg ->
         Reg.call reg (fun () -> failwith "injected fault");
         Sh.apply reg cell incr;
         match Sh.get reg cell (fun r -> !r) with
         | _ -> Alcotest.fail "poisoned query must raise"
         | exception Scoop.Handler_failure (_, Failure _) -> ())
     with Scoop.Handler_failure (_, Failure _) -> ());
    (* ...but the processor survives the fault (the logged incr was still
       served) and keeps serving later registrations. *)
    R.separate rt h (fun reg ->
      Sh.apply reg cell incr;
      check_int "next registration fine" 2 (Sh.get reg cell (fun r -> !r))))

let test_raising_call_other_clients_unaffected () =
  R.run ~domains:2 (fun rt ->
    let h = R.processor rt in
    let cell = Sh.create h (ref 0) in
    let latch = Qs_sched.Latch.create 4 in
    for i = 0 to 3 do
      S.spawn (fun () ->
        for _ = 1 to 25 do
          (* The chaos client logs its increment first (so it is always
             in the queue), then the fault.  The poison is
             per-registration: it may surface as Handler_failure at this
             block's exit — depending on how far the handler got — but
             never on the other clients. *)
          try
            R.separate rt h (fun reg ->
              Sh.apply reg cell incr;
              if i = 0 then Reg.call reg (fun () -> failwith "chaos"))
          with Scoop.Handler_failure (_, Failure _) -> ()
        done;
        Qs_sched.Latch.count_down latch)
    done;
    Qs_sched.Latch.wait latch;
    let total = R.separate rt h (fun reg -> Sh.get reg cell (fun r -> !r)) in
    check_int "all increments survive the chaos client" 100 total)

(* -- scheduler counters ------------------------------------------------------------ *)

let test_counters_reported () =
  let captured = ref None in
  S.run ~on_counters:(fun c -> captured := Some c) (fun () ->
    let l = Qs_sched.Latch.create 10 in
    for _ = 1 to 10 do
      S.spawn (fun () -> Qs_sched.Latch.count_down l)
    done;
    Qs_sched.Latch.wait l);
  match !captured with
  | Some c ->
    check_bool "dispatches counted" true (c.S.c_executed >= 10);
    check_bool "non-negative" true (c.S.c_handoffs >= 0 && c.S.c_parks >= 0)
  | None -> Alcotest.fail "on_counters not invoked"

let test_qoq_fewer_dispatches_than_lock () =
  (* The §4.3 claim, as a test: with contending clients, a query round
     costs strictly fewer fiber dispatches under the queue-of-queues
     runtime (reserve without blocking, one switch per query) than under
     the lock-based one (wait for the handler lock as well). *)
  let dispatches config =
    let captured = ref 0 in
    R.run ~config
      ~on_counters:(fun c -> captured := c.S.c_executed)
      (fun rt ->
        let h = R.processor rt in
        let cell = Sh.create h (ref 0) in
        let clients = 6 and rounds = 100 in
        let latch = Qs_sched.Latch.create clients in
        for _ = 1 to clients do
          S.spawn (fun () ->
            for _ = 1 to rounds do
              R.separate rt h (fun reg ->
                Sh.apply reg cell incr;
                ignore (Sh.get reg cell (fun r -> !r) : int))
            done;
            Qs_sched.Latch.count_down latch)
        done;
        Qs_sched.Latch.wait latch);
    !captured
  in
  let lock_based = dispatches Scoop.Config.none in
  let qoq = dispatches Scoop.Config.all in
  check_bool
    (Printf.sprintf "qoq (%d) < lock-based (%d)" qoq lock_based)
    true (qoq < lock_based)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "integration"
    [
      ( "runtime vs semantics",
        List.map
          (fun c -> qc (prop_runtime_within_semantics c))
          Scoop.Config.presets
        @ [
            qc (prop_runtime_within_semantics_repeated Scoop.Config.all);
            qc (prop_runtime_within_semantics_repeated Scoop.Config.none);
          ] );
      ( "failure injection",
        [
          Alcotest.test_case "raising call: processor survives" `Quick
            test_raising_call_does_not_kill_processor;
          Alcotest.test_case "raising call: others unaffected" `Quick
            test_raising_call_other_clients_unaffected;
        ] );
      ( "scheduler counters",
        [
          Alcotest.test_case "reported" `Quick test_counters_reported;
          Alcotest.test_case "qoq needs fewer dispatches (§4.3)" `Quick
            test_qoq_fewer_dispatches_than_lock;
        ] );
    ]
