(* Tests for the qs_obs observability substrate: the counter registry,
   the per-domain bounded event rings (multi-domain retention and
   counted overflow), the Chrome trace export, and the Stats/Trace
   compatibility views built on top of it. *)

module Counter = Qs_obs.Counter
module Sink = Qs_obs.Sink
module Chrome = Qs_obs.Chrome
module Json = Qs_obs.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* -- counters ---------------------------------------------------------------- *)

let test_counter_basics () =
  let r = Counter.registry () in
  let a = Counter.make r "a" in
  let b = Counter.make r "b" in
  Counter.incr a;
  Counter.add b 5;
  Counter.incr b;
  check_int "a" 1 (Counter.get a);
  check_int "b" 6 (Counter.get b);
  Alcotest.(check (list (pair string int)))
    "snapshot in registration order"
    [ ("a", 1); ("b", 6) ]
    (Counter.snapshot r)

let test_counter_duplicate_rejected () =
  let r = Counter.registry () in
  let _a = Counter.make r "dup" in
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Qs_obs.Counter.make: duplicate counter dup") (fun () ->
      ignore (Counter.make r "dup" : Counter.t))

let test_counter_diff () =
  let r = Counter.registry () in
  let a = Counter.make r "a" in
  let before = Counter.snapshot r in
  (* A counter registered after the first snapshot diffs against 0. *)
  let b = Counter.make r "b" in
  Counter.add a 3;
  Counter.add b 7;
  let d = Counter.diff (Counter.snapshot r) before in
  check_int "a delta" 3 (Counter.value d "a");
  check_int "b counts from zero" 7 (Counter.value d "b");
  check_int "absent name is zero" 0 (Counter.value d "missing")

let test_counter_multi_domain () =
  let r = Counter.registry () in
  let c = Counter.make r "hits" in
  let per = 10_000 and domains = 4 in
  let ds =
    List.init domains (fun _ ->
      Domain.spawn (fun () ->
        for _ = 1 to per do
          Counter.incr c
        done))
  in
  List.iter Domain.join ds;
  check_int "no lost increments" (per * domains) (Counter.get c)

(* -- histograms -------------------------------------------------------------- *)

module H = Qs_obs.Histogram

let test_histogram_basics () =
  let r = H.registry () in
  let lat = H.make r "lat" in
  let other = H.make r "other" in
  List.iter (H.record lat) [ 0; 1; 31; 32; 1000; 1_000_000 ];
  H.record other 5;
  let d = H.dist r "lat" in
  check_int "total" 6 d.H.total;
  check_int "sum" (0 + 1 + 31 + 32 + 1000 + 1_000_000) d.H.sum;
  check_int "no overflow" 0 d.H.overflow;
  (* Exact region: values below [sub_count] land in their own bucket. *)
  check_int "p50 within a bucket" (H.bound_of_index (H.index_of 31))
    (H.quantile d 0.5);
  check_int "q=1 bounds the max" (H.bound_of_index (H.index_of 1_000_000))
    (H.quantile d 1.0);
  check_bool "registration order" true
    (List.map fst (H.snapshot r) = [ "lat"; "other" ]);
  (* Empty and edge inputs answer, not raise. *)
  check_int "empty quantile" 0 (H.quantile H.zero 0.99);
  check_float "empty mean" 0.0 (H.mean H.zero)

let test_histogram_duplicate_rejected () =
  let r = H.registry () in
  let _h = H.make r "dup" in
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Qs_obs.Histogram.make: duplicate histogram dup")
    (fun () -> ignore (H.make r "dup" : H.t))

let test_histogram_overflow_and_clamp () =
  let r = H.registry () in
  let h = H.make r "edge" in
  H.record h (-5);
  H.record h H.max_value;
  H.record h (H.max_value + 1);
  H.record h max_int;
  let d = H.dist r "edge" in
  check_int "negatives clamp into bucket 0" 1 d.H.counts.(0);
  check_int "max_value still bucketed" 1 d.H.counts.(H.index_of H.max_value);
  check_int "beyond max_value counted as overflow" 2 d.H.overflow;
  check_int "overflow outside total" 2 d.H.total

let test_bucket_roundtrip () =
  (* Every value must fall inside its bucket's bounds, and the inclusive
     upper bound must map back to the same bucket. *)
  let check_v v =
    let i = H.index_of v in
    let hi = H.bound_of_index i in
    check_bool (Printf.sprintf "v=%d within bound" v) true (v <= hi);
    check_int (Printf.sprintf "bound of %d in same bucket" v) i (H.index_of hi);
    check_bool
      (Printf.sprintf "relative error at %d" v)
      true
      (hi - v <= max 1 (v / H.sub_count * 2))
  in
  for v = 0 to 4096 do
    check_v v
  done;
  let st = Random.State.make [| 7 |] in
  for _ = 1 to 10_000 do
    check_v (Random.State.full_int st H.max_value)
  done;
  check_v H.max_value;
  check_int "last bucket is the top" (H.buckets - 1) (H.index_of H.max_value)

(* Build a dist by recording into a scratch registry. *)
let dist_of_values vs =
  let r = H.registry () in
  let h = H.make r "x" in
  List.iter (H.record h) vs;
  H.dist r "x"

let dist_equal a b =
  a.H.counts = b.H.counts && a.H.total = b.H.total && a.H.sum = b.H.sum
  && a.H.overflow = b.H.overflow

let value_gen =
  (* Mix magnitudes so both the exact and the log-linear regions get
     exercised, plus the occasional overflow. *)
  QCheck2.Gen.(
    oneof
      [
        int_bound (H.sub_count - 1);
        int_bound 100_000;
        map (fun v -> v * 1_000_000) (int_bound 4_000_000);
        return (H.max_value + 1);
      ])

let prop_merge_assoc_comm =
  QCheck2.Test.make ~count:200
    ~name:"histogram merge is associative and commutative"
    QCheck2.Gen.(
      triple
        (list_size (int_bound 50) value_gen)
        (list_size (int_bound 50) value_gen)
        (list_size (int_bound 50) value_gen))
    (fun (xs, ys, zs) ->
      let a = dist_of_values xs
      and b = dist_of_values ys
      and c = dist_of_values zs in
      dist_equal (H.merge a (H.merge b c)) (H.merge (H.merge a b) c)
      && dist_equal (H.merge a b) (H.merge b a)
      && dist_equal (H.merge a H.zero) a
      (* ...and merging partitions equals recording everything at once. *)
      && dist_equal (H.merge a (H.merge b c))
           (dist_of_values (xs @ ys @ zs)))

let prop_quantile_vs_oracle =
  QCheck2.Test.make ~count:200
    ~name:"quantiles match the exact oracle within one bucket"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 200)
           (oneof [ int_bound (H.sub_count - 1); int_bound 50_000_000 ]))
        (oneofl [ 0.5; 0.9; 0.99; 0.999; 1.0 ]))
    (fun (vs, q) ->
      let d = dist_of_values vs in
      let sorted = List.sort Int.compare vs in
      let n = List.length sorted in
      let rank =
        Int.max 1 (Int.min n (int_of_float (Float.ceil (q *. float_of_int n))))
      in
      let exact = List.nth sorted (rank - 1) in
      let est = H.quantile d q in
      (* The estimate is the inclusive upper bound of the exact value's
         bucket: never below it, high by at most one bucket width. *)
      est >= exact && est - exact <= Int.max 1 (exact / H.sub_count * 2))

let test_histogram_multi_domain () =
  (* Concurrent recording with snapshots racing the writers: the final
     quiesced read accounts for every sample (total + overflow), and no
     racy mid-snapshot can exceed what was ever recorded. *)
  let r = H.registry () in
  let h = H.make r "race" in
  let per = 25_000 and domains = 4 in
  let mid_over = Atomic.make false in
  let writers =
    List.init domains (fun d ->
      Domain.spawn (fun () ->
        let st = Random.State.make [| d |] in
        for _ = 1 to per do
          let v =
            if Random.State.int st 100 = 0 then H.max_value + 1
            else Random.State.int st 1_000_000
          in
          H.record h v
        done))
  in
  let reader =
    Domain.spawn (fun () ->
      for _ = 1 to 50 do
        let d = H.read h in
        if d.H.total + d.H.overflow > per * domains then
          Atomic.set mid_over true;
        Domain.cpu_relax ()
      done)
  in
  List.iter Domain.join writers;
  Domain.join reader;
  let d = H.read h in
  check_int "quiesced read is exact" (per * domains)
    (d.H.total + d.H.overflow);
  check_bool "overflow present" true (d.H.overflow > 0);
  check_int "counts sum to total" d.H.total
    (Array.fold_left ( + ) 0 d.H.counts);
  check_bool "no mid-snapshot overcount" false (Atomic.get mid_over)

(* -- event rings ------------------------------------------------------------- *)

let test_sink_retains_below_capacity () =
  (* Hammer one sink from several domains; the total stays below each
     ring's capacity, so no event may be lost and none counted dropped. *)
  let capacity = 4096 in
  let sink = Sink.create ~capacity () in
  let per = 500 and domains = 4 in
  let ds =
    List.init domains (fun d ->
      Domain.spawn (fun () ->
        for i = 1 to per do
          Sink.instant sink ~cat:"test" ~name:"hit" ~track:d ~arg:i ()
        done))
  in
  List.iter Domain.join ds;
  check_int "all events retained" (per * domains) (Sink.recorded sink);
  check_int "none dropped" 0 (Sink.dropped sink);
  check_int "events lists them all" (per * domains)
    (List.length (Sink.events sink));
  (* Per-track accounting survives the merge. *)
  List.iter
    (fun d ->
      let n =
        List.length
          (List.filter
             (fun (e : Sink.event) -> e.track = d)
             (Sink.events sink))
      in
      check_int (Printf.sprintf "track %d complete" d) per n)
    (List.init domains Fun.id)

let test_sink_overflow_counted () =
  (* One domain, tiny ring: overflow must be counted, not silent. *)
  let capacity = 64 in
  let sink = Sink.create ~capacity () in
  let total = 1000 in
  for i = 1 to total do
    Sink.instant sink ~cat:"test" ~name:"hit" ~track:0 ~arg:i ()
  done;
  check_int "ring holds capacity" capacity (Sink.recorded sink);
  check_int "overflow counted" (total - capacity) (Sink.dropped sink);
  (* Wraparound keeps the newest events: the retained args are the last
     [capacity] ones. *)
  let args =
    List.map (fun (e : Sink.event) -> e.arg) (Sink.events sink)
    |> List.sort Int.compare
  in
  check_int "oldest retained arg" (total - capacity + 1) (List.hd args);
  check_int "newest retained arg" total (List.nth args (capacity - 1))

let test_sink_events_sorted () =
  let sink = Sink.create () in
  let ds =
    List.init 4 (fun d ->
      Domain.spawn (fun () ->
        for _ = 1 to 200 do
          Sink.instant sink ~cat:"test" ~name:"hit" ~track:d ()
        done))
  in
  List.iter Domain.join ds;
  let rec monotone = function
    | (a : Sink.event) :: (b : Sink.event) :: rest ->
      a.ts <= b.ts && (a.ts < b.ts || a.seq < b.seq) && monotone (b :: rest)
    | _ -> true
  in
  check_bool "merged chronologically, seq breaks ties" true
    (monotone (Sink.events sink))

let test_sink_span () =
  let sink = Sink.create () in
  let v =
    Sink.span sink ~cat:"test" ~name:"work" ~track:3 (fun () ->
      Unix.sleepf 0.002;
      17)
  in
  check_int "span returns the thunk's value" 17 v;
  (match Sink.events sink with
  | [ e ] ->
    check_bool "positive duration" true (e.dur >= 0.001);
    check_int "track" 3 e.track
  | es -> Alcotest.failf "expected 1 event, got %d" (List.length es));
  (* The span records even when the thunk raises. *)
  (try
     Sink.span sink ~cat:"test" ~name:"boom" ~track:3 (fun () ->
       failwith "boom")
   with Failure _ -> ());
  check_int "exceptional span recorded" 2 (Sink.recorded sink)

let test_sink_bad_capacity () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Qs_obs.Sink.create: capacity must be >= 1") (fun () ->
      ignore (Sink.create ~capacity:0 () : Sink.t))

(* -- chrome export ----------------------------------------------------------- *)

let test_chrome_export () =
  let sink = Sink.create () in
  Sink.instant sink ~cat:"sched" ~name:"steal" ~track:1 ();
  Sink.complete sink ~cat:"core" ~name:"batch" ~track:0 ~arg:4 ~ts:0.001
    ~dur:0.002 ();
  let s = Chrome.to_string ~counters:[ ("calls", 42) ] sink in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "has traceEvents" true (contains "\"traceEvents\"");
  check_bool "instant phase" true (contains "\"ph\":\"i\"");
  check_bool "complete phase" true (contains "\"ph\":\"X\"");
  check_bool "per-layer process metadata" true (contains "process_name");
  check_bool "embedded counters" true (contains "\"calls\":42");
  check_bool "overflow is reported" true (contains "\"droppedEvents\":0")

let test_json_escaping () =
  Alcotest.(check string)
    "escapes specials" "{\"k\\\"\\n\":\"a\\\\b\"}"
    (Json.to_string (Json.Obj [ ("k\"\n", Json.String "a\\b") ]));
  Alcotest.(check string)
    "non-finite floats become 0" "[0,0]"
    (Json.to_string (Json.List [ Json.Float nan; Json.Float infinity ]))

(* -- Stats compatibility view ------------------------------------------------ *)

let test_stats_diff_and_mean_batch () =
  let st = Scoop.Stats.create () in
  let before = Scoop.Stats.snapshot st in
  (* Zero-wakeup edge case: mean batch must be 0, not a NaN/div-by-zero. *)
  check_float "mean batch with no wakeups" 0.0 (Scoop.Stats.mean_batch before);
  Qs_obs.Counter.add st.Scoop.Stats.handler_wakeups 4;
  Qs_obs.Counter.add st.Scoop.Stats.batched_requests 10;
  Qs_obs.Counter.incr st.Scoop.Stats.calls;
  let d = Scoop.Stats.diff (Scoop.Stats.snapshot st) before in
  check_int "calls delta" 1 d.Scoop.Stats.s_calls;
  check_int "untouched field delta" 0 d.Scoop.Stats.s_queries;
  check_float "mean batch" 2.5 (Scoop.Stats.mean_batch d);
  (* The registry view exposes the same counters by name. *)
  check_int "assoc view" 1
    (Qs_obs.Counter.value (Scoop.Stats.assoc st) "calls");
  (* Diffing a snapshot against itself is all zeros. *)
  let s = Scoop.Stats.snapshot st in
  let z = Scoop.Stats.diff s s in
  check_int "self-diff wakeups" 0 z.Scoop.Stats.s_handler_wakeups;
  check_float "self-diff mean batch" 0.0 (Scoop.Stats.mean_batch z)

(* -- Trace compatibility view ------------------------------------------------ *)

let test_trace_summarize_fixture () =
  (* Hand-computed distributions over an explicit event list. *)
  let open Scoop.Trace in
  let seq = ref 0 in
  let e at proc kind =
    incr seq;
    { at; proc; client = 1; seq = !seq; kind }
  in
  let events =
    [
      e 0.0 0 Reserved;
      e 0.1 0 Call_logged;
      e 0.2 0 (Call_executed 0.010);
      e 0.3 0 Call_logged;
      e 0.4 0 (Call_executed 0.030);
      e 0.5 0 (Sync_round_trip 0.004);
      e 0.6 0 Sync_elided;
      e 0.7 1 Reserved;
      e 0.8 1 (Query_round_trip 0.002);
    ]
  in
  match summarize_events events with
  | [ p0; p1 ] ->
    check_int "p0 id" 0 p0.sp_proc;
    check_int "p0 reservations" 1 p0.sp_reservations;
    check_int "p0 calls" 2 p0.sp_calls;
    check_int "p0 latency count" 2 p0.sp_call_latency.count;
    check_float "p0 latency mean" 0.020 p0.sp_call_latency.mean;
    check_float "p0 latency max" 0.030 p0.sp_call_latency.max;
    check_int "p0 syncs" 1 p0.sp_sync_round_trip.count;
    check_float "p0 sync mean" 0.004 p0.sp_sync_round_trip.mean;
    check_int "p0 elided" 1 p0.sp_syncs_elided;
    check_int "p1 id" 1 p1.sp_proc;
    check_int "p1 queries" 1 p1.sp_query_round_trip.count;
    check_float "p1 query mean" 0.002 p1.sp_query_round_trip.mean;
    check_int "p1 no calls" 0 p1.sp_calls;
    (* Empty distribution: all-zero, not an error. *)
    check_int "p1 empty dist count" 0 p1.sp_call_latency.count;
    check_float "p1 empty dist mean" 0.0 p1.sp_call_latency.mean
  | ps -> Alcotest.failf "expected 2 processors, got %d" (List.length ps)

let test_trace_roundtrip_through_sink () =
  (* Record through the compat API, read back: kinds and durations
     survive the sink encoding, and [events] is oldest-first. *)
  let tr = Scoop.Trace.create () in
  Scoop.Trace.record tr ~proc:2 Scoop.Trace.Reserved;
  Scoop.Trace.record tr ~proc:2 Scoop.Trace.Call_logged;
  Scoop.Trace.record tr ~proc:2 (Scoop.Trace.Call_executed 0.005);
  Scoop.Trace.record tr ~proc:2 Scoop.Trace.Sync_elided;
  (match Scoop.Trace.events tr with
  | [ a; b; c; d ] ->
    check_bool "reserved first" true (a.Scoop.Trace.kind = Scoop.Trace.Reserved);
    check_bool "logged second" true
      (b.Scoop.Trace.kind = Scoop.Trace.Call_logged);
    (match c.Scoop.Trace.kind with
    | Scoop.Trace.Call_executed dur -> check_float "duration kept" 0.005 dur
    | _ -> Alcotest.fail "third event should be Call_executed");
    check_bool "elided last" true
      (d.Scoop.Trace.kind = Scoop.Trace.Sync_elided);
    check_bool "oldest first" true
      (a.Scoop.Trace.at <= b.Scoop.Trace.at
      && b.Scoop.Trace.at <= c.Scoop.Trace.at
      && c.Scoop.Trace.at <= d.Scoop.Trace.at)
  | es -> Alcotest.failf "expected 4 events, got %d" (List.length es));
  (* Foreign-layer events in the same sink are filtered out of the view. *)
  Sink.instant (Scoop.Trace.sink tr) ~cat:"sched" ~name:"steal" ~track:0 ();
  check_int "sched events invisible to Trace" 4
    (List.length (Scoop.Trace.events tr))

(* -- whole-stack integration -------------------------------------------------- *)

let test_runtime_obs_three_layers () =
  (* One traced run must produce events from the scheduler, the handler
     and the client layers in the same sink. *)
  let sink = Sink.create () in
  Scoop.Runtime.run ~domains:2 ~obs:sink (fun rt ->
    let h = Scoop.Runtime.processor rt in
    let cell = Scoop.Shared.create h (ref 0) in
    for _ = 1 to 50 do
      Scoop.Runtime.separate rt h (fun reg ->
        Scoop.Shared.apply reg cell incr;
        ignore (Scoop.Shared.get reg cell (fun r -> !r) : int))
    done);
  let cats =
    List.sort_uniq String.compare
      (List.map (fun (e : Sink.event) -> e.cat) (Sink.events sink))
  in
  List.iter
    (fun layer ->
      check_bool (layer ^ " events present") true (List.mem layer cats))
    [ "sched"; "core"; "client" ];
  check_int "nothing dropped" 0 (Sink.dropped sink)

let () =
  Alcotest.run "qs_obs"
    [
      ( "counters",
        [
          Alcotest.test_case "basics" `Quick test_counter_basics;
          Alcotest.test_case "duplicate rejected" `Quick
            test_counter_duplicate_rejected;
          Alcotest.test_case "diff" `Quick test_counter_diff;
          Alcotest.test_case "multi-domain increments" `Quick
            test_counter_multi_domain;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "basics" `Quick test_histogram_basics;
          Alcotest.test_case "duplicate rejected" `Quick
            test_histogram_duplicate_rejected;
          Alcotest.test_case "overflow and clamp" `Quick
            test_histogram_overflow_and_clamp;
          Alcotest.test_case "bucket roundtrip" `Quick test_bucket_roundtrip;
          QCheck_alcotest.to_alcotest prop_merge_assoc_comm;
          QCheck_alcotest.to_alcotest prop_quantile_vs_oracle;
          Alcotest.test_case "multi-domain record vs snapshot" `Quick
            test_histogram_multi_domain;
        ] );
      ( "event rings",
        [
          Alcotest.test_case "retention below capacity" `Quick
            test_sink_retains_below_capacity;
          Alcotest.test_case "overflow counted" `Quick
            test_sink_overflow_counted;
          Alcotest.test_case "events sorted" `Quick test_sink_events_sorted;
          Alcotest.test_case "span" `Quick test_sink_span;
          Alcotest.test_case "bad capacity" `Quick test_sink_bad_capacity;
        ] );
      ( "chrome export",
        [
          Alcotest.test_case "structure" `Quick test_chrome_export;
          Alcotest.test_case "json escaping" `Quick test_json_escaping;
        ] );
      ( "compat views",
        [
          Alcotest.test_case "stats diff and mean batch" `Quick
            test_stats_diff_and_mean_batch;
          Alcotest.test_case "trace summarize fixture" `Quick
            test_trace_summarize_fixture;
          Alcotest.test_case "trace roundtrip through sink" `Quick
            test_trace_roundtrip_through_sink;
        ] );
      ( "integration",
        [
          Alcotest.test_case "three layers in one sink" `Quick
            test_runtime_obs_three_layers;
        ] );
    ]
