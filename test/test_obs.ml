(* Tests for the qs_obs observability substrate: the counter registry,
   the per-domain bounded event rings (multi-domain retention and
   counted overflow), the Chrome trace export, and the Stats/Trace
   compatibility views built on top of it. *)

module Counter = Qs_obs.Counter
module Sink = Qs_obs.Sink
module Chrome = Qs_obs.Chrome
module Json = Qs_obs.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* -- counters ---------------------------------------------------------------- *)

let test_counter_basics () =
  let r = Counter.registry () in
  let a = Counter.make r "a" in
  let b = Counter.make r "b" in
  Counter.incr a;
  Counter.add b 5;
  Counter.incr b;
  check_int "a" 1 (Counter.get a);
  check_int "b" 6 (Counter.get b);
  Alcotest.(check (list (pair string int)))
    "snapshot in registration order"
    [ ("a", 1); ("b", 6) ]
    (Counter.snapshot r)

let test_counter_duplicate_rejected () =
  let r = Counter.registry () in
  let _a = Counter.make r "dup" in
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Qs_obs.Counter.make: duplicate counter dup") (fun () ->
      ignore (Counter.make r "dup" : Counter.t))

let test_counter_diff () =
  let r = Counter.registry () in
  let a = Counter.make r "a" in
  let before = Counter.snapshot r in
  (* A counter registered after the first snapshot diffs against 0. *)
  let b = Counter.make r "b" in
  Counter.add a 3;
  Counter.add b 7;
  let d = Counter.diff (Counter.snapshot r) before in
  check_int "a delta" 3 (Counter.value d "a");
  check_int "b counts from zero" 7 (Counter.value d "b");
  check_int "absent name is zero" 0 (Counter.value d "missing")

let test_counter_multi_domain () =
  let r = Counter.registry () in
  let c = Counter.make r "hits" in
  let per = 10_000 and domains = 4 in
  let ds =
    List.init domains (fun _ ->
      Domain.spawn (fun () ->
        for _ = 1 to per do
          Counter.incr c
        done))
  in
  List.iter Domain.join ds;
  check_int "no lost increments" (per * domains) (Counter.get c)

(* -- event rings ------------------------------------------------------------- *)

let test_sink_retains_below_capacity () =
  (* Hammer one sink from several domains; the total stays below each
     ring's capacity, so no event may be lost and none counted dropped. *)
  let capacity = 4096 in
  let sink = Sink.create ~capacity () in
  let per = 500 and domains = 4 in
  let ds =
    List.init domains (fun d ->
      Domain.spawn (fun () ->
        for i = 1 to per do
          Sink.instant sink ~cat:"test" ~name:"hit" ~track:d ~arg:i ()
        done))
  in
  List.iter Domain.join ds;
  check_int "all events retained" (per * domains) (Sink.recorded sink);
  check_int "none dropped" 0 (Sink.dropped sink);
  check_int "events lists them all" (per * domains)
    (List.length (Sink.events sink));
  (* Per-track accounting survives the merge. *)
  List.iter
    (fun d ->
      let n =
        List.length
          (List.filter
             (fun (e : Sink.event) -> e.track = d)
             (Sink.events sink))
      in
      check_int (Printf.sprintf "track %d complete" d) per n)
    (List.init domains Fun.id)

let test_sink_overflow_counted () =
  (* One domain, tiny ring: overflow must be counted, not silent. *)
  let capacity = 64 in
  let sink = Sink.create ~capacity () in
  let total = 1000 in
  for i = 1 to total do
    Sink.instant sink ~cat:"test" ~name:"hit" ~track:0 ~arg:i ()
  done;
  check_int "ring holds capacity" capacity (Sink.recorded sink);
  check_int "overflow counted" (total - capacity) (Sink.dropped sink);
  (* Wraparound keeps the newest events: the retained args are the last
     [capacity] ones. *)
  let args =
    List.map (fun (e : Sink.event) -> e.arg) (Sink.events sink)
    |> List.sort Int.compare
  in
  check_int "oldest retained arg" (total - capacity + 1) (List.hd args);
  check_int "newest retained arg" total (List.nth args (capacity - 1))

let test_sink_events_sorted () =
  let sink = Sink.create () in
  let ds =
    List.init 4 (fun d ->
      Domain.spawn (fun () ->
        for _ = 1 to 200 do
          Sink.instant sink ~cat:"test" ~name:"hit" ~track:d ()
        done))
  in
  List.iter Domain.join ds;
  let rec monotone = function
    | (a : Sink.event) :: (b : Sink.event) :: rest ->
      a.ts <= b.ts && (a.ts < b.ts || a.seq < b.seq) && monotone (b :: rest)
    | _ -> true
  in
  check_bool "merged chronologically, seq breaks ties" true
    (monotone (Sink.events sink))

let test_sink_span () =
  let sink = Sink.create () in
  let v =
    Sink.span sink ~cat:"test" ~name:"work" ~track:3 (fun () ->
      Unix.sleepf 0.002;
      17)
  in
  check_int "span returns the thunk's value" 17 v;
  (match Sink.events sink with
  | [ e ] ->
    check_bool "positive duration" true (e.dur >= 0.001);
    check_int "track" 3 e.track
  | es -> Alcotest.failf "expected 1 event, got %d" (List.length es));
  (* The span records even when the thunk raises. *)
  (try
     Sink.span sink ~cat:"test" ~name:"boom" ~track:3 (fun () ->
       failwith "boom")
   with Failure _ -> ());
  check_int "exceptional span recorded" 2 (Sink.recorded sink)

let test_sink_bad_capacity () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Qs_obs.Sink.create: capacity must be >= 1") (fun () ->
      ignore (Sink.create ~capacity:0 () : Sink.t))

(* -- chrome export ----------------------------------------------------------- *)

let test_chrome_export () =
  let sink = Sink.create () in
  Sink.instant sink ~cat:"sched" ~name:"steal" ~track:1 ();
  Sink.complete sink ~cat:"core" ~name:"batch" ~track:0 ~arg:4 ~ts:0.001
    ~dur:0.002 ();
  let s = Chrome.to_string ~counters:[ ("calls", 42) ] sink in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "has traceEvents" true (contains "\"traceEvents\"");
  check_bool "instant phase" true (contains "\"ph\":\"i\"");
  check_bool "complete phase" true (contains "\"ph\":\"X\"");
  check_bool "per-layer process metadata" true (contains "process_name");
  check_bool "embedded counters" true (contains "\"calls\":42");
  check_bool "overflow is reported" true (contains "\"droppedEvents\":0")

let test_json_escaping () =
  Alcotest.(check string)
    "escapes specials" "{\"k\\\"\\n\":\"a\\\\b\"}"
    (Json.to_string (Json.Obj [ ("k\"\n", Json.String "a\\b") ]));
  Alcotest.(check string)
    "non-finite floats become 0" "[0,0]"
    (Json.to_string (Json.List [ Json.Float nan; Json.Float infinity ]))

(* -- Stats compatibility view ------------------------------------------------ *)

let test_stats_diff_and_mean_batch () =
  let st = Scoop.Stats.create () in
  let before = Scoop.Stats.snapshot st in
  (* Zero-wakeup edge case: mean batch must be 0, not a NaN/div-by-zero. *)
  check_float "mean batch with no wakeups" 0.0 (Scoop.Stats.mean_batch before);
  Qs_obs.Counter.add st.Scoop.Stats.handler_wakeups 4;
  Qs_obs.Counter.add st.Scoop.Stats.batched_requests 10;
  Qs_obs.Counter.incr st.Scoop.Stats.calls;
  let d = Scoop.Stats.diff (Scoop.Stats.snapshot st) before in
  check_int "calls delta" 1 d.Scoop.Stats.s_calls;
  check_int "untouched field delta" 0 d.Scoop.Stats.s_queries;
  check_float "mean batch" 2.5 (Scoop.Stats.mean_batch d);
  (* The registry view exposes the same counters by name. *)
  check_int "assoc view" 1
    (Qs_obs.Counter.value (Scoop.Stats.assoc st) "calls");
  (* Diffing a snapshot against itself is all zeros. *)
  let s = Scoop.Stats.snapshot st in
  let z = Scoop.Stats.diff s s in
  check_int "self-diff wakeups" 0 z.Scoop.Stats.s_handler_wakeups;
  check_float "self-diff mean batch" 0.0 (Scoop.Stats.mean_batch z)

(* -- Trace compatibility view ------------------------------------------------ *)

let test_trace_summarize_fixture () =
  (* Hand-computed distributions over an explicit event list. *)
  let open Scoop.Trace in
  let e at proc kind = { at; proc; kind } in
  let events =
    [
      e 0.0 0 Reserved;
      e 0.1 0 Call_logged;
      e 0.2 0 (Call_executed 0.010);
      e 0.3 0 Call_logged;
      e 0.4 0 (Call_executed 0.030);
      e 0.5 0 (Sync_round_trip 0.004);
      e 0.6 0 Sync_elided;
      e 0.7 1 Reserved;
      e 0.8 1 (Query_round_trip 0.002);
    ]
  in
  match summarize_events events with
  | [ p0; p1 ] ->
    check_int "p0 id" 0 p0.sp_proc;
    check_int "p0 reservations" 1 p0.sp_reservations;
    check_int "p0 calls" 2 p0.sp_calls;
    check_int "p0 latency count" 2 p0.sp_call_latency.count;
    check_float "p0 latency mean" 0.020 p0.sp_call_latency.mean;
    check_float "p0 latency max" 0.030 p0.sp_call_latency.max;
    check_int "p0 syncs" 1 p0.sp_sync_round_trip.count;
    check_float "p0 sync mean" 0.004 p0.sp_sync_round_trip.mean;
    check_int "p0 elided" 1 p0.sp_syncs_elided;
    check_int "p1 id" 1 p1.sp_proc;
    check_int "p1 queries" 1 p1.sp_query_round_trip.count;
    check_float "p1 query mean" 0.002 p1.sp_query_round_trip.mean;
    check_int "p1 no calls" 0 p1.sp_calls;
    (* Empty distribution: all-zero, not an error. *)
    check_int "p1 empty dist count" 0 p1.sp_call_latency.count;
    check_float "p1 empty dist mean" 0.0 p1.sp_call_latency.mean
  | ps -> Alcotest.failf "expected 2 processors, got %d" (List.length ps)

let test_trace_roundtrip_through_sink () =
  (* Record through the compat API, read back: kinds and durations
     survive the sink encoding, and [events] is oldest-first. *)
  let tr = Scoop.Trace.create () in
  Scoop.Trace.record tr ~proc:2 Scoop.Trace.Reserved;
  Scoop.Trace.record tr ~proc:2 Scoop.Trace.Call_logged;
  Scoop.Trace.record tr ~proc:2 (Scoop.Trace.Call_executed 0.005);
  Scoop.Trace.record tr ~proc:2 Scoop.Trace.Sync_elided;
  (match Scoop.Trace.events tr with
  | [ a; b; c; d ] ->
    check_bool "reserved first" true (a.Scoop.Trace.kind = Scoop.Trace.Reserved);
    check_bool "logged second" true
      (b.Scoop.Trace.kind = Scoop.Trace.Call_logged);
    (match c.Scoop.Trace.kind with
    | Scoop.Trace.Call_executed dur -> check_float "duration kept" 0.005 dur
    | _ -> Alcotest.fail "third event should be Call_executed");
    check_bool "elided last" true
      (d.Scoop.Trace.kind = Scoop.Trace.Sync_elided);
    check_bool "oldest first" true
      (a.Scoop.Trace.at <= b.Scoop.Trace.at
      && b.Scoop.Trace.at <= c.Scoop.Trace.at
      && c.Scoop.Trace.at <= d.Scoop.Trace.at)
  | es -> Alcotest.failf "expected 4 events, got %d" (List.length es));
  (* Foreign-layer events in the same sink are filtered out of the view. *)
  Sink.instant (Scoop.Trace.sink tr) ~cat:"sched" ~name:"steal" ~track:0 ();
  check_int "sched events invisible to Trace" 4
    (List.length (Scoop.Trace.events tr))

(* -- whole-stack integration -------------------------------------------------- *)

let test_runtime_obs_three_layers () =
  (* One traced run must produce events from the scheduler, the handler
     and the client layers in the same sink. *)
  let sink = Sink.create () in
  Scoop.Runtime.run ~domains:2 ~obs:sink (fun rt ->
    let h = Scoop.Runtime.processor rt in
    let cell = Scoop.Shared.create h (ref 0) in
    for _ = 1 to 50 do
      Scoop.Runtime.separate rt h (fun reg ->
        Scoop.Shared.apply reg cell incr;
        ignore (Scoop.Shared.get reg cell (fun r -> !r) : int))
    done);
  let cats =
    List.sort_uniq String.compare
      (List.map (fun (e : Sink.event) -> e.cat) (Sink.events sink))
  in
  List.iter
    (fun layer ->
      check_bool (layer ^ " events present") true (List.mem layer cats))
    [ "sched"; "core"; "client" ];
  check_int "nothing dropped" 0 (Sink.dropped sink)

let () =
  Alcotest.run "qs_obs"
    [
      ( "counters",
        [
          Alcotest.test_case "basics" `Quick test_counter_basics;
          Alcotest.test_case "duplicate rejected" `Quick
            test_counter_duplicate_rejected;
          Alcotest.test_case "diff" `Quick test_counter_diff;
          Alcotest.test_case "multi-domain increments" `Quick
            test_counter_multi_domain;
        ] );
      ( "event rings",
        [
          Alcotest.test_case "retention below capacity" `Quick
            test_sink_retains_below_capacity;
          Alcotest.test_case "overflow counted" `Quick
            test_sink_overflow_counted;
          Alcotest.test_case "events sorted" `Quick test_sink_events_sorted;
          Alcotest.test_case "span" `Quick test_sink_span;
          Alcotest.test_case "bad capacity" `Quick test_sink_bad_capacity;
        ] );
      ( "chrome export",
        [
          Alcotest.test_case "structure" `Quick test_chrome_export;
          Alcotest.test_case "json escaping" `Quick test_json_escaping;
        ] );
      ( "compat views",
        [
          Alcotest.test_case "stats diff and mean batch" `Quick
            test_stats_diff_and_mean_batch;
          Alcotest.test_case "trace summarize fixture" `Quick
            test_trace_summarize_fixture;
          Alcotest.test_case "trace roundtrip through sink" `Quick
            test_trace_roundtrip_through_sink;
        ] );
      ( "integration",
        [
          Alcotest.test_case "three layers in one sink" `Quick
            test_runtime_obs_three_layers;
        ] );
    ]
