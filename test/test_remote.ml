(* Tests for the socket-backed message queue (the §7 transport
   exploration): framing, FIFO order, partial reads/writes on messages
   larger than the socket buffer, multiple producers, close semantics. *)

module Sq = Qs_remote.Socket_queue
module S = Qs_sched.Sched
module Latch = Qs_sched.Latch

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_queue f =
  S.run (fun () ->
    let q = Sq.create () in
    Fun.protect ~finally:(fun () -> Sq.destroy q) (fun () -> f q))

let test_fifo () =
  with_queue (fun q ->
    let received = ref [] in
    S.spawn (fun () ->
      for i = 1 to 100 do
        Sq.enqueue q i
      done;
      Sq.close_writer q);
    let rec drain () =
      match Sq.dequeue q with
      | Some v ->
        received := v :: !received;
        drain ()
      | None -> ()
    in
    drain ();
    Alcotest.(check (list int)) "fifo through the socket"
      (List.init 100 (fun i -> i + 1))
      (List.rev !received))

let test_frame_counters () =
  with_queue (fun q ->
    let n = 100 in
    S.spawn (fun () ->
      for i = 1 to n do
        Sq.enqueue q i
      done;
      Sq.close_writer q);
    let rec drain () =
      match Sq.dequeue q with Some _ -> drain () | None -> ()
    in
    drain ();
    let c = Sq.counters q in
    let v = Qs_obs.Counter.value c in
    check_int "one frame per message sent" n (v "frames_sent");
    check_int "every frame received" n (v "frames_received");
    check_int "both directions saw the same bytes" (v "bytes_sent")
      (v "bytes_received");
    (* Each frame is an 8-byte header plus a marshalled int. *)
    check_bool "bytes cover the headers" true (v "bytes_sent" >= 8 * n))

let test_structured_messages () =
  with_queue (fun q ->
    S.spawn (fun () ->
      Sq.enqueue q (`Row (3, [| 1.5; 2.5 |]));
      Sq.enqueue q (`Done "worker-7");
      Sq.close_writer q);
    (match Sq.dequeue q with
    | Some (`Row (i, a)) ->
      check_int "row index" 3 i;
      check_bool "payload intact" true (a = [| 1.5; 2.5 |])
    | _ -> Alcotest.fail "expected Row");
    (match Sq.dequeue q with
    | Some (`Done who) -> Alcotest.(check string) "who" "worker-7" who
    | _ -> Alcotest.fail "expected Done");
    check_bool "drained" true (Sq.dequeue q = None))

let test_large_messages () =
  (* Bigger than any default socket buffer: exercises partial writes on
     the producer and reassembly on the consumer. *)
  with_queue (fun q ->
    let big = Array.init 200_000 (fun i -> i) in
    S.spawn (fun () ->
      Sq.enqueue q big;
      Sq.enqueue q (Array.map (fun x -> -x) big);
      Sq.close_writer q);
    (match Sq.dequeue q with
    | Some a -> check_bool "first intact" true (a = big)
    | None -> Alcotest.fail "missing first");
    (match Sq.dequeue q with
    | Some a -> check_bool "second intact" true (a.(7) = -7)
    | None -> Alcotest.fail "missing second"))

let test_copy_semantics () =
  (* Marshalling copies: mutating the sender's array after enqueue must
     not affect the received message — the "expanded class" copying the
     transport gives for free. *)
  with_queue (fun q ->
    let payload = [| 1; 2; 3 |] in
    S.spawn (fun () ->
      Sq.enqueue q payload;
      payload.(0) <- 99;
      Sq.close_writer q);
    match Sq.dequeue q with
    | Some a -> check_int "receiver kept the copy" 1 a.(0)
    | None -> Alcotest.fail "missing message")

let test_multiple_producers () =
  with_queue (fun q ->
    let producers = 4 and per = 200 in
    let latch = Latch.create producers in
    for p = 1 to producers do
      S.spawn (fun () ->
        for i = 1 to per do
          Sq.enqueue q ((p * 1000) + i)
        done;
        Latch.count_down latch)
    done;
    S.spawn (fun () ->
      Latch.wait latch;
      Sq.close_writer q);
    let count = ref 0 and sum = ref 0 in
    let rec drain () =
      match Sq.dequeue q with
      | Some v ->
        incr count;
        sum := !sum + v;
        drain ()
      | None -> ()
    in
    drain ();
    check_int "all frames arrived" (producers * per) !count;
    let expected =
      List.fold_left ( + ) 0
        (List.concat_map
           (fun p -> List.init per (fun i -> (p * 1000) + i + 1))
           [ 1; 2; 3; 4 ])
    in
    check_int "no frame corruption" expected !sum)

let test_enqueue_after_close () =
  with_queue (fun q ->
    Sq.enqueue q 1;
    Sq.close_writer q;
    check_bool "raises" true
      (try
         Sq.enqueue q 2;
         false
       with Sq.Closed -> true);
    check_bool "pending delivered" true (Sq.dequeue q = Some 1);
    check_bool "then eof" true (Sq.dequeue q = None))

let test_ping_pong () =
  (* Two socket queues as a bidirectional channel between fibers. *)
  with_queue (fun there ->
    let back = Sq.create () in
    Fun.protect ~finally:(fun () -> Sq.destroy back) (fun () ->
      S.spawn (fun () ->
        let rec serve () =
          match Sq.dequeue there with
          | Some v ->
            Sq.enqueue back (v * 2);
            serve ()
          | None -> Sq.close_writer back
        in
        serve ());
      for i = 1 to 50 do
        Sq.enqueue there i
      done;
      Sq.close_writer there;
      let acc = ref 0 in
      let rec drain () =
        match Sq.dequeue back with
        | Some v ->
          acc := !acc + v;
          drain ()
        | None -> ()
      in
      drain ();
      check_int "round trips" (2 * (50 * 51 / 2)) !acc))

let write_raw fd bytes =
  let len = Bytes.length bytes in
  let rec go off =
    if off < len then
      match Unix.write fd bytes off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        S.yield ();
        go off
  in
  go 0

let test_truncated_frame () =
  (* A writer that dies mid-frame must surface as [Truncated_frame], not
     as a clean end-of-stream: send one good message, then a frame header
     promising more bytes than will ever arrive, then close the write
     side. *)
  with_queue (fun q ->
    let _, write_fd = Sq.fds q in
    S.spawn (fun () ->
      Sq.enqueue q 42;
      let torn = Bytes.create 10 in
      Bytes.set_int64_le torn 0 1000L (* header: 1000-byte payload *);
      write_raw write_fd torn (* ...but only 2 bytes of it follow *);
      Sq.close_writer q);
    check_bool "good frame still delivered" true (Sq.dequeue q = Some 42);
    check_bool "torn frame raises" true
      (try
         ignore (Sq.dequeue q : int option);
         false
       with Sq.Truncated_frame -> true);
    let v = Qs_obs.Counter.value (Sq.counters q) in
    check_int "counted once" 1 (v "truncated_frames");
    check_bool "raises again on retry" true
      (try
         ignore (Sq.dequeue q : int option);
         false
       with Sq.Truncated_frame -> true);
    check_int "still counted once" 1 (v "truncated_frames"))

let test_header_only_truncation () =
  (* The smallest torn stream: EOF after a few header bytes. *)
  with_queue (fun q ->
    let _, write_fd = Sq.fds q in
    S.spawn (fun () ->
      write_raw write_fd (Bytes.make 3 'x');
      Sq.close_writer q);
    check_bool "raises" true
      (try
         ignore (Sq.dequeue q : int option);
         false
       with Sq.Truncated_frame -> true))

let prop_any_payload =
  QCheck2.Test.make ~count:50 ~name:"arbitrary int lists survive the socket"
    QCheck2.Gen.(list (list small_int))
    (fun messages ->
      S.run (fun () ->
        let q = Sq.create () in
        Fun.protect ~finally:(fun () -> Sq.destroy q) (fun () ->
          S.spawn (fun () ->
            List.iter (Sq.enqueue q) messages;
            Sq.close_writer q);
          let rec drain acc =
            match Sq.dequeue q with
            | Some v -> drain (v :: acc)
            | None -> List.rev acc
          in
          drain [] = messages)))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "qs_remote"
    [
      ( "socket queue",
        [
          Alcotest.test_case "fifo" `Quick test_fifo;
          Alcotest.test_case "frame counters" `Quick test_frame_counters;
          Alcotest.test_case "structured messages" `Quick test_structured_messages;
          Alcotest.test_case "large messages" `Quick test_large_messages;
          Alcotest.test_case "copy semantics" `Quick test_copy_semantics;
          Alcotest.test_case "multiple producers" `Quick test_multiple_producers;
          Alcotest.test_case "enqueue after close" `Quick test_enqueue_after_close;
          Alcotest.test_case "ping pong" `Quick test_ping_pong;
          Alcotest.test_case "truncated frame" `Quick test_truncated_frame;
          Alcotest.test_case "header-only truncation" `Quick
            test_header_only_truncation;
        ] );
      ("properties", [ qc prop_any_payload ]);
    ]
