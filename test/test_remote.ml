(* Tests for the socket-backed message queue (the §7 transport
   exploration): framing, FIFO order, partial reads/writes on messages
   larger than the socket buffer, multiple producers, close semantics. *)

module Sq = Qs_remote.Socket_queue
module S = Qs_sched.Sched
module Latch = Qs_sched.Latch

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_queue f =
  S.run (fun () ->
    let q = Sq.create () in
    Fun.protect ~finally:(fun () -> Sq.destroy q) (fun () -> f q))

let test_fifo () =
  with_queue (fun q ->
    let received = ref [] in
    S.spawn (fun () ->
      for i = 1 to 100 do
        Sq.enqueue q i
      done;
      Sq.close_writer q);
    let rec drain () =
      match Sq.dequeue q with
      | Some v ->
        received := v :: !received;
        drain ()
      | None -> ()
    in
    drain ();
    Alcotest.(check (list int)) "fifo through the socket"
      (List.init 100 (fun i -> i + 1))
      (List.rev !received))

let test_frame_counters () =
  with_queue (fun q ->
    let n = 100 in
    S.spawn (fun () ->
      for i = 1 to n do
        Sq.enqueue q i
      done;
      Sq.close_writer q);
    let rec drain () =
      match Sq.dequeue q with Some _ -> drain () | None -> ()
    in
    drain ();
    let c = Sq.counters q in
    let v = Qs_obs.Counter.value c in
    check_int "one frame per message sent" n (v "frames_sent");
    check_int "every frame received" n (v "frames_received");
    check_int "both directions saw the same bytes" (v "bytes_sent")
      (v "bytes_received");
    (* Each frame is an 8-byte header plus a marshalled int. *)
    check_bool "bytes cover the headers" true (v "bytes_sent" >= 8 * n))

let test_structured_messages () =
  with_queue (fun q ->
    S.spawn (fun () ->
      Sq.enqueue q (`Row (3, [| 1.5; 2.5 |]));
      Sq.enqueue q (`Done "worker-7");
      Sq.close_writer q);
    (match Sq.dequeue q with
    | Some (`Row (i, a)) ->
      check_int "row index" 3 i;
      check_bool "payload intact" true (a = [| 1.5; 2.5 |])
    | _ -> Alcotest.fail "expected Row");
    (match Sq.dequeue q with
    | Some (`Done who) -> Alcotest.(check string) "who" "worker-7" who
    | _ -> Alcotest.fail "expected Done");
    check_bool "drained" true (Sq.dequeue q = None))

let test_large_messages () =
  (* Bigger than any default socket buffer: exercises partial writes on
     the producer and reassembly on the consumer. *)
  with_queue (fun q ->
    let big = Array.init 200_000 (fun i -> i) in
    S.spawn (fun () ->
      Sq.enqueue q big;
      Sq.enqueue q (Array.map (fun x -> -x) big);
      Sq.close_writer q);
    (match Sq.dequeue q with
    | Some a -> check_bool "first intact" true (a = big)
    | None -> Alcotest.fail "missing first");
    (match Sq.dequeue q with
    | Some a -> check_bool "second intact" true (a.(7) = -7)
    | None -> Alcotest.fail "missing second"))

let test_copy_semantics () =
  (* Marshalling copies: mutating the sender's array after enqueue must
     not affect the received message — the "expanded class" copying the
     transport gives for free. *)
  with_queue (fun q ->
    let payload = [| 1; 2; 3 |] in
    S.spawn (fun () ->
      Sq.enqueue q payload;
      payload.(0) <- 99;
      Sq.close_writer q);
    match Sq.dequeue q with
    | Some a -> check_int "receiver kept the copy" 1 a.(0)
    | None -> Alcotest.fail "missing message")

let test_multiple_producers () =
  with_queue (fun q ->
    let producers = 4 and per = 200 in
    let latch = Latch.create producers in
    for p = 1 to producers do
      S.spawn (fun () ->
        for i = 1 to per do
          Sq.enqueue q ((p * 1000) + i)
        done;
        Latch.count_down latch)
    done;
    S.spawn (fun () ->
      Latch.wait latch;
      Sq.close_writer q);
    let count = ref 0 and sum = ref 0 in
    let rec drain () =
      match Sq.dequeue q with
      | Some v ->
        incr count;
        sum := !sum + v;
        drain ()
      | None -> ()
    in
    drain ();
    check_int "all frames arrived" (producers * per) !count;
    let expected =
      List.fold_left ( + ) 0
        (List.concat_map
           (fun p -> List.init per (fun i -> (p * 1000) + i + 1))
           [ 1; 2; 3; 4 ])
    in
    check_int "no frame corruption" expected !sum)

let test_enqueue_after_close () =
  with_queue (fun q ->
    Sq.enqueue q 1;
    Sq.close_writer q;
    check_bool "raises" true
      (try
         Sq.enqueue q 2;
         false
       with Sq.Closed -> true);
    check_bool "pending delivered" true (Sq.dequeue q = Some 1);
    check_bool "then eof" true (Sq.dequeue q = None))

let test_ping_pong () =
  (* Two socket queues as a bidirectional channel between fibers. *)
  with_queue (fun there ->
    let back = Sq.create () in
    Fun.protect ~finally:(fun () -> Sq.destroy back) (fun () ->
      S.spawn (fun () ->
        let rec serve () =
          match Sq.dequeue there with
          | Some v ->
            Sq.enqueue back (v * 2);
            serve ()
          | None -> Sq.close_writer back
        in
        serve ());
      for i = 1 to 50 do
        Sq.enqueue there i
      done;
      Sq.close_writer there;
      let acc = ref 0 in
      let rec drain () =
        match Sq.dequeue back with
        | Some v ->
          acc := !acc + v;
          drain ()
        | None -> ()
      in
      drain ();
      check_int "round trips" (2 * (50 * 51 / 2)) !acc))

let write_raw fd bytes =
  let len = Bytes.length bytes in
  let rec go off =
    if off < len then
      match Unix.write fd bytes off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        S.yield ();
        go off
  in
  go 0

let test_truncated_frame () =
  (* A writer that dies mid-frame must surface as [Truncated_frame], not
     as a clean end-of-stream: send one good message, then a frame header
     promising more bytes than will ever arrive, then close the write
     side. *)
  with_queue (fun q ->
    let _, write_fd = Sq.fds q in
    S.spawn (fun () ->
      Sq.enqueue q 42;
      let torn = Bytes.create 10 in
      Bytes.set_int64_le torn 0 1000L (* header: 1000-byte payload *);
      write_raw write_fd torn (* ...but only 2 bytes of it follow *);
      Sq.close_writer q);
    check_bool "good frame still delivered" true (Sq.dequeue q = Some 42);
    check_bool "torn frame raises" true
      (try
         ignore (Sq.dequeue q : int option);
         false
       with Sq.Truncated_frame -> true);
    let v = Qs_obs.Counter.value (Sq.counters q) in
    check_int "counted once" 1 (v "truncated_frames");
    check_bool "raises again on retry" true
      (try
         ignore (Sq.dequeue q : int option);
         false
       with Sq.Truncated_frame -> true);
    check_int "still counted once" 1 (v "truncated_frames"))

let test_header_only_truncation () =
  (* The smallest torn stream: EOF after a few header bytes. *)
  with_queue (fun q ->
    let _, write_fd = Sq.fds q in
    S.spawn (fun () ->
      write_raw write_fd (Bytes.make 3 'x');
      Sq.close_writer q);
    check_bool "raises" true
      (try
         ignore (Sq.dequeue q : int option);
         false
       with Sq.Truncated_frame -> true))

let prop_any_payload =
  QCheck2.Test.make ~count:50 ~name:"arbitrary int lists survive the socket"
    QCheck2.Gen.(list (list small_int))
    (fun messages ->
      S.run (fun () ->
        let q = Sq.create () in
        Fun.protect ~finally:(fun () -> Sq.destroy q) (fun () ->
          S.spawn (fun () ->
            List.iter (Sq.enqueue q) messages;
            Sq.close_writer q);
          let rec drain acc =
            match Sq.dequeue q with
            | Some v -> drain (v :: acc)
            | None -> List.rev acc
          in
          drain [] = messages)))


(* -- Distributed runtime: remote processors over the socket transport --

   Node and client run in one test process but across two schedulers on
   two domains, talking through a real unix-domain socket — the same
   code path as the two-process deployment.  Handler state lives in
   module-level globals: shipped closures reference globals by symbol
   (Marshal.Closures), which is the distributed runtime's state
   discipline. *)

module Proto = Scoop.Internal.Remote_proto

let remote_counter = Atomic.make 0

let next_sock =
  let n = Atomic.make 0 in
  fun () ->
    Printf.sprintf "%s/qs_rt_%d_%d.sock"
      (Filename.get_temp_dir_name ())
      (Unix.getpid ())
      (Atomic.fetch_and_add n 1)

(* Host a node on a fresh unix socket in its own domain; [f addr] runs
   client-side and must ask the node to shut down before returning
   (the [with_client] helper does). *)
let with_node f =
  let path = next_sock () in
  let addr = Scoop.Config.Unix_sock path in
  let node = Domain.spawn (fun () -> Scoop.Remote.listen addr) in
  Fun.protect ~finally:(fun () -> Domain.join node) (fun () -> f addr)

let with_client addr f =
  Scoop.Runtime.run
    ~config:(Scoop.Remote.connect [ addr ])
    (fun rt ->
      Fun.protect
        ~finally:(fun () -> Scoop.Runtime.shutdown_nodes rt)
        (fun () -> f rt))

let test_remote_round_trip () =
  with_node (fun addr ->
    with_client addr (fun rt ->
      Atomic.set remote_counter 0;
      let p = Scoop.Runtime.processor rt in
      check_bool "runtime knows it is remote" true (Scoop.Runtime.is_remote rt);
      let total =
        Scoop.Runtime.separate rt p (fun reg ->
          for _ = 1 to 100 do
            Scoop.Registration.call reg (fun () -> Atomic.incr remote_counter)
          done;
          Scoop.Registration.sync reg;
          Scoop.Registration.query reg (fun () -> Atomic.get remote_counter))
      in
      check_int "100 remote calls served before the query" 100 total;
      let s = Scoop.Stats.snapshot (Scoop.Runtime.stats rt) in
      check_bool "remote requests counted" true
        (s.Scoop.Stats.s_remote_requests >= 102);
      check_bool "remote replies counted" true
        (s.Scoop.Stats.s_remote_replies >= 2);
      check_int "no failures" 0 s.Scoop.Stats.s_remote_failures))

let test_remote_poison () =
  (* The dirty-processor rule across the connection: a failing remote
     call poisons the registration; the next sync point surfaces
     [Handler_failure] carrying the node's rendering of the original. *)
  with_node (fun addr ->
    with_client addr (fun rt ->
      let p = Scoop.Runtime.processor rt in
      let observed =
        try
          Scoop.Runtime.separate rt p (fun reg ->
            Scoop.Registration.call reg (fun () -> failwith "boom");
            ignore (Scoop.Registration.query reg (fun () -> 1) : int);
            `No_failure)
        with
        | Scoop.Handler_failure (_, Scoop.Remote_error msg) -> `Poisoned msg
        | Scoop.Handler_failure (_, e) -> `Wrong_payload (Printexc.to_string e)
      in
      match observed with
      | `Poisoned msg ->
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        check_bool "carries the original failure text" true (contains msg "boom")
      | `No_failure -> Alcotest.fail "poison never surfaced"
      | `Wrong_payload e -> Alcotest.fail ("unexpected payload: " ^ e)))

let test_remote_query_failure_no_poison () =
  (* A raising query producer rejects only its own rendezvous. *)
  with_node (fun addr ->
    with_client addr (fun rt ->
      let p = Scoop.Runtime.processor rt in
      let v =
        Scoop.Runtime.separate rt p (fun reg ->
          (match Scoop.Registration.query reg (fun () -> failwith "q") with
          | (_ : int) -> Alcotest.fail "query should have raised"
          | exception Scoop.Remote_error _ -> ());
          Scoop.Registration.query reg (fun () -> 41 + 1))
      in
      check_int "registration survives a failed query" 42 v))

let test_remote_pipelined () =
  with_node (fun addr ->
    with_client addr (fun rt ->
      let p = Scoop.Runtime.processor rt in
      let ok =
        Scoop.Runtime.separate rt p (fun reg ->
          let promises =
            List.init 16 (fun i ->
              Scoop.Registration.query_async reg (fun () -> i * i))
          in
          List.mapi
            (fun i pr -> Scoop.Promise.await pr = i * i)
            promises
          |> List.for_all Fun.id)
      in
      check_bool "16 pipelined remote queries" true ok))

let test_remote_timeout () =
  with_node (fun addr ->
    with_client addr (fun rt ->
      let p = Scoop.Runtime.processor rt in
      let late =
        Scoop.Runtime.separate rt p (fun reg ->
          Scoop.Registration.call reg (fun () -> Unix.sleepf 0.3);
          (match Scoop.Registration.query ~timeout:0.05 reg (fun () -> 0) with
          | (_ : int) -> Alcotest.fail "expected Timeout"
          | exception Scoop.Timeout -> ());
          (* The abandoned request is still served; the registration
             stays usable and an unbounded query completes. *)
          Scoop.Registration.query reg (fun () -> 7))
      in
      check_int "registration usable after a remote timeout" 7 late))

let test_remote_disconnect_mid_query () =
  (* A peer that dies with a query outstanding must produce a typed
     rejection, not a hang: the rogue node accepts, swallows a few
     bytes, and slams the connection. *)
  let path = next_sock () in
  let addr = Scoop.Config.Unix_sock path in
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX path);
  Unix.listen lfd 1;
  let rogue =
    Domain.spawn (fun () ->
      let fd, _ = Unix.accept lfd in
      let buf = Bytes.create 64 in
      ignore (Unix.read fd buf 0 64 : int);
      Unix.close fd;
      Unix.close lfd)
  in
  Scoop.Runtime.run
    ~config:(Scoop.Remote.connect [ addr ])
    (fun rt ->
      let p = Scoop.Runtime.processor rt in
      let ok =
        try
          Scoop.Runtime.separate rt p (fun reg ->
            ignore (Scoop.Registration.query reg (fun () -> 1) : int);
            false)
        with
        | Scoop.Connection_lost _ -> true
        | Scoop.Handler_failure (_, Scoop.Connection_lost _) -> true
      in
      check_bool "typed rejection, not a hang" true ok;
      let s = Scoop.Stats.snapshot (Scoop.Runtime.stats rt) in
      check_bool "connection loss counted" true
        (s.Scoop.Stats.s_remote_failures >= 1));
  Domain.join rogue;
  try Unix.unlink path with Unix.Unix_error _ -> ()

let test_remote_node_survives_garbage () =
  (* Truncated-frame recovery, node side: a peer that handshakes then
     dies mid-frame must cost the node that connection only — the next
     client gets normal service. *)
  with_node (fun addr ->
    S.run (fun () ->
      let fd = Proto.connect_to addr in
      let sq : Proto.client_msg Sq.t =
        Sq.of_fds ~flags:[ Marshal.Closures ] ~read_fd:fd ~write_fd:fd ()
      in
      Sq.enqueue sq (Proto.hello ());
      (* Frame header promising 1000 bytes, followed by 3 and EOF. *)
      let torn = Bytes.create 11 in
      Bytes.set_int64_le torn 0 1000L;
      write_raw fd torn;
      Unix.close fd);
    with_client addr (fun rt ->
      let p = Scoop.Runtime.processor rt in
      let v =
        Scoop.Runtime.separate rt p (fun reg ->
          Scoop.Registration.query reg (fun () -> 2026))
      in
      check_int "node still serving after a torn peer" 2026 v))

(* Two shard-mapped nodes: processor id routes to node id mod 2, and the
   same workload spreads across both without client changes. *)
let test_remote_shard_map () =
  let path1 = next_sock () and path2 = next_sock () in
  let a1 = Scoop.Config.Unix_sock path1
  and a2 = Scoop.Config.Unix_sock path2 in
  let n1 = Domain.spawn (fun () -> Scoop.Remote.listen a1) in
  let n2 = Domain.spawn (fun () -> Scoop.Remote.listen a2) in
  Fun.protect
    ~finally:(fun () ->
      Domain.join n1;
      Domain.join n2)
    (fun () ->
      Scoop.Runtime.run
        ~config:(Scoop.Remote.connect [ a1; a2 ])
        (fun rt ->
          Fun.protect
            ~finally:(fun () -> Scoop.Runtime.shutdown_nodes rt)
            (fun () ->
              let procs = Scoop.Runtime.processors rt 4 in
              let vs =
                List.mapi
                  (fun i p ->
                    Scoop.Runtime.separate rt p (fun reg ->
                      Scoop.Registration.query reg (fun () -> i * 10)))
                  procs
              in
              Alcotest.(check (list int))
                "all four processors answer across two nodes"
                [ 0; 10; 20; 30 ] vs)))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_mixed_reservation_rejected () =
  (* Atomic multi-reservation is a local protocol (the wait/release pair
     spans handler queues the client enqueues into directly) and remote
     proxies cannot take part.  Passing one must fail with a typed
     [Scoop.Remote_error] naming the offending processors — raised
     before anything local is reserved, so neither side is left
     wedged. *)
  with_node (fun addr ->
    with_client addr (fun rt ->
      let remote_p = Scoop.Runtime.processor rt in
      let local_rt = Scoop.Runtime.create () in
      let local_p = Scoop.Runtime.processor local_rt in
      Fun.protect
        ~finally:(fun () -> Scoop.Runtime.shutdown local_rt)
        (fun () ->
          (match
             Scoop.Runtime.separate_list rt [ local_p; remote_p ] (fun _ ->
               `Reserved)
           with
          | `Reserved -> Alcotest.fail "mixed reservation must be refused"
          | exception Scoop.Remote_error msg ->
            check_bool "names the remote processor" true
              (contains msg (string_of_int (Scoop.Processor.id remote_p))));
          (* nothing was left reserved on either side *)
          let v =
            Scoop.Runtime.separate local_rt local_p (fun reg ->
              Scoop.Registration.query reg (fun () -> 7))
          in
          check_int "local processor still serves" 7 v;
          let w =
            Scoop.Runtime.separate rt remote_p (fun reg ->
              Scoop.Registration.query reg (fun () -> 8))
          in
          check_int "remote processor still serves" 8 w;
          (* an all-remote pair is refused the same way *)
          let remote_p2 = Scoop.Runtime.processor rt in
          match
            Scoop.Runtime.separate2 rt remote_p remote_p2 (fun _ _ ->
              `Reserved)
          with
          | `Reserved -> Alcotest.fail "all-remote pair must be refused"
          | exception Scoop.Remote_error msg ->
            check_bool "names both remote processors" true
              (contains msg (string_of_int (Scoop.Processor.id remote_p))
              && contains msg (string_of_int (Scoop.Processor.id remote_p2))))))

let prop_remote_timeout_equiv =
  QCheck2.Test.make ~count:6
    ~name:"generous timeout = no timeout over the remote preset"
    QCheck2.Gen.(list_size (int_range 0 16) small_int)
    (fun xs ->
      with_node (fun addr ->
        with_client addr (fun rt ->
          let p = Scoop.Runtime.processor rt in
          Scoop.Runtime.separate rt p (fun reg ->
            let sum xs = List.fold_left ( + ) 0 xs in
            let a = Scoop.Registration.query reg (fun () -> sum xs) in
            let b =
              Scoop.Registration.query ~timeout:10.0 reg (fun () -> sum xs)
            in
            a = b && a = sum xs))))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "qs_remote"
    [
      ( "socket queue",
        [
          Alcotest.test_case "fifo" `Quick test_fifo;
          Alcotest.test_case "frame counters" `Quick test_frame_counters;
          Alcotest.test_case "structured messages" `Quick test_structured_messages;
          Alcotest.test_case "large messages" `Quick test_large_messages;
          Alcotest.test_case "copy semantics" `Quick test_copy_semantics;
          Alcotest.test_case "multiple producers" `Quick test_multiple_producers;
          Alcotest.test_case "enqueue after close" `Quick test_enqueue_after_close;
          Alcotest.test_case "ping pong" `Quick test_ping_pong;
          Alcotest.test_case "truncated frame" `Quick test_truncated_frame;
          Alcotest.test_case "header-only truncation" `Quick
            test_header_only_truncation;
        ] );
      ( "distributed runtime",
        [
          Alcotest.test_case "remote round trip" `Quick test_remote_round_trip;
          Alcotest.test_case "remote poison" `Quick test_remote_poison;
          Alcotest.test_case "failed query does not poison" `Quick
            test_remote_query_failure_no_poison;
          Alcotest.test_case "pipelined remote queries" `Quick
            test_remote_pipelined;
          Alcotest.test_case "remote timeout" `Quick test_remote_timeout;
          Alcotest.test_case "disconnect mid-query" `Quick
            test_remote_disconnect_mid_query;
          Alcotest.test_case "node survives torn peer" `Quick
            test_remote_node_survives_garbage;
          Alcotest.test_case "static shard map" `Quick test_remote_shard_map;
          Alcotest.test_case "mixed local/remote reservation rejected" `Quick
            test_mixed_reservation_rejected;
        ] );
      ("properties", [ qc prop_any_payload; qc prop_remote_timeout_equiv ]);
    ]
