(* Unit and property tests for the lock-free building blocks.

   Concurrency tests run real domains; on any machine they exercise the
   atomics under OS preemption.  Property tests check the sequential
   FIFO/LIFO semantics against a reference model. *)

module Q = Qs_queues

let check_list = Alcotest.(check (list int))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -- sequential semantics -------------------------------------------------- *)

let drain pop =
  let rec go acc = match pop () with Some v -> go (v :: acc) | None -> List.rev acc in
  go []

let test_spsc_fifo () =
  let q = Q.Spsc_queue.create () in
  check_bool "empty" true (Q.Spsc_queue.is_empty q);
  for i = 1 to 100 do
    Q.Spsc_queue.push q i
  done;
  check_int "length" 100 (Q.Spsc_queue.length q);
  check_list "fifo" (List.init 100 (fun i -> i + 1))
    (drain (fun () -> Q.Spsc_queue.pop q));
  check_bool "drained" true (Q.Spsc_queue.is_empty q)

let test_spsc_peek () =
  let q = Q.Spsc_queue.create () in
  Alcotest.(check (option int)) "peek empty" None (Q.Spsc_queue.peek q);
  Q.Spsc_queue.push q 7;
  Alcotest.(check (option int)) "peek" (Some 7) (Q.Spsc_queue.peek q);
  Alcotest.(check (option int)) "pop" (Some 7) (Q.Spsc_queue.pop q);
  Alcotest.(check (option int)) "empty again" None (Q.Spsc_queue.pop q)

let test_mpsc_fifo () =
  let q = Q.Mpsc_queue.create () in
  check_bool "empty" true (Q.Mpsc_queue.is_empty q);
  for i = 1 to 100 do
    Q.Mpsc_queue.push q i
  done;
  check_list "fifo" (List.init 100 (fun i -> i + 1))
    (drain (fun () -> Q.Mpsc_queue.pop q))

let test_mpmc_fifo () =
  let q = Q.Mpmc_queue.create () in
  for i = 1 to 100 do
    Q.Mpmc_queue.push q i
  done;
  check_list "fifo" (List.init 100 (fun i -> i + 1))
    (drain (fun () -> Q.Mpmc_queue.pop q))

let test_treiber_lifo () =
  let s = Q.Treiber_stack.create () in
  for i = 1 to 50 do
    Q.Treiber_stack.push s i
  done;
  check_int "length" 50 (Q.Treiber_stack.length s);
  check_list "lifo" (List.init 50 (fun i -> 50 - i))
    (drain (fun () -> Q.Treiber_stack.pop s))

let test_ws_deque_owner () =
  let d = Q.Ws_deque.create ~capacity:4 () in
  for i = 1 to 100 do
    Q.Ws_deque.push d i
  done;
  (* grows past the initial capacity *)
  check_int "size" 100 (Q.Ws_deque.size d);
  check_list "owner lifo" (List.init 100 (fun i -> 100 - i))
    (drain (fun () -> Q.Ws_deque.pop d))

let test_ws_deque_steal_order () =
  let d = Q.Ws_deque.create () in
  List.iter (Q.Ws_deque.push d) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "steals oldest" (Some 1) (Q.Ws_deque.steal d);
  Alcotest.(check (option int)) "owner newest" (Some 3) (Q.Ws_deque.pop d);
  Alcotest.(check (option int)) "remaining" (Some 2) (Q.Ws_deque.pop d);
  Alcotest.(check (option int)) "empty owner" None (Q.Ws_deque.pop d);
  Alcotest.(check (option int)) "empty thief" None (Q.Ws_deque.steal d)

let test_spinlock () =
  let l = Q.Spinlock.create () in
  check_bool "initially free" false (Q.Spinlock.is_locked l);
  Q.Spinlock.acquire l;
  check_bool "held" true (Q.Spinlock.is_locked l);
  check_bool "try fails" false (Q.Spinlock.try_acquire l);
  Q.Spinlock.release l;
  check_bool "try succeeds" true (Q.Spinlock.try_acquire l);
  Q.Spinlock.release l;
  let v = Q.Spinlock.with_lock l (fun () -> 42) in
  check_int "with_lock result" 42 v;
  check_bool "released after with_lock" false (Q.Spinlock.is_locked l);
  (try Q.Spinlock.with_lock l (fun () -> failwith "boom")
   with Failure _ -> ());
  check_bool "released after exception" false (Q.Spinlock.is_locked l)

(* -- model-based property tests -------------------------------------------- *)

type op = Push of int | Pop

let op_gen =
  QCheck2.Gen.(
    oneof [ map (fun i -> Push i) small_int; return Pop ])

let print_ops ops =
  String.concat ";"
    (List.map (function Push i -> Printf.sprintf "push %d" i | Pop -> "pop") ops)

let model_fifo ops =
  let q = Queue.create () in
  List.filter_map
    (function
      | Push v ->
        Queue.push v q;
        None
      | Pop -> Some (Queue.take_opt q))
    ops

let model_lifo ops =
  let s = ref [] in
  List.filter_map
    (function
      | Push v ->
        s := v :: !s;
        None
      | Pop -> (
        match !s with
        | [] -> Some None
        | v :: rest ->
          s := rest;
          Some (Some v)))
    ops

let fifo_agrees name create push pop =
  QCheck2.Test.make ~count:300 ~name
    ~print:print_ops
    QCheck2.Gen.(list_size (int_bound 40) op_gen)
    (fun ops ->
      let q = create () in
      let actual =
        List.filter_map
          (function
            | Push v ->
              push q v;
              None
            | Pop -> Some (pop q))
          ops
      in
      actual = model_fifo ops)

let prop_spsc =
  fifo_agrees "spsc agrees with FIFO model" Q.Spsc_queue.create
    Q.Spsc_queue.push Q.Spsc_queue.pop

let prop_mpsc =
  fifo_agrees "mpsc agrees with FIFO model" Q.Mpsc_queue.create
    Q.Mpsc_queue.push Q.Mpsc_queue.pop

let prop_mpmc =
  fifo_agrees "mpmc agrees with FIFO model" Q.Mpmc_queue.create
    Q.Mpmc_queue.push Q.Mpmc_queue.pop

let prop_treiber =
  QCheck2.Test.make ~count:300 ~name:"treiber agrees with LIFO model"
    ~print:print_ops
    QCheck2.Gen.(list_size (int_bound 40) op_gen)
    (fun ops ->
      let s = Q.Treiber_stack.create () in
      let actual =
        List.filter_map
          (function
            | Push v ->
              Q.Treiber_stack.push s v;
              None
            | Pop -> Some (Q.Treiber_stack.pop s))
          ops
      in
      actual = model_lifo ops)

(* -- cross-domain stress ---------------------------------------------------- *)

let sum_to n = n * (n + 1) / 2

let test_mpsc_producers () =
  let q = Q.Mpsc_queue.create () in
  let producers = 4 and per = 2_000 in
  let domains =
    List.init producers (fun p ->
      Domain.spawn (fun () ->
        for i = 1 to per do
          Q.Mpsc_queue.push q ((p * per) + i)
        done))
  in
  let seen = ref 0 and sum = ref 0 in
  while !seen < producers * per do
    match Q.Mpsc_queue.pop q with
    | Some v ->
      incr seen;
      sum := !sum + v
    | None -> Domain.cpu_relax ()
  done;
  List.iter Domain.join domains;
  check_int "all received" (sum_to (producers * per)) !sum

let test_mpmc_stress () =
  let q = Q.Mpmc_queue.create () in
  let producers = 3 and consumers = 3 and per = 2_000 in
  let total = producers * per in
  let consumed = Atomic.make 0 and sum = Atomic.make 0 in
  let ps =
    List.init producers (fun p ->
      Domain.spawn (fun () ->
        for i = 1 to per do
          Q.Mpmc_queue.push q ((p * per) + i)
        done))
  in
  let cs =
    List.init consumers (fun _ ->
      Domain.spawn (fun () ->
        let continue_ = ref true in
        while !continue_ do
          match Q.Mpmc_queue.pop q with
          | Some v ->
            ignore (Atomic.fetch_and_add sum v : int);
            if Atomic.fetch_and_add consumed 1 + 1 >= total then
              continue_ := false
          | None ->
            if Atomic.get consumed >= total then continue_ := false
            else Domain.cpu_relax ()
        done))
  in
  List.iter Domain.join ps;
  List.iter Domain.join cs;
  check_int "sum preserved" (sum_to total) (Atomic.get sum)

let test_spsc_parallel () =
  let q = Q.Spsc_queue.create () in
  let n = 50_000 in
  let producer =
    Domain.spawn (fun () ->
      for i = 1 to n do
        Q.Spsc_queue.push q i
      done)
  in
  let sum = ref 0 and seen = ref 0 in
  while !seen < n do
    match Q.Spsc_queue.pop q with
    | Some v ->
      (* FIFO means values arrive in exactly increasing order. *)
      assert (v = !seen + 1);
      incr seen;
      sum := !sum + v
    | None -> Domain.cpu_relax ()
  done;
  Domain.join producer;
  check_int "ordered sum" (sum_to n) !sum

let test_ws_deque_thieves () =
  let d = Q.Ws_deque.create () in
  let n = 20_000 in
  let stolen = Atomic.make 0 in
  let stop = Atomic.make false in
  let thieves =
    List.init 2 (fun _ ->
      Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          match Q.Ws_deque.steal d with
          | Some v -> ignore (Atomic.fetch_and_add stolen v : int)
          | None -> Domain.cpu_relax ()
        done))
  in
  (* Owner: push everything while the thieves raid, then drain the rest. *)
  let own = ref 0 in
  for i = 1 to n do
    Q.Ws_deque.push d i
  done;
  let rec drain () =
    match Q.Ws_deque.pop d with
    | Some v ->
      own := !own + v;
      drain ()
    | None -> ()
  in
  drain ();
  Atomic.set stop true;
  List.iter Domain.join thieves;
  (* A steal may still be completing when the owner sees empty; drain the
     remainder after the thieves stopped. *)
  drain ();
  check_int "every element taken exactly once" (sum_to n)
    (!own + Atomic.get stolen)

let test_ring_basic () =
  let r = Q.Spsc_ring.create ~capacity_pow2:2 () in
  check_int "capacity" 4 (Q.Spsc_ring.capacity r);
  check_bool "empty" true (Q.Spsc_ring.is_empty r);
  for i = 1 to 4 do
    check_bool "push" true (Q.Spsc_ring.try_push r i)
  done;
  check_bool "full" false (Q.Spsc_ring.try_push r 5);
  check_int "length" 4 (Q.Spsc_ring.length r);
  check_list "fifo" [ 1; 2; 3; 4 ] (drain (fun () -> Q.Spsc_ring.pop r));
  (* wraps around *)
  for i = 5 to 7 do
    check_bool "push after wrap" true (Q.Spsc_ring.try_push r i)
  done;
  check_list "wrapped fifo" [ 5; 6; 7 ] (drain (fun () -> Q.Spsc_ring.pop r))

let test_ring_capacity_validation () =
  Alcotest.check_raises "zero"
    (Invalid_argument "Spsc_ring.create: capacity_pow2 out of range")
    (fun () -> ignore (Q.Spsc_ring.create ~capacity_pow2:0 () : int Q.Spsc_ring.t))

let test_ring_parallel () =
  let r = Q.Spsc_ring.create ~capacity_pow2:4 () in
  let n = 5_000 in
  let producer =
    Domain.spawn (fun () ->
      let backoff = Q.Backoff.create () in
      for i = 1 to n do
        while not (Q.Spsc_ring.try_push r i) do
          Q.Backoff.once backoff
        done;
        Q.Backoff.reset backoff
      done)
  in
  let seen = ref 0 and sum = ref 0 in
  while !seen < n do
    match Q.Spsc_ring.pop r with
    | Some v ->
      assert (v = !seen + 1);
      incr seen;
      sum := !sum + v
    | None -> Domain.cpu_relax ()
  done;
  Domain.join producer;
  check_int "ordered sum through bounded ring" (sum_to n) !sum

let prop_ring_model =
  QCheck2.Test.make ~count:300 ~name:"ring agrees with bounded FIFO model"
    ~print:print_ops
    QCheck2.Gen.(list_size (int_bound 40) op_gen)
    (fun ops ->
      let r = Q.Spsc_ring.create ~capacity_pow2:2 () in
      let model = Queue.create () in
      List.for_all
        (function
          | Push v ->
            let accepted = Q.Spsc_ring.try_push r v in
            let model_accepts = Queue.length model < 4 in
            if model_accepts then Queue.push v model;
            accepted = model_accepts
          | Pop -> Q.Spsc_ring.pop r = Queue.take_opt model)
        ops)

(* -- generic MAILBOX properties --------------------------------------------- *)

(* One property suite, instantiated for every Mailbox.S conformer: the raw
   lock-free queues, the bounded ring and the socket transport here, and
   the blocking fiber-level Bqueue layer below.  Element counts stay under
   the ring's default capacity (256) because ring enqueues spin when full
   and nothing drains concurrently in these sequential properties. *)

module Sched = Qs_sched.Sched

module Mailbox_props
    (M : Q.Mailbox.S) (I : sig
      val name : string
      val count : int

      val closed_enqueue : [ `Raises | `Drops ]
      (* Raw mailboxes raise [Mailbox.Closed]; the blocking Bqueue layer
         silently drops (runtime shutdown races live registrations). *)

      val dispose : int M.t -> unit
    end) =
struct
  let elems = QCheck2.Gen.(list_size (int_range 1 100) small_int)
  let print = QCheck2.Print.(list int)

  (* The socket instance yields while waiting for bytes and the Bqueue
     instances park fibers, so every property runs inside a scheduler;
     the lock-free instances don't care. *)
  let with_mailbox f =
    Sched.run (fun () ->
      let t = M.create () in
      Fun.protect ~finally:(fun () -> I.dispose t) (fun () -> f t))

  let fifo =
    QCheck2.Test.make ~count:I.count ~name:(I.name ^ ": fifo order") ~print
      elems
      (fun xs ->
        with_mailbox (fun t ->
          List.iter (M.enqueue t) xs;
          List.for_all (fun x -> M.dequeue t = Some x) xs && M.is_empty t))

  (* drain takes the same elements in the same order as repeated dequeue,
     whatever prefix size the buffer imposes. *)
  let drain_is_dequeue =
    QCheck2.Test.make ~count:I.count
      ~name:(I.name ^ ": drain = repeated dequeue")
      ~print:QCheck2.Print.(pair (list int) int)
      QCheck2.Gen.(pair elems (int_range 1 100))
      (fun (xs, k) ->
        with_mailbox (fun t ->
          List.iter (M.enqueue t) xs;
          let len = List.length xs in
          let buf = Array.make (min k len) 0 in
          let n = M.drain t buf in
          let taken = ref (Array.to_list (Array.sub buf 0 n)) in
          (* Blocking instances would park on an empty mailbox: dequeue
             exactly the elements known to remain. *)
          while List.length !taken < len do
            match M.dequeue t with
            | Some v -> taken := !taken @ [ v ]
            | None -> Alcotest.fail "dequeue lost an element"
          done;
          n >= 1 && !taken = xs && M.is_empty t))

  let close_keeps_pending =
    QCheck2.Test.make ~count:I.count
      ~name:(I.name ^ ": close keeps pending, stops enqueue") ~print elems
      (fun xs ->
        with_mailbox (fun t ->
          List.iter (M.enqueue t) xs;
          M.close t;
          let enqueue_stopped =
            match M.enqueue t 12345 with
            | () -> I.closed_enqueue = `Drops
            | exception Q.Mailbox.Closed -> I.closed_enqueue = `Raises
          in
          let len = List.length xs in
          let buf = Array.make len 0 in
          let n = M.drain t buf in
          let taken = ref (Array.to_list (Array.sub buf 0 n)) in
          while List.length !taken < len do
            match M.dequeue t with
            | Some v -> taken := !taken @ [ v ]
            | None -> Alcotest.fail "close dropped a pending element"
          done;
          (* Closed and drained: both flavours now agree on None. *)
          M.is_closed t && enqueue_stopped && !taken = xs
          && M.dequeue t = None))

  let tests =
    List.map QCheck_alcotest.to_alcotest
      [ fifo; drain_is_dequeue; close_keeps_pending ]
end

module Raw_defaults = struct
  let count = 200
  let closed_enqueue = `Raises
  let dispose _ = ()
end

module Props_spsc_linked =
  Mailbox_props
    (Q.Spsc_queue)
    (struct
      include Raw_defaults

      let name = "spsc-linked"
    end)

module Props_spsc_ring =
  Mailbox_props
    (Q.Spsc_ring.As_mailbox)
    (struct
      include Raw_defaults

      let name = "spsc-ring"
    end)

module Props_mpsc =
  Mailbox_props
    (Q.Mpsc_queue)
    (struct
      include Raw_defaults

      let name = "mpsc"
    end)

module Props_mpmc =
  Mailbox_props
    (Q.Mpmc_queue)
    (struct
      include Raw_defaults

      let name = "mpmc"
    end)

module Props_socket =
  Mailbox_props
    (Qs_remote.Socket_queue.As_mailbox)
    (struct
      let name = "socket"
      let count = 25 (* each iteration opens a socket pair *)
      let closed_enqueue = `Raises
      let dispose = Qs_remote.Socket_queue.destroy
    end)

(* The sharded MPMC queue at 1, 2 and 8 shards: producers pick a shard by
   domain, so these sequential (single-domain) properties exercise one
   shard's FIFO order at every shard count while still sweeping the
   rotate-all dequeue / drain / close paths over all shards. *)
module Props_sharded_1 =
  Mailbox_props
    (struct
      include Q.Sharded_mpmc

      let create () = create_sharded ~shards:1 ()
    end)
    (struct
      include Raw_defaults

      let name = "sharded-mpmc:1"
    end)

module Props_sharded_2 =
  Mailbox_props
    (struct
      include Q.Sharded_mpmc

      let create () = create_sharded ~shards:2 ()
    end)
    (struct
      include Raw_defaults

      let name = "sharded-mpmc:2"
    end)

module Props_sharded_8 =
  Mailbox_props
    (struct
      include Q.Sharded_mpmc

      let create () = create_sharded ~shards:8 ()
    end)
    (struct
      include Raw_defaults

      let name = "sharded-mpmc:8"
    end)

module Bq = Qs_sched.Bqueue

module Bq_defaults = struct
  let count = 100
  let closed_enqueue = `Drops
  let dispose _ = ()
end

module Props_bq_spsc_linked =
  Mailbox_props
    (struct
      include Bq.Spsc

      let create () = create ~backing:`Linked ()
    end)
    (struct
      include Bq_defaults

      let name = "bqueue:spsc-linked"
    end)

module Props_bq_spsc_ring =
  Mailbox_props
    (struct
      include Bq.Spsc

      let create () = create ~backing:`Ring ()
    end)
    (struct
      include Bq_defaults

      let name = "bqueue:spsc-ring"
    end)

module Props_bq_mpsc =
  Mailbox_props
    (Bq.Mpsc)
    (struct
      include Bq_defaults

      let name = "bqueue:mpsc"
    end)

(* The first-class [Bqueue.mailboxes] registry stays usable as packed
   modules (that is how benchmarks consume it). *)
let test_mailbox_registry () =
  Sched.run (fun () ->
    List.iter
      (fun (name, (module M : Bq.MAILBOX)) ->
        let t = M.create () in
        for i = 1 to 10 do
          M.enqueue t i
        done;
        let buf = Array.make 4 0 in
        let n = M.drain t buf in
        check_int (name ^ " drain count") 4 n;
        check_list (name ^ " drain prefix") [ 1; 2; 3; 4 ]
          (Array.to_list buf);
        M.close t;
        let rest = ref [] in
        let continue_ = ref true in
        while !continue_ do
          match M.dequeue t with
          | Some v -> rest := v :: !rest
          | None -> continue_ := false
        done;
        check_list (name ^ " pending after close") [ 5; 6; 7; 8; 9; 10 ]
          (List.rev !rest))
      Bq.mailboxes)

(* Cross-domain stress over the sharded MPMC queue: nothing lost, nothing
   duplicated, and per-producer FIFO (each producer's elements arrive in
   push order, the ordering contract the domain-stable shard choice
   preserves). *)
let test_sharded_mpmc_stress () =
  let q = Q.Sharded_mpmc.create_sharded ~shards:4 () in
  let producers = 3 and consumers = 3 and per = 2_000 in
  let total = producers * per in
  let consumed = Atomic.make 0 in
  let seen = Array.make total 0 in
  let order_ok = Atomic.make true in
  let ps =
    List.init producers (fun p ->
      Domain.spawn (fun () ->
        for i = 1 to per do
          Q.Sharded_mpmc.push q ((p * per) + i)
        done))
  in
  let cs =
    List.init consumers (fun _ ->
      Domain.spawn (fun () ->
        (* Per-producer FIFO: one producer's elements share a shard, so
           each consumer's subsequence of them must be ascending (the
           check is per consumer — cross-consumer recording would race). *)
        let last_of = Array.make producers 0 in
        let continue_ = ref true in
        while !continue_ do
          match Q.Sharded_mpmc.pop q with
          | Some v ->
            let p = (v - 1) / per in
            if last_of.(p) >= v then Atomic.set order_ok false;
            last_of.(p) <- v;
            seen.(v - 1) <- seen.(v - 1) + 1;
            if Atomic.fetch_and_add consumed 1 + 1 >= total then
              continue_ := false
          | None ->
            if Atomic.get consumed >= total then continue_ := false
            else Domain.cpu_relax ()
        done))
  in
  List.iter Domain.join ps;
  List.iter Domain.join cs;
  check_int "all consumed exactly once" total
    (Array.fold_left (fun acc c -> if c = 1 then acc + 1 else acc) 0 seen);
  Alcotest.(check bool) "per-producer order" true (Atomic.get order_ok)

let test_spinlock_mutual_exclusion () =
  let l = Q.Spinlock.create () in
  let counter = ref 0 in
  let n = 4 and per = 10_000 in
  let ds =
    List.init n (fun _ ->
      Domain.spawn (fun () ->
        for _ = 1 to per do
          Q.Spinlock.acquire l;
          counter := !counter + 1;
          Q.Spinlock.release l
        done))
  in
  List.iter Domain.join ds;
  check_int "no lost updates" (n * per) !counter

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "qs_queues"
    [
      ( "sequential",
        [
          Alcotest.test_case "spsc fifo" `Quick test_spsc_fifo;
          Alcotest.test_case "spsc peek" `Quick test_spsc_peek;
          Alcotest.test_case "mpsc fifo" `Quick test_mpsc_fifo;
          Alcotest.test_case "mpmc fifo" `Quick test_mpmc_fifo;
          Alcotest.test_case "treiber lifo" `Quick test_treiber_lifo;
          Alcotest.test_case "ws_deque owner" `Quick test_ws_deque_owner;
          Alcotest.test_case "ws_deque steal order" `Quick test_ws_deque_steal_order;
          Alcotest.test_case "spinlock" `Quick test_spinlock;
          Alcotest.test_case "ring basic" `Quick test_ring_basic;
          Alcotest.test_case "ring capacity validation" `Quick
            test_ring_capacity_validation;
        ] );
      ( "properties",
        [ qc prop_spsc; qc prop_mpsc; qc prop_mpmc; qc prop_treiber; qc prop_ring_model ] );
      ( "mailbox",
        Props_spsc_linked.tests @ Props_spsc_ring.tests @ Props_mpsc.tests
        @ Props_mpmc.tests @ Props_sharded_1.tests @ Props_sharded_2.tests
        @ Props_sharded_8.tests @ Props_socket.tests
        @ Props_bq_spsc_linked.tests @ Props_bq_spsc_ring.tests
        @ Props_bq_mpsc.tests
        @ [ Alcotest.test_case "bqueue registry" `Quick test_mailbox_registry ] );
      ( "parallel",
        [
          Alcotest.test_case "mpsc 4 producers" `Quick test_mpsc_producers;
          Alcotest.test_case "mpmc 3x3 stress" `Quick test_mpmc_stress;
          Alcotest.test_case "sharded-mpmc 3x3 stress" `Quick
            test_sharded_mpmc_stress;
          Alcotest.test_case "spsc pipeline order" `Quick test_spsc_parallel;
          Alcotest.test_case "ws_deque 2 thieves" `Quick test_ws_deque_thieves;
          Alcotest.test_case "ring pipeline order" `Quick test_ring_parallel;
          Alcotest.test_case "spinlock mutual exclusion" `Quick
            test_spinlock_mutual_exclusion;
        ] );
    ]
