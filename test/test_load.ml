(* Tests for the open-loop load generator: deterministic arrival
   schedules, latency accounting from intended arrival, SLO
   classification, knee location and the BENCH_load.json document. *)

module L = Qs_load.Load_gen

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A tame spec: far below single-core capacity, so every request must
   complete and the point must sit inside any reasonable SLO. *)
let tame =
  {
    L.default with
    L.rate = 200.;
    clients = 4;
    handlers = 2;
    duration = 0.3;
    service_us = 20.;
  }

let test_tame_point_in_slo () =
  let p = L.run_point tame in
  check_bool "issued some traffic" true (p.L.p_issued > 10);
  check_int "every request completed" p.L.p_issued p.L.p_measured;
  check_int "no sheds" 0 p.L.p_sheds;
  check_int "no timeouts" 0 p.L.p_timeouts;
  check_int "no failures" 0 p.L.p_failures;
  check_bool "achieved rate positive" true (p.L.p_achieved > 0.);
  check_bool "quantiles ordered" true
    (p.L.p_p50_ns <= p.L.p_p99_ns
    && p.L.p_p99_ns <= p.L.p_p999_ns
    && p.L.p_p999_ns <= p.L.p_max_ns);
  check_bool "in SLO with a generous deadline" true
    (L.in_slo ~deadline:5.0 p);
  check_bool "handler-side histograms populated" true
    (p.L.p_queue_p99_ns > 0 && p.L.p_exec_p99_ns > 0)

let test_deterministic_arrivals () =
  (* Same seed, same spec: the arrival schedule (and so the issue count)
     is reproducible; a different seed draws a different schedule. *)
  let a = L.run_point tame in
  let b = L.run_point tame in
  check_int "same seed, same issue count" a.L.p_issued b.L.p_issued;
  let c = L.run_point { tame with L.seed = 43 } in
  check_bool "different seed still issues" true (c.L.p_issued > 10)

let test_bursty_arrivals () =
  let p = L.run_point { tame with L.arrivals = L.Bursty 8 } in
  check_bool "bursty issues about rate*duration" true
    (abs (p.L.p_issued - 60) <= 24);
  check_int "bursty completes everything" p.L.p_issued p.L.p_measured

let test_overload_degrades () =
  (* Offered work of 2x the core's capacity cannot meet a 5 ms SLO:
     latency from intended arrival grows with the backlog.  This is the
     coordinated-omission guarantee — a closed-loop harness would report
     a healthy p99 here by silently slowing its own arrivals. *)
  let p =
    L.run_point
      {
        tame with
        L.rate = 2000.;
        duration = 0.4;
        service_us = 1000.;
        mix = (1, 1, 2);
      }
  in
  check_bool "p99 beyond the deadline" true (p.L.p_p99_ns > 5_000_000);
  check_bool "classified out of SLO" false (L.in_slo ~deadline:0.005 p)

let test_knee () =
  let point rate p99_ms sheds =
    {
      L.p_rate = rate;
      p_issued = 100;
      p_measured = 100 - sheds;
      p_achieved = rate;
      p_p50_ns = 1_000_000;
      p_p99_ns = int_of_float (p99_ms *. 1e6);
      p_p999_ns = int_of_float (p99_ms *. 1e6);
      p_max_ns = int_of_float (p99_ms *. 1e6);
      p_mean_ns = 1e6;
      p_sheds = sheds;
      p_timeouts = 0;
      p_failures = 0;
      p_queue_p99_ns = 0;
      p_exec_p99_ns = 0;
    }
  in
  let points =
    [ point 100. 2. 0; point 200. 4. 0; point 400. 80. 0; point 800. 200. 5 ]
  in
  (match L.knee ~deadline:0.05 points with
  | Some ok, Some bad ->
    check_bool "highest in-SLO rate" true (ok = 200.);
    check_bool "first degrading rate" true (bad = 400.)
  | _ -> Alcotest.fail "expected a knee on both sides");
  (match L.knee ~deadline:0.05 [ point 100. 2. 0 ] with
  | Some _, None -> ()
  | _ -> Alcotest.fail "all-in-SLO sweep has no degrading side");
  match L.knee ~deadline:0.001 [ point 100. 2. 0 ] with
  | None, Some _ -> ()
  | _ -> Alcotest.fail "all-out-of-SLO sweep has no healthy side"

let test_report_json_schema () =
  let p = L.run_point tame in
  let doc = L.report_json ~deadline:0.05 ~domains:1 tame [ p ] in
  let s = Qs_obs.Json.to_string doc in
  List.iter
    (fun needle ->
      let nl = String.length needle and sl = String.length s in
      let rec go i =
        i + nl <= sl && (String.sub s i nl = needle || go (i + 1))
      in
      check_bool (needle ^ " present") true (go 0))
    [
      "\"suite\":\"qs-load\"";
      "\"config\":";
      "\"arrivals\":\"poisson\"";
      "\"deadline_s\":0.05";
      "\"points\":";
      "\"rate\":";
      "\"p99_ns\":";
      "\"p999_ns\":";
      "\"shed_requests\":";
      "\"timeouts\":";
      "\"in_slo\":";
    ]

let test_invalid_specs_rejected () =
  List.iter
    (fun spec ->
      match L.run_point spec with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument")
    [
      { tame with L.rate = 0. };
      { tame with L.clients = 0 };
      { tame with L.handlers = 0 };
    ]

let () =
  Alcotest.run "qs_load"
    [
      ( "open-loop generator",
        [
          Alcotest.test_case "tame point in SLO" `Quick test_tame_point_in_slo;
          Alcotest.test_case "deterministic arrivals" `Quick
            test_deterministic_arrivals;
          Alcotest.test_case "bursty arrivals" `Quick test_bursty_arrivals;
          Alcotest.test_case "overload degrades latency" `Quick
            test_overload_degrades;
          Alcotest.test_case "knee location" `Quick test_knee;
          Alcotest.test_case "report json schema" `Quick
            test_report_json_schema;
          Alcotest.test_case "invalid specs rejected" `Quick
            test_invalid_specs_rejected;
        ] );
    ]
