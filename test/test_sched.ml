(* Tests for the fiber scheduler and its synchronization primitives. *)

module S = Qs_sched.Sched
module Ivar = Qs_sched.Ivar
module Latch = Qs_sched.Latch
module Mutex = Qs_sched.Fiber_mutex
module Cond = Qs_sched.Fiber_cond
module Parfor = Qs_sched.Parfor

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -- core scheduler --------------------------------------------------------- *)

let test_run_returns_value () =
  check_int "value" 42 (S.run (fun () -> 42))

let test_run_waits_for_spawned () =
  let hit = ref 0 in
  S.run (fun () ->
    for _ = 1 to 100 do
      S.spawn (fun () -> incr hit)
    done);
  check_int "all fibers ran" 100 !hit

let test_nested_spawn () =
  let hit = Atomic.make 0 in
  S.run ~domains:2 (fun () ->
    for _ = 1 to 10 do
      S.spawn (fun () ->
        Atomic.incr hit;
        for _ = 1 to 10 do
          S.spawn (fun () -> Atomic.incr hit)
        done)
    done);
  check_int "nested fibers" 110 (Atomic.get hit)

let test_live_counters () =
  (* Counters are readable mid-run from inside the scheduler, and only
     there; the final on_counters delivery is at least the live value. *)
  check_bool "none outside a scheduler" true (S.current_counters () = None);
  let live = ref None in
  let final = ref None in
  S.run ~on_counters:(fun c -> final := Some c) (fun () ->
    for _ = 1 to 50 do
      S.spawn (fun () -> S.yield ())
    done;
    S.yield ();
    live := S.current_counters ());
  match (!live, !final) with
  | Some l, Some f ->
    check_bool "dispatches visible mid-run" true (l.S.c_executed > 0);
    check_bool "monotone to the final value" true
      (l.S.c_executed <= f.S.c_executed && l.S.c_parks <= f.S.c_parks)
  | _ -> Alcotest.fail "live or final counters missing"

let test_obs_sink_records_sched_events () =
  let sink = Qs_obs.Sink.create () in
  S.run ~domains:2 ~obs:sink (fun () ->
    let latch = Latch.create 100 in
    for _ = 1 to 100 do
      S.spawn (fun () -> Latch.count_down latch)
    done;
    Latch.wait latch);
  let names =
    List.sort_uniq String.compare
      (List.map
         (fun (e : Qs_obs.Sink.event) -> e.name)
         (Qs_obs.Sink.events sink))
  in
  check_bool "dispatch spans recorded" true (List.mem "dispatch" names);
  check_bool "all events in the sched category" true
    (Qs_obs.Sink.fold
       (fun acc (e : Qs_obs.Sink.event) -> acc && e.cat = "sched")
       true sink)

let test_yield_interleaves () =
  let log = ref [] in
  S.run (fun () ->
    S.spawn (fun () ->
      log := `A1 :: !log;
      S.yield ();
      log := `A2 :: !log);
    S.spawn (fun () ->
      log := `B1 :: !log;
      S.yield ();
      log := `B2 :: !log));
  (* Yield sends fibers to the back of the global queue, so the two
     halves interleave rather than run back to back. *)
  check_bool "interleaved" true
    (match List.rev !log with
    | [ `A1; `B1; `A2; `B2 ] | [ `B1; `A1; `B2; `A2 ] -> true
    | _ -> false)

let test_suspend_resume () =
  let resumer = ref None in
  let result = ref 0 in
  S.run (fun () ->
    S.spawn (fun () ->
      S.suspend (fun resume -> resumer := Some resume);
      result := 1);
    S.spawn (fun () ->
      while !resumer = None do
        S.yield ()
      done;
      (Option.get !resumer) ()));
  check_int "resumed" 1 !result

let test_resume_idempotent () =
  S.run (fun () ->
    let r = ref None in
    S.spawn (fun () -> S.suspend (fun resume -> r := Some resume));
    S.spawn (fun () ->
      while !r = None do
        S.yield ()
      done;
      let resume = Option.get !r in
      resume ();
      resume ();
      resume ()))

let test_stall_detection () =
  Alcotest.check_raises "deadlock raises" (S.Stalled 1) (fun () ->
    S.run (fun () -> S.suspend (fun _ -> ())))

let test_stall_counts_fibers () =
  (try S.run (fun () ->
     S.spawn (fun () -> S.suspend (fun _ -> ()));
     S.spawn (fun () -> S.suspend (fun _ -> ())))
   with S.Stalled n -> check_int "two stuck" 2 n)

let test_exception_propagates () =
  Alcotest.check_raises "fiber exception" (Failure "boom") (fun () ->
    S.run (fun () -> failwith "boom"))

let test_spawned_exception_propagates () =
  Alcotest.check_raises "spawned exception" (Failure "child") (fun () ->
    S.run (fun () -> S.spawn (fun () -> failwith "child")))

let test_nested_run_rejected () =
  S.run (fun () ->
    check_bool "nested run raises" true
      (try
         ignore (S.run (fun () -> 0) : int);
         false
       with Invalid_argument _ -> true))

let test_multi_domain_sum () =
  let n = 1000 in
  let acc = Atomic.make 0 in
  S.run ~domains:4 (fun () ->
    let latch = Latch.create n in
    for i = 1 to n do
      S.spawn (fun () ->
        ignore (Atomic.fetch_and_add acc i : int);
        Latch.count_down latch)
    done;
    Latch.wait latch);
  check_int "sum" (n * (n + 1) / 2) (Atomic.get acc)

(* -- ivar -------------------------------------------------------------------- *)

let test_ivar_basic () =
  let v =
    S.run (fun () ->
      let iv = Ivar.create () in
      check_bool "not filled" false (Ivar.is_filled iv);
      S.spawn (fun () -> Ivar.fill iv 7);
      Ivar.read iv)
  in
  check_int "ivar value" 7 v

let test_ivar_many_readers () =
  let total =
    S.run ~domains:2 (fun () ->
      let iv = Ivar.create () in
      let acc = Atomic.make 0 in
      let latch = Latch.create 10 in
      for _ = 1 to 10 do
        S.spawn (fun () ->
          ignore (Atomic.fetch_and_add acc (Ivar.read iv) : int);
          Latch.count_down latch)
      done;
      S.spawn (fun () -> Ivar.fill iv 5);
      Latch.wait latch;
      Atomic.get acc)
  in
  check_int "all readers woke" 50 total

let test_ivar_double_fill () =
  S.run (fun () ->
    let iv = Ivar.create () in
    Ivar.fill iv 1;
    check_bool "try_fill fails" false (Ivar.try_fill iv 2);
    Alcotest.check_raises "fill raises"
      (Invalid_argument "Ivar.fill: already resolved") (fun () -> Ivar.fill iv 3);
    check_int "value unchanged" 1 (Ivar.read iv))

let test_ivar_peek () =
  S.run (fun () ->
    let iv = Ivar.create_full 9 in
    Alcotest.(check (option int)) "peek" (Some 9) (Ivar.peek iv))

(* -- promise ------------------------------------------------------------------- *)

module Promise = Qs_sched.Promise

let test_promise_basic () =
  let v =
    S.run (fun () ->
      let p = Promise.create () in
      check_bool "not resolved" false (Promise.is_resolved p);
      Alcotest.(check (option int)) "peek empty" None (Promise.peek p);
      S.spawn (fun () -> Promise.fulfill p 7);
      let v = Promise.await p in
      check_bool "resolved" true (Promise.is_resolved p);
      v)
  in
  check_int "promise value" 7 v

let test_promise_try_read () =
  S.run (fun () ->
    let p = Promise.create () in
    Alcotest.(check (option int)) "pending" None (Promise.try_read p);
    Promise.fulfill p 3;
    Alcotest.(check (option int)) "resolved" (Some 3) (Promise.try_read p);
    Alcotest.(check (option int)) "of_value" (Some 9)
      (Promise.try_read (Promise.of_value 9)))

let test_promise_double_fulfill () =
  S.run (fun () ->
    let p = Promise.create () in
    Promise.fulfill p 1;
    check_bool "try_fulfill fails" false (Promise.try_fulfill p 2);
    check_int "value unchanged" 1 (Promise.await p))

let test_promise_force_hook () =
  S.run (fun () ->
    (* Ready at first observation: hook fires once with [true]. *)
    let fired = ref [] in
    let p = Promise.create ~on_force:(fun r -> fired := r :: !fired) () in
    Promise.fulfill p 1;
    check_int "await" 1 (Promise.await p);
    ignore (Promise.await p : int);
    Alcotest.(check (list bool)) "once, ready" [ true ] !fired;
    (* Peek never forces; try_read on a pending promise never forces. *)
    let fired2 = ref [] in
    let q = Promise.create ~on_force:(fun r -> fired2 := r :: !fired2) () in
    Alcotest.(check (option int)) "peek" None (Promise.peek q);
    Alcotest.(check (option int)) "try_read pending" None (Promise.try_read q);
    Alcotest.(check (list bool)) "not forced" [] !fired2;
    Promise.fulfill q 2;
    Alcotest.(check (option int)) "peek after fill" (Some 2) (Promise.peek q);
    Alcotest.(check (list bool)) "peek does not force" [] !fired2;
    ignore (Promise.try_read q : int option);
    Alcotest.(check (list bool)) "try_read forces" [ true ] !fired2);
  (* Blocked force: hook fires with [false]. *)
  let blocked =
    S.run (fun () ->
      let fired = ref None in
      let p = Promise.create ~on_force:(fun r -> fired := Some r) () in
      S.spawn (fun () -> Promise.fulfill p 5);
      ignore (Promise.await p : int);
      !fired)
  in
  Alcotest.(check (option bool)) "blocked force" (Some false) blocked

let test_promise_on_fulfill () =
  S.run (fun () ->
    let order = ref [] in
    let p = Promise.create () in
    Promise.on_fulfill p (fun v -> order := ("cb1", v) :: !order);
    Promise.fulfill p 4;
    (* Already resolved: runs immediately. *)
    Promise.on_fulfill p (fun v -> order := ("cb2", v) :: !order);
    Alcotest.(check (list (pair string int)))
      "both callbacks ran"
      [ ("cb2", 4); ("cb1", 4) ]
      !order)

let test_promise_combinators () =
  S.run (fun () ->
    let a = Promise.create () and b = Promise.create () in
    let pair = Promise.both a b in
    let doubled = Promise.map (fun x -> 2 * x) a in
    check_bool "pair pending" false (Promise.is_resolved pair);
    Promise.fulfill a 1;
    check_bool "pair still pending" false (Promise.is_resolved pair);
    check_int "map resolved eagerly" 2 (Promise.await doubled);
    Promise.fulfill b 2;
    Alcotest.(check (pair int int)) "both" (1, 2) (Promise.await pair);
    let ps = List.init 5 (fun _ -> Promise.create ()) in
    let every = Promise.all ps in
    List.iteri (fun i p -> Promise.fulfill p i) (List.rev ps);
    Alcotest.(check (list int)) "all preserves order" [ 0; 1; 2; 3; 4 ]
      (List.rev (Promise.await every));
    Alcotest.(check (list int)) "all []" [] (Promise.await (Promise.all [])))

let test_promise_all_propagates_force () =
  S.run (fun () ->
    let forced = Atomic.make 0 in
    let ps =
      List.init 3 (fun _ ->
        Promise.create ~on_force:(fun _ -> Atomic.incr forced) ())
    in
    let every = Promise.all ps in
    List.iteri (fun i p -> Promise.fulfill p i) ps;
    check_int "components not yet forced" 0 (Atomic.get forced);
    ignore (Promise.await every : int list);
    check_int "force propagated to every component" 3 (Atomic.get forced))

exception Boom

let test_promise_rejection () =
  S.run (fun () ->
    (* Awaiting a rejected promise re-raises; status is observable. *)
    let p = Promise.create () in
    check_bool "not rejected while pending" false (Promise.is_rejected p);
    S.spawn (fun () -> Promise.fulfill_error p Boom);
    (match Promise.await p with
    | (_ : int) -> Alcotest.fail "await must re-raise"
    | exception Boom -> ());
    check_bool "resolved" true (Promise.is_resolved p);
    check_bool "rejected" true (Promise.is_rejected p);
    (* try_read and peek re-raise on a rejected promise too. *)
    (match Promise.try_read p with
    | _ -> Alcotest.fail "try_read must re-raise"
    | exception Boom -> ());
    (match Promise.peek p with
    | _ -> Alcotest.fail "peek must re-raise"
    | exception Boom -> ());
    (* A rejected promise cannot be fulfilled afterwards. *)
    check_bool "try_fulfill fails" false (Promise.try_fulfill p 1);
    check_bool "try_fulfill_error fails" false
      (Promise.try_fulfill_error p Not_found))

let test_promise_rejection_force_hook () =
  (* The force hook fires on a rejecting await exactly as on a value. *)
  S.run (fun () ->
    let fired = ref [] in
    let p = Promise.create ~on_force:(fun r -> fired := r :: !fired) () in
    Promise.fulfill_error p Boom;
    (match Promise.await p with
    | (_ : int) -> Alcotest.fail "await must re-raise"
    | exception Boom -> ());
    (match Promise.await p with
    | (_ : int) -> Alcotest.fail "await must re-raise again"
    | exception Boom -> ());
    Alcotest.(check (list bool)) "once, ready" [ true ] !fired)

let test_promise_map_rejection () =
  S.run (fun () ->
    (* map propagates an upstream rejection... *)
    let a = Promise.create () in
    let b = Promise.map (fun x -> x + 1) a in
    Promise.fulfill_error a Boom;
    (match Promise.await b with
    | (_ : int) -> Alcotest.fail "mapped promise must reject"
    | exception Boom -> ());
    (* ...and a raising mapper rejects the downstream promise. *)
    let c = Promise.create () in
    let d = Promise.map (fun _ -> raise Boom) c in
    Promise.fulfill c 1;
    match Promise.await d with
    | _ -> Alcotest.fail "raising mapper must reject"
    | exception Boom -> ())

let test_promise_combinators_rejection () =
  S.run (fun () ->
    (* both: the rejection wins over the later value. *)
    let a = Promise.create () and b = Promise.create () in
    let pair = Promise.both a b in
    Promise.fulfill_error a Boom;
    Promise.fulfill b 2;
    (match Promise.await pair with
    | (_ : int * int) -> Alcotest.fail "both must reject"
    | exception Boom -> ());
    (* all: one rejection rejects the aggregate even with the rest Ok. *)
    let ps = List.init 4 (fun _ -> Promise.create ()) in
    let every = Promise.all ps in
    List.iteri
      (fun i p ->
        if i = 2 then Promise.fulfill_error p Boom else Promise.fulfill p i)
      ps;
    match Promise.await every with
    | (_ : int list) -> Alcotest.fail "all must reject"
    | exception Boom -> ())

let test_promise_multi_domain_readers () =
  (* Many readers on several domains force the same promise; one
     fulfiller wakes them all, and the force hook still fires once. *)
  let readers = 16 in
  let total, forces =
    S.run ~domains:4 (fun () ->
      let forced = Atomic.make 0 in
      let p = Promise.create ~on_force:(fun _ -> Atomic.incr forced) () in
      let acc = Atomic.make 0 in
      let latch = Latch.create readers in
      for _ = 1 to readers do
        S.spawn (fun () ->
          ignore (Atomic.fetch_and_add acc (Promise.await p) : int);
          Latch.count_down latch)
      done;
      S.spawn (fun () -> Promise.fulfill p 5);
      Latch.wait latch;
      (Atomic.get acc, Atomic.get forced))
  in
  check_int "all readers woke" (5 * readers) total;
  check_int "hook fired exactly once" 1 forces

(* -- latch -------------------------------------------------------------------- *)

let test_latch_zero () = S.run (fun () -> Latch.wait (Latch.create 0))

let test_latch_underflow () =
  S.run (fun () ->
    let l = Latch.create 1 in
    Latch.count_down l;
    Alcotest.check_raises "underflow"
      (Invalid_argument "Latch.count_down: already at zero") (fun () ->
        Latch.count_down l))

let test_latch_negative () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Latch.create: negative count") (fun () ->
      ignore (Latch.create (-1) : Latch.t))

(* -- fiber mutex / condition --------------------------------------------------- *)

let test_mutex_mutual_exclusion () =
  let counter = ref 0 in
  S.run ~domains:4 (fun () ->
    let m = Mutex.create () in
    let latch = Latch.create 8 in
    for _ = 1 to 8 do
      S.spawn (fun () ->
        for _ = 1 to 5_000 do
          Mutex.lock m;
          counter := !counter + 1;
          Mutex.unlock m
        done;
        Latch.count_down latch)
    done;
    Latch.wait latch);
  check_int "no lost updates" 40_000 !counter

let test_mutex_trylock () =
  S.run (fun () ->
    let m = Mutex.create () in
    check_bool "first" true (Mutex.try_lock m);
    check_bool "second" false (Mutex.try_lock m);
    Mutex.unlock m;
    check_bool "after unlock" true (Mutex.try_lock m);
    Mutex.unlock m)

let test_mutex_unlock_unlocked () =
  S.run (fun () ->
    let m = Mutex.create () in
    Alcotest.check_raises "unlock raises"
      (Invalid_argument "Fiber_mutex.unlock: not locked") (fun () ->
        Mutex.unlock m))

let test_with_lock_releases_on_exn () =
  S.run (fun () ->
    let m = Mutex.create () in
    (try Mutex.with_lock m (fun () -> failwith "x") with Failure _ -> ());
    check_bool "released" true (Mutex.try_lock m);
    Mutex.unlock m)

let test_cond_parity () =
  let final =
    S.run ~domains:2 (fun () ->
      let m = Mutex.create () in
      let c = Cond.create () in
      let x = ref 0 in
      let latch = Latch.create 4 in
      for w = 0 to 3 do
        S.spawn (fun () ->
          let parity = w mod 2 in
          for _ = 1 to 250 do
            Mutex.lock m;
            while !x mod 2 <> parity do
              Cond.wait c m
            done;
            incr x;
            Cond.broadcast c;
            Mutex.unlock m
          done;
          Latch.count_down latch)
      done;
      Latch.wait latch;
      !x)
  in
  check_int "alternating increments" 1000 final

let test_cond_signal_wakes_one () =
  S.run (fun () ->
    let m = Mutex.create () in
    let c = Cond.create () in
    let woken = ref 0 in
    let ready = ref 0 in
    for _ = 1 to 3 do
      S.spawn (fun () ->
        Mutex.lock m;
        incr ready;
        Cond.wait c m;
        incr woken;
        Mutex.unlock m)
    done;
    (* Let the three waiters park. *)
    while !ready < 3 do
      S.yield ()
    done;
    Mutex.lock m;
    Cond.signal c;
    Mutex.unlock m;
    S.yield ();
    S.yield ();
    check_int "exactly one woken" 1 !woken;
    Mutex.lock m;
    Cond.broadcast c;
    Mutex.unlock m)

(* -- parfor --------------------------------------------------------------------- *)

let test_parfor_covers_range () =
  let n = 1000 in
  let hits = Array.make n 0 in
  S.run ~domains:2 (fun () ->
    Parfor.for_each n (fun i -> hits.(i) <- hits.(i) + 1));
  check_bool "each index exactly once" true (Array.for_all (( = ) 1) hits)

let test_parfor_empty () =
  S.run (fun () -> Parfor.for_range 5 5 (fun _ _ -> Alcotest.fail "called"))

let test_parfor_reduce () =
  let n = 10_000 in
  let total =
    S.run ~domains:2 (fun () ->
      Parfor.reduce_range 0 n ~neutral:0
        ~chunk:(fun lo hi ->
          let acc = ref 0 in
          for i = lo to hi - 1 do
            acc := !acc + i
          done;
          !acc)
        ~combine:( + ))
  in
  check_int "reduce sum" (n * (n - 1) / 2) total

let test_parfor_single_chunk () =
  let calls = ref 0 in
  S.run (fun () ->
    Parfor.for_range ~chunks:1 0 10 (fun lo hi ->
      incr calls;
      check_int "lo" 0 lo;
      check_int "hi" 10 hi));
  check_int "one chunk" 1 !calls

(* -- blocking queues ---------------------------------------------------------------- *)

module Bq = Qs_sched.Bqueue

let test_bqueue_spsc_blocks () =
  let received =
    S.run (fun () ->
      let q = Bq.Spsc.create () in
      let log = ref [] in
      S.spawn (fun () ->
        (* Consumer parks on the empty queue. *)
        for _ = 1 to 5 do
          match Bq.Spsc.dequeue q with
          | Some v -> log := v :: !log
          | None -> Alcotest.fail "unexpected close"
        done);
      S.spawn (fun () ->
        for i = 1 to 5 do
          Bq.Spsc.enqueue q i;
          S.yield ()
        done);
      S.yield ();
      log)
  in
  Alcotest.(check (list int)) "fifo through parking" [ 1; 2; 3; 4; 5 ]
    (List.rev !received)

let test_bqueue_mpsc_close_drains () =
  S.run (fun () ->
    let q = Bq.Mpsc.create () in
    Bq.Mpsc.enqueue q 1;
    Bq.Mpsc.enqueue q 2;
    Bq.Mpsc.close q;
    check_bool "closed" true (Bq.Mpsc.is_closed q);
    Alcotest.(check (option int)) "first" (Some 1) (Bq.Mpsc.dequeue q);
    Alcotest.(check (option int)) "second" (Some 2) (Bq.Mpsc.dequeue q);
    Alcotest.(check (option int)) "drained" None (Bq.Mpsc.dequeue q))

let test_bqueue_mpsc_close_wakes_consumer () =
  let result =
    S.run (fun () ->
      let q : int Bq.Mpsc.t = Bq.Mpsc.create () in
      let got = ref (Some 99) in
      S.spawn (fun () -> got := Bq.Mpsc.dequeue q);
      S.spawn (fun () ->
        S.yield ();
        Bq.Mpsc.close q);
      got)
  in
  Alcotest.(check (option int)) "woken with None" None !result

let test_bqueue_mpsc_many_producers () =
  let total =
    S.run ~domains:3 (fun () ->
      let q = Bq.Mpsc.create () in
      let producers = 5 and per = 500 in
      let latch = Latch.create producers in
      for _ = 1 to producers do
        S.spawn (fun () ->
          for i = 1 to per do
            Bq.Mpsc.enqueue q i
          done;
          Latch.count_down latch)
      done;
      let acc = ref 0 in
      for _ = 1 to producers * per do
        match Bq.Mpsc.dequeue q with
        | Some v -> acc := !acc + v
        | None -> Alcotest.fail "unexpected close"
      done;
      Latch.wait latch;
      !acc)
  in
  check_int "every message delivered" (5 * (500 * 501 / 2)) total

(* -- property tests --------------------------------------------------------------- *)

let prop_parfor_partition =
  QCheck2.Test.make ~count:200 ~name:"split partitions the range"
    QCheck2.Gen.(pair (int_bound 500) (int_range 1 32))
    (fun (n, parts) ->
      let ranges = Qs_benchmarks.Bench_types.split n parts in
      let covered = List.concat_map (fun (lo, hi) -> List.init (hi - lo) (fun k -> lo + k)) ranges in
      covered = List.init n Fun.id)

let prop_spawn_all_run =
  QCheck2.Test.make ~count:50 ~name:"every spawned fiber completes"
    QCheck2.Gen.(int_range 0 200)
    (fun n ->
      let hits = Atomic.make 0 in
      S.run ~domains:2 (fun () ->
        for _ = 1 to n do
          S.spawn (fun () -> Atomic.incr hits)
        done);
      Atomic.get hits = n)

(* -- timers and timeouts ---------------------------------------------------- *)

(* CAS-append for collecting completion order from multiple domains. *)
let atomic_push acc x =
  let rec go () =
    let old = Atomic.get acc in
    if not (Atomic.compare_and_set acc old (x :: old)) then go ()
  in
  go ()

let test_sleep_basic () =
  let t0 = Unix.gettimeofday () in
  S.run (fun () -> S.sleep 0.03);
  let dt = Unix.gettimeofday () -. t0 in
  check_bool "slept at least the requested time" true (dt >= 0.03);
  check_bool "woke in bounded time" true (dt < 0.5)

let test_sleep_zero_is_yield () =
  (* sleep 0 must not arm a timer, just reschedule *)
  let final = ref None in
  S.run ~on_counters:(fun c -> final := Some c) (fun () -> S.sleep 0.0);
  match !final with
  | Some c -> check_int "no timer armed" 0 c.S.c_timer_arms
  | None -> Alcotest.fail "no counters"

let test_sleep_ordering_across_domains () =
  (* Fibers sleeping on different workers must complete in deadline order,
     not spawn order. *)
  let order = Atomic.make [] in
  S.run ~domains:2 (fun () ->
    List.iter
      (fun (dt, tag) -> S.spawn (fun () -> S.sleep dt; atomic_push order tag))
      [ (0.06, 3); (0.04, 2); (0.02, 1) ]);
  check_bool "deadline order" true (List.rev (Atomic.get order) = [ 1; 2; 3 ])

let test_sleep_keeps_dependents_alive () =
  (* All workers idle, one fiber asleep, another suspended waiting on it:
     the pending timer is a wake source, not a deadlock. *)
  let v =
    S.run (fun () ->
      let iv = Ivar.create () in
      S.spawn (fun () ->
        S.sleep 0.03;
        Ivar.fill iv 7);
      Ivar.read iv)
  in
  check_int "value after sleep" 7 v

let test_unexpired_timer_no_false_stall () =
  (* A timer armed far in the future must neither stall nor delay an
     otherwise-finished run. *)
  let t0 = Unix.gettimeofday () in
  S.run (fun () -> ignore (S.arm_timer ~delay:60.0 (fun () -> ()) : Qs_sched.Timer.handle));
  check_bool "returned immediately" true (Unix.gettimeofday () -. t0 < 1.0)

let test_stall_still_detected_after_timer () =
  (* Once the last timer has fired, a genuine deadlock must still raise. *)
  match
    S.run (fun () ->
      S.spawn (fun () -> S.suspend (fun _ -> ()));
      S.sleep 0.02)
  with
  | exception S.Stalled n -> check_int "one stuck fiber" 1 n
  | () -> Alcotest.fail "expected Stalled"

let test_suspend_timeout_resumed () =
  (* Resumed before the deadline: `Resumed, and the timer is cancelled
     (never fires). *)
  let final = ref None in
  let outcome = ref None in
  S.run ~on_counters:(fun c -> final := Some c) (fun () ->
    let cell = ref None in
    S.spawn (fun () ->
      let rec kick n =
        match !cell with
        | Some r -> r ()
        | None -> if n > 0 then (S.yield (); kick (n - 1))
      in
      kick 10_000);
    outcome := Some (S.suspend_timeout (fun resume -> cell := Some resume) 5.0));
  check_bool "resumed" true (!outcome = Some `Resumed);
  match !final with
  | Some c ->
    check_int "timer armed" 1 c.S.c_timer_arms;
    check_int "timer cancelled, not fired" 0 c.S.c_timer_fires
  | None -> Alcotest.fail "no counters"

let test_suspend_timeout_times_out () =
  let t0 = Unix.gettimeofday () in
  let v = S.run (fun () -> S.suspend_timeout (fun _ -> ()) 0.05) in
  let dt = Unix.gettimeofday () -. t0 in
  check_bool "timed out" true (v = `Timed_out);
  check_bool "after the deadline" true (dt >= 0.05);
  check_bool "within ~2x the deadline" true (dt <= 0.1 +. 0.05)

let test_timeout_race_exactly_once () =
  (* Fulfilment racing the deadline: whatever the winner, each waiter is
     resumed exactly once (a double resume would trip the one-shot
     continuation) and the verdicts are mutually exclusive by construction. *)
  let resumed = Atomic.make 0 and timed_out = Atomic.make 0 in
  S.run ~domains:2 (fun () ->
    for _ = 1 to 40 do
      S.spawn (fun () ->
        let cell = ref None in
        S.spawn (fun () ->
          S.sleep 0.005;
          match !cell with Some r -> r () | None -> ());
        match S.suspend_timeout (fun resume -> cell := Some resume) 0.005 with
        | `Resumed -> Atomic.incr resumed
        | `Timed_out -> Atomic.incr timed_out)
    done);
  check_int "every waiter got exactly one verdict" 40
    (Atomic.get resumed + Atomic.get timed_out)

let test_hot_slot_fairness () =
  (* Regression: a direct-handoff ping-pong pair keeps the hot slot full on
     every dispatch; the yielding main fiber (global inject queue) must
     still make progress via the periodic global check.  Before the fix the
     pair starved it until the round cap. *)
  let cap = 500_000 in
  let done_ = ref false in
  let rounds = ref 0 in
  S.run (fun () ->
    let slot_a = ref None and slot_b = ref None in
    let kick slot =
      match !slot with
      | Some r ->
        slot := None;
        r ()
      | None -> ()
    in
    S.spawn (fun () ->
      while (not !done_) && !rounds < cap do
        incr rounds;
        S.suspend (fun resume ->
          slot_a := Some resume;
          kick slot_b)
      done;
      kick slot_b);
    S.spawn (fun () ->
      while (not !done_) && !rounds < cap do
        S.suspend (fun resume ->
          slot_b := Some resume;
          kick slot_a)
      done;
      kick slot_a);
    for _ = 1 to 3 do
      S.yield ()
    done;
    done_ := true);
  check_bool "yielded fiber progressed before the round cap" true
    (!rounds < cap)

(* -- scheduler pools -------------------------------------------------------- *)

let test_pool_unknown_rejected () =
  check_bool "unknown pool" true
    (try
       S.run (fun () -> S.spawn_in "nope" (fun () -> ()));
       false
     with Invalid_argument _ -> true);
  check_bool "duplicate pool name" true
    (try
       S.run ~pools:[ "a"; "a" ] (fun () -> ());
       false
     with Invalid_argument _ -> true)

let test_pool_pinning () =
  (* A fiber spawned into a pool observes that pool at every execution
     slice — across yields, suspensions and resumptions — because only
     member workers of its pool ever run it.  Unpinned fibers stay in
     "default" likewise. *)
  let ok_hot = Atomic.make true and ok_def = Atomic.make true in
  let observe flag expected =
    if S.current_pool () <> expected then Atomic.set flag false
  in
  S.run ~domains:2 ~pools:[ "hot" ] (fun () ->
    let latch = Latch.create 40 in
    for _ = 1 to 20 do
      S.spawn_in "hot" (fun () ->
        observe ok_hot "hot";
        S.yield ();
        observe ok_hot "hot";
        S.sleep 0.001;
        observe ok_hot "hot";
        S.spawn (fun () ->
          (* children inherit the pool *)
          observe ok_hot "hot";
          Latch.count_down latch);
        Latch.count_down latch)
    done;
    check_int "spawner still in default" 0
      (if S.current_pool () = "default" then 0 else 1);
    Latch.wait latch;
    observe ok_def "default");
  check_bool "pinned fibers ran only in their pool" true (Atomic.get ok_hot);
  check_bool "main fiber stayed in default" true (Atomic.get ok_def)

let test_pool_absorbs_and_shrinks () =
  (* Autoscaling, observed deterministically with one worker: the worker
     starts in "default", migrates into "hot" when work floods it, and
     when "hot" runs dry it leaves for the waiting default work —
     shrinking the idle pool to zero members. *)
  let final = ref None in
  let observed = ref [] in
  S.run ~pools:[ "hot" ] ~on_counters:(fun c -> final := Some c) (fun () ->
    let latch = Latch.create 50 in
    for _ = 1 to 50 do
      S.spawn_in "hot" (fun () ->
        S.yield ();
        Latch.count_down latch)
    done;
    Latch.wait latch;
    (* The latch resumption brought the worker back to this (default)
       fiber, so "hot" has already lost its last member. *)
    observed := S.current_pool_counters ());
  let hot =
    match List.find_opt (fun p -> p.S.p_name = "hot") !observed with
    | Some p -> p
    | None -> Alcotest.fail "hot pool missing from pool_counters"
  in
  check_int "hot pool shrank to zero workers" 0 hot.S.p_workers;
  check_bool "hot pool recorded idle shrinks" true (hot.S.p_idle_shrinks >= 1);
  check_bool "hot pool drained its injections" true (hot.S.p_drains >= 50);
  match !final with
  | Some c ->
    check_bool "aggregate migrations counted" true (c.S.c_pool_migrations >= 2);
    check_bool "aggregate drains include hot" true
      (c.S.c_pool_drains >= hot.S.p_drains)
  | None -> Alcotest.fail "final counters missing"

let test_pool_multi_domain_flood () =
  (* Cross-domain pools under load: all fibers complete, pinning holds,
     and idle workers migrate into the flooded pool. *)
  let n = 2_000 in
  let hits = Atomic.make 0 in
  let ok = Atomic.make true in
  let final = ref None in
  S.run ~domains:4 ~pools:[ "hot"; "cold" ]
    ~on_counters:(fun c -> final := Some c)
    (fun () ->
      let latch = Latch.create n in
      for i = 1 to n do
        let pool = if i mod 4 = 0 then "cold" else "hot" in
        S.spawn_in pool (fun () ->
          if S.current_pool () <> pool then Atomic.set ok false;
          S.yield ();
          if S.current_pool () <> pool then Atomic.set ok false;
          Atomic.incr hits;
          Latch.count_down latch)
      done;
      Latch.wait latch);
  check_int "all pooled fibers ran" n (Atomic.get hits);
  check_bool "pinning held under load" true (Atomic.get ok);
  match !final with
  | Some c -> check_bool "workers migrated" true (c.S.c_pool_migrations > 0)
  | None -> Alcotest.fail "final counters missing"

let test_pool_counters_assoc_shape () =
  (* The flat view carries the aggregate keys (CI asserts on them) and a
     per-pool breakdown for every declared pool. *)
  let assoc = ref [] in
  S.run ~pools:[ "hot" ] (fun () ->
    S.spawn_in "hot" (fun () -> S.yield ());
    S.yield ();
    assoc := S.pool_counters_assoc (S.current_pool_counters ()));
  let has k = List.mem_assoc k !assoc in
  check_bool "pool_drains" true (has "pool_drains");
  check_bool "pool_migrations" true (has "pool_migrations");
  check_bool "pool_idle_shrinks" true (has "pool_idle_shrinks");
  check_bool "per-pool default" true (has "pool.default.drains");
  check_bool "per-pool hot" true (has "pool.hot.workers");
  check_bool "empty outside a scheduler" true (S.current_pool_counters () = [])

(* -- generation-stamped cells ------------------------------------------------ *)

module Cell = Qs_sched.Cell

let test_cell_roundtrip () =
  S.run (fun () ->
    let c : int Cell.t = Cell.create () in
    let gen = Cell.generation c in
    check_int "fresh generation" 0 gen;
    check_bool "fill" true (Cell.try_fill c ~gen 41);
    check_bool "double fill refused" false (Cell.try_fill c ~gen 42);
    (match Cell.result c ~gen with
    | Ok v -> check_int "value" 41 v
    | Error _ -> Alcotest.fail "expected Ok");
    Cell.recycle c;
    check_int "generation bumped" 1 (Cell.generation c);
    let gen = Cell.generation c in
    check_bool "refill after recycle" true (Cell.try_fill c ~gen 7);
    check_int "next generation's value" 7 (Cell.read c ~gen))

let test_cell_error () =
  S.run (fun () ->
    let c : int Cell.t = Cell.create () in
    let gen = Cell.generation c in
    check_bool "error fill" true (Cell.try_fill_error c ~gen Exit);
    (match Cell.result c ~gen with
    | Error (Exit, _) -> ()
    | _ -> Alcotest.fail "expected Error Exit");
    check_bool "read re-raises" true
      (try
         ignore (Cell.read c ~gen : int);
         false
       with Exit -> true))

let test_cell_stale_read () =
  S.run (fun () ->
    let c : int Cell.t = Cell.create () in
    let old = Cell.generation c in
    check_bool "fill old" true (Cell.try_fill c ~gen:old 1);
    Cell.recycle c;
    let gen = Cell.generation c in
    check_bool "fill new" true (Cell.try_fill c ~gen 2);
    (* A reader still holding the recycled generation must never see the
       new generation's value. *)
    check_bool "stale result raises" true
      (try
         ignore (Cell.result c ~gen:old : int Cell.outcome);
         false
       with Cell.Stale -> true);
    check_bool "stale peek raises" true
      (try
         ignore (Cell.peek_result c ~gen:old : int Cell.outcome option);
         false
       with Cell.Stale -> true);
    (* The current generation still reads its own value. *)
    check_int "current generation unaffected" 2 (Cell.read c ~gen))

let test_cell_stale_while_empty () =
  S.run (fun () ->
    let c : int Cell.t = Cell.create () in
    let old = Cell.generation c in
    check_bool "fill+consume" true (Cell.try_fill c ~gen:old 1);
    Cell.recycle c;
    (* Recycled but not yet refilled: a stale reader must raise, not
       block forever waiting for a generation that is over. *)
    check_bool "stale read of empty next gen" true
      (try
         ignore (Cell.result c ~gen:old : int Cell.outcome);
         false
       with Cell.Stale -> true))

let test_cell_timeout_abandon () =
  S.run (fun () ->
    let c : int Cell.t = Cell.create () in
    let gen = Cell.generation c in
    check_bool "times out unfilled" true
      (Cell.result_timeout c ~gen 0.02 = None);
    (* The abandon protocol: the timed-out reader error-fills; the late
       real fill then fails, telling the filler the rendezvous is dead. *)
    check_bool "abandon fill wins" true (Cell.try_fill_error c ~gen Exit);
    check_bool "late real fill loses" false (Cell.try_fill c ~gen 9))

(* The qcheck property behind the pooled request path: across an
   arbitrary sequence of generations with an awaiter each, every awaiter
   either reads exactly its own generation's value or observes [Stale] —
   a recycled cell is never observed by a stale awaiter.  Readers are
   spawned concurrently and the owner recycles as soon as the value is
   consumed, across 4 domains to give stale wake-ups a chance. *)
let prop_cell_generations =
  QCheck2.Test.make ~count:30 ~name:"cell: stale awaiter never sees a value"
    QCheck2.Gen.(int_range 1 40)
    (fun gens ->
      S.run ~domains:4 (fun () ->
        let c : int Cell.t = Cell.create () in
        let ok = Atomic.make true in
        let mism = Atomic.make 0 in
        for g = 0 to gens - 1 do
          let gen = Cell.generation c in
          if gen <> g then Atomic.set ok false;
          let consumed = Ivar.create () in
          (* the generation's awaiter *)
          S.spawn (fun () ->
            (match Cell.result c ~gen with
            | Ok v -> if v <> g * 1000 then Atomic.set ok false
            | Error _ -> Atomic.set ok false
            | exception Cell.Stale ->
              (* possible only if the owner recycled first, which it
                 never does before consumption — count, don't fail *)
              Atomic.incr mism);
            Ivar.fill consumed ());
          (* a straggler holding the previous generation: it may observe
             its own generation's leftover value or [Stale], never the
             current generation's value *)
          if g > 0 then
            S.spawn (fun () ->
              match Cell.peek_result c ~gen:(g - 1) with
              | Some (Ok v) -> if v <> (g - 1) * 1000 then Atomic.set ok false
              | Some (Error _) -> Atomic.set ok false
              | None -> ()
              | exception Cell.Stale -> ());
          ignore (Cell.try_fill c ~gen (g * 1000) : bool);
          Ivar.read consumed;
          Cell.recycle c
        done;
        Atomic.get ok && Atomic.get mism = 0))

let test_cell_multi_domain_stress () =
  (* 4 domains, many generations: one filler domain races the awaiter
     and a pack of stale readers; nobody may ever observe a value from a
     generation they did not issue. *)
  let rounds = 500 in
  let wrong = Atomic.make 0 in
  S.run ~domains:4 (fun () ->
    let c : int Cell.t = Cell.create () in
    for g = 0 to rounds - 1 do
      let gen = Cell.generation c in
      let consumed = Ivar.create () in
      S.spawn (fun () ->
        (match Cell.result c ~gen with
        | Ok v -> if v <> g then Atomic.incr wrong
        | Error _ -> Atomic.incr wrong
        | exception Cell.Stale -> ());
        Ivar.fill consumed ());
      S.spawn (fun () -> ignore (Cell.try_fill c ~gen g : bool));
      (* stale readers from arbitrary earlier generations *)
      if g mod 7 = 0 && g > 0 then
        S.spawn (fun () ->
          match Cell.peek_result c ~gen:(g - 1) with
          | Some (Ok v) -> if v <> g - 1 then Atomic.incr wrong
          | Some (Error _) -> Atomic.incr wrong
          | None -> ()
          | exception Cell.Stale -> ());
      Ivar.read consumed;
      Cell.recycle c
    done);
  check_int "no cross-generation value observed" 0 (Atomic.get wrong)

(* -- poller: fd readiness as a wake source ------------------------------- *)

let nonblock_pipe () =
  let r, w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock r;
  Unix.set_nonblock w;
  (r, w)

let test_await_readable_wakes () =
  let r, w = nonblock_pipe () in
  S.run (fun () ->
    S.spawn (fun () ->
      S.sleep 0.02;
      ignore (Unix.write w (Bytes.of_string "x") 0 1 : int));
    S.await_readable r;
    let buf = Bytes.create 1 in
    check_int "byte arrived after the park" 1 (Unix.read r buf 0 1);
    check_bool "payload" true (Bytes.get buf 0 = 'x'));
  Unix.close r;
  Unix.close w

let test_await_writable_full_pipe () =
  let r, w = nonblock_pipe () in
  (* Fill the pipe until the kernel pushes back. *)
  let chunk = Bytes.make 4096 'z' in
  let filled = ref true in
  while !filled do
    match Unix.write w chunk 0 4096 with
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      filled := false
  done;
  S.run (fun () ->
    S.spawn (fun () ->
      S.sleep 0.02;
      (* Drain enough for a write to fit again. *)
      let buf = Bytes.create 65536 in
      ignore (Unix.read r buf 0 65536 : int));
    S.await_writable w;
    check_bool "write succeeds after the drain" true
      (Unix.write w chunk 0 1 = 1));
  Unix.close r;
  Unix.close w

let test_timer_fires_while_fd_parked () =
  (* A parked fd waiter must not starve the timer heap: the poller dozes
     only to the nearest deadline. *)
  let r, w = nonblock_pipe () in
  S.run (fun () ->
    S.spawn (fun () ->
      S.await_readable r;
      let buf = Bytes.create 1 in
      ignore (Unix.read r buf 0 1 : int));
    let t0 = Unix.gettimeofday () in
    S.sleep 0.03;
    let dt = Unix.gettimeofday () -. t0 in
    check_bool "sleep fired promptly despite the fd waiter" true (dt < 1.0);
    ignore (Unix.write w (Bytes.of_string "y") 0 1 : int));
  Unix.close r;
  Unix.close w

let test_closed_fd_unblocks_waiter () =
  (* Closing a descriptor out from under its waiter must resume it (the
     poller's EBADF sweep), not strand the scheduler. *)
  let r, w = nonblock_pipe () in
  let resumed = ref false in
  S.run (fun () ->
    S.spawn (fun () ->
      S.await_readable r;
      resumed := true);
    S.sleep 0.02;
    Unix.close r);
  check_bool "waiter resumed after close" true !resumed;
  Unix.close w

let test_many_fd_waiters_wake_independently () =
  let pipes = Array.init 4 (fun _ -> nonblock_pipe ()) in
  let woken = Array.make 4 false in
  S.run (fun () ->
    Array.iteri
      (fun i (r, _) ->
        S.spawn (fun () ->
          S.await_readable r;
          let buf = Bytes.create 1 in
          ignore (Unix.read r buf 0 1 : int);
          woken.(i) <- true))
      pipes;
    (* Release them one at a time, out of registration order. *)
    List.iter
      (fun i ->
        S.sleep 0.005;
        let _, w = pipes.(i) in
        ignore (Unix.write w (Bytes.of_string "k") 0 1 : int))
      [ 2; 0; 3; 1 ]);
  Array.iteri
    (fun i ok -> check_bool (Printf.sprintf "waiter %d woke" i) true ok)
    woken;
  Array.iter
    (fun (r, w) ->
      Unix.close r;
      Unix.close w)
    pipes

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "qs_sched"
    [
      ( "core",
        [
          Alcotest.test_case "run returns value" `Quick test_run_returns_value;
          Alcotest.test_case "run waits for spawned" `Quick test_run_waits_for_spawned;
          Alcotest.test_case "nested spawn" `Quick test_nested_spawn;
          Alcotest.test_case "live counters" `Quick test_live_counters;
          Alcotest.test_case "obs sink records events" `Quick
            test_obs_sink_records_sched_events;
          Alcotest.test_case "yield interleaves" `Quick test_yield_interleaves;
          Alcotest.test_case "suspend/resume" `Quick test_suspend_resume;
          Alcotest.test_case "resume idempotent" `Quick test_resume_idempotent;
          Alcotest.test_case "stall detection" `Quick test_stall_detection;
          Alcotest.test_case "stall counts fibers" `Quick test_stall_counts_fibers;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
          Alcotest.test_case "spawned exception propagates" `Quick
            test_spawned_exception_propagates;
          Alcotest.test_case "multi-domain sum" `Quick test_multi_domain_sum;
          Alcotest.test_case "nested run rejected" `Quick test_nested_run_rejected;
        ] );
      ( "pools",
        [
          Alcotest.test_case "unknown/duplicate rejected" `Quick
            test_pool_unknown_rejected;
          Alcotest.test_case "pinning across suspensions" `Quick
            test_pool_pinning;
          Alcotest.test_case "absorb and shrink to zero" `Quick
            test_pool_absorbs_and_shrinks;
          Alcotest.test_case "multi-domain flood" `Quick
            test_pool_multi_domain_flood;
          Alcotest.test_case "counters assoc shape" `Quick
            test_pool_counters_assoc_shape;
        ] );
      ( "timer",
        [
          Alcotest.test_case "sleep basic" `Quick test_sleep_basic;
          Alcotest.test_case "sleep zero is yield" `Quick test_sleep_zero_is_yield;
          Alcotest.test_case "sleep ordering across domains" `Quick
            test_sleep_ordering_across_domains;
          Alcotest.test_case "sleep keeps dependents alive" `Quick
            test_sleep_keeps_dependents_alive;
          Alcotest.test_case "unexpired timer, no false stall" `Quick
            test_unexpired_timer_no_false_stall;
          Alcotest.test_case "stall still detected after timer" `Quick
            test_stall_still_detected_after_timer;
          Alcotest.test_case "suspend_timeout resumed" `Quick
            test_suspend_timeout_resumed;
          Alcotest.test_case "suspend_timeout times out" `Quick
            test_suspend_timeout_times_out;
          Alcotest.test_case "timeout races fulfilment exactly once" `Quick
            test_timeout_race_exactly_once;
          Alcotest.test_case "hot-slot fairness regression" `Quick
            test_hot_slot_fairness;
        ] );
      ( "poller",
        [
          Alcotest.test_case "await_readable wakes" `Quick
            test_await_readable_wakes;
          Alcotest.test_case "await_writable on a full pipe" `Quick
            test_await_writable_full_pipe;
          Alcotest.test_case "timer fires while fd parked" `Quick
            test_timer_fires_while_fd_parked;
          Alcotest.test_case "closed fd unblocks waiter" `Quick
            test_closed_fd_unblocks_waiter;
          Alcotest.test_case "many waiters wake independently" `Quick
            test_many_fd_waiters_wake_independently;
        ] );
      ( "ivar",
        [
          Alcotest.test_case "basic" `Quick test_ivar_basic;
          Alcotest.test_case "many readers" `Quick test_ivar_many_readers;
          Alcotest.test_case "double fill" `Quick test_ivar_double_fill;
          Alcotest.test_case "peek" `Quick test_ivar_peek;
        ] );
      ( "promise",
        [
          Alcotest.test_case "basic" `Quick test_promise_basic;
          Alcotest.test_case "try_read" `Quick test_promise_try_read;
          Alcotest.test_case "double fulfill" `Quick test_promise_double_fulfill;
          Alcotest.test_case "force hook" `Quick test_promise_force_hook;
          Alcotest.test_case "on_fulfill" `Quick test_promise_on_fulfill;
          Alcotest.test_case "combinators" `Quick test_promise_combinators;
          Alcotest.test_case "all propagates force" `Quick
            test_promise_all_propagates_force;
          Alcotest.test_case "rejection" `Quick test_promise_rejection;
          Alcotest.test_case "rejection force hook" `Quick
            test_promise_rejection_force_hook;
          Alcotest.test_case "map rejection" `Quick test_promise_map_rejection;
          Alcotest.test_case "combinator rejection" `Quick
            test_promise_combinators_rejection;
          Alcotest.test_case "multi-domain readers" `Quick
            test_promise_multi_domain_readers;
        ] );
      ( "latch",
        [
          Alcotest.test_case "zero count" `Quick test_latch_zero;
          Alcotest.test_case "underflow" `Quick test_latch_underflow;
          Alcotest.test_case "negative" `Quick test_latch_negative;
        ] );
      ( "mutex/cond",
        [
          Alcotest.test_case "mutual exclusion" `Quick test_mutex_mutual_exclusion;
          Alcotest.test_case "trylock" `Quick test_mutex_trylock;
          Alcotest.test_case "unlock unlocked" `Quick test_mutex_unlock_unlocked;
          Alcotest.test_case "with_lock releases on exn" `Quick
            test_with_lock_releases_on_exn;
          Alcotest.test_case "condition parity" `Quick test_cond_parity;
          Alcotest.test_case "signal wakes one" `Quick test_cond_signal_wakes_one;
        ] );
      ( "blocking queues",
        [
          Alcotest.test_case "spsc parks and wakes" `Quick test_bqueue_spsc_blocks;
          Alcotest.test_case "mpsc close drains" `Quick test_bqueue_mpsc_close_drains;
          Alcotest.test_case "mpsc close wakes" `Quick
            test_bqueue_mpsc_close_wakes_consumer;
          Alcotest.test_case "mpsc many producers" `Quick
            test_bqueue_mpsc_many_producers;
        ] );
      ( "parfor",
        [
          Alcotest.test_case "covers range" `Quick test_parfor_covers_range;
          Alcotest.test_case "empty range" `Quick test_parfor_empty;
          Alcotest.test_case "reduce" `Quick test_parfor_reduce;
          Alcotest.test_case "single chunk" `Quick test_parfor_single_chunk;
        ] );
      ( "cells",
        [
          Alcotest.test_case "fill/read/recycle roundtrip" `Quick
            test_cell_roundtrip;
          Alcotest.test_case "error outcome" `Quick test_cell_error;
          Alcotest.test_case "stale read" `Quick test_cell_stale_read;
          Alcotest.test_case "stale read of empty next gen" `Quick
            test_cell_stale_while_empty;
          Alcotest.test_case "timeout abandon handoff" `Quick
            test_cell_timeout_abandon;
          Alcotest.test_case "multi-domain stress" `Quick
            test_cell_multi_domain_stress;
        ] );
      ( "properties",
        [
          qc prop_parfor_partition;
          qc prop_spawn_all_run;
          qc prop_cell_generations;
        ] );
    ]
