(* Integration tests: every benchmark of the paper's evaluation runs at a
   tiny scale, for every optimization configuration and every comparator
   paradigm.  Each benchmark validates its own output against the
   sequential reference internally (raising [Validation_failed] on any
   mismatch), so these tests assert end-to-end correctness of the whole
   stack — runtime, substrates, kernels — not just that nothing crashes. *)

module H = Qs_benchmarks.Harness
module B = Qs_benchmarks.Bench_types
module PD = Qs_benchmarks.Paper_data

let s = { H.tiny with H.reps = 1 }

let timings : B.timings Alcotest.testable =
  Alcotest.testable
    (fun ppf t -> Format.fprintf ppf "{total=%f}" t.B.total)
    (fun a b -> a = b)

let _ = timings

let check_positive name (t : B.timings) =
  Alcotest.(check bool) (name ^ " total positive") true (t.B.total > 0.0);
  Alcotest.(check bool)
    (name ^ " parts within total")
    true
    (t.B.compute >= 0.0 && t.B.comm >= 0.0)

(* One test per (task, config) for the SCOOP benchmarks. *)
let scoop_parallel_cases =
  List.concat_map
    (fun task ->
      List.map
        (fun config ->
          Alcotest.test_case
            (Printf.sprintf "%s [%s]" task config.Scoop.Config.name)
            `Quick
            (fun () -> check_positive task (H.scoop_parallel ~config s task)))
        Scoop.Config.presets)
    PD.parallel_tasks

let scoop_concurrent_cases =
  List.concat_map
    (fun task ->
      List.map
        (fun config ->
          Alcotest.test_case
            (Printf.sprintf "%s [%s]" task config.Scoop.Config.name)
            `Quick
            (fun () -> check_positive task (H.scoop_concurrent ~config s task)))
        Scoop.Config.presets)
    PD.concurrent_tasks

let lang_parallel_cases =
  List.concat_map
    (fun task ->
      List.map
        (fun lang ->
          Alcotest.test_case (Printf.sprintf "%s [%s]" task lang) `Quick
            (fun () -> check_positive task (H.lang_parallel ~lang s task)))
        PD.languages)
    PD.parallel_tasks

let lang_concurrent_cases =
  List.concat_map
    (fun task ->
      List.map
        (fun lang ->
          Alcotest.test_case (Printf.sprintf "%s [%s]" task lang) `Quick
            (fun () -> check_positive task (H.lang_concurrent ~lang s task)))
        PD.languages)
    PD.concurrent_tasks

(* Multi-domain runs of a representative subset. *)
let multidomain_cases =
  [
    Alcotest.test_case "scoop chain, 3 domains" `Quick (fun () ->
      check_positive "chain"
        (H.scoop_parallel ~config:Scoop.Config.all { s with H.domains = 3 } "chain"));
    Alcotest.test_case "scoop prodcons, 3 domains" `Quick (fun () ->
      check_positive "prodcons"
        (H.scoop_concurrent ~config:Scoop.Config.all { s with H.domains = 3 }
           "prodcons"));
    Alcotest.test_case "erlang chain, 2 domains" `Quick (fun () ->
      check_positive "chain"
        (H.lang_parallel ~lang:"erlang" { s with H.domains = 2 } "chain"));
    Alcotest.test_case "stm condition, 2 domains" `Quick (fun () ->
      check_positive "condition"
        (H.lang_concurrent ~lang:"haskell" { s with H.domains = 2 } "condition"));
  ]

(* EVE configurations execute correctly too. *)
let eve_cases =
  List.map
    (fun config ->
      Alcotest.test_case config.Scoop.Config.name `Quick (fun () ->
        check_positive "thresh" (H.scoop_parallel ~config s "thresh");
        check_positive "mutex" (H.scoop_concurrent ~config s "mutex")))
    [ Scoop.Config.eve_base; Scoop.Config.eve_qs ]

(* -- harness arithmetic --------------------------------------------------------- *)

let test_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (B.geomean [ 1.0; 2.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "singleton" 3.0 (B.geomean [ 3.0 ])

let test_median () =
  Alcotest.(check (float 1e-9)) "odd" 2.0 (B.median [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "even upper" 3.0 (B.median [ 1.0; 2.0; 3.0; 4.0 ])

let test_split_edges () =
  Alcotest.(check (list (pair int int))) "n < parts" [ (0, 1); (1, 2) ] (B.split 2 5);
  Alcotest.(check (list (pair int int))) "zero" [] (B.split 0 4);
  Alcotest.(check (list (pair int int))) "exact" [ (0, 2); (2, 4) ] (B.split 4 2)

let test_normalize_comm () =
  let mk comm = { B.total = comm; compute = 0.0; comm } in
  let per = [ ("a", mk 0.2); ("b", mk 0.1); ("c", mk 0.4) ] in
  let norm = H.normalize_comm per in
  Alcotest.(check (float 1e-6)) "best is 1" 1.0 (List.assoc "b" norm);
  Alcotest.(check (float 1e-6)) "a is 2x" 2.0 (List.assoc "a" norm);
  Alcotest.(check (float 1e-6)) "c is 4x" 4.0 (List.assoc "c" norm)

let test_validate_helpers () =
  B.validate_int "ok" ~expected:3 ~actual:3;
  Alcotest.check_raises "mismatch raises"
    (B.Validation_failed "x: expected 3, got 4") (fun () ->
      B.validate_int "x" ~expected:3 ~actual:4);
  B.validate_float "close" ~expected:1.0 ~actual:(1.0 +. 1e-9)

let test_paper_data_complete () =
  (* Every (task, config/lang) cell the report prints must exist. *)
  List.iter
    (fun (task, per) ->
      Alcotest.(check int) task 5 (List.length per);
      List.iter
        (fun c ->
          Alcotest.(check bool) (task ^ "/" ^ c) true (List.mem_assoc c per))
        PD.opt_configs)
    PD.table1;
  List.iter
    (fun (task, per) ->
      List.iter
        (fun l ->
          Alcotest.(check bool) (task ^ "/" ^ l) true (List.mem_assoc l per))
        PD.languages)
    PD.table5;
  (* Table 4 has total rows for every language and task. *)
  List.iter
    (fun task ->
      List.iter
        (fun lang ->
          Alcotest.(check bool)
            (task ^ "/" ^ lang)
            true
            (PD.table4_lookup ~task ~lang ~variant:`Total <> None))
        PD.languages)
    PD.parallel_tasks

(* The paper's own headline claims hold in its reference data (sanity of
   our transcription). *)
let test_paper_claims () =
  let geo = PD.section44_geomeans in
  let speedup = List.assoc "none" geo /. List.assoc "all" geo in
  Alcotest.(check bool) "~15x claim (§4.4)" true (speedup > 14.0 && speedup < 16.0);
  (* SCOOP/Qs is the best-performing safe language overall (§5.4). *)
  let overall = PD.overall_geomeans in
  let qs = List.assoc "qs" overall in
  Alcotest.(check bool) "qs beats haskell and erlang" true
    (qs < List.assoc "haskell" overall && qs < List.assoc "erlang" overall)

let () =
  Alcotest.run "qs_benchmarks"
    [
      ("scoop parallel", scoop_parallel_cases);
      ("scoop concurrent", scoop_concurrent_cases);
      ("languages parallel", lang_parallel_cases);
      ("languages concurrent", lang_concurrent_cases);
      ("multi-domain", multidomain_cases);
      ("eve", eve_cases);
      ( "harness",
        [
          Alcotest.test_case "geomean" `Quick test_geomean;
          Alcotest.test_case "median" `Quick test_median;
          Alcotest.test_case "split edges" `Quick test_split_edges;
          Alcotest.test_case "normalize_comm" `Quick test_normalize_comm;
          Alcotest.test_case "validate helpers" `Quick test_validate_helpers;
          Alcotest.test_case "paper data complete" `Quick test_paper_data_complete;
          Alcotest.test_case "paper claims" `Quick test_paper_claims;
        ] );
    ]
