(* Tests for the executable operational semantics: the individual rules of
   Fig. 3, the paper's example programs (Figs. 1, 5, 6), the reasoning
   guarantees over exhaustively explored runs, and property tests over
   random programs. *)

open Qs_semantics

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -- normalization and single rules ------------------------------------------ *)

let test_norm () =
  let open Syntax in
  check_bool "skip;s" true (Step.norm (Seq (Skip, Atom "a")) = Atom "a");
  check_bool "nested skips" true
    (Step.norm (Seq (Seq (Skip, Skip), Seq (Skip, Atom "a"))) = Atom "a");
  check_bool "preserved" true
    (Step.norm (Seq (Atom "a", Atom "b")) = Seq (Atom "a", Atom "b"))

let test_separate_rule () =
  let open Syntax in
  let st = State.init [ (1, Separate ([ 10 ], Call (10, "f"))) ] in
  match Step.steps Step.qs st with
  | [ (Step.Reserved { client = 1; targets = [ 10 ] }, st') ] ->
    let h10 = State.handler st' 10 in
    check_int "one private queue" 1 (List.length h10.State.rq);
    check_int "tagged by client" 1 (List.hd h10.State.rq).State.client
  | _ -> Alcotest.fail "expected exactly the separate step"

let test_call_appends_to_last_pq () =
  (* A client with two registrations on the same handler logs into the
     most recent one ("lookup and updating work on the last occurrence"). *)
  let st =
    State.init [ (1, Syntax.Skip); (10, Syntax.Skip) ]
  in
  let st = State.reserve st ~client:1 ~target:10 in
  let st = State.log st ~client:1 ~target:10 (Syntax.Atom "first") in
  let st = State.reserve st ~client:1 ~target:10 in
  let st = State.log st ~client:1 ~target:10 (Syntax.Atom "second") in
  let h = State.handler st 10 in
  (match h.State.rq with
  | [ pq1; pq2 ] ->
    check_bool "older pq keeps first" true (pq1.State.items = [ Syntax.Atom "first" ]);
    check_bool "newer pq gets second" true (pq2.State.items = [ Syntax.Atom "second" ])
  | _ -> Alcotest.fail "expected two private queues");
  Alcotest.check_raises "unregistered client"
    (Invalid_argument "State.log: client not registered") (fun () ->
      ignore (State.log st ~client:9 ~target:10 Syntax.End : State.t))

let test_query_rule_original_vs_client_exec () =
  let open Syntax in
  let prog () =
    let st = State.init [ (1, Separate ([ 10 ], Query (10, "q"))) ] in
    match Step.steps Step.qs st with
    | [ (_, st') ] -> st'
    | _ -> Alcotest.fail "separate step"
  in
  (* Original rule: body + release are both logged. *)
  let st = prog () in
  let stepped =
    List.find_map
      (fun (l, s) -> match l with Step.Logged _ -> Some s | _ -> None)
      (Step.steps Step.qs st)
  in
  (match stepped with
  | Some st' ->
    let pq = List.hd (State.handler st' 10).State.rq in
    check_int "two items logged" 2 (List.length pq.State.items)
  | None -> Alcotest.fail "query step");
  (* Modified rule (§3.2): only the release marker is logged. *)
  let st = prog () in
  let stepped =
    List.find_map
      (fun (l, s) -> match l with Step.Logged _ -> Some s | _ -> None)
      (Step.steps Step.qs_client_exec st)
  in
  match stepped with
  | Some st' ->
    let pq = List.hd (State.handler st' 10).State.rq in
    check_int "only release logged" 1 (List.length pq.State.items)
  | None -> Alcotest.fail "query step (client exec)"

let test_self_reservation_rejected () =
  let st = State.init [ (1, Syntax.Separate ([ 1 ], Syntax.Skip)) ] in
  Alcotest.check_raises "self reservation"
    (Invalid_argument "Step: a handler cannot reserve itself") (fun () ->
      ignore (Step.steps Step.qs st))

let test_lock_mode_blocks () =
  let open Syntax in
  (* Two clients want the same handler; under the lock-based semantics the
     second separate cannot fire while the first holds the handler. *)
  let st =
    State.init
      [
        (1, Separate ([ 10 ], Call (10, "a")));
        (2, Separate ([ 10 ], Call (10, "b")));
      ]
  in
  (* Fire client 1's separate. *)
  let st1 =
    List.find_map
      (fun (l, s) ->
        match l with
        | Step.Reserved { client = 1; _ } -> Some s
        | _ -> None)
      (Step.steps Step.original st)
    |> Option.get
  in
  let client2_can_reserve =
    List.exists
      (fun (l, _) ->
        match l with Step.Reserved { client = 2; _ } -> true | _ -> false)
      (Step.steps Step.original st1)
  in
  check_bool "client 2 blocked under locks" false client2_can_reserve;
  (* Under SCOOP/Qs the same state lets both proceed. *)
  let st1q =
    List.find_map
      (fun (l, s) ->
        match l with
        | Step.Reserved { client = 1; _ } -> Some s
        | _ -> None)
      (Step.steps Step.qs st)
    |> Option.get
  in
  let client2_can_reserve_qs =
    List.exists
      (fun (l, _) ->
        match l with Step.Reserved { client = 2; _ } -> true | _ -> false)
      (Step.steps Step.qs st1q)
  in
  check_bool "client 2 free under qs" true client2_can_reserve_qs

(* -- paper examples ------------------------------------------------------------ *)

let test_fig1_two_interleavings mode () =
  let traces, truncated =
    Explore.observable_traces mode Examples.fig1
      ~filter:(Explore.on_handler Examples.x)
  in
  check_bool "not truncated" false truncated;
  check_bool "exactly the paper's two orders" true
    (List.sort compare traces = List.sort compare Examples.fig1_orders)

let test_fig1_guarantee mode () =
  let report = Guarantees.check_program mode Examples.fig1 in
  check_bool "guarantee 2 holds" true (report.Guarantees.violation = None);
  check_bool "exhaustive" true (Guarantees.exhaustive report);
  check_bool "nontrivial exploration" true (report.Guarantees.runs > 100)

let test_fig5_atomic_consistent () =
  check_bool "no mismatched registration orders" false
    (Explore.exists_state Step.qs Examples.fig5 ~pred:Examples.fig5_mismatch)

let test_fig5_nested_race () =
  check_bool "nested reservation exposes the race" true
    (Explore.exists_state Step.qs Examples.fig5_nested
       ~pred:Examples.fig5_mismatch)

let deadlock_count mode prog =
  List.length (Explore.reachable mode prog).Explore.deadlocks

let test_fig6_qs_no_deadlock () =
  check_int "qs: no deadlock" 0 (deadlock_count Step.qs Examples.fig6)

let test_fig6_original_deadlocks () =
  check_bool "original semantics deadlocks" true
    (deadlock_count Step.original Examples.fig6 > 0)

let test_fig6_queries_deadlock () =
  check_bool "qs + inner queries deadlocks" true
    (deadlock_count Step.qs Examples.fig6_queries > 0)

let test_fig6_queries_outer_safe () =
  check_int "qs + outer queries deadlock-free" 0
    (deadlock_count Step.qs Examples.fig6_queries_outer)

let test_fig6_queries_client_exec () =
  (* The optimized query rule preserves the deadlock behaviour. *)
  check_bool "client-exec rule deadlocks too" true
    (deadlock_count Step.qs_client_exec Examples.fig6_queries > 0);
  check_int "client-exec outer variant safe" 0
    (deadlock_count Step.qs_client_exec Examples.fig6_queries_outer)

(* -- exception propagation (dirty-processor rule) ------------------------------- *)

let test_fail_call_raises_at_sync mode () =
  (* Every run serves the failing call (Failed, handler survives) and then
     delivers the failure at the query's sync point (Raised), in that
     order; no run deadlocks. *)
  let runs, truncated = Explore.runs mode Examples.fail_call in
  check_bool "not truncated" false truncated;
  check_bool "some runs" true (runs <> []);
  List.iter
    (fun (r : Explore.run) ->
      check_bool "terminates" false r.Explore.deadlocked;
      let failed_at =
        List.find_index
          (function
            | Step.Failed { handler = 10; client = 1; action = "boom" } -> true
            | _ -> false)
          r.Explore.labels
      and raised_at =
        List.find_index
          (function
            | Step.Raised { client = 1; target = 10; action = "boom" } -> true
            | _ -> false)
          r.Explore.labels
      in
      match (failed_at, raised_at) with
      | Some f, Some d -> check_bool "failure precedes delivery" true (f < d)
      | None, _ -> Alcotest.fail "no Failed transition"
      | _, None -> Alcotest.fail "failure never delivered at the sync point")
    runs

let test_fail_call_no_sync_drops_dirt () =
  (* Without a later sync point the dirt dies with the registration: the
     program terminates and no run contains a Raised transition. *)
  let runs, truncated = Explore.runs Step.qs Examples.fail_call_no_sync in
  check_bool "not truncated" false truncated;
  check_bool "some runs" true (runs <> []);
  List.iter
    (fun (r : Explore.run) ->
      check_bool "terminates" false r.Explore.deadlocked;
      check_bool "no delivery without a sync point" false
        (List.exists
           (function Step.Raised _ -> true | _ -> false)
           r.Explore.labels))
    runs

let test_fail_call_guarantee mode () =
  (* Failed transitions obey the same order/non-interleaving guarantee as
     successful executions. *)
  let report = Guarantees.check_program mode Examples.fail_call in
  check_bool "guarantee holds with failures" true
    (report.Guarantees.violation = None);
  check_bool "exhaustive" true (Guarantees.exhaustive report);
  check_bool "nontrivial exploration" true (report.Guarantees.runs > 0)

(* -- equivalence of the two query rules ----------------------------------------- *)

let test_query_rules_equivalent () =
  (* §3.2 argues the modified rule "does not change the execution
     behaviour": same observable traces on the paper's example. *)
  let project mode =
    fst
      (Explore.observable_traces mode Examples.fig1
         ~filter:(Explore.on_handler Examples.x))
    |> List.sort compare
  in
  check_bool "same observable orders" true
    (project Step.qs = project Step.qs_client_exec)

(* -- random programs -------------------------------------------------------------- *)

(* Small random programs: 2 clients (ids 1, 2), handlers 10 and 11, bodies
   of calls/atoms/queries with optional one-level nesting. *)
let gen_program =
  let open QCheck2.Gen in
  let fresh =
    let c = ref 0 in
    fun prefix ->
      incr c;
      Printf.sprintf "%s%d" prefix !c
  in
  (* Leaves only target handlers reserved by an enclosing block. *)
  let leaf ~queries ~targets client =
    let handler = oneofl targets in
    let base =
      [
        map (fun h -> Syntax.Call (h, fresh (Printf.sprintf "c%d_" client))) handler;
        return (Syntax.Atom (fresh (Printf.sprintf "l%d_" client)));
      ]
    in
    if queries then
      oneof
        (map (fun h -> Syntax.Query (h, fresh (Printf.sprintf "q%d_" client))) handler
        :: base)
    else oneof base
  in
  let body ~queries ~targets client =
    list_size (int_range 1 4) (leaf ~queries ~targets client)
  in
  let block ~queries client =
    let* outer = oneofl [ 10; 11 ] in
    let* stmts = body ~queries ~targets:[ outer ] client in
    let* nest = bool in
    if nest then
      let inner = if outer = 10 then 11 else 10 in
      let* inner_stmts = body ~queries ~targets:[ outer; inner ] client in
      return
        (Syntax.Separate
           ( [ outer ],
             Syntax.seq (stmts @ [ Syntax.Separate ([ inner ], Syntax.seq inner_stmts) ])
           ))
    else return (Syntax.Separate ([ outer ], Syntax.seq stmts))
  in
  let* queries = QCheck2.Gen.bool in
  let* b1 = block ~queries 1 in
  let* b2 = block ~queries 2 in
  return (queries, State.init [ (1, b1); (2, b2) ])

let print_program (queries, st) =
  Format.asprintf "queries=%b@.%a" queries State.pp st

let prop_guarantee_all_modes mode name =
  QCheck2.Test.make ~count:60 ~name ~print:print_program gen_program
    (fun (_, program) ->
      let report =
        Guarantees.check_program ~max_runs:2_000 ~max_depth:400 mode program
      in
      report.Guarantees.violation = None)

let prop_no_deadlock_without_queries =
  QCheck2.Test.make ~count:60
    ~name:"qs: programs without queries never deadlock (§2.5)"
    ~print:print_program gen_program
    (fun (queries, program) ->
      queries
      ||
      let stats = Explore.reachable ~max_states:50_000 Step.qs program in
      stats.Explore.deadlocks = [])

let prop_fifo_service =
  QCheck2.Test.make ~count:60
    ~name:"handlers serve registrations in FIFO order (§2.3)"
    ~print:print_program gen_program
    (fun (_, program) ->
      let runs, _ = Explore.runs ~max_runs:2_000 ~max_depth:400 Step.qs program in
      List.for_all
        (fun (r : Explore.run) ->
          match Guarantees.check_fifo_service r.Explore.labels with
          | Ok () -> true
          | Error _ -> false)
        runs)

let test_fifo_service_on_fig1 () =
  let runs, _ = Explore.runs Step.qs Examples.fig1 in
  check_bool "all runs FIFO" true
    (List.for_all
       (fun (r : Explore.run) ->
         Guarantees.check_fifo_service r.Explore.labels = Ok ())
       runs)

let test_fifo_checker_catches_violation () =
  (* A fabricated out-of-order service must be flagged. *)
  let labels =
    [
      Step.Reserved { client = 1; targets = [ 10 ] };
      Step.Reserved { client = 2; targets = [ 10 ] };
      Step.EndServed { handler = 10; client = 2 };
    ]
  in
  check_bool "violation detected" true
    (match Guarantees.check_fifo_service labels with
    | Error _ -> true
    | Ok () -> false)

let prop_all_calls_execute =
  QCheck2.Test.make ~count:40
    ~name:"every logged call is eventually executed in terminal runs"
    ~print:print_program gen_program
    (fun (_, program) ->
      let runs, _ = Explore.runs ~max_runs:500 ~max_depth:400 Step.qs program in
      List.for_all
        (fun (r : Explore.run) ->
          r.Explore.deadlocked
          ||
          let logged =
            List.filter
              (function Step.Logged _ -> true | _ -> false)
              r.Explore.labels
          in
          let executed =
            List.filter
              (function
                | Step.Executed { client = Some _; _ } -> true
                | _ -> false)
              r.Explore.labels
          in
          List.length logged = List.length executed)
        runs)

(* -- trace conformance (Replay) ---------------------------------------------- *)

let test_replay_legal_stream () =
  let open Replay in
  check_bool "call/execute/sync conforms" true
    (check
       [
         Reserved 1; Logged 1; Logged 1; Executed 1; Executed 1; Synced 1;
         Elided 1; Logged 1; Executed 1; Pipelined 1; Elided 1;
       ]
    = Ok ());
  check_bool "empty stream conforms" true (check [] = Ok ())

let test_replay_execute_before_log () =
  let open Replay in
  (match check [ Logged 1; Executed 1; Executed 1 ] with
  | Error [ v ] ->
    check_int "offending index" 2 v.index;
    check_bool "offending event" true (v.event = Executed 1)
  | _ -> Alcotest.fail "expected exactly one violation");
  (* the automaton clamps: one bad event must not cascade *)
  check_bool "recovers after clamp" true
    (check [ Logged 1; Executed 1; Executed 1; Logged 1; Executed 1 ]
    <> Ok ())

let test_replay_elide_unsynced () =
  let open Replay in
  (match check [ Logged 1; Elided 1 ] with
  | Error [ v ] -> check_bool "elide flagged" true (v.event = Elided 1)
  | _ -> Alcotest.fail "expected the unsynced elision to be flagged");
  (* logging after a sync leaves the synced state: a later elision is
     illegal again *)
  (match check [ Logged 1; Executed 1; Synced 1; Logged 1; Elided 1 ] with
  | Error [ v ] -> check_int "second elide flagged" 4 v.index
  | _ -> Alcotest.fail "expected the post-log elision to be flagged");
  (* a pipelined fulfilment also establishes the synced state *)
  check_bool "pipelined enables elision" true
    (check [ Logged 1; Pipelined 1; Elided 1 ] = Ok ())

let test_replay_per_processor () =
  let open Replay in
  (* processor 2's violation must not contaminate processor 1 *)
  match check [ Logged 1; Executed 1; Synced 1; Elided 1; Elided 2 ] with
  | Error [ v ] -> check_bool "only proc 2 flagged" true (v.event = Elided 2)
  | _ -> Alcotest.fail "expected exactly processor 2's elision"

let test_replay_timeout_noop () =
  let open Replay in
  (* an abandoned rendezvous learns nothing and poisons nothing: the
     stream around it must check exactly as if it were absent *)
  check_bool "timeout stream conforms" true
    (check [ Reserved 1; Logged 1; TimedOut 1; Executed 1; Synced 1; Elided 1 ]
    = Ok ())

let test_replay_shed () =
  let open Replay in
  check_bool "shed consumes a logged slot" true
    (check [ Logged 1; Shed 1 ] = Ok ());
  (match check [ Shed 1 ] with
  | Error [ v ] -> check_bool "slotless shed flagged" true (v.event = Shed 1)
  | _ -> Alcotest.fail "expected the slotless shed to be flagged");
  (* the shed slot is consumed: the handler must not also execute it *)
  (match check [ Logged 1; Shed 1; Executed 1 ] with
  | Error [ v ] -> check_int "executed-after-shed index" 2 v.index
  | _ -> Alcotest.fail "expected the executed-after-shed to be flagged");
  (* shedding dirties the registration: eliding a later sync would skip
     the round trip that delivers the Overloaded failure *)
  match check [ Logged 1; Logged 1; Shed 1; Executed 1; Synced 1; Elided 1 ] with
  | Error [ v ] -> check_int "post-shed elision index" 5 v.index
  | _ -> Alcotest.fail "expected the post-shed elision to be flagged"

let test_replay_poisoned_blocks_elision () =
  let open Replay in
  check_bool "poison then round trips conform" true
    (check [ Logged 1; Executed 1; Poisoned 1; Synced 1 ] = Ok ());
  match check [ Logged 1; Executed 1; Poisoned 1; Synced 1; Elided 1 ] with
  | Error [ v ] -> check_bool "dirty elision flagged" true (v.event = Elided 1)
  | _ -> Alcotest.fail "expected the dirty elision to be flagged"

(* -- failure vocabulary examples (timeout / shed / poison) -------------------- *)

let test_timeout_call () =
  let traces, truncated =
    Explore.observable_traces Step.qs Examples.timeout_call
      ~filter:(Explore.on_handler Examples.x)
  in
  check_bool "complete enumeration" false truncated;
  (* a timeout abandons the wait, never the work: one observable trace *)
  check_bool "single observable trace" true
    (traces = [ Examples.timeout_call_trace ]);
  let runs, _ = Explore.runs Step.qs Examples.timeout_call in
  let some p =
    List.exists
      (fun (r : Explore.run) -> List.exists p r.Explore.labels)
      runs
  in
  check_bool "a run abandons the wait" true
    (some (function Step.TimedOut _ -> true | _ -> false));
  check_bool "a run completes the rendezvous" true
    (some (function Step.Synced _ -> true | _ -> false));
  check_bool "no deadlocks" true
    (List.for_all (fun (r : Explore.run) -> not r.Explore.deadlocked) runs)

let test_shed_overload () =
  let traces, truncated =
    Explore.observable_traces Step.qs Examples.shed_overload
      ~filter:(Explore.on_handler Examples.x)
  in
  check_bool "complete enumeration" false truncated;
  let full = [ "gate"; "a1"; "a2"; "a3" ] in
  check_bool "fast handler executes everything" true (List.mem full traces);
  check_bool "slow handler sheds all but the last" true
    (List.mem [ "a3" ] traces);
  (* shedding never reorders: every trace is a program-order subsequence *)
  let rec subseq xs ys =
    match (xs, ys) with
    | [], _ -> true
    | _, [] -> false
    | x :: xs', y :: ys' -> if x = y then subseq xs' ys' else subseq xs ys'
  in
  check_bool "every trace preserves program order" true
    (List.for_all (fun t -> subseq t full) traces);
  let runs, _ = Explore.runs Step.qs Examples.shed_overload in
  check_bool "some run sheds" true
    (List.exists
       (fun (r : Explore.run) ->
         List.exists
           (function Step.Shed _ -> true | _ -> false)
           r.Explore.labels)
       runs)

let test_poison_probe () =
  let traces, truncated =
    Explore.observable_traces Step.qs Examples.poison_probe
      ~filter:(Explore.on_handler Examples.x)
  in
  check_bool "complete enumeration" false truncated;
  check_bool "wedge and probe execute in every run" true
    (traces = [ [ "wedge"; "probe" ] ]);
  let runs, _ = Explore.runs Step.qs Examples.poison_probe in
  check_bool "every run dirties and then raises" true
    (List.for_all
       (fun (r : Explore.run) ->
         List.exists
           (function Step.Failed _ -> true | _ -> false)
           r.Explore.labels
         && List.exists
              (function Step.Raised _ -> true | _ -> false)
              r.Explore.labels)
       runs)

(* -- truncation is loud ------------------------------------------------------- *)

let test_truncation_propagates () =
  (* Every bounded entry point must report that it hit its budget:
     a truncated search silently treated as exhaustive is how a
     "verified" guarantee turns out not to hold. *)
  let _, truncated = Explore.runs ~max_runs:1 Step.qs Examples.fig1 in
  check_bool "runs reports truncation" true truncated;
  let _, truncated =
    Explore.observable_traces ~max_runs:1 Step.qs Examples.fig1
      ~filter:(Explore.on_handler Examples.x)
  in
  check_bool "observable_traces reports truncation" true truncated;
  let _, stats = Explore.reduced ~max_runs:1 Step.qs Examples.fig1 in
  check_bool "reduced reports truncation" true stats.Explore.truncated;
  let stats = Explore.reachable ~max_states:3 Step.qs Examples.fig1 in
  check_bool "reachable reports truncation" true stats.Explore.truncated;
  let _, truncated = Explore.runs ~max_depth:2 Step.qs Examples.fig1 in
  check_bool "depth budget reports truncation" true truncated

let test_guarantee_report_truncation () =
  let tiny = Guarantees.check_program ~max_runs:1 Step.qs Examples.fig1 in
  check_bool "tiny budget is truncated" true tiny.Guarantees.truncated;
  check_bool "tiny budget is not exhaustive" false (Guarantees.exhaustive tiny);
  check_bool "truncated but no violation found" true
    (tiny.Guarantees.violation = None);
  let full = Guarantees.check_program Step.qs Examples.fig1 in
  check_bool "full budget is exhaustive" true (Guarantees.exhaustive full);
  check_bool "full budget finds no violation" true
    (full.Guarantees.violation = None)

(* -- DPOR reduction ----------------------------------------------------------- *)

let test_dpor_reduces_fig1 () =
  let unreduced = Explore.reachable Step.qs Examples.fig1 in
  let runs, stats = Explore.reduced Step.qs Examples.fig1 in
  check_bool "reduced flag set" true stats.Explore.reduced;
  check_bool "reduced search complete" false stats.Explore.truncated;
  check_bool "strictly fewer states than BFS" true
    (stats.Explore.states < unreduced.Explore.states);
  let full_traces, truncated =
    Explore.observable_traces Step.qs Examples.fig1
      ~filter:(Explore.on_handler Examples.x)
  in
  check_bool "unreduced enumeration complete" false truncated;
  check_bool "observable traces agree with exhaustive enumeration" true
    (List.sort compare
       (Explore.observable_of_runs runs ~filter:(Explore.on_handler Examples.x))
    = List.sort compare full_traces)

let test_dpor_finds_deadlock () =
  (* reduction must not prune the reachable deadlock of §2.5 *)
  let _, stats =
    Explore.reduced ~max_runs:5_000_000 Step.qs Examples.fig6_queries
  in
  check_bool "reduced search complete" false stats.Explore.truncated;
  check_bool "deadlock survives reduction" true
    (stats.Explore.deadlocks <> [])

let prop_dpor_agrees =
  QCheck2.Test.make ~count:30
    ~name:"DPOR agrees with exhaustive enumeration on observable traces"
    ~print:print_program gen_program
    (fun (_, program) ->
      let project runs h =
        List.sort compare (Explore.observable_of_runs runs ~filter:(Explore.on_handler h))
      in
      let full, t_full =
        Explore.runs ~max_runs:4_000 ~max_depth:400 Step.qs program
      in
      let reduced, stats =
        Explore.reduced ~max_runs:4_000 ~max_depth:400 Step.qs program
      in
      (* a truncated search on either side proves nothing — skip *)
      t_full || stats.Explore.truncated
      || (project reduced 10 = project full 10
         && project reduced 11 = project full 11))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "qs_semantics"
    [
      ( "rules",
        [
          Alcotest.test_case "seq normalization" `Quick test_norm;
          Alcotest.test_case "separate rule" `Quick test_separate_rule;
          Alcotest.test_case "call targets last pq" `Quick
            test_call_appends_to_last_pq;
          Alcotest.test_case "query rules" `Quick
            test_query_rule_original_vs_client_exec;
          Alcotest.test_case "self reservation" `Quick
            test_self_reservation_rejected;
          Alcotest.test_case "lock mode blocks" `Quick test_lock_mode_blocks;
        ] );
      ( "fig1",
        [
          Alcotest.test_case "two interleavings (qs)" `Quick
            (test_fig1_two_interleavings Step.qs);
          Alcotest.test_case "two interleavings (client-exec)" `Quick
            (test_fig1_two_interleavings Step.qs_client_exec);
          Alcotest.test_case "two interleavings (original)" `Quick
            (test_fig1_two_interleavings Step.original);
          Alcotest.test_case "guarantee 2 (qs)" `Quick
            (test_fig1_guarantee Step.qs);
          Alcotest.test_case "guarantee 2 (original)" `Quick
            (test_fig1_guarantee Step.original);
          Alcotest.test_case "query rules equivalent" `Quick
            test_query_rules_equivalent;
        ] );
      ( "fig5",
        [
          Alcotest.test_case "atomic reservation consistent" `Quick
            test_fig5_atomic_consistent;
          Alcotest.test_case "nested reservation races" `Quick
            test_fig5_nested_race;
        ] );
      ( "fig6",
        [
          Alcotest.test_case "qs deadlock-free" `Quick test_fig6_qs_no_deadlock;
          Alcotest.test_case "original deadlocks" `Quick
            test_fig6_original_deadlocks;
          Alcotest.test_case "inner queries deadlock" `Quick
            test_fig6_queries_deadlock;
          Alcotest.test_case "outer queries safe" `Quick
            test_fig6_queries_outer_safe;
          Alcotest.test_case "client-exec variant" `Quick
            test_fig6_queries_client_exec;
        ] );
      ( "exception propagation",
        [
          Alcotest.test_case "fail then sync raises (qs)" `Quick
            (test_fail_call_raises_at_sync Step.qs);
          Alcotest.test_case "fail then sync raises (client-exec)" `Quick
            (test_fail_call_raises_at_sync Step.qs_client_exec);
          Alcotest.test_case "fail then sync raises (original)" `Quick
            (test_fail_call_raises_at_sync Step.original);
          Alcotest.test_case "no sync point drops dirt" `Quick
            test_fail_call_no_sync_drops_dirt;
          Alcotest.test_case "guarantee holds with failures (qs)" `Quick
            (test_fail_call_guarantee Step.qs);
        ] );
      ( "properties",
        [
          qc (prop_guarantee_all_modes Step.qs "guarantee 2 on random programs (qs)");
          qc
            (prop_guarantee_all_modes Step.qs_client_exec
               "guarantee 2 on random programs (client-exec)");
          qc
            (prop_guarantee_all_modes Step.original
               "guarantee 2 on random programs (original)");
          qc prop_no_deadlock_without_queries;
          qc prop_all_calls_execute;
          qc prop_fifo_service;
          qc prop_dpor_agrees;
        ] );
      ( "failure vocabulary",
        [
          Alcotest.test_case "timeout abandons the wait, not the work" `Quick
            test_timeout_call;
          Alcotest.test_case "shed overload traces" `Quick test_shed_overload;
          Alcotest.test_case "poison probe traces" `Quick test_poison_probe;
        ] );
      ( "truncation",
        [
          Alcotest.test_case "explorer budgets are loud" `Quick
            test_truncation_propagates;
          Alcotest.test_case "guarantee reports carry truncation" `Quick
            test_guarantee_report_truncation;
        ] );
      ( "dpor",
        [
          Alcotest.test_case "fig1 reduced below BFS" `Quick
            test_dpor_reduces_fig1;
          Alcotest.test_case "reduction keeps the deadlock" `Quick
            test_dpor_finds_deadlock;
        ] );
      ( "fifo service",
        [
          Alcotest.test_case "fig1 runs" `Quick test_fifo_service_on_fig1;
          Alcotest.test_case "checker catches violation" `Quick
            test_fifo_checker_catches_violation;
        ] );
      ( "replay",
        [
          Alcotest.test_case "legal stream" `Quick test_replay_legal_stream;
          Alcotest.test_case "execute before log" `Quick
            test_replay_execute_before_log;
          Alcotest.test_case "elide outside synced" `Quick
            test_replay_elide_unsynced;
          Alcotest.test_case "per-processor isolation" `Quick
            test_replay_per_processor;
          Alcotest.test_case "timeout is a no-op" `Quick
            test_replay_timeout_noop;
          Alcotest.test_case "shed consumes and dirties" `Quick
            test_replay_shed;
          Alcotest.test_case "poison blocks elision" `Quick
            test_replay_poisoned_blocks_elision;
        ] );
    ]
