(* Tests for the Go-style channels: buffered/unbuffered semantics, close
   behaviour, fan-in/fan-out, wait groups. *)

module Ch = Qs_chan.Channel
module Sched = Qs_sched.Sched
module Latch = Qs_sched.Latch

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_buffered_fifo () =
  Sched.run (fun () ->
    let c = Ch.create ~capacity:10 () in
    for i = 1 to 10 do
      Ch.send c i
    done;
    for i = 1 to 10 do
      check_int "fifo" i (Ch.recv c)
    done)

let test_buffered_blocks_at_capacity () =
  Sched.run (fun () ->
    let c = Ch.create ~capacity:2 () in
    let progress = ref 0 in
    Sched.spawn (fun () ->
      for i = 1 to 4 do
        Ch.send c i;
        progress := i
      done);
    (* Let the sender run: it must stop after filling the buffer. *)
    Sched.yield ();
    Sched.yield ();
    check_int "sender blocked at capacity" 2 !progress;
    check_int "first" 1 (Ch.recv c);
    check_int "second" 2 (Ch.recv c);
    check_int "third" 3 (Ch.recv c);
    check_int "fourth" 4 (Ch.recv c))

let test_rendezvous_blocks () =
  Sched.run (fun () ->
    let c = Ch.create () in
    let sent = ref false in
    Sched.spawn (fun () ->
      Ch.send c 1;
      sent := true);
    Sched.yield ();
    Sched.yield ();
    check_bool "unbuffered send waits for receiver" false !sent;
    check_int "value" 1 (Ch.recv c);
    Sched.yield ();
    check_bool "sender released" true !sent)

let test_try_recv () =
  Sched.run (fun () ->
    let c = Ch.create ~capacity:1 () in
    check_bool "empty" true (Ch.try_recv c = None);
    Ch.send c 3;
    check_bool "full" true (Ch.try_recv c = Some 3))

let test_close_drains () =
  Sched.run (fun () ->
    let c = Ch.create ~capacity:4 () in
    Ch.send c 1;
    Ch.send c 2;
    Ch.close c;
    check_bool "closed" true (Ch.is_closed c);
    check_bool "pending survive close" true (Ch.recv_opt c = Some 1);
    check_bool "pending survive close" true (Ch.recv_opt c = Some 2);
    check_bool "then none" true (Ch.recv_opt c = None);
    Alcotest.check_raises "recv raises" Ch.Closed (fun () ->
      ignore (Ch.recv c : int)))

let test_send_on_closed () =
  Sched.run (fun () ->
    let c = Ch.create ~capacity:1 () in
    Ch.close c;
    Alcotest.check_raises "send raises" Ch.Closed (fun () -> Ch.send c 1))

let test_close_wakes_blocked_receivers () =
  Sched.run (fun () ->
    let c : int Ch.t = Ch.create () in
    let results = ref [] in
    let latch = Latch.create 3 in
    for _ = 1 to 3 do
      Ch.go (fun () ->
        results := Ch.recv_opt c :: !results;
        Latch.count_down latch)
    done;
    Sched.yield ();
    Ch.close c;
    Latch.wait latch;
    check_bool "all woke with None" true (List.for_all (( = ) None) !results))

let test_close_wakes_blocked_rendezvous_sender () =
  Sched.run (fun () ->
    let c = Ch.create () in
    let outcome = ref `Pending in
    Ch.go (fun () ->
      match Ch.send c 1 with
      | () -> outcome := `Sent
      | exception Ch.Closed -> outcome := `Closed);
    Sched.yield ();
    Sched.yield ();
    Ch.close c;
    (* run returns after the sender fiber finished *)
    ());
  ()

let test_fan_in_out () =
  let produced = 8 * 500 in
  let total =
    Sched.run ~domains:2 (fun () ->
      let work = Ch.create ~capacity:64 () in
      let results = Ch.create ~capacity:64 () in
      let wg = Ch.Wait_group.create 4 in
      for _ = 1 to 4 do
        Ch.go (fun () ->
          let rec loop () =
            match Ch.recv_opt work with
            | Some v ->
              Ch.send results (v * 2);
              loop ()
            | None -> Ch.Wait_group.done_ wg
          in
          loop ())
      done;
      Ch.go (fun () ->
        for _ = 1 to 8 do
          for i = 1 to 500 do
            Ch.send work i
          done
        done;
        Ch.close work);
      let acc = ref 0 in
      for _ = 1 to produced do
        acc := !acc + Ch.recv results
      done;
      Ch.Wait_group.wait wg;
      !acc)
  in
  check_int "all work doubled" (8 * 2 * (500 * 501 / 2)) total

let test_rendezvous_accounting () =
  (* Each receive releases exactly one blocked rendezvous sender. *)
  Sched.run (fun () ->
    let c = Ch.create () in
    let completed = ref 0 in
    for i = 1 to 4 do
      Ch.go (fun () ->
        Ch.send c i;
        incr completed)
    done;
    for k = 1 to 4 do
      ignore (Ch.recv c : int);
      (* Let the released sender run. *)
      Sched.yield ();
      Sched.yield ();
      check_int "one sender per receive" k !completed
    done)

let test_negative_capacity_rejected () =
  Sched.run (fun () ->
    Alcotest.check_raises "negative capacity"
      (Invalid_argument "Channel.create: negative capacity") (fun () ->
        ignore (Ch.create ~capacity:(-1) () : int Ch.t)))

let prop_pipeline_preserves_sum =
  QCheck2.Test.make ~count:30 ~name:"channel pipeline preserves the sum"
    QCheck2.Gen.(pair (int_range 0 100) (int_range 0 8))
    (fun (n, capacity) ->
      let total =
        Sched.run ~domains:2 (fun () ->
          let c = Ch.create ~capacity () in
          Ch.go (fun () ->
            for i = 1 to n do
              Ch.send c i
            done;
            Ch.close c);
          let acc = ref 0 in
          let rec drain () =
            match Ch.recv_opt c with
            | Some v ->
              acc := !acc + v;
              drain ()
            | None -> ()
          in
          drain ();
          !acc)
      in
      total = n * (n + 1) / 2)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "qs_chan"
    [
      ( "buffered",
        [
          Alcotest.test_case "fifo" `Quick test_buffered_fifo;
          Alcotest.test_case "blocks at capacity" `Quick
            test_buffered_blocks_at_capacity;
          Alcotest.test_case "try_recv" `Quick test_try_recv;
        ] );
      ( "rendezvous",
        [
          Alcotest.test_case "send waits for receiver" `Quick test_rendezvous_blocks;
          Alcotest.test_case "rendezvous accounting" `Quick
            test_rendezvous_accounting;
          Alcotest.test_case "negative capacity" `Quick
            test_negative_capacity_rejected;
          Alcotest.test_case "close wakes blocked sender" `Quick
            test_close_wakes_blocked_rendezvous_sender;
        ] );
      ( "close",
        [
          Alcotest.test_case "drains pending" `Quick test_close_drains;
          Alcotest.test_case "send on closed" `Quick test_send_on_closed;
          Alcotest.test_case "wakes receivers" `Quick
            test_close_wakes_blocked_receivers;
        ] );
      ("patterns", [ Alcotest.test_case "fan in/out" `Quick test_fan_in_out ]);
      ("properties", [ qc prop_pipeline_preserves_sum ]);
    ]
