(* Tests for the Erlang-style actor substrate: mailbox FIFO per sender,
   copy-on-send isolation, request/reply servers, lifecycle. *)

module A = Qs_actors.Actor
module Sched = Qs_sched.Sched
module Latch = Qs_sched.Latch

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_fifo_single_sender () =
  let received =
    Sched.run (fun () ->
      let log = ref [] in
      let actor =
        A.spawn (fun self ->
          for _ = 1 to 50 do
            log := A.receive self :: !log
          done)
      in
      for i = 1 to 50 do
        A.send actor i
      done;
      A.join actor;
      List.rev !log)
  in
  Alcotest.(check (list int)) "fifo order" (List.init 50 (fun i -> i + 1)) received

let test_copy_on_send () =
  Sched.run (fun () ->
    let observed = ref [||] in
    let actor =
      A.spawn ~copy:Array.copy (fun self -> observed := A.receive self)
    in
    let payload = [| 1; 2; 3 |] in
    A.send actor payload;
    (* Mutating the sender's array after the send must not affect the
       receiver: the message was copied in its entirety. *)
    payload.(0) <- 99;
    A.join actor;
    check_int "receiver kept the copy" 1 !observed.(0))

let test_identity_copy_shares () =
  Sched.run (fun () ->
    let observed = ref [||] in
    let actor = A.spawn (fun self -> observed := A.receive self) in
    let payload = [| 1 |] in
    A.send actor payload;
    A.join actor;
    check_bool "identity copy shares" true (!observed == payload))

let test_request_reply_server () =
  let total =
    Sched.run ~domains:2 (fun () ->
      let server =
        A.spawn (fun self ->
          for _ = 1 to 100 do
            let x, (reply : int A.t) = A.receive self in
            A.send reply (x * 2)
          done)
      in
      let acc = Atomic.make 0 in
      let latch = Latch.create 4 in
      for _ = 1 to 4 do
        ignore
          (A.spawn (fun (self : int A.t) ->
             for i = 1 to 25 do
               A.send server (i, self);
               ignore (Atomic.fetch_and_add acc (A.receive self) : int)
             done;
             Latch.count_down latch)
            : int A.t)
      done;
      Latch.wait latch;
      A.join server;
      Atomic.get acc)
  in
  check_int "all replies" (4 * 2 * (25 * 26 / 2)) total

let test_try_receive () =
  Sched.run (fun () ->
    let first = ref (Some 0) and second = ref None in
    let ready = Qs_sched.Ivar.create () in
    let actor =
      A.spawn (fun self ->
        first := A.try_receive self;
        Qs_sched.Ivar.fill ready ();
        let rec poll () =
          match A.try_receive self with
          | Some v -> second := Some v
          | None ->
            Sched.yield ();
            poll ()
        in
        poll ())
    in
    Qs_sched.Ivar.read ready;
    check_bool "initially empty" true (!first = None);
    A.send actor 5;
    A.join actor;
    check_bool "then present" true (!second = Some 5))

let test_stop_closes_mailbox () =
  Sched.run (fun () ->
    let failed = ref false in
    let actor =
      A.spawn (fun self ->
        (try ignore (A.receive self : int) with Failure _ -> failed := true))
    in
    A.stop actor;
    A.join actor;
    check_bool "receive fails after stop" true !failed)

let test_ring_of_actors () =
  (* Token around a ring: exercises actor-to-actor sends. *)
  let n = 10 and hops = 1_000 in
  let winner =
    Sched.run (fun () ->
      let result = ref (-1) in
      let cells : int A.t option array = Array.make n None in
      let latch = Latch.create n in
      for i = 0 to n - 1 do
        cells.(i) <-
          Some
            (A.spawn (fun self ->
               let rec serve () =
                 let k = A.receive self in
                 if k = 0 then begin
                   result := i;
                   A.send (Option.get cells.((i + 1) mod n)) (-1)
                 end
                 else if k < 0 then A.send (Option.get cells.((i + 1) mod n)) (-1)
                 else begin
                   A.send (Option.get cells.((i + 1) mod n)) (k - 1);
                   serve ()
                 end
               in
               serve ();
               Latch.count_down latch))
      done;
      A.send (Option.get cells.(0)) hops;
      Latch.wait latch;
      !result)
  in
  check_int "token lands where expected" (hops mod n) winner

let prop_sum_across_actors =
  QCheck2.Test.make ~count:30 ~name:"fan-in preserves every message"
    QCheck2.Gen.(pair (int_range 1 6) (int_range 0 50))
    (fun (senders, per) ->
      let total =
        Sched.run ~domains:2 (fun () ->
          let acc = ref 0 in
          let sink =
            A.spawn (fun self ->
              for _ = 1 to senders * per do
                acc := !acc + A.receive self
              done)
          in
          for _ = 1 to senders do
            ignore
              (A.spawn (fun _ ->
                 for i = 1 to per do
                   A.send sink i
                 done)
                : int A.t)
          done;
          A.join sink;
          !acc)
      in
      total = senders * (per * (per + 1) / 2))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "qs_actors"
    [
      ( "mailbox",
        [
          Alcotest.test_case "fifo single sender" `Quick test_fifo_single_sender;
          Alcotest.test_case "copy on send" `Quick test_copy_on_send;
          Alcotest.test_case "identity copy shares" `Quick test_identity_copy_shares;
          Alcotest.test_case "try_receive" `Quick test_try_receive;
          Alcotest.test_case "stop closes mailbox" `Quick test_stop_closes_mailbox;
        ] );
      ( "patterns",
        [
          Alcotest.test_case "request/reply server" `Quick test_request_reply_server;
          Alcotest.test_case "actor ring" `Quick test_ring_of_actors;
        ] );
      ("properties", [ qc prop_sum_across_actors ]);
    ]
