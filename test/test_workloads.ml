(* Tests for the Cowichan kernels: chunked forms agree with the sequential
   references for every split, the list-based (Erlang-style) kernels agree
   with the array kernels, and the kernels' structural invariants hold. *)

module C = Qs_workloads.Cowichan
module CL = Qs_workloads.Cowichan_lists
module Lcg = Qs_workloads.Lcg

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let nr = 24
let seed = 11
let p = 10

(* -- determinism and chunk-independence -------------------------------------- *)

let test_lcg_deterministic () =
  let a = Array.make 8 0 and b = Array.make 8 0 in
  Lcg.fill_row ~seed:3 ~row:5 ~modulus:100 a ~off:0 ~len:8;
  Lcg.fill_row ~seed:3 ~row:5 ~modulus:100 b ~off:0 ~len:8;
  check_bool "same stream" true (a = b);
  let c = Array.make 8 0 in
  Lcg.fill_row ~seed:3 ~row:6 ~modulus:100 c ~off:0 ~len:8;
  check_bool "different rows differ" true (a <> c)

let test_randmat_chunks_agree () =
  let whole = C.randmat ~seed ~nr in
  List.iter
    (fun parts ->
      let assembled = Array.make (nr * nr) 0 in
      List.iter
        (fun (lo, hi) ->
          let chunk = Array.make ((hi - lo) * nr) 0 in
          C.randmat_chunk ~seed ~nr ~lo ~hi chunk;
          Array.blit chunk 0 assembled (lo * nr) ((hi - lo) * nr))
        (Qs_benchmarks.Bench_types.split nr parts);
      check_bool
        (Printf.sprintf "%d chunks" parts)
        true (assembled = whole))
    [ 1; 2; 3; 5; 8; 24 ]

let test_thresh_hist_partitions () =
  let m = C.randmat ~seed ~nr in
  let whole = C.thresh_hist ~nr m ~lo:0 ~hi:nr in
  let h1 = C.thresh_hist ~nr m ~lo:0 ~hi:10 in
  let h2 = C.thresh_hist ~nr m ~lo:10 ~hi:nr in
  check_bool "histograms merge" true (C.merge_hist h1 h2 = whole);
  check_int "histogram total" (nr * nr) (Array.fold_left ( + ) 0 whole)

let test_threshold_keeps_top_p () =
  let m = C.randmat ~seed ~nr in
  let threshold, mask = C.thresh ~nr m ~p in
  let kept = C.checksum_mask mask in
  check_bool "keeps at most p%" true (kept <= nr * nr * p / 100);
  (* Everything at or above the threshold is kept, nothing below is. *)
  Array.iteri
    (fun i v ->
      check_bool "mask matches threshold" true
        (Bytes.get mask i = '\001' == (v >= threshold)))
    m

let test_winnow_selects_sorted_points () =
  let m = C.randmat ~seed ~nr in
  let _, mask = C.thresh ~nr m ~p in
  let points = C.winnow ~nr m mask ~nw:10 in
  check_bool "selected points are masked" true
    (Array.for_all
       (fun (r, c) -> Bytes.get mask ((r * nr) + c) = '\001')
       points);
  (* Values at selected points are non-decreasing (they come from the
     sorted candidate list). *)
  let values = Array.map (fun (r, c) -> m.((r * nr) + c)) points in
  let sorted = Array.copy values in
  Array.sort compare sorted;
  check_bool "selection respects sort order" true (values = sorted)

let test_winnow_empty_mask () =
  let m = C.randmat ~seed ~nr in
  let mask = Bytes.make (nr * nr) '\000' in
  check_int "no candidates, no points" 0 (Array.length (C.winnow ~nr m mask ~nw:5))

let test_outer_chunks_agree () =
  let points = C.synthetic_points ~n:20 ~range:nr in
  let whole_m, whole_v = C.outer points in
  let n = Array.length points in
  let m = Array.make (n * n) 0.0 and v = Array.make n 0.0 in
  List.iter
    (fun (lo, hi) ->
      let mc = Array.make ((hi - lo) * n) 0.0 in
      let vc = Array.make (hi - lo) 0.0 in
      C.outer_chunk points ~lo ~hi mc vc;
      Array.blit mc 0 m (lo * n) ((hi - lo) * n);
      Array.blit vc 0 v lo (hi - lo))
    (Qs_benchmarks.Bench_types.split n 3);
  check_bool "matrix chunks agree" true (m = whole_m);
  check_bool "vector chunks agree" true (v = whole_v)

let test_outer_properties () =
  let points = C.synthetic_points ~n:12 ~range:nr in
  let m, v = C.outer points in
  let n = Array.length points in
  (* Symmetry off the diagonal; dominant diagonal. *)
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        check_bool "symmetric" true (m.((i * n) + j) = m.((j * n) + i));
        check_bool "diagonal dominates row" true
          (m.((i * n) + i) >= m.((i * n) + j))
      end
    done;
    check_bool "vector nonnegative" true (v.(i) >= 0.0)
  done

let test_product_chunks_agree () =
  let points = C.synthetic_points ~n:16 ~range:nr in
  let m, v = C.outer points in
  let n = Array.length points in
  let whole = C.product ~n m v in
  let out = Array.make n 0.0 in
  List.iter
    (fun (lo, hi) ->
      let mc = Array.sub m (lo * n) ((hi - lo) * n) in
      let rc = Array.make (hi - lo) 0.0 in
      C.product_chunk ~n mc v ~rows:(hi - lo) rc;
      Array.blit rc 0 out lo (hi - lo))
    (Qs_benchmarks.Bench_types.split n 5);
  check_bool "chunked product agrees" true (out = whole)

let test_chain_deterministic () =
  let a = C.chain ~seed ~nr ~p ~nw:10 in
  let b = C.chain ~seed ~nr ~p ~nw:10 in
  check_bool "deterministic" true (a = b);
  check_bool "nonempty" true (Array.length a > 0)

(* -- list (Erlang-representation) kernels agree -------------------------------- *)

let test_list_randmat_agrees () =
  let whole = C.randmat ~seed ~nr in
  List.iter
    (fun (lo, hi) ->
      let l = CL.randmat_chunk ~seed ~nr ~lo ~hi in
      let arr = Array.of_list l in
      check_bool "list rows equal array rows" true
        (arr = Array.sub whole (lo * nr) ((hi - lo) * nr)))
    (Qs_benchmarks.Bench_types.split nr 3)

let test_list_hist_agrees () =
  let m = C.randmat ~seed ~nr in
  let l = Array.to_list m in
  check_bool "hist equal" true
    (CL.hist l = C.thresh_hist ~nr m ~lo:0 ~hi:nr)

let test_list_mask_and_collect_agree () =
  let m = C.randmat ~seed ~nr in
  let threshold, bmask = C.thresh ~nr m ~p in
  let l = Array.to_list m in
  let lmask = CL.mask ~threshold l in
  check_bool "mask values" true
    (List.mapi (fun i x -> (i, x)) lmask
    |> List.for_all (fun (i, x) -> (x = 1) = (Bytes.get bmask i = '\001')));
  let collected = CL.collect ~nr ~row0:0 l lmask in
  let reference = C.winnow_collect ~nr m bmask ~lo:0 ~hi:nr () in
  check_bool "collect equal" true (collected = reference)

let test_list_outer_product_agree () =
  let points = C.synthetic_points ~n:10 ~range:nr in
  let whole_m, whole_v = C.outer points in
  let n = Array.length points in
  let lm, lv = CL.outer_chunk points ~lo:0 ~hi:n in
  check_bool "outer matrix equal" true (Array.of_list lm = whole_m);
  check_bool "outer vector equal" true (Array.of_list lv = whole_v);
  let lp = CL.product_chunk ~n lm whole_v in
  check_bool "product equal" true (Array.of_list lp = C.product ~n whole_m whole_v)

(* -- properties ------------------------------------------------------------------ *)

let prop_chunks_agree_any_split =
  QCheck2.Test.make ~count:50 ~name:"randmat chunking is split-invariant"
    QCheck2.Gen.(triple (int_range 1 30) (int_range 1 8) (int_range 0 1000))
    (fun (size, parts, s) ->
      let whole = C.randmat ~seed:s ~nr:size in
      let assembled = Array.make (size * size) 0 in
      List.iter
        (fun (lo, hi) ->
          let chunk = Array.make ((hi - lo) * size) 0 in
          C.randmat_chunk ~seed:s ~nr:size ~lo ~hi chunk;
          Array.blit chunk 0 assembled (lo * size) ((hi - lo) * size))
        (Qs_benchmarks.Bench_types.split size parts);
      assembled = whole)

let prop_threshold_monotone =
  QCheck2.Test.make ~count:50 ~name:"higher p keeps more"
    QCheck2.Gen.(pair (int_range 1 40) (int_range 0 1000))
    (fun (pct, s) ->
      let m = C.randmat ~seed:s ~nr in
      let _, mask_small = C.thresh ~nr m ~p:pct in
      let _, mask_big = C.thresh ~nr m ~p:(min 100 (pct * 2)) in
      C.checksum_mask mask_small <= C.checksum_mask mask_big)

let prop_winnow_bounded =
  QCheck2.Test.make ~count:50 ~name:"winnow returns at most nw points"
    QCheck2.Gen.(pair (int_range 1 50) (int_range 0 1000))
    (fun (nw, s) ->
      let m = C.randmat ~seed:s ~nr in
      let _, mask = C.thresh ~nr m ~p:5 in
      Array.length (C.winnow ~nr m mask ~nw) <= nw)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "qs_workloads"
    [
      ( "kernels",
        [
          Alcotest.test_case "lcg deterministic" `Quick test_lcg_deterministic;
          Alcotest.test_case "randmat chunks" `Quick test_randmat_chunks_agree;
          Alcotest.test_case "thresh histograms" `Quick test_thresh_hist_partitions;
          Alcotest.test_case "threshold top-p" `Quick test_threshold_keeps_top_p;
          Alcotest.test_case "winnow selection" `Quick
            test_winnow_selects_sorted_points;
          Alcotest.test_case "winnow empty mask" `Quick test_winnow_empty_mask;
          Alcotest.test_case "outer chunks" `Quick test_outer_chunks_agree;
          Alcotest.test_case "outer properties" `Quick test_outer_properties;
          Alcotest.test_case "product chunks" `Quick test_product_chunks_agree;
          Alcotest.test_case "chain deterministic" `Quick test_chain_deterministic;
        ] );
      ( "list kernels",
        [
          Alcotest.test_case "randmat" `Quick test_list_randmat_agrees;
          Alcotest.test_case "hist" `Quick test_list_hist_agrees;
          Alcotest.test_case "mask+collect" `Quick test_list_mask_and_collect_agree;
          Alcotest.test_case "outer+product" `Quick test_list_outer_product_agree;
        ] );
      ( "properties",
        [ qc prop_chunks_agree_any_split; qc prop_threshold_monotone; qc prop_winnow_bounded ] );
    ]
