(* Differential tests between the operational semantics and the real
   runtime, glued by the conformance bridge (Qs_conform):

   - every traced run — including the timeout, shed and poison
     scenarios — replays through the semantics' conformance automaton
     with zero violations, partitioned per (processor, registration);
   - the runtime's observable trace (the order in which actions touch a
     handler's state) is a member of the trace set the explorer
     enumerates for the corresponding semantics program;
   - merged multi-client streams are checked soundly (the partitioning
     bugfix), unattributed streams are rejected, and a hand-broken
     trace is flagged. *)

module R = Scoop.Runtime
module Reg = Scoop.Registration
module Cfg = Scoop.Config
module T = Scoop.Trace
module S = Qs_sched.Sched
module E = Qs_semantics.Explore

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let traced ?(domains = 2) config workload =
  let sink = Qs_obs.Sink.create () in
  R.run ~domains ~config ~obs:sink (fun rt -> workload rt);
  T.of_sink sink

let assert_conforms name tr =
  match Qs_conform.check_trace tr with
  | Error e ->
    Alcotest.failf "%s: %s" name (Format.asprintf "%a" Qs_conform.pp_error e)
  | Ok rep ->
    if rep.Qs_conform.violations <> [] then
      Alcotest.failf "%s: %s" name
        (Format.asprintf "%a" Qs_conform.pp_report rep)

(* The explorer's complete trace set for a semantics program, projected
   on handler x.  Fails loudly if the enumeration was truncated — a
   partial set would make the membership check vacuous. *)
let semantics_traces program =
  let traces, truncated =
    E.observable_traces Qs_semantics.Step.qs program
      ~filter:(E.on_handler Qs_semantics.Examples.x)
  in
  check_bool "semantics enumeration complete" false truncated;
  traces

let assert_member name observed allowed =
  if not (List.mem observed allowed) then
    Alcotest.failf "%s: runtime trace [%s] not among the %d semantics traces"
      name
      (String.concat "; " observed)
      (List.length allowed)

let has_kind tr k =
  List.exists (fun (e : T.event) -> e.T.kind = k) (T.events tr)

(* -- fig1 across the mailbox presets ------------------------------------------ *)

(* The runtime analogue of Fig. 1: two concurrent clients against one
   handler, one logging [foo]/[bar1] around a local computation, the
   other logging [bar2] and querying [baz].  Guarantee 2 (registrations
   do not interleave) pins the observable trace to the two orders the
   paper predicts — under every mailbox/optimization preset. *)
let fig1_differential (preset_name, config) () =
  let allowed = semantics_traces Qs_semantics.Examples.fig1 in
  let acts = ref [] in
  let tr =
    traced config (fun rt ->
      let h = R.processor rt in
      let latch = Qs_sched.Latch.create 2 in
      S.spawn (fun () ->
        R.separate rt h (fun reg ->
          Reg.call reg (fun () -> acts := "foo" :: !acts);
          S.sleep 0.005 (* long_comp *);
          Reg.call reg (fun () -> acts := "bar1" :: !acts));
        Qs_sched.Latch.count_down latch);
      S.spawn (fun () ->
        R.separate rt h (fun reg ->
          Reg.call reg (fun () -> acts := "bar2" :: !acts);
          ignore (Reg.query reg (fun () -> acts := "baz" :: !acts)));
        Qs_sched.Latch.count_down latch);
      Qs_sched.Latch.wait latch)
  in
  assert_conforms preset_name tr;
  assert_member preset_name (List.rev !acts) allowed

let presets =
  [
    ("none", Cfg.none);
    ("dynamic", Cfg.dynamic);
    ("static", Cfg.static_);
    ("qoq", Cfg.qoq);
    ("all", Cfg.all);
  ]

(* -- timeout ------------------------------------------------------------------ *)

let test_timeout_differential () =
  (* The runtime analogue of Examples.timeout_call, in the packaged
     query flavour: a timed-out packaged query abandons only the
     rendezvous — the logged request still executes handler-side, so
     the observable trace is the semantics' single trace
     ["work"; "probe"] even on the timeout path. *)
  let acts = ref [] in
  let tr =
    traced
      Cfg.(all |> with_client_query false)
      (fun rt ->
        let h = R.processor rt in
        R.separate rt h (fun reg ->
          Reg.call reg (fun () ->
            S.sleep 0.1;
            acts := "work" :: !acts);
          match Reg.query ~timeout:0.02 reg (fun () -> acts := "probe" :: !acts) with
          | () -> Alcotest.fail "wedged query must time out"
          | exception Scoop.Timeout -> ()))
  in
  (* the runtime has quiesced: the abandoned query has drained *)
  assert_conforms "timeout" tr;
  check_bool "a timeout was recorded" true (has_kind tr T.Request_timeout);
  assert_member "timeout" (List.rev !acts)
    (semantics_traces Qs_semantics.Examples.timeout_call)

(* -- shed --------------------------------------------------------------------- *)

let test_shed_differential () =
  (* The runtime analogue of Examples.shed_overload: a gate call and
     three more against a handler bounded at one pending request under
     [`Shed_oldest].  The slow gate holds the handler while the flood
     logs, so some of the oldest calls are shed; whatever the timing,
     the surviving execution order must be one of the eight traces the
     explorer enumerates. *)
  let allowed = semantics_traces Qs_semantics.Examples.shed_overload in
  let acts = ref [] in
  let tr =
    traced
      Cfg.(all |> with_bound 1 |> with_overflow `Shed_oldest)
      (fun rt ->
        let h = R.processor rt in
        try
          R.separate rt h (fun reg ->
            Reg.call reg (fun () ->
              S.sleep 0.05;
              acts := "gate" :: !acts);
            Reg.call reg (fun () -> acts := "a1" :: !acts);
            Reg.call reg (fun () -> acts := "a2" :: !acts);
            Reg.call reg (fun () -> acts := "a3" :: !acts))
        with Scoop.Handler_failure (_, Scoop.Overloaded _) -> ())
  in
  assert_conforms "shed" tr;
  check_bool "some request was shed" true (has_kind tr T.Request_shed);
  assert_member "shed" (List.rev !acts) allowed

(* -- poison ------------------------------------------------------------------- *)

let test_poison_differential () =
  (* The runtime analogue of Examples.poison_probe: wedge, a failing
     call, then a packaged query.  Every run executes wedge and probe
     (the handler survives the failure; the packaged probe runs before
     the poison surfaces) and delivers the failure at the query's sync
     point. *)
  let acts = ref [] in
  let tr =
    traced
      Cfg.(all |> with_client_query false)
      (fun rt ->
        let h = R.processor rt in
        (try
           R.separate rt h (fun reg ->
             Reg.call reg (fun () -> acts := "wedge" :: !acts);
             Reg.call reg (fun () -> failwith "boom");
             ignore (Reg.query reg (fun () -> acts := "probe" :: !acts)));
           Alcotest.fail "the query's sync point must surface the poison"
         with Scoop.Handler_failure (_, Failure _) -> ());
        (* the handler survived: a fresh registration still serves *)
        R.separate rt h (fun reg -> ignore (Reg.query reg (fun () -> ()))))
  in
  assert_conforms "poison" tr;
  check_bool "the poison was recorded" true (has_kind tr T.Registration_poisoned);
  assert_member "poison" (List.rev !acts)
    (semantics_traces Qs_semantics.Examples.poison_probe)

(* -- merged multi-client streams (the partitioning bugfix) -------------------- *)

let ev =
  let seq = ref 0 in
  fun at proc client kind ->
    incr seq;
    { T.at; T.proc; T.client; T.seq = !seq; T.kind }

let test_partitioning_soundness () =
  (* Two clients merged on one processor: client 2 elides a sync while
     client 1 has just logged.  Per registration both streams are legal;
     fed unpartitioned into the automaton (as the old bench probe did),
     client 1's log watermark leaks into client 2's stream and the
     elision is flagged — a phantom violation. *)
  let events =
    [
      ev 0.0 0 2 T.Reserved;
      ev 0.1 0 2 T.Call_logged;
      ev 0.2 0 2 (T.Call_executed 0.01);
      ev 0.3 0 2 (T.Sync_round_trip 0.01);
      ev 0.4 0 1 T.Reserved;
      ev 0.5 0 1 T.Call_logged;
      ev 0.6 0 2 T.Sync_elided;
      ev 0.7 0 1 (T.Call_executed 0.01);
      ev 0.8 0 1 (T.Sync_round_trip 0.01);
    ]
  in
  (match Qs_conform.check_events events with
  | Error e ->
    Alcotest.failf "partitioned check rejected: %s"
      (Format.asprintf "%a" Qs_conform.pp_error e)
  | Ok rep ->
    check_int "two streams" 2 (List.length rep.Qs_conform.streams);
    check_int "no violations once partitioned" 0
      (List.length rep.Qs_conform.violations));
  (* the merged stream really is unsound: the same events fed through
     the raw automaton (ignoring attribution) report the phantom *)
  let module Rp = Qs_semantics.Replay in
  let merged =
    List.filter_map
      (fun (e : T.event) -> Qs_conform.event_of_kind e.T.kind ~proc:e.T.proc)
      events
  in
  check_bool "unpartitioned check reports a phantom violation" true
    (Rp.check merged <> Ok ())

let test_unattributed_rejected () =
  let events =
    [ ev 0.0 0 1 T.Reserved; ev 0.1 0 0 T.Call_logged ] (* client 0 *)
  in
  match Qs_conform.check_events events with
  | Error (Qs_conform.Unattributed { proc; kind; _ }) ->
    check_int "offending processor" 0 proc;
    check_bool "offending kind" true (kind = T.Call_logged)
  | Ok _ -> Alcotest.fail "unattributed stream must be rejected"

let test_skipped_kinds_counted () =
  (* failure/rejection events have no replay meaning: observed, not
     checked, and never a cause for rejection even unattributed *)
  let events =
    [
      ev 0.0 0 1 T.Reserved;
      ev 0.1 0 0 T.Handler_failed;
      ev 0.2 0 0 T.Promise_rejected;
    ]
  in
  match Qs_conform.check_events events with
  | Ok rep ->
    check_int "checked" 1 rep.Qs_conform.events;
    check_int "skipped" 2 rep.Qs_conform.skipped
  | Error _ -> Alcotest.fail "skippable kinds must not cause rejection"

let test_broken_trace_flagged () =
  (* A real traced run, then a phantom execution appended to an existing
     registration stream: the checker must report it, with the ring
     sequence number pointing at the injected event. *)
  let tr =
    traced Cfg.all (fun rt ->
      let h = R.processor rt in
      R.separate rt h (fun reg ->
        Reg.call reg (fun () -> ());
        ignore (Reg.query reg (fun () -> 0))))
  in
  let rep =
    match Qs_conform.check_trace tr with
    | Ok r -> r
    | Error e ->
      Alcotest.failf "clean run rejected: %s"
        (Format.asprintf "%a" Qs_conform.pp_error e)
  in
  check_int "clean run has no violations" 0
    (List.length rep.Qs_conform.violations);
  let s = List.hd rep.Qs_conform.streams in
  T.record tr ~proc:s.Qs_conform.st_proc ~client:s.Qs_conform.st_client
    (T.Call_executed 0.);
  match Qs_conform.check_trace tr with
  | Ok broken ->
    (match broken.Qs_conform.violations with
    | [ v ] ->
      check_int "violation on the injected stream" s.Qs_conform.st_client
        v.Qs_conform.v_client;
      check_bool "ring seq points at the appended event" true
        (v.Qs_conform.v_seq > 0)
    | vs -> Alcotest.failf "expected exactly one violation, got %d" (List.length vs))
  | Error e ->
    Alcotest.failf "broken trace rejected instead of flagged: %s"
      (Format.asprintf "%a" Qs_conform.pp_error e)

(* -- random programs conform (property) --------------------------------------- *)

(* Small random concurrent programs over the real runtime: a mailbox
   preset, optional bound/overflow, optional deadlines, 1–3 client
   fibers and a random op mix per client.  Whatever the interleaving,
   timeouts and sheds included, the recorded trace must replay with
   zero violations. *)
let gen_runtime_program =
  let open QCheck2.Gen in
  let* preset = oneofl [ "none"; "dynamic"; "static"; "qoq"; "all" ] in
  let* bounded = bool in
  let* deadline = oneofl [ None; Some 0.004 ] in
  let* clients = int_range 1 3 in
  let* ops =
    list_size (int_range 2 6)
      (oneofl [ `Call; `Slow_call; `Query; `Pipelined; `Failing_call ])
  in
  return (preset, bounded, deadline, clients, ops)

let print_runtime_program (preset, bounded, deadline, clients, ops) =
  Printf.sprintf "preset=%s bounded=%b deadline=%s clients=%d ops=[%s]" preset
    bounded
    (match deadline with None -> "-" | Some d -> string_of_float d)
    clients
    (String.concat ";"
       (List.map
          (function
            | `Call -> "call"
            | `Slow_call -> "slow"
            | `Query -> "query"
            | `Pipelined -> "pipelined"
            | `Failing_call -> "fail")
          ops))

let run_random_program (preset, bounded, deadline, clients, ops) =
  let config =
    match preset with
    | "none" -> Cfg.none
    | "dynamic" -> Cfg.dynamic
    | "static" -> Cfg.static_
    | "qoq" -> Cfg.qoq
    | _ -> Cfg.all
  in
  let config =
    if bounded then Cfg.(config |> with_bound 2 |> with_overflow `Shed_oldest)
    else config
  in
  let sink = Qs_obs.Sink.create () in
  R.run ~domains:2 ~config ~obs:sink (fun rt ->
    let h = R.processor rt in
    let r = ref 0 in
    let latch = Qs_sched.Latch.create clients in
    for _ = 1 to clients do
      S.spawn (fun () ->
        (try
           R.separate rt h (fun reg ->
             List.iter
               (fun op ->
                 try
                   match op with
                   | `Call -> Reg.call reg (fun () -> incr r)
                   | `Slow_call -> Reg.call reg (fun () -> S.sleep 0.002)
                   | `Failing_call -> Reg.call reg (fun () -> failwith "boom")
                   | `Query ->
                     ignore (Reg.query ?timeout:deadline reg (fun () -> !r))
                   | `Pipelined ->
                     let p = Reg.query_async reg (fun () -> !r) in
                     ignore (Scoop.Promise.await ?timeout:deadline p : int)
                 with
                 | Scoop.Timeout -> ()
                 (* A shed rendezvous delivers the failure at the query /
                    await site as a raw [Overloaded] (only async calls
                    poison and defer to block exit). *)
                 | Scoop.Overloaded _ -> ())
               ops)
         with Scoop.Handler_failure _ -> ());
        Qs_sched.Latch.count_down latch)
    done;
    Qs_sched.Latch.wait latch);
  Qs_conform.check_trace (T.of_sink sink)

let prop_random_runs_conform =
  QCheck2.Test.make ~count:25
    ~name:"random traced runs replay with zero violations"
    ~print:print_runtime_program gen_runtime_program (fun program ->
      match run_random_program program with
      | Ok rep -> rep.Qs_conform.violations = []
      | Error _ -> false)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "qs_conform"
    [
      ( "fig1 differential",
        List.map
          (fun p ->
            Alcotest.test_case (fst p) `Quick (fig1_differential p))
          presets );
      ( "failure differential",
        [
          Alcotest.test_case "timeout" `Quick test_timeout_differential;
          Alcotest.test_case "shed" `Quick test_shed_differential;
          Alcotest.test_case "poison" `Quick test_poison_differential;
        ] );
      ( "partitioning",
        [
          Alcotest.test_case "merged streams partitioned soundly" `Quick
            test_partitioning_soundness;
          Alcotest.test_case "unattributed streams rejected" `Quick
            test_unattributed_rejected;
          Alcotest.test_case "skipped kinds counted" `Quick
            test_skipped_kinds_counted;
          Alcotest.test_case "hand-broken trace flagged" `Quick
            test_broken_trace_flagged;
        ] );
      ("properties", [ qc prop_random_runs_conform ]);
    ]
