(* Tests for the TL2-style STM: atomicity, isolation under contention,
   retry/or_else blocking semantics, and exactness of concurrent counters. *)

module S = Qs_stm.Stm
module Sched = Qs_sched.Sched
module Latch = Qs_sched.Latch

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_read_write () =
  Sched.run (fun () ->
    let v = S.make 1 in
    check_int "initial" 1 (S.get v);
    S.set v 5;
    check_int "after set" 5 (S.get v);
    S.update v (( * ) 3);
    check_int "after update" 15 (S.get v))

let test_multi_var_atomicity () =
  Sched.run (fun () ->
    let a = S.make 10 and b = S.make 0 in
    S.atomically (fun tx ->
      let x = S.read tx a in
      S.write tx a 0;
      S.write tx b x);
    check_int "a drained" 0 (S.get a);
    check_int "b received" 10 (S.get b))

let test_write_then_read_own () =
  Sched.run (fun () ->
    let v = S.make 1 in
    let seen =
      S.atomically (fun tx ->
        S.write tx v 42;
        S.read tx v)
    in
    check_int "reads own write" 42 seen)

let test_counter_isolation () =
  let n = 8 and per = 2_000 in
  let final =
    Sched.run ~domains:4 (fun () ->
      let v = S.make 0 in
      let latch = Latch.create n in
      for _ = 1 to n do
        Sched.spawn (fun () ->
          for _ = 1 to per do
            S.update v succ
          done;
          Latch.count_down latch)
      done;
      Latch.wait latch;
      S.get v)
  in
  check_int "no lost updates" (n * per) final

let test_invariant_transfers () =
  (* Concurrent transfers between accounts preserve the total, and every
     read-only snapshot observes the invariant. *)
  let accounts = 4 and movers = 4 and rounds = 1_000 in
  let ok =
    Sched.run ~domains:4 (fun () ->
      let balances = Array.init accounts (fun _ -> S.make 100) in
      let latch = Latch.create movers in
      let violations = Atomic.make 0 in
      for m = 0 to movers - 1 do
        Sched.spawn (fun () ->
          let state = ref (m + 1) in
          let rand k =
            state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
            !state mod k
          in
          for _ = 1 to rounds do
            let i = rand accounts in
            let j = (i + 1 + rand (accounts - 1)) mod accounts in
            S.atomically (fun tx ->
              let bi = S.read tx balances.(i) in
              let bj = S.read tx balances.(j) in
              S.write tx balances.(i) (bi - 1);
              S.write tx balances.(j) (bj + 1));
            let total =
              S.atomically (fun tx ->
                Array.fold_left (fun acc v -> acc + S.read tx v) 0 balances)
            in
            if total <> accounts * 100 then Atomic.incr violations
          done;
          Latch.count_down latch)
      done;
      Latch.wait latch;
      Atomic.get violations = 0
      && Array.fold_left (fun acc v -> acc + S.get v) 0 balances = accounts * 100)
  in
  check_bool "money conserved; snapshots consistent" true ok

let test_retry_blocks_until_write () =
  let got =
    Sched.run (fun () ->
      let v = S.make 0 in
      let result = ref (-1) in
      Sched.spawn (fun () ->
        result :=
          S.atomically (fun tx ->
            let x = S.read tx v in
            if x = 0 then S.retry tx else x));
      Sched.spawn (fun () -> S.set v 9);
      (* run returns when both fibers completed *)
      result)
  in
  check_int "woken with the written value" 9 !got

let test_retry_empty_readset_fails () =
  Sched.run (fun () ->
    check_bool "raises" true
      (try
         ignore (S.atomically (fun tx -> S.retry tx) : int);
         false
       with S.Stm_failure _ -> true))

let take v tx =
  match S.read tx v with
  | Some x ->
    S.write tx v None;
    x
  | None -> S.retry tx

let test_or_else () =
  Sched.run (fun () ->
    let a = S.make None and b = S.make (Some 3) in
    let got = S.atomically (S.or_else (take a) (take b)) in
    check_int "second alternative" 3 got;
    check_bool "a untouched" true (S.get a = None);
    check_bool "b consumed" true (S.get b = None))

let test_or_else_first_wins () =
  Sched.run (fun () ->
    let a = S.make (Some 1) and b = S.make (Some 2) in
    check_int "first alternative" 1 (S.atomically (S.or_else (take a) (take b)));
    check_bool "b untouched" true (S.get b = Some 2))

let test_modify_return () =
  Sched.run (fun () ->
    let v = S.make 10 in
    let old = S.modify_return v (fun x -> (x + 1, x)) in
    check_int "returns old" 10 old;
    check_int "stores new" 11 (S.get v))

(* Producer/consumer handoff built from retry: the consumer receives every
   value in order. *)
let test_retry_handoff () =
  let n = 500 in
  let consumed =
    Sched.run ~domains:2 (fun () ->
      let slot = S.make None in
      let count = ref 0 in
      let latch = Latch.create 2 in
      Sched.spawn (fun () ->
        for i = 1 to n do
          S.atomically (fun tx ->
            match S.read tx slot with
            | None -> S.write tx slot (Some i)
            | Some _ -> S.retry tx)
        done;
        Latch.count_down latch);
      Sched.spawn (fun () ->
        for expect = 1 to n do
          let got = S.atomically (take slot) in
          if got = expect then incr count
        done;
        Latch.count_down latch);
      Latch.wait latch;
      !count)
  in
  check_int "ordered handoff" n consumed

let test_no_write_skew () =
  (* Write skew: two transactions each read {x, y} and write one of them,
     trying to break the invariant x + y <= 1.  A serializable STM (TL2
     validates the whole read set at commit) must abort one of them. *)
  let violations =
    Sched.run ~domains:2 (fun () ->
      let x = S.make 0 and y = S.make 0 in
      let bad = ref 0 in
      for _ = 1 to 300 do
        S.set x 0;
        S.set y 0;
        let latch = Latch.create 2 in
        let attempt mine =
          Sched.spawn (fun () ->
            S.atomically (fun tx ->
              let vx = S.read tx x and vy = S.read tx y in
              if vx + vy = 0 then S.write tx mine 1);
            Latch.count_down latch)
        in
        attempt x;
        attempt y;
        Latch.wait latch;
        if S.get x + S.get y > 1 then incr bad
      done;
      !bad)
  in
  check_int "no write skew" 0 violations

let test_read_only_snapshot_consistent () =
  (* A read-only transaction sees a consistent snapshot even while a
     writer flips two tvars together. *)
  let torn =
    Sched.run ~domains:2 (fun () ->
      let a = S.make 0 and b = S.make 0 in
      let stop = Atomic.make false in
      let torn = ref 0 in
      Sched.spawn (fun () ->
        for i = 1 to 2_000 do
          S.atomically (fun tx ->
            S.write tx a i;
            S.write tx b (-i))
        done;
        Atomic.set stop true);
      while not (Atomic.get stop) do
        let va, vb =
          S.atomically (fun tx -> (S.read tx a, S.read tx b))
        in
        if va + vb <> 0 then incr torn;
        Sched.yield ()
      done;
      !torn)
  in
  check_int "no torn snapshots" 0 torn

let prop_concurrent_sum =
  QCheck2.Test.make ~count:25 ~name:"counter sums are exact"
    QCheck2.Gen.(pair (int_range 1 6) (int_range 1 300))
    (fun (n, per) ->
      let final =
        Sched.run ~domains:2 (fun () ->
          let v = S.make 0 in
          let latch = Latch.create n in
          for _ = 1 to n do
            Sched.spawn (fun () ->
              for _ = 1 to per do
                S.update v succ
              done;
              Latch.count_down latch)
          done;
          Latch.wait latch;
          S.get v)
      in
      final = n * per)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "qs_stm"
    [
      ( "basics",
        [
          Alcotest.test_case "read/write" `Quick test_read_write;
          Alcotest.test_case "multi-var atomicity" `Quick test_multi_var_atomicity;
          Alcotest.test_case "read own write" `Quick test_write_then_read_own;
          Alcotest.test_case "modify_return" `Quick test_modify_return;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "counter under contention" `Quick test_counter_isolation;
          Alcotest.test_case "transfer invariant" `Quick test_invariant_transfers;
          Alcotest.test_case "no write skew" `Quick test_no_write_skew;
          Alcotest.test_case "read-only snapshots" `Quick
            test_read_only_snapshot_consistent;
        ] );
      ( "retry",
        [
          Alcotest.test_case "blocks until write" `Quick test_retry_blocks_until_write;
          Alcotest.test_case "empty read set" `Quick test_retry_empty_readset_fails;
          Alcotest.test_case "handoff" `Quick test_retry_handoff;
          Alcotest.test_case "or_else falls through" `Quick test_or_else;
          Alcotest.test_case "or_else first wins" `Quick test_or_else_first_wins;
        ] );
      ("properties", [ qc prop_concurrent_sum ]);
    ]
