(* Tests for the Quicksilver-mini surface language: lexing, parsing,
   static checking (the separate-block discipline), compilation to the
   runtime, naive code generation + the static pass, and export to the
   semantics explorer. *)

module L = Qs_lang.Lang
module Ast = Qs_lang.Ast

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let parse = L.parse

let run ?config src = L.Compile.run ?config (parse src)

let final src handler var =
  let out = run src in
  List.assoc var (List.assoc handler out.Qs_lang.Compile.finals)

(* -- parsing ------------------------------------------------------------------ *)

let test_parse_roundtrip () =
  let src =
    "handler h { var x = 1; var y = 2; } client c { separate h { let a = \
     h.x; h.y := a + 3; } }"
  in
  let p = parse src in
  check_int "one handler" 1 (List.length p.Ast.handlers);
  check_int "two vars" 2 (List.length (List.hd p.Ast.handlers).Ast.h_vars);
  check_int "one client" 1 (List.length p.Ast.clients);
  (* Pretty-print and re-parse: fixed point. *)
  let printed = Format.asprintf "%a" Ast.pp_program p in
  let p2 = parse printed in
  check_bool "roundtrip" true (p = p2)

let test_parse_comments_and_negatives () =
  let p =
    parse
      "// a comment\nhandler h { var x = -5; }\nclient c { local v = 0 - 3; \
       print v; }"
  in
  check_bool "negative initial" true
    ((List.hd p.Ast.handlers).Ast.h_vars = [ ("x", -5) ])

let test_parse_if_else_and_relops () =
  let p =
    parse
      "handler h { var x = 0; } client c { local v = 1; if v >= 1 { h := 2; } \
       else { v := 3; } }"
  in
  ignore p

let test_parse_error_reports_line () =
  match parse "handler h {\n var x = ; }" with
  | exception Qs_lang.Parser.Parse_error { line; _ } -> check_int "line" 2 line
  | _ -> Alcotest.fail "expected parse error"

let test_lex_error () =
  match parse "handler h { var x = 1; } client c { # }" with
  | exception Qs_lang.Lexer.Lex_error { message; _ } ->
    check_bool "has a message" true (String.length message > 0)
  | _ -> Alcotest.fail "expected lex error"

(* -- static checks -------------------------------------------------------------- *)

let contains message fragment =
  let n = String.length fragment and m = String.length message in
  let rec go i =
    i + n <= m && (String.sub message i n = fragment || go (i + 1))
  in
  go 0

let rejects src fragment =
  match L.Compile.run (parse src) with
  | exception Qs_lang.Check.Check_error { message; _ } ->
    check_bool
      (Printf.sprintf "mentions %S in %S" fragment message)
      true
      (contains message fragment)
  | _ -> Alcotest.failf "expected a check error for %s" src

let test_check_unreserved_write () =
  rejects "handler h { var x = 0; } client c { h.x := 1; }" "outside a separate"

let test_check_unreserved_read () =
  rejects "handler h { var x = 0; } client c { let v = h.x; }"
    "outside a separate"

let test_check_unknown_handler () =
  rejects "handler h { var x = 0; } client c { separate g { } }" "unknown handler"

let test_check_unknown_var () =
  rejects "handler h { var x = 0; } client c { separate h { h.y := 1; } }"
    "no variable"

let test_check_unbound_local () =
  rejects "handler h { var x = 0; } client c { print v; }" "unbound local"

let test_check_rereservation () =
  rejects
    "handler h { var x = 0; } client c { separate h { separate h { } } }"
    "already reserved"

let test_check_wrong_scope_after_block () =
  rejects
    "handler h { var x = 0; } client c { separate h { } h.x := 1; }"
    "outside a separate"

(* -- compilation ------------------------------------------------------------------ *)

let test_run_sequential_client () =
  check_int "increments accumulate" 15
    (final
       "handler h { var x = 0; } client c { repeat 15 { separate h { let v = \
        h.x; h.x := v + 1; } } }"
       "h" "x")

let test_run_two_clients_race_free () =
  (* Each round reads and writes inside one registration, so increments
     cannot be lost. *)
  check_int "no lost updates" 40
    (final
       "handler h { var x = 0; } client a { repeat 20 { separate h { let v = \
        h.x; h.x := v + 1; } } } client b { repeat 20 { separate h { let v = \
        h.x; h.x := v + 1; } } }"
       "h" "x")

let test_run_multi_reservation_invariant () =
  let out =
    run
      "handler a { var x = 50; } handler b { var x = 50; } client mover { \
       repeat 10 { separate a, b { let va = a.x; let vb = b.x; a.x := va - \
       1; b.x := vb + 1; } } }"
  in
  let va = List.assoc "x" (List.assoc "a" out.Qs_lang.Compile.finals) in
  let vb = List.assoc "x" (List.assoc "b" out.Qs_lang.Compile.finals) in
  check_int "a drained" 40 va;
  check_int "b filled" 60 vb

let test_run_if_print () =
  let out =
    run
      "handler h { var x = 9; } client c { separate h { let v = h.x; if v > \
       5 { print v * 2; } else { print 0; } } }"
  in
  check_bool "printed 18" true (out.Qs_lang.Compile.printed = [ 18 ])

let test_run_under_every_config () =
  List.iter
    (fun config ->
      check_int config.Scoop.Config.name 10
        ((L.Compile.run ~config
            (parse
               "handler h { var x = 0; } client c { repeat 10 { separate h { \
                let v = h.x; h.x := v + 1; } } }"))
           .Qs_lang.Compile.finals
        |> List.assoc "h" |> List.assoc "x"))
    Scoop.Config.presets

(* -- wait conditions ------------------------------------------------------------------ *)

let optimize_counts src =
  match L.Codegen.optimize (parse src) with
  | [ r ] -> (r.L.Codegen.emitted_syncs, r.L.Codegen.removed_syncs)
  | rs -> Alcotest.failf "expected one client, got %d" (List.length rs)

let test_when_producer_consumer () =
  let out =
    L.Compile.run ~domains:2
      (parse
         "handler b { var count = 0; var seen = 0; } client p { repeat 20 { \
          separate b when b.count < 3 { let c = b.count; b.count := c + 1; } \
          } } client q { repeat 20 { separate b when b.count > 0 { let c = \
          b.count; let s = b.seen; b.count := c - 1; b.seen := s + 1; } } }")
  in
  let vars = List.assoc "b" out.Qs_lang.Compile.finals in
  check_int "drained" 0 (List.assoc "count" vars);
  check_int "every item seen" 20 (List.assoc "seen" vars)

let test_when_condition_holds_at_body () =
  (* The condition and the body share one registration, so the stock can
     never go negative even with competing takers. *)
  let out =
    L.Compile.run ~domains:2
      (parse
         "handler s { var stock = 30; var neg = 0; } client a { repeat 15 { \
          separate s when s.stock > 0 { let v = s.stock; s.stock := v - 1; \
          if v < 1 { s.neg := 1; } } } } client b { repeat 15 { separate s \
          when s.stock > 0 { let v = s.stock; s.stock := v - 1; if v < 1 { \
          s.neg := 1; } } } }")
  in
  let vars = List.assoc "s" out.Qs_lang.Compile.finals in
  check_int "stock exactly drained" 0 (List.assoc "stock" vars);
  check_int "never negative" 0 (List.assoc "neg" vars)

let test_when_read_outside_clause_rejected () =
  rejects
    "handler h { var x = 0; } client c { separate h { local v = h.x + 1; } }"
    "only allowed in the when-clause"

let test_when_read_of_unreserved_rejected () =
  rejects
    "handler h { var x = 0; } handler g { var y = 0; } client c { separate \
     h when g.y > 0 { } }"
    "only allowed in the when-clause"

let test_when_pretty_roundtrip () =
  let src =
    "handler h { var x = 0; } client c { separate h when h.x == 0 { h.x := \
     1; } }"
  in
  let p = parse src in
  let printed = Format.asprintf "%a" Ast.pp_program p in
  check_bool "roundtrip" true (parse printed = p)

let test_when_codegen_has_retry_loop () =
  (* The lowered wait condition forms a loop whose attempt block re-syncs,
     so the pass must keep that sync (each retry re-reserves). *)
  let emitted, removed =
    optimize_counts
      "handler h { var x = 0; } client c { separate h when h.x > 0 { let v \
       = h.x; } }"
  in
  check_int "emitted (when + body)" 2 emitted;
  (* The body read's sync IS removable: the successful attempt reaches the
     body with h synced and nothing intervening. *)
  check_int "body sync removed" 1 removed

(* -- codegen + static pass ---------------------------------------------------------- *)

let test_codegen_pull_loop () =
  (* The surface-level Fig. 14: reads in a loop; only the first sync
     survives. *)
  let emitted, removed =
    optimize_counts
      "handler s { var cell = 7; } client r { separate s { let first = \
       s.cell; repeat 6 { let v = s.cell; } let last = s.cell; } }"
  in
  check_int "emitted" 3 emitted;
  check_int "removed" 2 removed

let test_codegen_async_invalidates () =
  (* A write between two reads forces the second sync to stay. *)
  let emitted, removed =
    optimize_counts
      "handler s { var cell = 0; } client r { separate s { let a = s.cell; \
       s.cell := a + 1; let b = s.cell; } }"
  in
  check_int "emitted" 2 emitted;
  check_int "removed" 0 removed

let test_codegen_consecutive_reads_coalesce () =
  let emitted, removed =
    optimize_counts
      "handler s { var cell = 0; } client r { separate s { let a = s.cell; \
       let b = s.cell; let c = s.cell; } }"
  in
  check_int "emitted" 3 emitted;
  check_int "removed" 2 removed

let test_codegen_block_end_invalidates () =
  (* The END marker at block exit is an async: a read in a later block
     must re-sync. *)
  let emitted, removed =
    optimize_counts
      "handler s { var cell = 0; } client r { separate s { let a = s.cell; } \
       separate s { let b = s.cell; } }"
  in
  check_int "emitted" 2 emitted;
  check_int "removed" 0 removed

(* -- semantics export ---------------------------------------------------------------- *)

let test_semantics_export_no_deadlock () =
  let stats =
    L.To_semantics.explore
      (parse
         "handler a { var x = 0; } handler b { var x = 0; } client c1 { \
          separate a { a.x := 1; } separate b { b.x := 1; } } client c2 { \
          separate b { b.x := 2; } separate a { a.x := 2; } }")
  in
  check_int "no deadlocks" 0 (List.length stats.Qs_semantics.Explore.deadlocks);
  check_bool "explored" true (stats.Qs_semantics.Explore.states > 10)

let test_semantics_export_rejects_if () =
  match
    L.To_semantics.translate
      (parse
         "handler h { var x = 0; } client c { local v = 1; if v > 0 { } }")
  with
  | exception L.To_semantics.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported"

let test_semantics_guarantee_on_surface_program () =
  let init =
    L.To_semantics.translate
      (parse
         "handler h { var x = 0; } client c1 { separate h { h.x := 1; let v \
          = h.x; h.x := 2; } } client c2 { separate h { h.x := 3; let w = \
          h.x; } }")
  in
  let report =
    Qs_semantics.Guarantees.check_program Qs_semantics.Step.qs_client_exec init
  in
  check_bool "guarantee 2 holds" true
    (report.Qs_semantics.Guarantees.violation = None);
  check_bool "explored runs" true (report.Qs_semantics.Guarantees.runs > 10)

(* -- property: the language's counter programs are exact ------------------------------ *)

let prop_counter_exact =
  QCheck2.Test.make ~count:20 ~name:"n clients x k increments are exact"
    QCheck2.Gen.(pair (int_range 1 4) (int_range 1 10))
    (fun (clients, k) ->
      let client i =
        Printf.sprintf
          "client c%d { repeat %d { separate h { let v = h.x; h.x := v + 1; } } }"
          i k
      in
      let src =
        "handler h { var x = 0; }\n"
        ^ String.concat "\n" (List.init clients client)
      in
      let out = L.Compile.run ~domains:2 (parse src) in
      List.assoc "x" (List.assoc "h" out.Qs_lang.Compile.finals) = clients * k)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "qs_lang"
    [
      ( "parsing",
        [
          Alcotest.test_case "roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "comments, negatives" `Quick
            test_parse_comments_and_negatives;
          Alcotest.test_case "if/else, relops" `Quick test_parse_if_else_and_relops;
          Alcotest.test_case "error line" `Quick test_parse_error_reports_line;
          Alcotest.test_case "lex error" `Quick test_lex_error;
        ] );
      ( "checking",
        [
          Alcotest.test_case "unreserved write" `Quick test_check_unreserved_write;
          Alcotest.test_case "unreserved read" `Quick test_check_unreserved_read;
          Alcotest.test_case "unknown handler" `Quick test_check_unknown_handler;
          Alcotest.test_case "unknown var" `Quick test_check_unknown_var;
          Alcotest.test_case "unbound local" `Quick test_check_unbound_local;
          Alcotest.test_case "re-reservation" `Quick test_check_rereservation;
          Alcotest.test_case "scope ends with block" `Quick
            test_check_wrong_scope_after_block;
        ] );
      ( "compilation",
        [
          Alcotest.test_case "sequential client" `Quick test_run_sequential_client;
          Alcotest.test_case "two clients, race free" `Quick
            test_run_two_clients_race_free;
          Alcotest.test_case "multi-reservation invariant" `Quick
            test_run_multi_reservation_invariant;
          Alcotest.test_case "if/print" `Quick test_run_if_print;
          Alcotest.test_case "every config" `Quick test_run_under_every_config;
        ] );
      ( "wait conditions",
        [
          Alcotest.test_case "producer/consumer" `Quick test_when_producer_consumer;
          Alcotest.test_case "condition holds at body" `Quick
            test_when_condition_holds_at_body;
          Alcotest.test_case "read outside clause" `Quick
            test_when_read_outside_clause_rejected;
          Alcotest.test_case "read of unreserved" `Quick
            test_when_read_of_unreserved_rejected;
          Alcotest.test_case "pretty roundtrip" `Quick test_when_pretty_roundtrip;
          Alcotest.test_case "codegen retry loop" `Quick
            test_when_codegen_has_retry_loop;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "pull loop (Fig. 14)" `Quick test_codegen_pull_loop;
          Alcotest.test_case "async invalidates" `Quick test_codegen_async_invalidates;
          Alcotest.test_case "consecutive reads" `Quick
            test_codegen_consecutive_reads_coalesce;
          Alcotest.test_case "block end invalidates" `Quick
            test_codegen_block_end_invalidates;
        ] );
      ( "semantics export",
        [
          Alcotest.test_case "explore" `Quick test_semantics_export_no_deadlock;
          Alcotest.test_case "rejects if" `Quick test_semantics_export_rejects_if;
          Alcotest.test_case "guarantee on surface program" `Quick
            test_semantics_guarantee_on_surface_program;
        ] );
      ("properties", [ qc prop_counter_exact ]);
    ]
