(* Tests for the static sync-coalescing pass: the UpdateSync transfer
   function (Fig. 13), the worklist dataflow (Fig. 12), the elision on the
   paper's examples (Figs. 14–15) and on the benchmark kernels, and a
   property-based dynamic soundness check of every removal. *)

open Qs_syncopt

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -- transfer function (Fig. 13) ---------------------------------------------- *)

let vset l = Syncset.Vset.of_list l
let elements s = Syncset.Vset.elements s

let test_transfer_sync () =
  let out = Syncset.transfer_inst Alias.empty (vset []) (Ir.Sync "h") in
  Alcotest.(check (list string)) "sync adds" [ "h" ] (elements out)

let test_transfer_async () =
  let out = Syncset.transfer_inst Alias.empty (vset [ "h"; "i" ]) (Ir.Async "h") in
  Alcotest.(check (list string)) "async removes target" [ "i" ] (elements out)

let test_transfer_async_alias () =
  let alias = Alias.may_alias_pairs [ ("h", "i") ] in
  let out = Syncset.transfer_inst alias (vset [ "h"; "i"; "j" ]) (Ir.Async "h") in
  Alcotest.(check (list string)) "async removes aliases too" [ "j" ] (elements out)

let test_transfer_side_effects () =
  let out =
    Syncset.transfer_inst Alias.empty (vset [ "h"; "i" ])
      (Ir.Call_ext { readonly = false })
  in
  Alcotest.(check (list string)) "side effects clear" [] (elements out)

let test_transfer_readonly () =
  let out =
    Syncset.transfer_inst Alias.empty (vset [ "h" ])
      (Ir.Call_ext { readonly = true })
  in
  Alcotest.(check (list string)) "readonly preserves" [ "h" ] (elements out)

let test_transfer_neutral () =
  let s = vset [ "h" ] in
  Alcotest.(check (list string)) "read preserves" [ "h" ]
    (elements (Syncset.transfer_inst Alias.empty s (Ir.Read "h")));
  Alcotest.(check (list string)) "local preserves" [ "h" ]
    (elements (Syncset.transfer_inst Alias.empty s Ir.Local))

(* -- alias relation ------------------------------------------------------------- *)

let test_alias () =
  let a = Alias.may_alias_pairs [ ("x", "y"); ("y", "z") ] in
  check_bool "reflexive" true (Alias.may_alias a "x" "x");
  check_bool "symmetric" true (Alias.may_alias a "y" "x");
  check_bool "pair" true (Alias.may_alias a "y" "z");
  check_bool "not transitive" false (Alias.may_alias a "x" "z");
  Alcotest.(check (list string))
    "closure" [ "x"; "y"; "z" ]
    (List.sort compare (Alias.closure_of a "y"))

(* -- the paper's figures ---------------------------------------------------------- *)

let removals_of cfg =
  let r = Pass.run cfg in
  List.map (fun (rm : Pass.removal) -> (rm.Pass.block, rm.Pass.index)) r.Pass.removed

let test_fig14 () =
  (* Fig. 14b: the syncs of B1 (the loop body) and B2 (the exit) are
     removed; only the entry's stays. *)
  Alcotest.(check (list (pair int int)))
    "loop and exit syncs removed"
    [ (1, 0); (2, 0) ]
    (removals_of (Kernels.fig14 ()))

let test_fig15 () =
  (* Fig. 15b: possible aliasing of h_p and i_p blocks every removal. *)
  Alcotest.(check (list (pair int int))) "no coalescing" []
    (removals_of (Kernels.fig15 ()))

let test_fig15_refined () =
  Alcotest.(check (list (pair int int)))
    "alias refinement restores coalescing"
    [ (1, 0); (2, 0) ]
    (removals_of (Kernels.fig15_refined ()))

let test_kernels_expected_counts () =
  let expected =
    [
      ("fig14", 2); ("fig15", 0); ("fig15-refined", 2); ("pull-loop", 1);
      ("pull-then-push", 2); ("irregular", 0); ("irregular-readonly", 1);
    ]
  in
  List.iter
    (fun (name, k) ->
      let r = Pass.run (k ()) in
      check_int name (List.assoc name expected) (List.length r.Pass.removed))
    Kernels.all

let test_in_sets_fig14 () =
  let cfg = Kernels.fig14 () in
  let res = Syncset.analyze cfg in
  Alcotest.(check (list string)) "entry starts empty" []
    (elements res.Syncset.in_sets.(0));
  Alcotest.(check (list string)) "loop body sees {h_p}" [ "h_p" ]
    (elements res.Syncset.in_sets.(1));
  Alcotest.(check (list string)) "exit sees {h_p}" [ "h_p" ]
    (elements res.Syncset.in_sets.(2))

(* -- CFG machinery ------------------------------------------------------------------ *)

let test_cfg_dangling_successor () =
  let b = Cfg.builder () in
  let _ = Cfg.add_block b ~succs:[ 5 ] [] in
  Alcotest.check_raises "dangling successor"
    (Invalid_argument "Cfg.freeze: block 0 has unknown successor 5") (fun () ->
      ignore (Cfg.freeze b : Cfg.t))

let test_cfg_preds () =
  let b = Cfg.builder () in
  let b0 = Cfg.add_block b ~succs:[ 1; 2 ] [] in
  let b1 = Cfg.add_block b ~succs:[ 2 ] [] in
  let b2 = Cfg.add_block b [] in
  let cfg = Cfg.freeze b in
  Alcotest.(check (list int)) "preds of exit" [ b0; b1 ] (Cfg.block cfg b2).Cfg.preds;
  Alcotest.(check (list int)) "preds of entry" [] (Cfg.block cfg b0).Cfg.preds;
  Alcotest.(check (list int)) "preds of middle" [ b0 ] (Cfg.block cfg b1).Cfg.preds

let test_paths_bounded () =
  let cfg = Kernels.fig14 () in
  let paths = Cfg.paths ~max_visits:2 cfg in
  check_bool "at least entry->exit and one unrolled loop" true
    (List.length paths >= 2);
  List.iter
    (fun p ->
      let visits = Hashtbl.create 8 in
      List.iter
        (fun b ->
          Hashtbl.replace visits b (1 + Option.value ~default:0 (Hashtbl.find_opt visits b)))
        p;
      Hashtbl.iter (fun _ n -> check_bool "visit bound" true (n <= 2)) visits)
    paths

let test_pass_idempotent () =
  List.iter
    (fun (name, k) ->
      let first = Pass.run (k ()) in
      let second = Pass.run first.Pass.cfg in
      check_int (name ^ " second pass removes nothing") 0
        (List.length second.Pass.removed))
    Kernels.all

let test_count_syncs () =
  let cfg = Kernels.fig14 () in
  let static_none = Interp.count_syncs cfg ~dyn:false in
  let with_dyn = Interp.count_syncs cfg ~dyn:true in
  check_bool "dynamic elides" true (with_dyn < static_none);
  let transformed = (Pass.run cfg).Pass.cfg in
  let after_static = Interp.count_syncs transformed ~dyn:false in
  check_bool "static elides" true (after_static < static_none);
  check_bool "static at least as good as dynamic on fig14" true
    (after_static <= with_dyn)

(* -- soundness: paper examples -------------------------------------------------------- *)

let test_soundness_fig14 () =
  let cfg = Kernels.fig14 () in
  let r = Pass.run cfg in
  (match Interp.check_removals cfg r ~env:[ ("h_p", 1) ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail e)

let test_soundness_inconsistent_env () =
  let cfg = Kernels.fig15 () in
  let r = Pass.run cfg in
  check_bool "distinct ids fine" true
    (Interp.env_consistent (Kernels.fig15 ()).Cfg.alias
       [ ("h_p", 1); ("i_p", 2) ]);
  (* h_p and i_p may alias, so mapping them to one handler is allowed. *)
  (match Interp.check_removals cfg r ~env:[ ("h_p", 1); ("i_p", 1) ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* Distinct variables that never alias must denote distinct handlers. *)
  let cfg2 = Kernels.pull_then_push () in
  let r2 = Pass.run cfg2 in
  check_bool "inconsistent env rejected" true
    (try
       ignore (Interp.check_removals cfg2 r2 ~env:[ ("w", 1); ("r", 1) ]);
       false
     with Invalid_argument _ -> true)

(* A deliberately unsound "pass" is caught by the checker. *)
let test_checker_catches_unsound () =
  let cfg = Kernels.irregular_loop () in
  let bogus : Pass.report =
    { cfg; removed = [ { Pass.block = 1; index = 0; hvar = "res" } ]; kept_syncs = 0 }
  in
  check_bool "unsound removal flagged" true
    (match Interp.check_removals cfg bogus ~env:[ ("res", 1) ] with
    | Error _ -> true
    | Ok () -> false)

(* -- random CFG soundness --------------------------------------------------------------- *)

let vars = [ "a"; "b"; "c" ]

let gen_inst =
  QCheck2.Gen.(
    oneof
      [
        map (fun v -> Ir.Sync v) (oneofl vars);
        map (fun v -> Ir.Async v) (oneofl vars);
        map (fun v -> Ir.Read v) (oneofl vars);
        return Ir.Local;
        map (fun ro -> Ir.Call_ext { readonly = ro }) bool;
      ])

let gen_cfg =
  let open QCheck2.Gen in
  let* nblocks = int_range 1 5 in
  let* insts = list_repeat nblocks (list_size (int_bound 5) gen_inst) in
  let* succs =
    list_repeat nblocks (list_size (int_bound 2) (int_bound (nblocks - 1)))
  in
  let* alias_ab = bool in
  let* alias_bc = bool in
  let alias =
    Alias.may_alias_pairs
      ((if alias_ab then [ ("a", "b") ] else [])
      @ if alias_bc then [ ("b", "c") ] else [])
  in
  let b = Cfg.builder () in
  List.iter2 (fun il sl -> ignore (Cfg.add_block b ~succs:sl il : int)) insts succs;
  return ((alias_ab, alias_bc), Cfg.freeze ~alias b)

let print_cfg (_, cfg) = Format.asprintf "%a" Cfg.pp cfg

let prop_pass_sound =
  QCheck2.Test.make ~count:300 ~name:"pass removals are dynamically sound"
    ~print:print_cfg gen_cfg
    (fun ((alias_ab, alias_bc), cfg) ->
      let report = Pass.run cfg in
      (* Try both the all-distinct assignment and assignments merging the
         aliased pairs. *)
      let envs =
        [ ("a", 1); ("b", 2); ("c", 3) ]
        :: (if alias_ab then [ [ ("a", 1); ("b", 1); ("c", 3) ] ] else [])
        @ if alias_bc then [ [ ("a", 1); ("b", 2); ("c", 2) ] ] else []
      in
      List.for_all
        (fun env ->
          match Interp.check_removals ~max_visits:3 cfg report ~env with
          | Ok () -> true
          | Error _ -> false)
        envs)

let prop_pass_idempotent =
  QCheck2.Test.make ~count:200 ~name:"pass is idempotent" ~print:print_cfg
    gen_cfg
    (fun (_, cfg) ->
      let first = Pass.run cfg in
      let second = Pass.run first.Pass.cfg in
      second.Pass.removed = [])

let prop_pass_only_removes_syncs =
  QCheck2.Test.make ~count:200 ~name:"pass only deletes Sync instructions"
    ~print:print_cfg gen_cfg
    (fun (_, cfg) ->
      let r = Pass.run cfg in
      let count_non_sync c =
        let total = ref 0 in
        for i = 0 to Cfg.num_blocks c - 1 do
          List.iter
            (function Ir.Sync _ -> () | _ -> incr total)
            (Cfg.block c i).Cfg.insts
        done;
        !total
      in
      count_non_sync cfg = count_non_sync r.Pass.cfg)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "qs_syncopt"
    [
      ( "transfer",
        [
          Alcotest.test_case "sync" `Quick test_transfer_sync;
          Alcotest.test_case "async" `Quick test_transfer_async;
          Alcotest.test_case "async+alias" `Quick test_transfer_async_alias;
          Alcotest.test_case "side effects" `Quick test_transfer_side_effects;
          Alcotest.test_case "readonly" `Quick test_transfer_readonly;
          Alcotest.test_case "neutral" `Quick test_transfer_neutral;
        ] );
      ("alias", [ Alcotest.test_case "relation" `Quick test_alias ]);
      ( "figures",
        [
          Alcotest.test_case "fig14 removals" `Quick test_fig14;
          Alcotest.test_case "fig15 blocked by alias" `Quick test_fig15;
          Alcotest.test_case "fig15 refined" `Quick test_fig15_refined;
          Alcotest.test_case "kernel removal counts" `Quick
            test_kernels_expected_counts;
          Alcotest.test_case "fig14 in-sets" `Quick test_in_sets_fig14;
        ] );
      ( "cfg",
        [
          Alcotest.test_case "dangling successor" `Quick test_cfg_dangling_successor;
          Alcotest.test_case "predecessors" `Quick test_cfg_preds;
          Alcotest.test_case "bounded paths" `Quick test_paths_bounded;
          Alcotest.test_case "idempotent" `Quick test_pass_idempotent;
          Alcotest.test_case "count_syncs" `Quick test_count_syncs;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "fig14" `Quick test_soundness_fig14;
          Alcotest.test_case "aliased env" `Quick test_soundness_inconsistent_env;
          Alcotest.test_case "checker catches unsound" `Quick
            test_checker_catches_unsound;
        ] );
      ( "properties",
        [ qc prop_pass_sound; qc prop_pass_idempotent; qc prop_pass_only_removes_syncs ] );
    ]
