(* Tests for the scalability simulator: the discrete-event engine's
   scheduling properties, the calibration fit, held-out accuracy against
   the paper's Table 4, and the qualitative Fig. 19 shapes the paper
   reports. *)

module E = Qs_sim.Engine
module M = Qs_sim.Model
module PD = Qs_benchmarks.Paper_data

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* -- engine ---------------------------------------------------------------------- *)

let test_serial_adds () =
  check_float "serial sum" 3.0
    (E.makespan ~cores:4 [ E.Serial 1.0; E.Serial 2.0 ])

let test_parallel_perfect_split () =
  check_float "4 tasks on 4 cores" 1.0
    (E.makespan ~cores:4 [ E.Parallel [| 1.0; 1.0; 1.0; 1.0 |] ])

let test_parallel_oversubscribed () =
  (* 5 unit tasks on 2 cores: greedy list scheduling gives 3. *)
  check_float "list scheduling" 3.0
    (E.makespan ~cores:2 [ E.Parallel [| 1.0; 1.0; 1.0; 1.0; 1.0 |] ])

let test_parallel_imbalanced () =
  (* The long task dominates regardless of cores. *)
  check_float "critical path" 10.0
    (E.makespan ~cores:8 [ E.Parallel [| 10.0; 1.0; 1.0 |] ])

let test_even_tasks () =
  let tasks = E.even_tasks ~chunks:4 ~work:8.0 ~per_task_overhead:0.5 in
  Alcotest.(check int) "count" 4 (Array.length tasks);
  check_float "each" 2.5 tasks.(0)

let test_empty_phases () =
  check_float "no phases" 0.0 (E.makespan ~cores:4 []);
  check_float "empty bag" 0.0 (E.makespan ~cores:4 [ E.Parallel [||] ])

let test_cores_clamped () =
  (* cores < 1 behaves as a single core rather than crashing. *)
  check_float "zero cores" 3.0
    (E.makespan ~cores:0 [ E.Parallel [| 1.0; 2.0 |] ])

let test_unknown_series () =
  check_bool "unknown lang" true (M.find ~task:"randmat" ~lang:"rust" () = None);
  check_bool "predict none" true
    (M.predict ~task:"randmat" ~lang:"rust" ~cores:4 () = None);
  check_bool "concurrent none" true
    (M.concurrent_op_cost ~task:"mutex" ~lang:"rust" = None)

let prop_makespan_monotone_in_cores =
  QCheck2.Test.make ~count:200 ~name:"more cores never hurt a task bag"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 20) (map float_of_int (int_range 1 100)))
        (int_range 1 16))
    (fun (durations, cores) ->
      let bag = Array.of_list durations in
      E.schedule_bag ~cores:(cores + 1) bag <= E.schedule_bag ~cores bag +. 1e-9)

let prop_makespan_bounds =
  QCheck2.Test.make ~count:200 ~name:"makespan between work/p and work"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 20) (map float_of_int (int_range 1 100)))
        (int_range 1 16))
    (fun (durations, cores) ->
      let bag = Array.of_list durations in
      let total = List.fold_left ( +. ) 0.0 durations in
      let longest = List.fold_left max 0.0 durations in
      let ms = E.schedule_bag ~cores bag in
      ms >= (total /. float_of_int cores) -. 1e-9
      && ms >= longest -. 1e-9
      && ms <= total +. 1e-9)

(* -- calibration fit ---------------------------------------------------------------- *)

let test_fit_exact_at_anchors () =
  (* Perfect W/p + S + K·p data is recovered exactly. *)
  let w = 10.0 and s = 0.5 and k = 0.01 in
  let t p = (w /. p) +. s +. (k *. p) in
  let f = M.fit ~t1:(t 1.0) ~t8:(t 8.0) ~t32:(t 32.0) in
  Alcotest.(check (float 1e-6)) "w" w f.M.w;
  Alcotest.(check (float 1e-6)) "s" s f.M.s;
  Alcotest.(check (float 1e-6)) "k" k f.M.k

let test_fit_nonnegative () =
  (* Noisy/degenerate data still yields a usable non-negative model. *)
  let f = M.fit ~t1:1.0 ~t8:1.2 ~t32:0.9 in
  check_bool "components clamped" true (f.M.w >= 0.0 && f.M.s >= 0.0 && f.M.k >= 0.0)

(* Held-out accuracy: the model is fitted at 1, 8, 32 threads; its
   predictions at 2, 4 and 16 must match the paper within 30% (or 0.05s
   absolute for the sub-tenth-of-a-second measurements, where the paper's
   own numbers carry that much noise).  Most cells are within a few
   percent — see bench/main.exe fig19. *)
let test_held_out_accuracy () =
  let rel_err a b =
    if abs_float (a -. b) <= 0.05 then 0.0
    else abs_float (a -. b) /. max b 1e-9
  in
  List.iter
    (fun (r : PD.t4_row) ->
      (* Series whose own measurements turn back up between 16 and 32
         threads (heavy contention, e.g. Erlang's chain) are not of the
         model's W/p + S + K·p shape; only a loose bound is meaningful. *)
      let tolerance =
        if r.PD.t4_times.(5) > r.PD.t4_times.(4) then 0.50 else 0.30
      in
      match M.find ~variant:r.PD.t4_variant ~task:r.PD.t4_task ~lang:r.PD.t4_lang () with
      | None -> Alcotest.failf "missing series %s/%s" r.PD.t4_task r.PD.t4_lang
      | Some series ->
        List.iter
          (fun (idx, cores) ->
            let predicted = M.time series.M.fitted ~cores in
            let actual = r.PD.t4_times.(idx) in
            if rel_err predicted actual > tolerance then
              Alcotest.failf "%s/%s at %d cores: predicted %.2f, paper %.2f"
                r.PD.t4_task r.PD.t4_lang cores predicted actual)
          [ (1, 2); (2, 4); (4, 16) ])
    PD.table4

(* -- the Fig. 19 shapes the paper describes ------------------------------------------ *)

let speedup_at task lang cores =
  match M.speedups ~task ~lang ~cores:[ cores ] () with
  | Some [ (_, s) ] -> s
  | _ -> Alcotest.failf "no curve for %s/%s" task lang

let test_haskell_randmat_degrades () =
  (* "the concatenation is sequential, putting a limit on the maximum
     speedup" — Haskell's randmat peaks early and degrades at 32. *)
  let peak =
    List.fold_left
      (fun acc c -> max acc (speedup_at "randmat" "haskell" c))
      0.0 [ 2; 4; 8 ]
  in
  check_bool "peaks below 2.5x" true (peak < 2.5);
  check_bool "degrades at 32" true (speedup_at "randmat" "haskell" 32 < peak)

let test_go_chain_degrades_past_8 () =
  (* "Go is the exception... performance decreases past 8 cores." *)
  let s8 = speedup_at "chain" "go" 8 in
  let s32 = speedup_at "chain" "go" 32 in
  check_bool "8-core speedup decent" true (s8 > 3.0);
  check_bool "degrades at 32" true (s32 < s8)

let test_erlang_winnow_caps () =
  (* "the inability for the Erlang version of winnow to speedup past
     about 2-3x." *)
  check_bool "winnow/erlang caps below 3x" true
    (speedup_at "winnow" "erlang" 32 < 3.0)

let test_most_languages_speed_up_on_chain () =
  (* "on chain, most languages manage to achieve a speedup of at least
     5x" — true of cxx, qs, erlang and haskell approaches it; Go is the
     exception. *)
  check_bool "cxx" true (speedup_at "chain" "cxx" 32 >= 5.0);
  check_bool "qs" true (speedup_at "chain" "qs" 32 >= 5.0);
  check_bool "erlang" true (speedup_at "chain" "erlang" 32 >= 5.0)

let test_qs_compute_scales_but_total_saturates () =
  (* Fig. 19's Qs story: compute-only is near-linear, total saturates on
     the communication-bound kernels. *)
  let total = speedup_at "product" "qs" 32 in
  let compute =
    match M.speedups ~variant:`Compute ~task:"product" ~lang:"qs" ~cores:[ 32 ] () with
    | Some [ (_, s) ] -> s
    | _ -> Alcotest.fail "missing compute curve"
  in
  check_bool "total saturates" true (total < 2.0);
  check_bool "compute near-linear" true (compute > 15.0)

let test_simulated_table5_matches () =
  (* At the paper's operation counts the concurrent model reproduces
     Table 5 by construction; at other counts it scales linearly. *)
  List.iter
    (fun (task, per) ->
      List.iter
        (fun (lang, seconds) ->
          match
            M.predict_concurrent ~task ~lang
              ~ops:(int_of_float (M.paper_ops task))
          with
          | Some t -> Alcotest.(check (float 0.01)) (task ^ "/" ^ lang) seconds t
          | None -> Alcotest.failf "missing %s/%s" task lang)
        per)
    PD.table5

let test_speedup_at_one_core_is_one () =
  List.iter
    (fun task ->
      List.iter
        (fun lang ->
          Alcotest.(check (float 1e-9))
            (task ^ "/" ^ lang)
            1.0
            (speedup_at task lang 1))
        PD.languages)
    PD.parallel_tasks

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "qs_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "serial adds" `Quick test_serial_adds;
          Alcotest.test_case "perfect split" `Quick test_parallel_perfect_split;
          Alcotest.test_case "oversubscribed" `Quick test_parallel_oversubscribed;
          Alcotest.test_case "imbalanced" `Quick test_parallel_imbalanced;
          Alcotest.test_case "empty phases" `Quick test_empty_phases;
          Alcotest.test_case "cores clamped" `Quick test_cores_clamped;
          Alcotest.test_case "unknown series" `Quick test_unknown_series;
          Alcotest.test_case "even tasks" `Quick test_even_tasks;
        ] );
      ( "fit",
        [
          Alcotest.test_case "exact at anchors" `Quick test_fit_exact_at_anchors;
          Alcotest.test_case "non-negative" `Quick test_fit_nonnegative;
          Alcotest.test_case "held-out accuracy" `Quick test_held_out_accuracy;
        ] );
      ( "fig19 shapes",
        [
          Alcotest.test_case "haskell randmat degrades" `Quick
            test_haskell_randmat_degrades;
          Alcotest.test_case "go chain degrades past 8" `Quick
            test_go_chain_degrades_past_8;
          Alcotest.test_case "erlang winnow caps" `Quick test_erlang_winnow_caps;
          Alcotest.test_case "chain speeds up" `Quick
            test_most_languages_speed_up_on_chain;
          Alcotest.test_case "qs compute vs total" `Quick
            test_qs_compute_scales_but_total_saturates;
          Alcotest.test_case "unit speedup at 1 core" `Quick
            test_speedup_at_one_core_is_one;
          Alcotest.test_case "table5 reproduction" `Quick
            test_simulated_table5_matches;
        ] );
      ( "properties",
        [ qc prop_makespan_monotone_in_cores; qc prop_makespan_bounds ] );
    ]
