(* Tests for the SCOOP/Qs runtime: the reasoning guarantees of paper §2.2
   under every optimization configuration, multi-reservation atomicity,
   deadlock detection, instrumentation, and API contracts. *)

module R = Scoop.Runtime
module Reg = Scoop.Registration
module Sh = Scoop.Shared
module Cfg = Scoop.Config
module S = Qs_sched.Sched
module Latch = Qs_sched.Latch
module Ivar = Qs_sched.Ivar

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let all_configs = Cfg.presets @ [ Cfg.eve_base; Cfg.eve_qs ]

(* Run one test body under every configuration. *)
let per_config name body =
  List.map
    (fun config ->
      Alcotest.test_case
        (Printf.sprintf "%s [%s]" name config.Cfg.name)
        `Quick
        (fun () -> body config))
    all_configs

(* -- guarantee 2: per-client order, no interleaving ------------------------- *)

let test_order_single_client config =
  let log =
    R.run ~config (fun rt ->
      let h = R.processor rt in
      let log = Sh.create h (ref []) in
      R.separate rt h (fun reg ->
        for i = 1 to 50 do
          Sh.apply reg log (fun l -> l := i :: !l)
        done;
        Sh.get reg log (fun l -> List.rev !l)))
  in
  Alcotest.(check (list int)) "logged order" (List.init 50 (fun i -> i + 1)) log

(* Several clients log tagged calls; the handler's execution log must show
   each client's calls in order and contiguous per registration. *)
let test_no_interleaving config =
  let clients = 6 and per = 40 in
  let log =
    R.run ~domains:2 ~config (fun rt ->
      let h = R.processor rt in
      let log = Sh.create h (ref []) in
      let latch = Latch.create clients in
      for c = 0 to clients - 1 do
        S.spawn (fun () ->
          R.separate rt h (fun reg ->
            for i = 0 to per - 1 do
              Sh.apply reg log (fun l -> l := (c, i) :: !l)
            done);
          Latch.count_down latch)
      done;
      Latch.wait latch;
      R.separate rt h (fun reg -> Sh.get reg log (fun l -> List.rev !l)))
  in
  check_int "all calls executed" (clients * per) (List.length log);
  (* Contiguity: the log must decompose into runs of [per] entries, each
     run from a single client counting 0..per-1. *)
  let rec segments = function
    | [] -> ()
    | (c, 0) :: _ as l ->
      let seg = List.filteri (fun i _ -> i < per) l in
      let rest = List.filteri (fun i _ -> i >= per) l in
      List.iteri
        (fun i (c', i') ->
          check_int "client id stable" c c';
          check_int "in order" i i')
        seg;
      segments rest
    | (c, i) :: _ ->
      Alcotest.failf "registration starts mid-sequence: client %d at %d" c i
  in
  segments log

let test_query_sees_preceding_calls config =
  R.run ~config (fun rt ->
    let h = R.processor rt in
    let counter = Sh.create h (ref 0) in
    R.separate rt h (fun reg ->
      for expect = 1 to 20 do
        Sh.apply reg counter incr;
        check_int "query linearizes after calls" expect
          (Sh.get reg counter (fun r -> !r))
      done))

let test_read_synced config =
  R.run ~config (fun rt ->
    let h = R.processor rt in
    let arr = Sh.create h (Array.make 64 0) in
    R.separate rt h (fun reg ->
      for i = 0 to 63 do
        Sh.apply reg arr (fun a -> a.(i) <- i)
      done;
      let data = Sh.read_synced reg arr in
      check_int "synced data visible" (63 * 64 / 2) (Array.fold_left ( + ) 0 data);
      check_bool "registration synced" true (Reg.is_synced reg);
      (* An asynchronous call invalidates the synced status. *)
      Sh.apply reg arr (fun a -> a.(0) <- 100);
      check_bool "async invalidates" false (Reg.is_synced reg)))

(* -- multi-reservation (Fig. 5) ---------------------------------------------- *)

let test_multi_reservation_consistency config =
  let mismatches =
    R.run ~domains:2 ~config (fun rt ->
      let hx = R.processor rt and hy = R.processor rt in
      let x = Sh.create hx (ref 0) and y = Sh.create hy (ref 0) in
      let writers = 4 and rounds = 60 in
      let latch = Latch.create (writers + 1) in
      for c = 1 to writers do
        S.spawn (fun () ->
          for _ = 1 to rounds do
            R.separate2 rt hx hy (fun rx ry ->
              Sh.apply rx x (fun r -> r := c);
              Sh.apply ry y (fun r -> r := c))
          done;
          Latch.count_down latch)
      done;
      let bad = ref 0 in
      S.spawn (fun () ->
        for _ = 1 to 100 do
          R.separate2 rt hx hy (fun rx ry ->
            let vx = Sh.get rx x (fun r -> !r) in
            let vy = Sh.get ry y (fun r -> !r) in
            if vx <> vy then incr bad)
        done;
        Latch.count_down latch);
      Latch.wait latch;
      !bad)
  in
  check_int "colours always equal" 0 mismatches

let test_separate_list_order config =
  R.run ~config (fun rt ->
    let procs = R.processors rt 4 in
    R.separate_list rt procs (fun regs ->
      check_int "one registration per processor" 4 (List.length regs);
      List.iter2
        (fun p reg ->
          check_bool "same order as argument" true (Reg.processor reg == p))
        procs regs))

let test_separate_list_duplicate config =
  R.run ~config (fun rt ->
    let p = R.processor rt in
    let q = R.processor rt in
    Alcotest.check_raises "duplicate rejected"
      (Invalid_argument "Scoop.Separate: the same processor reserved twice")
      (fun () -> R.separate_list rt [ p; q; p ] (fun _ -> ())))

let test_separate_list_empty config =
  R.run ~config (fun rt ->
    check_int "empty reservation" 7 (R.separate_list rt [] (fun _ -> 7)))

(* -- deadlock (Fig. 6 with queries, §2.5) ------------------------------------ *)

let test_fig6_query_deadlock config =
  (* Force the cyclic queue configuration with ivar sequencing: client 1
     reserves x first, client 2 reserves y before client 1's inner block
     reserves it, and each queries its inner handler. *)
  let deadlocked =
    try
      R.run ~domains:1 ~config (fun rt ->
        let hx = R.processor rt and hy = R.processor rt in
        let a = Ivar.create () and b = Ivar.create () in
        let latch = Latch.create 2 in
        S.spawn (fun () ->
          R.separate rt hx (fun _rx ->
            Ivar.fill a ();
            Ivar.read b;
            R.separate rt hy (fun ry -> ignore (Reg.query ry (fun () -> 1))));
          Latch.count_down latch);
        S.spawn (fun () ->
          Ivar.read a;
          R.separate rt hy (fun _ry ->
            Ivar.fill b ();
            R.separate rt hx (fun rx -> ignore (Reg.query rx (fun () -> 2))));
          Latch.count_down latch);
        Latch.wait latch);
      false
    with S.Stalled _ -> true
  in
  check_bool "deadlock detected" true deadlocked

(* -- lifecycle and contracts -------------------------------------------------- *)

let test_registration_after_close config =
  R.run ~config (fun rt ->
    let h = R.processor rt in
    let escaped = ref None in
    R.separate rt h (fun reg -> escaped := Some reg);
    Alcotest.check_raises "escaped registration rejected"
      (Invalid_argument "Scoop.Registration: used outside its separate block")
      (fun () -> Reg.call (Option.get !escaped) (fun () -> ())))

let test_shared_wrong_block config =
  R.run ~config (fun rt ->
    let h1 = R.processor rt and h2 = R.processor rt in
    let obj = Sh.create h1 (ref 0) in
    R.separate rt h2 (fun reg ->
      let raised =
        try
          Sh.apply reg obj incr;
          false
        with Invalid_argument _ -> true
      in
      check_bool "ownership violation raises" true raised))

let test_handler_as_client config =
  (* A handler executing a call can itself open separate blocks (the
     threadring pattern). *)
  let v =
    R.run ~config (fun rt ->
      let h1 = R.processor rt and h2 = R.processor rt in
      let cell = Sh.create h2 (ref 0) in
      let done_ = Ivar.create () in
      R.separate rt h1 (fun reg ->
        Reg.call reg (fun () ->
          R.separate rt h2 (fun reg2 ->
            Sh.apply reg2 cell (fun r -> r := 41);
            Ivar.fill done_ (Sh.get reg2 cell (fun r -> !r + 1)))));
      Ivar.read done_)
  in
  check_int "nested handler client" 42 v

let test_sequential_blocks config =
  R.run ~config (fun rt ->
    let h = R.processor rt in
    let total = ref 0 in
    for _ = 1 to 100 do
      R.separate rt h (fun reg -> total := Reg.query reg (fun () -> !total + 1))
    done;
    check_int "hundred blocks" 100 !total)

(* -- instrumentation ----------------------------------------------------------- *)

(* -- mailbox structure and batch width -------------------------------------- *)

(* The bank-account result is identical whichever mailbox structure backs
   the handlers and whatever the drain batch width: the §2.2 guarantees
   are communication-structure independent. *)
let test_mailbox_batch_equivalence () =
  let tellers = 4 and deposits = 200 and initial = 100 in
  let expected = initial + (tellers * deposits) in
  List.iter
    (fun mailbox ->
      List.iter
        (fun batch ->
          let final =
            R.run ~domains:2
              ~config:Cfg.(all |> with_mailbox mailbox |> with_batch batch)
              (fun rt ->
              let account = R.processor rt in
              let balance = Sh.create account (ref initial) in
              let latch = Latch.create tellers in
              for _ = 1 to tellers do
                S.spawn (fun () ->
                  for _ = 1 to deposits do
                    R.separate rt account (fun reg ->
                      Sh.apply reg balance (fun b -> b := !b + 1))
                  done;
                  Latch.count_down latch)
              done;
              Latch.wait latch;
              R.separate rt account (fun reg -> Sh.get reg balance (fun b -> !b)))
          in
          check_int
            (Printf.sprintf "balance [%s, batch %d]"
               (match mailbox with `Qoq -> "qoq" | `Direct -> "direct")
               batch)
            expected final)
        [ 1; 4; 64 ])
    [ `Qoq; `Direct ]

(* Batched drain amortizes wakeups: a call-heavy workload under QoQ with
   batch > 1 delivers more than one request per handler wakeup, while
   batch 1 reproduces the old one-request-per-park loop exactly. *)
let test_mean_batch () =
  let run ~batch =
    R.run ~domains:2 ~config:Cfg.(qoq |> with_batch batch) (fun rt ->
      let buffer = R.processor rt in
      let queue = Sh.create buffer (Queue.create ()) in
      let producers = 4 and per = 100 in
      let latch = Latch.create producers in
      for i = 1 to producers do
        S.spawn (fun () ->
          for k = 1 to per do
            R.separate rt buffer (fun reg ->
              Sh.apply reg queue (fun q -> Queue.push ((i * per) + k) q);
              Sh.apply reg queue (fun q -> ignore (Queue.pop q : int)))
          done;
          Latch.count_down latch)
      done;
      Latch.wait latch;
      (* The producers never wait for the handler; queue-of-queues FIFO
         order means this query's sync round trip returns only after every
         earlier registration has been drained, so the counters are
         settled when the snapshot is taken. *)
      ignore
        (R.separate rt buffer (fun reg -> Sh.get reg queue Queue.length) : int);
      Scoop.Stats.snapshot (R.stats rt))
  in
  let batched = run ~batch:16 in
  check_bool
    (Printf.sprintf "mean batch %.2f > 1 at batch 16"
       (Scoop.Stats.mean_batch batched))
    true
    (Scoop.Stats.mean_batch batched > 1.0);
  check_bool "ends counted" true (batched.Scoop.Stats.s_ends_drained > 0);
  let serial = run ~batch:1 in
  check_bool "mean batch = 1 at batch 1" true
    (Scoop.Stats.mean_batch serial = 1.0)

(* -- scheduler pools: processor pinning ------------------------------------- *)

(* A processor created with [?pool] runs its handler fiber in that pool:
   every *call* closure the handler executes observes the pool, across
   the handler's many mailbox suspensions.  (Queries are no probe here —
   under sync elision a synced client executes query closures itself, on
   the client's own pool; only calls are guaranteed handler-side.) *)
let test_processor_pool_pinning () =
  R.run ~domains:2 ~config:Cfg.(all |> with_pools [ "hot" ]) (fun rt ->
    let pinned = R.processor ~pool:"hot" rt in
    let free = R.processor rt in
    let cell = Sh.create pinned (ref []) in
    let probe = Sh.create free (ref "") in
    for _ = 1 to 20 do
      R.separate rt pinned (fun reg ->
        Sh.apply reg cell (fun r -> r := S.current_pool () :: !r))
    done;
    R.separate rt free (fun reg ->
      Sh.apply reg probe (fun r -> r := S.current_pool ()));
    let seen = R.separate rt pinned (fun reg -> Sh.get reg cell (fun r -> !r)) in
    check_int "every call ran" 20 (List.length seen);
    check_bool "every call saw hot" true (List.for_all (( = ) "hot") seen);
    let seen_free =
      R.separate rt free (fun reg -> Sh.get reg probe (fun r -> !r))
    in
    Alcotest.(check string) "unpinned handler in default" "default" seen_free)

(* [Config.pool] pins every processor created without an explicit
   [?pool]; an explicit [?pool] still wins. *)
let test_default_pool_pinning () =
  R.run
    ~config:Cfg.(all |> with_pools [ "svc"; "aux" ] |> with_pool "svc")
    (fun rt ->
    let implicit = R.processor rt in
    let explicit = R.processor ~pool:"aux" rt in
    let a = Sh.create implicit (ref "") in
    let b = Sh.create explicit (ref "") in
    let in_pool h cell =
      R.separate rt h (fun reg ->
        Sh.apply reg cell (fun r -> r := S.current_pool ());
        Sh.get reg cell (fun r -> !r))
    in
    Alcotest.(check string) "implicit follows config.pool" "svc"
      (in_pool implicit a);
    Alcotest.(check string) "explicit ?pool wins" "aux" (in_pool explicit b))

let test_unknown_pool_rejected () =
  R.run (fun rt ->
    Alcotest.check_raises "unknown pool"
      (Invalid_argument "Sched.spawn_in: unknown pool nope") (fun () ->
        ignore (R.processor ~pool:"nope" rt : Scoop.Processor.t)))

(* Equivalence: the banking workload of [test_mailbox_batch_equivalence]
   must produce the same balance and the same request-path stats whether
   the handler rides the global default pool or a dedicated pinned pool —
   pools reroute scheduling, never requests. *)
let test_pools_equivalence () =
  let tellers = 4 and deposits = 150 and initial = 100 in
  let expected = initial + (tellers * deposits) in
  let run ~pools ~pool =
    let config =
      Cfg.all
      |> (match pools with Some ps -> Cfg.with_pools ps | None -> Fun.id)
      |> match pool with Some p -> Cfg.with_pool p | None -> Fun.id
    in
    R.run ~domains:2 ~config (fun rt ->
      let account = R.processor rt in
      let balance = Sh.create account (ref initial) in
      let latch = Latch.create tellers in
      for _ = 1 to tellers do
        S.spawn (fun () ->
          for _ = 1 to deposits do
            R.separate rt account (fun reg ->
              Sh.apply reg balance (fun b -> b := !b + 1))
          done;
          Latch.count_down latch)
      done;
      Latch.wait latch;
      let final =
        R.separate rt account (fun reg -> Sh.get reg balance (fun b -> !b))
      in
      (final, Scoop.Stats.snapshot (R.stats rt)))
  in
  let final_global, s_global = run ~pools:None ~pool:None in
  let final_pooled, s_pooled =
    run ~pools:(Some [ "bank" ]) ~pool:(Some "bank")
  in
  check_int "global balance" expected final_global;
  check_int "pooled balance" expected final_pooled;
  let picture s =
    Scoop.Stats.(s.s_calls, s.s_queries, s.s_reservations, s.s_handler_failures)
  in
  check_bool "same request-path stats" true
    (picture s_global = picture s_pooled)

let test_stats_queries () =
  let snap config =
    R.run ~config (fun rt ->
      let h = R.processor rt in
      let x = Sh.create h (ref 5) in
      R.separate rt h (fun reg ->
        for _ = 1 to 10 do
          ignore (Sh.get reg x (fun r -> !r) : int)
        done);
      Scoop.Stats.snapshot (R.stats rt))
  in
  let none = snap Cfg.none in
  check_int "none: packaged" 10 none.Scoop.Stats.s_packaged_queries;
  check_int "none: no syncs" 0 none.Scoop.Stats.s_syncs_sent;
  let dyn = snap Cfg.dynamic in
  check_int "dynamic: one sync" 1 dyn.Scoop.Stats.s_syncs_sent;
  check_int "dynamic: nine elided" 9 dyn.Scoop.Stats.s_syncs_elided;
  check_int "dynamic: none packaged" 0 dyn.Scoop.Stats.s_packaged_queries;
  let st = snap Cfg.static_ in
  check_int "static: ten syncs (no dynamic elision)" 10
    st.Scoop.Stats.s_syncs_sent

let test_stats_eve_lookups () =
  let s =
    R.run ~config:Cfg.eve_qs (fun rt ->
      let h = R.processor rt in
      let x = Sh.create h (ref 0) in
      R.separate rt h (fun reg ->
        for _ = 1 to 5 do
          Sh.apply reg x incr
        done);
      Scoop.Stats.snapshot (R.stats rt))
  in
  check_bool "eve lookups charged" true (s.Scoop.Stats.s_eve_lookups >= 5)

let test_stats_reservations () =
  let s =
    R.run (fun rt ->
      let ps = R.processors rt 3 in
      R.separate_list rt ps (fun _ -> ());
      R.separate rt (List.hd ps) (fun _ -> ());
      Scoop.Stats.snapshot (R.stats rt))
  in
  check_int "processors" 3 s.Scoop.Stats.s_processors;
  check_int "reservations" 2 s.Scoop.Stats.s_reservations;
  check_int "multi reservations" 1 s.Scoop.Stats.s_multi_reservations

(* -- wait conditions (precondition-as-wait semantics) -------------------------- *)

let test_wait_condition_basic config =
  R.run ~domains:2 ~config (fun rt ->
    let h = R.processor rt in
    let flag = Sh.create h (ref false) in
    let got = ref 0 in
    let latch = Latch.create 2 in
    S.spawn (fun () ->
      got :=
        R.separate_when rt h
          ~pred:(fun reg -> Sh.get reg flag (fun r -> !r))
          (fun reg -> Reg.query reg (fun () -> 99));
      Latch.count_down latch);
    S.spawn (fun () ->
      (* Give the waiter a chance to fail at least once, then enable. *)
      S.yield ();
      R.separate rt h (fun reg -> Sh.apply reg flag (fun r -> r := true));
      Latch.count_down latch);
    Latch.wait latch;
    check_int "body ran after condition" 99 !got)

let test_wait_condition_atomic_with_body config =
  (* The classic check-then-act race: with [separate_when] the condition
     and the decrement run under one registration, so the counter can
     never go negative even with many competing takers. *)
  let negative =
    R.run ~domains:2 ~config (fun rt ->
      let h = R.processor rt in
      let stock = Sh.create h (ref 20) in
      let takers = 8 in
      let latch = Latch.create takers in
      let negative = Atomic.make false in
      for _ = 1 to takers do
        S.spawn (fun () ->
          for _ = 1 to 5 do
            R.separate_when rt h
              ~pred:(fun reg -> Sh.get reg stock (fun r -> !r > 0))
              (fun reg ->
                Sh.apply reg stock (fun r ->
                  decr r;
                  if !r < 0 then Atomic.set negative true))
          done;
          Latch.count_down latch)
      done;
      (* Keep restocking so everyone finishes. *)
      S.spawn (fun () ->
        for _ = 1 to 40 do
          R.separate rt h (fun reg -> Sh.apply reg stock (fun r -> r := !r + 1));
          S.yield ()
        done);
      Latch.wait latch;
      Atomic.get negative)
  in
  check_bool "stock never negative" false negative

let test_wait_condition_multi config =
  (* Wait on a joint condition over two handlers. *)
  R.run ~domains:2 ~config (fun rt ->
    let ha = R.processor rt and hb = R.processor rt in
    let a = Sh.create ha (ref 0) and b = Sh.create hb (ref 0) in
    let latch = Latch.create 2 in
    let sum = ref 0 in
    S.spawn (fun () ->
      sum :=
        R.separate_list_when rt [ ha; hb ]
          ~pred:(fun regs ->
            match regs with
            | [ ra; rb ] ->
              Sh.get ra a (fun r -> !r) + Sh.get rb b (fun r -> !r) >= 10
            | _ -> assert false)
          (fun regs ->
            match regs with
            | [ ra; rb ] -> Sh.get ra a (fun r -> !r) + Sh.get rb b (fun r -> !r)
            | _ -> assert false);
      Latch.count_down latch);
    S.spawn (fun () ->
      for _ = 1 to 5 do
        R.separate rt ha (fun reg -> Sh.apply reg a incr);
        R.separate rt hb (fun reg -> Sh.apply reg b incr);
        S.yield ()
      done;
      Latch.count_down latch);
    Latch.wait latch;
    check_bool "condition held at body" true (!sum >= 10))

let test_wait_retries_counted () =
  let retries =
    R.run (fun rt ->
      let h = R.processor rt in
      let flag = Sh.create h (ref false) in
      S.spawn (fun () ->
        for _ = 1 to 3 do
          S.yield ()
        done;
        R.separate rt h (fun reg -> Sh.apply reg flag (fun r -> r := true)));
      ignore
        (R.separate_when rt h
           ~pred:(fun reg -> Sh.get reg flag (fun r -> !r))
           (fun _ -> ()));
      (Scoop.Stats.snapshot (R.stats rt)).Scoop.Stats.s_wait_retries)
  in
  check_bool "retries recorded" true (retries >= 1)

(* -- tracing (§7 instrumentation) ------------------------------------------------ *)

let test_trace_disabled_by_default () =
  R.run (fun rt -> check_bool "no trace" true (R.trace rt = None))

let test_trace_records_operations () =
  let summaries =
    R.run ~trace:true ~config:Cfg.all (fun rt ->
      let h = R.processor rt in
      let cell = Sh.create h (ref 0) in
      R.separate rt h (fun reg ->
        for _ = 1 to 10 do
          Sh.apply reg cell incr
        done;
        for _ = 1 to 5 do
          ignore (Sh.get reg cell (fun r -> !r) : int)
        done);
      Scoop.Trace.summarize (Option.get (R.trace rt)))
  in
  match summaries with
  | [ s ] ->
    check_int "reservations" 1 s.Scoop.Trace.sp_reservations;
    check_int "calls" 10 s.Scoop.Trace.sp_calls;
    check_int "every call's latency recorded" 10
      s.Scoop.Trace.sp_call_latency.Scoop.Trace.count;
    check_bool "latencies non-negative" true
      (s.Scoop.Trace.sp_call_latency.Scoop.Trace.mean >= 0.0);
    (* With dynamic coalescing: first query syncs, four elided. *)
    check_int "one sync" 1 s.Scoop.Trace.sp_sync_round_trip.Scoop.Trace.count;
    check_int "four elided" 4 s.Scoop.Trace.sp_syncs_elided
  | l -> Alcotest.failf "expected one processor summary, got %d" (List.length l)

let test_trace_packaged_queries () =
  let summaries =
    R.run ~trace:true ~config:Cfg.none (fun rt ->
      let h = R.processor rt in
      let cell = Sh.create h (ref 3) in
      R.separate rt h (fun reg ->
        for _ = 1 to 7 do
          ignore (Sh.get reg cell (fun r -> !r) : int)
        done);
      Scoop.Trace.summarize (Option.get (R.trace rt)))
  in
  match summaries with
  | [ s ] ->
    check_int "query round trips" 7
      s.Scoop.Trace.sp_query_round_trip.Scoop.Trace.count;
    check_int "no syncs" 0 s.Scoop.Trace.sp_sync_round_trip.Scoop.Trace.count
  | _ -> Alcotest.fail "expected one processor summary"

let test_trace_event_order () =
  R.run ~trace:true (fun rt ->
    let h = R.processor rt in
    let cell = Sh.create h (ref 0) in
    R.separate rt h (fun reg ->
      Sh.apply reg cell incr;
      ignore (Sh.get reg cell (fun r -> !r) : int));
    let tr = Option.get (R.trace rt) in
    let events = Scoop.Trace.events tr in
    check_bool "timestamps monotone" true
      (let rec mono = function
         | a :: (b :: _ as rest) ->
           a.Scoop.Trace.at <= b.Scoop.Trace.at && mono rest
         | _ -> true
       in
       mono events);
    check_bool "reserved first" true
      (match events with
      | e :: _ -> e.Scoop.Trace.kind = Scoop.Trace.Reserved
      | [] -> false))

(* -- pipelined queries (promise-pipelined deferred rendezvous) ---------------- *)

let test_query_async_order config =
  (* Each promise must see exactly the calls logged before it: requests
     execute in logging order, pipelined or not. *)
  let vals =
    R.run ~domains:2 ~config (fun rt ->
      let h = R.processor rt in
      let r = ref 0 in
      R.separate rt h (fun reg ->
        let ps =
          List.init 10 (fun _ ->
            Reg.call reg (fun () -> incr r);
            Reg.query_async reg (fun () -> !r))
        in
        List.map (fun p -> Scoop.Promise.await p) ps))
  in
  Alcotest.(check (list int))
    "each promise sees its prefix"
    (List.init 10 (fun i -> i + 1))
    vals

let test_query_async_synced config =
  R.run ~config (fun rt ->
    let h = R.processor rt in
    let r = ref 0 in
    R.separate rt h (fun reg ->
      Reg.call reg (fun () -> incr r);
      let p = Reg.query_async reg (fun () -> !r) in
      check_bool "pending promise invalidates synced" false (Reg.is_synced reg);
      check_int "forced value" 1 (Scoop.Promise.await p);
      check_bool "force re-establishes synced" true (Reg.is_synced reg);
      Reg.call reg (fun () -> incr r);
      check_bool "call invalidates again" false (Reg.is_synced reg);
      (* A request logged between issue and force blocks the upgrade:
         the handler may still be busy with it when the force returns. *)
      let q = Reg.query_async reg (fun () -> !r) in
      Reg.call reg (fun () -> incr r);
      ignore (Scoop.Promise.await q : int);
      check_bool "stale force does not mark synced" false (Reg.is_synced reg)))

let test_query_async_after_close config =
  (* The promise outlives the separate block; forcing it afterwards
     still returns the value (but no longer updates the registration). *)
  R.run ~config (fun rt ->
    let h = R.processor rt in
    let r = ref 41 in
    let p =
      R.separate rt h (fun reg -> Reg.query_async reg (fun () -> !r + 1))
    in
    check_int "forced after block close" 42 (Scoop.Promise.await p))

let test_stats_promises () =
  (* Single domain: the handler cannot run between issue and force, so
     the ready/blocked split is deterministic. *)
  let s =
    R.run ~config:Cfg.qoq (fun rt ->
      let h = R.processor rt in
      let r = ref 0 in
      R.separate rt h (fun reg ->
        (* Forced immediately: the client blocks on the rendezvous. *)
        let p1 =
          Reg.query_async reg (fun () ->
            incr r;
            !r)
        in
        check_int "p1" 1 (Scoop.Promise.await p1);
        (* Forced after a blocking query has drained the queue past it:
           already resolved on first poll. *)
        let p2 =
          Reg.query_async reg (fun () ->
            incr r;
            !r)
        in
        check_int "blocking query drains" 2 (Reg.query reg (fun () -> !r));
        check_int "p2" 2 (Scoop.Promise.await p2));
      Scoop.Stats.snapshot (R.stats rt))
  in
  check_int "created" 2 s.Scoop.Stats.s_promises_created;
  check_int "fulfilled" 2 s.Scoop.Stats.s_promises_fulfilled;
  check_int "ready on first poll" 1 s.Scoop.Stats.s_promises_ready;
  check_int "forced blocking" 1 s.Scoop.Stats.s_promises_blocked;
  Alcotest.(check (float 0.001)) "overlap ratio" 0.5 (Scoop.Stats.overlap_ratio s)

let test_trace_pipelined_queries () =
  let summaries =
    R.run ~trace:true ~config:Cfg.qoq (fun rt ->
      let h = R.processor rt in
      let r = ref 0 in
      R.separate rt h (fun reg ->
        let ps =
          List.init 6 (fun _ ->
            Reg.query_async reg (fun () ->
              incr r;
              !r))
        in
        ignore (Scoop.Promise.await (Scoop.Promise.all ps) : int list));
      Scoop.Trace.summarize (Option.get (R.trace rt)))
  in
  match summaries with
  | [ s ] ->
    check_int "pipelined spans" 6
      s.Scoop.Trace.sp_query_pipelined.Scoop.Trace.count;
    check_bool "durations non-negative" true
      (s.Scoop.Trace.sp_query_pipelined.Scoop.Trace.mean >= 0.0)
  | _ -> Alcotest.fail "expected one processor summary"

(* -- failure semantics (typed completions, dirty-processor rule) --------------- *)

(* The observable failure behaviour must be identical under every preset
   and both mailbox structures: run each scenario over the full matrix. *)
let per_preset_mailbox name body =
  List.concat_map
    (fun config ->
      List.map
        (fun (mname, mailbox) ->
          Alcotest.test_case
            (Printf.sprintf "%s [%s/%s]" name config.Cfg.name mname)
            `Quick
            (fun () -> body config mailbox))
        [ ("qoq", `Qoq); ("direct", `Direct) ])
    Cfg.presets

let test_failing_query_reraises config mailbox =
  (* A raising blocking query re-raises the original exception on the
     client — under both query flavours — and, having a rendezvous, does
     not poison the registration. *)
  R.run ~config:(Cfg.with_mailbox mailbox config) (fun rt ->
    let h = R.processor rt in
    let cell = Sh.create h (ref 0) in
    R.separate rt h (fun reg ->
      Sh.apply reg cell incr;
      (match Reg.query reg (fun () -> failwith "boom") with
      | _ -> Alcotest.fail "raising query must re-raise"
      | exception Failure _ -> ());
      check_int "registration still serves" 1 (Sh.get reg cell (fun r -> !r))))

let test_failing_call_poisons config mailbox =
  (* A raising asynchronous call poisons the registration: the failure
     surfaces at the next sync point, later operations fail at issue, and
     the block exit re-raises; the handler itself survives. *)
  R.run ~config:(Cfg.with_mailbox mailbox config) (fun rt ->
    let h = R.processor rt in
    let cell = Sh.create h (ref 0) in
    let at_exit = ref false in
    (try
       R.separate rt h (fun reg ->
         Reg.call reg (fun () -> failwith "boom");
         (* The query's rendezvous guarantees the failing call has been
            served, so the poison check here is deterministic. *)
         (match Sh.get reg cell (fun r -> !r) with
         | _ -> Alcotest.fail "sync point must surface the poison"
         | exception Scoop.Handler_failure (_, Failure _) -> ());
         match Reg.call reg (fun () -> ()) with
         | () -> Alcotest.fail "poisoned registration must fail at issue"
         | exception Scoop.Handler_failure (_, Failure _) -> ())
     with Scoop.Handler_failure (_, Failure _) -> at_exit := true);
    check_bool "block exit re-raises the poison" true !at_exit;
    R.separate rt h (fun reg ->
      Sh.apply reg cell incr;
      check_int "handler survives for fresh registrations" 1
        (Sh.get reg cell (fun r -> !r))))

let test_failing_query_async_rejects config mailbox =
  (* A raising pipelined query rejects its promise; forcing re-raises on
     the client and the registration stays clean. *)
  R.run ~config:(Cfg.with_mailbox mailbox config) (fun rt ->
    let h = R.processor rt in
    let cell = Sh.create h (ref 0) in
    R.separate rt h (fun reg ->
      Sh.apply reg cell incr;
      let p = Reg.query_async reg (fun () -> failwith "boom") in
      (match Scoop.Promise.await p with
      | _ -> Alcotest.fail "forcing a rejected promise must raise"
      | exception Failure _ -> ());
      check_bool "rejection does not poison" false (Reg.is_poisoned reg);
      check_int "registration still serves" 1 (Sh.get reg cell (fun r -> !r))))

(* -- processor lifecycle ------------------------------------------------------- *)

let test_shutdown_graceful () =
  R.run (fun rt ->
    let h = R.processor rt in
    let r = ref 0 in
    let cell = Sh.create h r in
    R.separate rt h (fun reg ->
      for _ = 1 to 100 do
        Sh.apply reg cell incr
      done);
    R.shutdown rt;
    (* The handler fiber has exited: the backing ref is safe to read
       directly, and every logged call was served first. *)
    check_int "drained before exit" 100 !r;
    check_bool "stopped" true
      (Scoop.Processor.lifecycle h = Scoop.Processor.Stopped);
    R.shutdown rt;
    check_bool "second shutdown is a no-op" true
      (Scoop.Processor.lifecycle h = Scoop.Processor.Stopped))

let test_abort_discards_pending () =
  let s =
    R.run (fun rt ->
      let h = R.processor rt in
      let r = ref 0 in
      let cell = Sh.create h r in
      (* Single domain: the handler fiber gets no cycles between the
         block and the abort, so all ten calls are still pending. *)
      R.separate rt h (fun reg ->
        for _ = 1 to 10 do
          Sh.apply reg cell incr
        done);
      R.abort rt;
      check_int "pending calls discarded unexecuted" 0 !r;
      check_bool "stopped (abort is not a failure)" true
        (Scoop.Processor.lifecycle h = Scoop.Processor.Stopped);
      Scoop.Stats.snapshot (R.stats rt))
  in
  check_int "aborted requests counted" 10 s.Scoop.Stats.s_aborted_requests;
  check_int "end marker still drained" 1 s.Scoop.Stats.s_ends_drained

let test_failed_lifecycle () =
  R.run (fun rt ->
    let h = R.processor rt in
    (* The poison may or may not surface at block exit depending on
       scheduling; either way the handler records the failure. *)
    (try R.separate rt h (fun reg -> Reg.call reg (fun () -> failwith "boom"))
     with Scoop.Handler_failure (_, Failure _) -> ());
    R.shutdown rt;
    check_bool "failed" true
      (Scoop.Processor.lifecycle h = Scoop.Processor.Failed))

let test_failure_counters () =
  let s =
    R.run (fun rt ->
      let h = R.processor rt in
      let cell = Sh.create h (ref 0) in
      (try
         R.separate rt h (fun reg ->
           let p = Reg.query_async reg (fun () -> failwith "reject") in
           (match Scoop.Promise.await p with
           | _ -> Alcotest.fail "must reject"
           | exception Failure _ -> ());
           Reg.call reg (fun () -> failwith "poison");
           match Sh.get reg cell (fun r -> !r) with
           | _ -> Alcotest.fail "must be poisoned"
           | exception Scoop.Handler_failure (_, Failure _) -> ())
       with Scoop.Handler_failure (_, Failure _) -> ());
      Scoop.Stats.snapshot (R.stats rt))
  in
  check_int "handler failures" 2 s.Scoop.Stats.s_handler_failures;
  check_int "rejected promises" 1 s.Scoop.Stats.s_rejected_promises;
  check_int "poisoned registrations" 1 s.Scoop.Stats.s_poisoned_registrations;
  check_int "no aborted requests" 0 s.Scoop.Stats.s_aborted_requests

(* -- deadlines & backpressure ------------------------------------------------- *)

(* Acceptance: a query against a deliberately wedged handler (a logged
   call that sleeps far longer than the deadline) raises [Scoop.Timeout]
   no earlier than the deadline and within ~2x of it.  Exercised under
   both query flavours (packaged in [none], client-executed in [all])
   and both mailboxes. *)
let test_wedged_query_timeout config mailbox =
  let dt =
    R.run ~config:(Cfg.with_mailbox mailbox config) (fun rt ->
      let h = R.processor rt in
      R.separate rt h (fun reg ->
        Reg.call reg (fun () -> S.sleep 0.4);
        let t0 = Unix.gettimeofday () in
        (match Reg.query ~timeout:0.1 reg (fun () -> 1) with
        | _ -> Alcotest.fail "wedged query must time out"
        | exception Scoop.Timeout -> ());
        Unix.gettimeofday () -. t0))
  in
  check_bool "not before the deadline" true (dt >= 0.09);
  check_bool "within ~2x the deadline" true (dt <= 0.2)

let test_timeout_does_not_poison () =
  R.run (fun rt ->
    let h = R.processor rt in
    let r = ref 0 in
    R.separate rt h (fun reg ->
      Reg.call reg (fun () ->
        S.sleep 0.15;
        incr r);
      (match Reg.query ~timeout:0.02 reg (fun () -> !r) with
      | _ -> Alcotest.fail "must time out"
      | exception Scoop.Timeout -> ());
      check_bool "not poisoned" false (Reg.is_poisoned reg);
      (* The same registration still serves: an unbounded query now
         rendezvouses after the slow call completes. *)
      check_int "later query sees the slow call" 1 (Reg.query reg (fun () -> !r)));
    let s = Scoop.Stats.snapshot (R.stats rt) in
    check_bool "timeout counted" true (s.Scoop.Stats.s_timeouts_fired >= 1);
    check_bool "deadline_exceeded counted" true
      (s.Scoop.Stats.s_deadline_exceeded >= 1);
    check_int "no poisoning" 0 s.Scoop.Stats.s_poisoned_registrations)

let test_default_deadline () =
  (* [with_deadline] makes every blocking query implicitly timed. *)
  R.run ~config:Cfg.(all |> with_deadline 0.05) (fun rt ->
    let h = R.processor rt in
    R.separate rt h (fun reg ->
      Reg.call reg (fun () -> S.sleep 0.2);
      match Reg.query reg (fun () -> 1) with
      | _ -> Alcotest.fail "default deadline must apply"
      | exception Scoop.Timeout -> ()))

let test_promise_await_timeout () =
  R.run (fun rt ->
    let h = R.processor rt in
    R.separate rt h (fun reg ->
      Reg.call reg (fun () -> S.sleep 0.15);
      let p = Reg.query_async reg (fun () -> 42) in
      (match Scoop.Promise.await ~timeout:0.02 p with
      | _ -> Alcotest.fail "pipelined force must time out"
      | exception Scoop.Timeout -> ());
      (* A timed-out force is not a rendezvous: the promise remains
         forceable and later completes normally. *)
      check_int "later force succeeds" 42 (Scoop.Promise.await p)))

let test_wait_condition_timeout () =
  R.run (fun rt ->
    let h = R.processor rt in
    let t0 = Unix.gettimeofday () in
    (match
       R.separate_when ~timeout:0.05 rt h ~pred:(fun _ -> false) (fun _ -> ())
     with
    | () -> Alcotest.fail "unsatisfiable wait condition must time out"
    | exception Scoop.Timeout -> ());
    check_bool "timed out promptly" true (Unix.gettimeofday () -. t0 < 1.0);
    let s = Scoop.Stats.snapshot (R.stats rt) in
    check_bool "retried before the deadline" true
      (s.Scoop.Stats.s_wait_retries >= 1);
    check_bool "deadline_exceeded counted" true
      (s.Scoop.Stats.s_deadline_exceeded >= 1))

let test_lock_reservation_timeout () =
  (* Lock mode: a reservation against a held handler lock times out, the
     timed-out waiter is skipped by the FIFO hand-off, and a later
     reservation still succeeds. *)
  R.run ~config:Cfg.(all |> with_mailbox `Direct) (fun rt ->
    let h = R.processor rt in
    let entered = Ivar.create () in
    S.spawn (fun () ->
      R.separate rt h (fun _reg ->
        Ivar.fill entered ();
        S.sleep 0.2));
    Ivar.read entered;
    (match R.separate ~timeout:0.02 rt h (fun _ -> ()) with
    | () -> Alcotest.fail "reservation against a held lock must time out"
    | exception Scoop.Timeout -> ());
    (* Blocks until the holder wakes and releases — the hand-off must
       not have been consumed by the dead timed-out waiter. *)
    R.separate rt h (fun _ -> ());
    let s = Scoop.Stats.snapshot (R.stats rt) in
    check_bool "deadline_exceeded counted" true
      (s.Scoop.Stats.s_deadline_exceeded >= 1))

let test_shutdown_grace_escalates () =
  let s =
    R.run (fun rt ->
      let h = R.processor rt in
      let r = ref 0 in
      let cell = Sh.create h r in
      R.separate rt h (fun reg ->
        for _ = 1 to 10 do
          Sh.apply reg cell (fun r ->
            S.sleep 0.05;
            incr r)
        done);
      let t0 = Unix.gettimeofday () in
      R.shutdown ~grace:0.08 rt;
      let dt = Unix.gettimeofday () -. t0 in
      (* Full drain would take ~0.5s; the grace period aborts the backlog
         after ~0.08s plus at most one in-flight call. *)
      check_bool "escalated well before full drain" true (dt < 0.4);
      check_bool "served some of the backlog first" true (!r >= 1);
      Scoop.Stats.snapshot (R.stats rt))
  in
  check_bool "backlog aborted" true (s.Scoop.Stats.s_aborted_requests > 0)

let test_backpressure_block () =
  (* [`Block] admission: clients yield at the bound until the handler
     drains, so everything completes — even on one domain, where the
     admission loop must hand the domain to the handler fiber. *)
  R.run ~config:Cfg.(all |> with_bound 2 |> with_overflow `Block) (fun rt ->
    let h = R.processor rt in
    let r = ref 0 in
    let cell = Sh.create h r in
    R.separate rt h (fun reg ->
      for _ = 1 to 10 do
        Sh.apply reg cell incr
      done;
      check_int "all calls served" 10 (Sh.get reg cell (fun r -> !r)));
    let s = Scoop.Stats.snapshot (R.stats rt) in
    check_int "nothing shed" 0 s.Scoop.Stats.s_shed_requests)

let test_backpressure_fail () =
  (* [`Fail] admission: the bound refuses the third in-flight call at
     issue with [Scoop.Overloaded]. *)
  let s =
    R.run ~config:Cfg.(all |> with_bound 2 |> with_overflow `Fail) (fun rt ->
      let h = R.processor rt in
      let r = ref 0 in
      let cell = Sh.create h r in
      let overloaded = ref false in
      R.separate rt h (fun reg ->
        try
          (* Single domain: the handler gets no cycles while we log, so
             the backlog crosses the bound deterministically. *)
          for _ = 1 to 10 do
            Sh.apply reg cell incr
          done
        with Scoop.Overloaded _ -> overloaded := true);
      check_bool "admission refused at the bound" true !overloaded;
      Scoop.Stats.snapshot (R.stats rt))
  in
  check_bool "refusals counted" true (s.Scoop.Stats.s_shed_requests >= 1)

let test_backpressure_shed_oldest () =
  (* [`Shed_oldest]: every admission past the bound sheds the oldest
     pending request; the shed calls fail with [Overloaded], which
     poisons the registration like any failed call. *)
  let s =
    R.run
      ~config:Cfg.(all |> with_bound 2 |> with_overflow `Shed_oldest)
      (fun rt ->
      let h = R.processor rt in
      let r = ref 0 in
      let cell = Sh.create h r in
      let surfaced = ref false in
      (try
         R.separate rt h (fun reg ->
           for _ = 1 to 6 do
             Sh.apply reg cell incr
           done;
           match Sh.get reg cell (fun r -> !r) with
           | _ -> ()
           | exception Scoop.Handler_failure (_, Scoop.Overloaded _) ->
             surfaced := true)
       with Scoop.Handler_failure (_, Scoop.Overloaded _) -> surfaced := true);
      check_bool "shedding surfaced as Overloaded poison" true !surfaced;
      check_bool "the newest calls survived" true (!r >= 1 && !r < 6);
      Scoop.Stats.snapshot (R.stats rt))
  in
  check_int "four of six calls shed" 4 s.Scoop.Stats.s_shed_requests

(* Poisoning is per-registration: one chaos client injecting failures
   never loses other clients' effects, and after an awaited shutdown the
   request accounting balances — every batched request is exactly one
   call, packaged query, pipelined query, sync, or end marker. *)
let prop_poisoning_isolated config =
  QCheck2.Test.make ~count:15
    ~name:(Printf.sprintf "poisoning is per-registration [%s]" config.Cfg.name)
    QCheck2.Gen.(list_size (int_range 2 5) (int_range 1 15))
    (fun client_rounds ->
      let ok = Atomic.make true in
      let s =
        R.run ~domains:2 ~config (fun rt ->
          let h = R.processor rt in
          let cell = Sh.create h (ref 0) in
          let latch = Latch.create (List.length client_rounds) in
          List.iteri
            (fun i rounds ->
              S.spawn (fun () ->
                for _ = 1 to rounds do
                  try
                    R.separate rt h (fun reg ->
                      Sh.apply reg cell incr;
                      if i = 0 then Reg.call reg (fun () -> failwith "chaos"))
                  with Scoop.Handler_failure (_, Failure _) -> ()
                done;
                Latch.count_down latch))
            client_rounds;
          Latch.wait latch;
          let total =
            R.separate rt h (fun reg -> Sh.get reg cell (fun r -> !r))
          in
          if total <> List.fold_left ( + ) 0 client_rounds then
            Atomic.set ok false;
          R.shutdown rt;
          Scoop.Stats.snapshot (R.stats rt))
      in
      let accounted =
        s.Scoop.Stats.s_calls + s.Scoop.Stats.s_packaged_queries
        + s.Scoop.Stats.s_promises_created + s.Scoop.Stats.s_syncs_sent
        + s.Scoop.Stats.s_ends_drained
      in
      Atomic.get ok
      && s.Scoop.Stats.s_batched_requests = accounted
      && s.Scoop.Stats.s_handler_failures
         >= s.Scoop.Stats.s_poisoned_registrations
      && s.Scoop.Stats.s_poisoned_registrations > 0)

let test_config_by_name () =
  List.iter
    (fun c ->
      match Cfg.by_name c.Cfg.name with
      | Some found -> check_bool c.Cfg.name true (found = c)
      | None -> Alcotest.failf "missing preset %s" c.Cfg.name)
    all_configs;
  check_bool "unknown" true (Cfg.by_name "bogus" = None)

(* -- property: random programs match the sequential model ---------------------- *)

type op = Add of int | Query

let op_gen =
  QCheck2.Gen.(oneof [ map (fun i -> Add (1 + (i mod 9))) small_int; return Query ])

let prog_gen = QCheck2.Gen.(list_size (int_bound 6) (list_size (int_bound 15) op_gen))

let prop_random_programs config =
  QCheck2.Test.make ~count:30
    ~name:(Printf.sprintf "random client programs [%s]" config.Cfg.name)
    prog_gen
    (fun clients ->
      let expected =
        List.fold_left
          (fun acc ops ->
            acc
            + List.fold_left (fun a -> function Add n -> a + n | Query -> a) 0 ops)
          0 clients
      in
      let monotone = ref true in
      let final =
        R.run ~domains:2 ~config (fun rt ->
          let h = R.processor rt in
          let counter = Sh.create h (ref 0) in
          let latch = Latch.create (List.length clients) in
          List.iter
            (fun ops ->
              S.spawn (fun () ->
                R.separate rt h (fun reg ->
                  let last = ref (-1) in
                  List.iter
                    (function
                      | Add n -> Sh.apply reg counter (fun r -> r := !r + n)
                      | Query ->
                        let v = Sh.get reg counter (fun r -> !r) in
                        (* Within one registration the counter can only
                           grow (other clients cannot interleave). *)
                        if v < !last then monotone := false;
                        last := v)
                    ops);
                Latch.count_down latch))
            clients;
          Latch.wait latch;
          R.separate rt h (fun reg -> Sh.get reg counter (fun r -> !r)))
      in
      final = expected && !monotone)

(* query_async + force must be observationally equivalent to a blocking
   query issued at the same point: each flavour returns the prefix sum of
   the client's own adds at its issue point.  One private handler per
   client keeps the expected value deterministic; [PForceLater] promises
   are forced only after the whole program ran, exercising long-deferred
   rendezvous. *)
type pop = PAdd of int | PQuery | PForceNow | PForceLater

let pop_gen =
  QCheck2.Gen.(
    frequency
      [
        (3, map (fun i -> PAdd (1 + (i mod 9))) small_int);
        (1, return PQuery);
        (1, return PForceNow);
        (1, return PForceLater);
      ])

let pprog_gen =
  QCheck2.Gen.(list_size (int_range 1 4) (list_size (int_bound 20) pop_gen))

let prop_query_async_equiv config =
  QCheck2.Test.make ~count:25
    ~name:
      (Printf.sprintf "query_async equivalent to blocking query [%s]"
         config.Cfg.name)
    pprog_gen
    (fun clients ->
      let ok = Atomic.make true in
      let expect_or_fail v expect =
        if v <> expect then Atomic.set ok false
      in
      R.run ~domains:2 ~config (fun rt ->
        let latch = Latch.create (List.length clients) in
        List.iter
          (fun ops ->
            S.spawn (fun () ->
              let h = R.processor rt in
              let r = ref 0 in
              R.separate rt h (fun reg ->
                let sum = ref 0 in
                let deferred = ref [] in
                List.iter
                  (function
                    | PAdd n ->
                      sum := !sum + n;
                      Reg.call reg (fun () -> r := !r + n)
                    | PQuery -> expect_or_fail (Reg.query reg (fun () -> !r)) !sum
                    | PForceNow ->
                      let expect = !sum in
                      expect_or_fail
                        (Scoop.Promise.await (Reg.query_async reg (fun () -> !r)))
                        expect
                    | PForceLater ->
                      deferred :=
                        (Reg.query_async reg (fun () -> !r), !sum) :: !deferred)
                  ops;
                List.iter
                  (fun (p, expect) ->
                    expect_or_fail (Scoop.Promise.await p) expect)
                  !deferred);
              Latch.count_down latch))
          clients;
        Latch.wait latch);
      Atomic.get ok)

(* A generous deadline must be semantically invisible: the same random
   client programs as [prop_query_async_equiv], but with every blocking
   operation (reservation, query, promise force) carrying a [?timeout]
   far larger than any real wait.  Runs across every preset and both
   mailboxes — the deadline plumbing must not perturb either request
   path. *)
let prop_generous_timeout_equiv config mailbox =
  QCheck2.Test.make ~count:15
    ~name:
      (Printf.sprintf "generous timeout is invisible [%s/%s]" config.Cfg.name
         (match mailbox with `Qoq -> "qoq" | `Direct -> "direct"))
    pprog_gen
    (fun clients ->
      let ok = Atomic.make true in
      let expect_or_fail v expect = if v <> expect then Atomic.set ok false in
      R.run ~domains:2 ~config:(Cfg.with_mailbox mailbox config) (fun rt ->
        let latch = Latch.create (List.length clients) in
        List.iter
          (fun ops ->
            S.spawn (fun () ->
              let h = R.processor rt in
              let r = ref 0 in
              R.separate ~timeout:60.0 rt h (fun reg ->
                let sum = ref 0 in
                let deferred = ref [] in
                List.iter
                  (function
                    | PAdd n ->
                      sum := !sum + n;
                      Reg.call reg (fun () -> r := !r + n)
                    | PQuery ->
                      expect_or_fail
                        (Reg.query ~timeout:60.0 reg (fun () -> !r))
                        !sum
                    | PForceNow ->
                      let expect = !sum in
                      expect_or_fail
                        (Scoop.Promise.await ~timeout:60.0
                           (Reg.query_async reg (fun () -> !r)))
                        expect
                    | PForceLater ->
                      deferred :=
                        (Reg.query_async reg (fun () -> !r), !sum) :: !deferred)
                  ops;
                List.iter
                  (fun (p, expect) ->
                    expect_or_fail (Scoop.Promise.await ~timeout:60.0 p) expect)
                  !deferred);
              Latch.count_down latch))
          clients;
        Latch.wait latch);
      Atomic.get ok)

(* -- pooled flat requests ----------------------------------------------------- *)

(* One mixed workload, parameterized only by the pooling knob: calls,
   1-arg calls, blocking queries (0- and 1-arg), pipelined queries.
   Returns the observable outcome — final balance plus every query
   result — so pooled and unpooled runs can be compared bit for bit. *)
let flat_workload ~pooling config =
  R.run ~domains:2 ~config:(Cfg.with_pooling pooling config) (fun rt ->
    let h = R.processor rt in
    let r = ref 0 in
    let results = ref [] in
    let keep v = results := v :: !results in
    R.separate rt h (fun reg ->
      for i = 1 to 40 do
        Reg.call reg (fun () -> r := !r + 1);
        Reg.call1 reg (fun n -> r := !r + n) i;
        keep (Reg.query reg (fun () -> !r));
        keep (Reg.query1 reg (fun n -> !r + n) 100);
        let p = Reg.query_async reg (fun () -> !r) in
        keep (Scoop.Promise.await p)
      done);
    let final = R.separate rt h (fun reg -> Reg.query reg (fun () -> !r)) in
    let s = Scoop.Stats.snapshot (R.stats rt) in
    (final, List.rev !results, s))

let test_pooled_unpooled_equiv config =
  let f_pooled, rs_pooled, s_pooled = flat_workload ~pooling:true config in
  let f_plain, rs_plain, s_plain = flat_workload ~pooling:false config in
  check_int "same final balance" f_plain f_pooled;
  Alcotest.(check (list int)) "same query results" rs_plain rs_pooled;
  check_int "same calls" s_plain.Scoop.Stats.s_calls s_pooled.Scoop.Stats.s_calls;
  check_int "same queries" s_plain.Scoop.Stats.s_queries
    s_pooled.Scoop.Stats.s_queries;
  check_int "unpooled run issued no flat requests" 0
    s_plain.Scoop.Stats.s_requests_flat;
  (* Single-reservation traffic under a pooling config must actually
     exercise the flat path (the qoq preset and friends enable it). *)
  if config.Cfg.pooling then
    check_bool "pooled run issued flat requests" true
      (s_pooled.Scoop.Stats.s_requests_flat > 0)

let test_pool_recycles config =
  (* Far more round-trip requests than the pool holds: the free list
     must cycle (requests_pooled keeps growing) instead of draining
     once and falling back forever. *)
  if config.Cfg.pooling then begin
    let s =
      R.run ~config:(Cfg.with_pooling true config) (fun rt ->
        let h = R.processor rt in
        let r = ref 0 in
        R.separate rt h (fun reg ->
          for _ = 1 to 500 do
            Reg.call reg (fun () -> incr r);
            ignore (Reg.query reg (fun () -> !r) : int)
          done);
        Scoop.Stats.snapshot (R.stats rt))
    in
    check_bool "pool cycled many times" true
      (s.Scoop.Stats.s_requests_pooled > 400);
    check_int "flat == pooled under the fallback design"
      s.Scoop.Stats.s_requests_pooled s.Scoop.Stats.s_requests_flat
  end

let test_pool_miss_falls_back config =
  (* Flood asynchronous calls without ever syncing: the 64-slot pool
     empties and every further call must degrade to the packaged path
     (counted as misses), with nothing lost. *)
  if config.Cfg.pooling then begin
    let n = 2_000 in
    let total, s =
      R.run ~config:(Cfg.with_pooling true config) (fun rt ->
        let h = R.processor rt in
        let r = ref 0 in
        let total =
          R.separate rt h (fun reg ->
            for _ = 1 to n do
              Reg.call reg (fun () -> incr r)
            done;
            Reg.query reg (fun () -> !r))
        in
        (total, Scoop.Stats.snapshot (R.stats rt)))
    in
    check_int "every call served" n total;
    check_bool "some calls fell back" true (s.Scoop.Stats.s_pool_misses > 0)
  end

let test_flat_timeout_recovers config =
  (* A timed-out flat query abandons its record; the cell CAS hands the
     recycle to whichever side finishes last, so the pool keeps working
     and later round trips still succeed.  Only packaged-flavour queries
     round-trip through the handler (under [client_query] the body runs
     on the client fiber, which would self-deadlock on the gate). *)
  if config.Cfg.pooling && not config.Cfg.client_query then begin
    let after =
      R.run ~domains:2 ~config:(Cfg.with_pooling true config) (fun rt ->
        let h = R.processor rt in
        let gate = Atomic.make false in
        let r = ref 0 in
        R.separate rt h (fun reg ->
          (match
             Reg.query ~timeout:0.02 reg (fun () ->
               while not (Atomic.get gate) do
                 Domain.cpu_relax ()
               done;
               incr r;
               !r)
           with
          | (_ : int) -> Alcotest.fail "expected Timeout"
          | exception Qs_sched.Timer.Timeout -> ());
          Atomic.set gate true;
          (* the handler finishes the abandoned query; subsequent flat
             round trips must observe a healthy pool *)
          for _ = 1 to 50 do
            ignore (Reg.query reg (fun () -> !r) : int)
          done;
          Reg.query reg (fun () -> !r)))
    in
    check_int "abandoned query still executed" 1 after
  end

let test_handler_elision_pipelined () =
  (* The handler-side drained hint: pipelined query fulfilled at the
     tail of a drained batch + watermark-clean force ⇒ the sync that
     would re-establish the synced state is elided. *)
  let s =
    R.run ~config:Cfg.all (fun rt ->
      let h = R.processor rt in
      let r = ref 0 in
      R.separate rt h (fun reg ->
        for _ = 1 to 30 do
          Reg.call reg (fun () -> incr r);
          let p = Reg.query_async reg (fun () -> !r) in
          ignore (Scoop.Promise.await p : int);
          (* synced was re-established by the force; this read needs no
             round trip *)
          Reg.sync reg
        done);
      Scoop.Stats.snapshot (R.stats rt))
  in
  check_bool "syncs elided" true (s.Scoop.Stats.s_syncs_elided > 0)

let test_pooling_knob_off () =
  (* Config.pooling=false (or the per-run override) must disable the
     flat path entirely. *)
  let s =
    R.run ~config:Cfg.(qoq |> with_pooling false) (fun rt ->
      let h = R.processor rt in
      let r = ref 0 in
      R.separate rt h (fun reg ->
        Reg.call reg (fun () -> incr r);
        ignore (Reg.query reg (fun () -> !r) : int));
      Scoop.Stats.snapshot (R.stats rt))
  in
  check_int "no flat requests" 0 s.Scoop.Stats.s_requests_flat;
  check_int "no pool traffic" 0 s.Scoop.Stats.s_requests_pooled

(* -- config builders and the endpoint grammar ----------------------------- *)

let test_builder_chain () =
  let c =
    Cfg.qoq
    |> Cfg.with_name "tuned"
    |> Cfg.with_batch 4
    |> Cfg.with_mailbox `Direct
    |> Cfg.with_deadline 0.5
    |> Cfg.with_bound 64
    |> Cfg.with_overflow `Fail
    |> Cfg.with_trace true
  in
  check_bool "name" true (c.Cfg.name = "tuned");
  check_int "batch" 4 c.Cfg.batch;
  check_bool "mailbox" true (c.Cfg.mailbox = `Direct);
  check_bool "deadline" true (c.Cfg.default_deadline = Some 0.5);
  check_int "bound" 64 c.Cfg.bound;
  check_bool "overflow" true (c.Cfg.overflow = `Fail);
  check_bool "trace" true c.Cfg.trace;
  (* The source preset is untouched: builders are functional. *)
  check_int "preset batch unchanged" Cfg.default_batch Cfg.qoq.Cfg.batch;
  check_bool "no-deadline undoes with_deadline" true
    ((c |> Cfg.with_no_deadline).Cfg.default_deadline = None)

let test_builder_validation () =
  let rejects name f =
    check_bool name true
      (match f () with
      | (_ : Cfg.t) -> false
      | exception Invalid_argument _ -> true)
  in
  rejects "batch 0" (fun () -> Cfg.with_batch 0 Cfg.qoq);
  rejects "deadline 0" (fun () -> Cfg.with_deadline 0.0 Cfg.qoq);
  rejects "negative bound" (fun () -> Cfg.with_bound (-1) Cfg.qoq)

let test_addr_string_round_trip () =
  let round a =
    check_bool
      ("round trip " ^ Cfg.addr_to_string a)
      true
      (Cfg.addr_of_string (Cfg.addr_to_string a) = Some a)
  in
  round (Cfg.Unix_sock "/tmp/qs.sock");
  round (Cfg.Tcp ("localhost", 7070));
  round (Cfg.Tcp ("::1", 7070));
  let bad s =
    check_bool ("rejects " ^ s) true (Cfg.addr_of_string s = None)
  in
  bad "";
  bad "unix:";
  bad "tcp:nohost";
  bad "tcp:host:0";
  bad "tcp:host:notaport";
  bad "quic:host:1"

let test_by_name_remote () =
  (match Cfg.by_name "connect:unix:/tmp/a.sock,tcp:db:9000" with
  | None -> Alcotest.fail "connect form not recognized"
  | Some c ->
    check_bool "shard map in argument order" true
      (c.Cfg.endpoint
      = Cfg.Connect [ Cfg.Unix_sock "/tmp/a.sock"; Cfg.Tcp ("db", 9000) ]));
  (match Cfg.by_name "listen:tcp:0.0.0.0:7070" with
  | None -> Alcotest.fail "listen form not recognized"
  | Some c ->
    check_bool "node preset" true
      (c.Cfg.endpoint = Cfg.Listen (Cfg.Tcp ("0.0.0.0", 7070)));
    check_bool "node is qoq" true (c.Cfg.mailbox = `Qoq));
  check_bool "malformed connect rejected" true
    (Cfg.by_name "connect:unix:/a,bogus" = None);
  check_bool "empty connect rejected" true (Cfg.by_name "connect:" = None)

let test_pp_endpoint () =
  let str c = Format.asprintf "%a" Cfg.pp c in
  check_bool "in-process configs print bare" true (str Cfg.qoq = "qoq");
  check_bool "remote configs print name@endpoint" true
    (str (Cfg.remote [ Cfg.Unix_sock "/tmp/a" ])
    = "remote@connect:unix:/tmp/a");
  check_bool "node configs print the listen address" true
    (str (Cfg.node (Cfg.Tcp ("h", 1234))) = "node@listen:tcp:h:1234")

let test_config_builder_chain () =
  (* The builder chain is the one way to derive a configuration: the
     runtime must run with exactly the chained fields. *)
  R.run
    ~config:
      Cfg.(
        qoq |> with_batch 3 |> with_mailbox `Direct |> with_bound 32
        |> with_overflow `Fail)
    (fun rt ->
      let c = R.config rt in
      check_int "batch" 3 c.Cfg.batch;
      check_bool "mailbox" true (c.Cfg.mailbox = `Direct);
      check_int "bound" 32 c.Cfg.bound;
      check_bool "overflow" true (c.Cfg.overflow = `Fail))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "scoop"
    [
      ("order", per_config "single client order" test_order_single_client);
      ("interleaving", per_config "no interleaving" test_no_interleaving);
      ("queries", per_config "query linearization" test_query_sees_preceding_calls);
      ("read_synced", per_config "read_synced" test_read_synced);
      ( "multi-reservation",
        per_config "fig5 consistency" test_multi_reservation_consistency
        @ per_config "list order" test_separate_list_order
        @ per_config "duplicate" test_separate_list_duplicate
        @ per_config "empty" test_separate_list_empty );
      ("deadlock", per_config "fig6 with queries" test_fig6_query_deadlock);
      ( "wait conditions",
        per_config "basic" test_wait_condition_basic
        @ per_config "atomic with body" test_wait_condition_atomic_with_body
        @ per_config "multi-handler" test_wait_condition_multi
        @ [ Alcotest.test_case "retries counted" `Quick test_wait_retries_counted ] );
      ( "contracts",
        per_config "registration after close" test_registration_after_close
        @ per_config "shared ownership" test_shared_wrong_block
        @ per_config "handler as client" test_handler_as_client
        @ per_config "sequential blocks" test_sequential_blocks );
      ( "flat requests",
        per_config "pooled = unpooled" test_pooled_unpooled_equiv
        @ per_config "pool recycles" test_pool_recycles
        @ per_config "miss falls back" test_pool_miss_falls_back
        @ per_config "timeout recovers" test_flat_timeout_recovers
        @ [
            Alcotest.test_case "handler-side elision" `Quick
              test_handler_elision_pipelined;
            Alcotest.test_case "pooling knob off" `Quick test_pooling_knob_off;
          ] );
      ( "mailbox",
        [
          Alcotest.test_case "qoq/direct x batch equivalence" `Quick
            test_mailbox_batch_equivalence;
          Alcotest.test_case "batched drain amortizes wakeups" `Quick
            test_mean_batch;
        ] );
      ( "pools",
        [
          Alcotest.test_case "processor pinning" `Quick
            test_processor_pool_pinning;
          Alcotest.test_case "config.pool default pinning" `Quick
            test_default_pool_pinning;
          Alcotest.test_case "unknown pool rejected" `Quick
            test_unknown_pool_rejected;
          Alcotest.test_case "pooled vs global equivalence" `Quick
            test_pools_equivalence;
        ] );
      ( "pipelined queries",
        per_config "promise order" test_query_async_order
        @ per_config "synced status" test_query_async_synced
        @ per_config "force after close" test_query_async_after_close
        @ [
            Alcotest.test_case "promise accounting" `Quick test_stats_promises;
            Alcotest.test_case "trace pipelined spans" `Quick
              test_trace_pipelined_queries;
          ] );
      ( "config builders",
        [
          Alcotest.test_case "chain" `Quick test_builder_chain;
          Alcotest.test_case "validation" `Quick test_builder_validation;
          Alcotest.test_case "addr round trip" `Quick
            test_addr_string_round_trip;
          Alcotest.test_case "by_name remote forms" `Quick test_by_name_remote;
          Alcotest.test_case "pp endpoint" `Quick test_pp_endpoint;
          Alcotest.test_case "config builder chain" `Quick
            test_config_builder_chain;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "query accounting" `Quick test_stats_queries;
          Alcotest.test_case "eve lookups" `Quick test_stats_eve_lookups;
          Alcotest.test_case "reservations" `Quick test_stats_reservations;
          Alcotest.test_case "config lookup" `Quick test_config_by_name;
          Alcotest.test_case "trace disabled by default" `Quick
            test_trace_disabled_by_default;
          Alcotest.test_case "trace records operations" `Quick
            test_trace_records_operations;
          Alcotest.test_case "trace packaged queries" `Quick
            test_trace_packaged_queries;
          Alcotest.test_case "trace event order" `Quick test_trace_event_order;
        ] );
      ( "failure semantics",
        per_preset_mailbox "raising query re-raises" test_failing_query_reraises
        @ per_preset_mailbox "raising call poisons" test_failing_call_poisons
        @ per_preset_mailbox "raising pipelined query rejects"
            test_failing_query_async_rejects
        @ [
            Alcotest.test_case "failure counters" `Quick test_failure_counters;
          ] );
      ( "lifecycle",
        [
          Alcotest.test_case "graceful shutdown drains" `Quick
            test_shutdown_graceful;
          Alcotest.test_case "abort discards pending" `Quick
            test_abort_discards_pending;
          Alcotest.test_case "failed handler reported" `Quick
            test_failed_lifecycle;
        ] );
      ( "deadlines",
        List.concat_map
          (fun config ->
            List.map
              (fun (mname, mailbox) ->
                Alcotest.test_case
                  (Printf.sprintf "wedged query times out [%s/%s]"
                     config.Cfg.name mname)
                  `Quick
                  (fun () -> test_wedged_query_timeout config mailbox))
              [ ("qoq", `Qoq); ("direct", `Direct) ])
          [ Cfg.none; Cfg.all ]
        @ [
            Alcotest.test_case "timeout does not poison" `Quick
              test_timeout_does_not_poison;
            Alcotest.test_case "default deadline" `Quick test_default_deadline;
            Alcotest.test_case "promise force timeout" `Quick
              test_promise_await_timeout;
            Alcotest.test_case "wait-condition timeout" `Quick
              test_wait_condition_timeout;
            Alcotest.test_case "lock reservation timeout" `Quick
              test_lock_reservation_timeout;
            Alcotest.test_case "shutdown grace escalates" `Quick
              test_shutdown_grace_escalates;
          ] );
      ( "backpressure",
        [
          Alcotest.test_case "block completes" `Quick test_backpressure_block;
          Alcotest.test_case "fail refuses at bound" `Quick
            test_backpressure_fail;
          Alcotest.test_case "shed_oldest sheds backlog" `Quick
            test_backpressure_shed_oldest;
        ] );
      ( "properties",
        List.map (fun c -> qc (prop_random_programs c)) Cfg.presets
        @ List.map (fun c -> qc (prop_query_async_equiv c)) Cfg.presets
        @ List.map (fun c -> qc (prop_poisoning_isolated c)) Cfg.presets
        @ List.concat_map
            (fun c ->
              List.map
                (fun m -> qc (prop_generous_timeout_equiv c m))
                [ `Qoq; `Direct ])
            Cfg.presets );
    ]
