(** The Cowichan problems (paper §4.1.1) in chunked form: every kernel is
    exposed as row-range functions so paradigm implementations share the
    numerical work and differ only in coordination.  Matrices are flat
    row-major arrays; values lie in [\[0, modulus)]. *)

val modulus : int

(** {2 randmat} *)

val randmat_rows : seed:int -> nr:int -> int array -> lo:int -> hi:int -> unit
val randmat : seed:int -> nr:int -> int array

val randmat_chunk : seed:int -> nr:int -> lo:int -> hi:int -> int array -> unit
(** Rows [lo, hi) written at offset 0 of a worker-local chunk. *)

(** {2 thresh} *)

val thresh_hist : nr:int -> int array -> lo:int -> hi:int -> int array
val merge_hist : int array -> int array -> int array
val thresh_threshold : hist:int array -> total:int -> p:int -> int

val thresh_mask_rows :
  nr:int -> int array -> threshold:int -> Bytes.t -> lo:int -> hi:int -> unit

val thresh : nr:int -> int array -> p:int -> int * Bytes.t
(** Returns [(threshold, mask)]. *)

(** {2 winnow} *)

val winnow_collect :
  ?row0:int ->
  nr:int ->
  int array ->
  Bytes.t ->
  lo:int ->
  hi:int ->
  unit ->
  (int * int * int) list
(** [row0] shifts reported row indices for chunk-local inputs. *)

val winnow_select : (int * int * int) array -> nw:int -> (int * int) array
val winnow : nr:int -> int array -> Bytes.t -> nw:int -> (int * int) array

(** {2 outer} *)

val distance : int * int -> int * int -> float

val outer_rows :
  (int * int) array -> float array -> float array -> lo:int -> hi:int -> unit

val outer : (int * int) array -> float array * float array

val outer_chunk :
  (int * int) array -> lo:int -> hi:int -> float array -> float array -> unit
(** Matrix rows and vector entries [lo, hi) written at offset 0 of the
    worker-local chunks. *)

(** {2 product} *)

val product_rows :
  n:int -> float array -> float array -> float array -> lo:int -> hi:int -> unit

val product : n:int -> float array -> float array -> float array

val product_chunk :
  n:int -> float array -> float array -> rows:int -> float array -> unit

val synthetic_points : n:int -> range:int -> (int * int) array
(** Deterministic point set for standalone outer/product runs. *)

(** {2 chain} *)

val chain : seed:int -> nr:int -> p:int -> nw:int -> float array
(** randmat → thresh → winnow → outer → product, sequentially. *)

(** {2 Checksums} (cross-implementation validation) *)

val checksum_int : int array -> int
val checksum_mask : Bytes.t -> int
val checksum_points : (int * int) array -> int
val checksum_float : float array -> float
