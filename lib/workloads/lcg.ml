(* Deterministic linear congruential generator.

   The Cowichan randmat benchmark requires a deterministic matrix given a
   seed, independent of how rows are distributed over workers; like the
   paper's implementations we derive an independent LCG stream per row so
   any worker can produce its rows without sharing generator state. *)

let a = 1664525
let c = 1013904223
let mask = 0xFFFFFFFF (* modulus 2^32 *)

let next state = ((a * state) + c) land mask

(* Scramble the row index so adjacent rows do not produce correlated
   streams. *)
let row_seed ~seed ~row = (seed + (row * 0x9E3779B9)) land mask

let fill_row ~seed ~row ~modulus dst ~off ~len =
  let state = ref (next (row_seed ~seed ~row)) in
  for k = 0 to len - 1 do
    dst.(off + k) <- !state mod modulus;
    state := next !state
  done
