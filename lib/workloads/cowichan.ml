(* The Cowichan problems (paper §4.1.1), in chunked form.

   Every kernel is expressed as row-range functions so that each paradigm
   implementation (SCOOP, parallel-for, channels, actors, STM/functional)
   contains only its coordination and data-distribution logic; the
   numerical work is shared and identical, and the sequential reference is
   simply the single-chunk composition.

   Matrices are flat row-major [int array]s ([nr] rows × [nc] columns);
   the outer/product stage uses [float array]s.  Values are in [0, 100)
   so that thresh can use a fixed-size histogram. *)

let modulus = 100

(* -- randmat -------------------------------------------------------------- *)

(* Fill rows [lo, hi) of an nr×nr matrix with deterministic random values. *)
let randmat_rows ~seed ~nr dst ~lo ~hi =
  for row = lo to hi - 1 do
    Lcg.fill_row ~seed ~row ~modulus dst ~off:(row * nr) ~len:nr
  done

let randmat ~seed ~nr =
  let m = Array.make (nr * nr) 0 in
  randmat_rows ~seed ~nr m ~lo:0 ~hi:nr;
  m

(* Chunk-local variant: rows [lo, hi) written at offset 0 of [dst] (a
   worker's private array). *)
let randmat_chunk ~seed ~nr ~lo ~hi dst =
  for row = lo to hi - 1 do
    Lcg.fill_row ~seed ~row ~modulus dst ~off:((row - lo) * nr) ~len:nr
  done

(* -- thresh --------------------------------------------------------------- *)

(* Histogram of the values in rows [lo, hi). *)
let thresh_hist ~nr (m : int array) ~lo ~hi =
  let hist = Array.make modulus 0 in
  for i = lo * nr to (hi * nr) - 1 do
    hist.(m.(i)) <- hist.(m.(i)) + 1
  done;
  hist

let merge_hist a b = Array.map2 ( + ) a b

(* Smallest threshold value such that keeping [v >= threshold] keeps at
   most the top p percent (matching the usual Cowichan formulation). *)
let thresh_threshold ~hist ~total ~p =
  let target = total * p / 100 in
  let rec go v count =
    if v < 0 then 0
    else
      let count = count + hist.(v) in
      if count > target then v + 1 else go (v - 1) count
  in
  (* Keep at least something: if even the maximum value alone exceeds the
     target, the threshold sits above it and we lower it to the max. *)
  let t = go (modulus - 1) 0 in
  if t >= modulus then modulus - 1 else t

let thresh_mask_rows ~nr (m : int array) ~threshold (mask : Bytes.t) ~lo ~hi =
  for i = lo * nr to (hi * nr) - 1 do
    Bytes.unsafe_set mask i (if m.(i) >= threshold then '\001' else '\000')
  done

let thresh ~nr (m : int array) ~p =
  let hist = thresh_hist ~nr m ~lo:0 ~hi:nr in
  let threshold = thresh_threshold ~hist ~total:(nr * nr) ~p in
  let mask = Bytes.make (nr * nr) '\000' in
  thresh_mask_rows ~nr m ~threshold mask ~lo:0 ~hi:nr;
  (threshold, mask)

(* -- winnow --------------------------------------------------------------- *)

(* Weighted points from the masked rows [lo, hi): (value, row, col).
   [row0] shifts the reported row index, for workers holding a chunk whose
   local row 0 is global row [row0]. *)
let winnow_collect ?(row0 = 0) ~nr (m : int array) (mask : Bytes.t) ~lo ~hi ()
    =
  let acc = ref [] in
  for row = hi - 1 downto lo do
    for col = nr - 1 downto 0 do
      let i = (row * nr) + col in
      if Bytes.unsafe_get mask i = '\001' then
        acc := (m.(i), row0 + row, col) :: !acc
    done
  done;
  !acc

(* Evenly-spaced selection of [nw] points from the sorted candidates. *)
let winnow_select sorted ~nw =
  let n = Array.length sorted in
  if n = 0 then [||]
  else begin
    let nw = min nw n in
    let chunk = n / nw in
    Array.init nw (fun k ->
      let _, row, col = sorted.(k * chunk) in
      (row, col))
  end

let winnow ~nr m mask ~nw =
  let candidates = Array.of_list (winnow_collect ~nr m mask ~lo:0 ~hi:nr ()) in
  Array.sort compare candidates;
  winnow_select candidates ~nw

(* -- outer ---------------------------------------------------------------- *)

let distance (r1, c1) (r2, c2) =
  let dr = float_of_int (r1 - r2) and dc = float_of_int (c1 - c2) in
  sqrt ((dr *. dr) +. (dc *. dc))

(* Rows [lo, hi) of the outer matrix, plus the matching vector slice
   (written in place). *)
let outer_rows (points : (int * int) array) (matrix : float array)
    (vector : float array) ~lo ~hi =
  let n = Array.length points in
  for i = lo to hi - 1 do
    let pi = points.(i) in
    let max_dist = ref 0.0 in
    for j = 0 to n - 1 do
      if i <> j then begin
        let d = distance pi points.(j) in
        if d > !max_dist then max_dist := d;
        matrix.((i * n) + j) <- d
      end
    done;
    matrix.((i * n) + i) <- float_of_int n *. !max_dist;
    vector.(i) <- distance pi (0, 0)
  done

let outer points =
  let n = Array.length points in
  let matrix = Array.make (n * n) 0.0 and vector = Array.make n 0.0 in
  outer_rows points matrix vector ~lo:0 ~hi:n;
  (matrix, vector)

(* Chunk-local variant: matrix rows [lo, hi) at offset 0 of [mchunk],
   vector entries [lo, hi) at offset 0 of [vchunk]. *)
let outer_chunk (points : (int * int) array) ~lo ~hi (mchunk : float array)
    (vchunk : float array) =
  let n = Array.length points in
  for i = lo to hi - 1 do
    let pi = points.(i) in
    let max_dist = ref 0.0 in
    let base = (i - lo) * n in
    for j = 0 to n - 1 do
      if i <> j then begin
        let d = distance pi points.(j) in
        if d > !max_dist then max_dist := d;
        mchunk.(base + j) <- d
      end
    done;
    mchunk.(base + i) <- float_of_int n *. !max_dist;
    vchunk.(i - lo) <- distance pi (0, 0)
  done

(* -- product -------------------------------------------------------------- *)

let product_rows ~n (matrix : float array) (vector : float array)
    (result : float array) ~lo ~hi =
  for i = lo to hi - 1 do
    let acc = ref 0.0 in
    for j = 0 to n - 1 do
      acc := !acc +. (matrix.((i * n) + j) *. vector.(j))
    done;
    result.(i) <- !acc
  done

let product ~n matrix vector =
  let result = Array.make n 0.0 in
  product_rows ~n matrix vector result ~lo:0 ~hi:n;
  result

(* Chunk-local variant: [mchunk] holds [rows] matrix rows; results land at
   offset 0 of [rchunk]. *)
let product_chunk ~n (mchunk : float array) (vector : float array) ~rows
    (rchunk : float array) =
  for r = 0 to rows - 1 do
    let acc = ref 0.0 in
    for j = 0 to n - 1 do
      acc := !acc +. (mchunk.((r * n) + j) *. vector.(j))
    done;
    rchunk.(r) <- !acc
  done

(* Deterministic synthetic point set for standalone outer/product runs. *)
let synthetic_points ~n ~range =
  let state = ref (Lcg.next 42) in
  Array.init n (fun _ ->
    let r = !state mod range in
    state := Lcg.next !state;
    let c = !state mod range in
    state := Lcg.next !state;
    (r, c))

(* -- chain ---------------------------------------------------------------- *)

(* The sequential composition of the whole pipeline (paper: "these
   benchmarks can be sequentially composed together ... to form a chain"). *)
let chain ~seed ~nr ~p ~nw =
  let m = randmat ~seed ~nr in
  let _, mask = thresh ~nr m ~p in
  let points = winnow ~nr m mask ~nw in
  let matrix, vector = outer points in
  let n = Array.length points in
  product ~n matrix vector

(* -- checksums for cross-implementation validation ------------------------ *)

let checksum_int (m : int array) = Array.fold_left ( + ) 0 m

let checksum_mask (mask : Bytes.t) =
  let acc = ref 0 in
  Bytes.iter (fun c -> if c = '\001' then incr acc) mask;
  !acc

let checksum_points (points : (int * int) array) =
  Array.fold_left (fun acc (r, c) -> acc + (31 * r) + c) 0 points

let checksum_float (v : float array) = Array.fold_left ( +. ) 0.0 v
