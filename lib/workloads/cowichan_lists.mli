(** List-based Cowichan kernels modelling Erlang's linked-list data
    representation (paper §5.2.1).  Results match the array kernels. *)

val randmat_chunk : seed:int -> nr:int -> lo:int -> hi:int -> int list
(** Rows [lo, hi), row-major flat list. *)

val hist : int list -> int array
val mask : threshold:int -> int list -> int list

val collect :
  nr:int -> row0:int -> int list -> int list -> (int * int * int) list

val outer_chunk :
  (int * int) array -> lo:int -> hi:int -> float list * float list
(** Matrix rows [lo, hi) (flat) and the matching vector slice. *)

val product_chunk : n:int -> float list -> float array -> float list
