(* List-based variants of the Cowichan kernels, modelling Erlang's data
   representation (paper §5.2.1: Erlang is "forced to use linked lists to
   represent matrices", which the paper identifies as a principal reason
   for its unfavourable results).  The Erlang-style actor benchmarks
   compute with these, paying one cons cell per element and losing cache
   locality, while still producing results identical to the array
   kernels. *)

(* Rows [lo, hi) as a flat list, row-major. *)
let randmat_chunk ~seed ~nr ~lo ~hi =
  let rec row_values state k acc =
    if k = 0 then acc
    else row_values (Lcg.next state) (k - 1) ((state mod Cowichan.modulus) :: acc)
  in
  let rec rows row acc =
    if row < lo then acc
    else
      let state0 = Lcg.next (Lcg.row_seed ~seed ~row) in
      (* Build the row forwards by collecting backwards from the stream. *)
      let values = List.rev (row_values state0 nr []) in
      rows (row - 1) (values @ acc)
  in
  rows (hi - 1) []

let hist values =
  let h = Array.make Cowichan.modulus 0 in
  List.iter (fun v -> h.(v) <- h.(v) + 1) values;
  h

let mask ~threshold values = List.map (fun v -> if v >= threshold then 1 else 0) values

(* Weighted points of a chunk whose local row 0 is global row [row0]. *)
let collect ~nr ~row0 values mask =
  let rec go i vs ms acc =
    match (vs, ms) with
    | [], [] -> List.rev acc
    | v :: vs, m :: ms ->
      let acc =
        if m = 1 then (v, row0 + (i / nr), i mod nr) :: acc else acc
      in
      go (i + 1) vs ms acc
    | _ -> invalid_arg "Cowichan_lists.collect: length mismatch"
  in
  go 0 values mask []

(* Outer rows [lo, hi) as a flat list plus the vector slice. *)
let outer_chunk points ~lo ~hi =
  let n = Array.length points in
  let rec build i macc vacc =
    if i < lo then (macc, vacc)
    else begin
      let pi = points.(i) in
      let max_dist = ref 0.0 in
      let rec row j acc =
        if j < 0 then acc
        else
          let d =
            if i = j then 0.0
            else begin
              let d = Cowichan.distance pi points.(j) in
              if d > !max_dist then max_dist := d;
              d
            end
          in
          row (j - 1) (d :: acc)
      in
      let r = row (n - 1) [] in
      (* Patch the diagonal (computed after the max is known). *)
      let r =
        List.mapi (fun j d -> if j = i then float_of_int n *. !max_dist else d) r
      in
      build (i - 1) (r @ macc) (Cowichan.distance pi (0, 0) :: vacc)
    end
  in
  build (hi - 1) [] []

let product_chunk ~n mrows vector =
  (* [mrows]: flat list of rows; [vector]: float array. *)
  let rec go rows acc =
    match rows with
    | [] -> List.rev acc
    | _ ->
      let rec dot j rows acc =
        if j = n then (acc, rows)
        else
          match rows with
          | x :: rest -> dot (j + 1) rest (acc +. (x *. vector.(j)))
          | [] -> invalid_arg "Cowichan_lists.product_chunk: short row"
      in
      let value, rest = dot 0 rows 0.0 in
      go rest (value :: acc)
  in
  go mrows []
