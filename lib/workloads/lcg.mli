(** Deterministic LCG with independent per-row streams, so distributed
    workers generate identical matrices regardless of chunking. *)

val next : int -> int
val row_seed : seed:int -> row:int -> int

val fill_row :
  seed:int -> row:int -> modulus:int -> int array -> off:int -> len:int -> unit
(** Fill [dst.(off .. off+len-1)] with row [row]'s stream, values in
    [\[0, modulus)]. *)
