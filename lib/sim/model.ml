(* Calibrated model of the paper's testbed (32-core Xeon E7-4830).

   This container has one physical core, so the scalability figures
   (Figs. 18–19, Table 4) cannot be measured here; per DESIGN.md we
   regenerate their *shape* with the discrete-event engine instead.

   Structure per (task, language): an execution is
       Parallel(work W split over p chunks, per-chunk contention K·p)  ;
       Serial(S)
   where W is the parallelizable computation, S the sequential section
   (master-side assembly, the SCOOP master's pulls, Haskell's sequential
   concatenation, Erlang's receive loop) and K a per-core contention /
   scheduling term (GC pressure, channel contention).  The makespan is
   evaluated by [Engine], so  T(p) ≈ W/p + K·p + S.

   (W, S, K) are fitted per task and language from the paper's own
   Table 4 measurements at 1, 8 and 32 threads; the *fit* is calibration,
   but the predicted curve at the remaining thread counts (2, 4, 16) and
   the crossover/saturation shapes of Fig. 19 are model output, checked
   against the paper's data in the test suite. *)

type fitted = {
  w : float; (* parallel work, seconds at one core *)
  s : float; (* serial section, seconds *)
  k : float; (* contention per core, seconds *)
}

(* Exact 3-point fit with clamping to non-negative components. *)
let fit ~t1 ~t8 ~t32 =
  let w = ((24.0 *. (t1 -. t8) /. 7.0) -. (t8 -. t32)) *. 32.0 /. 93.0 in
  let k = (w /. 8.0) -. ((t1 -. t8) /. 7.0) in
  let s = t1 -. w -. k in
  if w >= 0.0 && k >= 0.0 && s >= 0.0 then { w; s; k }
  else begin
    (* Degenerate measurements (e.g. flat or noisy): fall back to a
       two-parameter fit through t1 and t32. *)
    let w = max 0.0 ((t1 -. t32) *. 32.0 /. 31.0) in
    let s = max 0.0 (t1 -. w) in
    { w; s; k = 0.0 }
  end

let phases_of { w; s; k } ~cores =
  [
    Engine.Parallel
      (Engine.even_tasks ~chunks:cores ~work:w
         ~per_task_overhead:(k *. float_of_int cores));
    Engine.Serial s;
  ]

let time fitted ~cores = Engine.makespan ~cores (phases_of fitted ~cores)

(* -- calibration against the paper's Table 4 ------------------------------- *)

type series = {
  task : string;
  lang : string;
  variant : [ `Total | `Compute ];
  fitted : fitted;
}

let variants =
  [ `Total; `Compute ]

let calibrate (table4 : Qs_benchmarks.Paper_data.t4_row list) =
  List.map
    (fun (r : Qs_benchmarks.Paper_data.t4_row) ->
      let t = r.Qs_benchmarks.Paper_data.t4_times in
      {
        task = r.Qs_benchmarks.Paper_data.t4_task;
        lang = r.Qs_benchmarks.Paper_data.t4_lang;
        variant = r.Qs_benchmarks.Paper_data.t4_variant;
        fitted = fit ~t1:t.(0) ~t8:t.(3) ~t32:t.(5);
      })
    table4

let default_series = lazy (calibrate Qs_benchmarks.Paper_data.table4)

let find ?(variant = `Total) ~task ~lang () =
  List.find_opt
    (fun s -> s.task = task && s.lang = lang && s.variant = variant)
    (Lazy.force default_series)

(* Predicted time at a core count. *)
let predict ?variant ~task ~lang ~cores () =
  Option.map (fun s -> time s.fitted ~cores) (find ?variant ~task ~lang ())

(* Speedup curve over core counts (Fig. 19). *)
let speedups ?variant ~task ~lang ~cores () =
  match find ?variant ~task ~lang () with
  | None -> None
  | Some s ->
    let t1 = time s.fitted ~cores:1 in
    Some (List.map (fun c -> (c, t1 /. time s.fitted ~cores:c)) cores)

(* -- concurrent benchmarks (Fig. 20 / Table 5) ----------------------------- *)

(* The coordination benchmarks are dominated by one serialized resource
   (ring hop, meeting place, lock, queue, condition); their model is a
   per-operation cost times the operation count, with the per-op cost
   derived from the paper's Table 5 at the paper's operation counts. *)
let paper_ops task =
  match task with
  | "mutex" | "prodcons" | "condition" -> 32.0 *. 20_000.0
  | "threadring" -> 600_000.0
  | "chameneos" -> 5_000_000.0
  | _ -> invalid_arg ("Model.paper_ops: unknown task " ^ task)

let concurrent_op_cost ~task ~lang =
  match
    List.assoc_opt lang (List.assoc task Qs_benchmarks.Paper_data.table5)
  with
  | Some t -> Some (t /. paper_ops task)
  | None -> None

let predict_concurrent ~task ~lang ~ops =
  Option.map (fun c -> c *. float_of_int ops) (concurrent_op_cost ~task ~lang)
