(** Calibrated scalability model for the paper's 32-core testbed.

    Fitted per (task, language, total/compute) from Table 4 at 1, 8 and
    32 threads; predictions at other core counts come from the
    discrete-event engine and regenerate the shapes of Figs. 18–19. *)

type fitted = {
  w : float; (** parallelizable work (s) *)
  s : float; (** serial section (s) *)
  k : float; (** contention per core (s) *)
}

val fit : t1:float -> t8:float -> t32:float -> fitted
val time : fitted -> cores:int -> float
val phases_of : fitted -> cores:int -> Engine.phase list

type series = {
  task : string;
  lang : string;
  variant : [ `Total | `Compute ];
  fitted : fitted;
}

val variants : [ `Total | `Compute ] list
val calibrate : Qs_benchmarks.Paper_data.t4_row list -> series list

val find :
  ?variant:[ `Total | `Compute ] -> task:string -> lang:string -> unit ->
  series option

val predict :
  ?variant:[ `Total | `Compute ] ->
  task:string -> lang:string -> cores:int -> unit ->
  float option

val speedups :
  ?variant:[ `Total | `Compute ] ->
  task:string -> lang:string -> cores:int list -> unit ->
  (int * float) list option
(** Fig. 19: [(cores, t1/tp)] pairs. *)

val paper_ops : string -> float
val concurrent_op_cost : task:string -> lang:string -> float option
val predict_concurrent : task:string -> lang:string -> ops:int -> float option
