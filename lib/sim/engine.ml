(* Discrete-event core of the scalability simulator.

   A benchmark execution is modelled as a sequence of phases separated by
   barriers: a [Parallel] phase is a bag of independent tasks scheduled
   onto [cores] workers (events are task completions; the next task starts
   on the earliest-free core, i.e. greedy list scheduling), and a [Serial]
   phase runs on a single core while the others idle — the sequential
   assembly/communication sections that limit speedup in Fig. 19. *)

type phase =
  | Parallel of float array (* independent task durations, seconds *)
  | Serial of float

(* Earliest-free-core greedy schedule of one task bag; returns the phase
   makespan.  A tiny binary heap keyed on core-free time. *)
let schedule_bag ~cores durations =
  let cores = max 1 cores in
  let heap = Array.make cores 0.0 in
  (* [heap] is a min-heap on free times. *)
  let swap i j =
    let t = heap.(i) in
    heap.(i) <- heap.(j);
    heap.(j) <- t
  in
  let rec sift_down i n =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < n && heap.(l) < heap.(!smallest) then smallest := l;
    if r < n && heap.(r) < heap.(!smallest) then smallest := r;
    if !smallest <> i then begin
      swap i !smallest;
      sift_down !smallest n
    end
  in
  Array.iter
    (fun d ->
      (* Pop the earliest-free core, run the task, push back. *)
      heap.(0) <- heap.(0) +. d;
      sift_down 0 cores)
    durations;
  Array.fold_left max 0.0 heap

let makespan ~cores phases =
  List.fold_left
    (fun t phase ->
      match phase with
      | Serial d -> t +. d
      | Parallel durations -> t +. schedule_bag ~cores durations)
    0.0 phases

(* Convenience: split an amount of perfectly divisible work into one task
   per chunk, plus a fixed per-task overhead. *)
let even_tasks ~chunks ~work ~per_task_overhead =
  let chunks = max 1 chunks in
  Array.make chunks ((work /. float_of_int chunks) +. per_task_overhead)
