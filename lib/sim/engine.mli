(** Discrete-event scalability simulator: phases of independent task bags
    (greedy list scheduling over a core pool) separated by barriers, plus
    serial sections. *)

type phase =
  | Parallel of float array (** independent task durations (seconds) *)
  | Serial of float

val makespan : cores:int -> phase list -> float

val schedule_bag : cores:int -> float array -> float
(** Makespan of one task bag under earliest-free-core scheduling. *)

val even_tasks :
  chunks:int -> work:float -> per_task_overhead:float -> float array
