(** Treiber lock-free stack (LIFO).

    Safe for any number of concurrent pushers and poppers.  Used as the
    private-queue cache of the SCOOP/Qs runtime (paper §3.2). *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Push one element.  Lock-free. *)

val pop : 'a t -> 'a option
(** Pop the most recently pushed element, or [None] if empty. *)

val is_empty : 'a t -> bool
(** Racy emptiness test. *)

val length : 'a t -> int
(** Racy length (walks the current snapshot). *)
