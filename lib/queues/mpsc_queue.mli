(** Unbounded multiple-producer single-consumer FIFO queue
    (Vyukov exchange-and-link design).

    The backing structure of the SCOOP/Qs queue-of-queues (paper §3.1): any
    number of clients enqueue, exactly one handler dequeues.  Producers are
    wait-free (one atomic exchange); the consumer may spin for the length of
    two producer instructions in a rare transient state.

    Safety contract: {!push} may be called from any number of domains/fibers
    concurrently; {!pop} and {!is_empty} from at most one. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Append one element.  Wait-free; safe from any producer. *)

val pop : 'a t -> 'a option
(** Consumer side: remove the oldest element, or [None] if empty. *)

val is_empty : 'a t -> bool
(** Consumer-side emptiness test. *)
