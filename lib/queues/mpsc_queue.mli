(** Unbounded multiple-producer single-consumer FIFO queue
    (Vyukov exchange-and-link design).

    The backing structure of the SCOOP/Qs queue-of-queues (paper §3.1): any
    number of clients enqueue, exactly one handler dequeues.  Producers are
    wait-free (one atomic exchange); the consumer may spin for the length of
    two producer instructions in a rare transient state.

    Safety contract: {!push} may be called from any number of domains/fibers
    concurrently; {!pop} and {!is_empty} from at most one. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Append one element.  Wait-free; safe from any producer. *)

val pop : 'a t -> 'a option
(** Consumer side: remove the oldest element, or [None] if empty. *)

val is_empty : 'a t -> bool
(** Consumer-side emptiness test. *)

val drain : 'a t -> 'a array -> int
(** Consumer side: batched {!pop} — move up to [Array.length buf]
    already-linked elements into a prefix of [buf] in one pass and
    return how many were taken. *)

val close : 'a t -> unit
(** Close the producer side; pending elements remain poppable. *)

val is_closed : 'a t -> bool

val enqueue : 'a t -> 'a -> unit
(** {!Mailbox.S} alias of {!push}.  @raise Mailbox.Closed after {!close}. *)

val dequeue : 'a t -> 'a option
(** {!Mailbox.S} alias of {!pop}. *)
