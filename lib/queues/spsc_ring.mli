(** Bounded single-producer single-consumer ring buffer (Lamport queue
    with cached indices).  The allocation-free alternative to
    {!Spsc_queue}, compared against it in the micro-benchmark ablation.

    Safety contract: one producer thread ({!try_push}), one consumer
    thread ({!pop}), which may run in parallel. *)

type 'a t

val create : ?capacity_pow2:int -> unit -> 'a t
(** Capacity is [2 ^ capacity_pow2] (default [2^8]).
    @raise Invalid_argument outside [1..30]. *)

val try_push : 'a t -> 'a -> bool
(** [false] when the ring is full. *)

val pop : 'a t -> 'a option
val is_empty : 'a t -> bool
val length : 'a t -> int
val capacity : 'a t -> int
