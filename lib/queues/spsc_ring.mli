(** Bounded single-producer single-consumer ring buffer (Lamport queue
    with cached indices).  The allocation-free alternative to
    {!Spsc_queue}, compared against it in the micro-benchmark ablation.

    Safety contract: one producer thread ({!try_push}), one consumer
    thread ({!pop}), which may run in parallel. *)

type 'a t

val create : ?capacity_pow2:int -> unit -> 'a t
(** Capacity is [2 ^ capacity_pow2] (default [2^8]).
    @raise Invalid_argument outside [1..30]. *)

val try_push : 'a t -> 'a -> bool
(** [false] when the ring is full. *)

val pop : 'a t -> 'a option
val is_empty : 'a t -> bool
val length : 'a t -> int
val capacity : 'a t -> int

val drain : 'a t -> 'a array -> int
(** Consumer side: batched {!pop} — one [tail] refresh bounds the run,
    plain array copies move it, one [head] store publishes the whole
    consumption.  Returns how many elements were taken. *)

val close : 'a t -> unit
(** Close the producer side; pending elements remain poppable.
    Subsequent {!try_push} calls raise [Mailbox.Closed]. *)

val is_closed : 'a t -> bool

module As_mailbox : Mailbox.S with type 'a t = 'a t
(** {!Mailbox.S} view: default capacity, [enqueue] spins with backoff
    while the ring is full (use {!try_push} directly when the producer
    must never wait). *)
