(* Unbounded single-producer single-consumer queue.

   This is the "private queue" shape of the paper (§3.1): once a handler has
   dequeued a private queue from its queue-of-queues, exactly one client
   enqueues requests and exactly one handler dequeues them.  A linked list
   with a dummy node needs no CAS at all in this setting: the producer owns
   [tail], the consumer owns [head], and the only shared edge is the
   [next] pointer of the producer's last node, which is an [Atomic] so that
   the node's payload is published to the consumer (release on
   [Atomic.set], acquire on [Atomic.get]). *)

type 'a node = {
  mutable value : 'a option;
  next : 'a node option Atomic.t;
}

type 'a t = {
  mutable head : 'a node; (* consumer-owned: last dequeued (dummy) node *)
  mutable tail : 'a node; (* producer-owned: last enqueued node *)
  pushed : int Atomic.t;  (* diagnostics *)
  popped : int Atomic.t;
  closed : bool Atomic.t;
}

let make_node value = { value; next = Atomic.make None }

let create () =
  let dummy = make_node None in
  {
    head = dummy;
    tail = dummy;
    pushed = Atomic.make 0;
    popped = Atomic.make 0;
    closed = Atomic.make false;
  }

let push t v =
  if Atomic.get t.closed then raise Mailbox.Closed;
  let n = make_node (Some v) in
  Atomic.set t.tail.next (Some n);
  t.tail <- n;
  Atomic.incr t.pushed

let pop t =
  match Atomic.get t.head.next with
  | None -> None
  | Some n ->
    let v = n.value in
    (* Drop the reference so the GC can reclaim the payload while [n]
       lives on as the new dummy node. *)
    n.value <- None;
    t.head <- n;
    Atomic.incr t.popped;
    v

let peek t =
  match Atomic.get t.head.next with
  | None -> None
  | Some n -> n.value

let is_empty t = Atomic.get t.head.next = None

let length t =
  (* Racy estimate; exact when producer and consumer are quiescent. *)
  max 0 (Atomic.get t.pushed - Atomic.get t.popped)

(* Batched pop: walk as many published nodes as fit in [buf], then
   publish the consumption with a single counter update instead of one
   per element. *)
let drain t buf =
  let cap = Array.length buf in
  let taken = ref 0 in
  let continue_ = ref true in
  while !continue_ && !taken < cap do
    match Atomic.get t.head.next with
    | None -> continue_ := false
    | Some n ->
      (match n.value with
      | Some v -> buf.(!taken) <- v
      | None -> assert false);
      n.value <- None;
      t.head <- n;
      incr taken
  done;
  if !taken > 0 then
    ignore (Atomic.fetch_and_add t.popped !taken : int);
  !taken

let close t = Atomic.set t.closed true
let is_closed t = Atomic.get t.closed

(* MAILBOX aliases. *)
let enqueue = push
let dequeue = pop
