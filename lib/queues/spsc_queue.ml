(* Unbounded single-producer single-consumer queue.

   This is the "private queue" shape of the paper (§3.1): once a handler has
   dequeued a private queue from its queue-of-queues, exactly one client
   enqueues requests and exactly one handler dequeues them.  A linked list
   with a dummy node needs no CAS at all in this setting: the producer owns
   [tail], the consumer owns [head], and the only shared edge is the
   [next] pointer of the producer's last node, which is an [Atomic] so that
   the node's payload is published to the consumer (release on
   [Atomic.set], acquire on [Atomic.get]). *)

type 'a node = {
  mutable value : 'a option;
  next : 'a node option Atomic.t;
}

type 'a t = {
  mutable head : 'a node; (* consumer-owned: last dequeued (dummy) node *)
  mutable tail : 'a node; (* producer-owned: last enqueued node *)
  pushed : int Atomic.t;  (* diagnostics *)
  popped : int Atomic.t;
}

let make_node value = { value; next = Atomic.make None }

let create () =
  let dummy = make_node None in
  { head = dummy; tail = dummy; pushed = Atomic.make 0; popped = Atomic.make 0 }

let push t v =
  let n = make_node (Some v) in
  Atomic.set t.tail.next (Some n);
  t.tail <- n;
  Atomic.incr t.pushed

let pop t =
  match Atomic.get t.head.next with
  | None -> None
  | Some n ->
    let v = n.value in
    (* Drop the reference so the GC can reclaim the payload while [n]
       lives on as the new dummy node. *)
    n.value <- None;
    t.head <- n;
    Atomic.incr t.popped;
    v

let peek t =
  match Atomic.get t.head.next with
  | None -> None
  | Some n -> n.value

let is_empty t = Atomic.get t.head.next = None

let length t =
  (* Racy estimate; exact when producer and consumer are quiescent. *)
  max 0 (Atomic.get t.pushed - Atomic.get t.popped)
