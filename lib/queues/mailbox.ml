(* The MAILBOX abstraction: the one interface every request-carrying
   queue of the runtime satisfies.

   The paper's central claim (§3–§4) is that the *communication
   structure* between clients and handlers dominates SCOOP performance.
   Abstracting that structure behind one signature makes the §3.1 queue
   ablations (linked vs ring private queues, specialized MPSC vs generic
   MPMC queue-of-queues, socket transport) config-selectable rather than
   code-forked, and gives every implementation a batched [drain] so a
   consumer can take a whole burst of elements under one synchronization
   instead of paying one atomic round trip per element.

   Two layers conform to the signature:

   - the raw lock-free queues in this library (non-blocking: [dequeue]
     returns [None] on a momentarily-empty mailbox);
   - the blocking fiber-level queues in [Qs_sched.Bqueue] (blocking:
     [dequeue] parks the consumer fiber and [None] means
     closed-and-drained), plus the socket transport in [Qs_remote].

   Producers and consumers keep the ownership contract of the underlying
   queue (SPSC/MPSC/MPMC); [drain] is a consumer-side operation. *)

exception Closed
(* Raised by [enqueue] once the mailbox has been closed. *)

module type S = sig
  type 'a t

  val create : unit -> 'a t

  val enqueue : 'a t -> 'a -> unit
  (* Append one element.  @raise Closed after [close]. *)

  val dequeue : 'a t -> 'a option
  (* Remove the oldest element.  [None] means empty (non-blocking
     implementations) or closed-and-drained (blocking implementations). *)

  val drain : 'a t -> 'a array -> int
  (* [drain t buf] moves up to [Array.length buf] pending elements into
     a prefix of [buf] and returns how many were taken, performing one
     consumer-side synchronization for the whole batch where the
     underlying structure allows it.  Equivalent to repeated [dequeue]:
     same elements, same order.  A closed mailbox still drains its
     pending elements. *)

  val close : 'a t -> unit
  (* Stop the producer side: subsequent [enqueue]s raise [Closed].
     Pending elements remain dequeueable. *)

  val is_closed : 'a t -> bool
  val is_empty : 'a t -> bool
end
