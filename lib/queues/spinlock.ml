(* Test-and-test-and-set spinlock with exponential backoff.

   Used for the multi-reservation separate block (paper §3.3): one spinlock
   per handler guards insertion of private queues into its queue-of-queues
   so that a set of handlers can be reserved atomically.  Hold times are a
   handful of memory writes, which is why the paper reports the spinlocks
   "were not found to decrease performance". *)

type t = { locked : bool Atomic.t }

let create () = { locked = Atomic.make false }

let try_acquire t = not (Atomic.exchange t.locked true)

let acquire t =
  let b = Backoff.create () in
  let rec loop () =
    (* Test before test-and-set: spin on a read-shared line. *)
    if Atomic.get t.locked then begin
      Backoff.once b;
      loop ()
    end
    else if not (try_acquire t) then begin
      Backoff.once b;
      loop ()
    end
  in
  loop ()

let release t = Atomic.set t.locked false

let is_locked t = Atomic.get t.locked

let with_lock t f =
  acquire t;
  match f () with
  | v ->
    release t;
    v
  | exception e ->
    release t;
    raise e
