(** The MAILBOX abstraction: the common interface of every
    request-carrying queue in the runtime (paper §3.1 made pluggable).

    Conforming modules: {!Spsc_queue}, {!Spsc_ring.As_mailbox},
    {!Mpsc_queue}, {!Mpmc_queue} here; [Qs_sched.Bqueue.Spsc] /
    [Qs_sched.Bqueue.Mpsc] at the blocking fiber layer; and
    [Qs_remote.Socket_queue.As_mailbox] for the socket transport.

    The ownership contract (who may enqueue / dequeue concurrently) is
    that of the underlying queue; {!S.drain} is a consumer-side batched
    pop taking a whole burst under one synchronization where the
    structure allows it. *)

exception Closed
(** Raised by [enqueue] once the mailbox has been closed. *)

module type S = sig
  type 'a t

  val create : unit -> 'a t

  val enqueue : 'a t -> 'a -> unit
  (** Append one element.  @raise Closed after {!close}. *)

  val dequeue : 'a t -> 'a option
  (** Remove the oldest element.  [None] means empty (non-blocking
      implementations) or closed-and-drained (blocking ones). *)

  val drain : 'a t -> 'a array -> int
  (** [drain t buf] moves up to [Array.length buf] pending elements into
      a prefix of [buf] and returns how many were taken.  Equivalent to
      repeated {!dequeue}: same elements, same order.  A closed mailbox
      still drains its pending elements. *)

  val close : 'a t -> unit
  (** Stop the producer side: subsequent {!enqueue}s raise {!Closed}.
      Pending elements remain dequeueable. *)

  val is_closed : 'a t -> bool
  val is_empty : 'a t -> bool
end
