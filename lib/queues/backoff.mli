(** Exponential backoff for contended atomic operations.

    A [t] is owned by one spinning thread; it is not itself thread-safe. *)

type t

val create : ?max_step:int -> unit -> t
(** [create ()] returns a fresh backoff whose pause length starts at one
    [Domain.cpu_relax] and doubles on every {!once} up to [max_step]
    (default [512]), after which {!once} sleeps for 1µs per call. *)

val reset : t -> unit
(** Reset the pause length to its initial value.  Call after the contended
    operation finally succeeds, before reusing [t]. *)

val once : t -> unit
(** Pause for the current backoff duration and double it. *)

val step : t -> int
(** The current pause length in [cpu_relax] units: [1] before any
    {!once} (or after {!reset}), up to [max_step] when saturated.  Lets
    callers observe escalation (e.g. to count contended retries). *)
