(* Chase–Lev work-stealing deque.

   One owner pushes and pops at the bottom (LIFO, cache-friendly for the
   fiber scheduler); any number of thieves steal from the top (FIFO, steals
   the oldest — typically largest — unit of work).  The buffer is a circular
   array published through an [Atomic] so the owner can grow it while
   thieves hold a consistent snapshot.

   The only delicate interleaving is the last-element race between an
   owner's [pop] and a thief's [steal]; both sides resolve it with a CAS on
   [top], and OCaml's [Atomic] operations are sequentially consistent, which
   supplies the fence the original algorithm needs between the [bottom]
   write and the [top] read. *)

type 'a t = {
  top : int Atomic.t;    (* next index to steal *)
  bottom : int Atomic.t; (* next index to push; written only by owner *)
  buffer : 'a option array Atomic.t;
}

let create ?(capacity = 64) () =
  let capacity = max 2 capacity in
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buffer = Atomic.make (Array.make capacity None);
  }

let size t = max 0 (Atomic.get t.bottom - Atomic.get t.top)

let grow t bottom top =
  let old = Atomic.get t.buffer in
  let n = Array.length old in
  let fresh = Array.make (2 * n) None in
  for i = top to bottom - 1 do
    fresh.(i mod (2 * n)) <- old.(i mod n)
  done;
  Atomic.set t.buffer fresh

let push t v =
  let bottom = Atomic.get t.bottom in
  let top = Atomic.get t.top in
  let buf = Atomic.get t.buffer in
  let buf =
    if bottom - top >= Array.length buf - 1 then begin
      grow t bottom top;
      Atomic.get t.buffer
    end
    else buf
  in
  buf.(bottom mod Array.length buf) <- Some v;
  Atomic.set t.bottom (bottom + 1)

let pop t =
  let bottom = Atomic.get t.bottom - 1 in
  Atomic.set t.bottom bottom;
  let top = Atomic.get t.top in
  if bottom < top then begin
    (* Empty: restore bottom. *)
    Atomic.set t.bottom top;
    None
  end
  else begin
    let buf = Atomic.get t.buffer in
    let i = bottom mod Array.length buf in
    let v = buf.(i) in
    if bottom > top then begin
      buf.(i) <- None;
      v
    end
    else begin
      (* Last element: race with thieves via CAS on top. *)
      let won = Atomic.compare_and_set t.top top (top + 1) in
      Atomic.set t.bottom (top + 1);
      if won then begin
        buf.(i) <- None;
        v
      end
      else None
    end
  end

let rec steal t =
  let top = Atomic.get t.top in
  let bottom = Atomic.get t.bottom in
  if top >= bottom then None
  else begin
    let buf = Atomic.get t.buffer in
    let v = buf.(top mod Array.length buf) in
    if Atomic.compare_and_set t.top top (top + 1) then v
    else begin
      Domain.cpu_relax ();
      steal t
    end
  end
