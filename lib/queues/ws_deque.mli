(** Chase–Lev work-stealing deque.

    Safety contract: {!push} and {!pop} must only be called by the single
    owner (one scheduler worker); {!steal} may be called by any number of
    thieves concurrently.  The owner works LIFO at the bottom; thieves take
    the oldest element at the top.  The buffer grows automatically. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [create ()] makes an empty deque with the given initial capacity
    (default 64, minimum 2). *)

val push : 'a t -> 'a -> unit
(** Owner: push at the bottom. *)

val pop : 'a t -> 'a option
(** Owner: pop the most recently pushed element, or [None] if empty. *)

val steal : 'a t -> 'a option
(** Thief: remove the oldest element, or [None] if the deque was observed
    empty.  Lock-free. *)

val size : 'a t -> int
(** Racy size estimate. *)
