(* Treiber lock-free stack.

   Used for the private-queue cache (paper §3.2: a private queue "can either
   be freshly created or taken from a cache of queues") and as a building
   block in tests.  A plain immutable list behind a CAS'd atomic head; the
   head index never recycles nodes (the GC owns reclamation), so the classic
   ABA problem cannot bite. *)

type 'a t = { head : 'a list Atomic.t }

let create () = { head = Atomic.make [] }

let push t v =
  let b = Backoff.create () in
  let rec loop () =
    let old = Atomic.get t.head in
    if not (Atomic.compare_and_set t.head old (v :: old)) then begin
      Backoff.once b;
      loop ()
    end
  in
  loop ()

let pop t =
  let b = Backoff.create () in
  let rec loop () =
    match Atomic.get t.head with
    | [] -> None
    | v :: rest as old ->
      if Atomic.compare_and_set t.head old rest then Some v
      else begin
        Backoff.once b;
        loop ()
      end
  in
  loop ()

let is_empty t = Atomic.get t.head = []

let length t = List.length (Atomic.get t.head)
