(* Sharded MPMC queue: an array of multi-consumer Vyukov-style shards.

   The ablation data (BENCH_micro.json) shows the Michael–Scott MPMC at
   ~2x the cost of the Vyukov MPSC on the same workload: both ends of the
   MS queue are contended CAS loops, and the scheduler's single global
   inject queue turns every cross-domain wake-up into a fight over two
   cache lines.  This structure splits the traffic instead:

   - [shards] independent queues.  Enqueue picks a shard by hashing the
     producer's domain id: a producer always hits "its" shard, so
     per-producer FIFO order is preserved and uncontended runs (one
     domain) behave exactly like a single shard.  Cross-producer order is
     unspecified, as it already is for any MPMC queue under concurrency.
   - Dequeue rotates over all shards, starting at a caller-chosen (or
     domain-stable) shard so concurrent consumers fan out instead of
     convoying.

   Each shard is an exchange-then-link Vyukov list on the producer side
   (one RMW per push, wait-free), with the consumer side generalized
   from "single consumer walks plain pointers" to "consumers advance an
   atomic [tail] by CAS": the CAS winner owns the node it advanced over
   and reads its value exclusively.  One RMW per pop, lock-free — a
   consumer that loses the race simply re-reads the new tail.  This is
   cheaper than guarding an MPSC consumer with a spinlock (acquire and
   release are both full-barrier RMWs in OCaml) and keeps the whole pop
   path allocation-free.

   Dequeue returns [None] only when every shard was observed empty: a
   shard in the exchange-then-link transient (a producer has swung
   [head] but not linked [next] yet) is re-checked with backoff, so
   "None" retains its meaning of "nothing pending" for the scheduler's
   work-finding loop.  [is_empty] short-circuits on the first non-empty
   shard — the stall detector calls it on every park decision and must
   not scan the world when work is one load away. *)

type 'a node = {
  mutable value : 'a option;
  next : 'a node option Atomic.t;
}

type 'a shard = {
  head : 'a node Atomic.t; (* producers: last enqueued node *)
  tail : 'a node Atomic.t; (* consumers: last consumed (dummy) node *)
}

type 'a t = {
  shards : 'a shard array;
  mask : int; (* shards length - 1; shard count is a power of two *)
  closed : bool Atomic.t;
}

let default_shards = 4

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let make_node value = { value; next = Atomic.make None }

let create_sharded ?(shards = default_shards) () =
  let n = round_pow2 (max 1 shards) in
  let mk _ =
    let dummy = make_node None in
    let head = Atomic.make dummy in
    (* Space the producer-side and consumer-side atomics apart in the
       minor heap so the boxes of one shard (and of adjacent shards) do
       not land on a single cache line — false sharing is what the
       sharding is buying back. *)
    let gap = Sys.opaque_identity (Array.make 8 0) in
    ignore (gap : int array);
    { head; tail = Atomic.make dummy }
  in
  { shards = Array.init n mk; mask = n - 1; closed = Atomic.make false }

let num_shards t = Array.length t.shards

(* Producer shard selection: stable per domain.  The Fibonacci-hash of the
   domain id spreads consecutive ids across shards; stability (rather than
   a per-call random draw) is what keeps single-producer streams FIFO. *)
let shard_of_producer t =
  let d = (Domain.self () :> int) in
  (d * 0x9E3779B9) lsr 11 land t.mask

exception Closed = Mailbox.Closed

let push t v =
  if Atomic.get t.closed then raise Closed;
  let s = Array.unsafe_get t.shards (shard_of_producer t) in
  let n = make_node (Some v) in
  let prev = Atomic.exchange s.head n in
  Atomic.set prev.next (Some n)

(* Advance [tail] past the next linked node.  Winning the CAS transfers
   ownership of that node: losers never touch [value], so the winner's
   read and clear need no further synchronization.  Returns [None] when
   the linked suffix is exhausted — which the caller must still classify
   as empty or in the producers' exchange-then-link transient. *)
let rec pop_shard s =
  let tail = Atomic.get s.tail in
  match Atomic.get tail.next with
  | Some n ->
    if Atomic.compare_and_set s.tail tail n then begin
      let v = n.value in
      n.value <- None;
      v
    end
    else pop_shard s (* another consumer advanced; re-read *)
  | None -> None

let shard_is_empty s =
  let tail = Atomic.get s.tail in
  Atomic.get tail.next == None && Atomic.get s.head == tail

(* Rotate over all shards starting at [start].  If every shard is either
   empty or in the mid-link transient, retry the transient ones with
   backoff: a [None] result must mean the queue was observed with nothing
   pending, not that a producer happened to sit between its two linking
   instructions.  The sweep keeps the common path allocation-free: the
   [Some] owned by the CAS win is returned as-is, and the backoff state
   is only materialized once a retry is forced. *)
(* Top-level recursion (not a local closure over [t]/[start]): the sweep
   runs on every scheduler work-finding probe and must not allocate. *)
let rec sweep t start i saw_transient b =
  if i > t.mask then
    if saw_transient then begin
      let b = match b with Some b -> b | None -> Backoff.create () in
      Backoff.once b;
      sweep t start 0 false (Some b)
    end
    else None
  else begin
    let s = Array.unsafe_get t.shards ((start + i) land t.mask) in
    match pop_shard s with
    | Some _ as v -> v
    | None ->
      if shard_is_empty s then sweep t start (i + 1) saw_transient b
      else sweep t start (i + 1) true b
  end

let pop_from t start = sweep t start 0 false None

(* Plain [pop] sweeps from shard 0: consumers that care about fanning out
   (the scheduler's workers) pass their own stable start to [pop_from];
   hashing the domain id here would tax the common single-consumer
   mailbox use for a fan-out those callers don't get anyway. *)
let pop t = pop_from t 0

let rec scan_empty shards n i =
  i = n || (shard_is_empty (Array.unsafe_get shards i) && scan_empty shards n (i + 1))

let is_empty t = scan_empty t.shards (Array.length t.shards) 0

(* Batched pop: take from whichever shards have linked nodes, in rotation,
   until the buffer is full or nothing more is pending.  Each element is
   still claimed by its own tail CAS — batching here saves the sweep
   restarts, not the per-node RMW, and keeps the multi-consumer claim
   protocol identical to [pop]. *)
let drain t buf =
  let cap = Array.length buf in
  if cap = 0 then 0
  else begin
    let n = Array.length t.shards in
    let start = shard_of_producer t in
    let taken = ref 0 in
    let i = ref 0 in
    while !taken < cap && !i < n do
      let s = t.shards.((start + !i) land t.mask) in
      let rec fill () =
        if !taken < cap then
          match pop_shard s with
          | Some v ->
            buf.(!taken) <- v;
            incr taken;
            fill ()
          | None -> ()
      in
      fill ();
      incr i
    done;
    (* Same contract as [pop]: an empty batch must not be a transient
       artifact. *)
    if !taken = 0 && not (is_empty t) then
      match pop_from t start with
      | Some v ->
        buf.(0) <- v;
        1
      | None -> 0
    else !taken
  end

let close t = Atomic.set t.closed true
let is_closed t = Atomic.get t.closed

(* MAILBOX aliases ([create] with the default shard count). *)
let create () = create_sharded ()
let enqueue = push
let dequeue = pop
