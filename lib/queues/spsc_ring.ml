(* Bounded single-producer single-consumer ring buffer.

   An alternative private-queue backing store to the unbounded linked
   [Spsc_queue]: no allocation per element, cache-friendly sequential
   slots, but pushes can fail when the ring is full.  The micro-benchmark
   suite compares the two (the ablation DESIGN.md lists for the
   private-queue design choice); the runtime itself uses the unbounded
   queue because SCOOP clients must never block while logging calls.

   Classic Lamport ring with cached indices: the producer keeps a cached
   copy of the consumer's head (and vice versa) so the hot path touches
   only one shared atomic. *)

type 'a t = {
  buffer : 'a option array;
  mask : int;
  head : int Atomic.t; (* next slot to pop; written by the consumer *)
  tail : int Atomic.t; (* next slot to push; written by the producer *)
  mutable head_cache : int; (* producer's stale view of [head] *)
  mutable tail_cache : int; (* consumer's stale view of [tail] *)
}

let create ?(capacity_pow2 = 8) () =
  if capacity_pow2 < 1 || capacity_pow2 > 30 then
    invalid_arg "Spsc_ring.create: capacity_pow2 out of range";
  let size = 1 lsl capacity_pow2 in
  {
    buffer = Array.make size None;
    mask = size - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    head_cache = 0;
    tail_cache = 0;
  }

let capacity t = t.mask + 1

let try_push t v =
  let tail = Atomic.get t.tail in
  if tail - t.head_cache >= capacity t then begin
    t.head_cache <- Atomic.get t.head;
    if tail - t.head_cache >= capacity t then false
    else begin
      t.buffer.(tail land t.mask) <- Some v;
      Atomic.set t.tail (tail + 1);
      true
    end
  end
  else begin
    t.buffer.(tail land t.mask) <- Some v;
    Atomic.set t.tail (tail + 1);
    true
  end

let pop t =
  let head = Atomic.get t.head in
  if head >= t.tail_cache then begin
    t.tail_cache <- Atomic.get t.tail;
    if head >= t.tail_cache then None
    else begin
      let v = t.buffer.(head land t.mask) in
      t.buffer.(head land t.mask) <- None;
      Atomic.set t.head (head + 1);
      v
    end
  end
  else begin
    let v = t.buffer.(head land t.mask) in
    t.buffer.(head land t.mask) <- None;
    Atomic.set t.head (head + 1);
    v
  end

let is_empty t = Atomic.get t.head >= Atomic.get t.tail
let length t = max 0 (Atomic.get t.tail - Atomic.get t.head)
