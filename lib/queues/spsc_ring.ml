(* Bounded single-producer single-consumer ring buffer.

   An alternative private-queue backing store to the unbounded linked
   [Spsc_queue]: no allocation per element, cache-friendly sequential
   slots, but pushes can fail when the ring is full.  The micro-benchmark
   suite compares the two (the ablation DESIGN.md lists for the
   private-queue design choice); the runtime itself uses the unbounded
   queue because SCOOP clients must never block while logging calls.

   Classic Lamport ring with cached indices: the producer keeps a cached
   copy of the consumer's head (and vice versa) so the hot path touches
   only one shared atomic. *)

type 'a t = {
  buffer : 'a option array;
  mask : int;
  head : int Atomic.t; (* next slot to pop; written by the consumer *)
  tail : int Atomic.t; (* next slot to push; written by the producer *)
  mutable head_cache : int; (* producer's stale view of [head] *)
  mutable tail_cache : int; (* consumer's stale view of [tail] *)
  closed : bool Atomic.t;
}

let create ?(capacity_pow2 = 8) () =
  if capacity_pow2 < 1 || capacity_pow2 > 30 then
    invalid_arg "Spsc_ring.create: capacity_pow2 out of range";
  let size = 1 lsl capacity_pow2 in
  {
    buffer = Array.make size None;
    mask = size - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    head_cache = 0;
    tail_cache = 0;
    closed = Atomic.make false;
  }

let capacity t = t.mask + 1

let try_push t v =
  if Atomic.get t.closed then raise Mailbox.Closed;
  let tail = Atomic.get t.tail in
  if tail - t.head_cache >= capacity t then begin
    t.head_cache <- Atomic.get t.head;
    if tail - t.head_cache >= capacity t then false
    else begin
      t.buffer.(tail land t.mask) <- Some v;
      Atomic.set t.tail (tail + 1);
      true
    end
  end
  else begin
    t.buffer.(tail land t.mask) <- Some v;
    Atomic.set t.tail (tail + 1);
    true
  end

let pop t =
  let head = Atomic.get t.head in
  if head >= t.tail_cache then begin
    t.tail_cache <- Atomic.get t.tail;
    if head >= t.tail_cache then None
    else begin
      let v = t.buffer.(head land t.mask) in
      t.buffer.(head land t.mask) <- None;
      Atomic.set t.head (head + 1);
      v
    end
  end
  else begin
    let v = t.buffer.(head land t.mask) in
    t.buffer.(head land t.mask) <- None;
    Atomic.set t.head (head + 1);
    v
  end

let is_empty t = Atomic.get t.head >= Atomic.get t.tail
let length t = max 0 (Atomic.get t.tail - Atomic.get t.head)

(* The ring is where batching pays most: one [tail] refresh bounds the
   whole run of available slots, the slots are copied with plain array
   reads, and a single [head] store publishes the entire consumption. *)
let drain t buf =
  let cap = Array.length buf in
  let head = Atomic.get t.head in
  if head >= t.tail_cache then t.tail_cache <- Atomic.get t.tail;
  let n = min cap (t.tail_cache - head) in
  if n <= 0 then 0
  else begin
    for i = 0 to n - 1 do
      let slot = (head + i) land t.mask in
      (match t.buffer.(slot) with
      | Some v -> buf.(i) <- v
      | None -> assert false);
      t.buffer.(slot) <- None
    done;
    Atomic.set t.head (head + n);
    n
  end

let close t = Atomic.set t.closed true
let is_closed t = Atomic.get t.closed

(* MAILBOX view: a default-capacity ring whose [enqueue] spins (with
   backoff) while the ring is full — the bounded queue's only way to
   offer the unbounded signature.  Producers that must never block keep
   using [try_push]. *)
module As_mailbox = struct
  type nonrec 'a t = 'a t

  let create () = create ()

  let enqueue t v =
    let b = Backoff.create () in
    while not (try_push t v) do
      Backoff.once b
    done

  let dequeue = pop
  let drain = drain
  let close = close
  let is_closed = is_closed
  let is_empty = is_empty
end
