(** Michael–Scott lock-free multiple-producer multiple-consumer FIFO queue.

    Safe for any number of concurrent producers and consumers.  Used for the
    scheduler's global injection queue and as the generic baseline in the
    queue micro-benchmarks. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Append one element.  Lock-free. *)

val pop : 'a t -> 'a option
(** Remove the oldest element, or [None] if the queue was observed empty. *)

val is_empty : 'a t -> bool
(** Racy emptiness test. *)
