(** Michael–Scott lock-free multiple-producer multiple-consumer FIFO queue.

    Safe for any number of concurrent producers and consumers.  Used for the
    scheduler's global injection queue and as the generic baseline in the
    queue micro-benchmarks. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Append one element.  Lock-free. *)

val pop : 'a t -> 'a option
(** Remove the oldest element, or [None] if the queue was observed empty. *)

val is_empty : 'a t -> bool
(** Racy emptiness test. *)

val drain : 'a t -> 'a array -> int
(** Batched {!pop}: move up to [Array.length buf] elements into a prefix
    of [buf] and return how many were taken (each element still costs a
    CAS — the MS queue has no cheaper multi-element claim). *)

val close : 'a t -> unit
(** Close the producer side; pending elements remain poppable. *)

val is_closed : 'a t -> bool

val enqueue : 'a t -> 'a -> unit
(** {!Mailbox.S} alias of {!push}.  @raise Mailbox.Closed after {!close}. *)

val dequeue : 'a t -> 'a option
(** {!Mailbox.S} alias of {!pop}. *)
