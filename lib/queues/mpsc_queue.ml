(* Unbounded multiple-producer single-consumer queue (Vyukov's intrusive
   MPSC design, adapted to a GC'd setting).

   This is the "queue-of-queues" shape of the paper (§3.1): many clients
   enqueue their private queues, one handler dequeues them.  Producers only
   need a single atomic exchange on [head]; the consumer walks plain [next]
   pointers.

   The exchange-then-link protocol has a well-known transient state: after a
   producer has exchanged [head] but before it has linked [prev.next], the
   consumer can observe a non-empty queue whose tail has no successor.  In
   that window {!pop} spins briefly (the producer is between two
   instructions), which is the standard trade-off of this queue: wait-free
   producers, mostly-wait-free consumer. *)

type 'a node = {
  mutable value : 'a option;
  next : 'a node option Atomic.t;
}

type 'a t = {
  head : 'a node Atomic.t; (* producers: last enqueued node *)
  mutable tail : 'a node;  (* consumer: last dequeued (dummy) node *)
  closed : bool Atomic.t;
}

let make_node value = { value; next = Atomic.make None }

let create () =
  let dummy = make_node None in
  { head = Atomic.make dummy; tail = dummy; closed = Atomic.make false }

let push t v =
  if Atomic.get t.closed then raise Mailbox.Closed;
  let n = make_node (Some v) in
  let prev = Atomic.exchange t.head n in
  Atomic.set prev.next (Some n)

let rec pop t =
  let tail = t.tail in
  match Atomic.get tail.next with
  | Some n ->
    let v = n.value in
    n.value <- None;
    t.tail <- n;
    v
  | None ->
    if Atomic.get t.head == tail then None (* genuinely empty *)
    else begin
      (* A producer exchanged [head] but has not linked [next] yet. *)
      Domain.cpu_relax ();
      pop t
    end

let is_empty t =
  Atomic.get t.tail.next = None && Atomic.get t.head == t.tail

(* Batched pop: the consumer walks the already-linked suffix of the list
   in one pass.  The only synchronization besides the per-node [next]
   acquire loads is the single [head] comparison deciding emptiness; the
   Vyukov mid-link transient is only waited out when the batch would
   otherwise be empty. *)
let drain t buf =
  let cap = Array.length buf in
  let rec go taken =
    if taken >= cap then taken
    else
      let tail = t.tail in
      match Atomic.get tail.next with
      | Some n ->
        (match n.value with
        | Some v -> buf.(taken) <- v
        | None -> assert false);
        n.value <- None;
        t.tail <- n;
        go (taken + 1)
      | None ->
        if Atomic.get t.head == tail then taken (* genuinely empty *)
        else if taken > 0 then taken
          (* a producer is mid-link; deliver what we have *)
        else begin
          Domain.cpu_relax ();
          go 0
        end
  in
  if cap = 0 then 0 else go 0

let close t = Atomic.set t.closed true
let is_closed t = Atomic.get t.closed

(* MAILBOX aliases. *)
let enqueue = push
let dequeue = pop
