(* Unbounded multiple-producer single-consumer queue (Vyukov's intrusive
   MPSC design, adapted to a GC'd setting).

   This is the "queue-of-queues" shape of the paper (§3.1): many clients
   enqueue their private queues, one handler dequeues them.  Producers only
   need a single atomic exchange on [head]; the consumer walks plain [next]
   pointers.

   The exchange-then-link protocol has a well-known transient state: after a
   producer has exchanged [head] but before it has linked [prev.next], the
   consumer can observe a non-empty queue whose tail has no successor.  In
   that window {!pop} spins briefly (the producer is between two
   instructions), which is the standard trade-off of this queue: wait-free
   producers, mostly-wait-free consumer. *)

type 'a node = {
  mutable value : 'a option;
  next : 'a node option Atomic.t;
}

type 'a t = {
  head : 'a node Atomic.t; (* producers: last enqueued node *)
  mutable tail : 'a node;  (* consumer: last dequeued (dummy) node *)
}

let make_node value = { value; next = Atomic.make None }

let create () =
  let dummy = make_node None in
  { head = Atomic.make dummy; tail = dummy }

let push t v =
  let n = make_node (Some v) in
  let prev = Atomic.exchange t.head n in
  Atomic.set prev.next (Some n)

let rec pop t =
  let tail = t.tail in
  match Atomic.get tail.next with
  | Some n ->
    let v = n.value in
    n.value <- None;
    t.tail <- n;
    v
  | None ->
    if Atomic.get t.head == tail then None (* genuinely empty *)
    else begin
      (* A producer exchanged [head] but has not linked [next] yet. *)
      Domain.cpu_relax ();
      pop t
    end

let is_empty t =
  Atomic.get t.tail.next = None && Atomic.get t.head == t.tail
