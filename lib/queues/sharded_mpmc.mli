(** Sharded multiple-producer multiple-consumer queue.

    An array of Vyukov-style shards, spaced apart to kill false sharing.
    Producers enqueue to a domain-stable shard with one atomic exchange
    (so per-producer FIFO order is preserved and a single-producer stream
    behaves exactly like one MPSC queue); consumers rotate over all
    shards, claiming each element with a single CAS on the shard's tail
    — lock-free on both ends.

    This is the scheduler's replacement for the single Michael–Scott
    global inject queue: same MAILBOX contract, but cross-domain traffic
    is split over [shards] independent cache-line groups, and the common
    uncontended operation costs one RMW per end instead of the MS
    contended-CAS-loop dance. *)

type 'a t

val create_sharded : ?shards:int -> unit -> 'a t
(** [create_sharded ~shards ()] makes a queue with [shards] shards
    (rounded up to a power of two; default {!default_shards}). *)

val default_shards : int

val num_shards : 'a t -> int

val push : 'a t -> 'a -> unit
(** Append to the producer's domain-stable shard.
    @raise Mailbox.Closed after {!close}. *)

val pop : 'a t -> 'a option
(** Rotate over all shards from shard 0 (consumers that want to fan out
    pass their own stable start to {!pop_from}).  [None] means every
    shard was observed empty — a shard caught in a producer's
    exchange-then-link transient is re-checked (with backoff) rather
    than skipped, so [None] is never a concurrency artifact. *)

val pop_from : 'a t -> int -> 'a option
(** [pop_from t start] is {!pop} beginning the sweep at shard
    [start land mask] — lets a scheduler worker drain "its" shard first. *)

val is_empty : 'a t -> bool
(** Racy emptiness test; short-circuits at the first non-empty shard. *)

val drain : 'a t -> 'a array -> int
(** Batched {!pop} across shards in rotation order. *)

val close : 'a t -> unit
(** Close every shard; pending elements remain poppable. *)

val is_closed : 'a t -> bool

val create : unit -> 'a t
(** {!Mailbox.S} alias: {!create_sharded} with the default shard count. *)

val enqueue : 'a t -> 'a -> unit
(** {!Mailbox.S} alias of {!push}. *)

val dequeue : 'a t -> 'a option
(** {!Mailbox.S} alias of {!pop}. *)
