(** Unbounded single-producer single-consumer FIFO queue.

    The backing structure of SCOOP/Qs private queues (paper §3.1): after a
    handler dequeues a private queue from its queue-of-queues, the
    communication is single-producer (the client) single-consumer (the
    handler), so no compare-and-swap is needed on either path.

    Safety contract: at most one domain/fiber calls {!push} concurrently, and
    at most one calls {!pop}/{!peek} concurrently.  Producer and consumer may
    run in parallel with each other. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Producer side: append one element.  Never blocks.
    @raise Mailbox.Closed after {!close}. *)

val pop : 'a t -> 'a option
(** Consumer side: remove the oldest element, or [None] if empty. *)

val peek : 'a t -> 'a option
(** Consumer side: the oldest element without removing it. *)

val is_empty : 'a t -> bool
(** Consumer-side emptiness test ([true] means no element is currently
    visible to the consumer). *)

val length : 'a t -> int
(** Racy size estimate, exact when both ends are quiescent. *)

val drain : 'a t -> 'a array -> int
(** Consumer side: batched {!pop} — move up to [Array.length buf]
    elements into a prefix of [buf], publishing the consumption with a
    single counter update, and return how many were taken. *)

val close : 'a t -> unit
(** Close the producer side; pending elements remain poppable. *)

val is_closed : 'a t -> bool

val enqueue : 'a t -> 'a -> unit
(** {!Mailbox.S} alias of {!push}. *)

val dequeue : 'a t -> 'a option
(** {!Mailbox.S} alias of {!pop}. *)
