(* Michael–Scott lock-free multiple-producer multiple-consumer queue.

   Used where neither end is single-owner: the scheduler's global injection
   queue, and as the unsafe-baseline comparator in the queue benchmarks.
   This is the classic two-pointer linked queue: [tail] may lag by one node
   and is "helped" forward by whoever notices. *)

type 'a node = {
  mutable value : 'a option;
  next : 'a node option Atomic.t;
}

type 'a t = {
  head : 'a node Atomic.t; (* dummy node; head.next is the front *)
  tail : 'a node Atomic.t; (* last or second-to-last node *)
  closed : bool Atomic.t;
}

let make_node value = { value; next = Atomic.make None }

let create () =
  let dummy = make_node None in
  {
    head = Atomic.make dummy;
    tail = Atomic.make dummy;
    closed = Atomic.make false;
  }

let push t v =
  if Atomic.get t.closed then raise Mailbox.Closed;
  let n = make_node (Some v) in
  let b = Backoff.create () in
  let rec loop () =
    let tail = Atomic.get t.tail in
    match Atomic.get tail.next with
    | None ->
      if Atomic.compare_and_set tail.next None (Some n) then
        (* Linearization point.  Swinging [tail] is cooperative; failure
           means someone helped us. *)
        ignore (Atomic.compare_and_set t.tail tail n : bool)
      else begin
        Backoff.once b;
        loop ()
      end
    | Some next ->
      (* Tail is lagging: help it forward and retry. *)
      ignore (Atomic.compare_and_set t.tail tail next : bool);
      loop ()
  in
  loop ()

let pop t =
  let b = Backoff.create () in
  let rec loop () =
    let head = Atomic.get t.head in
    match Atomic.get head.next with
    | None -> None
    | Some next ->
      let tail = Atomic.get t.tail in
      if head == tail then begin
        (* Tail lags behind a non-empty queue: help. *)
        ignore (Atomic.compare_and_set t.tail tail next : bool);
        loop ()
      end
      else if Atomic.compare_and_set t.head head next then begin
        let v = next.value in
        next.value <- None;
        v
      end
      else begin
        Backoff.once b;
        loop ()
      end
  in
  loop ()

let is_empty t = Atomic.get (Atomic.get t.head).next = None

(* Batched pop.  Multiple consumers may race, so each element still
   needs its own CAS (a Michael–Scott queue has no cheaper multi-element
   claim); the batch saves the per-element call/backoff setup only. *)
let drain t buf =
  let cap = Array.length buf in
  let rec go taken =
    if taken >= cap then taken
    else
      match pop t with
      | Some v ->
        buf.(taken) <- v;
        go (taken + 1)
      | None -> taken
  in
  go 0

let close t = Atomic.set t.closed true
let is_closed t = Atomic.get t.closed

(* MAILBOX aliases. *)
let enqueue = push
let dequeue = pop
