(** Test-and-test-and-set spinlock with exponential backoff.

    Suitable only for critical sections of a few memory operations, such as
    enqueueing a private queue during a multi-reservation (paper §3.3).
    Not reentrant. *)

type t

val create : unit -> t

val acquire : t -> unit
(** Spin (with backoff) until the lock is acquired. *)

val try_acquire : t -> bool
(** One attempt; [true] on success. *)

val release : t -> unit
(** Release the lock.  Must be called by the current holder. *)

val is_locked : t -> bool
(** Racy observation, for diagnostics and tests. *)

val with_lock : t -> (unit -> 'a) -> 'a
(** [with_lock t f] runs [f] under the lock, releasing it on exceptions. *)
