(* Exponential backoff for contended atomic operations.

   Spinning re-reads a contended location as fast as the core allows, which
   floods the interconnect with cache-line traffic.  Doubling the number of
   [cpu_relax] pauses between attempts (up to a cap) lets the winner of the
   race finish its critical section, after which everyone else succeeds on
   the first retry.  Once saturated we sleep for a microsecond instead: on
   machines with fewer cores than domains the thread we are waiting for may
   need the CPU we are spinning on. *)

type t = {
  mutable step : int;
  max_step : int;
}

let default_max_step = 1 lsl 9

let create ?(max_step = default_max_step) () = { step = 1; max_step }

let reset t = t.step <- 1
let step t = t.step

let once t =
  if t.step >= t.max_step then Unix.sleepf 1e-6
  else begin
    for _ = 1 to t.step do
      Domain.cpu_relax ()
    done;
    t.step <- t.step * 2
  end
