(** Erlang-style actors: share-nothing fibers with copying message
    passing (the Erlang comparator of the paper's §5 comparison).

    The [copy] function given at {!spawn} is applied to every message on
    {!send}, modelling Erlang's copy-on-send heaps; pass a deep copy for
    mutable payloads. *)

type 'a t

val spawn : ?copy:('a -> 'a) -> ('a t -> unit) -> 'a t
(** Start an actor running [body] (which receives its own handle for
    [receive]).  [copy] defaults to the identity — appropriate only for
    immutable messages. *)

val send : 'a t -> 'a -> unit
(** Copy the message into the actor's mailbox.  Never blocks. *)

val receive : 'a t -> 'a
(** Take the oldest message, blocking this actor's fiber while empty.
    Only the actor itself may call this. *)

val try_receive : 'a t -> 'a option

val stop : 'a t -> unit
(** Close the mailbox; a blocked {!receive} then fails. *)

val join : 'a t -> unit
(** Block until the actor's body has returned. *)
