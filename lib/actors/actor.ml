(* Erlang-style actors over scheduler fibers.

   The comparator substrate for the paper's Erlang benchmarks (§5,
   Table 3: non-shared memory, actor model).  The defining cost is
   modelled faithfully: every [send] passes the message through the
   actor's [copy] function, because Erlang processes share nothing —
   "when data is sent between processes it is copied in its entirety".
   Benchmarks supply a deep copy for their message type; coordination
   benchmarks whose messages are immediate integers use [Fun.id] copies,
   which is also what Erlang effectively does for small terms.

   Mailboxes are unbounded blocking MPSC queues: any fiber may send, only
   the actor receives (no selective receive — none of the paper's
   benchmarks needs it). *)

type 'a t = {
  mailbox : 'a Qs_sched.Bqueue.Mpsc.t;
  copy : 'a -> 'a;
  done_ : unit Qs_sched.Ivar.t;
}

let spawn ?(copy = Fun.id) body =
  let actor =
    {
      mailbox = Qs_sched.Bqueue.Mpsc.create ();
      copy;
      done_ = Qs_sched.Ivar.create ();
    }
  in
  Qs_sched.Sched.spawn (fun () ->
    Fun.protect
      ~finally:(fun () -> Qs_sched.Ivar.fill actor.done_ ())
      (fun () -> body actor));
  actor

let send actor msg = Qs_sched.Bqueue.Mpsc.enqueue actor.mailbox (actor.copy msg)

let receive actor =
  match Qs_sched.Bqueue.Mpsc.dequeue actor.mailbox with
  | Some msg -> msg
  | None -> failwith "Actor.receive: mailbox closed"

let try_receive actor =
  if Qs_sched.Bqueue.Mpsc.is_empty actor.mailbox then None
  else Qs_sched.Bqueue.Mpsc.dequeue actor.mailbox

let stop actor = Qs_sched.Bqueue.Mpsc.close actor.mailbox

let join actor = Qs_sched.Ivar.read actor.done_
