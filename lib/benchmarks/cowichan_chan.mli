(** The Cowichan parallel benchmarks over goroutines and channels (the Go comparator).

    Each function runs one benchmark end to end, validates the result
    against the sequential reference and returns the timings.
    @raise Bench_types.Validation_failed on incorrect results. *)

val randmat :
  domains:int -> workers:int -> nr:int -> seed:int -> Bench_types.timings

val thresh :
  domains:int -> workers:int -> nr:int -> p:int -> seed:int ->
  Bench_types.timings

val winnow :
  domains:int -> workers:int -> nr:int -> p:int -> nw:int -> seed:int ->
  Bench_types.timings

val outer : domains:int -> workers:int -> n:int -> range:int -> Bench_types.timings
val product : domains:int -> workers:int -> n:int -> range:int -> Bench_types.timings

val chain :
  domains:int -> workers:int -> nr:int -> p:int -> nw:int -> seed:int ->
  Bench_types.timings
