(* The Cowichan benchmarks in Haskell style — the paper's Haskell
   comparator for the parallel workloads (§5.1: the [par] construct and
   Repa-style bulk array operations on immutable data).

   The defining costs modelled here: every parallel stage produces fresh
   immutable chunk arrays that are concatenated sequentially afterwards
   (no in-place writes into a shared output), which is exactly the
   limitation the paper observed on randmat ("the concatenation is
   sequential, ... putting a limit on the maximum speedup"), plus the
   allocation/GC pressure of rebuilding arrays at each stage. *)

module B = Bench_types
module C = Qs_workloads.Cowichan
module P = Qs_sched.Parfor

let run ~domains f = Qs_sched.Sched.run ~domains f

(* A parallel stage, Repa-style: map chunk ranges to fresh arrays, then
   concatenate sequentially. *)
let par_build ~workers n f =
  let ranges = Array.of_list (B.split n workers) in
  let pieces = Array.make (Array.length ranges) [||] in
  P.for_each ~chunks:(Array.length ranges) (Array.length ranges) (fun i ->
    let lo, hi = ranges.(i) in
    pieces.(i) <- f lo hi);
  Array.concat (Array.to_list pieces)

let randmat ~domains ~workers ~nr ~seed =
  run ~domains (fun () ->
    let ph = B.start_phases () in
    let m =
      B.compute_phase ph (fun () ->
        par_build ~workers nr (fun lo hi ->
          let chunk = Array.make ((hi - lo) * nr) 0 in
          C.randmat_chunk ~seed ~nr ~lo ~hi chunk;
          chunk))
    in
    B.validate_int "randmat/functional"
      ~expected:(C.checksum_int (C.randmat ~seed ~nr))
      ~actual:(C.checksum_int m);
    B.finish_phases ph)

let thresh ~domains ~workers ~nr ~p ~seed =
  let input = C.randmat ~seed ~nr in
  let expected_threshold, expected_mask = C.thresh ~nr input ~p in
  run ~domains (fun () ->
    let ph = B.start_phases () in
    let threshold, mask_ints =
      B.compute_phase ph (fun () ->
        let hist =
          P.reduce_range ~chunks:workers 0 nr
            ~neutral:(Array.make C.modulus 0)
            ~chunk:(fun lo hi -> C.thresh_hist ~nr input ~lo ~hi)
            ~combine:C.merge_hist
        in
        let threshold = C.thresh_threshold ~hist ~total:(nr * nr) ~p in
        let mask =
          par_build ~workers nr (fun lo hi ->
            Array.init ((hi - lo) * nr) (fun k ->
              if input.((lo * nr) + k) >= threshold then 1 else 0))
        in
        (threshold, mask))
    in
    B.validate_int "thresh.threshold/functional" ~expected:expected_threshold
      ~actual:threshold;
    B.validate_int "thresh.mask/functional"
      ~expected:(C.checksum_mask expected_mask)
      ~actual:(Array.fold_left ( + ) 0 mask_ints);
    B.finish_phases ph)

let winnow ~domains ~workers ~nr ~p ~nw ~seed =
  let input = C.randmat ~seed ~nr in
  let _, mask = C.thresh ~nr input ~p in
  let expected = C.winnow ~nr input mask ~nw in
  run ~domains (fun () ->
    let ph = B.start_phases () in
    let points =
      B.compute_phase ph (fun () ->
        let candidates =
          P.reduce_range ~chunks:workers 0 nr ~neutral:[]
            ~chunk:(fun lo hi -> C.winnow_collect ~nr input mask ~lo ~hi ())
            ~combine:(fun a b -> a @ b)
        in
        let sorted = List.sort compare candidates in
        C.winnow_select (Array.of_list sorted) ~nw)
    in
    B.validate_int "winnow/functional"
      ~expected:(C.checksum_points expected)
      ~actual:(C.checksum_points points);
    B.finish_phases ph)

let outer ~domains ~workers ~n ~range =
  let points = C.synthetic_points ~n ~range in
  let expected_m, expected_v = C.outer points in
  run ~domains (fun () ->
    let ph = B.start_phases () in
    let matrix, vector =
      B.compute_phase ph (fun () ->
        let matrix =
          par_build ~workers n (fun lo hi ->
            let mchunk = Array.make ((hi - lo) * n) 0.0 in
            let vchunk = Array.make (hi - lo) 0.0 in
            C.outer_chunk points ~lo ~hi mchunk vchunk;
            mchunk)
        in
        let vector =
          par_build ~workers n (fun lo hi ->
            let mchunk = Array.make ((hi - lo) * n) 0.0 in
            let vchunk = Array.make (hi - lo) 0.0 in
            C.outer_chunk points ~lo ~hi mchunk vchunk;
            vchunk)
        in
        (matrix, vector))
    in
    B.validate_float "outer/functional"
      ~expected:(C.checksum_float expected_m +. C.checksum_float expected_v)
      ~actual:(C.checksum_float matrix +. C.checksum_float vector);
    B.finish_phases ph)

let product ~domains ~workers ~n ~range =
  let points = C.synthetic_points ~n ~range in
  let matrix, vector = C.outer points in
  let expected = C.product ~n matrix vector in
  run ~domains (fun () ->
    let ph = B.start_phases () in
    let result =
      B.compute_phase ph (fun () ->
        par_build ~workers n (fun lo hi ->
          let rchunk = Array.make (hi - lo) 0.0 in
          for i = lo to hi - 1 do
            let acc = ref 0.0 in
            for j = 0 to n - 1 do
              acc := !acc +. (matrix.((i * n) + j) *. vector.(j))
            done;
            rchunk.(i - lo) <- !acc
          done;
          rchunk))
    in
    B.validate_float "product/functional"
      ~expected:(C.checksum_float expected)
      ~actual:(C.checksum_float result);
    B.finish_phases ph)

let chain ~domains ~workers ~nr ~p ~nw ~seed =
  let expected = C.chain ~seed ~nr ~p ~nw in
  run ~domains (fun () ->
    let ph = B.start_phases () in
    let result =
      B.compute_phase ph (fun () ->
        let m =
          par_build ~workers nr (fun lo hi ->
            let chunk = Array.make ((hi - lo) * nr) 0 in
            C.randmat_chunk ~seed ~nr ~lo ~hi chunk;
            chunk)
        in
        let hist =
          P.reduce_range ~chunks:workers 0 nr
            ~neutral:(Array.make C.modulus 0)
            ~chunk:(fun lo hi -> C.thresh_hist ~nr m ~lo ~hi)
            ~combine:C.merge_hist
        in
        let threshold = C.thresh_threshold ~hist ~total:(nr * nr) ~p in
        let mask = Bytes.make (nr * nr) '\000' in
        P.for_range ~chunks:workers 0 nr (fun lo hi ->
          C.thresh_mask_rows ~nr m ~threshold mask ~lo ~hi);
        let candidates =
          P.reduce_range ~chunks:workers 0 nr ~neutral:[]
            ~chunk:(fun lo hi -> C.winnow_collect ~nr m mask ~lo ~hi ())
            ~combine:(fun a b -> a @ b)
        in
        let points =
          C.winnow_select (Array.of_list (List.sort compare candidates)) ~nw
        in
        let n = Array.length points in
        let matrix =
          par_build ~workers n (fun lo hi ->
            let mchunk = Array.make ((hi - lo) * n) 0.0 in
            let vchunk = Array.make (hi - lo) 0.0 in
            C.outer_chunk points ~lo ~hi mchunk vchunk;
            mchunk)
        in
        let vector =
          par_build ~workers n (fun lo hi ->
            let mchunk = Array.make ((hi - lo) * n) 0.0 in
            let vchunk = Array.make (hi - lo) 0.0 in
            C.outer_chunk points ~lo ~hi mchunk vchunk;
            vchunk)
        in
        par_build ~workers n (fun lo hi ->
          let rchunk = Array.make (hi - lo) 0.0 in
          for i = lo to hi - 1 do
            let acc = ref 0.0 in
            for j = 0 to n - 1 do
              acc := !acc +. (matrix.((i * n) + j) *. vector.(j))
            done;
            rchunk.(i - lo) <- !acc
          done;
          rchunk))
    in
    B.validate_float "chain/functional"
      ~expected:(C.checksum_float expected)
      ~actual:(C.checksum_float result);
    B.finish_phases ph)
