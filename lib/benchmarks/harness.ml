(* Benchmark dispatch: runs every (task × variant) combination at a given
   scale and aggregates the matrices the paper's tables and figures are
   built from.  Variants are either SCOOP optimization configurations
   (Tables 1–2) or language paradigms (Tables 4–5). *)

module B = Bench_types

type scale = {
  nr : int; (* matrix dimension (paper: 10,000) *)
  p : int; (* thresh percentage (paper: 1) *)
  nw : int; (* winnow/outer size (paper: 10,000) *)
  n : int; (* concurrent workers per role (paper: 32) *)
  m : int; (* concurrent iterations (paper: 20,000) *)
  nring : int; (* threadring ring size (shootout: 503) *)
  nt : int; (* threadring passes (paper: 600,000) *)
  creatures : int; (* chameneos population *)
  nc : int; (* chameneos meetings (paper: 5,000,000) *)
  domains : int;
  workers : int; (* data-parallel worker count *)
  reps : int;
  seed : int;
}

(* Container-sized defaults: every effect in the paper's tables is
   overhead-driven and already visible at this scale. *)
let default =
  {
    nr = 220;
    p = 1;
    nw = 220;
    n = 32;
    m = 800;
    nring = 64;
    nt = 20_000;
    creatures = 8;
    nc = 5_000;
    domains = 1;
    workers = 8;
    reps = 3;
    seed = 42;
  }

let tiny =
  {
    nr = 60;
    p = 2;
    nw = 40;
    n = 4;
    m = 50;
    nring = 8;
    nt = 400;
    creatures = 4;
    nc = 100;
    domains = 1;
    workers = 4;
    reps = 1;
    seed = 7;
  }

(* -- dispatch -------------------------------------------------------------- *)

let scoop_parallel ~config s task =
  let domains = s.domains and workers = s.workers and seed = s.seed in
  match task with
  | "randmat" -> Cowichan_scoop.randmat ~config ~domains ~workers ~nr:s.nr ~seed
  | "thresh" -> Cowichan_scoop.thresh ~config ~domains ~workers ~nr:s.nr ~p:s.p ~seed
  | "winnow" ->
    Cowichan_scoop.winnow ~config ~domains ~workers ~nr:s.nr ~p:s.p ~nw:s.nw ~seed
  | "outer" -> Cowichan_scoop.outer ~config ~domains ~workers ~n:s.nw ~range:s.nr
  | "product" -> Cowichan_scoop.product ~config ~domains ~workers ~n:s.nw ~range:s.nr
  | "chain" ->
    Cowichan_scoop.chain ~config ~domains ~workers ~nr:s.nr ~p:s.p ~nw:s.nw ~seed
  | _ -> invalid_arg ("unknown parallel task " ^ task)

let lang_parallel ~lang ?(domains = 0) s task =
  let domains = if domains = 0 then s.domains else domains in
  let workers = s.workers and seed = s.seed in
  match lang with
  | "qs" -> scoop_parallel ~config:Scoop.Config.all { s with domains } task
  | "cxx" -> (
    match task with
    | "randmat" -> Cowichan_parfor.randmat ~domains ~workers ~nr:s.nr ~seed
    | "thresh" -> Cowichan_parfor.thresh ~domains ~workers ~nr:s.nr ~p:s.p ~seed
    | "winnow" -> Cowichan_parfor.winnow ~domains ~workers ~nr:s.nr ~p:s.p ~nw:s.nw ~seed
    | "outer" -> Cowichan_parfor.outer ~domains ~workers ~n:s.nw ~range:s.nr
    | "product" -> Cowichan_parfor.product ~domains ~workers ~n:s.nw ~range:s.nr
    | "chain" -> Cowichan_parfor.chain ~domains ~workers ~nr:s.nr ~p:s.p ~nw:s.nw ~seed
    | _ -> invalid_arg task)
  | "go" -> (
    match task with
    | "randmat" -> Cowichan_chan.randmat ~domains ~workers ~nr:s.nr ~seed
    | "thresh" -> Cowichan_chan.thresh ~domains ~workers ~nr:s.nr ~p:s.p ~seed
    | "winnow" -> Cowichan_chan.winnow ~domains ~workers ~nr:s.nr ~p:s.p ~nw:s.nw ~seed
    | "outer" -> Cowichan_chan.outer ~domains ~workers ~n:s.nw ~range:s.nr
    | "product" -> Cowichan_chan.product ~domains ~workers ~n:s.nw ~range:s.nr
    | "chain" -> Cowichan_chan.chain ~domains ~workers ~nr:s.nr ~p:s.p ~nw:s.nw ~seed
    | _ -> invalid_arg task)
  | "haskell" -> (
    match task with
    | "randmat" -> Cowichan_functional.randmat ~domains ~workers ~nr:s.nr ~seed
    | "thresh" -> Cowichan_functional.thresh ~domains ~workers ~nr:s.nr ~p:s.p ~seed
    | "winnow" ->
      Cowichan_functional.winnow ~domains ~workers ~nr:s.nr ~p:s.p ~nw:s.nw ~seed
    | "outer" -> Cowichan_functional.outer ~domains ~workers ~n:s.nw ~range:s.nr
    | "product" -> Cowichan_functional.product ~domains ~workers ~n:s.nw ~range:s.nr
    | "chain" ->
      Cowichan_functional.chain ~domains ~workers ~nr:s.nr ~p:s.p ~nw:s.nw ~seed
    | _ -> invalid_arg task)
  | "erlang" -> (
    match task with
    | "randmat" -> Cowichan_actors.randmat ~domains ~workers ~nr:s.nr ~seed
    | "thresh" -> Cowichan_actors.thresh ~domains ~workers ~nr:s.nr ~p:s.p ~seed
    | "winnow" -> Cowichan_actors.winnow ~domains ~workers ~nr:s.nr ~p:s.p ~nw:s.nw ~seed
    | "outer" -> Cowichan_actors.outer ~domains ~workers ~n:s.nw ~range:s.nr
    | "product" -> Cowichan_actors.product ~domains ~workers ~n:s.nw ~range:s.nr
    | "chain" -> Cowichan_actors.chain ~domains ~workers ~nr:s.nr ~p:s.p ~nw:s.nw ~seed
    | _ -> invalid_arg task)
  | _ -> invalid_arg ("unknown language " ^ lang)

let scoop_concurrent ~config s task =
  let domains = s.domains in
  match task with
  | "mutex" -> Conc_scoop.mutex ~config ~domains ~n:s.n ~m:s.m
  | "prodcons" -> Conc_scoop.prodcons ~config ~domains ~n:s.n ~m:s.m
  | "condition" -> Conc_scoop.condition ~config ~domains ~n:s.n ~m:s.m
  | "threadring" -> Conc_scoop.threadring ~config ~domains ~n:s.nring ~nt:s.nt
  | "chameneos" ->
    Conc_scoop.chameneos ~config ~domains ~creatures:s.creatures ~nc:s.nc
  | _ -> invalid_arg ("unknown concurrent task " ^ task)

let lang_concurrent ~lang s task =
  let domains = s.domains in
  match lang with
  | "qs" -> scoop_concurrent ~config:Scoop.Config.all s task
  | "cxx" -> (
    match task with
    | "mutex" -> Conc_locks.mutex ~domains ~n:s.n ~m:s.m
    | "prodcons" -> Conc_locks.prodcons ~domains ~n:s.n ~m:s.m
    | "condition" -> Conc_locks.condition ~domains ~n:s.n ~m:s.m
    | "threadring" -> Conc_locks.threadring ~domains ~n:s.nring ~nt:s.nt
    | "chameneos" -> Conc_locks.chameneos ~domains ~creatures:s.creatures ~nc:s.nc
    | _ -> invalid_arg task)
  | "go" -> (
    match task with
    | "mutex" -> Conc_chan.mutex ~domains ~n:s.n ~m:s.m
    | "prodcons" -> Conc_chan.prodcons ~domains ~n:s.n ~m:s.m
    | "condition" -> Conc_chan.condition ~domains ~n:s.n ~m:s.m
    | "threadring" -> Conc_chan.threadring ~domains ~n:s.nring ~nt:s.nt
    | "chameneos" -> Conc_chan.chameneos ~domains ~creatures:s.creatures ~nc:s.nc
    | _ -> invalid_arg task)
  | "haskell" -> (
    match task with
    | "mutex" -> Conc_stm.mutex ~domains ~n:s.n ~m:s.m
    | "prodcons" -> Conc_stm.prodcons ~domains ~n:s.n ~m:s.m
    | "condition" -> Conc_stm.condition ~domains ~n:s.n ~m:s.m
    | "threadring" -> Conc_stm.threadring ~domains ~n:s.nring ~nt:s.nt
    | "chameneos" -> Conc_stm.chameneos ~domains ~creatures:s.creatures ~nc:s.nc
    | _ -> invalid_arg task)
  | "erlang" -> (
    match task with
    | "mutex" -> Conc_actors.mutex ~domains ~n:s.n ~m:s.m
    | "prodcons" -> Conc_actors.prodcons ~domains ~n:s.n ~m:s.m
    | "condition" -> Conc_actors.condition ~domains ~n:s.n ~m:s.m
    | "threadring" -> Conc_actors.threadring ~domains ~n:s.nring ~nt:s.nt
    | "chameneos" -> Conc_actors.chameneos ~domains ~creatures:s.creatures ~nc:s.nc
    | _ -> invalid_arg task)
  | _ -> invalid_arg ("unknown language " ^ lang)

(* -- measured matrices ----------------------------------------------------- *)

let measure ~reps f = B.repeat ~reps f

(* Table 1 / Fig. 16: per-task communication times across optimization
   configurations, plus the normalized view. *)
let optimization_parallel s =
  List.map
    (fun task ->
      let per_config =
        List.map
          (fun config ->
            ( config.Scoop.Config.name,
              measure ~reps:s.reps (fun () -> scoop_parallel ~config s task) ))
          Scoop.Config.presets
      in
      (task, per_config))
    Paper_data.parallel_tasks

let normalize_comm per_config =
  let comms = List.map (fun (_, (t : B.timings)) -> max t.comm 1e-9) per_config in
  let best = List.fold_left min infinity comms in
  List.map2 (fun (name, _) c -> (name, c /. best)) per_config comms

(* Table 2 / Fig. 17: per-task total times across configurations. *)
let optimization_concurrent s =
  List.map
    (fun task ->
      let per_config =
        List.map
          (fun config ->
            ( config.Scoop.Config.name,
              measure ~reps:s.reps (fun () -> scoop_concurrent ~config s task) ))
          Scoop.Config.presets
      in
      (task, per_config))
    Paper_data.concurrent_tasks

(* Fig. 18 / Table 4 (measured at this machine's scale): per-language
   totals and compute times for the parallel tasks. *)
let language_parallel ?domains s =
  List.map
    (fun task ->
      let per_lang =
        List.map
          (fun lang ->
            (lang, measure ~reps:s.reps (fun () -> lang_parallel ~lang ?domains s task)))
          Paper_data.languages
      in
      (task, per_lang))
    Paper_data.parallel_tasks

(* Fig. 20 / Table 5 (measured): per-language totals for the concurrent
   tasks. *)
let language_concurrent s =
  List.map
    (fun task ->
      let per_lang =
        List.map
          (fun lang ->
            (lang, measure ~reps:s.reps (fun () -> lang_concurrent ~lang s task)))
          Paper_data.languages
      in
      (task, per_lang))
    Paper_data.concurrent_tasks

(* §4.4: geometric mean of every benchmark's total per configuration. *)
let optimization_geomeans ~parallel ~concurrent =
  List.map
    (fun config ->
      let name = config.Scoop.Config.name in
      let totals =
        List.concat_map
          (fun (_, per) ->
            [ (List.assoc name per : B.timings).B.total ])
          (parallel @ concurrent)
      in
      (name, B.geomean totals))
    Scoop.Config.presets

let language_geomeans results =
  List.map
    (fun lang ->
      let totals =
        List.map (fun (_, per) -> (List.assoc lang per : B.timings).B.total) results
      in
      (lang, B.geomean totals))
    Paper_data.languages

(* §4.5: the EVE retrofit — eve-base (production-like runtime) vs eve-qs
   (QoQ + Dynamic retrofitted), both with the EVE handicaps. *)
let eve_experiment s =
  let run config =
    let parallel =
      List.map
        (fun task ->
          (task, measure ~reps:s.reps (fun () -> scoop_parallel ~config s task)))
        Paper_data.parallel_tasks
    in
    let concurrent =
      List.map
        (fun task ->
          (task, measure ~reps:s.reps (fun () -> scoop_concurrent ~config s task)))
        Paper_data.concurrent_tasks
    in
    (parallel, concurrent)
  in
  let base_p, base_c = run Scoop.Config.eve_base in
  let qs_p, qs_c = run Scoop.Config.eve_qs in
  let speedups base qs =
    List.map2
      (fun (task, (b : B.timings)) (_, (q : B.timings)) ->
        (task, b.B.total /. max q.B.total 1e-9))
      base qs
  in
  let par = speedups base_p qs_p and conc = speedups base_c qs_c in
  let geo xs = B.geomean (List.map snd xs) in
  ( par,
    conc,
    [ ("parallel", geo par); ("concurrent", geo conc); ("overall", geo (par @ conc)) ]
  )
