(** Shared benchmark plumbing: timings, phases, splitting, statistics. *)

type timings = {
  total : float;
  compute : float;
  comm : float;
}

val zero : timings
val now : unit -> float

(** Phase accounting: attribute regions of a run to computation or
    communication (paper §5.2 distinguishes the two). *)
type phases

val start_phases : unit -> phases
val compute_phase : phases -> (unit -> 'a) -> 'a
val comm_phase : phases -> (unit -> 'a) -> 'a
val finish_phases : phases -> timings

val timed : (unit -> 'a) -> 'a * float

val split : int -> int -> (int * int) list
(** [split n parts] divides [0, n) into contiguous [(lo, hi)] ranges. *)

val median : float list -> float
val repeat : reps:int -> (unit -> timings) -> timings
(** Run [reps] times, return the run with the median total. *)

val geomean : float list -> float

exception Validation_failed of string

val validate : string -> expected:string -> actual:string -> unit
val validate_int : string -> expected:int -> actual:int -> unit
val validate_float : string -> expected:float -> actual:float -> unit
