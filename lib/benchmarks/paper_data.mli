(** The paper's published measurements, transcribed: Tables 1, 2, 3, 4, 5
    and the §4.4/§4.5/§5 geometric means.  Used by the report printers
    (paper-vs-measured) and by the simulator's calibration. *)

val parallel_tasks : string list
val concurrent_tasks : string list
val opt_configs : string list
val languages : string list

val table1 : (string * (string * float) list) list
(** Normalized parallel communication times per configuration. *)

val table2 : (string * (string * float) list) list
(** Concurrent benchmark seconds per configuration. *)

val section44_geomeans : (string * float) list
val eve_speedups : (string * float) list

type t4_row = {
  t4_task : string;
  t4_lang : string;
  t4_variant : [ `Total | `Compute ];
  t4_times : float array; (** threads 1, 2, 4, 8, 16, 32 *)
}

val table4 : t4_row list

val table4_lookup :
  task:string -> lang:string -> variant:[ `Total | `Compute ] -> t4_row option

val table5 : (string * (string * float) list) list
(** Concurrent benchmark seconds per language. *)

val parallel_total_geomeans : (string * float) list
val parallel_compute_geomeans : (string * float) list
val concurrent_geomeans : (string * float) list
val overall_geomeans : (string * float) list

val table3 : (string * string * string * string * string * string) list
(** Language / races / threads / paradigm / memory / approach. *)
