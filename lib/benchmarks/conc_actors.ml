(* The coordination benchmarks in Erlang style — every piece of shared
   state is owned by a server actor; clients are actors exchanging
   request/reply messages (paper §5.3).  Coordination messages are small
   immutable values, so the copy-on-send is the identity, as it
   effectively is for small terms in Erlang. *)

module B = Bench_types
module A = Qs_actors.Actor

let timed_run ~domains main =
  Qs_sched.Sched.run ~domains (fun () ->
    let ph = B.start_phases () in
    B.compute_phase ph (fun () -> main ());
    B.finish_phases ph)

(* Counter server: n clients send increment requests and await the ack. *)
let mutex ~domains ~n ~m =
  timed_run ~domains (fun () ->
    let counter = ref 0 in
    let server =
      A.spawn (fun self ->
        for _ = 1 to n * m do
          let (reply : int A.t) = A.receive self in
          incr counter;
          A.send reply !counter
        done)
    in
    let latch = Qs_sched.Latch.create n in
    for _ = 1 to n do
      ignore
        (A.spawn (fun self ->
           for _ = 1 to m do
             A.send server self;
             ignore (A.receive self : int)
           done;
           Qs_sched.Latch.count_down latch)
          : int A.t)
    done;
    Qs_sched.Latch.wait latch;
    A.join server;
    B.validate_int "mutex/actors" ~expected:(n * m) ~actual:!counter)

type 'reply buffer_msg =
  | Push of int
  | Pop of 'reply

(* Queue server with Erlang-style pending receivers: a Pop on an empty
   queue is parked inside the server until a Push arrives (what selective
   receive gives Erlang for free). *)
let prodcons ~domains ~n ~m =
  timed_run ~domains (fun () ->
    let consumed = Atomic.make 0 in
    let server =
      A.spawn (fun self ->
        let queue = Queue.create () in
        let pending = Queue.create () in
        let served = ref 0 in
        while !served < n * m do
          (match A.receive self with
          | Push v ->
            if Queue.is_empty pending then Queue.push v queue
            else begin
              A.send (Queue.pop pending) v;
              incr served
            end
          | Pop reply ->
            if Queue.is_empty queue then Queue.push reply pending
            else begin
              A.send reply (Queue.pop queue);
              incr served
            end)
        done)
    in
    let latch = Qs_sched.Latch.create (2 * n) in
    for i = 1 to n do
      ignore
        (A.spawn (fun _self ->
           for k = 1 to m do
             A.send server (Push ((i * m) + k))
           done;
           Qs_sched.Latch.count_down latch)
          : int A.t buffer_msg A.t);
      ignore
        (A.spawn (fun (self : int A.t) ->
           for _ = 1 to m do
             A.send server (Pop self);
             ignore (A.receive self : int);
             Atomic.incr consumed
           done;
           Qs_sched.Latch.count_down latch)
          : int A.t)
    done;
    Qs_sched.Latch.wait latch;
    A.join server;
    B.validate_int "prodcons/actors" ~expected:(n * m)
      ~actual:(Atomic.get consumed))

let condition ~domains ~n ~m =
  timed_run ~domains (fun () ->
    let counter = ref 0 in
    let target = 2 * n * m in
    let server =
      A.spawn (fun self ->
        while !counter < target do
          let parity, (reply : bool A.t) = A.receive self in
          if !counter mod 2 = parity then begin
            incr counter;
            A.send reply true
          end
          else A.send reply false
        done)
    in
    let latch = Qs_sched.Latch.create (2 * n) in
    for w = 0 to (2 * n) - 1 do
      let parity = w mod 2 in
      ignore
        (A.spawn (fun (self : bool A.t) ->
           let rec attempt remaining =
             if remaining > 0 then begin
               A.send server (parity, self);
               if A.receive self then attempt (remaining - 1)
               else begin
                 Qs_sched.Sched.yield ();
                 attempt remaining
               end
             end
           in
           attempt m;
           Qs_sched.Latch.count_down latch)
          : bool A.t)
    done;
    Qs_sched.Latch.wait latch;
    A.join server;
    B.validate_int "condition/actors" ~expected:target ~actual:!counter)

let threadring ~domains ~n ~nt =
  timed_run ~domains (fun () ->
    let winner = Qs_sched.Ivar.create () in
    let latch = Qs_sched.Latch.create n in
    (* Build the ring of actors; each knows its successor through a
       forwarding cell filled once all are spawned. *)
    let cells : int A.t option array = Array.make n None in
    for i = 0 to n - 1 do
      let actor =
        A.spawn (fun self ->
          let next () = Option.get cells.((i + 1) mod n) in
          let rec serve () =
            let k = A.receive self in
            if k = 0 then begin
              Qs_sched.Ivar.fill winner i;
              A.send (next ()) (-1)
            end
            else if k < 0 then A.send (next ()) (-1)
            else begin
              A.send (next ()) (k - 1);
              serve ()
            end
          in
          serve ();
          Qs_sched.Latch.count_down latch)
      in
      cells.(i) <- Some actor
    done;
    A.send (Option.get cells.(0)) nt;
    Qs_sched.Latch.wait latch;
    B.validate_int "threadring/actors" ~expected:(nt mod n)
      ~actual:(Qs_sched.Ivar.read winner))

type meet_msg = Meet of int * int A.t (* colour, creature mailbox *)

let chameneos ~domains ~creatures ~nc =
  timed_run ~domains (fun () ->
    let met = Atomic.make 0 in
    let broker =
      A.spawn (fun self ->
        let stops = ref 0 in
        let rec serve count held =
          if count >= nc then begin
            (match held with
            | Some (_, reply) ->
              A.send reply (-1);
              incr stops
            | None -> ());
            (* Reply Stop to every creature's next request. *)
            while !stops < creatures do
              let (Meet (_, reply)) = A.receive self in
              A.send reply (-1);
              incr stops
            done
          end
          else
            match held with
            | None ->
              let (Meet (c, reply)) = A.receive self in
              serve count (Some (c, reply))
            | Some (c1, r1) ->
              let (Meet (c2, r2)) = A.receive self in
              A.send r1 c2;
              A.send r2 c1;
              serve (count + 1) None
        in
        serve 0 None)
    in
    let latch = Qs_sched.Latch.create creatures in
    for id = 0 to creatures - 1 do
      ignore
        (A.spawn (fun (self : int A.t) ->
           let colour = ref (id mod 3) in
           let rec live () =
             A.send broker (Meet (!colour, self));
             let other = A.receive self in
             if other >= 0 then begin
               colour := (!colour + other) mod 3;
               Atomic.incr met;
               live ()
             end
           in
           live ();
           Qs_sched.Latch.count_down latch)
          : int A.t)
    done;
    Qs_sched.Latch.wait latch;
    A.join broker;
    B.validate_int "chameneos/actors" ~expected:(2 * nc)
      ~actual:(Atomic.get met))

