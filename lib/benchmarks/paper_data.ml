(* Reference numbers transcribed from the paper, used by the report
   printers so every regenerated table shows paper-vs-measured side by
   side, and by EXPERIMENTS.md.

   Sources: Table 1 (normalized optimization comparison, parallel),
   Table 2 (optimization times, concurrent), Table 4 (parallel language
   comparison, total and compute times, 1..32 threads), Table 5
   (concurrent language comparison), and the geometric means quoted in
   §4.4 and §5.4. *)

let parallel_tasks = [ "chain"; "outer"; "product"; "randmat"; "thresh"; "winnow" ]
let concurrent_tasks = [ "chameneos"; "condition"; "mutex"; "prodcons"; "threadring" ]
let opt_configs = [ "none"; "dynamic"; "static"; "qoq"; "all" ]
let languages = [ "cxx"; "erlang"; "go"; "haskell"; "qs" ]

(* Table 1: communication time normalized to the fastest configuration. *)
let table1 : (string * (string * float) list) list =
  [
    ( "chain",
      [ ("none", 27.70); ("dynamic", 1.13); ("static", 1.00); ("qoq", 28.81); ("all", 1.28) ] );
    ( "outer",
      [ ("none", 78.95); ("dynamic", 1.45); ("static", 1.00); ("qoq", 80.44); ("all", 1.00) ] );
    ( "product",
      [ ("none", 49.99); ("dynamic", 1.33); ("static", 1.00); ("qoq", 51.18); ("all", 1.02) ] );
    ( "randmat",
      [ ("none", 345.61); ("dynamic", 3.05); ("static", 1.00); ("qoq", 353.43); ("all", 1.03) ] );
    ( "thresh",
      [ ("none", 64.54); ("dynamic", 1.33); ("static", 1.00); ("qoq", 66.08); ("all", 1.05) ] );
    ( "winnow",
      [ ("none", 53.14); ("dynamic", 1.35); ("static", 1.21); ("qoq", 54.33); ("all", 1.00) ] );
  ]

(* Table 2: times in seconds for the optimization configurations on the
   concurrent benchmarks. *)
let table2 : (string * (string * float) list) list =
  [
    ( "chameneos",
      [ ("none", 21.41); ("dynamic", 6.58); ("static", 21.58); ("qoq", 16.54); ("all", 4.80) ] );
    ( "condition",
      [ ("none", 12.41); ("dynamic", 8.93); ("static", 12.44); ("qoq", 1.78); ("all", 1.50) ] );
    ( "mutex",
      [ ("none", 0.44); ("dynamic", 0.45); ("static", 0.44); ("qoq", 0.46); ("all", 0.47) ] );
    ( "prodcons",
      [ ("none", 3.72); ("dynamic", 1.88); ("static", 3.71); ("qoq", 1.98); ("all", 1.42) ] );
    ( "threadring",
      [ ("none", 17.01); ("dynamic", 5.27); ("static", 17.08); ("qoq", 16.41); ("all", 5.80) ] );
  ]

(* §4.4: geometric means over all benchmarks per configuration. *)
let section44_geomeans =
  [ ("none", 20.70); ("dynamic", 1.99); ("static", 2.24); ("qoq", 16.21); ("all", 1.36) ]

(* §4.5: EVE/Qs retrofit speedups over the production SCOOP runtime. *)
let eve_speedups =
  [ ("concurrent", 11.7); ("parallel", 7.7); ("overall", 9.7) ]

(* Table 4: total (T) and, where reported, compute-only (C) times in
   seconds, per task, language and thread count (1, 2, 4, 8, 16, 32). *)
type t4_row = {
  t4_task : string;
  t4_lang : string;
  t4_variant : [ `Total | `Compute ];
  t4_times : float array; (* threads 1, 2, 4, 8, 16, 32 *)
}

let table4 : t4_row list =
  let r task lang variant times =
    { t4_task = task; t4_lang = lang; t4_variant = variant; t4_times = Array.of_list times }
  in
  [
    r "randmat" "cxx" `Total [ 0.44; 0.23; 0.13; 0.08; 0.06; 0.08 ];
    r "randmat" "erlang" `Total [ 30.93; 18.01; 10.20; 5.77; 4.05; 4.14 ];
    r "randmat" "erlang" `Compute [ 20.69; 11.26; 5.63; 2.99; 1.73; 1.50 ];
    r "randmat" "go" `Total [ 0.78; 0.43; 0.24; 0.14; 0.09; 0.08 ];
    r "randmat" "haskell" `Total [ 0.68; 0.43; 0.36; 0.44; 0.62; 1.03 ];
    r "randmat" "qs" `Total [ 0.72; 0.43; 0.29; 0.22; 0.21; 0.23 ];
    r "randmat" "qs" `Compute [ 0.59; 0.30; 0.15; 0.08; 0.05; 0.05 ];
    r "thresh" "cxx" `Total [ 1.00; 0.66; 0.34; 0.18; 0.12; 0.11 ];
    r "thresh" "erlang" `Total [ 31.82; 22.35; 17.77; 14.48; 12.88; 11.96 ];
    r "thresh" "erlang" `Compute [ 19.30; 10.74; 5.97; 2.77; 1.47; 0.89 ];
    r "thresh" "go" `Total [ 0.95; 0.60; 0.37; 0.22; 0.17; 0.17 ];
    r "thresh" "haskell" `Total [ 1.56; 0.96; 0.69; 0.55; 0.51; 0.50 ];
    r "thresh" "qs" `Total [ 3.71; 2.72; 2.28; 2.10; 2.11; 2.15 ];
    r "thresh" "qs" `Compute [ 1.87; 1.08; 0.54; 0.31; 0.16; 0.09 ];
    r "winnow" "cxx" `Total [ 2.04; 1.03; 0.53; 0.29; 0.18; 0.15 ];
    r "winnow" "erlang" `Total [ 31.03; 26.02; 25.04; 24.75; 24.38; 23.95 ];
    r "winnow" "erlang" `Compute [ 4.06; 2.58; 1.84; 1.46; 1.29; 1.24 ];
    r "winnow" "go" `Total [ 2.47; 1.29; 0.71; 0.46; 0.32; 0.28 ];
    r "winnow" "haskell" `Total [ 5.43; 2.77; 1.42; 0.80; 0.48; 0.52 ];
    r "winnow" "qs" `Total [ 5.16; 3.74; 3.04; 2.69; 2.58; 2.57 ];
    r "winnow" "qs" `Compute [ 2.83; 1.40; 0.72; 0.36; 0.19; 0.10 ];
    r "outer" "cxx" `Total [ 1.59; 0.83; 0.42; 0.23; 0.15; 0.14 ];
    r "outer" "erlang" `Total [ 61.57; 38.21; 21.19; 17.57; 11.67; 8.05 ];
    r "outer" "erlang" `Compute [ 40.66; 22.54; 10.45; 6.05; 3.12; 2.52 ];
    r "outer" "go" `Total [ 2.47; 1.44; 0.84; 0.57; 0.60; 0.67 ];
    r "outer" "haskell" `Total [ 5.49; 2.76; 1.40; 0.74; 0.41; 0.36 ];
    r "outer" "qs" `Total [ 2.58; 1.62; 1.15; 0.93; 0.90; 0.89 ];
    r "outer" "qs" `Compute [ 1.87; 0.93; 0.46; 0.24; 0.12; 0.06 ];
    r "product" "cxx" `Total [ 0.44; 0.23; 0.13; 0.09; 0.08; 0.12 ];
    r "product" "erlang" `Total [ 15.89; 13.94; 12.66; 12.08; 11.82; 11.33 ];
    r "product" "erlang" `Compute [ 3.35; 1.95; 0.90; 0.45; 0.24; 0.15 ];
    r "product" "go" `Total [ 0.76; 0.46; 0.29; 0.19; 0.15; 0.13 ];
    r "product" "haskell" `Total [ 0.45; 0.25; 0.16; 0.11; 0.11; 0.15 ];
    r "product" "qs" `Total [ 1.49; 1.33; 1.27; 1.24; 1.28; 1.34 ];
    r "product" "qs" `Compute [ 0.32; 0.16; 0.08; 0.04; 0.02; 0.01 ];
    r "chain" "cxx" `Total [ 5.57; 2.76; 1.42; 0.76; 0.43; 0.32 ];
    r "chain" "erlang" `Total [ 120.59; 69.00; 32.06; 18.48; 13.23; 16.01 ];
    r "chain" "erlang" `Compute [ 119.68; 68.13; 30.93; 17.75; 12.63; 15.15 ];
    r "chain" "go" `Total [ 7.39; 4.09; 2.39; 1.79; 1.93; 2.60 ];
    r "chain" "haskell" `Total [ 13.78; 7.71; 4.62; 3.30; 2.74; 2.94 ];
    r "chain" "qs" `Total [ 5.60; 2.88; 1.56; 0.97; 0.68; 0.67 ];
    r "chain" "qs" `Compute [ 5.54; 2.75; 1.40; 0.74; 0.40; 0.25 ];
  ]

let table4_lookup ~task ~lang ~variant =
  List.find_opt
    (fun r -> r.t4_task = task && r.t4_lang = lang && r.t4_variant = variant)
    table4

(* Table 5: concurrent benchmark times (seconds) per language. *)
let table5 : (string * (string * float) list) list =
  [
    ( "chameneos",
      [ ("cxx", 0.32); ("erlang", 8.67); ("go", 2.40); ("haskell", 61.97); ("qs", 4.71) ] );
    ( "condition",
      [ ("cxx", 15.92); ("erlang", 2.15); ("go", 5.95); ("haskell", 26.05); ("qs", 1.48) ] );
    ( "mutex",
      [ ("cxx", 0.14); ("erlang", 6.13); ("go", 0.17); ("haskell", 0.86); ("qs", 0.47) ] );
    ( "prodcons",
      [ ("cxx", 0.40); ("erlang", 8.78); ("go", 0.66); ("haskell", 2.99); ("qs", 1.33) ] );
    ( "threadring",
      [ ("cxx", 34.13); ("erlang", 3.30); ("go", 13.98); ("haskell", 57.44); ("qs", 5.82) ] );
  ]

(* §5.2.1 / §5.3 / §5.4 geometric means. *)
let parallel_total_geomeans =
  [ ("cxx", 0.32); ("go", 0.57); ("haskell", 0.89); ("qs", 1.35); ("erlang", 18.07) ]

let parallel_compute_geomeans =
  [ ("qs", 0.29); ("cxx", 0.32); ("go", 0.57); ("haskell", 0.89); ("erlang", 4.32) ]

let concurrent_geomeans =
  [ ("cxx", 1.57); ("go", 1.82); ("qs", 1.91); ("erlang", 5.01); ("haskell", 12.20) ]

let overall_geomeans =
  [ ("cxx", 0.71); ("go", 1.02); ("qs", 1.61); ("haskell", 3.30); ("erlang", 9.51) ]

(* Table 3: language characteristics (static). *)
let table3 =
  [
    ("C++/TBB", "possible", "OS", "Imperative", "Shared", "Skeletons/traditional");
    ("Go", "possible", "light", "Imperative", "Shared", "Goroutines/channels");
    ("Haskell", "none", "light", "Functional", "STM", "STM/Repa");
    ("Erlang", "none", "light", "Functional", "Non-shared", "Actors");
    ("SCOOP/Qs", "none", "light", "O-O", "Non-shared", "Active Objects");
  ]
