(* Shared benchmark plumbing: timing records, range splitting, phase
   accounting and aggregate statistics.

   The paper distinguishes total from computation-only time for the
   parallel benchmarks ("to separate computational effects from
   communication effects"); [timings] carries both, with [comm] the
   explicitly attributed communication share. *)

type timings = {
  total : float; (* seconds *)
  compute : float;
  comm : float;
}

let zero = { total = 0.0; compute = 0.0; comm = 0.0 }

let now () = Unix.gettimeofday ()

(* Accumulating phase timers: kernels mark each phase as computation or
   communication; [finish] pins total to wall-clock. *)
type phases = {
  mutable p_compute : float;
  mutable p_comm : float;
  started : float;
}

let start_phases () = { p_compute = 0.0; p_comm = 0.0; started = now () }

let compute_phase p f =
  let t0 = now () in
  let r = f () in
  p.p_compute <- p.p_compute +. (now () -. t0);
  r

let comm_phase p f =
  let t0 = now () in
  let r = f () in
  p.p_comm <- p.p_comm +. (now () -. t0);
  r

let finish_phases p =
  { total = now () -. p.started; compute = p.p_compute; comm = p.p_comm }

let timed f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

(* Split [n] items into [parts] contiguous ranges (lo, hi); empty input
   yields no ranges. *)
let split n parts =
  if n <= 0 then []
  else begin
    let parts = max 1 (min n parts) in
    let base = n / parts and extra = n mod parts in
    List.init parts (fun i ->
      let lo = (i * base) + min i extra in
      let hi = lo + base + if i < extra then 1 else 0 in
      (lo, hi))
  end

let median xs =
  match List.sort compare xs with
  | [] -> invalid_arg "median: empty"
  | sorted -> List.nth sorted (List.length sorted / 2)

(* Median-by-total over repetitions of a benchmark thunk. *)
let repeat ~reps f =
  let results = List.init (max 1 reps) (fun _ -> f ()) in
  let totals = List.map (fun t -> t.total) results in
  let m = median totals in
  (* Return the run whose total is the median. *)
  List.find (fun t -> t.total = m) results

let geomean = function
  | [] -> invalid_arg "geomean: empty"
  | xs ->
    let n = float_of_int (List.length xs) in
    exp (List.fold_left (fun acc x -> acc +. log (max x 1e-12)) 0.0 xs /. n)

exception Validation_failed of string

let validate name ~expected ~actual =
  if expected <> actual then
    raise
      (Validation_failed
         (Printf.sprintf "%s: expected %s, got %s" name expected actual))

let validate_int name ~expected ~actual =
  validate name ~expected:(string_of_int expected)
    ~actual:(string_of_int actual)

let validate_float name ~expected ~actual =
  let close =
    expected = actual
    || abs_float (expected -. actual)
       <= 1e-6 *. (1.0 +. abs_float expected +. abs_float actual)
  in
  if not close then
    raise
      (Validation_failed
         (Printf.sprintf "%s: expected %.9g, got %.9g" name expected actual))
