(* The Cowichan benchmarks on raw shared-memory fork/join — the C++/TBB
   comparator (paper §5, Table 3: OS/light threads, shared memory, no race
   protection).  Workers write directly into the shared output arrays; all
   time is computation, there is no communication phase at all.  This is
   the fastest expressible version and the baseline the SCOOP/Qs numbers
   are held against in Fig. 18 / Table 4. *)

module B = Bench_types
module C = Qs_workloads.Cowichan
module P = Qs_sched.Parfor

let run ~domains f = Qs_sched.Sched.run ~domains f

let finish ph = B.finish_phases ph

let randmat ~domains ~workers ~nr ~seed =
  run ~domains (fun () ->
    let m = Array.make (nr * nr) 0 in
    let ph = B.start_phases () in
    B.compute_phase ph (fun () ->
      P.for_range ~chunks:workers 0 nr (fun lo hi ->
        C.randmat_rows ~seed ~nr m ~lo ~hi));
    B.validate_int "randmat/parfor"
      ~expected:(C.checksum_int (C.randmat ~seed ~nr))
      ~actual:(C.checksum_int m);
    finish ph)

let thresh ~domains ~workers ~nr ~p ~seed =
  let input = C.randmat ~seed ~nr in
  let expected_threshold, expected_mask = C.thresh ~nr input ~p in
  run ~domains (fun () ->
    let mask = Bytes.make (nr * nr) '\000' in
    let ph = B.start_phases () in
    let threshold =
      B.compute_phase ph (fun () ->
        let hist =
          P.reduce_range ~chunks:workers 0 nr
            ~neutral:(Array.make C.modulus 0)
            ~chunk:(fun lo hi -> C.thresh_hist ~nr input ~lo ~hi)
            ~combine:C.merge_hist
        in
        let threshold = C.thresh_threshold ~hist ~total:(nr * nr) ~p in
        P.for_range ~chunks:workers 0 nr (fun lo hi ->
          C.thresh_mask_rows ~nr input ~threshold mask ~lo ~hi);
        threshold)
    in
    B.validate_int "thresh.threshold/parfor" ~expected:expected_threshold
      ~actual:threshold;
    B.validate_int "thresh.mask/parfor"
      ~expected:(C.checksum_mask expected_mask)
      ~actual:(C.checksum_mask mask);
    finish ph)

let winnow ~domains ~workers ~nr ~p ~nw ~seed =
  let input = C.randmat ~seed ~nr in
  let _, mask = C.thresh ~nr input ~p in
  let expected = C.winnow ~nr input mask ~nw in
  run ~domains (fun () ->
    let ph = B.start_phases () in
    let points =
      B.compute_phase ph (fun () ->
        let candidates =
          P.reduce_range ~chunks:workers 0 nr ~neutral:[]
            ~chunk:(fun lo hi -> C.winnow_collect ~nr input mask ~lo ~hi ())
            ~combine:(fun a b -> a @ b)
        in
        let a = Array.of_list candidates in
        Array.sort compare a;
        C.winnow_select a ~nw)
    in
    B.validate_int "winnow/parfor"
      ~expected:(C.checksum_points expected)
      ~actual:(C.checksum_points points);
    finish ph)

let outer ~domains ~workers ~n ~range =
  let points = C.synthetic_points ~n ~range in
  let expected_m, expected_v = C.outer points in
  run ~domains (fun () ->
    let matrix = Array.make (n * n) 0.0 and vector = Array.make n 0.0 in
    let ph = B.start_phases () in
    B.compute_phase ph (fun () ->
      P.for_range ~chunks:workers 0 n (fun lo hi ->
        C.outer_rows points matrix vector ~lo ~hi));
    B.validate_float "outer/parfor"
      ~expected:(C.checksum_float expected_m +. C.checksum_float expected_v)
      ~actual:(C.checksum_float matrix +. C.checksum_float vector);
    finish ph)

let product ~domains ~workers ~n ~range =
  let points = C.synthetic_points ~n ~range in
  let matrix, vector = C.outer points in
  let expected = C.product ~n matrix vector in
  run ~domains (fun () ->
    let result = Array.make n 0.0 in
    let ph = B.start_phases () in
    B.compute_phase ph (fun () ->
      P.for_range ~chunks:workers 0 n (fun lo hi ->
        C.product_rows ~n matrix vector result ~lo ~hi));
    B.validate_float "product/parfor"
      ~expected:(C.checksum_float expected)
      ~actual:(C.checksum_float result);
    finish ph)

let chain ~domains ~workers ~nr ~p ~nw ~seed =
  let expected = C.chain ~seed ~nr ~p ~nw in
  run ~domains (fun () ->
    let ph = B.start_phases () in
    let result =
      B.compute_phase ph (fun () ->
        let m = Array.make (nr * nr) 0 in
        P.for_range ~chunks:workers 0 nr (fun lo hi ->
          C.randmat_rows ~seed ~nr m ~lo ~hi);
        let hist =
          P.reduce_range ~chunks:workers 0 nr
            ~neutral:(Array.make C.modulus 0)
            ~chunk:(fun lo hi -> C.thresh_hist ~nr m ~lo ~hi)
            ~combine:C.merge_hist
        in
        let threshold = C.thresh_threshold ~hist ~total:(nr * nr) ~p in
        let mask = Bytes.make (nr * nr) '\000' in
        P.for_range ~chunks:workers 0 nr (fun lo hi ->
          C.thresh_mask_rows ~nr m ~threshold mask ~lo ~hi);
        let candidates =
          P.reduce_range ~chunks:workers 0 nr ~neutral:[]
            ~chunk:(fun lo hi -> C.winnow_collect ~nr m mask ~lo ~hi ())
            ~combine:(fun a b -> a @ b)
        in
        let ca = Array.of_list candidates in
        Array.sort compare ca;
        let points = C.winnow_select ca ~nw in
        let n = Array.length points in
        let matrix = Array.make (n * n) 0.0 and vector = Array.make n 0.0 in
        P.for_range ~chunks:workers 0 n (fun lo hi ->
          C.outer_rows points matrix vector ~lo ~hi);
        let result = Array.make n 0.0 in
        P.for_range ~chunks:workers 0 n (fun lo hi ->
          C.product_rows ~n matrix vector result ~lo ~hi);
        result)
    in
    B.validate_float "chain/parfor"
      ~expected:(C.checksum_float expected)
      ~actual:(C.checksum_float result);
    finish ph)
