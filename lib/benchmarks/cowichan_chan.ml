(* The Cowichan benchmarks in Go style — goroutines computing fresh chunks
   and streaming them back over channels (paper §5, Table 3: light
   threads, shared memory, channels).  Inputs are shared by reference (Go
   permits shared memory); results travel through a buffered channel and
   are assembled by the master, so the coordination cost is one channel
   round trip per chunk. *)

module B = Bench_types
module C = Qs_workloads.Cowichan
module Ch = Qs_chan.Channel

let run ~domains f = Qs_sched.Sched.run ~domains f

(* Fan out chunk computations to goroutines; gather over a channel. *)
let scatter_gather ~workers n ~compute ~store =
  let results = Ch.create ~capacity:workers () in
  let ranges = B.split n workers in
  List.iter
    (fun (lo, hi) ->
      Ch.go (fun () -> Ch.send results (lo, hi, compute lo hi)))
    ranges;
  List.iter
    (fun _ ->
      let lo, hi, chunk = Ch.recv results in
      store lo hi chunk)
    ranges

let randmat ~domains ~workers ~nr ~seed =
  run ~domains (fun () ->
    let m = Array.make (nr * nr) 0 in
    let ph = B.start_phases () in
    B.compute_phase ph (fun () ->
      scatter_gather ~workers nr
        ~compute:(fun lo hi ->
          let chunk = Array.make ((hi - lo) * nr) 0 in
          C.randmat_chunk ~seed ~nr ~lo ~hi chunk;
          chunk)
        ~store:(fun lo hi chunk -> Array.blit chunk 0 m (lo * nr) ((hi - lo) * nr)));
    B.validate_int "randmat/chan"
      ~expected:(C.checksum_int (C.randmat ~seed ~nr))
      ~actual:(C.checksum_int m);
    B.finish_phases ph)

let thresh ~domains ~workers ~nr ~p ~seed =
  let input = C.randmat ~seed ~nr in
  let expected_threshold, expected_mask = C.thresh ~nr input ~p in
  run ~domains (fun () ->
    let ph = B.start_phases () in
    let threshold, mask =
      B.compute_phase ph (fun () ->
        let hist = Array.make C.modulus 0 in
        scatter_gather ~workers nr
          ~compute:(fun lo hi -> C.thresh_hist ~nr input ~lo ~hi)
          ~store:(fun _ _ h ->
            for v = 0 to C.modulus - 1 do
              hist.(v) <- hist.(v) + h.(v)
            done);
        let threshold = C.thresh_threshold ~hist ~total:(nr * nr) ~p in
        let mask = Bytes.make (nr * nr) '\000' in
        scatter_gather ~workers nr
          ~compute:(fun lo hi ->
            let mb = Bytes.make ((hi - lo) * nr) '\000' in
            for k = 0 to ((hi - lo) * nr) - 1 do
              if input.((lo * nr) + k) >= threshold then Bytes.set mb k '\001'
            done;
            mb)
          ~store:(fun lo hi mb -> Bytes.blit mb 0 mask (lo * nr) ((hi - lo) * nr));
        (threshold, mask))
    in
    B.validate_int "thresh.threshold/chan" ~expected:expected_threshold
      ~actual:threshold;
    B.validate_int "thresh.mask/chan"
      ~expected:(C.checksum_mask expected_mask)
      ~actual:(C.checksum_mask mask);
    B.finish_phases ph)

let winnow ~domains ~workers ~nr ~p ~nw ~seed =
  let input = C.randmat ~seed ~nr in
  let _, mask = C.thresh ~nr input ~p in
  let expected = C.winnow ~nr input mask ~nw in
  run ~domains (fun () ->
    let ph = B.start_phases () in
    let points =
      B.compute_phase ph (fun () ->
        let all = ref [] in
        scatter_gather ~workers nr
          ~compute:(fun lo hi -> C.winnow_collect ~nr input mask ~lo ~hi ())
          ~store:(fun _ _ cs -> all := cs :: !all);
        let a = Array.of_list (List.concat !all) in
        Array.sort compare a;
        C.winnow_select a ~nw)
    in
    B.validate_int "winnow/chan"
      ~expected:(C.checksum_points expected)
      ~actual:(C.checksum_points points);
    B.finish_phases ph)

let outer ~domains ~workers ~n ~range =
  let points = C.synthetic_points ~n ~range in
  let expected_m, expected_v = C.outer points in
  run ~domains (fun () ->
    let matrix = Array.make (n * n) 0.0 and vector = Array.make n 0.0 in
    let ph = B.start_phases () in
    B.compute_phase ph (fun () ->
      scatter_gather ~workers n
        ~compute:(fun lo hi ->
          let mchunk = Array.make ((hi - lo) * n) 0.0 in
          let vchunk = Array.make (hi - lo) 0.0 in
          C.outer_chunk points ~lo ~hi mchunk vchunk;
          (mchunk, vchunk))
        ~store:(fun lo hi (mchunk, vchunk) ->
          Array.blit mchunk 0 matrix (lo * n) ((hi - lo) * n);
          Array.blit vchunk 0 vector lo (hi - lo)));
    B.validate_float "outer/chan"
      ~expected:(C.checksum_float expected_m +. C.checksum_float expected_v)
      ~actual:(C.checksum_float matrix +. C.checksum_float vector);
    B.finish_phases ph)

let product ~domains ~workers ~n ~range =
  let points = C.synthetic_points ~n ~range in
  let matrix, vector = C.outer points in
  let expected = C.product ~n matrix vector in
  run ~domains (fun () ->
    let result = Array.make n 0.0 in
    let ph = B.start_phases () in
    B.compute_phase ph (fun () ->
      scatter_gather ~workers n
        ~compute:(fun lo hi ->
          let rchunk = Array.make (hi - lo) 0.0 in
          C.product_chunk ~n
            (Array.sub matrix (lo * n) ((hi - lo) * n))
            vector ~rows:(hi - lo) rchunk;
          rchunk)
        ~store:(fun lo hi rchunk -> Array.blit rchunk 0 result lo (hi - lo)));
    B.validate_float "product/chan"
      ~expected:(C.checksum_float expected)
      ~actual:(C.checksum_float result);
    B.finish_phases ph)

let chain ~domains ~workers ~nr ~p ~nw ~seed =
  let expected = C.chain ~seed ~nr ~p ~nw in
  run ~domains (fun () ->
    let ph = B.start_phases () in
    let result =
      B.compute_phase ph (fun () ->
        let m = Array.make (nr * nr) 0 in
        scatter_gather ~workers nr
          ~compute:(fun lo hi ->
            let chunk = Array.make ((hi - lo) * nr) 0 in
            C.randmat_chunk ~seed ~nr ~lo ~hi chunk;
            chunk)
          ~store:(fun lo hi chunk ->
            Array.blit chunk 0 m (lo * nr) ((hi - lo) * nr));
        let hist = Array.make C.modulus 0 in
        scatter_gather ~workers nr
          ~compute:(fun lo hi -> C.thresh_hist ~nr m ~lo ~hi)
          ~store:(fun _ _ h ->
            for v = 0 to C.modulus - 1 do
              hist.(v) <- hist.(v) + h.(v)
            done);
        let threshold = C.thresh_threshold ~hist ~total:(nr * nr) ~p in
        let mask = Bytes.make (nr * nr) '\000' in
        scatter_gather ~workers nr
          ~compute:(fun lo hi ->
            let mb = Bytes.make ((hi - lo) * nr) '\000' in
            for k = 0 to ((hi - lo) * nr) - 1 do
              if m.((lo * nr) + k) >= threshold then Bytes.set mb k '\001'
            done;
            mb)
          ~store:(fun lo hi mb -> Bytes.blit mb 0 mask (lo * nr) ((hi - lo) * nr));
        let all = ref [] in
        scatter_gather ~workers nr
          ~compute:(fun lo hi -> C.winnow_collect ~nr m mask ~lo ~hi ())
          ~store:(fun _ _ cs -> all := cs :: !all);
        let ca = Array.of_list (List.concat !all) in
        Array.sort compare ca;
        let points = C.winnow_select ca ~nw in
        let n = Array.length points in
        let matrix = Array.make (n * n) 0.0 and vector = Array.make n 0.0 in
        scatter_gather ~workers n
          ~compute:(fun lo hi ->
            let mchunk = Array.make ((hi - lo) * n) 0.0 in
            let vchunk = Array.make (hi - lo) 0.0 in
            C.outer_chunk points ~lo ~hi mchunk vchunk;
            (mchunk, vchunk))
          ~store:(fun lo hi (mchunk, vchunk) ->
            Array.blit mchunk 0 matrix (lo * n) ((hi - lo) * n);
            Array.blit vchunk 0 vector lo (hi - lo));
        let result = Array.make n 0.0 in
        scatter_gather ~workers n
          ~compute:(fun lo hi ->
            let rchunk = Array.make (hi - lo) 0.0 in
            C.product_chunk ~n
              (Array.sub matrix (lo * n) ((hi - lo) * n))
              vector ~rows:(hi - lo) rchunk;
            rchunk)
          ~store:(fun lo hi rchunk -> Array.blit rchunk 0 result lo (hi - lo));
        result)
    in
    B.validate_float "chain/chan"
      ~expected:(C.checksum_float expected)
      ~actual:(C.checksum_float result);
    B.finish_phases ph)
