(** Table rendering: each artifact prints the measured matrix with the
    paper's reference rows interleaved for shape comparison. *)

val heading : string -> unit

val matrix :
  cols:string list ->
  ?paper:(string * float list) list ->
  (string * float list) list ->
  unit

val table1 : (string * (string * Bench_types.timings) list) list -> unit
val fig16 : (string * (string * Bench_types.timings) list) list -> unit
val table2 : (string * (string * Bench_types.timings) list) list -> unit
val table3 : unit -> unit
val table4 : (string * (string * Bench_types.timings) list) list -> unit
val table5 : (string * (string * Bench_types.timings) list) list -> unit
val geomeans_44 : (string * float) list -> unit

val geomeans_langs :
  title:string -> paper:(string * float) list -> (string * float) list -> unit

val eve :
  (string * float) list * (string * float) list * (string * float) list ->
  unit
