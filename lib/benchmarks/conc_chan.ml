(* The coordination benchmarks in Go style — goroutines and channels
   (paper §5.3).  State that Go would guard with a mutex is owned by a
   coordinator goroutine and accessed through request/reply channels, or
   by a token semaphore (a one-slot buffered channel). *)

module B = Bench_types
module Ch = Qs_chan.Channel

let timed_run ~domains main =
  Qs_sched.Sched.run ~domains (fun () ->
    let ph = B.start_phases () in
    B.compute_phase ph (fun () -> main ());
    B.finish_phases ph)

let mutex ~domains ~n ~m =
  timed_run ~domains (fun () ->
    (* A one-slot buffered channel as a token semaphore (Go's classic
       channel-based mutex). *)
    let token = Ch.create ~capacity:1 () in
    Ch.send token ();
    let counter = ref 0 in
    let latch = Qs_sched.Latch.create n in
    for _ = 1 to n do
      Ch.go (fun () ->
        for _ = 1 to m do
          Ch.recv token;
          incr counter;
          Ch.send token ()
        done;
        Qs_sched.Latch.count_down latch)
    done;
    Qs_sched.Latch.wait latch;
    B.validate_int "mutex/chan" ~expected:(n * m) ~actual:!counter)

let prodcons ~domains ~n ~m =
  timed_run ~domains (fun () ->
    (* The unbounded shared queue is a buffered channel big enough never
       to block producers (the paper's queue "has no upper limit"). *)
    let queue = Ch.create ~capacity:(n * m) () in
    let latch = Qs_sched.Latch.create (2 * n) in
    let consumed = Atomic.make 0 in
    for i = 1 to n do
      Ch.go (fun () ->
        for k = 1 to m do
          Ch.send queue ((i * m) + k)
        done;
        Qs_sched.Latch.count_down latch);
      Ch.go (fun () ->
        for _ = 1 to m do
          ignore (Ch.recv queue : int);
          Atomic.incr consumed
        done;
        Qs_sched.Latch.count_down latch)
    done;
    Qs_sched.Latch.wait latch;
    B.validate_int "prodcons/chan" ~expected:(n * m)
      ~actual:(Atomic.get consumed))

let condition ~domains ~n ~m =
  timed_run ~domains (fun () ->
    (* A coordinator goroutine owns the counter; workers request a
       parity-gated increment and retry on refusal. *)
    let requests = Ch.create ~capacity:(2 * n) () in
    let counter = ref 0 in
    let target = 2 * n * m in
    Ch.go (fun () ->
      let rec serve () =
        if !counter < target then begin
          let parity, (reply : bool Ch.t) = Ch.recv requests in
          if !counter mod 2 = parity then begin
            incr counter;
            Ch.send reply true
          end
          else Ch.send reply false;
          serve ()
        end
      in
      serve ());
    let latch = Qs_sched.Latch.create (2 * n) in
    for w = 0 to (2 * n) - 1 do
      let parity = w mod 2 in
      Ch.go (fun () ->
        let reply = Ch.create ~capacity:1 () in
        let rec attempt remaining =
          if remaining > 0 then begin
            Ch.send requests (parity, reply);
            if Ch.recv reply then attempt (remaining - 1)
            else begin
              Qs_sched.Sched.yield ();
              attempt remaining
            end
          end
        in
        attempt m;
        Qs_sched.Latch.count_down latch)
    done;
    Qs_sched.Latch.wait latch;
    B.validate_int "condition/chan" ~expected:target ~actual:!counter)

let threadring ~domains ~n ~nt =
  timed_run ~domains (fun () ->
    (* The classic shootout shape: a ring of goroutines connected by
       unbuffered channels. *)
    let links = Array.init n (fun _ -> Ch.create ()) in
    let winner = Qs_sched.Ivar.create () in
    let latch = Qs_sched.Latch.create n in
    for i = 0 to n - 1 do
      Ch.go (fun () ->
        let inbox = links.(i) and outbox = links.((i + 1) mod n) in
        let rec serve () =
          let k = Ch.recv inbox in
          if k = 0 then begin
            Qs_sched.Ivar.fill winner i;
            (* Send the shutdown wave and absorb it when it returns (the
               links are rendezvous channels, so the last forwarder needs
               this node to still be receiving). *)
            Ch.send outbox (-1);
            ignore (Ch.recv inbox : int)
          end
          else if k < 0 then Ch.send outbox (-1)
          else begin
            Ch.send outbox (k - 1);
            serve ()
          end
        in
        serve ();
        Qs_sched.Latch.count_down latch)
    done;
    Ch.go (fun () -> Ch.send links.(0) nt);
    Qs_sched.Latch.wait latch;
    B.validate_int "threadring/chan" ~expected:(nt mod n)
      ~actual:(Qs_sched.Ivar.read winner))

type meet_request = {
  colour : int;
  reply : int Ch.t; (* partner colour, or -1 for shutdown *)
}

let chameneos ~domains ~creatures ~nc =
  timed_run ~domains (fun () ->
    let meet = Ch.create () in
    let met = Atomic.make 0 in
    (* Broker goroutine pairs consecutive requests. *)
    Ch.go (fun () ->
      let rec serve count held =
        if count >= nc then begin
          (match held with
          | Some r -> Ch.send r.reply (-1)
          | None -> ());
          Ch.close meet
        end
        else
          match held with
          | None -> serve count (Some (Ch.recv meet))
          | Some first ->
            let second = Ch.recv meet in
            Ch.send first.reply second.colour;
            Ch.send second.reply first.colour;
            serve (count + 1) None
      in
      serve 0 None);
    let latch = Qs_sched.Latch.create creatures in
    for id = 0 to creatures - 1 do
      Ch.go (fun () ->
        let colour = ref (id mod 3) in
        let reply = Ch.create ~capacity:1 () in
        let rec live () =
          match Ch.send meet { colour = !colour; reply } with
          | () ->
            let other = Ch.recv reply in
            if other >= 0 then begin
              colour := (!colour + other) mod 3;
              Atomic.incr met;
              live ()
            end
          | exception Ch.Closed -> ()
        in
        live ();
        Qs_sched.Latch.count_down latch)
    done;
    Qs_sched.Latch.wait latch;
    B.validate_int "chameneos/chan" ~expected:(2 * nc) ~actual:(Atomic.get met))
