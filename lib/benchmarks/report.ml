(* Table rendering for the benchmark harness: every regenerated artifact
   prints the measured matrix next to the paper's reference numbers so the
   shape comparison is immediate. *)

module B = Bench_types

let hr width = print_endline (String.make width '-')

let heading title =
  print_newline ();
  print_endline title;
  hr (String.length title)

let fmt_float v =
  if Float.is_integer v && Float.abs v < 1e6 then Printf.sprintf "%.0f." v
  else if Float.abs v >= 100.0 then Printf.sprintf "%.1f" v
  else if Float.abs v >= 1.0 then Printf.sprintf "%.2f" v
  else Printf.sprintf "%.4f" v

(* A labelled matrix: rows of (name, values), one column per [cols] entry.
   [paper] rows with matching names are interleaved for comparison. *)
let matrix ~cols ?(paper = []) rows =
  let col_width = 10 in
  let name_width = 22 in
  let print_cells name cells =
    Printf.printf "%-*s" name_width name;
    List.iter (fun c -> Printf.printf "%*s" col_width c) cells;
    print_newline ()
  in
  print_cells "" cols;
  List.iter
    (fun (name, values) ->
      print_cells name (List.map fmt_float values);
      match List.assoc_opt name paper with
      | Some ref_values ->
        print_cells "  (paper)" (List.map fmt_float ref_values)
      | None -> ())
    rows

(* Rows from the harness's (task * (variant * timings) list) results. *)
let rows_of ~cols ~value results =
  List.map
    (fun (task, per) ->
      (task, List.map (fun col -> value (List.assoc col per : B.timings)) cols))
    results

let paper_rows_of ~cols table =
  List.map
    (fun (task, per) -> (task, List.map (fun col -> List.assoc col per) cols))
    table

let table1 results =
  heading
    "Table 1 / Fig. 16 — parallel communication time, normalized to the \
     fastest configuration";
  let cols = Paper_data.opt_configs in
  let rows =
    List.map (fun (task, per) -> (task, List.map snd (Harness.normalize_comm per)))
      results
  in
  matrix ~cols ~paper:(paper_rows_of ~cols Paper_data.table1) rows

let fig16 results =
  heading "Fig. 16 — absolute communication times (seconds, this machine)";
  let cols = Paper_data.opt_configs in
  matrix ~cols (rows_of ~cols ~value:(fun t -> t.B.comm) results)

let table2 results =
  heading
    "Table 2 / Fig. 17 — concurrent benchmark times (seconds; paper rows \
     are at full scale, measured rows at this machine's scale — compare \
     shapes, not magnitudes)";
  let cols = Paper_data.opt_configs in
  matrix ~cols
    ~paper:(paper_rows_of ~cols Paper_data.table2)
    (rows_of ~cols ~value:(fun t -> t.B.total) results)

let table3 () =
  heading "Table 3 — language characteristics (static)";
  Printf.printf "%-10s %-9s %-7s %-11s %-11s %s\n" "Language" "Races"
    "Threads" "Paradigm" "Memory" "Approach";
  List.iter
    (fun (l, r, t, p, m, a) ->
      Printf.printf "%-10s %-9s %-7s %-11s %-11s %s\n" l r t p m a)
    Paper_data.table3

let table4 results =
  heading
    "Fig. 18 / Table 4 — parallel tasks per language (seconds; total and \
     compute-only; paper values at 32 cores)";
  let cols = Paper_data.languages in
  let paper_total =
    List.map
      (fun task ->
        ( task,
          List.map
            (fun lang ->
              match Paper_data.table4_lookup ~task ~lang ~variant:`Total with
              | Some r -> r.Paper_data.t4_times.(5)
              | None -> nan)
            cols ))
      Paper_data.parallel_tasks
  in
  print_endline "Total time:";
  matrix ~cols ~paper:paper_total
    (rows_of ~cols ~value:(fun t -> t.B.total) results);
  print_endline "Compute-only time:";
  matrix ~cols
    (rows_of ~cols ~value:(fun t -> t.B.compute) results)

let table5 results =
  heading
    "Fig. 20 / Table 5 — concurrent tasks per language (seconds; compare \
     shapes, not magnitudes)";
  let cols = Paper_data.languages in
  matrix ~cols
    ~paper:(paper_rows_of ~cols Paper_data.table5)
    (rows_of ~cols ~value:(fun t -> t.B.total) results)

let geomeans_44 measured =
  heading "§4.4 — geometric means per optimization configuration (seconds)";
  let cols = Paper_data.opt_configs in
  matrix ~cols
    ~paper:[ ("geomean", List.map (fun c -> List.assoc c Paper_data.section44_geomeans) cols) ]
    [ ("geomean", List.map (fun c -> List.assoc c measured) cols) ];
  let speedup =
    List.assoc "none" measured /. max (List.assoc "all" measured) 1e-9
  in
  Printf.printf
    "\nnone/all speedup: measured %.1fx   (paper: ~15x, 20.70s -> 1.36s)\n"
    speedup

let geomeans_langs ~title ~paper measured =
  heading title;
  let cols = Paper_data.languages in
  matrix ~cols
    ~paper:[ ("geomean", List.map (fun c -> List.assoc c paper) cols) ]
    [ ("geomean", List.map (fun c -> List.assoc c measured) cols) ]

let eve (par, conc, geos) =
  heading
    "§4.5 — EVE retrofit: speedup of EVE/Qs (QoQ + Dynamic) over the \
     production-like EVE runtime";
  List.iter
    (fun (task, sp) -> Printf.printf "%-22s %6.1fx\n" task sp)
    (par @ conc);
  print_newline ();
  List.iter
    (fun (group, sp) ->
      let paper = List.assoc group Paper_data.eve_speedups in
      Printf.printf "%-22s %6.1fx   (paper: %.1fx)\n" group sp paper)
    geos
