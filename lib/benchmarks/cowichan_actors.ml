(* The Cowichan benchmarks in Erlang style — share-nothing worker actors
   sending copied, list-represented results to a master actor (paper §5,
   Table 3: light threads, non-shared memory, actors).

   Two Erlang costs are modelled explicitly, following the paper's own
   diagnosis (§5.2.1):
   - data representation: workers compute with the linked-list kernels of
     [Qs_workloads.Cowichan_lists] ("forced to use linked lists to
     represent matrices");
   - copying communication: every message payload is deep-copied on send
     ("when data is sent between processes it is copied in its entirety").

   Communication time (copy + mailbox traffic + master-side assembly) is
   attributed to [comm], computation on the workers to [compute], mirroring
   the split the paper reports for Erlang in Fig. 18 / Table 4. *)

module B = Bench_types
module C = Qs_workloads.Cowichan
module CL = Qs_workloads.Cowichan_lists
module A = Qs_actors.Actor

(* Master-bound result messages.  The copy function rebuilds every list
   spine, which is what an Erlang send does. *)
type msg =
  | Ints of int * int list (* lo, flat rows *)
  | Floats of int * float list
  | Triples of (int * int * int) list
  | Hist of int array

let copy_msg = function
  | Ints (lo, values) -> Ints (lo, List.map Fun.id values)
  | Floats (lo, values) -> Floats (lo, List.map Fun.id values)
  | Triples points -> Triples (List.map Fun.id points)
  | Hist h -> Hist (Array.copy h)

(* Run [main] inside a master actor and return its result. *)
let with_master ~domains main =
  Qs_sched.Sched.run ~domains (fun () ->
    let result = ref None in
    let master = A.spawn ~copy:copy_msg (fun self -> result := Some (main self)) in
    A.join master;
    match !result with
    | Some r -> r
    | None -> failwith "cowichan_actors: master died")

(* Fan a chunk computation out to worker actors; the master receives the
   copied results.  [compute] runs on the worker (computation time);
   receiving and [store] run on the master (communication time). *)
let scatter_gather ~ph ~workers master n ~compute ~store =
  let ranges = B.split n workers in
  B.compute_phase ph (fun () ->
    List.iter
      (fun (lo, hi) ->
        ignore
          (A.spawn (fun _self -> A.send master (compute lo hi))
            : unit A.t))
      ranges);
  B.comm_phase ph (fun () ->
    List.iter (fun _ -> store (A.receive master)) ranges)

let store_ints ~nr dst = function
  | Ints (lo, values) ->
    List.iteri (fun k v -> dst.((lo * nr) + k) <- v) values
  | _ -> failwith "cowichan_actors: unexpected message"

let store_floats ~width dst = function
  | Floats (lo, values) ->
    List.iteri (fun k v -> dst.((lo * width) + k) <- v) values
  | _ -> failwith "cowichan_actors: unexpected message"

let randmat ~domains ~workers ~nr ~seed =
  with_master ~domains (fun master ->
    let m = Array.make (nr * nr) 0 in
    let ph = B.start_phases () in
    scatter_gather ~ph ~workers master nr
      ~compute:(fun lo hi -> Ints (lo, CL.randmat_chunk ~seed ~nr ~lo ~hi))
      ~store:(store_ints ~nr m);
    B.validate_int "randmat/actors"
      ~expected:(C.checksum_int (C.randmat ~seed ~nr))
      ~actual:(C.checksum_int m);
    B.finish_phases ph)

(* Workers hold no state between phases in this model, so multi-phase
   kernels re-send the input lists they need — also Erlang-faithful. *)
let thresh ~domains ~workers ~nr ~p ~seed =
  let input = C.randmat ~seed ~nr in
  let expected_threshold, expected_mask = C.thresh ~nr input ~p in
  with_master ~domains (fun master ->
    let ph = B.start_phases () in
    (* Distribute: each worker receives its rows as a copied list. *)
    let chunk_lists =
      B.comm_phase ph (fun () ->
        List.map
          (fun (lo, hi) ->
            (lo, hi, List.init ((hi - lo) * nr) (fun k -> input.((lo * nr) + k))))
          (B.split nr workers))
    in
    let hist = Array.make C.modulus 0 in
    B.compute_phase ph (fun () ->
      List.iter
        (fun (_, _, values) ->
          ignore (A.spawn (fun _ -> A.send master (Hist (CL.hist values))) : unit A.t))
        chunk_lists);
    B.comm_phase ph (fun () ->
      List.iter
        (fun _ ->
          match A.receive master with
          | Hist h ->
            for v = 0 to C.modulus - 1 do
              hist.(v) <- hist.(v) + h.(v)
            done
          | _ -> failwith "thresh/actors: unexpected message")
        chunk_lists);
    let threshold = C.thresh_threshold ~hist ~total:(nr * nr) ~p in
    let mask = Array.make (nr * nr) 0 in
    B.compute_phase ph (fun () ->
      List.iter
        (fun (lo, _, values) ->
          ignore
            (A.spawn (fun _ -> A.send master (Ints (lo, CL.mask ~threshold values)))
              : unit A.t))
        chunk_lists);
    B.comm_phase ph (fun () ->
      List.iter (fun _ -> store_ints ~nr mask (A.receive master)) chunk_lists);
    B.validate_int "thresh.threshold/actors" ~expected:expected_threshold
      ~actual:threshold;
    B.validate_int "thresh.mask/actors"
      ~expected:(C.checksum_mask expected_mask)
      ~actual:(Array.fold_left ( + ) 0 mask);
    B.finish_phases ph)

let winnow ~domains ~workers ~nr ~p ~nw ~seed =
  let input = C.randmat ~seed ~nr in
  let _, bmask = C.thresh ~nr input ~p in
  let expected = C.winnow ~nr input bmask ~nw in
  with_master ~domains (fun master ->
    let ph = B.start_phases () in
    let chunk_lists =
      B.comm_phase ph (fun () ->
        List.map
          (fun (lo, hi) ->
            let len = (hi - lo) * nr in
            let values = List.init len (fun k -> input.((lo * nr) + k)) in
            let mask =
              List.init len (fun k ->
                if Bytes.get bmask ((lo * nr) + k) = '\001' then 1 else 0)
            in
            (lo, values, mask))
          (B.split nr workers))
    in
    B.compute_phase ph (fun () ->
      List.iter
        (fun (lo, values, mask) ->
          ignore
            (A.spawn (fun _ ->
               A.send master (Triples (CL.collect ~nr ~row0:lo values mask)))
              : unit A.t))
        chunk_lists);
    let all = ref [] in
    B.comm_phase ph (fun () ->
      List.iter
        (fun _ ->
          match A.receive master with
          | Triples cs -> all := cs :: !all
          | _ -> failwith "winnow/actors: unexpected message")
        chunk_lists);
    let points =
      B.compute_phase ph (fun () ->
        let a = Array.of_list (List.concat !all) in
        Array.sort compare a;
        C.winnow_select a ~nw)
    in
    B.validate_int "winnow/actors"
      ~expected:(C.checksum_points expected)
      ~actual:(C.checksum_points points);
    B.finish_phases ph)

let outer ~domains ~workers ~n ~range =
  let points = C.synthetic_points ~n ~range in
  let expected_m, expected_v = C.outer points in
  with_master ~domains (fun master ->
    let matrix = Array.make (n * n) 0.0 and vector = Array.make n 0.0 in
    let ph = B.start_phases () in
    let ranges = B.split n workers in
    B.compute_phase ph (fun () ->
      List.iter
        (fun (lo, hi) ->
          ignore
            (A.spawn (fun _ ->
               let mrows, vslice = CL.outer_chunk points ~lo ~hi in
               A.send master (Floats (lo, mrows));
               A.send master (Floats (n + lo, vslice)))
              : unit A.t))
        ranges);
    B.comm_phase ph (fun () ->
      List.iter
        (fun _ ->
          for _ = 1 to 2 do
            match A.receive master with
            | Floats (tag, values) when tag >= n ->
              List.iteri (fun k v -> vector.(tag - n + k) <- v) values
            | Floats (lo, values) -> store_floats ~width:n matrix (Floats (lo, values))
            | _ -> failwith "outer/actors: unexpected message"
          done)
        ranges);
    B.validate_float "outer/actors"
      ~expected:(C.checksum_float expected_m +. C.checksum_float expected_v)
      ~actual:(C.checksum_float matrix +. C.checksum_float vector);
    B.finish_phases ph)

let product ~domains ~workers ~n ~range =
  let points = C.synthetic_points ~n ~range in
  let matrix, vector = C.outer points in
  let expected = C.product ~n matrix vector in
  with_master ~domains (fun master ->
    let result = Array.make n 0.0 in
    let ph = B.start_phases () in
    let chunk_lists =
      B.comm_phase ph (fun () ->
        List.map
          (fun (lo, hi) ->
            (lo, List.init ((hi - lo) * n) (fun k -> matrix.((lo * n) + k))))
          (B.split n workers))
    in
    B.compute_phase ph (fun () ->
      List.iter
        (fun (lo, mrows) ->
          ignore
            (A.spawn (fun _ ->
               A.send master (Floats (lo, CL.product_chunk ~n mrows vector)))
              : unit A.t))
        chunk_lists);
    B.comm_phase ph (fun () ->
      List.iter (fun _ -> store_floats ~width:1 result (A.receive master)) chunk_lists);
    B.validate_float "product/actors"
      ~expected:(C.checksum_float expected)
      ~actual:(C.checksum_float result);
    B.finish_phases ph)

let chain ~domains ~workers ~nr ~p ~nw ~seed =
  let expected = C.chain ~seed ~nr ~p ~nw in
  with_master ~domains (fun master ->
    let ph = B.start_phases () in
    (* randmat: workers keep nothing, so the master assembles the matrix
       and redistributes — the communication burden Erlang pays in every
       stage of the chain. *)
    let m = Array.make (nr * nr) 0 in
    scatter_gather ~ph ~workers master nr
      ~compute:(fun lo hi -> Ints (lo, CL.randmat_chunk ~seed ~nr ~lo ~hi))
      ~store:(store_ints ~nr m);
    let hist = Array.make C.modulus 0 in
    let chunk_lists =
      B.comm_phase ph (fun () ->
        List.map
          (fun (lo, hi) ->
            (lo, List.init ((hi - lo) * nr) (fun k -> m.((lo * nr) + k))))
          (B.split nr workers))
    in
    B.compute_phase ph (fun () ->
      List.iter
        (fun (_, values) ->
          ignore (A.spawn (fun _ -> A.send master (Hist (CL.hist values))) : unit A.t))
        chunk_lists);
    B.comm_phase ph (fun () ->
      List.iter
        (fun _ ->
          match A.receive master with
          | Hist h ->
            for v = 0 to C.modulus - 1 do
              hist.(v) <- hist.(v) + h.(v)
            done
          | _ -> failwith "chain/actors: unexpected message")
        chunk_lists);
    let threshold = C.thresh_threshold ~hist ~total:(nr * nr) ~p in
    B.compute_phase ph (fun () ->
      List.iter
        (fun (lo, values) ->
          ignore
            (A.spawn (fun _ ->
               let mask = CL.mask ~threshold values in
               A.send master (Triples (CL.collect ~nr ~row0:lo values mask)))
              : unit A.t))
        chunk_lists);
    let all = ref [] in
    B.comm_phase ph (fun () ->
      List.iter
        (fun _ ->
          match A.receive master with
          | Triples cs -> all := cs :: !all
          | _ -> failwith "chain/actors: unexpected message")
        chunk_lists);
    let points =
      B.compute_phase ph (fun () ->
        let a = Array.of_list (List.concat !all) in
        Array.sort compare a;
        C.winnow_select a ~nw)
    in
    let n = Array.length points in
    let matrix = Array.make (n * n) 0.0 and vector = Array.make n 0.0 in
    let ranges = B.split n workers in
    B.compute_phase ph (fun () ->
      List.iter
        (fun (lo, hi) ->
          ignore
            (A.spawn (fun _ ->
               let mrows, vslice = CL.outer_chunk points ~lo ~hi in
               A.send master (Floats (lo, mrows));
               A.send master (Floats (n + lo, vslice)))
              : unit A.t))
        ranges);
    B.comm_phase ph (fun () ->
      List.iter
        (fun _ ->
          for _ = 1 to 2 do
            match A.receive master with
            | Floats (tag, values) when tag >= n ->
              List.iteri (fun k v -> vector.(tag - n + k) <- v) values
            | Floats (lo, values) -> store_floats ~width:n matrix (Floats (lo, values))
            | _ -> failwith "chain/actors: unexpected message"
          done)
        ranges);
    let result = Array.make n 0.0 in
    let mrow_lists =
      B.comm_phase ph (fun () ->
        List.map
          (fun (lo, hi) ->
            (lo, List.init ((hi - lo) * n) (fun k -> matrix.((lo * n) + k))))
          ranges)
    in
    B.compute_phase ph (fun () ->
      List.iter
        (fun (lo, mrows) ->
          ignore
            (A.spawn (fun _ ->
               A.send master (Floats (lo, CL.product_chunk ~n mrows vector)))
              : unit A.t))
        mrow_lists);
    B.comm_phase ph (fun () ->
      List.iter (fun _ -> store_floats ~width:1 result (A.receive master)) mrow_lists);
    B.validate_float "chain/actors"
      ~expected:(C.checksum_float expected)
      ~actual:(C.checksum_float result);
    B.finish_phases ph)
