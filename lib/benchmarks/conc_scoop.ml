(* The coordination benchmarks on the SCOOP runtime (paper §4.1.2, §4.3,
   Table 2, Fig. 17), parameterized by the optimization configuration.

   These are the workloads where the queue-of-queues matters: reservation
   is a non-blocking enqueue instead of a lock acquisition, and a query
   needs one context switch instead of three (§4.3). *)

module R = Scoop.Runtime
module Reg = Scoop.Registration
module Sh = Scoop.Shared
module B = Bench_types

let timed_run ~domains ~config main =
  R.run ~domains ~config (fun rt ->
    let ph = B.start_phases () in
    B.compute_phase ph (fun () -> main rt);
    B.finish_phases ph)

(* n clients compete for a single resource, m rounds each. *)
let mutex ~config ~domains ~n ~m =
  timed_run ~domains ~config (fun rt ->
    let resource = R.processor rt in
    let counter = Sh.create resource (ref 0) in
    let latch = Qs_sched.Latch.create n in
    for _ = 1 to n do
      Qs_sched.Sched.spawn (fun () ->
        for _ = 1 to m do
          R.separate rt resource (fun reg ->
            Sh.apply reg counter (fun r -> incr r))
        done;
        Qs_sched.Latch.count_down latch)
    done;
    Qs_sched.Latch.wait latch;
    let total =
      R.separate rt resource (fun reg -> Sh.get reg counter (fun r -> !r))
    in
    B.validate_int "mutex/scoop" ~expected:(n * m) ~actual:total)

(* n producers and n consumers over an unbounded shared queue. *)
let prodcons ~config ~domains ~n ~m =
  timed_run ~domains ~config (fun rt ->
    let buffer = R.processor rt in
    let queue = Sh.create buffer (Queue.create ()) in
    let latch = Qs_sched.Latch.create (2 * n) in
    let consumed = Atomic.make 0 in
    for i = 1 to n do
      Qs_sched.Sched.spawn (fun () ->
        for k = 1 to m do
          R.separate rt buffer (fun reg ->
            Sh.apply reg queue (fun q -> Queue.push ((i * m) + k) q))
        done;
        Qs_sched.Latch.count_down latch);
      Qs_sched.Sched.spawn (fun () ->
        for _ = 1 to m do
          (* Wait condition: consumers "must wait until the queue is
             non-empty to make progress". *)
          let _item =
            R.separate_when rt buffer
              ~pred:(fun reg ->
                Sh.get reg queue (fun q -> not (Queue.is_empty q)))
              (fun reg -> Sh.get reg queue Queue.pop)
          in
          Atomic.incr consumed
        done;
        Qs_sched.Latch.count_down latch)
    done;
    Qs_sched.Latch.wait latch;
    B.validate_int "prodcons/scoop" ~expected:(n * m)
      ~actual:(Atomic.get consumed))

(* n "odd" and n "even" workers each perform m parity-gated increments. *)
let condition ~config ~domains ~n ~m =
  timed_run ~domains ~config (fun rt ->
    let proc = R.processor rt in
    let counter = Sh.create proc (ref 0) in
    let latch = Qs_sched.Latch.create (2 * n) in
    for w = 0 to (2 * n) - 1 do
      let parity = w mod 2 in
      Qs_sched.Sched.spawn (fun () ->
        for _ = 1 to m do
          (* Precondition-as-wait-condition: increment only from the
             worker's own parity. *)
          R.separate_when rt proc
            ~pred:(fun reg -> Sh.get reg counter (fun r -> !r mod 2 = parity))
            (fun reg -> Sh.apply reg counter incr)
        done;
        Qs_sched.Latch.count_down latch)
    done;
    Qs_sched.Latch.wait latch;
    let total =
      R.separate rt proc (fun reg -> Sh.get reg counter (fun r -> !r))
    in
    B.validate_int "condition/scoop" ~expected:(2 * n * m) ~actual:total)

(* Token passed around a ring of n processors nt times — asynchronous
   handler-to-handler delegation, no client in the loop. *)
let threadring ~config ~domains ~n ~nt =
  timed_run ~domains ~config (fun rt ->
    let procs = Array.init n (fun _ -> R.processor rt) in
    let finished = Qs_sched.Ivar.create () in
    let rec pass i k =
      if k = 0 then Qs_sched.Ivar.fill finished i
      else begin
        let next = (i + 1) mod n in
        R.separate rt procs.(next) (fun reg ->
          Reg.call reg (fun () -> pass next (k - 1)))
      end
    in
    R.separate rt procs.(0) (fun reg -> Reg.call reg (fun () -> pass 0 nt));
    let winner = Qs_sched.Ivar.read finished in
    B.validate_int "threadring/scoop" ~expected:(nt mod n) ~actual:winner)

(* Colour-changing chameneos meeting at a broker processor. *)
type meet_result =
  | Partner of int
  | Waiting
  | Stop

type meeting_place = {
  mutable slot : (int * int) option; (* creature id, colour *)
  results : (int, int) Hashtbl.t; (* waiting creature -> partner colour *)
  mutable meetings : int;
  target : int;
}

let chameneos ~config ~domains ~creatures ~nc =
  timed_run ~domains ~config (fun rt ->
    let broker = R.processor rt in
    let place =
      Sh.create broker
        { slot = None; results = Hashtbl.create 16; meetings = 0; target = nc }
    in
    let latch = Qs_sched.Latch.create creatures in
    let met = Atomic.make 0 in
    for id = 0 to creatures - 1 do
      Qs_sched.Sched.spawn (fun () ->
        let colour = ref (id mod 3) in
        let meet () =
          R.separate rt broker (fun reg ->
            Sh.get reg place (fun st ->
              if st.meetings >= st.target then begin
                (* Release a creature stranded in the slot. *)
                (match st.slot with
                | Some (waiter, _) ->
                  Hashtbl.replace st.results waiter (-1);
                  st.slot <- None
                | None -> ());
                Stop
              end
              else
                match st.slot with
                | None ->
                  st.slot <- Some (id, !colour);
                  Waiting
                | Some (other, other_colour) ->
                  st.slot <- None;
                  st.meetings <- st.meetings + 1;
                  Hashtbl.replace st.results other !colour;
                  Partner other_colour))
        in
        let poll () =
          let rec go () =
            let r =
              R.separate rt broker (fun reg ->
                Sh.get reg place (fun st ->
                  match Hashtbl.find_opt st.results id with
                  | Some c ->
                    Hashtbl.remove st.results id;
                    Some c
                  | None -> None))
            in
            match r with
            | Some c -> c
            | None ->
              Qs_sched.Sched.yield ();
              go ()
          in
          go ()
        in
        let rec live () =
          match meet () with
          | Stop -> ()
          | Partner other ->
            colour := (!colour + other) mod 3;
            Atomic.incr met;
            live ()
          | Waiting ->
            let other = poll () in
            if other >= 0 then begin
              colour := (!colour + other) mod 3;
              Atomic.incr met;
              live ()
            end
        in
        live ();
        Qs_sched.Latch.count_down latch)
    done;
    Qs_sched.Latch.wait latch;
    (* Each completed meeting involved two creatures. *)
    B.validate_int "chameneos/scoop" ~expected:(2 * nc) ~actual:(Atomic.get met))
