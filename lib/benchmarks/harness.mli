(** Benchmark dispatch and aggregation for the paper's evaluation.

    [scale] bundles the problem sizes (paper defaults are far beyond a
    container, see DESIGN.md); {!default} is container-sized, {!tiny} is
    for tests.  The [optimization_*] runners produce the Table 1/2
    matrices; the [language_*] runners the Table 4/5 matrices. *)

type scale = {
  nr : int;
  p : int;
  nw : int;
  n : int;
  m : int;
  nring : int;
  nt : int;
  creatures : int;
  nc : int;
  domains : int;
  workers : int;
  reps : int;
  seed : int;
}

val default : scale
val tiny : scale

val scoop_parallel :
  config:Scoop.Config.t -> scale -> string -> Bench_types.timings
(** Run one named Cowichan task ("randmat", "thresh", "winnow", "outer",
    "product", "chain") under a configuration. *)

val scoop_concurrent :
  config:Scoop.Config.t -> scale -> string -> Bench_types.timings
(** Run one named coordination task ("mutex", "prodcons", "condition",
    "threadring", "chameneos") under a configuration. *)

val lang_parallel :
  lang:string -> ?domains:int -> scale -> string -> Bench_types.timings
(** Run a Cowichan task under a language paradigm ("cxx", "go", "haskell",
    "erlang", "qs"). *)

val lang_concurrent : lang:string -> scale -> string -> Bench_types.timings

val optimization_parallel :
  scale -> (string * (string * Bench_types.timings) list) list
(** Table 1 / Fig. 16 data: per task, timings for each configuration. *)

val optimization_concurrent :
  scale -> (string * (string * Bench_types.timings) list) list
(** Table 2 / Fig. 17 data. *)

val language_parallel :
  ?domains:int -> scale -> (string * (string * Bench_types.timings) list) list
(** Fig. 18 / Table 4 data (measured at this machine's scale). *)

val language_concurrent :
  scale -> (string * (string * Bench_types.timings) list) list
(** Fig. 20 / Table 5 data. *)

val normalize_comm :
  (string * Bench_types.timings) list -> (string * float) list
(** Communication times normalized to the fastest variant (Table 1). *)

val optimization_geomeans :
  parallel:(string * (string * Bench_types.timings) list) list ->
  concurrent:(string * (string * Bench_types.timings) list) list ->
  (string * float) list
(** §4.4 geometric means per configuration. *)

val language_geomeans :
  (string * (string * Bench_types.timings) list) list -> (string * float) list

val eve_experiment :
  scale ->
  (string * float) list * (string * float) list * (string * float) list
(** §4.5: per-task EVE/Qs-over-EVE-base speedups (parallel, concurrent)
    and the grouped geometric means. *)

val measure : reps:int -> (unit -> Bench_types.timings) -> Bench_types.timings
