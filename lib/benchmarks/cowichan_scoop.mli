(** The Cowichan parallel benchmarks on the SCOOP runtime, parameterized
    by optimization configuration (paper §4.2, Table 1, Fig. 16).

    Each function runs one full benchmark in a fresh runtime, validates
    the result against the sequential reference and returns the timings
    with communication attributed separately.
    @raise Bench_types.Validation_failed on incorrect results. *)

val randmat :
  config:Scoop.Config.t ->
  domains:int ->
  workers:int ->
  nr:int ->
  seed:int ->
  Bench_types.timings

val thresh :
  config:Scoop.Config.t ->
  domains:int ->
  workers:int ->
  nr:int ->
  p:int ->
  seed:int ->
  Bench_types.timings

val winnow :
  config:Scoop.Config.t ->
  domains:int ->
  workers:int ->
  nr:int ->
  p:int ->
  nw:int ->
  seed:int ->
  Bench_types.timings

val outer :
  config:Scoop.Config.t ->
  domains:int ->
  workers:int ->
  n:int ->
  range:int ->
  Bench_types.timings

val product :
  config:Scoop.Config.t ->
  domains:int ->
  workers:int ->
  n:int ->
  range:int ->
  Bench_types.timings

val chain :
  config:Scoop.Config.t ->
  domains:int ->
  workers:int ->
  nr:int ->
  p:int ->
  nw:int ->
  seed:int ->
  Bench_types.timings
