(** The coordination benchmarks (paper §4.1.2) on the SCOOP runtime,
    parameterized by optimization configuration (Table 2 / Fig. 17).

    Each function runs one benchmark end to end and validates its final
    counts.  @raise Bench_types.Validation_failed on incorrect results. *)

val mutex :
  config:Scoop.Config.t -> domains:int -> n:int -> m:int -> Bench_types.timings

val prodcons :
  config:Scoop.Config.t -> domains:int -> n:int -> m:int -> Bench_types.timings

val condition :
  config:Scoop.Config.t -> domains:int -> n:int -> m:int -> Bench_types.timings

val threadring :
  config:Scoop.Config.t -> domains:int -> n:int -> nt:int -> Bench_types.timings

val chameneos :
  config:Scoop.Config.t -> domains:int -> creatures:int -> nc:int ->
  Bench_types.timings
