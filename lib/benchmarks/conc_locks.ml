(* The coordination benchmarks with classic mutex/condition-variable
   synchronization — the C++/TBB comparator (paper §5.3: traditional
   threads and locks, no safety guarantees).  Fibers stand in for OS
   threads; the primitives are [Fiber_mutex]/[Fiber_cond]. *)

module B = Bench_types
module M = Qs_sched.Fiber_mutex
module Cond = Qs_sched.Fiber_cond

let timed_run ~domains main =
  Qs_sched.Sched.run ~domains (fun () ->
    let ph = B.start_phases () in
    B.compute_phase ph (fun () -> main ());
    B.finish_phases ph)

let mutex ~domains ~n ~m =
  timed_run ~domains (fun () ->
    let lock = M.create () in
    let counter = ref 0 in
    let latch = Qs_sched.Latch.create n in
    for _ = 1 to n do
      Qs_sched.Sched.spawn (fun () ->
        for _ = 1 to m do
          M.lock lock;
          incr counter;
          M.unlock lock
        done;
        Qs_sched.Latch.count_down latch)
    done;
    Qs_sched.Latch.wait latch;
    B.validate_int "mutex/locks" ~expected:(n * m) ~actual:!counter)

let prodcons ~domains ~n ~m =
  timed_run ~domains (fun () ->
    let lock = M.create () in
    let not_empty = Cond.create () in
    let queue = Queue.create () in
    let latch = Qs_sched.Latch.create (2 * n) in
    let consumed = Atomic.make 0 in
    for i = 1 to n do
      Qs_sched.Sched.spawn (fun () ->
        for k = 1 to m do
          M.lock lock;
          Queue.push ((i * m) + k) queue;
          Cond.signal not_empty;
          M.unlock lock
        done;
        Qs_sched.Latch.count_down latch);
      Qs_sched.Sched.spawn (fun () ->
        for _ = 1 to m do
          M.lock lock;
          while Queue.is_empty queue do
            Cond.wait not_empty lock
          done;
          ignore (Queue.pop queue : int);
          Atomic.incr consumed;
          M.unlock lock
        done;
        Qs_sched.Latch.count_down latch)
    done;
    Qs_sched.Latch.wait latch;
    B.validate_int "prodcons/locks" ~expected:(n * m)
      ~actual:(Atomic.get consumed))

let condition ~domains ~n ~m =
  timed_run ~domains (fun () ->
    let lock = M.create () in
    let changed = Cond.create () in
    let counter = ref 0 in
    let latch = Qs_sched.Latch.create (2 * n) in
    for w = 0 to (2 * n) - 1 do
      let parity = w mod 2 in
      Qs_sched.Sched.spawn (fun () ->
        for _ = 1 to m do
          M.lock lock;
          while !counter mod 2 <> parity do
            Cond.wait changed lock
          done;
          incr counter;
          Cond.broadcast changed;
          M.unlock lock
        done;
        Qs_sched.Latch.count_down latch)
    done;
    Qs_sched.Latch.wait latch;
    B.validate_int "condition/locks" ~expected:(2 * n * m) ~actual:!counter)

type ring_node = {
  lock : M.t;
  arrived : Cond.t;
  mutable token : int option;
}

let threadring ~domains ~n ~nt =
  timed_run ~domains (fun () ->
    let nodes =
      Array.init n (fun _ ->
        { lock = M.create (); arrived = Cond.create (); token = None })
    in
    let winner = Qs_sched.Ivar.create () in
    let give node k =
      M.lock node.lock;
      node.token <- Some k;
      Cond.signal node.arrived;
      M.unlock node.lock
    in
    let latch = Qs_sched.Latch.create n in
    for i = 0 to n - 1 do
      Qs_sched.Sched.spawn (fun () ->
        let node = nodes.(i) in
        let next = nodes.((i + 1) mod n) in
        let rec serve () =
          M.lock node.lock;
          while node.token = None do
            Cond.wait node.arrived node.lock
          done;
          let k = Option.get node.token in
          node.token <- None;
          M.unlock node.lock;
          if k = 0 then begin
            Qs_sched.Ivar.fill winner i;
            give next (-1)
          end
          else if k < 0 then give next (-1) (* shutdown wave *)
          else begin
            give next (k - 1);
            serve ()
          end
        in
        serve ();
        Qs_sched.Latch.count_down latch)
    done;
    give nodes.(0) nt;
    Qs_sched.Latch.wait latch;
    B.validate_int "threadring/locks" ~expected:(nt mod n)
      ~actual:(Qs_sched.Ivar.read winner))

let chameneos ~domains ~creatures ~nc =
  timed_run ~domains (fun () ->
    let lock = M.create () in
    let changed = Cond.create () in
    let slot = ref None in
    let results = Hashtbl.create 16 in
    let meetings = ref 0 in
    let met = Atomic.make 0 in
    let latch = Qs_sched.Latch.create creatures in
    for id = 0 to creatures - 1 do
      Qs_sched.Sched.spawn (fun () ->
        let colour = ref (id mod 3) in
        let rec live () =
          M.lock lock;
          if !meetings >= nc then begin
            (* Release a stranded waiter, then leave. *)
            (match !slot with
            | Some (waiter, _) ->
              Hashtbl.replace results waiter (-1);
              slot := None;
              Cond.broadcast changed
            | None -> ());
            M.unlock lock
          end
          else begin
            match !slot with
            | None ->
              slot := Some (id, !colour);
              (* Wait for a partner (or shutdown). *)
              while not (Hashtbl.mem results id) do
                Cond.wait changed lock
              done;
              let other = Hashtbl.find results id in
              Hashtbl.remove results id;
              M.unlock lock;
              if other >= 0 then begin
                colour := (!colour + other) mod 3;
                Atomic.incr met;
                live ()
              end
            | Some (other_id, other_colour) ->
              slot := None;
              incr meetings;
              Hashtbl.replace results other_id !colour;
              Cond.broadcast changed;
              M.unlock lock;
              colour := (!colour + other_colour) mod 3;
              Atomic.incr met;
              live ()
          end
        in
        live ();
        Qs_sched.Latch.count_down latch)
    done;
    Qs_sched.Latch.wait latch;
    B.validate_int "chameneos/locks" ~expected:(2 * nc) ~actual:(Atomic.get met))
