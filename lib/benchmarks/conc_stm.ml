(* The coordination benchmarks on software transactional memory — the
   Haskell comparator (paper §5.3: "Haskell tends to perform the worst,
   which is likely due to the use of STM, which incurs an extra level of
   bookkeeping on every operation").  Blocking is expressed with [retry],
   exactly as the GHC versions would. *)

module B = Bench_types
module S = Qs_stm.Stm

let timed_run ~domains main =
  Qs_sched.Sched.run ~domains (fun () ->
    let ph = B.start_phases () in
    B.compute_phase ph (fun () -> main ());
    B.finish_phases ph)

let mutex ~domains ~n ~m =
  timed_run ~domains (fun () ->
    let counter = S.make 0 in
    let latch = Qs_sched.Latch.create n in
    for _ = 1 to n do
      Qs_sched.Sched.spawn (fun () ->
        for _ = 1 to m do
          S.update counter succ
        done;
        Qs_sched.Latch.count_down latch)
    done;
    Qs_sched.Latch.wait latch;
    B.validate_int "mutex/stm" ~expected:(n * m) ~actual:(S.get counter))

let prodcons ~domains ~n ~m =
  timed_run ~domains (fun () ->
    (* Functional queue in a tvar; consumers retry on empty. *)
    let queue = S.make ([], []) in
    let latch = Qs_sched.Latch.create (2 * n) in
    let consumed = Atomic.make 0 in
    for i = 1 to n do
      Qs_sched.Sched.spawn (fun () ->
        for k = 1 to m do
          S.atomically (fun tx ->
            let front, back = S.read tx queue in
            S.write tx queue (front, ((i * m) + k) :: back))
        done;
        Qs_sched.Latch.count_down latch);
      Qs_sched.Sched.spawn (fun () ->
        for _ = 1 to m do
          let _item =
            S.atomically (fun tx ->
              match S.read tx queue with
              | x :: front, back ->
                S.write tx queue (front, back);
                x
              | [], back -> (
                match List.rev back with
                | x :: front ->
                  S.write tx queue (front, []);
                  x
                | [] -> S.retry tx))
          in
          Atomic.incr consumed
        done;
        Qs_sched.Latch.count_down latch)
    done;
    Qs_sched.Latch.wait latch;
    B.validate_int "prodcons/stm" ~expected:(n * m)
      ~actual:(Atomic.get consumed))

let condition ~domains ~n ~m =
  timed_run ~domains (fun () ->
    let counter = S.make 0 in
    let latch = Qs_sched.Latch.create (2 * n) in
    for w = 0 to (2 * n) - 1 do
      let parity = w mod 2 in
      Qs_sched.Sched.spawn (fun () ->
        for _ = 1 to m do
          (* The textbook STM phrasing: block until the parity is ours. *)
          S.atomically (fun tx ->
            let c = S.read tx counter in
            if c mod 2 <> parity then S.retry tx else S.write tx counter (c + 1))
        done;
        Qs_sched.Latch.count_down latch)
    done;
    Qs_sched.Latch.wait latch;
    B.validate_int "condition/stm" ~expected:(2 * n * m)
      ~actual:(S.get counter))

let threadring ~domains ~n ~nt =
  timed_run ~domains (fun () ->
    let slots = Array.init n (fun _ -> S.make None) in
    let winner = Qs_sched.Ivar.create () in
    let latch = Qs_sched.Latch.create n in
    for i = 0 to n - 1 do
      Qs_sched.Sched.spawn (fun () ->
        let mine = slots.(i) and next = slots.((i + 1) mod n) in
        let take () =
          S.atomically (fun tx ->
            match S.read tx mine with
            | None -> S.retry tx
            | Some k ->
              S.write tx mine None;
              k)
        in
        let rec serve () =
          let k = take () in
          if k = 0 then begin
            Qs_sched.Ivar.fill winner i;
            S.set next (Some (-1))
          end
          else if k < 0 then S.set next (Some (-1))
          else begin
            S.set next (Some (k - 1));
            serve ()
          end
        in
        serve ();
        Qs_sched.Latch.count_down latch)
    done;
    S.set slots.(0) (Some nt);
    Qs_sched.Latch.wait latch;
    B.validate_int "threadring/stm" ~expected:(nt mod n)
      ~actual:(Qs_sched.Ivar.read winner))

let chameneos ~domains ~creatures ~nc =
  timed_run ~domains (fun () ->
    let slot = S.make None (* (id, colour) of the first arrival *) in
    let meetings = S.make 0 in
    let results = Array.init creatures (fun _ -> S.make None) in
    let met = Atomic.make 0 in
    let latch = Qs_sched.Latch.create creatures in
    for id = 0 to creatures - 1 do
      Qs_sched.Sched.spawn (fun () ->
        let colour = ref (id mod 3) in
        let rec live () =
          let outcome =
            S.atomically (fun tx ->
              if S.read tx meetings >= nc then begin
                (* Release a stranded first arrival. *)
                (match S.read tx slot with
                | Some (waiter, _) ->
                  S.write tx slot None;
                  S.write tx results.(waiter) (Some (-1))
                | None -> ());
                `Stop
              end
              else
                match S.read tx slot with
                | None ->
                  S.write tx slot (Some (id, !colour));
                  `Wait
                | Some (other, other_colour) ->
                  S.write tx slot None;
                  S.write tx meetings (S.read tx meetings + 1);
                  S.write tx results.(other) (Some !colour);
                  `Partner other_colour)
          in
          match outcome with
          | `Stop -> ()
          | `Partner other ->
            colour := (!colour + other) mod 3;
            Atomic.incr met;
            live ()
          | `Wait ->
            let other =
              S.atomically (fun tx ->
                match S.read tx results.(id) with
                | Some c ->
                  S.write tx results.(id) None;
                  c
                | None -> S.retry tx)
            in
            if other >= 0 then begin
              colour := (!colour + other) mod 3;
              Atomic.incr met;
              live ()
            end
        in
        live ();
        Qs_sched.Latch.count_down latch)
    done;
    Qs_sched.Latch.wait latch;
    B.validate_int "chameneos/stm" ~expected:(2 * nc) ~actual:(Atomic.get met))
