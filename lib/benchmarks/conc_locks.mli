(** The coordination benchmarks (paper §4.1.2) over mutexes and condition variables (the C++ comparator).

    Each function runs one benchmark end to end and validates its final
    counts.  @raise Bench_types.Validation_failed on incorrect results. *)

val mutex : domains:int -> n:int -> m:int -> Bench_types.timings
val prodcons : domains:int -> n:int -> m:int -> Bench_types.timings
val condition : domains:int -> n:int -> m:int -> Bench_types.timings
val threadring : domains:int -> n:int -> nt:int -> Bench_types.timings
val chameneos : domains:int -> creatures:int -> nc:int -> Bench_types.timings
