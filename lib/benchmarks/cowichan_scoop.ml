(* The Cowichan benchmarks on the SCOOP runtime (paper §4.2, Table 1,
   Fig. 16), parameterized by the optimization configuration.

   Structure per kernel (the paper's idiom, §3.4): input arrays live on a
   [main] processor; each worker processor pulls its slice from [main]
   (communication), computes on a private chunk (computation), and the
   master pulls results back out of the workers (communication).

   The pull is where the configurations diverge:
   - packaged-query configs (None, QoQ) round-trip one packaged closure
     per element (Fig. 10a);
   - client-execution configs (Dynamic) issue one sync per element, all
     but the first elided dynamically (§3.4.1);
   - hoisted configs (Static, All) issue the single sync the static pass
     proves sufficient (the `pull-loop` kernel in [Qs_syncopt.Kernels])
     and then read directly.

   Every kernel validates its output against the sequential reference. *)

module R = Scoop.Runtime
module Reg = Scoop.Registration
module Sh = Scoop.Shared
module B = Bench_types
module C = Qs_workloads.Cowichan

type ctx = {
  rt : R.t;
  cfg : Scoop.Config.t;
  main : Scoop.Processor.t;
  workers : Scoop.Processor.t list;
}

let with_ctx ~config ~domains ~workers f =
  R.run ~domains ~config (fun rt ->
    let main = R.processor rt in
    let ws = R.processors rt (max 1 workers) in
    f { rt; cfg = config; main; workers = ws })

(* A worker-owned array: the raw array (written directly by the handler
   that owns it) plus its [Shared] view for clients. *)
type 'a owned = {
  arr : 'a array;
  shared : 'a array Sh.t;
}

let own proc arr = { arr; shared = Sh.create proc arr }

(* A worker with a row range [lo, hi) and its primary data chunk. *)
type 'a chunk = {
  proc : Scoop.Processor.t;
  lo : int;
  hi : int;
  data : 'a owned;
}

let rows ch = ch.hi - ch.lo

let make_chunks ctx ~n ~width ~init =
  List.map2
    (fun proc (lo, hi) ->
      { proc; lo; hi; data = own proc (Array.make ((hi - lo) * width) init) })
    ctx.workers
    (B.split n (List.length ctx.workers))

(* Log one asynchronous task per (processor, thunk) pair, then wait for all
   of them; every task is logged before the first wait so the workers run
   in parallel. *)
let run_tasks ctx tasks =
  List.iter
    (fun (proc, task) ->
      R.separate ctx.rt proc (fun reg -> Reg.call reg task))
    tasks;
  List.iter
    (fun (proc, _) ->
      R.separate ctx.rt proc (fun reg -> Reg.query reg (fun () -> ())))
    tasks

let run_on_chunks ctx chunks task =
  run_tasks ctx (List.map (fun ch -> (ch.proc, fun () -> task ch)) chunks)

(* Pull [len] elements of a shared array into a local one: the
   communication primitive the whole of Table 1 is about. *)
let pull cfg reg shared ~dst ~src_off ~dst_off ~len =
  if cfg.Scoop.Config.hoisted then begin
    let src = Sh.read_synced reg shared in
    Array.blit src src_off dst dst_off len
  end
  else
    for k = 0 to len - 1 do
      dst.(dst_off + k) <- Sh.get reg shared (fun a -> a.(src_off + k))
    done

(* Pull a variable-length worker-produced array published through a
   shared ref cell. *)
let pull_ref cfg reg shref ~dummy =
  if cfg.Scoop.Config.hoisted then Array.copy !(Sh.read_synced reg shref)
  else begin
    let len = Sh.get reg shref (fun r -> Array.length !r) in
    let dst = Array.make len dummy in
    for k = 0 to len - 1 do
      dst.(k) <- Sh.get reg shref (fun r -> !r.(k))
    done;
    dst
  end

let pull_bytes cfg reg shared ~(dst : Bytes.t) ~dst_off ~len =
  if cfg.Scoop.Config.hoisted then begin
    let src = Sh.read_synced reg shared in
    Bytes.blit src 0 dst dst_off len
  end
  else
    for k = 0 to len - 1 do
      Bytes.set dst (dst_off + k) (Sh.get reg shared (fun b -> Bytes.get b k))
    done

(* Master-side collection: [(proc, shared, len, dst_off)] slices into a
   flat destination. *)
let collect ctx items ~dst =
  List.iter
    (fun (proc, shared, len, dst_off) ->
      R.separate ctx.rt proc (fun reg ->
        pull ctx.cfg reg shared ~dst ~src_off:0 ~dst_off ~len))
    items

let collect_chunks ctx chunks ~dst ~per =
  collect ctx
    (List.map (fun ch -> (ch.proc, ch.data.shared, rows ch * per, ch.lo * per)) chunks)
    ~dst

(* Worker-side distribution: each worker pulls its slice of an array
   hosted on [main], acting as a client of [main]'s handler. *)
let distribute_chunks ctx chunks shared ~per =
  run_on_chunks ctx chunks (fun ch ->
    R.separate ctx.rt ctx.main (fun reg ->
      pull ctx.cfg reg shared ~dst:ch.data.arr ~src_off:(ch.lo * per)
        ~dst_off:0 ~len:(rows ch * per)))

(* Worker-side full-array pull: every worker copies the whole of [shared]
   into a private destination (points, vectors). *)
let broadcast ctx targets shared =
  (* targets : (proc, dst array) list *)
  run_tasks ctx
    (List.map
       (fun (proc, dst) ->
         ( proc,
           fun () ->
             R.separate ctx.rt ctx.main (fun reg ->
               pull ctx.cfg reg shared ~dst ~src_off:0 ~dst_off:0
                 ~len:(Array.length dst)) ))
       targets)

(* -- randmat -------------------------------------------------------------- *)

let randmat ~config ~domains ~workers ~nr ~seed =
  with_ctx ~config ~domains ~workers (fun ctx ->
    let chunks = make_chunks ctx ~n:nr ~width:nr ~init:0 in
    let result = Array.make (nr * nr) 0 in
    let ph = B.start_phases () in
    B.compute_phase ph (fun () ->
      run_on_chunks ctx chunks (fun ch ->
        C.randmat_chunk ~seed ~nr ~lo:ch.lo ~hi:ch.hi ch.data.arr));
    B.comm_phase ph (fun () -> collect_chunks ctx chunks ~dst:result ~per:nr);
    B.validate_int "randmat"
      ~expected:(C.checksum_int (C.randmat ~seed ~nr))
      ~actual:(C.checksum_int result);
    B.finish_phases ph)

(* -- thresh --------------------------------------------------------------- *)

let thresh ~config ~domains ~workers ~nr ~p:percent ~seed =
  let input = C.randmat ~seed ~nr in
  let expected_threshold, expected_mask = C.thresh ~nr input ~p:percent in
  with_ctx ~config ~domains ~workers (fun ctx ->
    let input_sh = Sh.create ctx.main input in
    let chunks = make_chunks ctx ~n:nr ~width:nr ~init:0 in
    let hists = List.map (fun ch -> own ch.proc (Array.make C.modulus 0)) chunks in
    let masks =
      List.map
        (fun ch ->
          let b = Bytes.make (rows ch * nr) '\000' in
          (b, Sh.create ch.proc b))
        chunks
    in
    let mask = Bytes.make (nr * nr) '\000' in
    let ph = B.start_phases () in
    B.comm_phase ph (fun () -> distribute_chunks ctx chunks input_sh ~per:nr);
    B.compute_phase ph (fun () ->
      run_tasks ctx
        (List.map2
           (fun ch hist ->
             ( ch.proc,
               fun () ->
                 let h = C.thresh_hist ~nr ch.data.arr ~lo:0 ~hi:(rows ch) in
                 Array.blit h 0 hist.arr 0 C.modulus ))
           chunks hists));
    let merged = Array.make C.modulus 0 in
    B.comm_phase ph (fun () ->
      List.iter2
        (fun ch hist ->
          let local = Array.make C.modulus 0 in
          R.separate ctx.rt ch.proc (fun reg ->
            pull ctx.cfg reg hist.shared ~dst:local ~src_off:0 ~dst_off:0
              ~len:C.modulus);
          for v = 0 to C.modulus - 1 do
            merged.(v) <- merged.(v) + local.(v)
          done)
        chunks hists);
    let threshold =
      C.thresh_threshold ~hist:merged ~total:(nr * nr) ~p:percent
    in
    B.compute_phase ph (fun () ->
      run_tasks ctx
        (List.map2
           (fun ch (mbytes, _) ->
             ( ch.proc,
               fun () ->
                 C.thresh_mask_rows ~nr ch.data.arr ~threshold mbytes ~lo:0
                   ~hi:(rows ch) ))
           chunks masks));
    B.comm_phase ph (fun () ->
      List.iter2
        (fun ch (_, msh) ->
          R.separate ctx.rt ch.proc (fun reg ->
            pull_bytes ctx.cfg reg msh ~dst:mask ~dst_off:(ch.lo * nr)
              ~len:(rows ch * nr)))
        chunks masks);
    B.validate_int "thresh.threshold" ~expected:expected_threshold
      ~actual:threshold;
    B.validate_int "thresh.mask"
      ~expected:(C.checksum_mask expected_mask)
      ~actual:(C.checksum_mask mask);
    B.finish_phases ph)

(* -- winnow --------------------------------------------------------------- *)

let winnow ~config ~domains ~workers ~nr ~p:percent ~nw ~seed =
  let input = C.randmat ~seed ~nr in
  let _, mask = C.thresh ~nr input ~p:percent in
  let expected = C.winnow ~nr input mask ~nw in
  with_ctx ~config ~domains ~workers (fun ctx ->
    let input_sh = Sh.create ctx.main input in
    (* The mask travels as a 0/1 int array so the generic pull applies. *)
    let mask_ints =
      Array.init (nr * nr) (fun i -> if Bytes.get mask i = '\001' then 1 else 0)
    in
    let mask_sh = Sh.create ctx.main mask_ints in
    let chunks = make_chunks ctx ~n:nr ~width:nr ~init:0 in
    let mask_chunks =
      List.map (fun ch -> own ch.proc (Array.make (rows ch * nr) 0)) chunks
    in
    let cands =
      List.map
        (fun ch ->
          let cell = ref [||] in
          (cell, Sh.create ch.proc cell))
        chunks
    in
    let ph = B.start_phases () in
    B.comm_phase ph (fun () ->
      distribute_chunks ctx chunks input_sh ~per:nr;
      run_tasks ctx
        (List.map2
           (fun ch mch ->
             ( ch.proc,
               fun () ->
                 R.separate ctx.rt ctx.main (fun reg ->
                   pull ctx.cfg reg mask_sh ~dst:mch.arr
                     ~src_off:(ch.lo * nr) ~dst_off:0 ~len:(rows ch * nr)) ))
           chunks mask_chunks));
    B.compute_phase ph (fun () ->
      run_tasks ctx
        (List.map2
           (fun (ch, mch) (cell, _) ->
             ( ch.proc,
               fun () ->
                 let local_mask =
                   Bytes.init (rows ch * nr) (fun i ->
                     if mch.arr.(i) = 1 then '\001' else '\000')
                 in
                 let cs =
                   C.winnow_collect ~row0:ch.lo ~nr ch.data.arr local_mask
                     ~lo:0 ~hi:(rows ch) ()
                 in
                 let a = Array.of_list cs in
                 Array.sort compare a;
                 cell := a ))
           (List.combine chunks mask_chunks)
           cands));
    let all = ref [] in
    B.comm_phase ph (fun () ->
      List.iter2
        (fun ch (_, csh) ->
          R.separate ctx.rt ch.proc (fun reg ->
            all := pull_ref ctx.cfg reg csh ~dummy:(0, 0, 0) :: !all))
        chunks cands);
    let points =
      B.compute_phase ph (fun () ->
        let merged = Array.concat (List.rev !all) in
        Array.sort compare merged;
        C.winnow_select merged ~nw)
    in
    B.validate_int "winnow"
      ~expected:(C.checksum_points expected)
      ~actual:(C.checksum_points points);
    B.finish_phases ph)

(* -- outer ---------------------------------------------------------------- *)

(* Points travel as two int arrays (rows and cols) so the generic int pull
   applies; [assemble_points] rebuilds the tuple array workers compute on. *)
let split_points points =
  (Array.map fst points, Array.map snd points)

let outer ~config ~domains ~workers ~n ~range =
  let points = C.synthetic_points ~n ~range in
  let expected_m, expected_v = C.outer points in
  with_ctx ~config ~domains ~workers (fun ctx ->
    let prs, pcs = split_points points in
    let prs_sh = Sh.create ctx.main prs and pcs_sh = Sh.create ctx.main pcs in
    let chunks = make_chunks ctx ~n ~width:n ~init:0.0 in
    let vecs = List.map (fun ch -> own ch.proc (Array.make (rows ch) 0.0)) chunks in
    let local_points =
      List.map (fun ch -> (ch, Array.make n 0, Array.make n 0)) chunks
    in
    let matrix = Array.make (n * n) 0.0 and vector = Array.make n 0.0 in
    let ph = B.start_phases () in
    B.comm_phase ph (fun () ->
      broadcast ctx (List.map (fun (ch, r, _) -> (ch.proc, r)) local_points) prs_sh;
      broadcast ctx (List.map (fun (ch, _, c) -> (ch.proc, c)) local_points) pcs_sh);
    B.compute_phase ph (fun () ->
      run_tasks ctx
        (List.map2
           (fun (ch, r, c) vec ->
             ( ch.proc,
               fun () ->
                 let pts = Array.map2 (fun a b -> (a, b)) r c in
                 C.outer_chunk pts ~lo:ch.lo ~hi:ch.hi ch.data.arr vec.arr ))
           local_points vecs));
    B.comm_phase ph (fun () ->
      collect_chunks ctx chunks ~dst:matrix ~per:n;
      collect ctx
        (List.map2 (fun ch vec -> (ch.proc, vec.shared, rows ch, ch.lo)) chunks vecs)
        ~dst:vector);
    B.validate_float "outer.matrix"
      ~expected:(C.checksum_float expected_m)
      ~actual:(C.checksum_float matrix);
    B.validate_float "outer.vector"
      ~expected:(C.checksum_float expected_v)
      ~actual:(C.checksum_float vector);
    B.finish_phases ph)

(* -- product -------------------------------------------------------------- *)

let product ~config ~domains ~workers ~n ~range =
  let points = C.synthetic_points ~n ~range in
  let matrix, vector = C.outer points in
  let expected = C.product ~n matrix vector in
  with_ctx ~config ~domains ~workers (fun ctx ->
    let matrix_sh = Sh.create ctx.main matrix in
    let vector_sh = Sh.create ctx.main vector in
    let chunks = make_chunks ctx ~n ~width:n ~init:0.0 in
    let local_vecs = List.map (fun ch -> (ch, Array.make n 0.0)) chunks in
    let results = List.map (fun ch -> own ch.proc (Array.make (rows ch) 0.0)) chunks in
    let result = Array.make n 0.0 in
    let ph = B.start_phases () in
    B.comm_phase ph (fun () ->
      distribute_chunks ctx chunks matrix_sh ~per:n;
      broadcast ctx (List.map (fun (ch, v) -> (ch.proc, v)) local_vecs) vector_sh);
    B.compute_phase ph (fun () ->
      run_tasks ctx
        (List.map2
           (fun (ch, vec) res ->
             ( ch.proc,
               fun () ->
                 C.product_chunk ~n ch.data.arr vec ~rows:(rows ch) res.arr ))
           local_vecs results));
    B.comm_phase ph (fun () ->
      collect ctx
        (List.map2 (fun ch res -> (ch.proc, res.shared, rows ch, ch.lo)) chunks results)
        ~dst:result);
    B.validate_float "product"
      ~expected:(C.checksum_float expected)
      ~actual:(C.checksum_float result);
    B.finish_phases ph)

(* -- chain ---------------------------------------------------------------- *)

(* The full pipeline with data staying on the workers between stages — the
   paper notes the chain "does not suffer from nearly the same
   communication burden" as its isolated stages because intermediate
   results never leave the workers. *)
let chain ~config ~domains ~workers ~nr ~p:percent ~nw ~seed =
  let expected = C.chain ~seed ~nr ~p:percent ~nw in
  with_ctx ~config ~domains ~workers (fun ctx ->
    let ph = B.start_phases () in
    (* Stage 1: randmat into worker chunks. *)
    let chunks = make_chunks ctx ~n:nr ~width:nr ~init:0 in
    B.compute_phase ph (fun () ->
      run_on_chunks ctx chunks (fun ch ->
        C.randmat_chunk ~seed ~nr ~lo:ch.lo ~hi:ch.hi ch.data.arr));
    (* Stage 2: thresh (local hists, merge, local masks). *)
    let hists = List.map (fun ch -> own ch.proc (Array.make C.modulus 0)) chunks in
    B.compute_phase ph (fun () ->
      run_tasks ctx
        (List.map2
           (fun ch hist ->
             ( ch.proc,
               fun () ->
                 let h = C.thresh_hist ~nr ch.data.arr ~lo:0 ~hi:(rows ch) in
                 Array.blit h 0 hist.arr 0 C.modulus ))
           chunks hists));
    let merged = Array.make C.modulus 0 in
    B.comm_phase ph (fun () ->
      List.iter2
        (fun ch hist ->
          let local = Array.make C.modulus 0 in
          R.separate ctx.rt ch.proc (fun reg ->
            pull ctx.cfg reg hist.shared ~dst:local ~src_off:0 ~dst_off:0
              ~len:C.modulus);
          for v = 0 to C.modulus - 1 do
            merged.(v) <- merged.(v) + local.(v)
          done)
        chunks hists);
    let threshold =
      C.thresh_threshold ~hist:merged ~total:(nr * nr) ~p:percent
    in
    (* Stage 3: winnow (local candidates, merge, select). *)
    let cands =
      List.map
        (fun ch ->
          let cell = ref [||] in
          (cell, Sh.create ch.proc cell))
        chunks
    in
    B.compute_phase ph (fun () ->
      run_tasks ctx
        (List.map2
           (fun ch (cell, _) ->
             ( ch.proc,
               fun () ->
                 let mask = Bytes.make (rows ch * nr) '\000' in
                 C.thresh_mask_rows ~nr ch.data.arr ~threshold mask ~lo:0
                   ~hi:(rows ch);
                 let cs =
                   C.winnow_collect ~row0:ch.lo ~nr ch.data.arr mask ~lo:0
                     ~hi:(rows ch) ()
                 in
                 let a = Array.of_list cs in
                 Array.sort compare a;
                 cell := a ))
           chunks cands));
    let all = ref [] in
    B.comm_phase ph (fun () ->
      List.iter2
        (fun ch (_, csh) ->
          R.separate ctx.rt ch.proc (fun reg ->
            all := pull_ref ctx.cfg reg csh ~dummy:(0, 0, 0) :: !all))
        chunks cands);
    let points =
      B.compute_phase ph (fun () ->
        let m = Array.concat (List.rev !all) in
        Array.sort compare m;
        C.winnow_select m ~nw)
    in
    let n = Array.length points in
    (* Stage 4: outer over the selected points. *)
    let prs, pcs = split_points points in
    let prs_sh = Sh.create ctx.main prs and pcs_sh = Sh.create ctx.main pcs in
    let ochunks = make_chunks ctx ~n ~width:n ~init:0.0 in
    let vecs = List.map (fun ch -> own ch.proc (Array.make (rows ch) 0.0)) ochunks in
    let local_points =
      List.map (fun ch -> (ch, Array.make n 0, Array.make n 0)) ochunks
    in
    B.comm_phase ph (fun () ->
      broadcast ctx (List.map (fun (ch, r, _) -> (ch.proc, r)) local_points) prs_sh;
      broadcast ctx (List.map (fun (ch, _, c) -> (ch.proc, c)) local_points) pcs_sh);
    B.compute_phase ph (fun () ->
      run_tasks ctx
        (List.map2
           (fun (ch, r, c) vec ->
             ( ch.proc,
               fun () ->
                 let pts = Array.map2 (fun a b -> (a, b)) r c in
                 C.outer_chunk pts ~lo:ch.lo ~hi:ch.hi ch.data.arr vec.arr ))
           local_points vecs));
    (* Stage 5: product — gather the vector, broadcast it, multiply the
       worker-resident matrix rows, and collect the final result. *)
    let vector = Array.make n 0.0 in
    B.comm_phase ph (fun () ->
      collect ctx
        (List.map2 (fun ch vec -> (ch.proc, vec.shared, rows ch, ch.lo)) ochunks vecs)
        ~dst:vector);
    let vector_sh = Sh.create ctx.main vector in
    let local_vecs = List.map (fun ch -> (ch, Array.make n 0.0)) ochunks in
    let results = List.map (fun ch -> own ch.proc (Array.make (rows ch) 0.0)) ochunks in
    let result = Array.make n 0.0 in
    B.comm_phase ph (fun () ->
      broadcast ctx (List.map (fun (ch, v) -> (ch.proc, v)) local_vecs) vector_sh);
    B.compute_phase ph (fun () ->
      run_tasks ctx
        (List.map2
           (fun (ch, vec) res ->
             ( ch.proc,
               fun () ->
                 C.product_chunk ~n ch.data.arr vec ~rows:(rows ch) res.arr ))
           local_vecs results));
    B.comm_phase ph (fun () ->
      collect ctx
        (List.map2 (fun ch res -> (ch.proc, res.shared, rows ch, ch.lo)) ochunks results)
        ~dst:result);
    B.validate_float "chain"
      ~expected:(C.checksum_float expected)
      ~actual:(C.checksum_float result);
    B.finish_phases ph)
