(** Socket-backed FIFO message queue: the paper's §7 exploration of
    "sockets as the underlying implementation" of private queues, inside
    one process.  Messages travel as length-prefixed marshalled frames
    over a non-blocking Unix socket pair; would-block conditions yield
    the fiber.

    Messages must be marshal-safe (no closures).  Multiple producer
    fibers may {!enqueue} (frames are serialized); exactly one consumer
    fiber may {!dequeue}. *)

exception Closed

type 'a t

val create : unit -> 'a t

val enqueue : 'a t -> 'a -> unit
(** Send one message.  @raise Closed after {!close_writer}. *)

val dequeue : 'a t -> 'a option
(** Receive the next message, yielding while none is available; [None]
    once the writer has closed and the stream is drained. *)

val close_writer : 'a t -> unit
(** Signal end-of-stream to the consumer. *)

val destroy : 'a t -> unit
(** Close both file descriptors. *)
