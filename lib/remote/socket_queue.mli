(** Socket-backed FIFO message queue: the paper's §7 exploration of
    "sockets as the underlying implementation" of private queues, inside
    one process.  Messages travel as length-prefixed marshalled frames
    over a non-blocking Unix socket pair; would-block conditions yield
    the fiber.

    Messages must be marshal-safe (no closures).  Multiple producer
    fibers may {!enqueue} (frames are serialized); exactly one consumer
    fiber may {!dequeue}. *)

exception Closed
(** Same exception as [Qs_queues.Mailbox.Closed] (rebound). *)

exception Truncated_frame
(** End-of-stream arrived inside a frame: the writer closed after a
    partial header or payload.  Raised by {!dequeue}/{!drain} instead of
    returning [None] — a torn stream is a transport failure, not a clean
    close — and counted under [truncated_frames]. *)

type 'a t

val create : ?flags:Marshal.extern_flags list -> unit -> 'a t
(** Fresh socket-pair transport.  [flags] are passed to
    [Marshal.to_bytes] on every send — [[Marshal.Closures]] lets
    same-binary peers ship code (the distributed runtime's wire format);
    the default ships data only. *)

val of_fds :
  ?flags:Marshal.extern_flags list ->
  read_fd:Unix.file_descr ->
  write_fd:Unix.file_descr ->
  unit ->
  'a t
(** Wrap externally established descriptors (an accepted TCP or
    unix-domain connection).  Both are switched to non-blocking.
    [read_fd] and [write_fd] may be the same descriptor — a duplex
    connection is typically wrapped twice, once used only for
    {!dequeue}/{!drain} and once only for {!enqueue}.  {!destroy} closes
    both (closing a shared fd twice is harmless). *)

val enqueue : 'a t -> 'a -> unit
(** Send one message.  @raise Closed after {!close_writer}. *)

val dequeue : 'a t -> 'a option
(** Receive the next message, yielding while none is available; [None]
    once the writer has closed and the stream is drained.
    @raise Truncated_frame if end-of-stream arrives inside a frame. *)

val drain : 'a t -> 'a array -> int
(** Batched receive: block (yielding) for the first message, then take
    every message already framed or readable without blocking, up to
    [Array.length buf]; returns the count, [0] once the writer has
    closed and the stream is drained. *)

val close_writer : 'a t -> unit
(** Signal end-of-stream to the consumer. *)

val is_closed : 'a t -> bool

val is_empty : 'a t -> bool
(** [false] means a complete frame is buffered; [true] only means
    nothing is parsed yet (bytes may still sit in the kernel). *)

val counters : 'a t -> Qs_obs.Counter.snapshot
(** Frame-level transport counters: [frames_sent], [frames_received],
    [bytes_sent], [bytes_received] (payload + 8-byte headers, as seen
    by the syscalls), [would_blocks] (EAGAIN episodes on either end)
    and [truncated_frames] (streams ending inside a frame).  Read with
    [Qs_obs.Counter.value]. *)

val destroy : 'a t -> unit
(** Close both file descriptors. *)

val fds : 'a t -> Unix.file_descr * Unix.file_descr
(** [(read_fd, write_fd)] of the underlying socket pair.  For tests and
    fault injection (e.g. writing a deliberately torn frame); normal
    traffic must go through {!enqueue}. *)

module As_mailbox : Qs_queues.Mailbox.S with type 'a t = 'a t
(** [Qs_queues.Mailbox.S] view of the transport ([close] is
    {!close_writer}).  Blocking flavour: [dequeue]/[drain] yield until a
    message or end-of-stream arrives. *)
