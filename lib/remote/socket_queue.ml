(* Socket-backed message queue — the paper's second piece of future work
   (§7): "we plan to further explore the utility of the private queue
   design, in particular the usage of sockets as the underlying
   implementation".

   This module is that exploration: a FIFO queue with the same interface
   shape as the runtime's private queues, but whose transport is a Unix
   socket pair carrying length-prefixed marshalled messages — the exact
   mechanics a distributed SCOOP would need, exercised inside one
   process.  The cost question it answers is measured by the
   `transport:*` ablations in the micro-benchmark suite: serialization +
   syscalls versus the in-memory SPSC queue.

   Messages must be marshal-safe values (no closures — a distributed
   runtime ships commands, not code; captured mutable state would be
   silently copied).  Both socket ends are non-blocking: a would-block
   write or read yields the fiber instead of stalling the domain, so the
   queue composes with the scheduler like every other primitive. *)

exception Closed = Qs_queues.Mailbox.Closed
exception Truncated_frame

let () =
  Printexc.register_printer (function
    | Truncated_frame -> Some "Qs_remote.Socket_queue.Truncated_frame"
    | _ -> None)

(* A peer dying mid-conversation must surface as [Closed]: writes report
   EPIPE only when SIGPIPE is ignored — otherwise the signal kills the
   process before the error is seen. *)
let () =
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore

(* Frame-level transport counters, one registry per queue: what the
   `transport:*` ablations pay per message, now observable directly. *)
type counters = {
  registry : Qs_obs.Counter.registry;
  frames_sent : Qs_obs.Counter.t;
  frames_received : Qs_obs.Counter.t;
  bytes_sent : Qs_obs.Counter.t;
  bytes_received : Qs_obs.Counter.t;
  would_blocks : Qs_obs.Counter.t; (* EAGAIN on either end *)
  truncated_frames : Qs_obs.Counter.t; (* EOF inside a frame *)
}

let make_counters () =
  let registry = Qs_obs.Counter.registry () in
  let c name = Qs_obs.Counter.make registry name in
  (* Bind before constructing the record: record fields evaluate in
     unspecified order, and registration order is the snapshot order. *)
  let frames_sent = c "frames_sent" in
  let frames_received = c "frames_received" in
  let bytes_sent = c "bytes_sent" in
  let bytes_received = c "bytes_received" in
  let would_blocks = c "would_blocks" in
  let truncated_frames = c "truncated_frames" in
  { registry; frames_sent; frames_received; bytes_sent; bytes_received;
    would_blocks; truncated_frames }

type 'a t = {
  read_fd : Unix.file_descr;
  write_fd : Unix.file_descr;
  flags : Marshal.extern_flags list; (* e.g. [Closures] for same-binary peers *)
  write_lock : Qs_sched.Fiber_mutex.t; (* frames from producers must not interleave *)
  ctrs : counters;
  mutable read_buffer : Bytes.t; (* accumulated unparsed input *)
  mutable read_len : int;
  mutable write_closed : bool;
  mutable eof : bool;
  mutable truncated : bool; (* EOF landed inside a frame (counted once) *)
}

let make ?(flags = []) ~read_fd ~write_fd () =
  {
    read_fd;
    write_fd;
    flags;
    write_lock = Qs_sched.Fiber_mutex.create ();
    ctrs = make_counters ();
    read_buffer = Bytes.create 4096;
    read_len = 0;
    write_closed = false;
    eof = false;
    truncated = false;
  }

let create ?flags () =
  let read_fd, write_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock read_fd;
  Unix.set_nonblock write_fd;
  make ?flags ~read_fd ~write_fd ()

(* Wrap externally established fds (e.g. one end of an accepted TCP or
   unix-domain connection).  [read_fd] and [write_fd] may be the same
   descriptor: a duplex connection is typically wrapped twice, once as a
   receive-only queue and once as a send-only one.  [set_nonblock] is
   idempotent, so double-wrapping one fd is fine. *)
let of_fds ?flags ~read_fd ~write_fd () =
  (try Unix.set_nonblock read_fd with Unix.Unix_error _ -> ());
  (try Unix.set_nonblock write_fd with Unix.Unix_error _ -> ());
  make ?flags ~read_fd ~write_fd ()

let counters t = Qs_obs.Counter.snapshot t.ctrs.registry

let frame_header_size = 8

let encode t v =
  let payload = Marshal.to_bytes v t.flags in
  let frame = Bytes.create (frame_header_size + Bytes.length payload) in
  Bytes.set_int64_le frame 0 (Int64.of_int (Bytes.length payload));
  Bytes.blit payload 0 frame frame_header_size (Bytes.length payload);
  frame

(* Write the whole frame, yielding on would-block and partial writes. *)
let write_all t frame =
  let len = Bytes.length frame in
  let rec go off =
    if off < len then begin
      match Unix.write t.write_fd frame off (len - off) with
      | n ->
        Qs_obs.Counter.add t.ctrs.bytes_sent n;
        go (off + n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        (* Readiness wait instead of a yield-spin: the fiber parks until
           the kernel drains the send buffer, so a slow peer costs no
           scheduler churn. *)
        Qs_obs.Counter.incr t.ctrs.would_blocks;
        Qs_sched.Sched.await_writable t.write_fd;
        go off
      | exception
          Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        raise Closed
    end
  in
  go 0;
  Qs_obs.Counter.incr t.ctrs.frames_sent

let enqueue t v =
  if t.write_closed then raise Closed;
  let frame = encode t v in
  (* Producers serialize frame writes so frames cannot interleave. *)
  Qs_sched.Fiber_mutex.with_lock t.write_lock (fun () -> write_all t frame)

let grow_buffer t needed =
  if needed > Bytes.length t.read_buffer then begin
    let bigger = Bytes.create (max needed (2 * Bytes.length t.read_buffer)) in
    Bytes.blit t.read_buffer 0 bigger 0 t.read_len;
    t.read_buffer <- bigger
  end

(* Pull more bytes from the socket into the buffer; false at EOF. *)
let fill t =
  grow_buffer t (t.read_len + 4096);
  match
    Unix.read t.read_fd t.read_buffer t.read_len
      (Bytes.length t.read_buffer - t.read_len)
  with
  | 0 ->
    t.eof <- true;
    false
  | n ->
    Qs_obs.Counter.add t.ctrs.bytes_received n;
    t.read_len <- t.read_len + n;
    true
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    (* Park on readability: the consumer of an idle queue costs nothing
       until a frame (or EOF) arrives. *)
    Qs_obs.Counter.incr t.ctrs.would_blocks;
    Qs_sched.Sched.await_readable t.read_fd;
    true
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
    t.eof <- true;
    false

let take_frame t =
  if t.read_len < frame_header_size then None
  else begin
    let payload_len = Int64.to_int (Bytes.get_int64_le t.read_buffer 0) in
    let total = frame_header_size + payload_len in
    if t.read_len < total then begin
      grow_buffer t total;
      None
    end
    else begin
      (* Decode in place: [Marshal.from_bytes] reads [payload_len] bytes
         starting at the offset, so no intermediate copy of the payload
         is needed (the transport ablation's per-message allocation is
         the marshalled value itself, not a second staging buffer). *)
      let v = Marshal.from_bytes t.read_buffer frame_header_size in
      Bytes.blit t.read_buffer total t.read_buffer 0 (t.read_len - total);
      t.read_len <- t.read_len - total;
      Qs_obs.Counter.incr t.ctrs.frames_received;
      Some v
    end
  end

(* EOF landed mid-frame: the writer closed (or died) after sending a
   frame header or a partial payload.  Silently returning [None] here
   would make a torn stream indistinguishable from a clean close, so the
   consumer gets an exception instead (counted once per stream). *)
let truncated t =
  if not t.truncated then begin
    t.truncated <- true;
    Qs_obs.Counter.incr t.ctrs.truncated_frames
  end;
  raise Truncated_frame

(* Single consumer: dequeue the next message, [None] once the write side
   is closed and everything has been drained.
   @raise Truncated_frame on EOF inside a frame. *)
let rec dequeue t =
  match take_frame t with
  | Some v -> Some v
  | None ->
    if t.eof then if t.read_len > 0 then truncated t else None
    else if fill t then dequeue t
    else if t.read_len > 0 then dequeue t (* parse complete remainders *)
    else None

(* Non-blocking fill: pull whatever the kernel already has, but never
   yield — a would-block read just ends the batch. *)
let fill_nowait t =
  grow_buffer t (t.read_len + 4096);
  match
    Unix.read t.read_fd t.read_buffer t.read_len
      (Bytes.length t.read_buffer - t.read_len)
  with
  | 0 ->
    t.eof <- true;
    false
  | n ->
    Qs_obs.Counter.add t.ctrs.bytes_received n;
    t.read_len <- t.read_len + n;
    true
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    Qs_obs.Counter.incr t.ctrs.would_blocks;
    false
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
    t.eof <- true;
    false

(* Batched receive: block (yielding) for the first message, then take
   every message already framed in the buffer or readable without
   blocking — the whole batch costs at most the syscalls the kernel
   forces, not one blocking round trip per message. *)
let drain t buf =
  let cap = Array.length buf in
  if cap = 0 then 0
  else
    match dequeue t with
    | None -> 0
    | Some v ->
      buf.(0) <- v;
      let taken = ref 1 in
      let continue_ = ref true in
      while !continue_ && !taken < cap do
        match take_frame t with
        | Some v ->
          buf.(!taken) <- v;
          incr taken
        | None -> if not (fill_nowait t) then continue_ := false
      done;
      !taken

let close_writer t =
  if not t.write_closed then begin
    t.write_closed <- true;
    (try Unix.shutdown t.write_fd Unix.SHUTDOWN_SEND
     with Unix.Unix_error _ -> ())
  end

let fds t = (t.read_fd, t.write_fd)

let destroy t =
  close_writer t;
  (try Unix.close t.write_fd with Unix.Unix_error _ -> ());
  try Unix.close t.read_fd with Unix.Unix_error _ -> ()

let is_closed t = t.write_closed

(* Consumer-side view: a complete frame is already buffered.  Bytes still
   sitting in the kernel are not counted, so [false] is authoritative but
   [true] is only "nothing parsed yet". *)
let is_empty t =
  not
    (t.read_len >= frame_header_size
    && t.read_len
       >= frame_header_size + Int64.to_int (Bytes.get_int64_le t.read_buffer 0))

module As_mailbox = struct
  type nonrec 'a t = 'a t

  let create () = create ()
  let enqueue = enqueue
  let dequeue = dequeue
  let drain = drain
  let close = close_writer
  let is_closed = is_closed
  let is_empty = is_empty
end
