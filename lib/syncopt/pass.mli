(** The sync-coalescing transformation: delete [Sync] instructions whose
    handler is provably already synchronized (paper §3.4.2). *)

type removal = {
  block : int;
  index : int;
  hvar : Ir.hvar;
}

type report = {
  cfg : Cfg.t;
  removed : removal list;
  kept_syncs : int;
}

val run : Cfg.t -> report
val pp_report : Format.formatter -> report -> unit
