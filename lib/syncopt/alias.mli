(** May-alias relation over handler variables (paper Fig. 15). *)

type t

val empty : t
(** No two distinct variables may alias. *)

val may_alias_pairs : (Ir.hvar * Ir.hvar) list -> t
(** Build from symmetric pairs. *)

val may_alias : t -> Ir.hvar -> Ir.hvar -> bool
(** Reflexive; symmetric; not necessarily transitive. *)

val closure_of : t -> Ir.hvar -> Ir.hvar list
(** The variable together with everything it may alias. *)
