(* CFG encodings of the paper's figures and of the Cowichan benchmark
   kernels' communication skeletons.

   These tie the Static benchmark configuration to the actual pass: the
   tests assert that running [Pass.run] on the naive kernel shapes removes
   exactly the in-loop syncs, which is the transformation the hoisted
   kernels in [qs_benchmarks] apply by hand. *)

open Ir

(* Fig. 14a: a simple loop, rotated so the first iteration's sync sits in
   the entry block.
     B0: h_p.sync(); x[i] := a[i]      -> B1 | B2
     B1: h_p.sync(); x[i] := a[i]      -> B1 | B2   (loop)
     B2: h_p.sync()
   Expected (Fig. 14b): the syncs of B1 and B2 are removed. *)
let fig14 () =
  let b = Cfg.builder () in
  let _b0 = Cfg.add_block b ~succs:[ 1; 2 ] [ Sync "h_p"; Read "h_p" ] in
  let _b1 = Cfg.add_block b ~succs:[ 1; 2 ] [ Sync "h_p"; Read "h_p" ] in
  let _b2 = Cfg.add_block b [ Sync "h_p" ] in
  Cfg.freeze b

(* Fig. 15a: the same loop with an asynchronous call on i_p in the body,
   where h_p and i_p may be aliased.  Expected (Fig. 15b): no sync can be
   removed. *)
let fig15 () =
  let b = Cfg.builder () in
  let _b0 = Cfg.add_block b ~succs:[ 1; 2 ] [ Sync "h_p"; Read "h_p" ] in
  let _b1 =
    Cfg.add_block b ~succs:[ 1; 2 ] [ Sync "h_p"; Read "h_p"; Async "i_p" ]
  in
  let _b2 = Cfg.add_block b [ Sync "h_p" ] in
  Cfg.freeze ~alias:(Alias.may_alias_pairs [ ("h_p", "i_p") ]) b

(* Fig. 15 with alias information refined away ("if more aliasing
   information is given to the compiler... h_p can be added to the
   sync-set"): the loop syncs become removable again. *)
let fig15_refined () =
  let b = Cfg.builder () in
  let _b0 = Cfg.add_block b ~succs:[ 1; 2 ] [ Sync "h_p"; Read "h_p" ] in
  let _b1 =
    Cfg.add_block b ~succs:[ 1; 2 ] [ Sync "h_p"; Read "h_p"; Async "i_p" ]
  in
  let _b2 = Cfg.add_block b [ Sync "h_p" ] in
  Cfg.freeze b

(* The communication skeleton of the data-distribution phase shared by the
   Cowichan kernels (thresh, winnow, outer, product): a client pulls a
   whole array out of a handler in a tight loop — naive codegen syncs
   before every element read.
     B0: sync w; read w            (first element)
     B1: sync w; read w; local     (loop)
     B2: local                     (compute on the local copy)
   The pass removes the B1 sync: exactly the "lift the sync right out of
   the loop body" effect §3.4.3 describes. *)
let pull_loop () =
  let b = Cfg.builder () in
  let _b0 = Cfg.add_block b ~succs:[ 1; 2 ] [ Sync "w"; Read "w" ] in
  let _b1 = Cfg.add_block b ~succs:[ 1; 2 ] [ Sync "w"; Read "w"; Local ] in
  let _b2 = Cfg.add_block b [ Local ] in
  Cfg.freeze b

(* A pull loop followed by a push loop on a different, non-aliased result
   handler: reads from [w] stay coalesced even though [r] is enqueued into
   (compare Fig. 15: only may-aliasing kills the set). *)
let pull_then_push () =
  let b = Cfg.builder () in
  let _b0 = Cfg.add_block b ~succs:[ 1; 2 ] [ Sync "w"; Read "w" ] in
  let _b1 =
    Cfg.add_block b ~succs:[ 1; 2 ] [ Sync "w"; Read "w"; Async "r" ]
  in
  let _b2 = Cfg.add_block b [ Sync "w"; Read "w" ] in
  Cfg.freeze b

(* An irregular coordination skeleton (the concurrent benchmarks §4.1.2):
   each iteration makes an external side-effecting call between the sync
   and the next iteration, so the static pass can remove nothing — this is
   why the paper finds Static ineffective on the concurrent workloads
   ("because the workloads are irregular, the Static sync-coalescing is
   not as effective"). *)
let irregular_loop () =
  let b = Cfg.builder () in
  let _b0 =
    Cfg.add_block b ~succs:[ 1; 2 ]
      [ Sync "res"; Read "res"; Call_ext { readonly = false } ]
  in
  let _b1 =
    Cfg.add_block b ~succs:[ 1; 2 ]
      [ Sync "res"; Read "res"; Call_ext { readonly = false } ]
  in
  let _b2 = Cfg.add_block b [ Local ] in
  Cfg.freeze b

(* Same loop where the intervening call carries LLVM's readonly flag: the
   mitigation mentioned at the end of §3.4.2 restores the coalescing. *)
let irregular_loop_readonly () =
  let b = Cfg.builder () in
  let _b0 =
    Cfg.add_block b ~succs:[ 1; 2 ]
      [ Sync "res"; Read "res"; Call_ext { readonly = true } ]
  in
  let _b1 =
    Cfg.add_block b ~succs:[ 1; 2 ]
      [ Sync "res"; Read "res"; Call_ext { readonly = true } ]
  in
  let _b2 = Cfg.add_block b [ Local ] in
  Cfg.freeze b

let all =
  [
    ("fig14", fig14);
    ("fig15", fig15);
    ("fig15-refined", fig15_refined);
    ("pull-loop", pull_loop);
    ("pull-then-push", pull_then_push);
    ("irregular", irregular_loop);
    ("irregular-readonly", irregular_loop_readonly);
  ]
