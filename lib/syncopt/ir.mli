(** Instruction set of the sync-coalescing pass (paper §3.4.2, Fig. 13). *)

type hvar = string

type inst =
  | Sync of hvar
  | Async of hvar
  | Read of hvar
  | Local
  | Call_ext of { readonly : bool }

val pp_inst : Format.formatter -> inst -> unit
val hvar_of : inst -> hvar option
