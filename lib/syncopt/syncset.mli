(** Sync-set dataflow analysis (paper Figs. 12–13): for every program
    point, the set of handler variables guaranteed to be synchronized on
    every path reaching it. *)

module Vset : Set.S with type elt = string

type result = {
  in_sets : Vset.t array; (** sync-set at each block's entry *)
  out_sets : Vset.t array; (** sync-set at each block's exit *)
}

val analyze : Cfg.t -> result

val transfer_inst : Alias.t -> Vset.t -> Ir.inst -> Vset.t
(** UpdateSync for a single instruction (Fig. 13). *)

val transfer_block : Alias.t -> Vset.t -> Ir.inst list -> Vset.t

val per_inst : Alias.t -> Vset.t -> Ir.inst list -> Vset.t list
(** The sync-set immediately before each instruction of a block, given the
    block's entry set. *)
