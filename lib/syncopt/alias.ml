(* May-alias information over handler variables.

   The paper's pass must treat two handler variables that may point to the
   same handler as one for invalidation purposes (Fig. 15: an asynchronous
   call on [i_p] kills the synced status of [h_p] when they may alias).
   We keep the relation as a symmetric set of pairs; [closure_of] returns a
   variable's may-alias set including itself.

   The relation is deliberately *not* forced transitive: may-alias is not
   an equivalence relation (a may alias b and b may alias c without a and
   c ever aliasing). *)

module Pair_set = Set.Make (struct
  type t = Ir.hvar * Ir.hvar

  let compare = compare
end)

type t = Pair_set.t

let norm (a, b) = if a <= b then (a, b) else (b, a)

let empty = Pair_set.empty

let may_alias_pairs pairs =
  List.fold_left (fun s p -> Pair_set.add (norm p) s) Pair_set.empty pairs

let may_alias t a b = a = b || Pair_set.mem (norm (a, b)) t

let closure_of t h =
  Pair_set.fold
    (fun (a, b) acc ->
      if a = h then b :: acc else if b = h then a :: acc else acc)
    t [ h ]
