(* Dynamic soundness checker for the sync-coalescing pass.

   The pass may only delete a [Sync h] if, at that point, the handler [h]
   denotes is synchronized on *every* execution.  We check this directly:
   take a concrete assignment of handler variables to handler identities
   (consistent with the may-alias relation: variables that are not
   may-aliased must denote distinct handlers), walk every (loop-bounded)
   path of the original CFG tracking the set of dynamically synchronized
   handler identities — treating side-effecting external calls
   adversarially, as if they enqueued asynchronous calls on every handler —
   and assert that each removal site finds its handler synced.

   The property-based tests drive this with random CFGs, random alias
   relations and random consistent assignments. *)

type env = (Ir.hvar * int) list
(** Concrete handler identity for each handler variable. *)

let lookup env h =
  match List.assoc_opt h env with
  | Some id -> id
  | None -> invalid_arg ("Interp: unbound handler variable " ^ h)

(* An assignment is consistent when equal identities imply may-alias. *)
let env_consistent (alias : Alias.t) (env : env) =
  List.for_all
    (fun (a, ia) ->
      List.for_all
        (fun (b, ib) -> a = b || ia <> ib || Alias.may_alias alias a b)
        env)
    env

module Iset = Set.Make (Int)

let check_removals ?(max_visits = 3) (cfg : Cfg.t) (report : Pass.report)
    ~(env : env) =
  if not (env_consistent cfg.Cfg.alias env) then
    invalid_arg "Interp.check_removals: assignment inconsistent with aliasing";
  let removed_at =
    List.map (fun (r : Pass.removal) -> (r.Pass.block, r.Pass.index)) report.Pass.removed
  in
  let is_removed b i = List.mem (b, i) removed_at in
  let error = ref None in
  let fail msg = if !error = None then error := Some msg in
  let walk_path path =
    let synced = ref Iset.empty in
    List.iter
      (fun bid ->
        List.iteri
          (fun i inst ->
            (match inst with
            | Ir.Sync h when is_removed bid i ->
              if not (Iset.mem (lookup env h) !synced) then
                fail
                  (Printf.sprintf
                     "unsound removal: B%d[%d] %s.sync() removed but handler \
                      %d not synced on some path"
                     bid i h (lookup env h))
            | _ -> ());
            match inst with
            | Ir.Sync h -> synced := Iset.add (lookup env h) !synced
            | Ir.Async h -> synced := Iset.remove (lookup env h) !synced
            | Ir.Call_ext { readonly = false } ->
              (* Adversarial: the callee may log asynchronous calls on
                 every handler in the sync-set. *)
              synced := Iset.empty
            | Ir.Call_ext { readonly = true } | Ir.Read _ | Ir.Local -> ())
          (Cfg.block cfg bid).Cfg.insts)
      path
  in
  List.iter walk_path (Cfg.paths ~max_visits cfg);
  match !error with Some msg -> Error msg | None -> Ok ()

(* Count the dynamic syncs a path-sensitive execution of [cfg] performs,
   with and without dynamic coalescing — used to cross-check the benchmark
   model (Static removes strictly more syncs on regular kernels). *)
let count_syncs ?(max_visits = 3) (cfg : Cfg.t) ~dyn =
  let total = ref 0 in
  List.iter
    (fun path ->
      let synced = ref Iset.empty in
      List.iter
        (fun bid ->
          List.iter
            (fun inst ->
              match inst with
              | Ir.Sync h ->
                let id = Hashtbl.hash h in
                if not (dyn && Iset.mem id !synced) then incr total;
                synced := Iset.add id !synced
              | Ir.Async h -> synced := Iset.remove (Hashtbl.hash h) !synced
              | Ir.Call_ext { readonly = false } -> synced := Iset.empty
              | _ -> ())
            (Cfg.block cfg bid).Cfg.insts)
        path)
    (Cfg.paths ~max_visits cfg);
  !total
