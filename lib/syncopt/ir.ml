(* Instruction set for the sync-coalescing analysis (paper §3.4.2).

   The pass operates on the generated code's view of SCOOP operations, not
   on source programs: what matters per instruction is only how it affects
   the set of handlers known to be synchronized (Fig. 13).  [Read] marks a
   client-side access to handler data — the naive code generator emits a
   [Sync] immediately before each one (Fig. 14a); it does not itself change
   the sync-set but lets tests assert that accesses stay protected. *)

type hvar = string
(** A handler-typed variable in the generated code (e.g. ["h_p"]). *)

type inst =
  | Sync of hvar (* h_p.sync(): adds h_p to the sync-set *)
  | Async of hvar (* h_p.enqueue(...): invalidates h_p and any alias *)
  | Read of hvar (* client-side read of h_p's data (requires synced) *)
  | Local (* pure local computation: no effect *)
  | Call_ext of { readonly : bool }
      (* arbitrary call: clears the sync-set unless LLVM-style
         readonly/readnone flags apply *)

let pp_inst ppf = function
  | Sync h -> Format.fprintf ppf "%s.sync()" h
  | Async h -> Format.fprintf ppf "%s.enqueue(...)" h
  | Read h -> Format.fprintf ppf "read %s" h
  | Local -> Format.pp_print_string ppf "local"
  | Call_ext { readonly } ->
    Format.fprintf ppf "call_ext%s" (if readonly then " readonly" else "")

let hvar_of = function
  | Sync h | Async h | Read h -> Some h
  | Local | Call_ext _ -> None
