(* Control-flow graphs of straight-line blocks, as the pass sees them
   (paper Fig. 12 traverses "a function's basic blocks").

   Graphs are built with a tiny builder API and then frozen; predecessor
   lists are derived from successor lists at freeze time. *)

type block = {
  id : int;
  insts : Ir.inst list;
  succs : int list;
  preds : int list;
}

type t = {
  blocks : block array;
  entry : int;
  alias : Alias.t;
}

type builder = {
  mutable acc : (int * Ir.inst list * int list) list;
  mutable next : int;
}

let builder () = { acc = []; next = 0 }

let add_block b ?(succs = []) insts =
  let id = b.next in
  b.next <- id + 1;
  b.acc <- (id, insts, succs) :: b.acc;
  id

let freeze ?(alias = Alias.empty) ?(entry = 0) b =
  let n = b.next in
  let blocks =
    Array.make n { id = 0; insts = []; succs = []; preds = [] }
  in
  List.iter
    (fun (id, insts, succs) ->
      List.iter
        (fun s ->
          if s < 0 || s >= n then
            invalid_arg
              (Printf.sprintf "Cfg.freeze: block %d has unknown successor %d"
                 id s))
        succs;
      blocks.(id) <- { id; insts; succs; preds = [] })
    b.acc;
  let preds = Array.make n [] in
  Array.iter
    (fun blk -> List.iter (fun s -> preds.(s) <- blk.id :: preds.(s)) blk.succs)
    blocks;
  Array.iteri
    (fun i blk -> blocks.(i) <- { blk with preds = List.rev preds.(i) })
    blocks;
  if entry < 0 || entry >= n then invalid_arg "Cfg.freeze: bad entry";
  { blocks; entry; alias }

let block t id = t.blocks.(id)
let num_blocks t = Array.length t.blocks

let hvars t =
  Array.to_list t.blocks
  |> List.concat_map (fun b -> List.filter_map Ir.hvar_of b.insts)
  |> List.sort_uniq compare

(* Rebuild with transformed instruction lists (same shape). *)
let map_insts t f =
  {
    t with
    blocks = Array.map (fun b -> { b with insts = f b.id b.insts }) t.blocks;
  }

(* All paths from the entry with at most [max_visits] traversals of each
   block (loops unrolled that many times); used by the soundness checker
   and the tests. *)
let paths ?(max_visits = 2) t =
  let n = num_blocks t in
  let result = ref [] in
  let visits = Array.make n 0 in
  let rec go id acc =
    if visits.(id) < max_visits then begin
      visits.(id) <- visits.(id) + 1;
      let acc = id :: acc in
      (match (block t id).succs with
      | [] -> result := List.rev acc :: !result
      | succs -> List.iter (fun s -> go s acc) succs);
      visits.(id) <- visits.(id) - 1
    end
    else result := List.rev acc :: !result
    (* path truncated at the unroll bound: still a valid prefix *)
  in
  go t.entry [];
  !result

let pp ppf t =
  Array.iter
    (fun b ->
      Format.fprintf ppf "@[<v2>B%d -> [%a]:@,%a@]@."
        b.id
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_int)
        b.succs
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut Ir.pp_inst)
        b.insts)
    t.blocks
