(** Control-flow graphs for the sync-coalescing pass. *)

type block = {
  id : int;
  insts : Ir.inst list;
  succs : int list;
  preds : int list;
}

type t = {
  blocks : block array;
  entry : int;
  alias : Alias.t;
}

type builder

val builder : unit -> builder

val add_block : builder -> ?succs:int list -> Ir.inst list -> int
(** Add a block with explicit successor ids (blocks may be referenced
    before being added); returns the new block's id (sequential from 0). *)

val freeze : ?alias:Alias.t -> ?entry:int -> builder -> t
(** Validate and freeze, computing predecessors.
    @raise Invalid_argument on dangling successors. *)

val block : t -> int -> block
val num_blocks : t -> int

val hvars : t -> Ir.hvar list
(** All handler variables mentioned, sorted. *)

val map_insts : t -> (int -> Ir.inst list -> Ir.inst list) -> t

val paths : ?max_visits:int -> t -> int list list
(** Entry paths with loops unrolled up to [max_visits] times per block
    (truncated paths are included as prefixes). *)

val pp : Format.formatter -> t -> unit
