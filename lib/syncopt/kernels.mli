(** CFG encodings of the paper's Figs. 14–15 and of the benchmark kernels'
    communication skeletons, used by tests and by the [qs syncopt]
    command-line tool. *)

val fig14 : unit -> Cfg.t
val fig15 : unit -> Cfg.t
val fig15_refined : unit -> Cfg.t
val pull_loop : unit -> Cfg.t
val pull_then_push : unit -> Cfg.t
val irregular_loop : unit -> Cfg.t
val irregular_loop_readonly : unit -> Cfg.t

val all : (string * (unit -> Cfg.t)) list
(** Named kernels, for the CLI. *)
