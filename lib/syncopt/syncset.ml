(* The sync-set dataflow analysis (paper Figs. 12–13).

   A forward must-analysis: a handler variable is in a block's entry
   sync-set iff on *every* path reaching the block the handler has been
   synchronized and not invalidated since.  The transfer function is
   exactly UpdateSync (Fig. 13):

     sync h     ->  synced ∪ {h}
     async h    ->  synced − may-aliases(h)
     side       ->  ∅              (arbitrary call without readonly flags)
     otherwise  ->  synced

   Meet is set intersection over predecessors (Fig. 12's [common]).  As a
   must-analysis it is solved optimistically: every non-entry block starts
   at ⊤ (all handler variables) and the worklist shrinks sets until the
   greatest fixpoint — required for the loop case of Fig. 14, where B2's
   own back edge must not pessimistically kill the set. *)

module Vset = Set.Make (String)

type result = {
  in_sets : Vset.t array;
  out_sets : Vset.t array;
}

let transfer_inst alias synced (inst : Ir.inst) =
  match inst with
  | Ir.Sync h -> Vset.add h synced
  | Ir.Async h ->
    List.fold_left (fun s v -> Vset.remove v s) synced (Alias.closure_of alias h)
  | Ir.Call_ext { readonly } -> if readonly then synced else Vset.empty
  | Ir.Read _ | Ir.Local -> synced

let transfer_block alias synced insts =
  List.fold_left (transfer_inst alias) synced insts

let analyze (cfg : Cfg.t) =
  let n = Cfg.num_blocks cfg in
  let top = Vset.of_list (Cfg.hvars cfg) in
  let in_sets = Array.make n top in
  let out_sets = Array.make n top in
  in_sets.(cfg.Cfg.entry) <- Vset.empty;
  let changed = Queue.create () in
  let queued = Array.make n false in
  let enqueue id =
    if not queued.(id) then begin
      queued.(id) <- true;
      Queue.push id changed
    end
  in
  for id = 0 to n - 1 do
    enqueue id
  done;
  while not (Queue.is_empty changed) do
    let id = Queue.pop changed in
    queued.(id) <- false;
    let b = Cfg.block cfg id in
    let input =
      if id = cfg.Cfg.entry then Vset.empty
        (* the entry's sync-set is empty even if loops return to it *)
      else
        match b.Cfg.preds with
        | [] -> Vset.empty (* unreachable block: be conservative *)
        | p :: rest ->
          List.fold_left
            (fun acc q -> Vset.inter acc out_sets.(q))
            out_sets.(p) rest
    in
    let output = transfer_block cfg.Cfg.alias input b.Cfg.insts in
    if not (Vset.equal input in_sets.(id) && Vset.equal output out_sets.(id))
    then begin
      in_sets.(id) <- input;
      out_sets.(id) <- output;
      List.iter enqueue b.Cfg.succs
    end
  done;
  { in_sets; out_sets }

(* Per-instruction sync-sets within a block, given its entry set: the set
   *before* each instruction.  Used by the elision pass and by tests. *)
let per_inst alias entry insts =
  let rec go synced = function
    | [] -> []
    | inst :: rest -> synced :: go (transfer_inst alias synced inst) rest
  in
  go entry insts
