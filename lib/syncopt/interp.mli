(** Dynamic soundness checking of the sync-coalescing pass: every removed
    sync must find its handler already synchronized on every bounded path,
    for every variable-to-handler assignment consistent with aliasing. *)

type env = (Ir.hvar * int) list

val env_consistent : Alias.t -> env -> bool
(** Equal handler identities are only allowed for may-aliased variables. *)

val check_removals :
  ?max_visits:int -> Cfg.t -> Pass.report -> env:env -> (unit, string) result
(** Walk all loop-bounded paths of the {e original} CFG and verify each
    removal site.  [cfg] must be the graph the report was computed from.
    @raise Invalid_argument on an inconsistent assignment. *)

val count_syncs : ?max_visits:int -> Cfg.t -> dyn:bool -> int
(** Total syncs executed over all bounded paths, optionally with dynamic
    coalescing (used to compare Static vs Dynamic elision counts). *)
