(* The sync-coalescing transformation (paper §3.4.2–3.4.3): remove every
   [Sync h] whose handler is already in the sync-set at that point.

   The pass only deletes provably redundant operations, so the dynamic
   sync state of the transformed program is identical to the original's at
   every remaining instruction — which is why a single analyze+rewrite
   round suffices. *)

type removal = {
  block : int;
  index : int; (* instruction index within the original block *)
  hvar : Ir.hvar;
}

type report = {
  cfg : Cfg.t; (* transformed graph *)
  removed : removal list;
  kept_syncs : int;
}

let run (cfg : Cfg.t) =
  let res = Syncset.analyze cfg in
  let removed = ref [] in
  let kept = ref 0 in
  let rewrite id insts =
    let sets = Syncset.per_inst cfg.Cfg.alias res.Syncset.in_sets.(id) insts in
    List.concat
      (List.mapi
         (fun index (inst, before) ->
           match inst with
           | Ir.Sync h when Syncset.Vset.mem h before ->
             removed := { block = id; index; hvar = h } :: !removed;
             []
           | Ir.Sync _ ->
             incr kept;
             [ inst ]
           | _ -> [ inst ])
         (List.combine insts sets))
  in
  let cfg' = Cfg.map_insts cfg rewrite in
  { cfg = cfg'; removed = List.rev !removed; kept_syncs = !kept }

let pp_report ppf r =
  Format.fprintf ppf "removed %d sync(s), kept %d:@." (List.length r.removed)
    r.kept_syncs;
  List.iter
    (fun rm ->
      Format.fprintf ppf "  - B%d[%d]: %s.sync()@." rm.block rm.index rm.hvar)
    r.removed
