(* Per-scheduler timer queue: a mutex-protected binary min-heap of armed
   deadlines with lazy cancellation.

   Design constraints, in order of importance:
   - [next_deadline] must be readable without taking the lock: busy workers
     poll it on the scheduling fast path (every [global_check_period]
     dispatches), and the parked "timekeeper" worker polls it between sleep
     slices.  It is a cached atomic that may run {e stale-early} (pointing
     at an already-cancelled entry) but never stale-late: a reader that sees
     a deadline in the future is guaranteed no live timer is due before it.
   - Arming and cancelling must be cheap: the dominant client is a deadline
     query that arms on issue and cancels on fulfilment, so [cancel] is a
     single CAS (lazy removal) and [arm] amortizes heap compaction.
   - Actions run outside the lock.  A timer action is a fiber resumer, which
     re-enters the scheduler ([schedule] → [wake_idlers]); running it under
     [t.lock] would invite lock-order cycles with the scheduler's idle
     mutex. *)

exception Timeout
(* Raised by deadline-bounded waits throughout the runtime (promise await,
   fiber-mutex timed lock, and — re-exported as [Scoop.Timeout] — the whole
   scoop request path). *)

type handle = {
  deadline : float;
  seq : int; (* FIFO tie-break among equal deadlines *)
  action : unit -> unit;
  claimed : bool Atomic.t; (* armed=false; fired-or-cancelled=true *)
  owner : t;
}

and t = {
  lock : Mutex.t;
  mutable heap : handle option array; (* binary min-heap by (deadline, seq) *)
  mutable size : int;
  mutable next_seq : int;
  earliest : float Atomic.t; (* <= every live deadline; infinity if none *)
  live : int Atomic.t; (* armed and not yet fired/cancelled *)
  (* counters (atomic: [cancel] runs without the lock) *)
  armed : int Atomic.t;
  fired : int Atomic.t;
  cancelled : int Atomic.t;
}

let now () = Unix.gettimeofday ()

let create () =
  {
    lock = Mutex.create ();
    heap = Array.make 8 None;
    size = 0;
    next_seq = 0;
    earliest = Atomic.make infinity;
    live = Atomic.make 0;
    armed = Atomic.make 0;
    fired = Atomic.make 0;
    cancelled = Atomic.make 0;
  }

(* -- heap primitives (call with [t.lock] held) ---------------------------- *)

let entry t i = match t.heap.(i) with Some e -> e | None -> assert false

let before a b =
  a.deadline < b.deadline || (a.deadline = b.deadline && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if before (entry t i) (entry t p) then begin
      swap t i p;
      sift_up t p
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 in
  if l < t.size then begin
    let m = if l + 1 < t.size && before (entry t (l + 1)) (entry t l) then l + 1 else l in
    if before (entry t m) (entry t i) then begin
      swap t i m;
      sift_down t m
    end
  end

let push t e =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) None in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- Some e;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  let root = entry t 0 in
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- None;
  if t.size > 0 then sift_down t 0;
  root

(* Rebuild the heap without claimed (cancelled/fired) entries.  Amortized
   into [arm] so a cancel-heavy workload (deadline queries that always
   complete in time) does not accumulate dead entries until their distant
   deadlines pass. *)
let compact t =
  let old = t.heap in
  let n = t.size in
  t.heap <- Array.make (max 8 (Array.length old)) None;
  t.size <- 0;
  for i = 0 to n - 1 do
    match old.(i) with
    | Some e when not (Atomic.get e.claimed) -> push t e
    | _ -> ()
  done

let refresh_earliest t =
  Atomic.set t.earliest (if t.size = 0 then infinity else (entry t 0).deadline)

(* -- public operations ---------------------------------------------------- *)

let arm t ~deadline action =
  Mutex.lock t.lock;
  let e =
    { deadline; seq = t.next_seq; action; claimed = Atomic.make false; owner = t }
  in
  t.next_seq <- t.next_seq + 1;
  if t.size >= 64 && Atomic.get t.live < t.size / 2 then begin
    compact t;
    refresh_earliest t
  end;
  push t e;
  Atomic.incr t.live;
  Atomic.incr t.armed;
  if deadline < Atomic.get t.earliest then Atomic.set t.earliest deadline;
  Mutex.unlock t.lock;
  e

let cancel e =
  if Atomic.compare_and_set e.claimed false true then begin
    Atomic.decr e.owner.live;
    Atomic.incr e.owner.cancelled;
    true
  end
  else false

let next_deadline t = Atomic.get t.earliest

let pending t = Atomic.get t.live > 0

let fire_due t ~now =
  if Atomic.get t.earliest > now then 0
  else begin
    Mutex.lock t.lock;
    let due = ref [] in
    let n_due = ref 0 in
    let continue_ = ref true in
    while !continue_ && t.size > 0 do
      let root = entry t 0 in
      if Atomic.get root.claimed then ignore (pop t : handle) (* prune *)
      else if root.deadline <= now then begin
        let e = pop t in
        (* claim against a racing [cancel] *)
        if Atomic.compare_and_set e.claimed false true then begin
          Atomic.decr t.live;
          Atomic.incr t.fired;
          incr n_due;
          due := e :: !due
        end
      end
      else continue_ := false
    done;
    refresh_earliest t;
    Mutex.unlock t.lock;
    (* Oldest deadline first; actions run unlocked (they re-enter the
       scheduler).  An action that raises would unwind into the worker
       loop, so contain it here — resumers are not supposed to raise. *)
    List.iter
      (fun e ->
        try e.action ()
        with exn ->
          Logs.err (fun m ->
            m "timer: action raised %s" (Printexc.to_string exn)))
      (List.rev !due);
    !n_due
  end

type counters = { t_armed : int; t_fired : int; t_cancelled : int }

let counters t =
  {
    t_armed = Atomic.get t.armed;
    t_fired = Atomic.get t.fired;
    t_cancelled = Atomic.get t.cancelled;
  }
