(* Work-stealing fiber scheduler over OCaml 5 domains.

   This is the bottom two layers of the SCOOP/Qs runtime (paper §3): "task
   switching" is provided by effect handlers (one-shot continuations), and
   "lightweight threads" are fibers multiplexed over a fixed set of domains.
   SCOOP handlers, actors, goroutine-style workers and STM transactions in
   the sibling libraries are all fibers of this scheduler.

   Scheduling structure per worker:
   - a [hot] slot, one fiber deep: a fiber resumed by the currently running
     fiber is placed here and runs next on this worker.  This implements the
     paper's direct client/handler handoff ("control passes directly from
     the handler to the client, ... avoiding the global scheduler").
   - a Chase–Lev deque for local work (LIFO for the owner, stolen FIFO).
   - a *sharded* injection queue per pool (see below) used by [yield]
     (round-robin fairness) and by overflow/remote scheduling.  The old
     single Michael–Scott MPMC here was the hottest contention point in the
     runtime (see the qoq-mpmc ablation); [Sharded_mpmc] splits that
     traffic per worker.

   Pools: a scheduler owns one or more named pools, each with its own
   injection queue and an (elastic) set of member workers.  Every fiber
   belongs to the pool it was spawned in; scheduling a fiber from a worker
   of another pool routes it to its home pool's injection queue instead of
   the local deque, and steals are pool-local (a stolen job that turns out
   to belong elsewhere is sent home, never run).  Workers re-evaluate pool
   membership every [reeval_period] dispatches and whenever they run dry:
   hot pools absorb idle workers, idle pools shrink to zero members.  Pool
   0 is always ["default"] and is where [run]'s main fiber and unpinned
   work live, so a single-pool scheduler behaves exactly as before.

   Idle workers spin briefly, steal, then sleep on a condition variable.
   The last worker to go idle while live fibers remain has found a global
   stall: every wake-up in this system comes from another fiber, so
   all-idle + live>0 is a genuine deadlock (this is how the runtime-level
   deadlock tests for paper §2.5 observe deadlocks instead of hanging). *)

exception Stalled of int
(** Raised out of {!run} when all workers are idle but fibers remain
    suspended; the payload is the number of stuck fibers. *)

type resumer = unit -> unit

type task = unit -> unit

(* A pool: a named injection queue plus load/membership accounting.  The
   jobs it carries know their pool, so any worker can prove where a piece
   of work belongs no matter which queue it surfaced from. *)
type pool = {
  pool_id : int;
  pool_name : string;
  inject : job Qs_queues.Sharded_mpmc.t;
  pending : int Atomic.t; (* jobs in [inject], for migration scoring *)
  assigned : int Atomic.t; (* member workers (parked workers leave) *)
  pn_drains : int Atomic.t; (* jobs taken out of [inject] *)
  pn_migrations : int Atomic.t; (* workers that joined from another pool *)
  pn_idle_shrinks : int Atomic.t; (* times the pool emptied of workers *)
}

and job = {
  run : task;
  jpool : pool; (* home pool; fibers never change pools *)
}

type worker = {
  wid : int;
  deque : job Qs_queues.Ws_deque.t;
  mutable hot : job option;
  mutable pool : pool; (* current membership; only [wid] writes it *)
  mutable tick : int;
  mutable steal_seed : int;
  (* per-worker plain counters, aggregated after the run *)
  mutable n_executed : int;
  mutable n_handoffs : int;
  mutable n_steals : int;
  mutable n_parks : int;
}

(* Scheduling counters — the "SCOOP-specific instrumentation" of paper §7
   at the scheduler layer.  [handoffs] counts hot-slot direct transfers
   (the §3.2 optimization), [parks] counts worker sleeps: together they
   quantify the context-switch claims of §4.3.  The pool trio aggregates
   the per-pool cells (see {!pool_counters} for the breakdown). *)
type counters = {
  c_executed : int; (* fiber dispatches *)
  c_handoffs : int; (* direct handoffs through the hot slot *)
  c_steals : int; (* successful steals *)
  c_parks : int; (* worker park episodes *)
  c_timer_arms : int; (* timers armed *)
  c_timer_fires : int; (* timers that expired and ran their action *)
  c_pool_drains : int; (* jobs taken from pool injection queues *)
  c_pool_migrations : int; (* workers switching pools *)
  c_pool_idle_shrinks : int; (* pools emptied of member workers *)
}

type pool_counters = {
  p_name : string;
  p_workers : int; (* current member workers (racy) *)
  p_pending : int; (* jobs waiting in the injection queue (racy) *)
  p_drains : int;
  p_migrations : int;
  p_idle_shrinks : int;
}

type t = {
  pools : pool array; (* index 0 is always "default" *)
  workers : worker array;
  timers : Timer.t; (* per-scheduler deadline queue *)
  poller : Poller.t; (* per-scheduler fd-readiness queue *)
  live : int Atomic.t; (* spawned but not yet completed fibers *)
  idle_hint : int Atomic.t;
  idle_mutex : Mutex.t;
  idle_cond : Condition.t;
  mutable idlers : int;
  mutable has_timekeeper : bool; (* a parked worker is watching the clock *)
  mutable stalled : bool;
  mutable stop : bool;
  first_exn : exn option Atomic.t;
  on_stall : [ `Raise | `Warn ];
  obs : Qs_obs.Sink.t option; (* event sink for worker-level tracing *)
}

(* Worker events land in the shared observability sink under the "sched"
   category, one track per worker: dispatch spans, park spans, steal and
   handoff instants.  Pool membership events get their own lanes (category
   "pool", track 1000 + pool id) so a Chrome trace shows each pool's
   worker arrivals and shrink-to-zero moments as a separate row.
   Everything is behind [t.obs = Some _], so an untraced run pays one
   branch. *)
let obs_cat = "sched"

let pool_track p = 1000 + p.pool_id

type _ Effect.t +=
  | Suspend : (resumer -> unit) -> unit Effect.t
  | Yield : unit Effect.t

(* The scheduler owning the current domain, if any. *)
let current : (t * worker) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let get_worker () = Domain.DLS.get current

let num_workers t = Array.length t.workers

let default_pool t = t.pools.(0)

let find_pool t name =
  let n = Array.length t.pools in
  let rec go i =
    if i = n then None
    else if t.pools.(i).pool_name = name then Some t.pools.(i)
    else go (i + 1)
  in
  go 0

let pool_names t =
  Array.to_list (Array.map (fun p -> p.pool_name) t.pools)

let wake_idlers t =
  if Atomic.get t.idle_hint > 0 then begin
    Mutex.lock t.idle_mutex;
    Condition.broadcast t.idle_cond;
    Mutex.unlock t.idle_mutex
  end

(* Send a job to its home pool's injection queue.  [pending] is bumped
   before the push so a migrating worker never observes the queue fuller
   than the score says — the transient is a phantom pending unit, which at
   worst wakes a worker early. *)
let push_job t job =
  Atomic.incr job.jpool.pending;
  Qs_queues.Sharded_mpmc.push job.jpool.inject job;
  wake_idlers t

let push_pool t pool run = push_job t { run; jpool = pool }

(* Schedule [job] for execution: hot slot if the caller is a worker of [t]
   *member of the job's pool* and the slot is free, else the caller's
   deque, else the pool's injection queue.  The pool guard is what makes
   pinning sound: work for pool P only ever sits in queues drained by P's
   workers. *)
let schedule t job =
  match get_worker () with
  | Some (t', w) when t' == t && w.pool == job.jpool ->
    if w.hot = None then begin
      w.n_handoffs <- w.n_handoffs + 1;
      (match t.obs with
      | Some sink ->
        Qs_obs.Sink.instant sink ~cat:obs_cat ~name:"handoff" ~track:w.wid ()
      | None -> ());
      w.hot <- Some job
    end
    else begin
      Qs_queues.Ws_deque.push w.deque job;
      wake_idlers t
    end
  | Some _ | None -> push_job t job

(* Like [schedule] but never uses the hot slot: used by [spawn] so a parent
   that spawns many fibers does not serialize behind each child. *)
let schedule_cold t job =
  match get_worker () with
  | Some (t', w) when t' == t && w.pool == job.jpool ->
    Qs_queues.Ws_deque.push w.deque job;
    wake_idlers t
  | Some _ | None -> push_job t job

(* Arm a one-shot timer on [t]'s timer queue.  The armed→fired interval is
   recorded as a "timer" span when tracing; parked workers are nudged so a
   timekeeper picks up the (possibly earlier) deadline. *)
let arm_timer_on t ~deadline action =
  let action =
    match t.obs with
    | None -> action
    | Some sink ->
      let t0 = Qs_obs.Sink.now sink in
      fun () ->
        let track = match get_worker () with Some (_, w) -> w.wid | None -> 0 in
        Qs_obs.Sink.complete sink ~cat:obs_cat ~name:"timer" ~track ~ts:t0
          ~dur:(Qs_obs.Sink.now sink -. t0)
          ();
        action ()
  in
  let handle = Timer.arm t.timers ~deadline action in
  wake_idlers t;
  handle

let record_exn t e =
  ignore (Atomic.compare_and_set t.first_exn None (Some e) : bool);
  Logs.err (fun m ->
    m "sched: fiber died with exception: %s" (Printexc.to_string e))

let fiber_done t =
  if Atomic.fetch_and_add t.live (-1) = 1 then begin
    (* Last fiber finished: release every sleeping worker so they can
       observe termination. *)
    Mutex.lock t.idle_mutex;
    t.stop <- true;
    Condition.broadcast t.idle_cond;
    Mutex.unlock t.idle_mutex
  end

(* Run a fresh fiber body under the effect handler.  Continuations resumed
   later re-enter this handler automatically.  [pool] is the fiber's home
   pool, captured once at spawn: every later resumption and yield routes
   through it, so a fiber pinned to a pool stays pinned across suspension
   points. *)
let exec t pool (body : unit -> unit) =
  let open Effect.Deep in
  match_with body ()
    {
      retc = (fun () -> fiber_done t);
      exnc =
        (fun e ->
          record_exn t e;
          fiber_done t);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
            Some
              (fun (k : (a, unit) continuation) ->
                let resumed = Atomic.make false in
                let resume () =
                  if Atomic.compare_and_set resumed false true then
                    schedule t { run = (fun () -> continue k ()); jpool = pool }
                in
                register resume)
          | Yield ->
            Some (fun (k : (a, unit) continuation) ->
              push_pool t pool (fun () -> continue k ()))
          | _ -> None);
    }

let spawn_on_pool t pool body =
  Atomic.incr t.live;
  schedule_cold t { run = (fun () -> exec t pool body); jpool = pool }

(* Fibers inherit the spawner's *current* pool.  During a job's execution
   the worker's membership equals the job's home pool (membership only
   changes between jobs), so inheritance is deterministic: children live
   where their parent lives unless spawned through [spawn_in]. *)
let spawn_on t body =
  let pool =
    match get_worker () with
    | Some (t', w) when t' == t -> w.pool
    | Some _ | None -> default_pool t
  in
  spawn_on_pool t pool body

let spawn body =
  match get_worker () with
  | Some (t, w) -> spawn_on_pool t w.pool body
  | None -> invalid_arg "Sched.spawn: not running inside a scheduler"

let spawn_in name body =
  match get_worker () with
  | Some (t, _) -> (
    match find_pool t name with
    | Some pool -> spawn_on_pool t pool body
    | None -> invalid_arg ("Sched.spawn_in: unknown pool " ^ name))
  | None -> invalid_arg "Sched.spawn_in: not running inside a scheduler"

let current_pool () =
  match get_worker () with
  | Some (_, w) -> w.pool.pool_name
  | None -> invalid_arg "Sched.current_pool: not running inside a scheduler"

let suspend register = Effect.perform (Suspend register)

let yield () = Effect.perform Yield

(* Fd-readiness waits: park this fiber until [fd] is ready (or a closed
   fd triggers the poller's error sweep — the caller's retried syscall
   then surfaces the error in its own context).  The registration is
   one-shot; callers loop: try the syscall, on EAGAIN await and retry. *)
let await_fd name dir fd =
  match get_worker () with
  | Some (t, _) ->
    suspend (fun resume ->
      Poller.register t.poller fd dir resume;
      (* A parked worker must notice the new wake source and claim the
         timekeeper/poller role: the count is visible before this
         broadcast, and parked workers re-check under the idle mutex. *)
      wake_idlers t)
  | None -> invalid_arg (name ^ ": not running inside a scheduler")

let await_readable fd = await_fd "Sched.await_readable" Poller.Read fd

let await_writable fd = await_fd "Sched.await_writable" Poller.Write fd

let arm_timer ~delay action =
  match get_worker () with
  | Some (t, _) -> arm_timer_on t ~deadline:(Timer.now () +. delay) action
  | None -> invalid_arg "Sched.arm_timer: not running inside a scheduler"

let sleep dt =
  match get_worker () with
  | None -> invalid_arg "Sched.sleep: not running inside a scheduler"
  | Some (t, _) ->
    if dt <= 0.0 then yield ()
    else
      suspend (fun resume ->
        ignore
          (arm_timer_on t ~deadline:(Timer.now () +. dt) resume : Timer.handle))

(* Timed variant of [suspend].  The timer action and the registered resumer
   race on [state]; the CAS makes the outcomes mutually exclusive, so the
   continuation is resumed exactly once and the caller can trust the
   verdict: [`Timed_out] guarantees the timer won and any later invocation
   of the registered resumer is a no-op (the one-shot [resumed] CAS in
   [exec] is not enough by itself — it cannot tell the caller {e which}
   path resumed it). *)
let suspend_timeout register delay =
  match get_worker () with
  | None -> invalid_arg "Sched.suspend_timeout: not running inside a scheduler"
  | Some (t, _) ->
    (* 0 = waiting, 1 = resumed by the registered event, 2 = timed out *)
    let state = Atomic.make 0 in
    suspend (fun resume ->
      let handle =
        arm_timer_on t
          ~deadline:(Timer.now () +. Float.max 0.0 delay)
          (fun () -> if Atomic.compare_and_set state 0 2 then resume ())
      in
      register (fun () ->
        if Atomic.compare_and_set state 0 1 then begin
          ignore (Timer.cancel handle : bool);
          resume ()
        end));
    if Atomic.get state = 2 then `Timed_out else `Resumed

(* -- Pool membership ------------------------------------------------------ *)

(* Workers re-evaluate which pool to drain every [reeval_period] dispatches
   (the elastic-pool cadence): often enough that a flooded pool absorbs
   idle capacity within microseconds, rare enough that the scoring loads
   are invisible next to the dispatches themselves. *)
let reeval_period = 32

(* Load score: queued jobs per member worker.  The +1 keeps empty pools
   comparable and models the candidate worker itself joining. *)
let pool_score p =
  float_of_int (Atomic.get p.pending) /. float_of_int (1 + max 0 (Atomic.get p.assigned))

let leave_pool t w =
  let p = w.pool in
  Atomic.decr p.assigned;
  if Atomic.get p.assigned <= 0 && Atomic.get p.pending = 0 then begin
    Atomic.incr p.pn_idle_shrinks;
    match t.obs with
    | Some sink ->
      Qs_obs.Sink.instant sink ~cat:"pool" ~name:"shrink" ~track:(pool_track p)
        ~arg:w.wid ()
    | None -> ()
  end

let join_pool t w p ~migrated =
  w.pool <- p;
  Atomic.incr p.assigned;
  if migrated then begin
    Atomic.incr p.pn_migrations;
    match t.obs with
    | Some sink ->
      Qs_obs.Sink.instant sink ~cat:"pool" ~name:"migrate" ~track:(pool_track p)
        ~arg:w.wid ()
    | None -> ()
  end

(* Best migration target other than [cur]: highest score among pools with
   queued work. *)
let best_other_pool t cur =
  let best = ref None in
  let best_score = ref 0.0 in
  Array.iter
    (fun p ->
      if p != cur && Atomic.get p.pending > 0 then begin
        let s = pool_score p in
        if s > !best_score then begin
          best := Some p;
          best_score := s
        end
      end)
    t.pools;
  (!best, !best_score)

(* Periodic re-evaluation, between jobs only (hot slot and deque must be
   empty so no already-claimed work crosses pools with the worker). *)
let maybe_reeval t w =
  if
    Array.length t.pools > 1
    && w.n_executed mod reeval_period = 0
    && w.hot = None
    && Qs_queues.Ws_deque.size w.deque = 0
  then begin
    let cur = w.pool in
    match best_other_pool t cur with
    | Some p, s
      when Atomic.get cur.pending = 0 || s > 2.0 *. pool_score cur ->
      leave_pool t w;
      join_pool t w p ~migrated:true
    | _ -> ()
  end

let migrate_to t w p =
  leave_pool t w;
  join_pool t w p ~migrated:true

(* A worker that found no work at all: before spinning or parking, move to
   any pool with queued jobs.  This is the absorb side of autoscaling and
   also what prevents livelock — without it, work injected into a pool
   whose membership shrank to zero would only be picked up via the park
   path.  With no injection backlog anywhere, a pool whose members hold
   stealable deque work is the fallback target (steals are pool-local, so
   helping requires joining first). *)
let idle_migrate t w =
  if Array.length t.pools <= 1 then false
  else
    match best_other_pool t w.pool with
    | Some p, _ ->
      migrate_to t w p;
      true
    | None, _ ->
      let n = Array.length t.workers in
      let rec find i =
        if i = n then false
        else
          let v = t.workers.(i) in
          if v.pool != w.pool && Qs_queues.Ws_deque.size v.deque > 0 then begin
            migrate_to t w v.pool;
            true
          end
          else find (i + 1)
      in
      find 0

(* -- Worker loop ---------------------------------------------------------- *)

let take_hot w =
  match w.hot with
  | Some _ as job ->
    w.hot <- None;
    job
  | None -> None

(* Pool-local stealing: only workers of the same pool are victims, so a
   pinned pool's work stays on its members.  Membership reads race with
   migration, so a stolen job is re-checked against its [jpool] tag: a
   mismatch (the victim migrated after pushing it) sends the job home via
   its pool's injection queue instead of running it here. *)
let try_steal t w =
  let n = Array.length t.workers in
  if n <= 1 then None
  else begin
    (* xorshift for victim selection; any distribution works, we only need
       to avoid all thieves hammering worker 0. *)
    let s = w.steal_seed in
    let s = s lxor (s lsl 13) in
    let s = s lxor (s lsr 7) in
    let s = s lxor (s lsl 17) in
    w.steal_seed <- s;
    let start = abs s mod n in
    let rec loop i =
      if i = n then None
      else
        let v = t.workers.((start + i) mod n) in
        if v.wid = w.wid || v.pool != w.pool then loop (i + 1)
        else
          match Qs_queues.Ws_deque.steal v.deque with
          | Some job when job.jpool != w.pool ->
            push_job t job;
            loop (i + 1)
          | Some _ as job ->
            w.n_steals <- w.n_steals + 1;
            (match t.obs with
            | Some sink ->
              Qs_obs.Sink.instant sink ~cat:obs_cat ~name:"steal" ~track:w.wid
                ~arg:v.wid ()
            | None -> ());
            job
          | None -> loop (i + 1)
    in
    loop 0
  end

(* Every [global_check_period] dispatches, look at the pool's injection
   queue before every other source — including the hot slot — so that
   yielded fibers are not starved by a busy local supply (needed by retry
   loops, e.g. the `condition` benchmark).  The hot slot must be subject
   to this check too: a direct-handoff ping-pong pair (client↔handler on
   one worker) refills the slot on every dispatch, so consulting it first
   would starve the global queue indefinitely.  A hot task skipped by the
   periodic check is not lost — it stays in the slot and runs on the next
   dispatch. *)
let global_check_period = 17

(* Cheap timer poll for busy workers: one atomic load when no deadline is
   near, a clock read plus [Timer.fire_due] when one is. *)
let fire_due_timers t =
  let d = Timer.next_deadline t.timers in
  if d < infinity then begin
    let now = Timer.now () in
    if d <= now then ignore (Timer.fire_due t.timers ~now : int)
  end

let next_task t w =
  w.tick <- w.tick + 1;
  let from_inject () =
    (* Start the shard sweep at the worker's own shard so concurrent
       drainers fan out instead of convoying. *)
    match Qs_queues.Sharded_mpmc.pop_from w.pool.inject w.wid with
    | Some job as r ->
      Atomic.decr job.jpool.pending;
      Atomic.incr job.jpool.pn_drains;
      r
    | None -> None
  in
  let local () = Qs_queues.Ws_deque.pop w.deque in
  let periodic = w.tick mod global_check_period = 0 in
  if periodic then begin
    fire_due_timers t;
    (* Zero-timeout readiness sweep: busy workers service fd waiters at
       the same cadence as due timers, so I/O completions don't wait for
       the whole runtime to go idle. *)
    if Poller.has_waiters t.poller then
      ignore (Poller.poll t.poller ~timeout:0.0 : int);
    match from_inject () with
    | Some _ as job -> job
    | None -> (
      match take_hot w with
      | Some _ as job -> job
      | None -> (
        match local () with
        | Some _ as job -> job
        | None -> try_steal t w))
  end
  else
    match take_hot w with
    | Some _ as job -> job
    | None -> (
      match local () with
      | Some _ as job -> job
      | None -> (
        match from_inject () with
        | Some _ as job -> job
        | None -> try_steal t w))

(* Any runnable work anywhere?  Consulted on every park decision, so both
   levels short-circuit: the pool scan stops at the first pool whose
   sharded queue admits non-emptiness, and [Sharded_mpmc.is_empty] itself
   stops at the first non-empty shard. *)
let any_work t =
  Array.exists
    (fun p -> not (Qs_queues.Sharded_mpmc.is_empty p.inject))
    t.pools
  || Array.exists
       (fun w -> w.hot <> None || Qs_queues.Ws_deque.size w.deque > 0)
       t.workers

(* Maximum sleep slice for the parked timekeeper: bounds the latency with
   which an off-condvar sleeper notices [stop], work pushed from outside the
   scheduler, or a newly armed earlier deadline.  OCaml's [Condition] has no
   timed wait, so the timekeeper dozes in bounded [Unix.sleepf] slices
   instead. *)
let timekeeper_slice = 0.001

(* Sleep until work arrives, a timer is due, [stop] is set, or a stall is
   detected.  Returns [false] iff the worker should exit.

   Pending timers make parking time-aware: a sleeping fiber is *not* a
   deadlock, so the stall branch additionally requires [Timer.pending] to be
   false.  While timers are pending, exactly one parked worker acts as the
   timekeeper ([t.has_timekeeper]): it dozes in short slices until the
   earliest deadline and then fires due timers; every other idler waits on
   the condition variable as before.  The timekeeper hands the clock to
   another parked worker (broadcast) whenever it leaves the role with timers
   still pending. *)
let park t =
  Mutex.lock t.idle_mutex;
  if t.stop then begin
    Mutex.unlock t.idle_mutex;
    false
  end
  else begin
    t.idlers <- t.idlers + 1;
    Atomic.incr t.idle_hint;
    let leave continue_ =
      t.idlers <- t.idlers - 1;
      Atomic.decr t.idle_hint;
      Mutex.unlock t.idle_mutex;
      continue_
    in
    let rec wait_for_work () =
      if t.stop then leave false
      else if any_work t then leave true
      else if Timer.pending t.timers || Poller.has_waiters t.poller then
        if t.has_timekeeper then begin
          (* Someone else is watching the clock. *)
          Condition.wait t.idle_cond t.idle_mutex;
          wait_for_work ()
        end
        else timekeep ()
      else if t.idlers = Array.length t.workers && Atomic.get t.live > 0 then begin
        (* Global stall: every runnable source is empty, all workers idle,
           no timer can fire, yet fibers remain suspended.  No external
           event can wake them. *)
        t.stalled <- true;
        t.stop <- true;
        Condition.broadcast t.idle_cond;
        leave false
      end
      else begin
        Condition.wait t.idle_cond t.idle_mutex;
        wait_for_work ()
      end
    and timekeep () =
      t.has_timekeeper <- true;
      let rec doze () =
        if t.stop || any_work t then relinquish ()
        else begin
          let deadline = Timer.next_deadline t.timers in
          if deadline = infinity && not (Poller.has_waiters t.poller) then
            relinquish ()
          else begin
            let now = Timer.now () in
            if deadline <= now then begin
              (* Leave the idle set first: timer actions re-enter the
                 scheduler (schedule → wake_idlers) and must not run under
                 the idle mutex. *)
              t.has_timekeeper <- false;
              t.idlers <- t.idlers - 1;
              Atomic.decr t.idle_hint;
              Mutex.unlock t.idle_mutex;
              ignore (Timer.fire_due t.timers ~now : int);
              (* If deadlines or fd waiters remain, make sure some parked
                 worker claims the clock — this worker is about to get
                 busy. *)
              if Timer.pending t.timers || Poller.has_waiters t.poller then
                wake_idlers t;
              true
            end
            else begin
              (* [deadline] may be [infinity] here (pure I/O wait): the
                 [min] still clamps the slice.  With fd waiters present
                 the doze is a [select] bounded by the slice — readiness
                 ends it early, so frames on an idle runtime wake their
                 fiber immediately instead of at the slice boundary. *)
              let slice = Float.min (deadline -. now) timekeeper_slice in
              Mutex.unlock t.idle_mutex;
              if Poller.has_waiters t.poller then
                ignore (Poller.poll t.poller ~timeout:slice : int)
              else Unix.sleepf slice;
              Mutex.lock t.idle_mutex;
              doze ()
            end
          end
        end
      and relinquish () =
        t.has_timekeeper <- false;
        if Timer.pending t.timers || Poller.has_waiters t.poller then
          Condition.broadcast t.idle_cond;
        wait_for_work ()
      in
      doze ()
    in
    (* Re-check after advertising idleness: a concurrent [push_global] that
       missed our hint must be visible to us now. *)
    wait_for_work ()
  end

(* After a park, rejoin the most loaded pool (a parked worker belongs to no
   pool, which is how idle pools shrink to zero members); with nothing
   pending anywhere, resume the previous membership. *)
let rejoin_pool t w =
  let old = w.pool in
  let target =
    if Array.length t.pools = 1 then old
    else begin
      let best = ref old in
      let best_score = ref (pool_score old) in
      Array.iter
        (fun p ->
          if Atomic.get p.pending > 0 then begin
            let s = pool_score p in
            if s > !best_score then begin
              best := p;
              best_score := s
            end
          end)
        t.pools;
      !best
    end
  in
  join_pool t w target ~migrated:(target != old)

let worker_loop t w =
  Domain.DLS.set current (Some (t, w));
  let spins = ref 0 in
  let rec loop () =
    if t.stop then ()
    else
      match next_task t w with
      | Some job ->
        spins := 0;
        w.n_executed <- w.n_executed + 1;
        (match t.obs with
        | None -> job.run ()
        | Some sink ->
          (* Dispatch span: one fiber slice on this worker. *)
          let t0 = Qs_obs.Sink.now sink in
          job.run ();
          Qs_obs.Sink.complete sink ~cat:obs_cat ~name:"dispatch" ~track:w.wid
            ~ts:t0
            ~dur:(Qs_obs.Sink.now sink -. t0)
            ());
        maybe_reeval t w;
        loop ()
      | None ->
        if idle_migrate t w then loop ()
        else begin
          incr spins;
          if !spins < 64 then begin
            Domain.cpu_relax ();
            loop ()
          end
          else begin
            spins := 0;
            w.n_parks <- w.n_parks + 1;
            (* Membership is released for the duration of the sleep: a
               parked worker counts toward no pool. *)
            leave_pool t w;
            let continue_ =
              match t.obs with
              | None -> park t
              | Some sink ->
                (* Park span: the worker is asleep (or deciding to). *)
                let t0 = Qs_obs.Sink.now sink in
                let continue_ = park t in
                Qs_obs.Sink.complete sink ~cat:obs_cat ~name:"park" ~track:w.wid
                  ~ts:t0
                  ~dur:(Qs_obs.Sink.now sink -. t0)
                  ();
                continue_
            in
            if continue_ then begin
              rejoin_pool t w;
              loop ()
            end
          end
        end
  in
  loop ();
  Domain.DLS.set current None

let make ?(domains = 1) ?(pools = []) ?obs ~on_stall () =
  let domains = max 1 domains in
  let names = "default" :: pools in
  let () =
    let seen = Hashtbl.create 8 in
    List.iter
      (fun name ->
        if name = "" then invalid_arg "Sched.make: empty pool name";
        if Hashtbl.mem seen name then
          invalid_arg ("Sched.make: duplicate pool " ^ name);
        Hashtbl.add seen name ())
      names
  in
  let pools =
    Array.of_list
      (List.mapi
         (fun pool_id pool_name ->
           {
             pool_id;
             pool_name;
             (* One shard per worker: injection traffic splits across
                domains instead of convoying on one queue. *)
             inject = Qs_queues.Sharded_mpmc.create_sharded ~shards:domains ();
             pending = Atomic.make 0;
             (* Every worker starts in the default pool; the others fill
                elastically. *)
             assigned = Atomic.make (if pool_id = 0 then domains else 0);
             pn_drains = Atomic.make 0;
             pn_migrations = Atomic.make 0;
             pn_idle_shrinks = Atomic.make 0;
           })
         names)
  in
  {
    obs;
    pools;
    workers =
      Array.init domains (fun wid ->
        {
          wid;
          deque = Qs_queues.Ws_deque.create ();
          hot = None;
          pool = pools.(0);
          tick = 0;
          steal_seed = (wid * 0x9E3779B9) + 0x5DEECE66D;
          n_executed = 0;
          n_handoffs = 0;
          n_steals = 0;
          n_parks = 0;
        });
    timers = Timer.create ();
    poller = Poller.create ();
    live = Atomic.make 0;
    idle_hint = Atomic.make 0;
    idle_mutex = Mutex.create ();
    idle_cond = Condition.create ();
    idlers = 0;
    has_timekeeper = false;
    stalled = false;
    stop = false;
    first_exn = Atomic.make None;
    on_stall;
  }

(* Live counters snapshot: per-worker fields are plain (unsynchronized)
   ints, so a mid-run aggregate is approximate — each addend is a value
   the worker recently wrote, but the sum is not a consistent cut.  At
   quiescence (end of run) it is exact. *)
let counters t =
  let tc = Timer.counters t.timers in
  let pd = ref 0 and pm = ref 0 and ps = ref 0 in
  Array.iter
    (fun p ->
      pd := !pd + Atomic.get p.pn_drains;
      pm := !pm + Atomic.get p.pn_migrations;
      ps := !ps + Atomic.get p.pn_idle_shrinks)
    t.pools;
  Array.fold_left
    (fun acc w ->
      {
        acc with
        c_executed = acc.c_executed + w.n_executed;
        c_handoffs = acc.c_handoffs + w.n_handoffs;
        c_steals = acc.c_steals + w.n_steals;
        c_parks = acc.c_parks + w.n_parks;
      })
    {
      c_executed = 0;
      c_handoffs = 0;
      c_steals = 0;
      c_parks = 0;
      c_timer_arms = tc.Timer.t_armed;
      c_timer_fires = tc.Timer.t_fired;
      c_pool_drains = !pd;
      c_pool_migrations = !pm;
      c_pool_idle_shrinks = !ps;
    }
    t.workers

let pool_counters t =
  Array.to_list
    (Array.map
       (fun p ->
         {
           p_name = p.pool_name;
           p_workers = max 0 (Atomic.get p.assigned);
           p_pending = max 0 (Atomic.get p.pending);
           p_drains = Atomic.get p.pn_drains;
           p_migrations = Atomic.get p.pn_migrations;
           p_idle_shrinks = Atomic.get p.pn_idle_shrinks;
         })
       t.pools)

let current_pool_counters () =
  match get_worker () with
  | Some (t, _) -> pool_counters t
  | None -> []

(* Flat name→value view: the three aggregates first (stable keys for the
   bench JSON / CI assertions), then a per-pool breakdown under
   [pool.<name>.<field>]. *)
let pool_counters_assoc per =
  let agg name field =
    (name, List.fold_left (fun acc p -> acc + field p) 0 per)
  in
  agg "pool_drains" (fun p -> p.p_drains)
  :: agg "pool_migrations" (fun p -> p.p_migrations)
  :: agg "pool_idle_shrinks" (fun p -> p.p_idle_shrinks)
  :: List.concat_map
       (fun p ->
         let key f = Printf.sprintf "pool.%s.%s" p.p_name f in
         [
           (key "workers", p.p_workers);
           (key "pending", p.p_pending);
           (key "drains", p.p_drains);
           (key "migrations", p.p_migrations);
           (key "idle_shrinks", p.p_idle_shrinks);
         ])
       per

let current_counters () =
  match get_worker () with
  | Some (t, _) -> Some (counters t)
  | None -> None

let counters_assoc c =
  [
    ("sched_dispatches", c.c_executed);
    ("sched_handoffs", c.c_handoffs);
    ("sched_steals", c.c_steals);
    ("sched_parks", c.c_parks);
    ("sched_timer_arms", c.c_timer_arms);
    ("sched_timer_fires", c.c_timer_fires);
    ("pool_drains", c.c_pool_drains);
    ("pool_migrations", c.c_pool_migrations);
    ("pool_idle_shrinks", c.c_pool_idle_shrinks);
  ]

let pp_counters ppf c =
  Format.fprintf ppf
    "@[<v>dispatches: %d@,handoffs:   %d@,steals:     %d@,parks:      \
     %d@,timer arms: %d@,timer fires:%d@,pool drains:%d@,migrations: \
     %d@,idle shrinks:%d@]"
    c.c_executed c.c_handoffs c.c_steals c.c_parks c.c_timer_arms
    c.c_timer_fires c.c_pool_drains c.c_pool_migrations c.c_pool_idle_shrinks

let run ?(domains = 1) ?(pools = []) ?(on_stall = `Raise) ?on_counters ?obs
    main =
  if get_worker () <> None then
    invalid_arg "Sched.run: already inside a scheduler (nested run)";
  let t = make ~domains ~pools ?obs ~on_stall () in
  let result = ref None in
  Atomic.incr t.live;
  push_pool t (default_pool t) (fun () ->
    exec t (default_pool t) (fun () -> result := Some (main ())));
  let others =
    Array.init
      (Array.length t.workers - 1)
      (fun i -> Domain.spawn (fun () -> worker_loop t t.workers.(i + 1)))
  in
  worker_loop t t.workers.(0);
  Array.iter Domain.join others;
  (match on_counters with
  | Some f -> f (counters t)
  | None -> ());
  if t.stalled then begin
    let stuck = Atomic.get t.live in
    match t.on_stall with
    | `Raise -> raise (Stalled stuck)
    | `Warn ->
      Logs.warn (fun m -> m "sched: stalled with %d stuck fibers" stuck)
  end;
  (match Atomic.get t.first_exn with Some e -> raise e | None -> ());
  match !result with
  | Some v -> v
  | None -> failwith "Sched.run: main fiber did not complete"

let self () =
  match get_worker () with
  | Some (_, w) -> w.wid
  | None -> invalid_arg "Sched.self: not running inside a scheduler"

let scheduler () =
  match get_worker () with
  | Some (t, _) -> t
  | None -> invalid_arg "Sched.scheduler: not running inside a scheduler"

let live t = Atomic.get t.live
