(* Write-once synchronization variable for fibers.

   Used for packaged queries in the lock-based baseline runtime (the client
   blocks on the result the handler will produce, Fig. 10a of the paper) and
   as a general fork/join primitive in tests and benchmarks.

   The state is a single atomic: either [Full v], or [Empty waiters] where
   [waiters] are the resumers of blocked readers.  Both transitions are CAS
   loops over immutable values. *)

type 'a state =
  | Empty of Sched.resumer list
  | Full of 'a

type 'a t = { state : 'a state Atomic.t }

let create () = { state = Atomic.make (Empty []) }

let create_full v = { state = Atomic.make (Full v) }

let try_fill t v =
  let rec loop () =
    match Atomic.get t.state with
    | Full _ -> false
    | Empty waiters as old ->
      if Atomic.compare_and_set t.state old (Full v) then begin
        (* FIFO wake-up: waiters accumulated head-first. *)
        List.iter (fun resume -> resume ()) (List.rev waiters);
        true
      end
      else loop ()
  in
  loop ()

let fill t v =
  if not (try_fill t v) then invalid_arg "Ivar.fill: already filled"

let peek t =
  match Atomic.get t.state with
  | Full v -> Some v
  | Empty _ -> None

let is_filled t = peek t <> None

(* Completion callbacks reuse the waiter list: a callback is a resumer
   that reads the (by then guaranteed Full) state before running [f].
   Runs in the filler's context, immediately if already filled. *)
let on_fill t f =
  let rec subscribe () =
    match Atomic.get t.state with
    | Full v -> f v
    | Empty waiters as old ->
      let cb () =
        match Atomic.get t.state with
        | Full v -> f v
        | Empty _ -> assert false
      in
      if not (Atomic.compare_and_set t.state old (Empty (cb :: waiters))) then
        subscribe ()
  in
  subscribe ()

let read t =
  match Atomic.get t.state with
  | Full v -> v
  | Empty _ ->
    Sched.suspend (fun resume ->
      let rec subscribe () =
        match Atomic.get t.state with
        | Full _ ->
          (* Filled between our first check and suspension. *)
          resume ()
        | Empty waiters as old ->
          if
            not
              (Atomic.compare_and_set t.state old (Empty (resume :: waiters)))
          then subscribe ()
      in
      subscribe ());
    (match Atomic.get t.state with
    | Full v -> v
    | Empty _ -> assert false)
