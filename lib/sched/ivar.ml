(* Write-once synchronization variable for fibers.

   Used for packaged queries in the lock-based baseline runtime (the client
   blocks on the result the handler will produce, Fig. 10a of the paper) and
   as a general fork/join primitive in tests and benchmarks.

   The cell resolves exactly once, to either a value or an exception (the
   typed-completion contract of the failure-aware request path: a handler
   whose packaged closure raises rejects the cell instead of leaving the
   client wedged).  The state is a single atomic: either [Resolved outcome],
   or [Empty waiters] where [waiters] are the resumers of blocked readers.
   Both transitions are CAS loops over immutable values. *)

type 'a outcome = ('a, exn * Printexc.raw_backtrace) result

type 'a state =
  | Empty of Sched.resumer list
  | Resolved of 'a outcome

type 'a t = { state : 'a state Atomic.t }

let create () = { state = Atomic.make (Empty []) }

let create_full v = { state = Atomic.make (Resolved (Ok v)) }

let try_resolve t outcome =
  let rec loop () =
    match Atomic.get t.state with
    | Resolved _ -> false
    | Empty waiters as old ->
      if Atomic.compare_and_set t.state old (Resolved outcome) then begin
        (* FIFO wake-up: waiters accumulated head-first. *)
        List.iter (fun resume -> resume ()) (List.rev waiters);
        true
      end
      else loop ()
  in
  loop ()

let try_fill t v = try_resolve t (Ok v)

let fill t v =
  if not (try_fill t v) then invalid_arg "Ivar.fill: already resolved"

let try_fill_error ?bt t e =
  let bt =
    match bt with Some bt -> bt | None -> Printexc.get_raw_backtrace ()
  in
  try_resolve t (Error (e, bt))

let fill_error ?bt t e =
  if not (try_fill_error ?bt t e) then
    invalid_arg "Ivar.fill_error: already resolved"

let peek_result t =
  match Atomic.get t.state with
  | Resolved outcome -> Some outcome
  | Empty _ -> None

let peek t =
  match Atomic.get t.state with
  | Resolved (Ok v) -> Some v
  | Resolved (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
  | Empty _ -> None

let is_filled t =
  match Atomic.get t.state with Resolved _ -> true | Empty _ -> false

let is_rejected t =
  match Atomic.get t.state with
  | Resolved (Error _) -> true
  | Resolved (Ok _) | Empty _ -> false

(* Completion callbacks reuse the waiter list: a callback is a resumer
   that reads the (by then guaranteed Resolved) state before running [f].
   Runs in the resolver's context, immediately if already resolved. *)
let on_resolve t f =
  let rec subscribe () =
    match Atomic.get t.state with
    | Resolved outcome -> f outcome
    | Empty waiters as old ->
      let cb () =
        match Atomic.get t.state with
        | Resolved outcome -> f outcome
        | Empty _ -> assert false
      in
      if not (Atomic.compare_and_set t.state old (Empty (cb :: waiters))) then
        subscribe ()
  in
  subscribe ()

let on_fill t f =
  on_resolve t (function Ok v -> f v | Error _ -> ())

let result t =
  match Atomic.get t.state with
  | Resolved outcome -> outcome
  | Empty _ ->
    Sched.suspend (fun resume ->
      let rec subscribe () =
        match Atomic.get t.state with
        | Resolved _ ->
          (* Resolved between our first check and suspension. *)
          resume ()
        | Empty waiters as old ->
          if
            not
              (Atomic.compare_and_set t.state old (Empty (resume :: waiters)))
          then subscribe ()
      in
      subscribe ());
    (match Atomic.get t.state with
    | Resolved outcome -> outcome
    | Empty _ -> assert false)

(* Timed read.  On [`Timed_out] the subscribed resumer stays in the waiter
   list as dead weight until the cell resolves — resolution invokes it and
   the one-shot CAS in [suspend_timeout] makes that a no-op.  Write-once
   cells resolve at most once, so the leak is one closure per timed-out
   reader, reclaimed with the cell. *)
let result_timeout t dt =
  match Atomic.get t.state with
  | Resolved outcome -> Some outcome
  | Empty _ -> (
    let verdict =
      Sched.suspend_timeout
        (fun resume ->
          let rec subscribe () =
            match Atomic.get t.state with
            | Resolved _ -> resume ()
            | Empty waiters as old ->
              if
                not
                  (Atomic.compare_and_set t.state old
                     (Empty (resume :: waiters)))
              then subscribe ()
          in
          subscribe ())
        dt
    in
    match verdict with
    | `Timed_out -> None
    | `Resumed -> (
      match Atomic.get t.state with
      | Resolved outcome -> Some outcome
      | Empty _ -> assert false))

let read t =
  match result t with
  | Ok v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt
