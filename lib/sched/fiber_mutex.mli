(** Mutex that blocks fibers, not domains.

    FIFO hand-off: {!unlock} passes ownership directly to the oldest waiting
    fiber.  Not reentrant. *)

type t

val create : unit -> t

val lock : t -> unit
(** Acquire, parking the current fiber while contended. *)

val try_lock : t -> bool

val lock_timeout : t -> float -> bool
(** [lock_timeout t dt] is {!lock} bounded by [dt] seconds; returns
    [true] iff the lock was acquired.  A timed-out waiter is skipped by
    the FIFO hand-off (never handed a lock it cannot release), and the
    grant/timeout race is decided by a single CAS, so the verdict is
    exact: [false] guarantees the caller does not hold the lock. *)

val unlock : t -> unit
(** Release or hand off.
    @raise Invalid_argument if the mutex is not locked. *)

val with_lock : t -> (unit -> 'a) -> 'a
(** Run under the lock, releasing on exceptions. *)
