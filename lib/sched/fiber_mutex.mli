(** Mutex that blocks fibers, not domains.

    FIFO hand-off: {!unlock} passes ownership directly to the oldest waiting
    fiber.  Not reentrant. *)

type t

val create : unit -> t

val lock : t -> unit
(** Acquire, parking the current fiber while contended. *)

val try_lock : t -> bool

val unlock : t -> unit
(** Release or hand off.
    @raise Invalid_argument if the mutex is not locked. *)

val with_lock : t -> (unit -> 'a) -> 'a
(** Run under the lock, releasing on exceptions. *)
