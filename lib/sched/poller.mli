(** Fd-readiness wake source: the I/O analogue of {!Timer}.

    Fibers blocked on a socket register an (fd, direction, resumer)
    triple; the scheduler folds {!poll} into its park/timekeeper path
    (a [select] bounded by the timer slice replaces the blind
    [Unix.sleepf] doze while waiters exist) and into the busy workers'
    periodic global check (zero-timeout sweep).  {!has_waiters} is a
    wake source for the stall detector, exactly like pending timers.

    Registrations are one-shot: a resumed fiber re-registers if its
    next syscall would still block.  Use through
    {!Sched.await_readable} / {!Sched.await_writable}. *)

type dir = Read | Write

type t

val create : unit -> t

val register : t -> Unix.file_descr -> dir -> (unit -> unit) -> unit
(** Enqueue a one-shot waiter.  The resumer runs from whichever worker
    performs the {!poll} that observes readiness (or an error sweep);
    it must be safe to invoke more than once (the scheduler's resumers
    are). *)

val has_waiters : t -> bool

val pending : t -> int
(** Number of registered waiters (racy snapshot). *)

val poll : t -> timeout:float -> int
(** One [select] round bounded by [timeout] seconds ([0.] polls).
    Resumes every waiter whose fd is ready and returns how many; on
    [EBADF] (an fd was closed while waited on) resumes {e all} waiters
    so each retries its own syscall and the bad fd's owner observes the
    error itself.  Rounds are serialized with [try_lock]: a concurrent
    caller returns [0] immediately instead of queueing behind a dozing
    select. *)
