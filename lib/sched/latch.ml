(* Countdown latch: fork/join barrier for fibers.

   [Parfor] and the benchmark drivers use it to wait for a batch of worker
   fibers.  Same CAS-over-immutable-state pattern as [Ivar]. *)

type state = {
  remaining : int;
  waiters : Sched.resumer list;
}

type t = { state : state Atomic.t }

let create n =
  if n < 0 then invalid_arg "Latch.create: negative count";
  { state = Atomic.make { remaining = n; waiters = [] } }

let count t = (Atomic.get t.state).remaining

let count_down t =
  let rec loop () =
    let old = Atomic.get t.state in
    if old.remaining <= 0 then invalid_arg "Latch.count_down: already at zero"
    else begin
      let next = { old with remaining = old.remaining - 1 } in
      if Atomic.compare_and_set t.state old next then begin
        if next.remaining = 0 then
          List.iter (fun resume -> resume ()) (List.rev old.waiters)
      end
      else loop ()
    end
  in
  loop ()

let wait t =
  if (Atomic.get t.state).remaining > 0 then begin
    Sched.suspend (fun resume ->
      let rec subscribe () =
        let old = Atomic.get t.state in
        if old.remaining = 0 then resume ()
        else if
          not
            (Atomic.compare_and_set t.state old
               { old with waiters = resume :: old.waiters })
        then subscribe ()
      in
      subscribe ())
  end
