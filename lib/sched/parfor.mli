(** Fork/join data parallelism over shared memory (the C++/TBB-style
    comparator of the paper's language comparison, §5).

    All functions must be called from inside a running scheduler; they block
    the calling fiber until every chunk has finished.  [chunks] defaults to
    four per scheduler worker. *)

val for_range : ?chunks:int -> int -> int -> (int -> int -> unit) -> unit
(** [for_range lo hi body] runs [body b e] on disjoint subranges covering
    [\[lo, hi)] in parallel. *)

val for_each : ?chunks:int -> int -> (int -> unit) -> unit
(** [for_each n body] runs [body i] for [0 <= i < n] in parallel chunks. *)

val reduce_range :
  ?chunks:int ->
  int ->
  int ->
  neutral:'a ->
  chunk:(int -> int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  'a
(** Parallel map-reduce over a range: [chunk b e] computes a partial result
    per subrange; partial results are folded with [combine], starting from
    [neutral].  [combine] must be associative with [neutral] as identity. *)
