(** Condition variable for fibers, used with {!Fiber_mutex}.

    Discipline: call {!wait}, {!signal} and {!broadcast} only while holding
    the associated mutex.  {!wait} releases the mutex while parked and
    reacquires it before returning.  As with POSIX condition variables,
    re-check the predicate in a loop around {!wait}. *)

type t

val create : unit -> t

val wait : t -> Fiber_mutex.t -> unit
val signal : t -> unit
val broadcast : t -> unit
