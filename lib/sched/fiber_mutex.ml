(* Blocking mutex for fibers.

   Unlike a [Stdlib.Mutex], blocking here parks the fiber, not the domain.
   Used by the C++-style comparator benchmarks (coarse locking) and by
   [Fiber_cond].

   Ownership hand-off: [unlock] transfers the lock directly to the oldest
   waiter, so a stream of contenders is served FIFO and cannot starve.
   Each waiter carries a claim word so a timed waiter ([lock_timeout]) and
   the hand-off race on a single CAS: ownership is transferred exactly when
   the claim succeeds, and an abandoned (timed-out) waiter is skipped
   instead of being handed a lock it will never release. *)

type waiter = {
  (* 0 = waiting, 1 = granted the lock, 2 = abandoned (timed out) *)
  w_state : int Atomic.t;
  w_resume : Sched.resumer;
}

type state =
  | Unlocked
  | Locked of waiter list (* newest first *)

type t = { state : state Atomic.t }

let create () = { state = Atomic.make Unlocked }

let try_lock t = Atomic.compare_and_set t.state Unlocked (Locked [])

let lock t =
  if not (try_lock t) then
    Sched.suspend (fun resume ->
      let w = { w_state = Atomic.make 0; w_resume = resume } in
      let rec subscribe () =
        match Atomic.get t.state with
        | Unlocked ->
          (* Freed while we were suspending: acquire and wake ourselves. *)
          if Atomic.compare_and_set t.state Unlocked (Locked []) then
            resume ()
          else subscribe ()
        | Locked waiters as old ->
          if not (Atomic.compare_and_set t.state old (Locked (w :: waiters)))
          then subscribe ()
      in
      subscribe ())

(* Remove the oldest waiter (the list is newest-first). *)
let split_oldest waiters =
  match List.rev waiters with
  | [] -> assert false
  | oldest :: rest -> (oldest, List.rev rest)

let unlock t =
  let rec loop () =
    match Atomic.get t.state with
    | Unlocked -> invalid_arg "Fiber_mutex.unlock: not locked"
    | Locked [] as old ->
      if not (Atomic.compare_and_set t.state old Unlocked) then loop ()
    | Locked waiters as old ->
      let oldest, rest = split_oldest waiters in
      if Atomic.compare_and_set t.state old (Locked rest) then begin
        if Atomic.compare_and_set oldest.w_state 0 1 then
          (* Ownership passes to [oldest]; the state stays [Locked]. *)
          oldest.w_resume ()
        else
          (* Timed out and gone: keep unlocking towards the next waiter. *)
          loop ()
      end
      else loop ()
  in
  loop ()

let lock_timeout t dt =
  if try_lock t then true
  else begin
    (* The waiter's claim word is the synchronization point between three
       parties: the timer (0→2), a hand-off from [unlock] (0→1), and the
       freed-while-suspending self-acquisition below (0→1).  Exactly one
       wins, so the fiber is resumed once and the verdict is unambiguous. *)
    let w_state = Atomic.make 0 in
    Sched.suspend (fun resume ->
      let handle =
        Sched.arm_timer ~delay:dt (fun () ->
          if Atomic.compare_and_set w_state 0 2 then resume ())
      in
      let granted () =
        ignore (Timer.cancel handle : bool);
        resume ()
      in
      let w = { w_state; w_resume = granted } in
      let rec subscribe () =
        match Atomic.get t.state with
        | Unlocked ->
          if Atomic.compare_and_set t.state Unlocked (Locked []) then begin
            if Atomic.compare_and_set w_state 0 1 then granted ()
            else
              (* The timer won while we were acquiring: hand the lock
                 straight back; the timer already resumed the fiber. *)
              unlock t
          end
          else subscribe ()
        | Locked waiters as old ->
          if not (Atomic.compare_and_set t.state old (Locked (w :: waiters)))
          then subscribe ()
      in
      subscribe ());
    Atomic.get w_state = 1
  end

let with_lock t f =
  lock t;
  match f () with
  | v ->
    unlock t;
    v
  | exception e ->
    unlock t;
    raise e
