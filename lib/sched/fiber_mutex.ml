(* Blocking mutex for fibers.

   Unlike a [Stdlib.Mutex], blocking here parks the fiber, not the domain.
   Used by the C++-style comparator benchmarks (coarse locking) and by
   [Fiber_cond].

   Ownership hand-off: [unlock] transfers the lock directly to the oldest
   waiter, so a stream of contenders is served FIFO and cannot starve. *)

type state =
  | Unlocked
  | Locked of Sched.resumer list (* waiters, newest first *)

type t = { state : state Atomic.t }

let create () = { state = Atomic.make Unlocked }

let try_lock t = Atomic.compare_and_set t.state Unlocked (Locked [])

let lock t =
  if not (try_lock t) then
    Sched.suspend (fun resume ->
      let rec subscribe () =
        match Atomic.get t.state with
        | Unlocked ->
          (* Freed while we were suspending: acquire and wake ourselves. *)
          if Atomic.compare_and_set t.state Unlocked (Locked []) then
            resume ()
          else subscribe ()
        | Locked waiters as old ->
          if
            not
              (Atomic.compare_and_set t.state old (Locked (resume :: waiters)))
          then subscribe ()
      in
      subscribe ())

(* Remove the oldest waiter (the list is newest-first). *)
let split_oldest waiters =
  match List.rev waiters with
  | [] -> assert false
  | oldest :: rest -> (oldest, List.rev rest)

let unlock t =
  let rec loop () =
    match Atomic.get t.state with
    | Unlocked -> invalid_arg "Fiber_mutex.unlock: not locked"
    | Locked [] as old ->
      if not (Atomic.compare_and_set t.state old Unlocked) then loop ()
    | Locked waiters as old ->
      let oldest, rest = split_oldest waiters in
      if Atomic.compare_and_set t.state old (Locked rest) then
        (* Ownership passes to [oldest]; the state stays [Locked]. *)
        oldest ()
      else loop ()
  in
  loop ()

let with_lock t f =
  lock t;
  match f () with
  | v ->
    unlock t;
    v
  | exception e ->
    unlock t;
    raise e
