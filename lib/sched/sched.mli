(** Work-stealing fiber scheduler over OCaml 5 domains.

    The bottom two layers of the SCOOP/Qs runtime (paper §3): effect-handler
    task switching and lightweight threads.  All concurrency substrates in
    this repository (SCOOP processors, actors, channels, STM, parallel-for)
    run their units of work as fibers of this scheduler.

    A fiber is an ordinary OCaml function; it runs cooperatively and leaves
    the CPU by returning, {!yield}ing, or {!suspend}ing until some other
    fiber invokes its resumer. *)

exception Stalled of int
(** Raised by {!run} (with [~on_stall:`Raise], the default) when all workers
    went idle while fibers remained suspended — i.e. the program deadlocked.
    The payload is the number of stuck fibers. *)

type t
(** A scheduler instance. *)

type resumer = unit -> unit
(** One-shot wake-up token for a suspended fiber.  Invoking it more than
    once is harmless (subsequent calls are ignored); invoking it from any
    fiber or domain is allowed. *)

type counters = {
  c_executed : int; (** fiber dispatches *)
  c_handoffs : int; (** direct handoffs through the hot slot (paper §3.2) *)
  c_steals : int; (** successful work steals *)
  c_parks : int; (** worker park (sleep) episodes *)
  c_timer_arms : int; (** timers armed ({!sleep}, {!suspend_timeout}, …) *)
  c_timer_fires : int; (** timers that expired and ran their action *)
  c_pool_drains : int; (** jobs taken from pool injection queues *)
  c_pool_migrations : int; (** workers switching pools *)
  c_pool_idle_shrinks : int; (** pools emptied of member workers *)
}
(** Scheduling counters aggregated over all workers — the context-switch
    instrumentation the paper's §4.3 discussion calls for.  Readable live
    mid-run ({!counters}, {!current_counters}) and delivered exactly at
    the end of a run ([?on_counters]).  The pool trio sums the per-pool
    cells; {!pool_counters} has the per-pool breakdown. *)

type pool_counters = {
  p_name : string;
  p_workers : int; (** current member workers (racy) *)
  p_pending : int; (** jobs waiting in the injection queue (racy) *)
  p_drains : int;
  p_migrations : int;
  p_idle_shrinks : int;
}
(** Per-pool load and elasticity counters. *)

val run :
  ?domains:int ->
  ?pools:string list ->
  ?on_stall:[ `Raise | `Warn ] ->
  ?on_counters:(counters -> unit) ->
  ?obs:Qs_obs.Sink.t ->
  (unit -> 'a) ->
  'a
(** [run main] executes [main] as the first fiber of a fresh scheduler using
    [domains] workers (default 1) and returns its result once {e all} fibers
    have completed.  If a fiber raises, the first such exception is re-raised
    after termination.  [on_counters] receives the aggregated scheduling
    counters just before [run] returns.  [obs] attaches an observability
    sink: every worker then records dispatch and park spans plus steal and
    handoff instants under the ["sched"] category (track = worker id), and
    pool membership events (["pool"] category, track 1000 + pool id).
    Nested [run]s on the same domain are not allowed.

    [pools] names extra scheduler pools beyond the always-present
    ["default"] (duplicates and [""] are rejected).  Each pool has its own
    sharded injection queue and an elastic set of member workers: fibers
    spawned with {!spawn_in} are pinned to their pool (only its member
    workers run them, across every suspension and resumption), and workers
    re-distribute themselves over pools by load — a flooded pool absorbs
    idle workers, an idle pool shrinks to zero members.  The main fiber and
    plain {!spawn}s run in the spawner's pool (["default"] at the root). *)

val counters : t -> counters
(** Live aggregate of the per-worker scheduling counters.  Mid-run the
    sum is approximate (workers update their fields without
    synchronization); once {!run} has returned it is exact. *)

val current_counters : unit -> counters option
(** {!counters} of the scheduler running the current fiber; [None]
    outside any scheduler. *)

val counters_assoc : counters -> (string * int) list
(** Name→value view of {!counters} (for machine-readable output). *)

val pool_counters : t -> pool_counters list
(** Per-pool counters, in pool declaration order (["default"] first). *)

val current_pool_counters : unit -> pool_counters list
(** {!pool_counters} of the scheduler running the current fiber; [[]]
    outside any scheduler. *)

val pool_counters_assoc : pool_counters list -> (string * int) list
(** Flat name→value view of a {!pool_counters} list: the aggregates
    [pool_drains] / [pool_migrations] / [pool_idle_shrinks] first, then
    [pool.<name>.<field>] per pool. *)

val pool_names : t -> string list
(** Pool names in declaration order (["default"] first). *)

val pp_counters : Format.formatter -> counters -> unit

val spawn : (unit -> unit) -> unit
(** Create a new fiber in the spawner's current pool.  Must be called from
    inside a running scheduler. *)

val spawn_in : string -> (unit -> unit) -> unit
(** [spawn_in pool body] creates a fiber pinned to [pool]: only that
    pool's member workers ever run it, across every suspension point.
    @raise Invalid_argument on an unknown pool name or outside a
    scheduler. *)

val current_pool : unit -> string
(** Name of the pool whose worker is executing the current fiber.  Inside
    a fiber this is the fiber's home pool (membership only changes between
    jobs). *)

val suspend : (resumer -> unit) -> unit
(** [suspend register] blocks the current fiber and calls [register resume]
    from the scheduler context; the fiber continues when [resume] is
    invoked.  [register] runs after the fiber is fully suspended, so a
    resume that races with suspension is never lost. *)

val yield : unit -> unit
(** Reschedule the current fiber at the back of the global run queue,
    letting every other runnable fiber go first. *)

val sleep : float -> unit
(** [sleep dt] suspends the current fiber for at least [dt] seconds.
    [dt <= 0] is a {!yield}.  A sleeping fiber keeps the scheduler alive —
    parked workers wake at the earliest armed deadline, and stall detection
    treats pending timers as a wake source, so a run whose only activity is
    a sleeping fiber terminates normally instead of raising {!Stalled}. *)

val suspend_timeout :
  (resumer -> unit) -> float -> [ `Resumed | `Timed_out ]
(** [suspend_timeout register dt] is {!suspend} with a deadline: the fiber
    continues either when the registered resumer is invoked ([`Resumed]) or
    when [dt] seconds elapse first ([`Timed_out]).  The two paths race on an
    internal CAS, so the outcomes are mutually exclusive, the fiber is
    resumed exactly once, and on [`Resumed] the timer is cancelled.  After
    [`Timed_out] a late invocation of the registered resumer is a no-op —
    but the resumer may still be held by whatever [register] subscribed it
    to, so registrations must tolerate stale waiters. *)

val await_readable : Unix.file_descr -> unit
(** Suspend the current fiber until [fd] is readable (per [select]).
    The registration is one-shot: callers loop — attempt the syscall,
    on [EAGAIN]/[EWOULDBLOCK] await and retry.  Fd waiters are a wake
    source exactly like pending timers: the parked timekeeper dozes in
    a [select] bounded by the timer slice, busy workers run zero-timeout
    sweeps on the periodic global check, and the stall detector never
    declares a deadlock while a fiber waits on an fd.  If the fd is
    closed while waited on, the fiber is resumed anyway (error sweep)
    and the retried syscall surfaces [EBADF] in its own context. *)

val await_writable : Unix.file_descr -> unit
(** Like {!await_readable}, for writability. *)

val arm_timer : delay:float -> (unit -> unit) -> Timer.handle
(** [arm_timer ~delay action] arms a one-shot timer on the current fiber's
    scheduler, firing [action] after [delay] seconds (see {!Timer.arm} for
    the constraints on [action]); cancel with {!Timer.cancel}.  Building
    block for timed synchronization primitives
    ({!Fiber_mutex.lock_timeout}); most code wants {!sleep} or
    {!suspend_timeout} instead. *)

val self : unit -> int
(** Index of the worker executing the current fiber. *)

val scheduler : unit -> t
(** The scheduler executing the current fiber. *)

val spawn_on : t -> (unit -> unit) -> unit
(** Like {!spawn} but targets an explicit scheduler; usable from outside. *)

val num_workers : t -> int
val live : t -> int
(** Number of fibers spawned but not yet completed (racy). *)
