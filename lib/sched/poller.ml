(* Fd-readiness wake source for the scheduler.

   The timer heap (PR 5) made parking time-aware; this module makes it
   I/O-aware: fibers blocked on a socket register (fd, direction,
   resumer) triples here and the scheduler folds [poll] into the same
   places it folds [Timer.fire_due] — the parked timekeeper dozes in
   [Unix.select] instead of [Unix.sleepf] while waiters exist (so a
   frame arriving on an idle runtime wakes a fiber in microseconds, not
   at the next slice boundary), and busy workers run a zero-timeout
   sweep on the periodic global check.  [has_waiters] is counted as a
   wake source by the stall detector exactly like pending timers: a
   fiber waiting on a peer is not deadlocked.

   Registrations are one-shot: a resumed fiber re-registers if its next
   read/write would still block.  Resumers are the scheduler's one-shot
   CAS-protected closures, so resuming one twice (e.g. after an EBADF
   sweep, below) is harmless.

   [select] is O(n) in fds and capped at FD_SETSIZE, which is fine at
   this runtime's scale (a node serves tens of connections, not tens of
   thousands); swapping in epoll/kqueue would change only this module.

   Concurrency: [waiters] is guarded by [lock] (short critical
   sections); [poll] itself is serialized by [poll_lock] with
   [Mutex.try_lock] so a busy worker's sweep never blocks behind the
   timekeeper's dozing select — it just skips the round. *)

type dir = Read | Write

type waiter = { fd : Unix.file_descr; dir : dir; resume : unit -> unit }

type t = {
  lock : Mutex.t; (* guards [waiters] *)
  mutable waiters : waiter list;
  count : int Atomic.t; (* = List.length waiters, read without the lock *)
  poll_lock : Mutex.t; (* at most one select at a time *)
}

let create () =
  {
    lock = Mutex.create ();
    waiters = [];
    count = Atomic.make 0;
    poll_lock = Mutex.create ();
  }

let has_waiters t = Atomic.get t.count > 0

let pending t = Atomic.get t.count

(* The count is bumped *before* the caller broadcasts to parked workers,
   and parked workers re-check [has_waiters] under the idle mutex, so a
   registration is never missed by the park path. *)
let register t fd dir resume =
  let w = { fd; dir; resume } in
  Mutex.lock t.lock;
  t.waiters <- w :: t.waiters;
  Atomic.incr t.count;
  Mutex.unlock t.lock

let take_ready t rs ws =
  Mutex.lock t.lock;
  let ready, rest =
    List.partition
      (fun w ->
        match w.dir with
        | Read -> List.memq w.fd rs
        | Write -> List.memq w.fd ws)
      t.waiters
  in
  t.waiters <- rest;
  Atomic.set t.count (List.length rest);
  Mutex.unlock t.lock;
  ready

let take_all t =
  Mutex.lock t.lock;
  let all = t.waiters in
  t.waiters <- [];
  Atomic.set t.count 0;
  Mutex.unlock t.lock;
  all

(* One select round over the current waiters, waiting at most [timeout]
   seconds (0.0 = non-blocking sweep).  Returns the number of fibers
   resumed.  A closed-while-waiting fd surfaces as EBADF from select; we
   cannot tell which fd it was without probing, so every waiter is
   resumed and retries its own syscall — the bad fd's owner gets its
   error in its own context, the others re-register.  Resumers run
   outside both locks (they re-enter the scheduler). *)
let poll t ~timeout =
  if not (Mutex.try_lock t.poll_lock) then 0
  else begin
    Mutex.lock t.lock;
    let snapshot = t.waiters in
    Mutex.unlock t.lock;
    if snapshot = [] then begin
      Mutex.unlock t.poll_lock;
      0
    end
    else begin
      let rfds =
        List.filter_map
          (fun w -> match w.dir with Read -> Some w.fd | Write -> None)
          snapshot
      and wfds =
        List.filter_map
          (fun w -> match w.dir with Write -> Some w.fd | Read -> None)
          snapshot
      in
      match Unix.select rfds wfds [] timeout with
      | rs, ws, _ ->
        let ready =
          if rs = [] && ws = [] then [] else take_ready t rs ws
        in
        Mutex.unlock t.poll_lock;
        List.iter (fun w -> w.resume ()) ready;
        List.length ready
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        Mutex.unlock t.poll_lock;
        0
      | exception Unix.Unix_error (Unix.EBADF, _, _) ->
        let all = take_all t in
        Mutex.unlock t.poll_lock;
        List.iter (fun w -> w.resume ()) all;
        List.length all
    end
  end
