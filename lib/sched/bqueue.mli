(** Blocking single-consumer queues used as the runtime's communication
    channels.  Blocking parks the consumer fiber, never the domain.

    Both {!Spsc} and {!Mpsc} conform to {!MAILBOX}, the blocking
    fiber-level instance of the [Qs_queues.Mailbox] abstraction:
    [dequeue]/[drain] park instead of returning empty, and [None] / [0]
    mean closed-and-drained.  {!drain} is the batching hook — one
    park/unpark transition moves a whole burst of elements. *)

module type MAILBOX = sig
  type 'a t

  val create : unit -> 'a t

  val enqueue : 'a t -> 'a -> unit
  (** Append one element and wake the consumer.  After {!close} the
      element is silently dropped — runtime shutdown may race fibers
      that still hold registrations; the raw [Qs_queues.Mailbox]
      instances are where enqueue-after-close raises. *)

  val dequeue : 'a t -> 'a option
  (** Block the calling fiber until an element is available; [None] once
      the queue is closed {e and} drained. *)

  val drain : 'a t -> 'a array -> int
  (** Block until at least one element is available, then move every
      already-pending element (up to [Array.length buf]) into a prefix
      of [buf] and return the count; [0] once the queue is closed
      {e and} drained. *)

  val close : 'a t -> unit
  val is_closed : 'a t -> bool
  val is_empty : 'a t -> bool
end

module Spsc : sig
  (** A private queue: one client enqueues, one handler dequeues. *)

  include MAILBOX

  val create : ?backing:[ `Linked | `Ring ] -> unit -> 'a t
  (** [`Linked] (default) is the unbounded linked SPSC queue — a client
      never waits to log a request.  [`Ring] is the bounded Lamport ring
      of the §3.1 ablation — allocation-free, but an enqueue into a full
      ring spins (yielding the fiber) until the handler drains. *)

  val length : 'a t -> int
end

module Mpsc : sig
  (** A queue-of-queues / baseline request queue: many clients enqueue, one
      handler dequeues; closable for shutdown. *)

  include MAILBOX
end

val mailboxes : (string * (module MAILBOX)) list
(** First-class views of every blocking mailbox shape (linked SPSC, ring
    SPSC, MPSC), for generic property tests and benchmarks. *)
