(** Blocking single-consumer queues used as the runtime's communication
    channels.  Blocking parks the consumer fiber, never the domain. *)

module Spsc : sig
  (** A private queue: one client enqueues, one handler dequeues. *)

  type 'a t

  val create : unit -> 'a t
  val enqueue : 'a t -> 'a -> unit

  val dequeue : 'a t -> 'a
  (** Blocks the calling fiber until an element is available. *)

  val is_empty : 'a t -> bool
  val length : 'a t -> int
end

module Mpsc : sig
  (** A queue-of-queues / baseline request queue: many clients enqueue, one
      handler dequeues; closable for shutdown. *)

  type 'a t

  val create : unit -> 'a t
  val enqueue : 'a t -> 'a -> unit

  val dequeue : 'a t -> 'a option
  (** Blocks until an element is available; [None] once the queue is closed
      {e and} drained. *)

  val close : 'a t -> unit
  val is_closed : 'a t -> bool
  val is_empty : 'a t -> bool
end
