(* Fork/join data parallelism over raw shared memory.

   This is the C++/TBB-style comparator of the paper's language comparison
   (§5, Table 3: shared memory, no race protection): a range is split into
   chunks, each chunk runs as a fiber touching the shared arrays directly,
   and the caller joins on a latch.  No copying, no handler indirection —
   the fastest thing our scheduler can express, and therefore the baseline
   the SCOOP/Qs numbers are compared against. *)

let default_chunks () = 4 * Sched.num_workers (Sched.scheduler ())

let for_range ?chunks lo hi body =
  if hi > lo then begin
    let n = hi - lo in
    let chunks = max 1 (min n (Option.value chunks ~default:(default_chunks ()))) in
    if chunks = 1 then body lo hi
    else begin
      let latch = Latch.create chunks in
      let base = n / chunks and extra = n mod chunks in
      let start = ref lo in
      for c = 0 to chunks - 1 do
        let size = base + if c < extra then 1 else 0 in
        let b = !start in
        let e = b + size in
        start := e;
        Sched.spawn (fun () ->
          Fun.protect ~finally:(fun () -> Latch.count_down latch) (fun () ->
            body b e))
      done;
      Latch.wait latch
    end
  end

let for_each ?chunks n body =
  for_range ?chunks 0 n (fun b e ->
    for i = b to e - 1 do
      body i
    done)

let reduce_range ?chunks lo hi ~neutral ~chunk ~combine =
  if hi <= lo then neutral
  else begin
    let n = hi - lo in
    let chunks = max 1 (min n (Option.value chunks ~default:(default_chunks ()))) in
    let results = Array.make chunks neutral in
    let latch = Latch.create chunks in
    let base = n / chunks and extra = n mod chunks in
    let start = ref lo in
    for c = 0 to chunks - 1 do
      let size = base + if c < extra then 1 else 0 in
      let b = !start in
      let e = b + size in
      start := e;
      Sched.spawn (fun () ->
        Fun.protect ~finally:(fun () -> Latch.count_down latch) (fun () ->
          results.(c) <- chunk b e))
    done;
    Latch.wait latch;
    Array.fold_left combine neutral results
  end
