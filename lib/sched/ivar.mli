(** Write-once synchronization variable ("future") for fibers.

    Any number of fibers may {!read}; the first {!fill} wakes them all.
    Safe across domains. *)

type 'a t

val create : unit -> 'a t
val create_full : 'a -> 'a t

val fill : 'a t -> 'a -> unit
(** Set the value and wake all readers.
    @raise Invalid_argument if already filled. *)

val try_fill : 'a t -> 'a -> bool
(** Like {!fill} but returns [false] instead of raising. *)

val read : 'a t -> 'a
(** Return the value, blocking the current fiber until filled. *)

val peek : 'a t -> 'a option
(** The value if already present; never blocks. *)

val is_filled : 'a t -> bool

val on_fill : 'a t -> ('a -> unit) -> unit
(** [on_fill t f] runs [f v] once [t] holds [v]: immediately (in the
    caller's context) if already filled, otherwise in the filler's
    context during {!fill}.  Callbacks must not block; they share the
    wake-up list with blocked readers.  The substrate of
    {!Promise.on_fulfill}. *)
