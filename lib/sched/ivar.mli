(** Write-once synchronization variable ("future") for fibers.

    Any number of fibers may {!read}; the first {!fill} wakes them all.
    Safe across domains. *)

type 'a t

val create : unit -> 'a t
val create_full : 'a -> 'a t

val fill : 'a t -> 'a -> unit
(** Set the value and wake all readers.
    @raise Invalid_argument if already filled. *)

val try_fill : 'a t -> 'a -> bool
(** Like {!fill} but returns [false] instead of raising. *)

val read : 'a t -> 'a
(** Return the value, blocking the current fiber until filled. *)

val peek : 'a t -> 'a option
(** The value if already present; never blocks. *)

val is_filled : 'a t -> bool
