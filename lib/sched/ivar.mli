(** Write-once synchronization variable ("future") for fibers.

    The cell resolves exactly once — to a value ({!fill}) or to an
    exception ({!fill_error}).  Any number of fibers may {!read}; the
    resolution wakes them all.  Safe across domains. *)

type 'a t

type 'a outcome = ('a, exn * Printexc.raw_backtrace) result
(** A resolution: the value, or the exception that replaced it together
    with the backtrace captured where it was caught. *)

val create : unit -> 'a t
val create_full : 'a -> 'a t

val fill : 'a t -> 'a -> unit
(** Set the value and wake all readers.
    @raise Invalid_argument if already resolved. *)

val try_fill : 'a t -> 'a -> bool
(** Like {!fill} but returns [false] instead of raising. *)

val fill_error : ?bt:Printexc.raw_backtrace -> 'a t -> exn -> unit
(** Reject the cell: readers re-raise [e] (with [bt], defaulting to the
    most recent backtrace at the call site) instead of receiving a value.
    @raise Invalid_argument if already resolved. *)

val try_fill_error : ?bt:Printexc.raw_backtrace -> 'a t -> exn -> bool
(** Like {!fill_error} but returns [false] instead of raising. *)

val read : 'a t -> 'a
(** Return the value, blocking the current fiber until resolved.
    Re-raises (with its captured backtrace) if the cell was rejected. *)

val result : 'a t -> 'a outcome
(** Like {!read} but returns the outcome instead of re-raising. *)

val result_timeout : 'a t -> float -> 'a outcome option
(** [result_timeout t dt] is {!result} bounded by [dt] seconds: [None] if
    the cell is still unresolved at the deadline.  The fiber is resumed
    exactly once either way ({!Sched.suspend_timeout}); a timed-out
    reader's subscription stays in the cell as a dead no-op waiter until
    resolution. *)

val peek : 'a t -> 'a option
(** The value if already present; never blocks.  Re-raises if the cell
    is already rejected — a rejected cell must not look forever-pending. *)

val peek_result : 'a t -> 'a outcome option
(** The outcome if already resolved; never blocks, never raises. *)

val is_filled : 'a t -> bool
(** [true] once resolved, whether fulfilled or rejected. *)

val is_rejected : 'a t -> bool

val on_fill : 'a t -> ('a -> unit) -> unit
(** [on_fill t f] runs [f v] once [t] holds [v]: immediately (in the
    caller's context) if already filled, otherwise in the filler's
    context during {!fill}.  Not called on rejection — use {!on_resolve}
    to observe both outcomes.  Callbacks must not block; they share the
    wake-up list with blocked readers.  The substrate of
    {!Promise.on_fulfill}. *)

val on_resolve : 'a t -> ('a outcome -> unit) -> unit
(** Like {!on_fill} but fires on either outcome. *)
