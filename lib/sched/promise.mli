(** Promises: deferred query results ("issue the packaged call now,
    collect the result later").

    A promise is an {!Ivar} plus the machinery pipelined queries need:
    non-blocking observation, completion callbacks for trace spans,
    fan-in combinators, and a one-shot force hook through which the
    SCOOP runtime accounts the first client rendezvous.  Any number of
    fibers on any domain may {!await}; the single {!fulfill} wakes them
    all.  Obtain promises from {!Scoop.Registration.query_async} (or
    create your own as a general fork/join handle). *)

type 'a t

val create : ?on_force:(bool -> unit) -> unit -> 'a t
(** Fresh unresolved promise.  [on_force] is invoked at most once, on
    the first successful client observation ({!await}, or a {!try_read}
    that returns [Some]); its argument is [true] when the value was
    already resolved at that point (a fully overlapped round trip) and
    [false] when the observer had to block. *)

val of_value : 'a -> 'a t
(** Already-resolved promise. *)

val fulfill : 'a t -> 'a -> unit
(** Resolve the promise and wake all waiters / run all callbacks.
    @raise Invalid_argument if already resolved. *)

val try_fulfill : 'a t -> 'a -> bool
(** Like {!fulfill} but returns [false] instead of raising. *)

val fulfill_error : ?bt:Printexc.raw_backtrace -> 'a t -> exn -> unit
(** Reject the promise: forcing re-raises [e] (with [bt], defaulting to
    the most recent backtrace at the call site).  Waiters are woken and
    completion callbacks consumed just as for {!fulfill}.
    @raise Invalid_argument if already resolved. *)

val try_fulfill_error : ?bt:Printexc.raw_backtrace -> 'a t -> exn -> bool
(** Like {!fulfill_error} but returns [false] instead of raising. *)

val await : ?timeout:float -> 'a t -> 'a
(** Force the promise: return its value, blocking the calling fiber
    until resolved.  Re-raises (with its captured backtrace) if the
    promise was rejected.  The first force fires the [on_force] hook —
    a rejected rendezvous still counts as observed.

    With [?timeout], raises {!Timer.Timeout} if the promise is still
    pending after that many seconds.  A timed-out await is {e not} a
    rendezvous: the hook does not fire, the promise is not consumed, and
    a later [await] can still complete normally. *)

val try_read : 'a t -> 'a option
(** The value if already resolved; never blocks.  A successful
    [try_read] counts as a force ([on_force] fires with [true]).
    Re-raises (and fires the hook) if the promise is already
    rejected. *)

val peek : 'a t -> 'a option
(** Like {!try_read} but purely observational: never fires hooks.
    Still re-raises on a rejected promise. *)

val is_resolved : 'a t -> bool
(** [true] once resolved, whether fulfilled or rejected. *)

val is_rejected : 'a t -> bool

val mark_drained : 'a t -> unit
(** Handler-side hint, set by the SCOOP handler loop just before
    fulfilment when the registration's private queue held no requests
    after this query — i.e. the client's log showed no later calls at
    the moment the result was produced.  Must only be called by the
    (single) fulfiller, before the fulfilling write; the resolution
    itself publishes the flag to forcing clients. *)

val was_drained : 'a t -> bool
(** Whether {!mark_drained} was recorded before resolution.  Meaningful
    only after the promise resolved (read it from an [on_force] hook or
    after a successful {!await}); the SCOOP client uses it to elide the
    separate sync round trip when re-establishing synced status. *)

val on_fulfill : 'a t -> ('a -> unit) -> unit
(** [on_fulfill t f] runs [f v] once [t] resolves to [v] — immediately
    if already resolved, otherwise in the fulfiller's context (for
    packaged queries: on the handler fiber, right when the result is
    produced — the hook the runtime uses to close query-pipeline trace
    spans).  Not called on rejection — use {!on_resolve} to observe
    both outcomes.  [f] must not block. *)

val on_resolve : 'a t -> (('a, exn * Printexc.raw_backtrace) result -> unit) -> unit
(** Like {!on_fulfill} but fires on either outcome. *)

(** {2 Combinators}

    Results resolve eagerly as components resolve; forcing a combined
    promise propagates the force (and its readiness flag) to every
    component, so registration synced-status bookkeeping observes the
    underlying rendezvous.  Rejection propagates: the first component
    to reject (or, for {!map}, an [f] that raises) rejects the result
    with that exception. *)

val map : ('a -> 'b) -> 'a t -> 'b t
(** [map f t] resolves to [f v] when [t] resolves to [v] ([f] runs in
    the fulfiller's context). *)

val both : 'a t -> 'b t -> ('a * 'b) t
(** Resolves when both components have. *)

val all : 'a t list -> 'a list t
(** Resolves when every component has, preserving order; [all []] is
    already resolved. *)
