(* Blocking single-consumer queues: the runtime's communication channels.

   [Spsc] is a private queue (client -> handler request stream); [Mpsc] is
   both the queue-of-queues (clients enqueue private queues, Fig. 4) and
   the single request queue of the lock-based baseline runtime (Fig. 2).
   Both conform to the blocking [MAILBOX] signature — the fiber-level
   instance of the [Qs_queues.Mailbox] abstraction: [dequeue]/[drain]
   park the consumer *fiber* instead of returning empty, and [None] / 0
   mean closed-and-drained, the handler loop's shutdown signal.

   Blocking parks the consumer fiber via [Sched.suspend]; producers wake
   it through a one-slot waiter exchanged atomically, so the wake-up is a
   single CAS on the fast path.  When the woken consumer is resumed by a
   producer running on the same worker, the scheduler's hot slot makes the
   switch a direct handoff (paper §3.2).

   [drain] is the batching hook: one park/unpark transition (and one
   consumer-side synchronization, where the backing queue allows it)
   moves a whole burst of elements, instead of one blocking round trip
   per element. *)

module type MAILBOX = sig
  type 'a t

  val create : unit -> 'a t

  val enqueue : 'a t -> 'a -> unit
  (* Append one element and wake the consumer.  After [close] the element
     is silently dropped: runtime shutdown may race fibers that still hold
     registrations (the seed runtime's tolerance), and the raw
     [Qs_queues.Mailbox] instances below this layer are where
     enqueue-after-close raises. *)

  val dequeue : 'a t -> 'a option
  (* Block the calling fiber until an element is available; [None] once
     the queue is closed {e and} drained. *)

  val drain : 'a t -> 'a array -> int
  (* Block until at least one element is available, then move every
     already-pending element (up to [Array.length buf]) into a prefix of
     [buf] and return the count; [0] once the queue is closed {e and}
     drained. *)

  val close : 'a t -> unit
  val is_closed : 'a t -> bool
  val is_empty : 'a t -> bool
end

module Waiter = struct
  type t = Sched.resumer option Atomic.t

  let create () = Atomic.make None

  let wake w =
    match Atomic.exchange w None with
    | Some resume -> resume ()
    | None -> ()

  (* Park the (single) consumer until woken.  [ready] re-checks the queue
     after the resumer is published, closing the race with a producer that
     pushed before seeing the waiter. *)
  let park w ~ready =
    Sched.suspend (fun resume ->
      Atomic.set w (Some resume);
      if ready () then wake w)
end

module Spsc = struct
  (* The private-queue backing store is the §3.1 ablation axis the
     config's [spsc] knob selects: unbounded linked list (no client ever
     waits, one allocation per request) vs bounded ring (allocation-free,
     cache-friendly, but a client logging into a full ring spins). *)
  type 'a backing =
    | Linked of 'a Qs_queues.Spsc_queue.t
    | Ring of 'a Qs_queues.Spsc_ring.t

  type 'a t = {
    q : 'a backing;
    waiter : Waiter.t;
  }

  let create ?(backing = `Linked) () =
    let q =
      match backing with
      | `Linked -> Linked (Qs_queues.Spsc_queue.create ())
      | `Ring -> Ring (Qs_queues.Spsc_ring.create ())
    in
    { q; waiter = Waiter.create () }

  let push_backing t v =
    match t.q with
    | Linked q -> Qs_queues.Spsc_queue.push q v
    | Ring r ->
      (* A full ring makes the client wait — the bounded queue's only
         option, and exactly the cost the ablation measures. *)
      if not (Qs_queues.Spsc_ring.try_push r v) then begin
        while not (Qs_queues.Spsc_ring.try_push r v) do
          Sched.yield ()
        done
      end

  let pop_backing t =
    match t.q with
    | Linked q -> Qs_queues.Spsc_queue.pop q
    | Ring r -> Qs_queues.Spsc_ring.pop r

  let drain_backing t buf =
    match t.q with
    | Linked q -> Qs_queues.Spsc_queue.drain q buf
    | Ring r -> Qs_queues.Spsc_ring.drain r buf

  let is_empty t =
    match t.q with
    | Linked q -> Qs_queues.Spsc_queue.is_empty q
    | Ring r -> Qs_queues.Spsc_ring.is_empty r

  let is_closed t =
    match t.q with
    | Linked q -> Qs_queues.Spsc_queue.is_closed q
    | Ring r -> Qs_queues.Spsc_ring.is_closed r

  let length t =
    match t.q with
    | Linked q -> Qs_queues.Spsc_queue.length q
    | Ring r -> Qs_queues.Spsc_ring.length r

  let enqueue t v =
    match push_backing t v with
    | () -> Waiter.wake t.waiter
    | exception Qs_queues.Mailbox.Closed -> ()

  let close t =
    (match t.q with
    | Linked q -> Qs_queues.Spsc_queue.close q
    | Ring r -> Qs_queues.Spsc_ring.close r);
    Waiter.wake t.waiter

  let ready t () = is_closed t || not (is_empty t)

  let rec dequeue t =
    match pop_backing t with
    | Some v -> Some v
    | None ->
      if is_closed t then
        (* Re-check: a producer may have raced the close. *)
        pop_backing t
      else begin
        Waiter.park t.waiter ~ready:(ready t);
        dequeue t
      end

  let rec drain t buf =
    if Array.length buf = 0 then 0
    else
      match drain_backing t buf with
      | 0 ->
        if is_closed t then drain_backing t buf
        else begin
          Waiter.park t.waiter ~ready:(ready t);
          drain t buf
        end
      | n -> n
end

module Mpsc = struct
  type 'a t = {
    q : 'a Qs_queues.Mpsc_queue.t;
    waiter : Waiter.t;
  }

  let create () =
    { q = Qs_queues.Mpsc_queue.create (); waiter = Waiter.create () }

  let enqueue t v =
    match Qs_queues.Mpsc_queue.push t.q v with
    | () -> Waiter.wake t.waiter
    | exception Qs_queues.Mailbox.Closed -> ()

  let close t =
    Qs_queues.Mpsc_queue.close t.q;
    Waiter.wake t.waiter

  let is_closed t = Qs_queues.Mpsc_queue.is_closed t.q
  let is_empty t = Qs_queues.Mpsc_queue.is_empty t.q
  let ready t () = is_closed t || not (is_empty t)

  (* [None] means closed *and* drained: a close does not discard pending
     requests, matching the handler loop of Fig. 7 where `false` from the
     outer dequeue means "no more work", not "momentarily empty". *)
  let rec dequeue t =
    match Qs_queues.Mpsc_queue.pop t.q with
    | Some v -> Some v
    | None ->
      if is_closed t then
        (* Re-check: a producer may have raced the close. *)
        Qs_queues.Mpsc_queue.pop t.q
      else begin
        Waiter.park t.waiter ~ready:(ready t);
        dequeue t
      end

  let rec drain t buf =
    if Array.length buf = 0 then 0
    else
      match Qs_queues.Mpsc_queue.drain t.q buf with
      | 0 ->
        if is_closed t then Qs_queues.Mpsc_queue.drain t.q buf
        else begin
          Waiter.park t.waiter ~ready:(ready t);
          drain t buf
        end
      | n -> n
end

(* First-class MAILBOX views, for generic tests and benchmarks.  [Spsc]'s
   optional backing argument is fixed per view; [Mpsc] conforms as-is. *)
let mailboxes : (string * (module MAILBOX)) list =
  let spsc backing =
    (module struct
      include Spsc

      let create () = Spsc.create ~backing ()
    end : MAILBOX)
  in
  [
    ("bqueue:spsc-linked", spsc `Linked);
    ("bqueue:spsc-ring", spsc `Ring);
    ("bqueue:mpsc", (module Mpsc : MAILBOX));
  ]
