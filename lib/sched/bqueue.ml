(* Blocking single-consumer queues: the runtime's communication channels.

   [Spsc] is a private queue (client -> handler request stream); [Mpsc] is
   both the queue-of-queues (clients enqueue private queues, Fig. 4) and
   the single request queue of the lock-based baseline runtime (Fig. 2).

   Blocking parks the consumer *fiber* via [Sched.suspend]; producers wake
   it through a one-slot waiter exchanged atomically, so the wake-up is a
   single CAS on the fast path.  When the woken consumer is resumed by a
   producer running on the same worker, the scheduler's hot slot makes the
   switch a direct handoff (paper §3.2). *)

module Waiter = struct
  type t = Sched.resumer option Atomic.t

  let create () = Atomic.make None

  let wake w =
    match Atomic.exchange w None with
    | Some resume -> resume ()
    | None -> ()

  (* Park the (single) consumer until woken.  [ready] re-checks the queue
     after the resumer is published, closing the race with a producer that
     pushed before seeing the waiter. *)
  let park w ~ready =
    Sched.suspend (fun resume ->
      Atomic.set w (Some resume);
      if ready () then wake w)
end

module Spsc = struct
  type 'a t = {
    q : 'a Qs_queues.Spsc_queue.t;
    waiter : Waiter.t;
  }

  let create () = { q = Qs_queues.Spsc_queue.create (); waiter = Waiter.create () }

  let enqueue t v =
    Qs_queues.Spsc_queue.push t.q v;
    Waiter.wake t.waiter

  let rec dequeue t =
    match Qs_queues.Spsc_queue.pop t.q with
    | Some v -> v
    | None ->
      Waiter.park t.waiter ~ready:(fun () ->
        not (Qs_queues.Spsc_queue.is_empty t.q));
      dequeue t

  let is_empty t = Qs_queues.Spsc_queue.is_empty t.q
  let length t = Qs_queues.Spsc_queue.length t.q
end

module Mpsc = struct
  type 'a t = {
    q : 'a Qs_queues.Mpsc_queue.t;
    waiter : Waiter.t;
    closed : bool Atomic.t;
  }

  let create () =
    {
      q = Qs_queues.Mpsc_queue.create ();
      waiter = Waiter.create ();
      closed = Atomic.make false;
    }

  let enqueue t v =
    Qs_queues.Mpsc_queue.push t.q v;
    Waiter.wake t.waiter

  let close t =
    Atomic.set t.closed true;
    Waiter.wake t.waiter

  let is_closed t = Atomic.get t.closed

  (* [None] means closed *and* drained: a close does not discard pending
     requests, matching the handler loop of Fig. 7 where `false` from the
     outer dequeue means "no more work", not "momentarily empty". *)
  let rec dequeue t =
    match Qs_queues.Mpsc_queue.pop t.q with
    | Some v -> Some v
    | None ->
      if Atomic.get t.closed then
        (* Re-check: a producer may have raced the close. *)
        match Qs_queues.Mpsc_queue.pop t.q with
        | Some v -> Some v
        | None -> None
      else begin
        Waiter.park t.waiter ~ready:(fun () ->
          Atomic.get t.closed || not (Qs_queues.Mpsc_queue.is_empty t.q));
        dequeue t
      end

  let is_empty t = Qs_queues.Mpsc_queue.is_empty t.q
end
