(** Per-scheduler timer queue (min-heap with lazy cancellation).

    Backs {!Sched.sleep} and {!Sched.suspend_timeout} and, through them,
    every deadline in the runtime: query timeouts, promise [await ?timeout],
    reservation timeouts and [Runtime.shutdown ?grace].  A scheduler owns
    exactly one timer queue; busy workers fire due timers on their
    scheduling path, and when every worker is parked one of them acts as a
    timekeeper sleeping until the earliest armed deadline — so a pending
    timer is a wake source and never misreported as a deadlock.

    Deadlines are absolute [Unix.gettimeofday]-based times (see {!now}). *)

exception Timeout
(** Raised by deadline-bounded waits ({!Promise.await},
    {!Fiber_mutex.lock_timeout}, and the whole scoop request path, where it
    is re-exported as [Scoop.Timeout]). *)

type t
(** A timer queue. *)

type handle
(** An armed timer. *)

val now : unit -> float
(** Current wall-clock time in seconds (the clock deadlines are measured
    against). *)

val create : unit -> t

val arm : t -> deadline:float -> (unit -> unit) -> handle
(** [arm t ~deadline action] schedules [action] to run once [now () >=
    deadline].  The action runs on whichever worker fires it — scheduler
    context, not fiber context — so it must not block or perform effects;
    resuming a suspended fiber is the intended use.  Thread-safe. *)

val cancel : handle -> bool
(** Cancel an armed timer.  Returns [true] iff the cancellation won, i.e.
    the action had not fired and is now guaranteed never to run.  A single
    CAS; safe from any domain, idempotent. *)

val fire_due : t -> now:float -> int
(** Pop and run every action whose deadline is [<= now] (oldest first,
    outside the internal lock); returns the number fired.  Cheap when
    nothing is due: a single atomic read. *)

val next_deadline : t -> float
(** Earliest possibly-live deadline, [infinity] if none.  Lock-free; may be
    conservatively early (a cancelled entry not yet pruned) but is never
    later than the true earliest live deadline. *)

val pending : t -> bool
(** [true] iff at least one armed timer has neither fired nor been
    cancelled.  Lock-free. *)

type counters = { t_armed : int; t_fired : int; t_cancelled : int }

val counters : t -> counters
