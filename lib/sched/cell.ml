(* Generation-stamped reusable result cells — the pooled flavour of
   {!Ivar}.

   An [Ivar] is write-once and heap-allocated per rendezvous: every
   packaged query used to pay one fresh cell (plus its waiter list) per
   round trip.  A [Cell] is the same one-shot rendezvous made reusable:
   the owner recycles the cell between uses, and a *generation stamp*
   makes recycling safe to observe.  Every resolution is tagged with the
   generation it belongs to, and every read carries the generation the
   reader was issued; a reader holding a stale generation can never be
   handed a later generation's result — it gets [Stale] instead.

   Discipline (enforced by the SCOOP request path, checked by qcheck):

   - one filler and one awaiter per generation;
   - the owner calls [recycle] only after the awaiter of the current
     generation has consumed the outcome (or provably abandoned it);
   - a reader that timed out abandons by error-filling its generation:
     the fill CAS then elects a single owner for the aftermath — if the
     abandon won, the real filler's late fill fails and the filler side
     cleans up; if the real fill won, the abandoning reader knows the
     filler is done and cleans up itself.

   The stamp is the safety net for when the discipline is violated by a
   straggler: a resumer subscribed under an old generation that fires
   after a recycle re-reads the state, finds a mismatched tag, and
   raises [Stale] rather than returning someone else's value. *)

exception Stale

type 'a outcome = ('a, exn * Printexc.raw_backtrace) result

type 'a state =
  | Empty of Sched.resumer list
  | Resolved of int * 'a outcome (* tagged with the filling generation *)

type 'a t = {
  mutable gen : int;
      (* current generation; written only by the owner, between uses *)
  state : 'a state Atomic.t;
}

let create () = { gen = 0; state = Atomic.make (Empty []) }
let generation t = t.gen

(* Owner-only: start the next generation.  Any waiters still subscribed
   belong to violated discipline — they are dropped (their eventual
   wake-up, if the old generation ever resolves, is impossible now, and
   their reads would raise [Stale] anyway). *)
let recycle t =
  t.gen <- t.gen + 1;
  Atomic.set t.state (Empty [])

let resolve t ~gen outcome =
  let rec loop () =
    match Atomic.get t.state with
    | Resolved _ -> false
    | Empty waiters as old ->
      if Atomic.compare_and_set t.state old (Resolved (gen, outcome)) then begin
        (* FIFO wake-up: waiters accumulated head-first. *)
        List.iter (fun resume -> resume ()) (List.rev waiters);
        true
      end
      else loop ()
  in
  loop ()

let try_fill t ~gen v = resolve t ~gen (Ok v)

let try_fill_error ?bt t ~gen e =
  let bt =
    match bt with Some bt -> bt | None -> Printexc.get_raw_backtrace ()
  in
  resolve t ~gen (Error (e, bt))

(* Read an outcome the state claims is resolved, validating the tag. *)
let checked ~gen (rg, outcome) = if rg = gen then outcome else raise Stale

let peek_result t ~gen =
  match Atomic.get t.state with
  | Resolved (rg, outcome) -> Some (checked ~gen (rg, outcome))
  | Empty _ -> if t.gen <> gen then raise Stale else None

let subscribe t resume =
  let rec loop () =
    match Atomic.get t.state with
    | Resolved _ ->
      (* Resolved between the caller's first check and suspension. *)
      resume ()
    | Empty waiters as old ->
      if not (Atomic.compare_and_set t.state old (Empty (resume :: waiters)))
      then loop ()
  in
  loop ()

let result t ~gen =
  match Atomic.get t.state with
  | Resolved (rg, outcome) -> checked ~gen (rg, outcome)
  | Empty _ ->
    if t.gen <> gen then raise Stale;
    Sched.suspend (fun resume -> subscribe t resume);
    (match Atomic.get t.state with
    | Resolved (rg, outcome) -> checked ~gen (rg, outcome)
    | Empty _ ->
      (* Woken without a resolution: only a recycle can do that, and a
         recycle means this reader's generation is over. *)
      raise Stale)

(* Timed read; [None] on expiry.  Like [Ivar.result_timeout], the
   subscribed resumer stays in the waiter list as dead weight until the
   cell resolves or recycles; the one-shot CAS in [suspend_timeout]
   makes the eventual invocation a no-op. *)
let result_timeout t ~gen dt =
  match Atomic.get t.state with
  | Resolved (rg, outcome) -> Some (checked ~gen (rg, outcome))
  | Empty _ -> (
    if t.gen <> gen then raise Stale;
    match Sched.suspend_timeout (fun resume -> subscribe t resume) dt with
    | `Timed_out -> None
    | `Resumed -> (
      match Atomic.get t.state with
      | Resolved (rg, outcome) -> Some (checked ~gen (rg, outcome))
      | Empty _ -> raise Stale))

let read t ~gen =
  match result t ~gen with
  | Ok v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt
