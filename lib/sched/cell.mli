(** Generation-stamped reusable result cells.

    A [Cell.t] is an {!Ivar} made recyclable: one rendezvous per
    {e generation}, with the owner bumping the generation between uses
    instead of allocating a fresh cell.  Fills and reads both carry the
    generation they were issued under; a reader whose generation has
    passed raises {!Stale} instead of ever observing a later
    generation's value.  This is what lets the pooled flat-request path
    embed one completion cell per request record for the record's whole
    life.

    Discipline: one filler and one awaiter per generation; only the
    owner calls {!recycle}, and only after the current generation's
    awaiter has consumed the outcome.  The generation stamp turns any
    violation into a [Stale] exception rather than silent value
    confusion. *)

exception Stale
(** Raised when a read discovers its generation has been recycled. *)

type 'a outcome = ('a, exn * Printexc.raw_backtrace) result

type 'a t

val create : unit -> 'a t
(** A fresh cell at generation 0, unresolved. *)

val generation : 'a t -> int
(** The current generation.  Capture this when issuing a request and
    pass it back to {!result}/{!try_fill}. *)

val recycle : 'a t -> unit
(** Owner-only: clear the resolution and start the next generation.
    Any reader still holding the old generation will see [Stale]. *)

val try_fill : 'a t -> gen:int -> 'a -> bool
(** Resolve with a value, tagging the resolution with [gen].  [false]
    if the cell was already resolved. *)

val try_fill_error : ?bt:Printexc.raw_backtrace -> 'a t -> gen:int -> exn -> bool
(** Resolve with an error ([bt] defaults to the current backtrace). *)

val peek_result : 'a t -> gen:int -> 'a outcome option
(** Non-blocking: [Some] if resolved for [gen], [None] if still empty.
    @raise Stale if the cell has moved past [gen]. *)

val result : 'a t -> gen:int -> 'a outcome
(** Block the calling fiber until the cell resolves for [gen].
    @raise Stale if the cell was recycled past [gen]. *)

val result_timeout : 'a t -> gen:int -> float -> 'a outcome option
(** Like {!result} with a relative deadline in seconds; [None] on
    expiry.  The abandoning reader should then error-fill the cell at
    its generation: the fill CAS decides whether the reader or the
    eventual real filler is responsible for recycling (see the request
    path in [Scoop.Registration]/[Scoop.Processor]). *)

val read : 'a t -> gen:int -> 'a
(** [result] unwrapped: returns the value or re-raises the error with
    its original backtrace. *)
