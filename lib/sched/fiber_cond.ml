(* Condition variable over [Fiber_mutex].

   The waiter list is protected by the associated mutex (as in the POSIX
   discipline: wait, signal and broadcast are called with the mutex held),
   so no atomics are needed here.  [wait] enqueues its resumer and releases
   the mutex only after the fiber is fully suspended, which makes the
   classic lost-wakeup window impossible. *)

type t = { mutable waiters : Sched.resumer list (* newest first *) }

let create () = { waiters = [] }

let wait t mutex =
  Sched.suspend (fun resume ->
    t.waiters <- resume :: t.waiters;
    Fiber_mutex.unlock mutex);
  Fiber_mutex.lock mutex

let signal t =
  match List.rev t.waiters with
  | [] -> ()
  | oldest :: rest ->
    t.waiters <- List.rev rest;
    oldest ()

let broadcast t =
  let waiters = List.rev t.waiters in
  t.waiters <- [];
  List.iter (fun resume -> resume ()) waiters
