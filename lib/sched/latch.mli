(** Countdown latch for fibers.

    Created with a count [n]; {!wait} blocks until {!count_down} has been
    called [n] times.  Safe across domains. *)

type t

val create : int -> t
(** @raise Invalid_argument on a negative count. *)

val count_down : t -> unit
(** Decrement; the transition to zero wakes all waiters.
    @raise Invalid_argument if the count is already zero. *)

val wait : t -> unit
(** Block the current fiber until the count reaches zero.  Returns
    immediately if it already has. *)

val count : t -> int
(** Current count (racy). *)
