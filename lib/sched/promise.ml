(* Promises: deferred query results for promise-pipelined round trips.

   Morandi et al.'s operational semantics of the SCOOP request protocol
   (arXiv:1101.1038) models a query as a packaged call plus a *result
   rendezvous*; nothing forces the rendezvous to happen at issue time.
   A promise is exactly the deferred rendezvous: the packaged call is
   logged now, the client keeps a handle on the future result, and the
   blocking wait — if any — happens only when the value is forced.  A
   client fanning out queries to k handlers thereby overlaps all k
   round trips instead of paying them sequentially.

   Built on [Ivar] (the write-once cell that already backed blocking
   packaged queries), extended with:
   - non-blocking observation ([try_read], [is_resolved]),
   - completion callbacks ([on_fulfill], used by the runtime to close
     query-pipeline trace spans on the handler side),
   - combinators ([map], [both], [all]) for fan-in without
     intermediate blocking,
   - a one-shot force hook ([create ~on_force]) through which the
     SCOOP runtime observes the *first* client rendezvous: whether the
     value was already available (a fully overlapped round trip) or
     the client had to block, and — for registrations — the moment the
     synced status may be re-established.

   The force hook fires exactly once, on the first successful
   observation ([await] or a [try_read] returning [Some]); combinator
   results propagate forcing to their components so that forcing a
   fan-in marks every underlying handler rendezvous as observed. *)

type 'a t = {
  ivar : 'a Ivar.t;
  on_force : (bool -> unit) option Atomic.t;
      (* argument: was the value already resolved when first observed *)
}

let create ?on_force () =
  { ivar = Ivar.create (); on_force = Atomic.make on_force }

let of_value v = { ivar = Ivar.create_full v; on_force = Atomic.make None }

let fulfill t v = Ivar.fill t.ivar v
let try_fulfill t v = Ivar.try_fill t.ivar v
let is_resolved t = Ivar.is_filled t.ivar
let peek t = Ivar.peek t.ivar
let on_fulfill t f = Ivar.on_fill t.ivar f

(* Consume the hook at most once, from whichever observation wins. *)
let fire_force t ~was_ready =
  match Atomic.exchange t.on_force None with
  | Some f -> f was_ready
  | None -> ()

let await t =
  let was_ready = Ivar.is_filled t.ivar in
  let v = Ivar.read t.ivar in
  fire_force t ~was_ready;
  v

let try_read t =
  match Ivar.peek t.ivar with
  | Some v ->
    fire_force t ~was_ready:true;
    Some v
  | None -> None

(* Combinators fulfil eagerly (in the last component's filler context)
   and force lazily (propagating the observation to every component, so
   registration synced-status bookkeeping sees the rendezvous). *)

let map f t =
  let p = create ~on_force:(fun was_ready -> fire_force t ~was_ready) () in
  on_fulfill t (fun v -> fulfill p (f v));
  p

let both a b =
  let p =
    create
      ~on_force:(fun was_ready ->
        fire_force a ~was_ready;
        fire_force b ~was_ready)
      ()
  in
  let remaining = Atomic.make 2 in
  let arm () =
    if Atomic.fetch_and_add remaining (-1) = 1 then
      match (Ivar.peek a.ivar, Ivar.peek b.ivar) with
      | Some va, Some vb -> fulfill p (va, vb)
      | _ -> assert false
  in
  on_fulfill a (fun _ -> arm ());
  on_fulfill b (fun _ -> arm ());
  p

let all ps =
  match ps with
  | [] -> of_value []
  | _ ->
    let p =
      create
        ~on_force:(fun was_ready ->
          List.iter (fun q -> fire_force q ~was_ready) ps)
        ()
    in
    let remaining = Atomic.make (List.length ps) in
    let arm () =
      if Atomic.fetch_and_add remaining (-1) = 1 then
        fulfill p
          (List.map
             (fun q ->
               match Ivar.peek q.ivar with
               | Some v -> v
               | None -> assert false)
             ps)
    in
    List.iter (fun q -> on_fulfill q (fun _ -> arm ())) ps;
    p
