(* Promises: deferred query results for promise-pipelined round trips.

   Morandi et al.'s operational semantics of the SCOOP request protocol
   (arXiv:1101.1038) models a query as a packaged call plus a *result
   rendezvous*; nothing forces the rendezvous to happen at issue time.
   A promise is exactly the deferred rendezvous: the packaged call is
   logged now, the client keeps a handle on the future result, and the
   blocking wait — if any — happens only when the value is forced.  A
   client fanning out queries to k handlers thereby overlaps all k
   round trips instead of paying them sequentially.

   Built on [Ivar] (the write-once cell that already backed blocking
   packaged queries), extended with:
   - non-blocking observation ([try_read], [is_resolved]),
   - completion callbacks ([on_fulfill], used by the runtime to close
     query-pipeline trace spans on the handler side),
   - combinators ([map], [both], [all]) for fan-in without
     intermediate blocking,
   - a one-shot force hook ([create ~on_force]) through which the
     SCOOP runtime observes the *first* client rendezvous: whether the
     value was already available (a fully overlapped round trip) or
     the client had to block, and — for registrations — the moment the
     synced status may be re-established.

   A promise can also *reject* ([fulfill_error]): forcing then re-raises
   the handler-side exception (with its captured backtrace) on whichever
   client forces first — the typed-completion half of the failure-aware
   request path.  Rejection counts as a resolution for the force hook:
   the rendezvous happened, it just delivered an exception.

   The force hook fires exactly once, on the first successful
   observation ([await] or a [try_read] returning [Some] or re-raising);
   combinator results propagate forcing to their components so that
   forcing a fan-in marks every underlying handler rendezvous as
   observed. *)

type 'a t = {
  ivar : 'a Ivar.t;
  on_force : (bool -> unit) option Atomic.t;
      (* argument: was the value already resolved when first observed *)
  mutable drained : bool;
      (* handler-side hint: at fulfilment time the registration's
         private queue held no later requests.  Written (at most once,
         by the fulfilling handler) strictly before the resolution CAS,
         read by a forcing client strictly after it — the ivar's
         resolution is the release/acquire edge, so no atomics are
         needed here. *)
}

let create ?on_force () =
  { ivar = Ivar.create (); on_force = Atomic.make on_force; drained = false }

let of_value v =
  { ivar = Ivar.create_full v; on_force = Atomic.make None; drained = false }

let mark_drained t = t.drained <- true
let was_drained t = t.drained

let fulfill t v = Ivar.fill t.ivar v
let try_fulfill t v = Ivar.try_fill t.ivar v
let fulfill_error ?bt t e = Ivar.fill_error ?bt t.ivar e
let try_fulfill_error ?bt t e = Ivar.try_fill_error ?bt t.ivar e
let is_resolved t = Ivar.is_filled t.ivar
let is_rejected t = Ivar.is_rejected t.ivar
let peek t = Ivar.peek t.ivar
let on_fulfill t f = Ivar.on_fill t.ivar f
let on_resolve t f = Ivar.on_resolve t.ivar f

(* Consume the hook at most once, from whichever observation wins. *)
let fire_force t ~was_ready =
  match Atomic.exchange t.on_force None with
  | Some f -> f was_ready
  | None -> ()

let await ?timeout t =
  let was_ready = Ivar.is_filled t.ivar in
  let outcome =
    match timeout with
    | None -> Ivar.result t.ivar
    | Some dt -> (
      match Ivar.result_timeout t.ivar dt with
      | Some outcome -> outcome
      | None ->
        (* Deadline expired with the rendezvous still pending: no value was
           observed, so the force hook does NOT fire — the promise stays
           forceable and a later [await] can still complete the rendezvous
           (and re-establish registration synced bookkeeping). *)
        raise Timer.Timeout)
  in
  match outcome with
  | Ok v ->
    fire_force t ~was_ready;
    v
  | Error (e, bt) ->
    (* A rejected rendezvous still happened: fire the hook so synced
       bookkeeping and ready/blocked accounting stay balanced. *)
    fire_force t ~was_ready;
    Printexc.raise_with_backtrace e bt

let try_read t =
  match Ivar.peek_result t.ivar with
  | Some (Ok v) ->
    fire_force t ~was_ready:true;
    Some v
  | Some (Error (e, bt)) ->
    fire_force t ~was_ready:true;
    Printexc.raise_with_backtrace e bt
  | None -> None

(* Combinators fulfil eagerly (in the last component's filler context)
   and force lazily (propagating the observation to every component, so
   registration synced-status bookkeeping sees the rendezvous).  The
   first component to reject wins: the combined promise rejects with
   that exception, even if other components are still pending. *)

let map f t =
  let p = create ~on_force:(fun was_ready -> fire_force t ~was_ready) () in
  on_resolve t (function
    | Ok v -> (
      match f v with
      | w -> fulfill p w
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        fulfill_error ~bt p e)
    | Error (e, bt) -> fulfill_error ~bt p e);
  p

let both a b =
  let p =
    create
      ~on_force:(fun was_ready ->
        fire_force a ~was_ready;
        fire_force b ~was_ready)
      ()
  in
  let remaining = Atomic.make 2 in
  let arm outcome =
    match outcome with
    | Error (e, bt) -> ignore (try_fulfill_error ~bt p e : bool)
    | Ok _ ->
      if Atomic.fetch_and_add remaining (-1) = 1 then (
        match (Ivar.peek_result a.ivar, Ivar.peek_result b.ivar) with
        | Some (Ok va), Some (Ok vb) -> ignore (try_fulfill p (va, vb) : bool)
        | _ -> assert false)
  in
  on_resolve a arm;
  on_resolve b arm;
  p

let all ps =
  match ps with
  | [] -> of_value []
  | _ ->
    let p =
      create
        ~on_force:(fun was_ready ->
          List.iter (fun q -> fire_force q ~was_ready) ps)
        ()
    in
    let remaining = Atomic.make (List.length ps) in
    let arm outcome =
      match outcome with
      | Error (e, bt) -> ignore (try_fulfill_error ~bt p e : bool)
      | Ok _ ->
        if Atomic.fetch_and_add remaining (-1) = 1 then
          ignore
            (try_fulfill p
               (List.map
                  (fun q ->
                    match Ivar.peek_result q.ivar with
                    | Some (Ok v) -> v
                    | _ -> assert false)
                  ps)
              : bool)
    in
    List.iter (fun q -> on_resolve q arm) ps;
    p
