(** Software transactional memory (TL2-style) with Haskell-like
    [retry]/[or_else] composition, over scheduler fibers.

    The STM-based comparator of the paper's language comparison (§5).

    {[
      let balance = Stm.make 0 in
      Stm.atomically (fun tx ->
        let b = Stm.read tx balance in
        if b < amount then Stm.retry tx
        else Stm.write tx balance (b - amount))
    ]} *)

type tx

exception Stm_failure of string

val atomically : (tx -> 'a) -> 'a
(** Run a transaction to successful commit, re-executing on conflicts.
    A [retry] parks the fiber until one of the tvars read so far is
    written by another transaction.  Side effects in the body may run
    multiple times — keep bodies pure apart from tvar operations. *)

val read : tx -> 'a Tvar.t -> 'a
val write : tx -> 'a Tvar.t -> 'a -> unit

val retry : tx -> 'a
(** Abandon this attempt and block until the read set changes. *)

val or_else : (tx -> 'a) -> (tx -> 'a) -> tx -> 'a
(** [or_else f g] tries [f]; if it retries, rolls back its writes and
    tries [g]. *)

(** Non-composable conveniences (each runs its own transaction): *)

val make : 'a -> 'a Tvar.t
val get : 'a Tvar.t -> 'a
val set : 'a Tvar.t -> 'a -> unit
val update : 'a Tvar.t -> ('a -> 'a) -> unit
val modify_return : 'a Tvar.t -> ('a -> 'a * 'b) -> 'b
