(** Transactional variables for {!Stm}.  Access them only through
    {!Stm.read} / {!Stm.write} inside {!Stm.atomically}; the remaining
    operations are the commit machinery, exposed for Stm and tests. *)

type 'a t = {
  id : int;
  mutable value : 'a;
  vlock : int Atomic.t;
  waiters : Qs_sched.Sched.resumer list Atomic.t;
}

val make : 'a -> 'a t

(**/**)

val is_locked : int -> bool
val version_of : int -> int
val word : 'a t -> int
val try_lock : 'a t -> bool
val unlock_with : 'a t -> int -> unit
val unlock_restore : 'a t -> unit
val subscribe : 'a t -> Qs_sched.Sched.resumer -> unit
val wake_all : 'a t -> unit
