(* Transactional variables.

   Each tvar carries a versioned lock word: [version lsl 1 lor locked].
   Readers snapshot the word, read the value, and re-check the word;
   writers lock the word during commit and release it with the new version.
   The waiter list supports [retry]: a blocked transaction subscribes to
   every tvar it read and is woken by the next commit that writes one. *)

type 'a t = {
  id : int;
  mutable value : 'a; (* protected by the lock bit of [vlock] *)
  vlock : int Atomic.t;
  waiters : Qs_sched.Sched.resumer list Atomic.t;
}

let next_id = Atomic.make 0

let make value =
  {
    id = Atomic.fetch_and_add next_id 1;
    value;
    vlock = Atomic.make 0;
    waiters = Atomic.make [];
  }

let is_locked word = word land 1 = 1
let version_of word = word lsr 1

(* Racy read of the current version (for validation). *)
let word t = Atomic.get t.vlock

let try_lock t =
  let w = Atomic.get t.vlock in
  (not (is_locked w)) && Atomic.compare_and_set t.vlock w (w lor 1)

let unlock_with t version = Atomic.set t.vlock (version lsl 1)

let unlock_restore t =
  let w = Atomic.get t.vlock in
  assert (is_locked w);
  Atomic.set t.vlock (w land lnot 1)

let subscribe t resume =
  let rec loop () =
    let old = Atomic.get t.waiters in
    if not (Atomic.compare_and_set t.waiters old (resume :: old)) then loop ()
  in
  loop ()

let wake_all t =
  match Atomic.exchange t.waiters [] with
  | [] -> ()
  | waiters -> List.iter (fun resume -> resume ()) waiters
