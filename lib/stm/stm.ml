(* Software transactional memory in the TL2 style (global version clock,
   per-tvar versioned locks, lazy write set) with Haskell-style [retry] /
   [or_else] composition.  This is the comparator substrate for the
   paper's Haskell/STM benchmarks (§5, Table 3): every shared-state
   operation pays read-set/write-set bookkeeping and commit validation,
   the "extra level of bookkeeping on every operation" the paper blames
   for Haskell's coordination results.

   Transactions run inside scheduler fibers; a blocked [retry] parks the
   fiber until another transaction commits to one of the tvars it read. *)

type rentry = Rentry : 'a Tvar.t * int -> rentry
type wentry = Wentry : 'a Tvar.t * 'a -> wentry
type locked = Locked : 'a Tvar.t -> locked

type tx = {
  mutable rv : int; (* read version: global clock at (re)start *)
  mutable reads : rentry list;
  mutable writes : wentry list; (* newest first *)
}

exception Abort
(* internal: conflicting transaction, restart *)

exception Retry_request
(* internal: user-requested retry, park until a read tvar changes *)

exception Stm_failure of string

let clock = Atomic.make 0

let find_write (type a) tx (v : a Tvar.t) : a option =
  let rec go = function
    | [] -> None
    | Wentry (v', x) :: rest ->
      if v'.Tvar.id = v.Tvar.id then
        (* Equal ids imply physical equality, so the payload type matches. *)
        Some (Obj.magic x : a)
      else go rest
  in
  go tx.writes

let read tx v =
  match find_write tx v with
  | Some x -> x
  | None ->
    let w1 = Tvar.word v in
    if Tvar.is_locked w1 then raise Abort;
    let x = v.Tvar.value in
    let w2 = Tvar.word v in
    if w1 <> w2 || Tvar.version_of w1 > tx.rv then raise Abort;
    tx.reads <- Rentry (v, Tvar.version_of w1) :: tx.reads;
    x

let write tx v x = tx.writes <- Wentry (v, x) :: tx.writes

let retry _tx = raise Retry_request

let or_else f g tx =
  let saved_writes = tx.writes in
  try f tx
  with Retry_request ->
    (* First alternative blocked: roll back its writes (its reads stay in
       the read set so a later [retry] of the whole transaction waits on
       them too, as in GHC). *)
    tx.writes <- saved_writes;
    g tx

(* Keep only the newest write per tvar, sorted by id for deadlock-free
   lock acquisition. *)
let dedup_writes writes =
  let seen = Hashtbl.create 8 in
  let keep =
    List.filter
      (fun (Wentry (v, _)) ->
        if Hashtbl.mem seen v.Tvar.id then false
        else begin
          Hashtbl.add seen v.Tvar.id ();
          true
        end)
      writes
  in
  List.sort (fun (Wentry (a, _)) (Wentry (b, _)) -> Int.compare a.Tvar.id b.Tvar.id) keep

let commit tx =
  match tx.writes with
  | [] -> () (* read-only: reads were validated against rv at read time *)
  | _ ->
    let writes = dedup_writes tx.writes in
    let in_write_set id =
      List.exists (fun (Wentry (v, _)) -> v.Tvar.id = id) writes
    in
    (* Phase 1: lock the write set. *)
    let rec lock_all acquired = function
      | [] -> acquired
      | Wentry (v, _) :: rest ->
        if Tvar.try_lock v then lock_all (Locked v :: acquired) rest
        else begin
          List.iter (fun (Locked v) -> Tvar.unlock_restore v) acquired;
          raise Abort
        end
    in
    let acquired = lock_all [] writes in
    (* Phase 2: validate the read set. *)
    let valid =
      List.for_all
        (fun (Rentry (v, ver)) ->
          let w = Tvar.word v in
          Tvar.version_of w = ver
          && ((not (Tvar.is_locked w)) || in_write_set v.Tvar.id))
        tx.reads
    in
    if not valid then begin
      List.iter (fun (Locked v) -> Tvar.unlock_restore v) acquired;
      raise Abort
    end;
    (* Phase 3: publish. *)
    let wv = Atomic.fetch_and_add clock 1 + 1 in
    List.iter
      (fun (Wentry (v, x)) ->
        v.Tvar.value <- x;
        Tvar.unlock_with v wv;
        Tvar.wake_all v)
      writes

let read_set_changed tx =
  List.exists
    (fun (Rentry (v, ver)) ->
      let w = Tvar.word v in
      Tvar.is_locked w || Tvar.version_of w <> ver)
    tx.reads

let atomically f =
  let backoff = Qs_queues.Backoff.create () in
  let rec attempt () =
    let tx = { rv = Atomic.get clock; reads = []; writes = [] } in
    match f tx with
    | result -> (
      match commit tx with
      | () -> result
      | exception Abort ->
        Qs_queues.Backoff.once backoff;
        attempt ())
    | exception Abort ->
      Qs_queues.Backoff.once backoff;
      attempt ()
    | exception Retry_request ->
      if tx.reads = [] then
        raise (Stm_failure "retry with an empty read set would block forever");
      Qs_sched.Sched.suspend (fun resume ->
        List.iter (fun (Rentry (v, _)) -> Tvar.subscribe v resume) tx.reads;
        (* Close the race with a commit that happened before we
           subscribed. *)
        if read_set_changed tx then resume ());
      Qs_queues.Backoff.reset backoff;
      attempt ()
  in
  attempt ()

(* Convenience helpers used throughout the benchmarks. *)
let make = Tvar.make
let get v = atomically (fun tx -> read tx v)
let set v x = atomically (fun tx -> write tx v x)
let update v f = atomically (fun tx -> write tx v (f (read tx v)))

let modify_return v f =
  atomically (fun tx ->
    let x, r = f (read tx v) in
    write tx v x;
    r)
