(* Runtime façade: processor registry, lifecycle, and entry point. *)

type t = {
  ctx : Ctx.t;
  procs : Processor.t Qs_queues.Treiber_stack.t;
  next_id : int Atomic.t;
}

(* The request-path knobs are orthogonal to the optimization presets, so
   they are overridable per run without defining a new preset: [mailbox]
   swaps the communication structure, [batch] the drain width, [spsc] the
   private-queue backing, [pools]/[pool] the scheduler-pool topology and
   default processor pinning. *)
let override ?mailbox ?batch ?spsc ?deadline ?bound ?overflow ?pools ?pool
    ?pooling config =
  let config =
    match mailbox with
    | Some m -> { config with Config.mailbox = m }
    | None -> config
  in
  let config =
    match batch with
    | Some b ->
      if b < 1 then invalid_arg "Scoop.Runtime: batch must be >= 1";
      { config with Config.batch = b }
    | None -> config
  in
  let config =
    match spsc with
    | Some s -> { config with Config.spsc = s }
    | None -> config
  in
  let config =
    match deadline with
    | Some d ->
      if d <= 0.0 then invalid_arg "Scoop.Runtime: deadline must be > 0";
      { config with Config.default_deadline = Some d }
    | None -> config
  in
  let config =
    match bound with
    | Some b ->
      if b < 0 then invalid_arg "Scoop.Runtime: bound must be >= 0";
      { config with Config.bound = b }
    | None -> config
  in
  let config =
    match overflow with
    | Some p -> { config with Config.overflow = p }
    | None -> config
  in
  let config =
    match pools with
    | Some ps -> { config with Config.pools = ps }
    | None -> config
  in
  let config =
    match pool with
    | Some _ -> { config with Config.pool = pool }
    | None -> config
  in
  match pooling with
  | Some p -> { config with Config.pooling = p }
  | None -> config

(* [obs] wins over [trace]: both enable tracing, but [obs] lets the
   caller supply the sink (e.g. the one already attached to the
   scheduler) so every layer's events land in the same rings. *)
let resolve_sink ?obs ~trace () =
  match obs with
  | Some _ as s -> s
  | None -> if trace then Some (Qs_obs.Sink.create ()) else None

let create ?(config = Config.all) ?mailbox ?batch ?spsc ?deadline ?bound
    ?overflow ?pools ?pool ?pooling ?(trace = false) ?obs () =
  {
    ctx =
      Ctx.create
        ?sink:(resolve_sink ?obs ~trace ())
        (override ?mailbox ?batch ?spsc ?deadline ?bound ?overflow ?pools
           ?pool ?pooling config);
    procs = Qs_queues.Treiber_stack.create ();
    next_id = Atomic.make 0;
  }

let config t = t.ctx.Ctx.config
let stats t = t.ctx.Ctx.stats
let trace t = t.ctx.Ctx.trace
let obs t = t.ctx.Ctx.sink
let sched_counters () = Qs_sched.Sched.current_counters ()

let pool_counters () =
  Qs_sched.Sched.(pool_counters_assoc (current_pool_counters ()))

(* [?pool] pins the new processor's handler fiber to a scheduler pool;
   it defaults to the runtime's [Config.pool] (if any), so a whole
   runtime can route its handlers to a dedicated pool with one config
   field. *)
let processor ?pool t =
  let id = Atomic.fetch_and_add t.next_id 1 in
  let pool =
    match pool with Some _ -> pool | None -> t.ctx.Ctx.config.Config.pool
  in
  let proc =
    Processor.create ?sink:t.ctx.Ctx.sink ?pool ~id ~config:t.ctx.Ctx.config
      ~stats:t.ctx.Ctx.stats ()
  in
  (match t.ctx.Ctx.eve with
  | Some eve -> Eve.register eve id
  | None -> ());
  Qs_queues.Treiber_stack.push t.procs proc;
  proc

let processors ?pool t n = List.init n (fun _ -> processor ?pool t)

(* Pop every registered processor and apply [close] (Processor.shutdown
   or Processor.abort).  The pop-based registry makes repeated lifecycle
   calls naturally idempotent: a second call finds the stack empty. *)
let drain_procs t close =
  let rec pop acc =
    match Qs_queues.Treiber_stack.pop t.procs with
    | Some proc ->
      close proc;
      pop (proc :: acc)
    | None -> acc
  in
  pop []

let shutdown ?grace t =
  (* Close every stream first (so sibling handlers drain concurrently),
     then await each completion latch: when [shutdown] returns, every
     handler fiber has exited and all counters are final.

     With [?grace], the awaits share one absolute deadline.  Handlers
     still running when it expires are escalated to [Processor.abort] —
     their remaining packaged requests fail with [Aborted] — and then
     awaited without bound: abort cannot un-wedge a closure that never
     returns, but it does bound the *backlog*, which is the common way a
     drain overruns. *)
  let procs = drain_procs t Processor.shutdown in
  match grace with
  | None -> List.iter Processor.await_stopped procs
  | Some g ->
    let deadline = Qs_sched.Timer.now () +. Float.max 0.0 g in
    let laggards =
      List.filter
        (fun proc ->
          let remaining = deadline -. Qs_sched.Timer.now () in
          not
            (remaining > 0.0
            && Processor.try_await_stopped proc ~timeout:remaining))
        procs
    in
    List.iter Processor.abort laggards;
    List.iter Processor.await_stopped laggards

let abort t =
  List.iter Processor.await_stopped (drain_procs t Processor.abort)

(* Exceptional exit from [run]: close the streams but do not await the
   latches.  If [main] raised (including a scheduler [Stalled]), client
   fibers may be wedged holding registrations open, and a blocking wait
   here could hang the very error path that is trying to report them. *)
let quench t = ignore (drain_procs t Processor.shutdown : Processor.t list)

let separate ?timeout t proc body = Separate.one ?timeout t.ctx proc body
let separate2 ?timeout t p1 p2 body = Separate.two ?timeout t.ctx p1 p2 body

let separate_list ?timeout t procs body =
  Separate.many ?timeout t.ctx procs body

let separate_when ?timeout t proc ~pred body =
  Separate.when_ ?timeout t.ctx proc ~pred body

let separate_list_when ?timeout t procs ~pred body =
  Separate.many_when ?timeout t.ctx procs ~pred body

let run ?(domains = 1) ?(config = Config.all) ?mailbox ?batch ?spsc ?deadline
    ?bound ?overflow ?pools ?pool ?pooling ?grace ?(trace = false) ?obs
    ?on_stall ?on_counters main =
  (* Resolve the config up front: the scheduler needs the pool topology
     before the runtime exists. *)
  let config =
    override ?mailbox ?batch ?spsc ?deadline ?bound ?overflow ?pools ?pool
      ?pooling config
  in
  (* Build the sink before the scheduler starts so its workers share it:
     one sink then collects scheduler, handler and client events. *)
  let sink = resolve_sink ?obs ~trace () in
  Qs_sched.Sched.run ~domains ~pools:config.Config.pools ?on_stall
    ?on_counters ?obs:sink (fun () ->
    let t = create ~config ?obs:sink () in
    match main t with
    | v ->
      (* Pool teardown rides on the processor drain: closing every
         handler stream empties each pool's injection queue, and the
         final latch awaits cover pinned handlers in every pool. *)
      shutdown ?grace t;
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      (try quench t with _ -> ());
      Printexc.raise_with_backtrace e bt)
