(* Runtime façade: processor registry, lifecycle, and entry point. *)

type t = {
  ctx : Ctx.t;
  procs : Processor.t Qs_queues.Treiber_stack.t;
  next_id : int Atomic.t;
  remotes : Remote_client.t option;
      (* node connections when [config.endpoint = Connect _]: new
         processors become client-side proxies routed by the static
         shard map (processor id mod connection count) *)
}

(* [obs] wins over [trace]: both enable tracing, but [obs] lets the
   caller supply the sink (e.g. the one already attached to the
   scheduler) so every layer's events land in the same rings. *)
let resolve_sink ?obs ~trace () =
  match obs with
  | Some _ as s -> s
  | None -> if trace then Some (Qs_obs.Sink.create ()) else None

let create ?(config = Config.all) ?trace ?obs () =
  let trace =
    match trace with Some t -> t | None -> config.Config.trace
  in
  let ctx = Ctx.create ?sink:(resolve_sink ?obs ~trace ()) config in
  let remotes =
    match config.Config.endpoint with
    | Config.Connect addrs ->
      (* Establish the node connections up front (and their
         demultiplexer fibers): [create] with a [Connect] endpoint must
         run inside the scheduler, like [run] arranges. *)
      Some (Remote_client.connect ~stats:ctx.Ctx.stats addrs)
    | Config.In_process | Config.Listen _ -> None
  in
  {
    ctx;
    procs = Qs_queues.Treiber_stack.create ();
    next_id = Atomic.make 0;
    remotes;
  }

let config t = t.ctx.Ctx.config
let ctx t = t.ctx
let is_remote t = t.remotes <> None
let stats t = t.ctx.Ctx.stats
let trace t = t.ctx.Ctx.trace
let obs t = t.ctx.Ctx.sink
let sched_counters () = Qs_sched.Sched.current_counters ()

let pool_counters () =
  Qs_sched.Sched.(pool_counters_assoc (current_pool_counters ()))

(* [?pool] pins the new processor's handler fiber to a scheduler pool;
   it defaults to the runtime's [Config.pool] (if any), so a whole
   runtime can route its handlers to a dedicated pool with one config
   field. *)
let processor ?pool t =
  let id = Atomic.fetch_and_add t.next_id 1 in
  let pool =
    match pool with Some _ -> pool | None -> t.ctx.Ctx.config.Config.pool
  in
  let proc =
    match t.remotes with
    | Some rc ->
      (* Remote endpoint: the processor is a client-side stand-in whose
         handler lives on the node the shard map routes this id to. *)
      let conn = Remote_client.route rc id in
      let ops =
        {
          Processor.rem_node = Remote_client.conn_label conn;
          rem_open = (fun () -> Remote_client.open_reg conn ~proc:id);
        }
      in
      Processor.create_remote ?sink:t.ctx.Ctx.sink ~id
        ~config:t.ctx.Ctx.config ~stats:t.ctx.Ctx.stats ~ops ()
    | None ->
      Processor.create ?sink:t.ctx.Ctx.sink ?pool ~id ~config:t.ctx.Ctx.config
        ~stats:t.ctx.Ctx.stats ()
  in
  (match t.ctx.Ctx.eve with
  | Some eve -> Eve.register eve id
  | None -> ());
  Qs_queues.Treiber_stack.push t.procs proc;
  proc

let processors ?pool t n = List.init n (fun _ -> processor ?pool t)

(* Orderly remote teardown, after local handlers have drained: announce
   Bye on every node connection and unblock the demultiplexers. *)
let close_remotes t =
  match t.remotes with
  | Some rc -> ( try Remote_client.close rc with _ -> ())
  | None -> ()

(* Ask every connected node process to stop serving (pairs with
   [Scoop.Remote.listen] on the node side). *)
let shutdown_nodes t =
  match t.remotes with
  | Some rc -> Remote_client.shutdown_nodes rc
  | None -> ()

(* Pop every registered processor and apply [close] (Processor.shutdown
   or Processor.abort).  The pop-based registry makes repeated lifecycle
   calls naturally idempotent: a second call finds the stack empty. *)
let drain_procs t close =
  let rec pop acc =
    match Qs_queues.Treiber_stack.pop t.procs with
    | Some proc ->
      close proc;
      pop (proc :: acc)
    | None -> acc
  in
  pop []

let shutdown ?grace t =
  (* Close every stream first (so sibling handlers drain concurrently),
     then await each completion latch: when [shutdown] returns, every
     handler fiber has exited and all counters are final.

     With [?grace], the awaits share one absolute deadline.  Handlers
     still running when it expires are escalated to [Processor.abort] —
     their remaining packaged requests fail with [Aborted] — and then
     awaited without bound: abort cannot un-wedge a closure that never
     returns, but it does bound the *backlog*, which is the common way a
     drain overruns. *)
  let procs = drain_procs t Processor.shutdown in
  (match grace with
  | None -> List.iter Processor.await_stopped procs
  | Some g ->
    let deadline = Qs_sched.Timer.now () +. Float.max 0.0 g in
    let laggards =
      List.filter
        (fun proc ->
          let remaining = deadline -. Qs_sched.Timer.now () in
          not
            (remaining > 0.0
            && Processor.try_await_stopped proc ~timeout:remaining))
        procs
    in
    List.iter Processor.abort laggards;
    List.iter Processor.await_stopped laggards);
  close_remotes t

let abort t =
  List.iter Processor.await_stopped (drain_procs t Processor.abort);
  close_remotes t

(* Exceptional exit from [run]: close the streams but do not await the
   latches.  If [main] raised (including a scheduler [Stalled]), client
   fibers may be wedged holding registrations open, and a blocking wait
   here could hang the very error path that is trying to report them. *)
let quench t =
  ignore (drain_procs t Processor.shutdown : Processor.t list);
  close_remotes t

let separate ?timeout t proc body = Separate.one ?timeout t.ctx proc body
let separate2 ?timeout t p1 p2 body = Separate.two ?timeout t.ctx p1 p2 body

let separate_list ?timeout t procs body =
  Separate.many ?timeout t.ctx procs body

let separate_when ?timeout t proc ~pred body =
  Separate.when_ ?timeout t.ctx proc ~pred body

let separate_list_when ?timeout t procs ~pred body =
  Separate.many_when ?timeout t.ctx procs ~pred body

let run ?(domains = 1) ?(config = Config.all) ?grace ?trace ?obs ?on_stall
    ?on_counters main =
  let trace =
    match trace with Some t -> t | None -> config.Config.trace
  in
  (* Build the sink before the scheduler starts so its workers share it:
     one sink then collects scheduler, handler and client events. *)
  let sink = resolve_sink ?obs ~trace () in
  Qs_sched.Sched.run ~domains ~pools:config.Config.pools ?on_stall
    ?on_counters ?obs:sink (fun () ->
    let t = create ~config ?obs:sink () in
    match main t with
    | v ->
      (* Pool teardown rides on the processor drain: closing every
         handler stream empties each pool's injection queue, and the
         final latch awaits cover pinned handlers in every pool. *)
      shutdown ?grace t;
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      (try quench t with _ -> ());
      Printexc.raise_with_backtrace e bt)
