(* Runtime façade: processor registry, lifecycle, and entry point. *)

type t = {
  ctx : Ctx.t;
  procs : Processor.t Qs_queues.Treiber_stack.t;
  next_id : int Atomic.t;
}

let create ?(config = Config.all) ?(trace = false) () =
  {
    ctx = Ctx.create ~trace config;
    procs = Qs_queues.Treiber_stack.create ();
    next_id = Atomic.make 0;
  }

let config t = t.ctx.Ctx.config
let stats t = t.ctx.Ctx.stats
let trace t = t.ctx.Ctx.trace

let processor t =
  let id = Atomic.fetch_and_add t.next_id 1 in
  let proc =
    Processor.create ~id ~config:t.ctx.Ctx.config ~stats:t.ctx.Ctx.stats
  in
  (match t.ctx.Ctx.eve with
  | Some eve -> Eve.register eve id
  | None -> ());
  Qs_queues.Treiber_stack.push t.procs proc;
  proc

let processors t n = List.init n (fun _ -> processor t)

let shutdown t =
  let rec drain () =
    match Qs_queues.Treiber_stack.pop t.procs with
    | Some proc ->
      Processor.shutdown proc;
      drain ()
    | None -> ()
  in
  drain ()

let separate t proc body = Separate.with1 t.ctx proc body
let separate2 t p1 p2 body = Separate.with2 t.ctx p1 p2 body
let separate_list t procs body = Separate.with_list t.ctx procs body
let separate_when t proc ~pred body = Separate.with_when t.ctx proc ~pred body

let separate_list_when t procs ~pred body =
  Separate.with_list_when t.ctx procs ~pred body

let run ?(domains = 1) ?(config = Config.all) ?(trace = false) ?on_stall
    ?on_counters main =
  Qs_sched.Sched.run ~domains ?on_stall ?on_counters (fun () ->
    let t = create ~config ~trace () in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> main t))
