(** Client-side handle on one reserved handler within a separate block
    (the private queue pointer of paper Fig. 8).

    Obtain registrations with {!Runtime.separate} and friends; they are
    valid only inside the block's body, and all operations must be invoked
    by the fiber that entered the block. *)

exception Handler_failure of int * exn
(** A previously logged asynchronous call raised on the handler: the
    registration is {e poisoned} (SCOOP's dirty-processor rule) and every
    subsequent operation through it — and the separate block's exit —
    raises this, carrying the processor id and the original exception.
    Re-exported as [Scoop.Handler_failure]. *)

type t

val call : t -> (unit -> unit) -> unit
(** Log an asynchronous call on the handler (the call rule).  Returns
    immediately; the handler executes [f] later, in logging order.  If
    [f] raises on the handler, the registration is poisoned:
    [Handler_failure] surfaces at the next operation, sync point, or the
    separate block's exit.

    On single-reservation registrations with pooling enabled (and
    tracing off), the call is logged in the pooled flat representation:
    no closure record, no queue-node payload allocation — the thunk goes
    into a recycled request record.  Otherwise it falls back to the
    packaged-closure form.  The two are observationally identical.
    @raise Handler_failure if already poisoned. *)

val call1 : t -> ('a -> unit) -> 'a -> unit
(** [call1 t f x] logs the asynchronous call [f x] with [f] and [x]
    stored {e inline} in the flat request record — the zero-allocation
    shape for the overwhelmingly common one-argument call, avoiding even
    the [fun () -> f x] closure that {!call} would need.  Semantically
    identical to [call t (fun () -> f x)], including the packaged
    fallback when the flat path is unavailable. *)

val query : ?timeout:float -> t -> (unit -> 'a) -> 'a
(** Execute a synchronous query.  Depending on the runtime configuration
    this either packages [f] for the handler and waits for the result
    (Fig. 10a) or synchronizes with the handler and runs [f] on the client
    (Fig. 10b).  Either way, on return every previously logged call has
    been applied — the basis of pre/postcondition reasoning (§2.2).

    Failures are routed identically in both flavours: a raising [f]
    re-raises the exception here (the query has a rendezvous, so it does
    not poison the registration), while a failure among the previously
    logged calls raises [Handler_failure] — the earlier failure wins.

    [?timeout] (default: the configuration's [default_deadline]) bounds
    the blocking part — the result round trip (packaged flavour) or the
    sync (client-executed flavour).  At the deadline the query raises
    {!Qs_sched.Timer.Timeout} ([Scoop.Timeout]) {e without} poisoning
    the registration: the handler still serves the request, and
    subsequent operations through the handle remain valid.

    In the packaged flavour on a single-reservation registration with
    pooling on, the round trip rides a pooled flat record whose embedded
    generation-stamped cell replaces the per-query ivar; a timed-out
    wait abandons the record (never recycles it), so a late handler fill
    can only hit the abandoned generation. *)

val query1 : ?timeout:float -> t -> ('a -> 'b) -> 'a -> 'b
(** [query1 t f x] is {!query} for the one-argument shape: [f] and [x]
    are stored inline in the flat record (no [fun () -> f x] closure)
    when the flat path is available; otherwise it behaves exactly like
    [query t (fun () -> f x)]. *)

val query_async : t -> (unit -> 'a) -> 'a Qs_sched.Promise.t
(** Issue a promise-pipelined query: package [f] for the handler and
    return immediately with a promise for its result.  The handler
    fulfils the promise when it reaches the request, so several
    pipelined queries — against one handler or many — overlap their
    round trips; force them later with {!Qs_sched.Promise.await}.

    Always packaged (Fig. 10a shape), regardless of the runtime's
    [client_query] setting: pipelining requires shipping the closure.

    If [f] raises on the handler the promise {e rejects} (counted under
    [Stats.rejected_promises]); forcing it re-raises the exception on
    the client.  Rejection does not poison the registration.

    Synced status: issuing invalidates {!is_synced} like a call does.
    Forcing the returned promise re-establishes it — equivalent to a
    blocking {!query} — provided nothing else was logged through this
    registration since the promise was issued and the separate block is
    still open.  Forcing after the block closed is allowed and returns
    the value, but no longer updates the registration.

    Dynamic sync elision: on the flat path the fulfilling handler
    records whether the registration's log was drained at fulfilment
    ({!Qs_sched.Promise.was_drained}); when it was, and the force's
    watermark check passes, and the configuration enables [dyn_sync],
    the force doubles as the sync round trip — counted under
    [Stats.syncs_elided] (and traced as [Sync_elided]). *)

val sync : ?timeout:float -> t -> unit
(** Wait until the handler has drained every request logged through this
    registration.  Elided dynamically when the configuration enables
    sync coalescing and the handler is already synced (§3.4.1).  After
    [sync] returns the client may read the handler's data directly until
    it logs the next asynchronous call.  [?timeout] (default: the
    configuration's [default_deadline]) bounds the round trip; at the
    deadline the sync raises {!Qs_sched.Timer.Timeout} without poisoning
    the registration or establishing the synced status.
    @raise Handler_failure if any previously logged call failed — the
    sync point is where a dirty handler surfaces. *)

val processor : t -> Processor.t

val rid : t -> int
(** The registration's unique id (a process-global counter starting at
    1).  Trace events emitted through this registration — and the
    requests it enqueues — carry this id, letting conformance checking
    ({!Trace.event.client}, [Qs_conform]) partition a merged trace back
    into per-registration streams.  [0] never names a registration. *)

val is_synced : t -> bool
(** Whether the handler is known to be idle w.r.t. this registration. *)

val is_poisoned : t -> bool
(** Whether a previously logged asynchronous call has failed.  Note the
    inherent asynchrony: [false] only means no failure has been {e
    observed} yet; a definitive answer needs a sync point. *)

val poisoned : t -> exn option
(** The poisoning exception, if any — what {!check_poison} would wrap in
    [Handler_failure].  Used by the node's serve loop to order a poison
    report before a completion on the reply stream. *)

val check_poison : t -> unit
(** @raise Handler_failure if the registration is poisoned.  Usable even
    after the block closed (used by {!Separate} to re-surface the poison
    at block exit). *)

(**/**)

val make :
  ?flat:bool ->
  proc:Processor.t ->
  ctx:Ctx.t ->
  enqueue:(Request.t -> unit) ->
  unit ->
  t
(** [flat] (default [false]) permits the pooled flat representation —
    set by the single-reservation entries of {!Separate}; multi-
    reservation blocks keep the packaged fallback. *)

val make_remote : proc:Processor.t -> ctx:Ctx.t -> unit -> t
(** Registration on a remote processor: opens a wire-level registration
    on the node ({!Processor.remote_open}) and reroutes every operation
    through the resulting proxy.  Always packaged; [client_query] and
    the flat pool do not apply.  The proxy's poison callback is wired to
    this registration, so the dirty-processor rule crosses the
    connection (including connection loss, which poisons with
    [Connection_lost]). *)

val close : t -> unit
val force_sync : ?timeout:float -> t -> unit
