(** Client-side handle on one reserved handler within a separate block
    (the private queue pointer of paper Fig. 8).

    Obtain registrations with {!Runtime.separate} and friends; they are
    valid only inside the block's body, and all operations must be invoked
    by the fiber that entered the block. *)

type t

val call : t -> (unit -> unit) -> unit
(** Log an asynchronous call on the handler (the call rule).  Returns
    immediately; the handler executes [f] later, in logging order. *)

val query : t -> (unit -> 'a) -> 'a
(** Execute a synchronous query.  Depending on the runtime configuration
    this either packages [f] for the handler and waits for the result
    (Fig. 10a) or synchronizes with the handler and runs [f] on the client
    (Fig. 10b).  Either way, on return every previously logged call has
    been applied — the basis of pre/postcondition reasoning (§2.2). *)

val sync : t -> unit
(** Wait until the handler has drained every request logged through this
    registration.  Elided dynamically when the configuration enables
    sync coalescing and the handler is already synced (§3.4.1).  After
    [sync] returns the client may read the handler's data directly until
    it logs the next asynchronous call. *)

val processor : t -> Processor.t

val is_synced : t -> bool
(** Whether the handler is known to be idle w.r.t. this registration. *)

(**/**)

val make :
  proc:Processor.t -> ctx:Ctx.t -> enqueue:(Request.t -> unit) -> t

val close : t -> unit
val force_sync : t -> unit
