(* Runtime configurations: the five optimization columns of the paper's §4
   evaluation plus the EVE retrofit of §4.5.

   The [hoisted] flag does not change the runtime; it tells benchmark code
   which kernel *shape* to use — the naive shape (a sync before every
   access, what a straightforward code generator emits) or the hoisted
   shape (syncs lifted out of loops, the output of the static
   sync-coalescing pass in [Qs_syncopt]). *)

type t = {
  name : string;
  qoq : bool;
      (* queue-of-queues handler communication (Fig. 4) instead of the
         original one-lock-per-handler structure (Fig. 2) *)
  client_query : bool;
      (* execute queries on the client after a sync round trip (Fig. 10b)
         instead of packaging them for the handler (Fig. 10a) *)
  dyn_sync : bool; (* dynamic sync coalescing, §3.4.1 *)
  hoisted : bool; (* benchmarks use statically sync-coalesced kernels, §3.4.2 *)
  eve : bool; (* EVE-style handler-lookup and shadow-stack handicaps, §4.5 *)
}

let none =
  {
    name = "none";
    qoq = false;
    client_query = false;
    dyn_sync = false;
    hoisted = false;
    eve = false;
  }

let dynamic = { none with name = "dynamic"; client_query = true; dyn_sync = true }
let static_ = { none with name = "static"; client_query = true; hoisted = true }
let qoq = { none with name = "qoq"; qoq = true }

let all =
  {
    name = "all";
    qoq = true;
    client_query = true;
    dyn_sync = true;
    hoisted = true;
    eve = false;
  }

(* §4.5: the production-EiffelStudio-like baseline and the EVE/Qs retrofit
   (QoQ + Dynamic only; no Static, as the paper could not implement it). *)
let eve_base = { none with name = "eve-base"; eve = true }

let eve_qs =
  {
    name = "eve-qs";
    qoq = true;
    client_query = true;
    dyn_sync = true;
    hoisted = false;
    eve = true;
  }

let presets = [ none; dynamic; static_; qoq; all ]

let by_name name =
  List.find_opt
    (fun c -> c.name = name)
    (presets @ [ eve_base; eve_qs ])

let pp ppf t = Format.pp_print_string ppf t.name
