(* Runtime configurations: the five optimization columns of the paper's §4
   evaluation plus the EVE retrofit of §4.5.

   The communication structure between clients and handlers — the axis
   the paper's whole evaluation turns on — is selected by [mailbox]:
   [`Qoq] is the queue-of-queues of Fig. 4, [`Direct] the original
   lock-plus-single-queue structure of Fig. 2.  Orthogonal runtime knobs
   ride along: [batch] bounds how many requests a handler drains per
   wakeup (1 reproduces the paper's one-dequeue-per-iteration loop), and
   [spsc] picks the private-queue backing store of the §3.1 ablation.

   The [hoisted] flag does not change the runtime; it tells benchmark code
   which kernel *shape* to use — the naive shape (a sync before every
   access, what a straightforward code generator emits) or the hoisted
   shape (syncs lifted out of loops, the output of the static
   sync-coalescing pass in [Qs_syncopt]). *)

type t = {
  name : string;
  mailbox : [ `Qoq | `Direct ];
      (* queue-of-queues handler communication (Fig. 4) vs the original
         one-lock-per-handler structure (Fig. 2) *)
  batch : int;
      (* max requests a handler drains per wakeup (>= 1); one park/unpark
         and one consumer-side synchronization cover the whole batch *)
  spsc : [ `Linked | `Ring ];
      (* private-queue backing store: unbounded linked list vs bounded
         Lamport ring (§3.1 ablation) *)
  client_query : bool;
      (* execute queries on the client after a sync round trip (Fig. 10b)
         instead of packaging them for the handler (Fig. 10a) *)
  dyn_sync : bool; (* dynamic sync coalescing, §3.4.1 *)
  hoisted : bool; (* benchmarks use statically sync-coalesced kernels, §3.4.2 *)
  eve : bool; (* EVE-style handler-lookup and shadow-stack handicaps, §4.5 *)
  default_deadline : float option;
      (* deadline (seconds) applied to blocking queries and syncs that do
         not pass an explicit [?timeout]; [None] = wait forever *)
  bound : int;
      (* admission bound: max requests in flight per handler before the
         [overflow] policy applies; 0 = unbounded (the paper's runtime) *)
  overflow : [ `Block | `Fail | `Shed_oldest ];
      (* what a client hitting the bound gets: back off until the handler
         drains, an immediate [Overloaded], or admission with the oldest
         pending request shed instead *)
  pools : string list;
      (* extra named scheduler pools created by [Runtime.run] beyond the
         always-present "default" *)
  pool : string option;
      (* pool new processors' handler fibers are pinned to by default;
         [None] = the spawner's pool *)
  pooling : bool;
      (* pooled flat request representation on the arity-named API;
         [false] forces the packaged-closure path everywhere (debug /
         equivalence-testing knob — also disables the handler-side
         drained hint that feeds dynamic sync elision) *)
}

let default_batch = 16

let none =
  {
    name = "none";
    mailbox = `Direct;
    batch = default_batch;
    spsc = `Linked;
    client_query = false;
    dyn_sync = false;
    hoisted = false;
    eve = false;
    default_deadline = None;
    bound = 0;
    overflow = `Block;
    pools = [];
    pool = None;
    pooling = true;
  }

let dynamic = { none with name = "dynamic"; client_query = true; dyn_sync = true }
let static_ = { none with name = "static"; client_query = true; hoisted = true }
let qoq = { none with name = "qoq"; mailbox = `Qoq }

let all =
  {
    name = "all";
    mailbox = `Qoq;
    batch = default_batch;
    spsc = `Linked;
    client_query = true;
    dyn_sync = true;
    hoisted = true;
    eve = false;
    default_deadline = None;
    bound = 0;
    overflow = `Block;
    pools = [];
    pool = None;
    pooling = true;
  }

(* §4.5: the production-EiffelStudio-like baseline and the EVE/Qs retrofit
   (QoQ + Dynamic only; no Static, as the paper could not implement it). *)
let eve_base = { none with name = "eve-base"; eve = true }

let eve_qs =
  {
    name = "eve-qs";
    mailbox = `Qoq;
    batch = default_batch;
    spsc = `Linked;
    client_query = true;
    dyn_sync = true;
    hoisted = false;
    eve = true;
    default_deadline = None;
    bound = 0;
    overflow = `Block;
    pools = [];
    pool = None;
    pooling = true;
  }

let presets = [ none; dynamic; static_; qoq; all ]

let by_name name =
  List.find_opt
    (fun c -> c.name = name)
    (presets @ [ eve_base; eve_qs ])

let uses_qoq t = t.mailbox = `Qoq

let mailbox_of_string = function
  | "qoq" -> Some `Qoq
  | "direct" -> Some `Direct
  | _ -> None

let overflow_of_string = function
  | "block" -> Some `Block
  | "fail" -> Some `Fail
  | "shed" | "shed_oldest" | "shed-oldest" -> Some `Shed_oldest
  | _ -> None

let spsc_of_string = function
  | "linked" -> Some `Linked
  | "ring" -> Some `Ring
  | _ -> None

let pp ppf t = Format.pp_print_string ppf t.name
