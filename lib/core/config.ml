(* Runtime configurations: the five optimization columns of the paper's §4
   evaluation plus the EVE retrofit of §4.5.

   The communication structure between clients and handlers — the axis
   the paper's whole evaluation turns on — is selected by [mailbox]:
   [`Qoq] is the queue-of-queues of Fig. 4, [`Direct] the original
   lock-plus-single-queue structure of Fig. 2.  Orthogonal runtime knobs
   ride along: [batch] bounds how many requests a handler drains per
   wakeup (1 reproduces the paper's one-dequeue-per-iteration loop), and
   [spsc] picks the private-queue backing store of the §3.1 ablation.

   The [hoisted] flag does not change the runtime; it tells benchmark code
   which kernel *shape* to use — the naive shape (a sync before every
   access, what a straightforward code generator emits) or the hoisted
   shape (syncs lifted out of loops, the output of the static
   sync-coalescing pass in [Qs_syncopt]). *)

(* Where the runtime's processors live (the distributed-SCOOP axis):
   entirely in this process, hosted here for remote clients, or on
   remote node(s) reached over the socket transport.  [Connect] with
   several addresses is a static shard map: processor [id] lives on node
   [id mod length addrs]. *)
type addr = Unix_sock of string | Tcp of string * int

type endpoint =
  | In_process  (* every preset: the paper's single-process runtime *)
  | Listen of addr  (* host handlers here, serve remote clients *)
  | Connect of addr list  (* processors are proxies to these nodes *)

type t = {
  name : string;
  mailbox : [ `Qoq | `Direct ];
      (* queue-of-queues handler communication (Fig. 4) vs the original
         one-lock-per-handler structure (Fig. 2) *)
  batch : int;
      (* max requests a handler drains per wakeup (>= 1); one park/unpark
         and one consumer-side synchronization cover the whole batch *)
  spsc : [ `Linked | `Ring ];
      (* private-queue backing store: unbounded linked list vs bounded
         Lamport ring (§3.1 ablation) *)
  client_query : bool;
      (* execute queries on the client after a sync round trip (Fig. 10b)
         instead of packaging them for the handler (Fig. 10a) *)
  dyn_sync : bool; (* dynamic sync coalescing, §3.4.1 *)
  hoisted : bool; (* benchmarks use statically sync-coalesced kernels, §3.4.2 *)
  eve : bool; (* EVE-style handler-lookup and shadow-stack handicaps, §4.5 *)
  default_deadline : float option;
      (* deadline (seconds) applied to blocking queries and syncs that do
         not pass an explicit [?timeout]; [None] = wait forever *)
  bound : int;
      (* admission bound: max requests in flight per handler before the
         [overflow] policy applies; 0 = unbounded (the paper's runtime) *)
  overflow : [ `Block | `Fail | `Shed_oldest ];
      (* what a client hitting the bound gets: back off until the handler
         drains, an immediate [Overloaded], or admission with the oldest
         pending request shed instead *)
  pools : string list;
      (* extra named scheduler pools created by [Runtime.run] beyond the
         always-present "default" *)
  pool : string option;
      (* pool new processors' handler fibers are pinned to by default;
         [None] = the spawner's pool *)
  pooling : bool;
      (* pooled flat request representation on the arity-named API;
         [false] forces the packaged-closure path everywhere (debug /
         equivalence-testing knob — also disables the handler-side
         drained hint that feeds dynamic sync elision) *)
  endpoint : endpoint; (* where processors live; see [endpoint] above *)
  trace : bool;
      (* record runtime events even when no explicit sink is passed
         (equivalent to [Runtime.create ~trace:true]) *)
}

let default_batch = 16

let none =
  {
    name = "none";
    mailbox = `Direct;
    batch = default_batch;
    spsc = `Linked;
    client_query = false;
    dyn_sync = false;
    hoisted = false;
    eve = false;
    default_deadline = None;
    bound = 0;
    overflow = `Block;
    pools = [];
    pool = None;
    pooling = true;
    endpoint = In_process;
    trace = false;
  }

let dynamic = { none with name = "dynamic"; client_query = true; dyn_sync = true }
let static_ = { none with name = "static"; client_query = true; hoisted = true }
let qoq = { none with name = "qoq"; mailbox = `Qoq }

let all =
  {
    name = "all";
    mailbox = `Qoq;
    batch = default_batch;
    spsc = `Linked;
    client_query = true;
    dyn_sync = true;
    hoisted = true;
    eve = false;
    default_deadline = None;
    bound = 0;
    overflow = `Block;
    pools = [];
    pool = None;
    pooling = true;
    endpoint = In_process;
    trace = false;
  }

(* §4.5: the production-EiffelStudio-like baseline and the EVE/Qs retrofit
   (QoQ + Dynamic only; no Static, as the paper could not implement it). *)
let eve_base = { none with name = "eve-base"; eve = true }

let eve_qs =
  {
    name = "eve-qs";
    mailbox = `Qoq;
    batch = default_batch;
    spsc = `Linked;
    client_query = true;
    dyn_sync = true;
    hoisted = false;
    eve = true;
    default_deadline = None;
    bound = 0;
    overflow = `Block;
    pools = [];
    pool = None;
    pooling = true;
    endpoint = In_process;
    trace = false;
  }

let presets = [ none; dynamic; static_; qoq; all ]

let uses_qoq t = t.mailbox = `Qoq

(* -- Builders -------------------------------------------------------------

   Chainable [with_*] setters replacing the optional-argument sprawl on
   [Runtime.create]/[Runtime.run]:

     Config.qoq |> Config.with_deadline 0.5 |> Config.with_bound 64

   Each takes the value first and the config last so [|>] chains read
   left-to-right; each validates what the old runtime argument
   validated, at build time instead of run time. *)

let with_name name t = { t with name }
let with_mailbox mailbox t = { t with mailbox }

let with_batch batch t =
  if batch < 1 then invalid_arg "Config.with_batch: batch must be >= 1";
  { t with batch }

let with_spsc spsc t = { t with spsc }
let with_client_query client_query t = { t with client_query }
let with_dyn_sync dyn_sync t = { t with dyn_sync }
let with_hoisted hoisted t = { t with hoisted }
let with_eve eve t = { t with eve }

let with_deadline d t =
  if d <= 0.0 then invalid_arg "Config.with_deadline: deadline must be > 0";
  { t with default_deadline = Some d }

let with_no_deadline t = { t with default_deadline = None }

let with_bound bound t =
  if bound < 0 then invalid_arg "Config.with_bound: bound must be >= 0";
  { t with bound }

let with_overflow overflow t = { t with overflow }
let with_pools pools t = { t with pools }
let with_pool pool t = { t with pool = Some pool }
let with_default_pool t = { t with pool = None }
let with_pooling pooling t = { t with pooling }
let with_trace trace t = { t with trace }
let with_endpoint endpoint t = { t with endpoint }
let with_listen addr t = { t with endpoint = Listen addr }

let with_connect addrs t =
  if addrs = [] then
    invalid_arg "Config.with_connect: at least one node address required";
  { t with endpoint = Connect addrs }

(* -- Addresses ------------------------------------------------------------ *)

let addr_to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let addr_of_string s =
  match String.index_opt s ':' with
  | None -> None
  | Some i -> (
    let scheme = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match scheme with
    | "unix" -> if rest = "" then None else Some (Unix_sock rest)
    | "tcp" -> (
      match String.rindex_opt rest ':' with
      | None -> None
      | Some j -> (
        let host = String.sub rest 0 j in
        let port = String.sub rest (j + 1) (String.length rest - j - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 && host <> "" ->
          Some (Tcp (host, p))
        | _ -> None))
    | _ -> None)

let endpoint_to_string = function
  | In_process -> "in-process"
  | Listen a -> "listen:" ^ addr_to_string a
  | Connect addrs ->
    "connect:" ^ String.concat "," (List.map addr_to_string addrs)

(* -- Remote presets -------------------------------------------------------

   [remote addrs] is the client half (qoq base — remote registrations
   always use the packaged wire path, but local processors of the same
   runtime keep the qoq structure); [node addr] the hosting half.  The
   node side must use a queue-of-queues config: a Direct-mode
   reservation takes the handler lock, which would head-of-line block
   the single serve fiber multiplexing a connection. *)

let remote addrs =
  { qoq with name = "remote"; endpoint = Connect addrs }

let node addr = { qoq with name = "node"; endpoint = Listen addr }

(* [by_name] understands the presets plus remote forms:
   "connect:ADDR[,ADDR...]" and "listen:ADDR" with ADDR one of
   "unix:PATH" / "tcp:HOST:PORT". *)
let by_name name =
  let prefixed p =
    if String.length name > String.length p && String.starts_with ~prefix:p name
    then Some (String.sub name (String.length p)
                 (String.length name - String.length p))
    else None
  in
  match prefixed "connect:" with
  | Some rest ->
    let parts = String.split_on_char ',' rest in
    let addrs = List.filter_map addr_of_string parts in
    if List.length addrs = List.length parts && addrs <> [] then
      Some (remote addrs)
    else None
  | None -> (
    match prefixed "listen:" with
    | Some rest -> Option.map node (addr_of_string rest)
    | None ->
      List.find_opt
        (fun c -> c.name = name)
        (presets @ [ eve_base; eve_qs ]))

let mailbox_of_string = function
  | "qoq" -> Some `Qoq
  | "direct" -> Some `Direct
  | _ -> None

let overflow_of_string = function
  | "block" -> Some `Block
  | "fail" -> Some `Fail
  | "shed" | "shed_oldest" | "shed-oldest" -> Some `Shed_oldest
  | _ -> None

let spsc_of_string = function
  | "linked" -> Some `Linked
  | "ring" -> Some `Ring
  | _ -> None

let pp ppf t =
  match t.endpoint with
  | In_process -> Format.pp_print_string ppf t.name
  | ep -> Format.fprintf ppf "%s@%s" t.name (endpoint_to_string ep)
