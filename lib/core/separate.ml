(* Separate blocks: reservation and release of handlers.

   Single reservation (Fig. 8) is the optimized common case: in
   queue-of-queues mode it is one enqueue of a (possibly recycled) private
   queue — completely asynchronous, the separate rule of the semantics; in
   lock-based mode it acquires the handler's lock as the original SCOOP
   runtime did.

   Multiple reservation (Fig. 11, §3.3) must insert the client's private
   queues into all handlers atomically, otherwise two clients' insertions
   could interleave and later observers could see the Fig. 5 inconsistency.
   Per the paper, a spinlock per handler guards insertion; locks are taken
   in handler-id order so that reservers cannot deadlock each other.

   Block exit re-surfaces poison (SCOOP's dirty-processor rule): after
   the body has completed normally and the registrations are closed, a
   registration dirtied by a failed asynchronous call raises
   [Handler_failure] out of the block.  The check runs *after* the
   [Fun.protect] finally — never from inside it, so a body's own
   exception is never masked by a [Fun.Finally_raised] — and is
   best-effort for fully asynchronous failures: a failing call the
   handler has not reached by exit time surfaces at the next sync point
   with that handler instead. *)

(* A reservation or wait-condition deadline expired.  Reservations are
   the blocking half of the separate rule only in lock mode (and during
   wait-condition retries in either mode): queue-of-queues reservation
   is one asynchronous enqueue and never waits, so there the deadline
   only bounds the retry loop of [many_when]. *)
let reservation_timed_out ctx =
  Qs_obs.Counter.incr ctx.Ctx.stats.Stats.deadline_exceeded;
  raise Qs_sched.Timer.Timeout

(* Acquire one handler lock within the time remaining to an absolute
   deadline ([None] = wait forever). *)
let lock_within ctx proc deadline =
  match deadline with
  | None -> Processor.lock_handler proc
  | Some d ->
    let remaining = d -. Qs_sched.Timer.now () in
    if remaining <= 0.0 || not (Processor.lock_handler_timeout proc remaining)
    then reservation_timed_out ctx

let deadline_of_timeout = function
  | None -> None
  | Some dt -> Some (Qs_sched.Timer.now () +. Float.max 0.0 dt)

(* Recorded once the registration exists — after the reservation has
   actually happened (the queue insertion or lock acquisition), not
   before it — and attributed to the registration's id, so conformance
   checking sees each stream open with its own Reserved event.  (The old
   pre-reservation recording both misordered the event against a racing
   handler and left it unattributed.) *)
let trace_reserved ctx reg =
  match ctx.Ctx.trace with
  | Some tr ->
    Trace.record tr
      ~proc:(Processor.id (Registration.processor reg))
      ~client:(Registration.rid reg) Trace.Reserved
  | None -> ()

let enter_one ?deadline ctx proc =
  Qs_obs.Counter.incr ctx.Ctx.stats.Stats.reservations;
  let reg =
    if Processor.is_remote proc then
      (* Remote separate rule: the wire-level Open the proxy issues plays
         the private-queue enqueue — asynchronous, like qoq reservation.
         The node enters a real separate block on its side and serves
         this registration's stream in order. *)
      Registration.make_remote ~proc ~ctx ()
    else if Config.uses_qoq ctx.Ctx.config then begin
      let pq = Processor.take_private_queue proc in
      Processor.enqueue_private_queue proc pq;
      Registration.make ~flat:true ~proc ~ctx
        ~enqueue:(Qs_sched.Bqueue.Spsc.enqueue pq) ()
    end
    else begin
      lock_within ctx proc deadline;
      Registration.make ~flat:true ~proc ~ctx
        ~enqueue:(Processor.enqueue_direct proc) ()
    end
  in
  trace_reserved ctx reg;
  reg

let exit_one ctx reg =
  Registration.close reg;
  let proc = Registration.processor reg in
  if (not (Config.uses_qoq ctx.Ctx.config)) && not (Processor.is_remote proc)
  then Processor.unlock_handler proc

let one ?timeout ctx proc body =
  let reg = enter_one ?deadline:(deadline_of_timeout timeout) ctx proc in
  let v = Fun.protect ~finally:(fun () -> exit_one ctx reg) (fun () -> body reg) in
  Registration.check_poison reg;
  v

let check_distinct procs =
  let ids = List.map Processor.id procs in
  if List.length (List.sort_uniq Int.compare ids) <> List.length ids then
    invalid_arg "Scoop.Separate: the same processor reserved twice"

(* Multi-reservation needs the insertions of all handlers to be one
   atomic event (the generalized separate rule) — there is no wire
   protocol for a cross-node atomic reservation, so remote processors
   are restricted to single-reservation blocks.  Raises the typed
   [Scoop.Remote_error] naming every offending processor (a bare
   [Invalid_argument] left callers no way to distinguish this
   recoverable topology error from an API misuse).  Checked before any
   queue insertion or lock acquisition, so a rejected mixed reservation
   leaves no local handler reserved. *)
let check_local procs =
  match List.filter Processor.is_remote procs with
  | [] -> ()
  | remotes ->
    let name p =
      match Processor.remote_node p with
      | Some node -> Printf.sprintf "%d@%s" (Processor.id p) node
      | None -> string_of_int (Processor.id p)
    in
    raise
      (Remote_proto.Remote_error
         (Printf.sprintf
            "atomic multi-reservation requires local processors; remote: %s"
            (String.concat ", " (List.map name remotes))))

let enter_many ?deadline ctx procs =
  (* Remote refusal first: proxy ids are numbered per runtime, so a
     remote proxy can collide with a local id without being the same
     processor — the topology error is the real diagnosis. *)
  check_local procs;
  check_distinct procs;
  Qs_obs.Counter.incr ctx.Ctx.stats.Stats.reservations;
  Qs_obs.Counter.incr ctx.Ctx.stats.Stats.multi_reservations;
  let sorted = List.sort Processor.compare_by_id procs in
  if Config.uses_qoq ctx.Ctx.config then begin
    (* Prepare all private queues first, then insert them while holding
       every handler's reservation spinlock: the insertions become one
       atomic event, the generalized separate rule of §2.4. *)
    let pqs = List.map (fun p -> (p, Processor.take_private_queue p)) procs in
    List.iter (fun p -> Qs_queues.Spinlock.acquire (Processor.reserve p)) sorted;
    List.iter (fun (p, pq) -> Processor.enqueue_private_queue p pq) pqs;
    List.iter (fun p -> Qs_queues.Spinlock.release (Processor.reserve p))
      (List.rev sorted);
    (* Multi-reservation registrations keep the packaged fallback
       (no [~flat]): the flat pooled path is reserved for the
       single-reservation entries. *)
    let regs =
      List.map
        (fun (p, pq) ->
          Registration.make ~proc:p ~ctx
            ~enqueue:(Qs_sched.Bqueue.Spsc.enqueue pq) ())
        pqs
    in
    List.iter (trace_reserved ctx) regs;
    regs
  end
  else begin
    (* Lock mode: take the handler locks in id order (atomic w.r.t. other
       multi-reservers and single reservers alike).  Under a deadline,
       a late lock releases everything already held — a timed-out
       reservation must leave no handler reserved. *)
    let rec take held = function
      | [] -> ()
      | p :: rest -> (
        (try lock_within ctx p deadline
         with e ->
           List.iter Processor.unlock_handler held;
           raise e);
        take (p :: held) rest)
    in
    take [] sorted;
    let regs =
      List.map
        (fun p ->
          Registration.make ~proc:p ~ctx
            ~enqueue:(Processor.enqueue_direct p) ())
        procs
    in
    List.iter (trace_reserved ctx) regs;
    regs
  end

let exit_many ctx regs =
  (* endMany: signal END to every reserved handler (§2.4). *)
  List.iter (fun reg -> exit_one ctx reg) regs

let many ?timeout ctx procs body =
  match procs with
  | [] -> body []
  | [ p ] -> one ?timeout ctx p (fun reg -> body [ reg ])
  | _ ->
    let regs = enter_many ?deadline:(deadline_of_timeout timeout) ctx procs in
    let v =
      Fun.protect ~finally:(fun () -> exit_many ctx regs) (fun () -> body regs)
    in
    List.iter Registration.check_poison regs;
    v

(* Pairwise reservation, the common multi-handler shape, with a dedicated
   entry so the registrations come back as a typed pair: same spinlock
   protocol as [enter_many] (acquire in id order, release in reverse)
   specialized to two handlers, no intermediate lists to destructure. *)
let enter_two ?deadline ctx p1 p2 =
  check_local [ p1; p2 ];
  if Processor.id p1 = Processor.id p2 then
    invalid_arg "Scoop.Separate: the same processor reserved twice";
  Qs_obs.Counter.incr ctx.Ctx.stats.Stats.reservations;
  Qs_obs.Counter.incr ctx.Ctx.stats.Stats.multi_reservations;
  let lo, hi =
    if Processor.id p1 < Processor.id p2 then (p1, p2) else (p2, p1)
  in
  if Config.uses_qoq ctx.Ctx.config then begin
    let pq1 = Processor.take_private_queue p1 in
    let pq2 = Processor.take_private_queue p2 in
    Qs_queues.Spinlock.acquire (Processor.reserve lo);
    Qs_queues.Spinlock.acquire (Processor.reserve hi);
    Processor.enqueue_private_queue p1 pq1;
    Processor.enqueue_private_queue p2 pq2;
    Qs_queues.Spinlock.release (Processor.reserve hi);
    Qs_queues.Spinlock.release (Processor.reserve lo);
    let r1 =
      Registration.make ~flat:true ~proc:p1 ~ctx
        ~enqueue:(Qs_sched.Bqueue.Spsc.enqueue pq1) ()
    and r2 =
      Registration.make ~flat:true ~proc:p2 ~ctx
        ~enqueue:(Qs_sched.Bqueue.Spsc.enqueue pq2) ()
    in
    trace_reserved ctx r1;
    trace_reserved ctx r2;
    (r1, r2)
  end
  else begin
    lock_within ctx lo deadline;
    (try lock_within ctx hi deadline
     with e ->
       Processor.unlock_handler lo;
       raise e);
    let r1 =
      Registration.make ~flat:true ~proc:p1 ~ctx
        ~enqueue:(Processor.enqueue_direct p1) ()
    and r2 =
      Registration.make ~flat:true ~proc:p2 ~ctx
        ~enqueue:(Processor.enqueue_direct p2) ()
    in
    trace_reserved ctx r1;
    trace_reserved ctx r2;
    (r1, r2)
  end

let two ?timeout ctx p1 p2 body =
  let r1, r2 = enter_two ?deadline:(deadline_of_timeout timeout) ctx p1 p2 in
  let v =
    Fun.protect
      ~finally:(fun () ->
        exit_one ctx r1;
        exit_one ctx r2)
      (fun () -> body r1 r2)
  in
  Registration.check_poison r1;
  Registration.check_poison r2;
  v

(* Wait conditions: SCOOP preconditions on separate objects do not fail,
   they wait (Nienaltowski's contract semantics, which the paper's SCOOP
   model inherits).  The runtime re-reserves the handlers and re-evaluates
   the condition until it holds; condition and body run under the *same*
   registration, so the condition still holds when the body starts and no
   other client can interleave between them.

   Each failed evaluation releases the reservation entirely (so the
   suppliers can serve whichever client will make the condition true),
   then yields and backs off before re-reserving.  The yield keeps the
   cooperative scheduler live — on one domain the condition can only
   change if another fiber runs — and the backoff keeps a long wait from
   hammering the handlers' reservation path with retry traffic.  Retries
   that happen under an escalated pause are counted separately
   ([wait_backoffs]) as the contention detail of [wait_retries]. *)
let many_when ?timeout ctx procs ~pred body =
  let backoff = Qs_queues.Backoff.create () in
  (* The deadline is absolute, fixed at entry: it bounds the whole wait
     (every reservation and failed evaluation), not each retry. *)
  let deadline = deadline_of_timeout timeout in
  let remaining () =
    match deadline with
    | None -> None
    | Some d ->
      let r = d -. Qs_sched.Timer.now () in
      if r <= 0.0 then reservation_timed_out ctx else Some r
  in
  let rec retry () =
    let outcome =
      many ?timeout:(remaining ()) ctx procs (fun regs ->
        if pred regs then Some (body regs) else None)
    in
    match outcome with
    | Some v -> v
    | None ->
      Qs_obs.Counter.incr ctx.Ctx.stats.Stats.wait_retries;
      if Qs_queues.Backoff.step backoff > 1 then
        Qs_obs.Counter.incr ctx.Ctx.stats.Stats.wait_backoffs;
      Qs_queues.Backoff.once backoff;
      Qs_sched.Sched.yield ();
      ignore (remaining () : float option);
      retry ()
  in
  retry ()

let when_ ?timeout ctx proc ~pred body =
  many_when ?timeout ctx [ proc ]
    ~pred:(fun regs -> pred (List.hd regs))
    (fun regs -> body (List.hd regs))
