(* Runtime instrumentation (the "SCOOP-specific instrumentation" the paper
   lists as future work in §7).

   Since the qs_obs refactor this module is a thin compatibility view
   over a [Qs_obs.Counter] registry: every counter is registered by name
   in [t.registry], bumped on the hot paths with one atomic increment,
   and the historical record-shaped [snapshot]/[diff]/[mean_batch] API is
   preserved on top for the benchmark harness and tests.  New consumers
   (the bench JSON output, the Chrome trace export) should prefer the
   registry view ({!assoc}), which needs no per-counter plumbing. *)

type t = {
  registry : Qs_obs.Counter.registry;
  processors : Qs_obs.Counter.t; (* handlers spawned *)
  reservations : Qs_obs.Counter.t; (* separate blocks entered *)
  multi_reservations : Qs_obs.Counter.t; (* multi-handler separate blocks *)
  calls : Qs_obs.Counter.t; (* asynchronous calls enqueued *)
  queries : Qs_obs.Counter.t; (* queries issued (any flavour) *)
  packaged_queries : Qs_obs.Counter.t; (* round trips via packaged closures *)
  requests_flat : Qs_obs.Counter.t; (* requests issued in the flat representation *)
  requests_pooled : Qs_obs.Counter.t; (* flat records reused from a processor pool *)
  pool_misses : Qs_obs.Counter.t; (* flat records freshly allocated (pool empty) *)
  promises_created : Qs_obs.Counter.t; (* pipelined queries issued *)
  promises_fulfilled : Qs_obs.Counter.t; (* promise results produced (handler) *)
  promises_ready : Qs_obs.Counter.t; (* promises resolved before first force *)
  promises_blocked : Qs_obs.Counter.t; (* promises whose force blocked *)
  syncs_sent : Qs_obs.Counter.t; (* sync round trips actually performed *)
  syncs_elided : Qs_obs.Counter.t; (* syncs skipped by dynamic coalescing *)
  eve_lookups : Qs_obs.Counter.t; (* simulated handler-table lookups (§4.5) *)
  wait_retries : Qs_obs.Counter.t; (* failed wait-condition evaluations *)
  wait_backoffs : Qs_obs.Counter.t; (* wait retries under escalated backoff *)
  handler_wakeups : Qs_obs.Counter.t; (* batches drained by handler loops *)
  batched_requests : Qs_obs.Counter.t; (* requests delivered through batches *)
  ends_drained : Qs_obs.Counter.t; (* End markers consumed *)
  handler_failures : Qs_obs.Counter.t; (* handler-side closure exceptions *)
  poisoned_registrations : Qs_obs.Counter.t; (* registrations dirtied by a failed call *)
  rejected_promises : Qs_obs.Counter.t; (* pipelined queries resolved with an exception *)
  aborted_requests : Qs_obs.Counter.t; (* packaged requests discarded by abort *)
  timer_arms : Qs_obs.Counter.t; (* deadline timers armed by the request path *)
  timeouts_fired : Qs_obs.Counter.t; (* armed deadlines that expired *)
  deadline_exceeded : Qs_obs.Counter.t; (* client operations that raised Timeout *)
  shed_requests : Qs_obs.Counter.t; (* requests refused or shed by backpressure *)
  remote_requests : Qs_obs.Counter.t; (* calls/queries/syncs shipped to a node *)
  remote_replies : Qs_obs.Counter.t; (* completions received from a node *)
  remote_failures : Qs_obs.Counter.t; (* lost connections and wire-level errors *)
  (* Latency distributions (ns).  One registry per runtime, mirroring
     the counter registry: registered here in a fixed order so every
     export (bench JSON, Chrome trace, [qs] subcommands) sees the same
     snapshot shape.  The six per-class histograms measure birth (client
     issue) to completion (handler done / reply demuxed); the two
     cross-class ones split the local pipeline into queueing
     (admitted -> served) and execution (served -> done). *)
  hist : Qs_obs.Histogram.registry;
  h_call_local : Qs_obs.Histogram.t; (* async call: birth -> handler done *)
  h_query_local : Qs_obs.Histogram.t; (* blocking query: birth -> result *)
  h_pipelined_local : Qs_obs.Histogram.t; (* pipelined: birth -> fulfilment *)
  h_call_remote : Qs_obs.Histogram.t; (* remote call: birth -> wire handoff *)
  h_query_remote : Qs_obs.Histogram.t; (* remote query/sync round-trip time *)
  h_pipelined_remote : Qs_obs.Histogram.t; (* remote pipelined: issue -> reply *)
  h_queue_wait : Qs_obs.Histogram.t; (* local: admitted -> served *)
  h_exec : Qs_obs.Histogram.t; (* local: served -> done *)
}

let create () =
  let registry = Qs_obs.Counter.registry () in
  let c name = Qs_obs.Counter.make registry name in
  (* Hot-path counters — bumped on every async call / query / handler
     batch, from every domain at once — use per-domain sharded cells so
     the instrumentation itself never bounces a cache line between
     workers (ROADMAP item 4).  The rest are cold enough for one word. *)
  let h name = Qs_obs.Counter.make_sharded registry name in
  (* Bind before constructing the record: record fields evaluate in
     unspecified order, and registration order is the snapshot order. *)
  let processors = c "processors" in
  let reservations = c "reservations" in
  let multi_reservations = c "multi_reservations" in
  let calls = h "calls" in
  let queries = h "queries" in
  let packaged_queries = c "packaged_queries" in
  let requests_flat = h "requests_flat" in
  let requests_pooled = h "requests_pooled" in
  let pool_misses = c "pool_misses" in
  let promises_created = c "promises_created" in
  let promises_fulfilled = c "promises_fulfilled" in
  let promises_ready = c "promises_ready_on_first_poll" in
  let promises_blocked = c "promises_forced_blocking" in
  let syncs_sent = h "syncs_sent" in
  let syncs_elided = h "syncs_elided" in
  let eve_lookups = c "eve_lookups" in
  let wait_retries = c "wait_retries" in
  let wait_backoffs = c "wait_backoffs" in
  let handler_wakeups = h "handler_wakeups" in
  let batched_requests = h "batched_requests" in
  let ends_drained = c "ends_drained" in
  let handler_failures = c "handler_failures" in
  let poisoned_registrations = c "poisoned_registrations" in
  let rejected_promises = c "rejected_promises" in
  let aborted_requests = c "aborted_requests" in
  let timer_arms = c "timer_arms" in
  let timeouts_fired = c "timeouts_fired" in
  let deadline_exceeded = c "deadline_exceeded" in
  let shed_requests = c "shed_requests" in
  let remote_requests = c "remote_requests" in
  let remote_replies = c "remote_replies" in
  let remote_failures = c "remote_failures" in
  let hist = Qs_obs.Histogram.registry () in
  let hg name = Qs_obs.Histogram.make hist name in
  let h_call_local = hg "call_local_ns" in
  let h_query_local = hg "query_local_ns" in
  let h_pipelined_local = hg "pipelined_local_ns" in
  let h_call_remote = hg "call_remote_ns" in
  let h_query_remote = hg "query_remote_ns" in
  let h_pipelined_remote = hg "pipelined_remote_ns" in
  let h_queue_wait = hg "queue_wait_ns" in
  let h_exec = hg "exec_ns" in
  {
    registry;
    processors;
    reservations;
    multi_reservations;
    calls;
    queries;
    packaged_queries;
    requests_flat;
    requests_pooled;
    pool_misses;
    promises_created;
    promises_fulfilled;
    promises_ready;
    promises_blocked;
    syncs_sent;
    syncs_elided;
    eve_lookups;
    wait_retries;
    wait_backoffs;
    handler_wakeups;
    batched_requests;
    ends_drained;
    handler_failures;
    poisoned_registrations;
    rejected_promises;
    aborted_requests;
    timer_arms;
    timeouts_fired;
    deadline_exceeded;
    shed_requests;
    remote_requests;
    remote_replies;
    remote_failures;
    hist;
    h_call_local;
    h_query_local;
    h_pipelined_local;
    h_call_remote;
    h_query_remote;
    h_pipelined_remote;
    h_queue_wait;
    h_exec;
  }

let registry t = t.registry
let assoc t = Qs_obs.Counter.snapshot t.registry
let histograms t = t.hist
let hist_assoc t = Qs_obs.Histogram.snapshot t.hist

type snapshot = {
  s_processors : int;
  s_reservations : int;
  s_multi_reservations : int;
  s_calls : int;
  s_queries : int;
  s_packaged_queries : int;
  s_requests_flat : int;
  s_requests_pooled : int;
  s_pool_misses : int;
  s_promises_created : int;
  s_promises_fulfilled : int;
  s_promises_ready : int;
  s_promises_blocked : int;
  s_syncs_sent : int;
  s_syncs_elided : int;
  s_eve_lookups : int;
  s_wait_retries : int;
  s_wait_backoffs : int;
  s_handler_wakeups : int;
  s_batched_requests : int;
  s_ends_drained : int;
  s_handler_failures : int;
  s_poisoned_registrations : int;
  s_rejected_promises : int;
  s_aborted_requests : int;
  s_timer_arms : int;
  s_timeouts_fired : int;
  s_deadline_exceeded : int;
  s_shed_requests : int;
  s_remote_requests : int;
  s_remote_replies : int;
  s_remote_failures : int;
}

let snapshot t =
  let g = Qs_obs.Counter.get in
  {
    s_processors = g t.processors;
    s_reservations = g t.reservations;
    s_multi_reservations = g t.multi_reservations;
    s_calls = g t.calls;
    s_queries = g t.queries;
    s_packaged_queries = g t.packaged_queries;
    s_requests_flat = g t.requests_flat;
    s_requests_pooled = g t.requests_pooled;
    s_pool_misses = g t.pool_misses;
    s_promises_created = g t.promises_created;
    s_promises_fulfilled = g t.promises_fulfilled;
    s_promises_ready = g t.promises_ready;
    s_promises_blocked = g t.promises_blocked;
    s_syncs_sent = g t.syncs_sent;
    s_syncs_elided = g t.syncs_elided;
    s_eve_lookups = g t.eve_lookups;
    s_wait_retries = g t.wait_retries;
    s_wait_backoffs = g t.wait_backoffs;
    s_handler_wakeups = g t.handler_wakeups;
    s_batched_requests = g t.batched_requests;
    s_ends_drained = g t.ends_drained;
    s_handler_failures = g t.handler_failures;
    s_poisoned_registrations = g t.poisoned_registrations;
    s_rejected_promises = g t.rejected_promises;
    s_aborted_requests = g t.aborted_requests;
    s_timer_arms = g t.timer_arms;
    s_timeouts_fired = g t.timeouts_fired;
    s_deadline_exceeded = g t.deadline_exceeded;
    s_shed_requests = g t.shed_requests;
    s_remote_requests = g t.remote_requests;
    s_remote_replies = g t.remote_replies;
    s_remote_failures = g t.remote_failures;
  }

let diff later earlier =
  {
    s_processors = later.s_processors - earlier.s_processors;
    s_reservations = later.s_reservations - earlier.s_reservations;
    s_multi_reservations =
      later.s_multi_reservations - earlier.s_multi_reservations;
    s_calls = later.s_calls - earlier.s_calls;
    s_queries = later.s_queries - earlier.s_queries;
    s_packaged_queries = later.s_packaged_queries - earlier.s_packaged_queries;
    s_requests_flat = later.s_requests_flat - earlier.s_requests_flat;
    s_requests_pooled = later.s_requests_pooled - earlier.s_requests_pooled;
    s_pool_misses = later.s_pool_misses - earlier.s_pool_misses;
    s_promises_created = later.s_promises_created - earlier.s_promises_created;
    s_promises_fulfilled =
      later.s_promises_fulfilled - earlier.s_promises_fulfilled;
    s_promises_ready = later.s_promises_ready - earlier.s_promises_ready;
    s_promises_blocked = later.s_promises_blocked - earlier.s_promises_blocked;
    s_syncs_sent = later.s_syncs_sent - earlier.s_syncs_sent;
    s_syncs_elided = later.s_syncs_elided - earlier.s_syncs_elided;
    s_eve_lookups = later.s_eve_lookups - earlier.s_eve_lookups;
    s_wait_retries = later.s_wait_retries - earlier.s_wait_retries;
    s_wait_backoffs = later.s_wait_backoffs - earlier.s_wait_backoffs;
    s_handler_wakeups = later.s_handler_wakeups - earlier.s_handler_wakeups;
    s_batched_requests = later.s_batched_requests - earlier.s_batched_requests;
    s_ends_drained = later.s_ends_drained - earlier.s_ends_drained;
    s_handler_failures = later.s_handler_failures - earlier.s_handler_failures;
    s_poisoned_registrations =
      later.s_poisoned_registrations - earlier.s_poisoned_registrations;
    s_rejected_promises = later.s_rejected_promises - earlier.s_rejected_promises;
    s_aborted_requests = later.s_aborted_requests - earlier.s_aborted_requests;
    s_timer_arms = later.s_timer_arms - earlier.s_timer_arms;
    s_timeouts_fired = later.s_timeouts_fired - earlier.s_timeouts_fired;
    s_deadline_exceeded =
      later.s_deadline_exceeded - earlier.s_deadline_exceeded;
    s_shed_requests = later.s_shed_requests - earlier.s_shed_requests;
    s_remote_requests = later.s_remote_requests - earlier.s_remote_requests;
    s_remote_replies = later.s_remote_replies - earlier.s_remote_replies;
    s_remote_failures = later.s_remote_failures - earlier.s_remote_failures;
  }

(* Mean requests delivered per handler wakeup: the batching efficiency
   of the drain-based handler loop (1.0 = one request per park/unpark,
   the pre-batching behaviour). *)
let mean_batch s =
  if s.s_handler_wakeups = 0 then 0.0
  else float_of_int s.s_batched_requests /. float_of_int s.s_handler_wakeups

(* Fraction of forced promises whose value was already there: how much
   of the pipelined round-trip latency was fully overlapped. *)
let overlap_ratio s =
  let forced = s.s_promises_ready + s.s_promises_blocked in
  if forced = 0 then 0.0
  else float_of_int s.s_promises_ready /. float_of_int forced

let pp_snapshot ppf s =
  Format.fprintf ppf
    "@[<v>processors:        %d@,\
     reservations:      %d (multi: %d)@,\
     async calls:       %d@,\
     queries:           %d (packaged: %d, pipelined: %d)@,\
     flat requests:     %d (pooled: %d, pool misses: %d)@,\
     promises:          %d fulfilled, %d ready on first poll, %d forced blocking@,\
     syncs sent:        %d@,\
     syncs elided:      %d@,\
     eve lookups:       %d@,\
     wait retries:      %d (backoff escalations: %d)@,\
     handler wakeups:   %d (requests: %d, mean batch: %.2f)@,\
     ends drained:      %d@,\
     handler failures:  %d (poisoned regs: %d, rejected promises: %d, aborted: %d)@,\
     deadlines:         %d armed, %d fired, %d exceeded@,\
     shed requests:     %d@,\
     remote:            %d requests, %d replies, %d failures@]"
    s.s_processors s.s_reservations s.s_multi_reservations s.s_calls
    s.s_queries s.s_packaged_queries s.s_promises_created s.s_requests_flat
    s.s_requests_pooled s.s_pool_misses s.s_promises_fulfilled s.s_promises_ready s.s_promises_blocked
    s.s_syncs_sent s.s_syncs_elided s.s_eve_lookups s.s_wait_retries
    s.s_wait_backoffs s.s_handler_wakeups s.s_batched_requests (mean_batch s)
    s.s_ends_drained s.s_handler_failures s.s_poisoned_registrations
    s.s_rejected_promises s.s_aborted_requests s.s_timer_arms
    s.s_timeouts_fired s.s_deadline_exceeded s.s_shed_requests
    s.s_remote_requests s.s_remote_replies s.s_remote_failures
