(* Runtime instrumentation (the "SCOOP-specific instrumentation" the paper
   lists as future work in §7).

   Counters are plain atomics bumped on the hot paths; the benchmark
   harness snapshots them before/after a run to report per-benchmark
   communication behaviour (e.g. how many syncs the dynamic coalescing
   elided, which explains Table 1 directly). *)

type t = {
  processors : int Atomic.t; (* handlers spawned *)
  reservations : int Atomic.t; (* separate blocks entered *)
  multi_reservations : int Atomic.t; (* multi-handler separate blocks *)
  calls : int Atomic.t; (* asynchronous calls enqueued *)
  queries : int Atomic.t; (* queries issued (either flavour) *)
  packaged_queries : int Atomic.t; (* round trips via packaged closures *)
  syncs_sent : int Atomic.t; (* sync round trips actually performed *)
  syncs_elided : int Atomic.t; (* syncs skipped by dynamic coalescing *)
  eve_lookups : int Atomic.t; (* simulated handler-table lookups (§4.5) *)
  wait_retries : int Atomic.t; (* failed wait-condition evaluations *)
  handler_wakeups : int Atomic.t; (* batches drained by handler loops *)
  batched_requests : int Atomic.t; (* requests delivered through those batches *)
  ends_drained : int Atomic.t; (* End markers consumed (registrations drained) *)
}

let create () =
  {
    processors = Atomic.make 0;
    reservations = Atomic.make 0;
    multi_reservations = Atomic.make 0;
    calls = Atomic.make 0;
    queries = Atomic.make 0;
    packaged_queries = Atomic.make 0;
    syncs_sent = Atomic.make 0;
    syncs_elided = Atomic.make 0;
    eve_lookups = Atomic.make 0;
    wait_retries = Atomic.make 0;
    handler_wakeups = Atomic.make 0;
    batched_requests = Atomic.make 0;
    ends_drained = Atomic.make 0;
  }

type snapshot = {
  s_processors : int;
  s_reservations : int;
  s_multi_reservations : int;
  s_calls : int;
  s_queries : int;
  s_packaged_queries : int;
  s_syncs_sent : int;
  s_syncs_elided : int;
  s_eve_lookups : int;
  s_wait_retries : int;
  s_handler_wakeups : int;
  s_batched_requests : int;
  s_ends_drained : int;
}

let snapshot t =
  {
    s_processors = Atomic.get t.processors;
    s_reservations = Atomic.get t.reservations;
    s_multi_reservations = Atomic.get t.multi_reservations;
    s_calls = Atomic.get t.calls;
    s_queries = Atomic.get t.queries;
    s_packaged_queries = Atomic.get t.packaged_queries;
    s_syncs_sent = Atomic.get t.syncs_sent;
    s_syncs_elided = Atomic.get t.syncs_elided;
    s_eve_lookups = Atomic.get t.eve_lookups;
    s_wait_retries = Atomic.get t.wait_retries;
    s_handler_wakeups = Atomic.get t.handler_wakeups;
    s_batched_requests = Atomic.get t.batched_requests;
    s_ends_drained = Atomic.get t.ends_drained;
  }

let diff later earlier =
  {
    s_processors = later.s_processors - earlier.s_processors;
    s_reservations = later.s_reservations - earlier.s_reservations;
    s_multi_reservations =
      later.s_multi_reservations - earlier.s_multi_reservations;
    s_calls = later.s_calls - earlier.s_calls;
    s_queries = later.s_queries - earlier.s_queries;
    s_packaged_queries = later.s_packaged_queries - earlier.s_packaged_queries;
    s_syncs_sent = later.s_syncs_sent - earlier.s_syncs_sent;
    s_syncs_elided = later.s_syncs_elided - earlier.s_syncs_elided;
    s_eve_lookups = later.s_eve_lookups - earlier.s_eve_lookups;
    s_wait_retries = later.s_wait_retries - earlier.s_wait_retries;
    s_handler_wakeups = later.s_handler_wakeups - earlier.s_handler_wakeups;
    s_batched_requests = later.s_batched_requests - earlier.s_batched_requests;
    s_ends_drained = later.s_ends_drained - earlier.s_ends_drained;
  }

(* Mean requests delivered per handler wakeup: the batching efficiency
   of the drain-based handler loop (1.0 = one request per park/unpark,
   the pre-batching behaviour). *)
let mean_batch s =
  if s.s_handler_wakeups = 0 then 0.0
  else float_of_int s.s_batched_requests /. float_of_int s.s_handler_wakeups

let pp_snapshot ppf s =
  Format.fprintf ppf
    "@[<v>processors:        %d@,\
     reservations:      %d (multi: %d)@,\
     async calls:       %d@,\
     queries:           %d (packaged: %d)@,\
     syncs sent:        %d@,\
     syncs elided:      %d@,\
     eve lookups:       %d@,\
     wait retries:      %d@,\
     handler wakeups:   %d (requests: %d, mean batch: %.2f)@,\
     ends drained:      %d@]"
    s.s_processors s.s_reservations s.s_multi_reservations s.s_calls
    s.s_queries s.s_packaged_queries s.s_syncs_sent s.s_syncs_elided
    s.s_eve_lookups s.s_wait_retries s.s_handler_wakeups s.s_batched_requests
    (mean_batch s) s.s_ends_drained
