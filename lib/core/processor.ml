(* SCOOP processors ("handlers"): one fiber per processor executing the
   main handler loop of Fig. 7.

   A processor owns two alternative communication structures and uses the
   one selected by the runtime configuration:

   - queue-of-queues mode (Fig. 4): an MPSC queue of private queues.  The
     outer loop dequeues private queues in registration (FIFO) order; the
     inner loop executes requests from one private queue until its [End]
     marker — the run / end rules of the operational semantics.

   - lock-based mode (Fig. 2, the original SCOOP structure used as the
     `None` baseline): a handler mutex serializing clients plus a single
     request queue.

   The EVE configuration (§4.5) charges every executed call with a
   shadow-stack update, modelling the GC discipline that EiffelStudio
   imposes on the retrofitted runtime. *)

type pq = Request.t Qs_sched.Bqueue.Spsc.t

type t = {
  id : int;
  config : Config.t;
  stats : Stats.t;
  qoq : pq Qs_sched.Bqueue.Mpsc.t;
  direct : Request.t Qs_sched.Bqueue.Mpsc.t;
  lock : Qs_sched.Fiber_mutex.t;
  reserve : Qs_queues.Spinlock.t;
  cache : pq Qs_queues.Treiber_stack.t;
  shadow : int array; (* EVE shadow stack simulation *)
  mutable shadow_top : int;
}

let execute t f =
  if t.config.Config.eve then begin
    (* Push a frame on the simulated shadow stack, run, pop.  The writes
       model the per-call root registration that prevented tight-loop
       optimizations in EVE (paper §4.5). *)
    let top = t.shadow_top in
    if top + 2 < Array.length t.shadow then begin
      t.shadow.(top) <- t.id;
      t.shadow.(top + 1) <- top;
      t.shadow_top <- top + 2
    end;
    (try f ()
     with e ->
       Logs.err (fun m ->
         m "scoop: processor %d: call raised %s" t.id (Printexc.to_string e)));
    t.shadow_top <- top
  end
  else
    try f ()
    with e ->
      Logs.err (fun m ->
        m "scoop: processor %d: call raised %s" t.id (Printexc.to_string e))

(* Inner loop (run rule): execute requests from one private queue until the
   end rule fires. *)
let rec serve_private_queue t pq =
  match Qs_sched.Bqueue.Spsc.dequeue pq with
  | Request.Call f ->
    execute t f;
    serve_private_queue t pq
  | Request.Sync resume ->
    (* Release half of the wait/release pair: wake the client.  The
       scheduler's hot slot turns this into a direct handoff, and this
       handler parks right after (it has no work until the client logs
       more requests). *)
    resume ();
    serve_private_queue t pq
  | Request.End -> ()

let rec qoq_loop t =
  match Qs_sched.Bqueue.Mpsc.dequeue t.qoq with
  | None -> () (* shutdown *)
  | Some pq ->
    serve_private_queue t pq;
    (* The private queue is drained and abandoned by its client: recycle
       it (paper §3.2: queues are "taken from a cache of queues"). *)
    Qs_queues.Treiber_stack.push t.cache pq;
    qoq_loop t

let rec direct_loop t =
  match Qs_sched.Bqueue.Mpsc.dequeue t.direct with
  | None -> ()
  | Some (Request.Call f) ->
    execute t f;
    direct_loop t
  | Some (Request.Sync resume) ->
    resume ();
    direct_loop t
  | Some Request.End -> direct_loop t

let create ~id ~config ~stats =
  Atomic.incr stats.Stats.processors;
  let t =
    {
      id;
      config;
      stats;
      qoq = Qs_sched.Bqueue.Mpsc.create ();
      direct = Qs_sched.Bqueue.Mpsc.create ();
      lock = Qs_sched.Fiber_mutex.create ();
      reserve = Qs_queues.Spinlock.create ();
      cache = Qs_queues.Treiber_stack.create ();
      shadow = (if config.Config.eve then Array.make 256 0 else [||]);
      shadow_top = 0;
    }
  in
  Qs_sched.Sched.spawn (fun () ->
    if config.Config.qoq then qoq_loop t else direct_loop t);
  t

let id t = t.id

let take_private_queue t =
  match Qs_queues.Treiber_stack.pop t.cache with
  | Some pq -> pq
  | None -> Qs_sched.Bqueue.Spsc.create ()

let enqueue_private_queue t pq = Qs_sched.Bqueue.Mpsc.enqueue t.qoq pq

let shutdown t =
  if t.config.Config.qoq then Qs_sched.Bqueue.Mpsc.close t.qoq
  else Qs_sched.Bqueue.Mpsc.close t.direct

let compare_by_id a b = Int.compare a.id b.id
