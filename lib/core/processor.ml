(* SCOOP processors ("handlers"): one fiber per processor executing the
   main handler loop of Fig. 7.

   The handler loop itself is communication-structure agnostic: it is one
   generic loop over a [mailbox] — a blocking batched-drain view of the
   processor's request stream.  The runtime configuration picks which
   structure backs the mailbox:

   - queue-of-queues mode (Fig. 4): an MPSC queue of private queues.  The
     mailbox dequeues private queues in registration (FIFO) order and
     drains requests from the current one until its [End] marker — the
     run / end rules of the operational semantics.

   - lock-based mode (Fig. 2, the original SCOOP structure used as the
     `None` baseline): a handler mutex serializing clients plus a single
     request queue the mailbox drains directly.

   Batching is the loop's performance lever: each wakeup drains up to
   [Config.batch] requests under a single consumer-side synchronization
   before the handler parks again, so a burst of client calls costs one
   park/unpark transition instead of one per request.  [Stats] records
   wakeups and delivered requests, making the batch efficiency
   observable ([Stats.mean_batch]).

   Failures are first-class: a packaged closure that raises has the
   exception routed into the request's typed [fail] completion (rejecting
   the client's ivar/promise, or poisoning its registration) instead of
   dying in a log line, and the processor remembers that it has ever
   failed so its terminal lifecycle state is [Failed] rather than
   [Stopped].  Flat requests route failures structurally, from the tag:
   calls poison through the preallocated [fail_to], blocking queries
   reject the embedded cell, pipelined queries reject the promise.

   The lifecycle is an explicit state machine:

       Running --shutdown/abort--> Draining --loop exit--> Stopped/Failed

   [shutdown] is the graceful half (serve everything already logged, then
   stop); [abort] additionally discards still-pending packaged requests,
   failing their completions with [Aborted].  [await_stopped] blocks on
   the exit latch the handler fiber fills when its loop returns.

   The EVE configuration (§4.5) charges every executed call with a
   shadow-stack update, modelling the GC discipline that EiffelStudio
   imposes on the retrofitted runtime. *)

type pq = Request.t Qs_sched.Bqueue.Spsc.t

type lifecycle = Running | Draining | Stopped | Failed

exception Aborted of int
exception Overloaded of int

let () =
  Printexc.register_printer (function
    | Aborted id -> Some (Printf.sprintf "Scoop.Processor.Aborted(%d)" id)
    | Overloaded id -> Some (Printf.sprintf "Scoop.Processor.Overloaded(%d)" id)
    | _ -> None)

(* Per-registration proxy operations implemented by the remote client
   layer (a connection's demultiplexer + wire encoder).  Defined here —
   not in [Remote_client] — to break the type cycle: [Registration]
   branches on this record, [Remote_client] builds it, and both already
   depend on [Processor].  All payload closures cross the wire under
   [Marshal.Closures], so they must only reference module-level state of
   the shared binary (the node executes them against {e its} globals).

   [px_query] is the blocking round trip (the remote analogue of the
   packaged Fig. 10a path — client-side query execution is meaningless
   across a process boundary, so remote registrations always package);
   [px_query_async] returns the promise immediately, which is what makes
   remote queries pipeline.  [px_on_poison] installs the registration's
   poison completion: the demultiplexer invokes it when the node reports
   a handler failure (dirty-processor rule across the connection) or
   when the connection is lost. *)
type reg_proxy = {
  px_call : (unit -> unit) -> unit;
  px_query : timeout:float option -> (unit -> Obj.t) -> Obj.t;
  px_query_async :
    (unit -> Obj.t) -> on_force:(bool -> unit) -> Obj.t Qs_sched.Promise.t;
  px_sync : timeout:float option -> unit;
  px_close : unit -> unit;
  px_on_poison : (exn -> Printexc.raw_backtrace -> unit) -> unit;
}

type remote_ops = {
  rem_node : string; (* address label, for errors and pp *)
  rem_open : unit -> reg_proxy; (* open one registration on the node *)
}

(* The two communication structures of the paper, as one closed variant:
   every other module goes through the accessors below, so adding a new
   structure (sharded queues, remote handlers) only touches this file.
   [Remote] is the distributed case: the processor is a client-side
   stand-in whose requests travel over a connection — it has no local
   mailbox and no handler fiber (those live on the node). *)
type comm =
  | Qoq of {
      qoq : pq Qs_sched.Bqueue.Mpsc.t; (* queue of private queues (Fig. 4) *)
      cache : pq Qs_queues.Treiber_stack.t; (* recycled private queues (§3.2) *)
    }
  | Direct of {
      q : Request.t Qs_sched.Bqueue.Mpsc.t; (* single request queue (Fig. 2) *)
      lock : Qs_sched.Fiber_mutex.t; (* handler lock serializing clients *)
    }
  | Remote of remote_ops

type t = {
  id : int;
  config : Config.t;
  stats : Stats.t;
  sink : Qs_obs.Sink.t option; (* shared event sink; handler batch spans *)
  comm : comm;
  reserve : Qs_queues.Spinlock.t; (* multi-reservation spinlock (§3.3) *)
  shadow : int array; (* EVE shadow stack simulation *)
  mutable shadow_top : int;
  state : lifecycle Atomic.t;
  aborted : bool Atomic.t; (* discard instead of serve from now on *)
  failed : bool Atomic.t; (* any handler-side closure ever raised *)
  stream_closed : bool Atomic.t; (* close the request stream exactly once *)
  exited : unit Qs_sched.Ivar.t; (* filled when the handler fiber returns *)
  (* backpressure accounting, used only when [config.bound > 0] *)
  pending : int Atomic.t; (* admitted Call/Query requests not yet drained *)
  shed_debt : int Atomic.t; (* drained requests still owed a shedding *)
  (* handler-local recycle buffer: slots of flat records served during
     the current drain batch, spliced back into the pool with a single
     CAS at batch end instead of one per request (the pool head is the
     line clients and handler contend on).  Handler-fiber only. *)
  recycle_buf : int array;
  mutable recycle_n : int;
  (* The handler's current notion of "now" (ns), used as the service
     start stamp of the next request it serves: refreshed once per
     drained batch and after every completed request, so latency
     recording costs exactly one clock read per request — the
     completion stamp, which doubles as the successor's start stamp.
     Handler-fiber only. *)
  mutable h_now : int;
  (* flat-request free list (the §3.2 queue-cache pattern applied to
     request records).  Per-processor rather than per-domain: the
     handler recycles on its own domain while clients allocate on
     theirs, so domain-local pools would never see records come back —
     a processor-owned free list is where the two sides naturally meet
     (clients pop, the handler pushes). *)
  flat_pool : pool;
}

(* The free list itself: an intrusive Treiber stack threaded through
   slot indices of a preallocated record array, with the head packing
   {version, index + 1} into one tagged int.  Push and pop are a CAS
   and two array accesses — no node, no option, no tuple: the pool
   exists to take allocation off the request hot path, so its own
   bookkeeping must not put any back.  The version tag makes the
   concurrent pops ABA-safe (a pop that slept through a pop/push cycle
   fails its CAS because the version advanced); 16 bits of index leave
   47 bits of version on 64-bit, which never wraps in practice. *)
and pool = {
  slots : Request.flat array; (* slot i holds the record with [slot = i] *)
  links : int array; (* free-list next per slot; -1 terminates *)
  head : int Atomic.t; (* (version lsl 16) lor (index + 1); low 0 = empty *)
}

(* The handler's view of its request stream.  [drain buf] blocks until at
   least one request is pending, moves a batch into [buf], and returns the
   count; 0 means closed-and-drained (shutdown).  [quiet] is the drained
   hint probe: does the stream currently hold no further requests beyond
   the batch being served?  (For queue-of-queues: the current private
   queue; for lock mode: the whole request queue.)  Optimism is fine —
   the client-side watermark check in [Registration] is the authority. *)
type mailbox = { drain : Request.t array -> int; quiet : unit -> bool }

(* -- flat request pool ------------------------------------------------------- *)

let pool_cap = 64 (* preallocated records per processor (~a few KB) *)

let make_pool enabled =
  if not enabled then { slots = [||]; links = [||]; head = Atomic.make 0 }
  else begin
    let slots =
      Array.init pool_cap (fun i ->
        let r = Request.make_flat () in
        r.Request.slot <- i;
        r)
    in
    (* Thread the initial free list straight down the array: slot i
       links to i - 1, slot 0 terminates, the head starts at the top. *)
    let links = Array.init pool_cap (fun i -> i - 1) in
    { slots; links; head = Atomic.make pool_cap }
  end

let rec pool_pop p =
  let h = Atomic.get p.head in
  let i = (h land 0xFFFF) - 1 in
  if i < 0 then -1
  else
    let h' = (((h lsr 16) + 1) lsl 16) lor (p.links.(i) + 1) in
    if Atomic.compare_and_set p.head h h' then i else pool_pop p

let rec pool_push p i =
  let h = Atomic.get p.head in
  p.links.(i) <- (h land 0xFFFF) - 1;
  let h' = (((h lsr 16) + 1) lsl 16) lor (i + 1) in
  if not (Atomic.compare_and_set p.head h h') then pool_push p i

(* Splice [n] slots back in one CAS: chain them through their links
   (safe without synchronization — buffered slots are not in the pool,
   nobody else touches their link entries), then swing the head onto the
   top of the chain. *)
let pool_splice p buf n =
  for k = n - 1 downto 1 do
    p.links.(buf.(k)) <- buf.(k - 1)
  done;
  let bottom = buf.(0) and top = buf.(n - 1) in
  let rec go () =
    let h = Atomic.get p.head in
    p.links.(bottom) <- (h land 0xFFFF) - 1;
    let h' = (((h lsr 16) + 1) lsl 16) lor (top + 1) in
    if not (Atomic.compare_and_set p.head h h') then go ()
  in
  go ()

(* Shared sentinel returned on a pool miss.  Clients compare against it
   physically and fall back to the packaged representation: allocating a
   fresh flat record on a miss would cost *more* than a packaged closure
   (the record is bigger), so an empty pool — e.g. a client flooding
   asynchronous calls faster than the handler recycles — degrades to
   exactly the baseline path instead of a slower one.  The sentinel is
   never filled, enqueued or recycled. *)
let no_flat = Request.make_flat ()

(* Pop a pooled record, or [no_flat] on a miss (the caller then issues
   the request in packaged form). *)
let alloc_flat t =
  let i = pool_pop t.flat_pool in
  if i >= 0 then begin
    Qs_obs.Counter.incr t.stats.Stats.requests_flat;
    Qs_obs.Counter.incr t.stats.Stats.requests_pooled;
    t.flat_pool.slots.(i)
  end
  else begin
    Qs_obs.Counter.incr t.stats.Stats.pool_misses;
    no_flat
  end

(* Reset and return a record to the free list, immediately (one CAS).
   Used by clients (consumed blocking queries) and the cold discard /
   shed paths; the handler's hot path buffers into [recycle_buf]
   instead. *)
let recycle_flat t r =
  Request.reset_flat r;
  if r.Request.slot >= 0 then pool_push t.flat_pool r.Request.slot

(* Handler-fiber recycle: reset now (drop captured references without
   waiting for batch end) but defer the pool push to the batch splice. *)
let recycle_local t r =
  Request.reset_flat r;
  if r.Request.slot >= 0 then begin
    t.recycle_buf.(t.recycle_n) <- r.Request.slot;
    t.recycle_n <- t.recycle_n + 1
  end

let flush_recycled t =
  if t.recycle_n > 0 then begin
    pool_splice t.flat_pool t.recycle_buf t.recycle_n;
    t.recycle_n <- 0
  end

(* Latency recording at request completion, into the per-class
   histogram (birth -> done) plus the two pipeline-splitting ones
   (admitted -> served, served -> done).  [birth = 0] marks a request
   issued before stamping existed (never happens through Registration)
   and is skipped.  Control requests (Sync, End) and the discard/shed
   paths never record and never refresh [h_now]; their cost lands in
   the next request's queueing time, keeping them off the clock-read
   budget. *)
let record_served t ~kind ~birth ~admit =
  if birth > 0 then begin
    let served = t.h_now in
    let done_ = Qs_obs.Clock.now_ns () in
    t.h_now <- done_;
    let h =
      match kind with
      | Request.K_call -> t.stats.Stats.h_call_local
      | Request.K_query -> t.stats.Stats.h_query_local
      | Request.K_pipelined -> t.stats.Stats.h_pipelined_local
    in
    Qs_obs.Histogram.record h (done_ - birth);
    Qs_obs.Histogram.record t.stats.Stats.h_queue_wait (served - admit);
    Qs_obs.Histogram.record t.stats.Stats.h_exec (done_ - served)
  end

let log_failure t req e =
  Logs.err (fun m ->
    m "scoop: processor %d: %a raised %s" t.id Request.pp req
      (Printexc.to_string e))

(* Run a packaged request.  On failure: count it, emit an instant, mark
   the processor dirty, and route the exception into the request's typed
   completion (itself guarded — a completion must never kill the handler
   loop).  Returns whether the closure succeeded. *)
let guarded t req (pk : Request.packaged) =
  try
    pk.Request.run ();
    true
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    Qs_obs.Counter.incr t.stats.Stats.handler_failures;
    Atomic.set t.failed true;
    (match t.sink with
    | Some s ->
      Qs_obs.Sink.instant s ~cat:"core" ~name:"handler_failure" ~track:t.id ()
    | None -> ());
    log_failure t req e;
    (try pk.Request.fail e bt with e2 -> log_failure t req e2);
    false

let execute t req pk =
  if t.config.Config.eve then begin
    (* Push a frame on the simulated shadow stack, run, pop.  The writes
       model the per-call root registration that prevented tight-loop
       optimizations in EVE (paper §4.5). *)
    let top = t.shadow_top in
    if top + 2 < Array.length t.shadow then begin
      t.shadow.(top) <- t.id;
      t.shadow.(top + 1) <- top;
      t.shadow_top <- top + 2
    end;
    let ok = guarded t req pk in
    t.shadow_top <- top;
    ok
  end
  else guarded t req pk

(* -- flat request serving ---------------------------------------------------- *)

(* The pipelined promise rides [pr] under the uniform-representation
   coercion (set by Registration together with the [Pipelined] tag). *)
let flat_promise (r : Request.flat) : Obj.t Qs_sched.Promise.t =
  Obj.magic r.Request.pr

(* Route a failure into a flat request's completion, structurally from
   the tag (no per-request fail closure exists to call): asynchronous
   calls poison the registration through the preallocated [fail_to],
   blocking queries reject the embedded cell, pipelined queries reject
   the promise (accounted like the packaged rejection path). *)
let fail_flat t req (r : Request.flat) e bt =
  match r.Request.tag with
  | Request.Call0 | Request.Call1 -> (
    try r.Request.fail_to e bt with e2 -> log_failure t req e2)
  | Request.Query0 | Request.Query1 ->
    (* A failed fill means the awaiting client abandoned the rendezvous
       (timed out and error-filled the cell first): the abandoning side
       cannot recycle — the handler might still have been about to run
       the query — so the loser of the cell's CAS does it here. *)
    if
      not
        (Qs_sched.Cell.try_fill_error ~bt r.Request.cell ~gen:r.Request.cgen e)
    then recycle_local t r
  | Request.Pipelined ->
    if Qs_sched.Promise.try_fulfill_error ~bt (flat_promise r) e then begin
      Qs_obs.Counter.incr t.stats.Stats.rejected_promises;
      match t.sink with
      | Some s ->
        Qs_obs.Sink.instant s ~cat:"client" ~name:"promise_rejected"
          ~track:t.id ()
      | None -> ()
    end
  | Request.Free -> ()

(* Decode the tag and run the inline function — the flat counterpart of
   a packaged [run], with no closure ever built.  [last]/[quiet] feed
   the drained hint: a pipelined query fulfilled at the tail of a batch
   with nothing further pending marks its promise drained {e before}
   fulfilment, so a forcing client can elide its sync re-establishment
   round trip (dynamic sync coalescing, §3.4.1, generalized to the
   handler side). *)
let run_flat t ~last ~quiet (r : Request.flat) =
  match r.Request.tag with
  | Request.Call0 -> r.Request.f0 ()
  | Request.Call1 -> r.Request.f1 r.Request.a1
  | Request.Query0 ->
    let v = r.Request.q0 () in
    (* Fill lost: the client timed out and error-filled the cell first.
       It will never touch the record again, so the handler recycles
       (the cell's CAS decides exactly one recycler). *)
    if not (Qs_sched.Cell.try_fill r.Request.cell ~gen:r.Request.cgen v) then
      recycle_local t r
  | Request.Query1 ->
    let v = r.Request.q1 r.Request.a1 in
    if not (Qs_sched.Cell.try_fill r.Request.cell ~gen:r.Request.cgen v) then
      recycle_local t r
  | Request.Pipelined ->
    let p = flat_promise r in
    let v = r.Request.q0 () in
    if last && quiet () then Qs_sched.Promise.mark_drained p;
    Qs_sched.Promise.fulfill p v;
    Qs_obs.Counter.incr t.stats.Stats.promises_fulfilled
  | Request.Free -> ()

let guarded_flat t req ~last ~quiet (r : Request.flat) =
  try run_flat t ~last ~quiet r
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    Qs_obs.Counter.incr t.stats.Stats.handler_failures;
    Atomic.set t.failed true;
    (match t.sink with
    | Some s ->
      Qs_obs.Sink.instant s ~cat:"core" ~name:"handler_failure" ~track:t.id ()
    | None -> ());
    log_failure t req e;
    fail_flat t req r e bt

(* Handler-side recycling: calls and pipelined queries are done with
   their record the moment they have been served (the promise, not the
   record, is the pipelined rendezvous), so the handler returns them to
   the pool immediately.  Blocking queries hand the record to the
   awaiting client, which recycles after consuming the embedded cell —
   unless its await timed out, in which case nobody recycles and the
   record is left to the GC. *)
let execute_flat t req ~last ~quiet (r : Request.flat) =
  (* Capture the tag (and the stamps) before running: filling a blocking
     query's cell wakes the awaiting client, which may consume and
     recycle the record (resetting the tag to [Free]) before this
     function returns — a post-run read could then recycle a second
     time, putting the record in the pool twice. *)
  let tag = r.Request.tag in
  let birth = r.Request.t_birth and admit = r.Request.t_admit in
  if t.config.Config.eve then begin
    let top = t.shadow_top in
    if top + 2 < Array.length t.shadow then begin
      t.shadow.(top) <- t.id;
      t.shadow.(top + 1) <- top;
      t.shadow_top <- top + 2
    end;
    guarded_flat t req ~last ~quiet r;
    t.shadow_top <- top
  end
  else guarded_flat t req ~last ~quiet r;
  (match tag with
  | Request.Query0 | Request.Query1 -> ()
  | Request.Call0 | Request.Call1 | Request.Pipelined | Request.Free ->
    recycle_local t r);
  match tag with
  | Request.Free -> ()
  | Request.Call0 | Request.Call1 ->
    record_served t ~kind:Request.K_call ~birth ~admit
  | Request.Query0 | Request.Query1 ->
    record_served t ~kind:Request.K_query ~birth ~admit
  | Request.Pipelined ->
    record_served t ~kind:Request.K_pipelined ~birth ~admit

(* One request, uniformly in both modes (the run / release / end rules). *)
let serve t ~last ~quiet req =
  match req with
  | Request.Call pk ->
    ignore (execute t req pk : bool);
    record_served t ~kind:pk.Request.kind ~birth:pk.Request.t_birth
      ~admit:pk.Request.t_admit
  | Request.Flat r -> execute_flat t req ~last ~quiet r
  | Request.Query pk ->
    (* A pipelined query: the packaged closure computes the result and
       fulfils the client's promise (resuming any already-blocked
       forcer through the promise's waiter list).  Counted separately
       so the overlap of issue and fulfilment is observable; a raising
       closure rejects the promise instead, counted under
       [rejected_promises] by the completion. *)
    if execute t req pk then
      Qs_obs.Counter.incr t.stats.Stats.promises_fulfilled;
    record_served t ~kind:pk.Request.kind ~birth:pk.Request.t_birth
      ~admit:pk.Request.t_admit
  | Request.Sync resume ->
    (* Release half of the wait/release pair: wake the client.  The
       scheduler's hot slot turns this into a direct handoff, and the
       client was suspended when it logged this request, so nothing can
       follow it in the already-drained batch. *)
    resume ()
  | Request.End ->
    (* End of one registration.  Counting it keeps the drain invariant
       observable in both modes: every registration that closes is
       eventually accounted here (the lock-based loop used to drop the
       marker silently). *)
    Qs_obs.Counter.incr t.stats.Stats.ends_drained

(* Abort path: fail packaged requests without executing them.  Syncs are
   still resumed (a client blocked in a sync round trip must not be left
   suspended forever) and Ends still accounted, so the drain invariants
   survive an abort as far as possible. *)
let discard t req =
  match req with
  | (Request.Call pk | Request.Query pk) as r ->
    Qs_obs.Counter.incr t.stats.Stats.aborted_requests;
    let bt = Printexc.get_callstack 0 in
    (try pk.Request.fail (Aborted t.id) bt with e -> log_failure t r e)
  | Request.Flat r ->
    Qs_obs.Counter.incr t.stats.Stats.aborted_requests;
    let bt = Printexc.get_callstack 0 in
    (* Tag captured before the fail: failing a blocking query fills its
       cell, and the woken client may recycle the record concurrently. *)
    let tag = r.Request.tag in
    fail_flat t req r (Aborted t.id) bt;
    (match tag with
    | Request.Query0 | Request.Query1 -> () (* the woken client recycles *)
    | _ -> recycle_flat t r)
  | Request.Sync resume -> resume ()
  | Request.End -> Qs_obs.Counter.incr t.stats.Stats.ends_drained

(* Backpressure: requests that count against the admission bound.  Sync
   and End are control-flow, not work — they are always admitted, always
   served. *)
let countable = function
  | Request.Call _ | Request.Query _ | Request.Flat _ -> true
  | Request.Sync _ | Request.End -> false

let rec take_debt t =
  let d = Atomic.get t.shed_debt in
  if d <= 0 then false
  else if Atomic.compare_and_set t.shed_debt d (d - 1) then true
  else take_debt t

(* Shed one request from the backlog: fail its completion with
   [Overloaded] without executing it.  For a Call this poisons the
   client's registration (the dirty-processor rule — load shedding is a
   failure the client must observe); for a Query it rejects the promise. *)
let shed t req =
  (* The shed event carries the request's registration id (arg) so a
     conformance checker can attribute it to the client whose logged
     slot it consumed.  Call sheds and query sheds are distinct events:
     only a call shed consumes a logged slot and poisons the
     registration — a query shed merely rejects the rendezvous, which
     the awaiting client observes directly as [Overloaded]. *)
  let trace_shed name reg =
    match t.sink with
    | Some s -> Qs_obs.Sink.instant s ~cat:"core" ~name ~track:t.id ~arg:reg ()
    | None -> ()
  in
  match req with
  | Request.Call pk as r ->
    Qs_obs.Counter.incr t.stats.Stats.shed_requests;
    trace_shed "shed" pk.Request.reg;
    let bt = Printexc.get_callstack 0 in
    (try pk.Request.fail (Overloaded t.id) bt with e -> log_failure t r e)
  | Request.Query pk as r ->
    Qs_obs.Counter.incr t.stats.Stats.shed_requests;
    trace_shed "shed_query" pk.Request.reg;
    let bt = Printexc.get_callstack 0 in
    (try pk.Request.fail (Overloaded t.id) bt with e -> log_failure t r e)
  | Request.Flat r ->
    Qs_obs.Counter.incr t.stats.Stats.shed_requests;
    (* Captured before the fail: failing a blocking query wakes the
       client, which may recycle (and zero) the record concurrently. *)
    let reg = r.Request.reg in
    let tag = r.Request.tag in
    (match tag with
    | Request.Query0 | Request.Query1 | Request.Pipelined ->
      trace_shed "shed_query" reg
    | _ -> trace_shed "shed" reg);
    let bt = Printexc.get_callstack 0 in
    fail_flat t req r (Overloaded t.id) bt;
    (match tag with
    | Request.Query0 | Request.Query1 -> ()
    | _ -> recycle_flat t r)
  | Request.Sync _ | Request.End -> assert false

(* Admission control, called by registrations before enqueueing a Call or
   Query.  With [bound = 0] (every preset) this is one branch.  Remote
   processors skip client-side admission: the bound is enforced on the
   node (its own [admit] + the serve fiber blocking on a full private
   queue + the kernel socket buffers give end-to-end backpressure). *)
let admit t =
  let cap =
    match t.comm with Remote _ -> 0 | Qoq _ | Direct _ -> t.config.Config.bound
  in
  if cap > 0 then begin
    match t.config.Config.overflow with
    | `Block ->
      (* Back off until the handler has drained below the bound.  The
         yields keep the scheduler live, so a wedged handler shows up as
         spinning clients, not a false deadlock. *)
      let backoff = Qs_queues.Backoff.create () in
      let rec go () =
        if Atomic.fetch_and_add t.pending 1 >= cap then begin
          Atomic.decr t.pending;
          Qs_queues.Backoff.once backoff;
          Qs_sched.Sched.yield ();
          go ()
        end
      in
      go ()
    | `Fail ->
      if Atomic.fetch_and_add t.pending 1 >= cap then begin
        Atomic.decr t.pending;
        Qs_obs.Counter.incr t.stats.Stats.shed_requests;
        raise (Overloaded t.id)
      end
    | `Shed_oldest ->
      (* Admit unconditionally, but every admission past the bound owes
         the backlog one shedding, paid by the handler with the oldest
         pending request. *)
      if Atomic.fetch_and_add t.pending 1 >= cap then
        Atomic.incr t.shed_debt
  end

(* The single handler loop (Fig. 7), parameterized by the mailbox. *)
let handler_loop t mailbox =
  let buf = Array.make (max 1 t.config.Config.batch) Request.End in
  let quiet = mailbox.quiet in
  let rec loop () =
    match mailbox.drain buf with
    | 0 -> () (* shutdown *)
    | n ->
      Qs_obs.Counter.incr t.stats.Stats.handler_wakeups;
      Qs_obs.Counter.add t.stats.Stats.batched_requests n;
      let t0 =
        match t.sink with Some s -> Qs_obs.Sink.now s | None -> 0.0
      in
      (* Service-start stamp of the batch's first request; subsequent
         requests reuse their predecessor's completion stamp. *)
      t.h_now <- Qs_obs.Clock.now_ns ();
      let bounded = t.config.Config.bound > 0 in
      (* The aborted flag is re-read per request, not per batch: an
         abort (e.g. the [Runtime.shutdown ?grace] escalation) must be
         able to discard the rest of a batch already drained. *)
      for i = 0 to n - 1 do
        let req = buf.(i) in
        let last = i = n - 1 in
        let aborted = Atomic.get t.aborted in
        if bounded && countable req then begin
          Atomic.decr t.pending;
          (* Under [`Shed_oldest] an admission past the bound left one unit
             of debt: pay it with the oldest pending request, i.e. this
             one.  Syncs and Ends are never shed — a shed Sync would fake
             an established sync, a shed End would leak a registration. *)
          if (not aborted) && take_debt t then shed t req
          else if aborted then discard t req
          else serve t ~last ~quiet req
        end
        else if aborted then discard t req
        else serve t ~last ~quiet req;
        buf.(i) <- Request.End (* drop the closure so the GC can reclaim it *)
      done;
      flush_recycled t;
      (match t.sink with
      | Some s ->
        (* One span per drained batch (arg = batch size): the handler-side
           counterpart of the client-side trace events. *)
        Qs_obs.Sink.complete s ~cat:"core" ~name:"batch" ~track:t.id ~arg:n
          ~ts:t0 ~dur:(Qs_obs.Sink.now s -. t0) ()
      | None -> ());
      loop ()
  in
  loop ()

(* Queue-of-queues mailbox: walk private queues in registration order,
   draining each until its [End] marker.  [End] is always the last
   request a client logs into a private queue, so it can only appear at
   the end of a drained batch — seeing it there means the queue is
   drained and abandoned by its client, and can be recycled immediately
   (paper §3.2: queues are "taken from a cache of queues").

   [quiet] probes the current private queue: with the batch in hand and
   that queue empty, the handler has drained everything its current
   client logged — the condition under which a pipelined fulfilment may
   carry the drained hint.  Between registrations ([None]) the handler
   is trivially quiet. *)
let qoq_mailbox qoq cache =
  let current = ref None in
  let rec drain buf =
    match !current with
    | None -> (
      match Qs_sched.Bqueue.Mpsc.dequeue qoq with
      | None -> 0 (* shutdown *)
      | Some pq ->
        current := Some pq;
        drain buf)
    | Some pq ->
      let n = Qs_sched.Bqueue.Spsc.drain pq buf in
      (match buf.(n - 1) with
      | Request.End ->
        current := None;
        Qs_queues.Treiber_stack.push cache pq
      | Request.Call _ | Request.Query _ | Request.Flat _ | Request.Sync _ ->
        ());
      n
  in
  let quiet () =
    match !current with
    | None -> true
    | Some pq -> Qs_sched.Bqueue.Spsc.is_empty pq
  in
  { drain; quiet }

let direct_mailbox q =
  {
    drain = (fun buf -> Qs_sched.Bqueue.Mpsc.drain q buf);
    (* Lock mode has no per-registration stream; the whole request queue
       stands in (conservative: another client's backlog masks the
       hint, never the reverse). *)
    quiet = (fun () -> Qs_sched.Bqueue.Mpsc.is_empty q);
  }

let create ?sink ?pool ~id ~config ~stats () =
  Qs_obs.Counter.incr stats.Stats.processors;
  let comm =
    if Config.uses_qoq config then
      Qoq
        {
          qoq = Qs_sched.Bqueue.Mpsc.create ();
          cache = Qs_queues.Treiber_stack.create ();
        }
    else
      Direct
        {
          q = Qs_sched.Bqueue.Mpsc.create ();
          lock = Qs_sched.Fiber_mutex.create ();
        }
  in
  let t =
    {
      id;
      config;
      stats;
      sink;
      comm;
      reserve = Qs_queues.Spinlock.create ();
      shadow = (if config.Config.eve then Array.make 256 0 else [||]);
      shadow_top = 0;
      state = Atomic.make Running;
      aborted = Atomic.make false;
      failed = Atomic.make false;
      stream_closed = Atomic.make false;
      exited = Qs_sched.Ivar.create ();
      pending = Atomic.make 0;
      shed_debt = Atomic.make 0;
      recycle_buf =
        (if config.Config.pooling then Array.make pool_cap 0 else [||]);
      recycle_n = 0;
      h_now = 0;
      flat_pool = make_pool config.Config.pooling;
    }
  in
  let mailbox =
    match comm with
    | Qoq { qoq; cache } -> qoq_mailbox qoq cache
    | Direct { q; _ } -> direct_mailbox q
    | Remote _ -> assert false (* [create] never builds a Remote comm *)
  in
  (* Pinning: a pooled handler fiber is spawned into its scheduler pool,
     so only that pool's member workers ever drain its requests. *)
  let spawn_handler =
    match pool with
    | Some name -> Qs_sched.Sched.spawn_in name
    | None -> Qs_sched.Sched.spawn
  in
  spawn_handler (fun () ->
    Fun.protect
      ~finally:(fun () ->
        Atomic.set t.state (if Atomic.get t.failed then Failed else Stopped);
        Qs_sched.Ivar.fill t.exited ())
      (fun () -> handler_loop t mailbox));
  t

(* A remote processor: same [t], no handler fiber — the handler runs on
   the node.  The exit latch is pre-filled (there is nothing to await
   locally; teardown of the connection is the runtime's job) and the
   flat pool is disabled (remote registrations always use the packaged
   wire representation). *)
let create_remote ?sink ~id ~config ~stats ~ops () =
  Qs_obs.Counter.incr stats.Stats.processors;
  {
    id;
    config;
    stats;
    sink;
    comm = Remote ops;
    reserve = Qs_queues.Spinlock.create ();
    shadow = [||];
    shadow_top = 0;
    state = Atomic.make Running;
    aborted = Atomic.make false;
    failed = Atomic.make false;
    stream_closed = Atomic.make false;
    exited = Qs_sched.Ivar.create_full ();
    pending = Atomic.make 0;
    shed_debt = Atomic.make 0;
    recycle_buf = [||];
    recycle_n = 0;
    h_now = 0;
    flat_pool = make_pool false;
  }

let id t = t.id
let reserve t = t.reserve

let is_remote t = match t.comm with Remote _ -> true | Qoq _ | Direct _ -> false

let remote_node t =
  match t.comm with
  | Remote ops -> Some ops.rem_node
  | Qoq _ | Direct _ -> None

(* Open a registration on the remote node; the returned proxy carries the
   per-registration wire operations.  Only valid on remote processors. *)
let remote_open t =
  match t.comm with
  | Remote ops -> ops.rem_open ()
  | Qoq _ | Direct _ ->
    invalid_arg "Scoop.Processor.remote_open: processor is local"

(* -- queue-of-queues client operations -------------------------------------- *)

let take_private_queue t =
  match t.comm with
  | Qoq { cache; _ } -> (
    match Qs_queues.Treiber_stack.pop cache with
    | Some pq -> pq
    | None -> Qs_sched.Bqueue.Spsc.create ~backing:t.config.Config.spsc ())
  | Direct _ | Remote _ ->
    invalid_arg "Scoop.Processor.take_private_queue: processor is in lock mode"

let enqueue_private_queue t pq =
  match t.comm with
  | Qoq { qoq; _ } -> Qs_sched.Bqueue.Mpsc.enqueue qoq pq
  | Direct _ | Remote _ ->
    invalid_arg
      "Scoop.Processor.enqueue_private_queue: processor is in lock mode"

(* -- lock-based client operations ------------------------------------------- *)

let wrong_mode fn = invalid_arg ("Scoop.Processor." ^ fn ^ ": processor is in qoq mode")

let lock_handler t =
  match t.comm with
  | Direct { lock; _ } -> Qs_sched.Fiber_mutex.lock lock
  | Qoq _ | Remote _ -> wrong_mode "lock_handler"

let lock_handler_timeout t dt =
  match t.comm with
  | Direct { lock; _ } -> Qs_sched.Fiber_mutex.lock_timeout lock dt
  | Qoq _ | Remote _ -> wrong_mode "lock_handler_timeout"

let unlock_handler t =
  match t.comm with
  | Direct { lock; _ } -> Qs_sched.Fiber_mutex.unlock lock
  | Qoq _ | Remote _ -> wrong_mode "unlock_handler"

let enqueue_direct t req =
  match t.comm with
  | Direct { q; _ } -> Qs_sched.Bqueue.Mpsc.enqueue q req
  | Qoq _ | Remote _ -> wrong_mode "enqueue_direct"

(* -- lifecycle ---------------------------------------------------------------- *)

let lifecycle t = Atomic.get t.state

let close_stream t =
  (* The Bqueue close wakes the parked handler; guard so repeated
     shutdown/abort calls close exactly once. *)
  if Atomic.compare_and_set t.stream_closed false true then
    match t.comm with
    | Qoq { qoq; _ } -> Qs_sched.Bqueue.Mpsc.close qoq
    | Direct { q; _ } -> Qs_sched.Bqueue.Mpsc.close q
    | Remote _ -> () (* the stream lives on the node; teardown is the
                        connection's job *)

let shutdown t =
  ignore (Atomic.compare_and_set t.state Running Draining : bool);
  close_stream t

let abort t =
  Atomic.set t.aborted true;
  shutdown t

let await_stopped t = Qs_sched.Ivar.read t.exited

(* Timed wait on the exit latch, for [Runtime.shutdown ?grace]: [false]
   means the handler is still running at the deadline. *)
let try_await_stopped t ~timeout =
  match Qs_sched.Ivar.result_timeout t.exited timeout with
  | Some _ -> true
  | None -> false

let compare_by_id a b = Int.compare a.id b.id
