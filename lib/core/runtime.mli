(** SCOOP/Qs runtime: processor creation, separate blocks, lifecycle.

    Typical use:
    {[
      Scoop.Runtime.run (fun rt ->
        let worker = Scoop.Runtime.processor rt in
        let counter = Scoop.Shared.create worker 0 in
        Scoop.Runtime.separate rt worker (fun reg ->
          Scoop.Shared.apply reg counter (fun c -> incr c_ref);
          Scoop.Shared.get reg counter (fun c -> c)))
    ]} *)

type t

val create : ?config:Config.t -> ?trace:bool -> ?obs:Qs_obs.Sink.t -> unit -> t
(** Create a runtime inside an already-running scheduler.  [config]
    defaults to {!Config.all} (the full SCOOP/Qs runtime); derive
    variations with the builder chain, e.g.
    [~config:Config.(all |> with_batch 8 |> with_deadline 0.5)].
    [trace] enables detailed event tracing (see {!Trace}) over a fresh
    private sink (default: [config.trace]), while [obs] (which implies
    [trace]) supplies the sink — pass the sink already attached to the
    scheduler to get all layers' events in one place.

    Note that [create] does not make scheduler pools — only {!run} does;
    an unknown [Config.pool] fails at {!processor} time.

    With [config.endpoint = Connect addrs] (see {!Config.remote}), the
    runtime connects to those nodes up front and every subsequent
    {!processor} is a client-side proxy whose handler runs remotely —
    in that case [create] must be called inside a running scheduler
    (as {!run} arranges). *)

val run :
  ?domains:int ->
  ?config:Config.t ->
  ?grace:float ->
  ?trace:bool ->
  ?obs:Qs_obs.Sink.t ->
  ?on_stall:[ `Raise | `Warn ] ->
  ?on_counters:(Qs_sched.Sched.counters -> unit) ->
  (t -> 'a) ->
  'a
(** Start a scheduler, create a runtime, run [main], then shut the
    processors down.  Any fiber spawned by [main] should be joined before
    [main] returns.  A deadlocked program raises {!Qs_sched.Sched.Stalled}
    (see paper §2.5).

    [config.pools] names extra scheduler pools for this run (see
    [Qs_sched.Sched.run]); [config.pool] pins every
    processor created without an explicit [?pool] to that pool.  The
    shutdown on return drains every pool: stream closes propagate to
    pinned handlers wherever they run, and their exit latches are awaited
    like any other ([grace] is passed to {!shutdown}).

    With [~trace:true] (or an explicit [~obs] sink) the whole stack is
    instrumented into one shared sink: scheduler workers record
    dispatch/park spans and steal/handoff instants (["sched"]), handlers
    record per-batch spans (["core"]), client operations record
    reserve/call/sync/query events (["client"]/["core"]), and pool
    membership changes land as ["pool"]-category lanes — see
    {!Qs_obs.Chrome} for exporting it. *)

val processor : ?pool:string -> t -> Processor.t
(** Spawn a new processor (handler fiber).  [pool] pins its handler fiber
    to the named scheduler pool (default: the runtime's [Config.pool] if
    set, else the spawner's pool).  On a runtime with a [Connect]
    endpoint, the processor is instead a remote proxy: its handler runs
    on the node the static shard map routes this processor id to
    (id mod connection count), and [pool] is ignored.
    @raise Invalid_argument on an unknown pool name. *)

val is_remote : t -> bool
(** Whether this runtime's processors are remote proxies
    ([config.endpoint] is [Connect]). *)

val shutdown_nodes : t -> unit
(** Ask every connected node {e process} to stop serving once its
    connections drain (pairs with [Scoop.Remote.listen] returning on the
    node side).  No-op on an in-process runtime. *)

val processors : ?pool:string -> t -> int -> Processor.t list

val separate : ?timeout:float -> t -> Processor.t -> (Registration.t -> 'a) -> 'a
(** [separate rt h body] is SCOOP's [separate h do body end]. *)

val separate2 :
  ?timeout:float -> t -> Processor.t -> Processor.t ->
  (Registration.t -> Registration.t -> 'a) -> 'a
(** Atomic two-handler reservation (paper §2.4, Fig. 11). *)

val separate_list :
  ?timeout:float -> t -> Processor.t list -> (Registration.t list -> 'a) -> 'a
(** Atomic multi-handler reservation.  Multi-reservation ([separate2],
    [separate_list] and [separate_list_when]) is a local protocol:
    remote proxies (see {!is_remote}) cannot take part, and passing one
    raises [Scoop.Remote_error] naming the offending processors before
    anything has been reserved. *)

val separate_when :
  ?timeout:float ->
  t -> Processor.t -> pred:(Registration.t -> bool) -> (Registration.t -> 'a) -> 'a
(** Separate block with a wait condition (SCOOP's precondition-as-wait
    semantics): the block body runs only once [pred] holds, evaluated
    under the block's own registration; until then the reservation is
    released and retried.  The failed attempts are counted in
    {!Stats.t.wait_retries}.

    For every [separate*] function, [?timeout] bounds the blocking part
    of reservation (handler locks in lock mode; the whole retry loop for
    the wait-condition variants, as an absolute deadline fixed at entry)
    and raises {!Qs_sched.Timer.Timeout} ([Scoop.Timeout]) at the
    deadline with no handler left reserved. *)

val separate_list_when :
  ?timeout:float ->
  t ->
  Processor.t list ->
  pred:(Registration.t list -> bool) ->
  (Registration.t list -> 'a) ->
  'a

val shutdown : ?grace:float -> t -> unit
(** Graceful drain of every processor created so far: close their
    request streams, then await each handler's completion latch.  When
    it returns, every handler fiber has exited ([Stopped] or [Failed])
    and all {!Stats} counters are final.  Idempotent — a second call is
    a no-op; done automatically when {!run}'s [main] returns normally
    (on an exceptional exit the streams are closed but not awaited, so a
    wedged client fiber cannot hang the error path).

    [?grace] bounds the drain: handlers still running that many seconds
    after the streams closed are escalated to {!abort} — their remaining
    packaged requests fail with {!Processor.Aborted} — and then awaited.
    The grace period bounds the backlog, not a single wedged closure. *)

val abort : t -> unit
(** Like {!shutdown}, but processors {e abort}: still-pending packaged
    requests are discarded unexecuted, failing their completions with
    {!Processor.Aborted} (counted under [Stats.aborted_requests]). *)

val config : t -> Config.t
val stats : t -> Stats.t

(**/**)

val ctx : t -> Ctx.t
(** The runtime's client-operation context — internal; used by the node
    serve loop to enter separate blocks on behalf of remote clients. *)

(**/**)

val trace : t -> Trace.t option
(** The event trace, when the runtime was created with [~trace:true]
    or [~obs]. *)

val obs : t -> Qs_obs.Sink.t option
(** The shared observability sink behind {!trace}, for whole-stack
    exports ({!Qs_obs.Chrome}) and track summaries. *)

val sched_counters : unit -> Qs_sched.Sched.counters option
(** Live scheduling counters of the surrounding scheduler (dispatches,
    handoffs, steals, parks); [None] outside a scheduler.  Mid-run the
    values are approximate (racy reads), exact once the scheduler has
    quiesced. *)

val pool_counters : unit -> (string * int) list
(** Flat per-pool counter view of the surrounding scheduler (aggregates
    [pool_drains] / [pool_migrations] / [pool_idle_shrinks], then
    [pool.<name>.<field>] per pool); [[]] outside a scheduler. *)
