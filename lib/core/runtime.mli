(** SCOOP/Qs runtime: processor creation, separate blocks, lifecycle.

    Typical use:
    {[
      Scoop.Runtime.run (fun rt ->
        let worker = Scoop.Runtime.processor rt in
        let counter = Scoop.Shared.create worker 0 in
        Scoop.Runtime.separate rt worker (fun reg ->
          Scoop.Shared.apply reg counter (fun c -> incr c_ref);
          Scoop.Shared.get reg counter (fun c -> c)))
    ]} *)

type t

val create :
  ?config:Config.t ->
  ?mailbox:[ `Qoq | `Direct ] ->
  ?batch:int ->
  ?spsc:[ `Linked | `Ring ] ->
  ?trace:bool ->
  unit ->
  t
(** Create a runtime inside an already-running scheduler.  [config]
    defaults to {!Config.all} (the full SCOOP/Qs runtime); [mailbox],
    [batch] and [spsc] override the corresponding request-path fields of
    [config] (see {!Config.t}); [trace] enables detailed event tracing
    (see {!Trace}).
    @raise Invalid_argument if [batch < 1]. *)

val run :
  ?domains:int ->
  ?config:Config.t ->
  ?mailbox:[ `Qoq | `Direct ] ->
  ?batch:int ->
  ?spsc:[ `Linked | `Ring ] ->
  ?trace:bool ->
  ?on_stall:[ `Raise | `Warn ] ->
  ?on_counters:(Qs_sched.Sched.counters -> unit) ->
  (t -> 'a) ->
  'a
(** Start a scheduler, create a runtime, run [main], then shut the
    processors down.  Any fiber spawned by [main] should be joined before
    [main] returns.  A deadlocked program raises {!Qs_sched.Sched.Stalled}
    (see paper §2.5). *)

val processor : t -> Processor.t
(** Spawn a new processor (handler fiber). *)

val processors : t -> int -> Processor.t list

val separate : t -> Processor.t -> (Registration.t -> 'a) -> 'a
(** [separate rt h body] is SCOOP's [separate h do body end]. *)

val separate2 :
  t -> Processor.t -> Processor.t ->
  (Registration.t -> Registration.t -> 'a) -> 'a
(** Atomic two-handler reservation (paper §2.4, Fig. 11). *)

val separate_list : t -> Processor.t list -> (Registration.t list -> 'a) -> 'a

val separate_when :
  t -> Processor.t -> pred:(Registration.t -> bool) -> (Registration.t -> 'a) -> 'a
(** Separate block with a wait condition (SCOOP's precondition-as-wait
    semantics): the block body runs only once [pred] holds, evaluated
    under the block's own registration; until then the reservation is
    released and retried.  The failed attempts are counted in
    {!Stats.t.wait_retries}. *)

val separate_list_when :
  t ->
  Processor.t list ->
  pred:(Registration.t list -> bool) ->
  (Registration.t list -> 'a) ->
  'a

val shutdown : t -> unit
(** Close every processor created so far (idempotent; done automatically
    by {!run}). *)

val config : t -> Config.t
val stats : t -> Stats.t

val trace : t -> Trace.t option
(** The event trace, when the runtime was created with [~trace:true]. *)
