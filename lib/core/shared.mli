(** Separate objects: data owned by a processor, accessible only through a
    separate block that reserves that processor.

    Ownership is checked dynamically on every access
    (@raise Invalid_argument on violation) — the runtime analogue of
    SCOOP's static [separate] typing rule.

    The accessor closures are hoisted into the object at creation and
    accesses go through the one-argument flat request path
    ([Registration.call1]/[query1]), so on a single-reservation
    registration with pooling enabled, {!apply}/{!get}/{!set} allocate
    nothing per access. *)

type 'a t

val create : Processor.t -> 'a -> 'a t
(** [create h v] places [v] on handler [h]. *)

val proc : 'a t -> Processor.t

val apply : Registration.t -> 'a t -> ('a -> unit) -> unit
(** Asynchronous command on the object (executed by its handler). *)

val get : Registration.t -> 'a t -> ('a -> 'b) -> 'b
(** Synchronous query on the object. *)

val set : Registration.t -> 'a t -> 'a -> unit
(** Asynchronously replace the object's value. *)

val read_synced : Registration.t -> 'a t -> 'a
(** Sync with the handler, then return the raw data for direct client-side
    reading.  Safe until the client logs the next asynchronous call on the
    same registration.  This is the access shape produced by the static
    sync-coalescing pass (paper §3.4.2). *)
