(* Shared runtime context threaded through client-side operations.

   [sink], when present, is the qs_obs event sink shared by every layer
   of this runtime instance (scheduler workers, processor handlers,
   client operations); [trace] is the SCOOP-level compatibility view
   over that same sink. *)

type t = {
  config : Config.t;
  stats : Stats.t;
  eve : Eve.t option;
  sink : Qs_obs.Sink.t option;
  trace : Trace.t option;
}

let create ?sink config =
  let stats = Stats.create () in
  {
    config;
    stats;
    eve = (if config.Config.eve then Some (Eve.create stats) else None);
    sink;
    trace = Option.map Trace.of_sink sink;
  }
