(* Shared runtime context threaded through client-side operations. *)

type t = {
  config : Config.t;
  stats : Stats.t;
  eve : Eve.t option;
  trace : Trace.t option;
}

let create ?(trace = false) config =
  let stats = Stats.create () in
  {
    config;
    stats;
    eve = (if config.Config.eve then Some (Eve.create stats) else None);
    trace = (if trace then Some (Trace.create ()) else None);
  }
