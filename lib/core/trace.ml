(* Detailed runtime tracing — the instrumentation §7 names as future
   work: "a SCOOP-specific instrumentation for the runtime, providing
   detailed measurements for the internal components".

   Since the qs_obs refactor this module is a compatibility view over a
   shared [Qs_obs.Sink.t]: the same per-domain bounded rings that hold
   the scheduler's dispatch/steal events also hold the SCOOP-level
   client and handler events, so one sink captures the whole stack and
   one Chrome-trace export shows every layer.  [record] maps the
   historical event kinds onto sink categories; [events] reconstructs
   the historical [event] records from the sink.

   The old collector was an unbounded cons list whose [events] accessor
   re-reversed the whole list on every call.  The sink's rings are
   bounded (overflow counted, not silent) and the ordering cost is now
   explicit and paid once per read: [Sink.events] sorts by timestamp.

   Kind <-> sink mapping (track = target processor id, arg = issuing
   registration id — the attribution field conformance checking
   partitions on; 0 when the emitter has no registration in hand):
     Reserved            -> instant  client/reserve
     Call_logged         -> instant  client/call_log
     Call_executed d     -> complete core/call_exec     (dur = d)
     Sync_round_trip d   -> complete client/sync        (dur = d)
     Sync_elided         -> instant  client/sync_elided
     Query_round_trip d  -> complete client/query       (dur = d)
     Query_pipelined d   -> complete client/query_async (dur = d)
     Handler_failed      -> instant  core/handler_failure
     Registration_poisoned -> instant client/poisoned
     Promise_rejected    -> instant  client/promise_rejected
     Request_timeout     -> instant  client/timeout
     Request_shed        -> instant  core/shed
     Query_shed          -> instant  core/shed_query
   Complete spans store their *start* time; the historical [at] (time of
   recording) is reconstructed as [ts +. dur]. *)

type kind =
  | Reserved
  | Call_logged
  | Call_executed of float (* seconds spent queued before execution *)
  | Sync_round_trip of float
  | Sync_elided
  | Query_round_trip of float (* packaged query: log -> result *)
  | Query_pipelined of float
      (* pipelined query: issue -> promise fulfilment (closed by the
         handler via the promise's completion callback, so the span
         measures queueing + execution, not the client's force delay) *)
  | Handler_failed (* a handler-side closure raised *)
  | Registration_poisoned (* a failed async call dirtied a registration *)
  | Promise_rejected (* a pipelined query resolved with an exception *)
  | Request_timeout (* a blocking rendezvous was abandoned at its deadline *)
  | Request_shed (* the mailbox shed a logged call ([`Shed_oldest]) *)
  | Query_shed
      (* the mailbox shed a query-flavoured request: the rendezvous is
         rejected with [Overloaded] at the query/await site, but no
         logged-call slot is consumed and the registration stays clean *)

type event = {
  at : float; (* seconds since the trace started *)
  proc : int; (* target processor id *)
  client : int; (* issuing registration id; 0 = unattributed *)
  seq : int; (* global sink record order *)
  kind : kind;
}

type t = { sink : Qs_obs.Sink.t }

let of_sink sink = { sink }
let create () = { sink = Qs_obs.Sink.create () }
let sink t = t.sink
let now t = Qs_obs.Sink.now t.sink

let record t ~proc ?(client = 0) kind =
  let s = t.sink in
  let instant name =
    Qs_obs.Sink.instant s ~cat:"client" ~name ~track:proc ~arg:client ()
  in
  let complete cat name d =
    Qs_obs.Sink.complete s ~cat ~name ~track:proc ~arg:client
      ~ts:(Qs_obs.Sink.now s -. d) ~dur:d ()
  in
  match kind with
  | Reserved -> instant "reserve"
  | Call_logged -> instant "call_log"
  | Call_executed d -> complete "core" "call_exec" d
  | Sync_round_trip d -> complete "client" "sync" d
  | Sync_elided -> instant "sync_elided"
  | Query_round_trip d -> complete "client" "query" d
  | Query_pipelined d -> complete "client" "query_async" d
  | Handler_failed ->
    Qs_obs.Sink.instant s ~cat:"core" ~name:"handler_failure" ~track:proc
      ~arg:client ()
  | Registration_poisoned -> instant "poisoned"
  | Promise_rejected -> instant "promise_rejected"
  | Request_timeout -> instant "timeout"
  | Request_shed ->
    Qs_obs.Sink.instant s ~cat:"core" ~name:"shed" ~track:proc ~arg:client ()
  | Query_shed ->
    Qs_obs.Sink.instant s ~cat:"core" ~name:"shed_query" ~track:proc
      ~arg:client ()

let kind_of (e : Qs_obs.Sink.event) =
  match (e.cat, e.name) with
  | "client", "reserve" -> Some Reserved
  | "client", "call_log" -> Some Call_logged
  | "core", "call_exec" -> Some (Call_executed e.dur)
  | "client", "sync" -> Some (Sync_round_trip e.dur)
  | "client", "sync_elided" -> Some Sync_elided
  | "client", "query" -> Some (Query_round_trip e.dur)
  | "client", "query_async" -> Some (Query_pipelined e.dur)
  | "core", "handler_failure" -> Some Handler_failed
  | "client", "poisoned" -> Some Registration_poisoned
  | "client", "promise_rejected" -> Some Promise_rejected
  | "client", "timeout" -> Some Request_timeout
  | "core", "shed" -> Some Request_shed
  | "core", "shed_query" -> Some Query_shed
  | _ -> None (* other layers' events (sched, remote, ...) *)

let events t =
  Qs_obs.Sink.fold
    (fun acc (e : Qs_obs.Sink.event) ->
      match kind_of e with
      | None -> acc
      | Some kind ->
        ( (e.ts +. e.dur, e.seq),
          {
            at = e.ts +. e.dur;
            proc = e.track;
            client = e.arg;
            seq = e.seq;
            kind;
          } )
        :: acc)
    [] t.sink
  |> List.sort (fun (ka, _) (kb, _) -> compare ka kb)
  |> List.map snd

(* -- summary ---------------------------------------------------------------- *)

type dist = {
  count : int;
  mean : float;
  max : float;
}

let dist_of = function
  | [] -> { count = 0; mean = 0.0; max = 0.0 }
  | xs ->
    let count = List.length xs in
    {
      count;
      mean = List.fold_left ( +. ) 0.0 xs /. float_of_int count;
      max = List.fold_left max 0.0 xs;
    }

type proc_summary = {
  sp_proc : int;
  sp_reservations : int;
  sp_calls : int;
  sp_call_latency : dist; (* queueing delay of executed calls *)
  sp_sync_round_trip : dist;
  sp_syncs_elided : int;
  sp_query_round_trip : dist;
  sp_query_pipelined : dist; (* issue -> fulfilment of pipelined queries *)
}

let summarize_events all =
  let by_proc : (int, event list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match Hashtbl.find_opt by_proc e.proc with
      | Some cell -> cell := e :: !cell
      | None -> Hashtbl.replace by_proc e.proc (ref [ e ]))
    all;
  Hashtbl.fold
    (fun proc cell acc ->
      let es = !cell in
      let count pred = List.length (List.filter pred es) in
      let latencies pick = List.filter_map pick es in
      {
        sp_proc = proc;
        sp_reservations = count (fun e -> e.kind = Reserved);
        sp_calls = count (fun e -> e.kind = Call_logged);
        sp_call_latency =
          dist_of
            (latencies (fun e ->
               match e.kind with Call_executed d -> Some d | _ -> None));
        sp_sync_round_trip =
          dist_of
            (latencies (fun e ->
               match e.kind with Sync_round_trip d -> Some d | _ -> None));
        sp_syncs_elided = count (fun e -> e.kind = Sync_elided);
        sp_query_round_trip =
          dist_of
            (latencies (fun e ->
               match e.kind with Query_round_trip d -> Some d | _ -> None));
        sp_query_pipelined =
          dist_of
            (latencies (fun e ->
               match e.kind with Query_pipelined d -> Some d | _ -> None));
      }
      :: acc)
    by_proc []
  |> List.sort (fun a b -> Int.compare a.sp_proc b.sp_proc)

let summarize t = summarize_events (events t)

let pp_dist ppf d =
  if d.count = 0 then Format.pp_print_string ppf "-"
  else Format.fprintf ppf "n=%d mean=%.1fus max=%.1fus" d.count (d.mean *. 1e6) (d.max *. 1e6)

let pp_summary ppf summaries =
  List.iter
    (fun s ->
      Format.fprintf ppf
        "@[<v2>processor %d:@,\
         reservations:    %d@,\
         calls logged:    %d@,\
         call queueing:   %a@,\
         sync roundtrip:  %a (elided: %d)@,\
         query roundtrip: %a@,\
         query pipelined: %a@]@."
        s.sp_proc s.sp_reservations s.sp_calls pp_dist s.sp_call_latency
        pp_dist s.sp_sync_round_trip s.sp_syncs_elided pp_dist
        s.sp_query_round_trip pp_dist s.sp_query_pipelined)
    summaries
