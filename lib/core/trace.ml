(* Detailed runtime tracing — the instrumentation §7 names as future
   work: "a SCOOP-specific instrumentation for the runtime, providing
   detailed measurements for the internal components".

   When a runtime is created with [~trace:true], every client-side
   operation records a timestamped event, including the latency a
   logged call waits in its private queue before the handler executes it
   and the round-trip time of sync and packaged-query operations.  The
   collector is a lock-free cons list, so tracing adds one timestamp and
   one CAS per operation.

   [summarize] turns the raw events into the per-processor report the
   paper asks for: operation counts, queueing latency and round-trip
   distributions. *)

type kind =
  | Reserved
  | Call_logged
  | Call_executed of float (* seconds spent queued before execution *)
  | Sync_round_trip of float
  | Sync_elided
  | Query_round_trip of float (* packaged query: log -> result *)

type event = {
  at : float; (* seconds since the trace started *)
  proc : int; (* target processor id *)
  kind : kind;
}

type t = {
  started : float;
  events : event list Atomic.t;
}

let create () = { started = Unix.gettimeofday (); events = Atomic.make [] }

let now t = Unix.gettimeofday () -. t.started

let record t ~proc kind =
  let e = { at = now t; proc; kind } in
  let rec push () =
    let old = Atomic.get t.events in
    if not (Atomic.compare_and_set t.events old (e :: old)) then push ()
  in
  push ()

let events t = List.rev (Atomic.get t.events)

(* -- summary ---------------------------------------------------------------- *)

type dist = {
  count : int;
  mean : float;
  max : float;
}

let dist_of = function
  | [] -> { count = 0; mean = 0.0; max = 0.0 }
  | xs ->
    let count = List.length xs in
    {
      count;
      mean = List.fold_left ( +. ) 0.0 xs /. float_of_int count;
      max = List.fold_left max 0.0 xs;
    }

type proc_summary = {
  sp_proc : int;
  sp_reservations : int;
  sp_calls : int;
  sp_call_latency : dist; (* queueing delay of executed calls *)
  sp_sync_round_trip : dist;
  sp_syncs_elided : int;
  sp_query_round_trip : dist;
}

let summarize t =
  let by_proc : (int, event list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match Hashtbl.find_opt by_proc e.proc with
      | Some cell -> cell := e :: !cell
      | None -> Hashtbl.replace by_proc e.proc (ref [ e ]))
    (events t);
  Hashtbl.fold
    (fun proc cell acc ->
      let es = !cell in
      let count pred = List.length (List.filter pred es) in
      let latencies pick = List.filter_map pick es in
      {
        sp_proc = proc;
        sp_reservations = count (fun e -> e.kind = Reserved);
        sp_calls = count (fun e -> e.kind = Call_logged);
        sp_call_latency =
          dist_of
            (latencies (fun e ->
               match e.kind with Call_executed d -> Some d | _ -> None));
        sp_sync_round_trip =
          dist_of
            (latencies (fun e ->
               match e.kind with Sync_round_trip d -> Some d | _ -> None));
        sp_syncs_elided = count (fun e -> e.kind = Sync_elided);
        sp_query_round_trip =
          dist_of
            (latencies (fun e ->
               match e.kind with Query_round_trip d -> Some d | _ -> None));
      }
      :: acc)
    by_proc []
  |> List.sort (fun a b -> Int.compare a.sp_proc b.sp_proc)

let pp_dist ppf d =
  if d.count = 0 then Format.pp_print_string ppf "-"
  else Format.fprintf ppf "n=%d mean=%.1fus max=%.1fus" d.count (d.mean *. 1e6) (d.max *. 1e6)

let pp_summary ppf summaries =
  List.iter
    (fun s ->
      Format.fprintf ppf
        "@[<v2>processor %d:@,\
         reservations:    %d@,\
         calls logged:    %d@,\
         call queueing:   %a@,\
         sync roundtrip:  %a (elided: %d)@,\
         query roundtrip: %a@]@."
        s.sp_proc s.sp_reservations s.sp_calls pp_dist s.sp_call_latency
        pp_dist s.sp_sync_round_trip s.sp_syncs_elided pp_dist
        s.sp_query_round_trip)
    summaries
