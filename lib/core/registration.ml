(* Client-side handle on one reserved handler within a separate block.

   A registration is what the compiled code of Fig. 8 calls the private
   queue pointer [h_p]: the client logs asynchronous calls, queries and
   sync requests through it.  It also carries the dynamically-tracked
   synced status of §3.4.1: while [synced] is true the handler is parked
   having drained everything this client logged, so a repeated sync can be
   elided and client-side reads of handler data are race-free.

   Registrations are only valid between the separate block's entry and
   exit; [call]/[query]/[sync] raise once the block has closed. *)

type t = {
  proc : Processor.t;
  ctx : Ctx.t;
  enqueue : Request.t -> unit;
  mutable synced : bool;
  mutable closed : bool;
  mutable logged : int;
      (* requests logged so far; lets a forced promise prove that nothing
         was logged after it was issued (see [query_async]) *)
}

let make ~proc ~ctx ~enqueue =
  { proc; ctx; enqueue; synced = false; closed = false; logged = 0 }

let processor t = t.proc
let is_synced t = t.synced

let touch t =
  if t.closed then
    invalid_arg "Scoop.Registration: used outside its separate block";
  match t.ctx.Ctx.eve with
  | Some eve -> Eve.lookup eve (Processor.id t.proc)
  | None -> ()

let call t f =
  touch t;
  Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.calls;
  (* An asynchronous call invalidates the synced status: the handler has
     work again and may be mid-execution during subsequent client reads. *)
  t.synced <- false;
  t.logged <- t.logged + 1;
  match t.ctx.Ctx.trace with
  | None -> t.enqueue (Request.Call f)
  | Some tr ->
    (* Trace the queueing delay: logged now, executed by the handler
       later (§7 instrumentation). *)
    let proc = Processor.id t.proc in
    Trace.record tr ~proc Trace.Call_logged;
    let logged = Trace.now tr in
    t.enqueue
      (Request.Call
         (fun () ->
           Trace.record tr ~proc (Trace.Call_executed (Trace.now tr -. logged));
           f ()))

let force_sync t =
  Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.syncs_sent;
  (match t.ctx.Ctx.trace with
  | None ->
    Qs_sched.Sched.suspend (fun resume -> t.enqueue (Request.Sync resume))
  | Some tr ->
    let t0 = Trace.now tr in
    Qs_sched.Sched.suspend (fun resume -> t.enqueue (Request.Sync resume));
    Trace.record tr ~proc:(Processor.id t.proc)
      (Trace.Sync_round_trip (Trace.now tr -. t0)));
  t.synced <- true

let sync t =
  touch t;
  if t.synced && t.ctx.Ctx.config.Config.dyn_sync then begin
    Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.syncs_elided;
    match t.ctx.Ctx.trace with
    | Some tr -> Trace.record tr ~proc:(Processor.id t.proc) Trace.Sync_elided
    | None -> ()
  end
  else force_sync t

let query t f =
  touch t;
  Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.queries;
  if t.ctx.Ctx.config.Config.client_query then begin
    (* Modified query rule (§3.2): synchronize, then run [f] on the client.
       No packaging, no result transfer, and the OCaml compiler sees the
       call statically. *)
    sync t;
    f ()
  end
  else begin
    (* Original rule (Fig. 10a): package the call, round-trip the result. *)
    Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.packaged_queries;
    let t0 =
      match t.ctx.Ctx.trace with Some tr -> Trace.now tr | None -> 0.0
    in
    let result = Qs_sched.Ivar.create () in
    t.logged <- t.logged + 1;
    t.enqueue (Request.Call (fun () -> Qs_sched.Ivar.fill result (f ())));
    let v = Qs_sched.Ivar.read result in
    (match t.ctx.Ctx.trace with
    | Some tr ->
      Trace.record tr ~proc:(Processor.id t.proc)
        (Trace.Query_round_trip (Trace.now tr -. t0))
    | None -> ());
    (* The handler has drained everything we logged up to the query. *)
    t.synced <- true;
    v
  end

(* Promise-pipelined query (the deferred flavour of Fig. 10a): package
   [f], enqueue it, and hand the client a promise instead of blocking on
   the round trip.  The handler fulfils the promise when it reaches the
   request, so k pipelined queries against k handlers overlap their
   round trips — forcing any of them costs at most the slowest handler,
   not the sum.

   Synced-status rules (§3.4.1 extended to deferred rendezvous): issuing
   the query invalidates [synced] exactly like a call, because the
   handler has pending work again.  Forcing the promise re-establishes
   [synced] — the handler has provably drained everything logged up to
   the query — but only if nothing was logged through this registration
   in between (checked via the [logged] watermark) and the block is
   still open.  The [synced] write happens in the promise's force hook,
   which runs on the forcing client fiber, never on the handler: the
   field stays single-writer. *)
let query_async t f =
  touch t;
  Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.queries;
  Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.promises_created;
  t.synced <- false;
  t.logged <- t.logged + 1;
  let mark = t.logged in
  let stats = t.ctx.Ctx.stats in
  let promise =
    Qs_sched.Promise.create
      ~on_force:(fun was_ready ->
        Qs_obs.Counter.incr
          (if was_ready then stats.Stats.promises_ready
           else stats.Stats.promises_blocked);
        if (not t.closed) && t.logged = mark then t.synced <- true)
      ()
  in
  (match t.ctx.Ctx.trace with
  | Some tr ->
    (* Span from issue to fulfilment: the handler-side pipeline latency,
       recorded by the fulfilling handler via the completion callback. *)
    let proc = Processor.id t.proc in
    let t0 = Trace.now tr in
    Qs_sched.Promise.on_fulfill promise (fun _ ->
      Trace.record tr ~proc (Trace.Query_pipelined (Trace.now tr -. t0)))
  | None -> ());
  t.enqueue
    (Request.Query (fun () -> Qs_sched.Promise.fulfill promise (f ())));
  promise

(* Block exit: append the END marker in both modes (the end rule).  In
   queue-of-queues mode it makes the handler recycle the private queue and
   move on to the next one; in lock mode the caller (Separate) additionally
   releases the handler lock, and the marker keeps registration boundaries
   visible to the handler loop (and counted in [Stats.ends_drained])
   instead of being silently dropped. *)
let close t =
  if t.closed then invalid_arg "Scoop.Registration: closed twice";
  t.closed <- true;
  t.enqueue Request.End
