(* Client-side handle on one reserved handler within a separate block.

   A registration is what the compiled code of Fig. 8 calls the private
   queue pointer [h_p]: the client logs asynchronous calls, queries and
   sync requests through it.  It also carries the dynamically-tracked
   synced status of §3.4.1: while [synced] is true the handler is parked
   having drained everything this client logged, so a repeated sync can be
   elided and client-side reads of handler data are race-free.

   Failure discipline (SCOOP's dirty-processor rule, Morandi et al.
   arXiv:1101.1038): an asynchronous call has no rendezvous to reject, so
   when its closure raises on the handler the exception *poisons* the
   registration.  Every subsequent operation through the handle — and the
   separate block's exit — raises [Handler_failure] carrying the original
   exception.  Blocking queries and pipelined promises have a rendezvous,
   so their failures are delivered there (re-raise / rejection) and do
   not poison.  [poison] is the one field written by the handler fiber
   and read by the client, hence the [Atomic.t] (the other mutable fields
   stay single-writer on the client fiber).

   Registrations are only valid between the separate block's entry and
   exit; [call]/[query]/[sync] raise once the block has closed. *)

exception Handler_failure of int * exn

let () =
  Printexc.register_printer (function
    | Handler_failure (id, e) ->
      Some
        (Printf.sprintf "Scoop.Handler_failure(processor %d, %s)" id
           (Printexc.to_string e))
    | _ -> None)

(* Registration ids: a process-global counter starting at 1, so [0] can
   mean "unattributed" in trace events.  Every trace event a registration
   emits (and every request it enqueues) carries this id, which is what
   lets conformance checking partition a merged multi-client event stream
   back into per-registration streams. *)
let next_rid = Atomic.make 1

type t = {
  rid : int; (* unique id of this registration, for event attribution *)
  proc : Processor.t;
  ctx : Ctx.t;
  enqueue : Request.t -> unit;
  flat : bool;
      (* may this registration issue pooled flat requests?  True for the
         single-reservation (arity-named) entries, false for multi-
         reservation blocks ([many]/[when_]), which keep the packaged
         fallback *)
  mutable synced : bool;
  mutable closed : bool;
  mutable logged : int;
      (* requests logged so far; lets a forced promise prove that nothing
         was logged after it was issued (see [query_async]) *)
  poison : (exn * Printexc.raw_backtrace) option Atomic.t;
      (* first failed asynchronous call, set by the handler fiber *)
  mutable fail_to : exn -> Printexc.raw_backtrace -> unit;
      (* the [poison] completion, preallocated once per registration so
         logging a call shares one closure instead of building one each
         time; knotted right after [make] builds the record *)
  remote : Processor.reg_proxy option;
      (* [Some px] iff the reserved processor is remote: every operation
         is rerouted through the per-registration wire proxy instead of
         the local enqueue (the packaged Fig. 10a shapes, shipped) *)
}

let processor t = t.proc
let rid t = t.rid
let is_synced t = t.synced
let is_poisoned t = Atomic.get t.poison <> None
let poisoned t = Option.map fst (Atomic.get t.poison)

let check_poison t =
  match Atomic.get t.poison with
  | Some (e, _) -> raise (Handler_failure (Processor.id t.proc, e))
  | None -> ()

(* The handler-side failure completion of an asynchronous call: record
   the first failure (later ones are already-dirty, only counted at the
   processor level) and make it visible to the client. *)
let poison t e bt =
  if Atomic.compare_and_set t.poison None (Some (e, bt)) then begin
    Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.poisoned_registrations;
    match t.ctx.Ctx.trace with
    | Some tr ->
      Trace.record tr ~proc:(Processor.id t.proc) ~client:t.rid
        Trace.Registration_poisoned
    | None -> ()
  end

let make ?(flat = false) ~proc ~ctx ~enqueue () =
  let t =
    {
      rid = Atomic.fetch_and_add next_rid 1;
      proc;
      ctx;
      enqueue;
      flat;
      synced = false;
      closed = false;
      logged = 0;
      poison = Atomic.make None;
      fail_to = (fun _ _ -> ());
      remote = None;
    }
  in
  t.fail_to <- poison t;
  t

(* Remote registration: open the wire-level registration on the node and
   install this registration's poison completion as the proxy's poison
   callback — the demultiplexer invokes it when the node reports a
   handler failure on this stream, or when the connection is lost, so
   the dirty-processor rule crosses the connection unchanged. *)
let make_remote ~proc ~ctx () =
  let px = Processor.remote_open proc in
  let t =
    {
      rid = Atomic.fetch_and_add next_rid 1;
      proc;
      ctx;
      enqueue =
        (fun _ ->
          invalid_arg "Scoop.Registration: remote registration has no local queue");
      flat = false;
      synced = false;
      closed = false;
      logged = 0;
      poison = Atomic.make None;
      fail_to = (fun _ _ -> ());
      remote = Some px;
    }
  in
  t.fail_to <- poison t;
  px.Processor.px_on_poison t.fail_to;
  t

(* Flat fast path available?  Requires a single-reservation registration
   and the pooling knob. *)
let use_flat t = t.flat && t.ctx.Ctx.config.Config.pooling

(* Pop a record from the processor's pool; [Processor.no_flat] on a
   miss, which sends the request down the packaged fallback (an empty
   pool degrades to the baseline, never below it).  The processor
   accounts the representation counters. *)
let alloc_flat t = Processor.alloc_flat t.proc

let no_flat = Processor.no_flat

(* Lifecycle stamps.  [t_birth] is read once at operation entry; the
   second clock read for [t_admit] is only paid when admission can
   actually block (a bounded mailbox) — otherwise the birth stamp is
   reused and the nanoscale admit branch folds into queueing time. *)
let admit_stamp t birth =
  if t.ctx.Ctx.config.Config.bound > 0 then Qs_obs.Clock.now_ns () else birth

let touch t =
  if t.closed then
    invalid_arg "Scoop.Registration: used outside its separate block";
  check_poison t;
  match t.ctx.Ctx.eve with
  | Some eve -> Eve.lookup eve (Processor.id t.proc)
  | None -> ()

(* Effective deadline of a blocking operation: the explicit [?timeout]
   if given, else the configuration's [default_deadline]. *)
let effective_timeout t explicit =
  match explicit with
  | Some _ -> explicit
  | None -> t.ctx.Ctx.config.Config.default_deadline

(* A request-path deadline expired before fulfilment.  Deliberately no
   poisoning: a timeout is a client-side decision to stop waiting, not a
   handler failure — the handler will still serve the request, and the
   registration stays usable. *)
let timed_out t =
  let stats = t.ctx.Ctx.stats in
  Qs_obs.Counter.incr stats.Stats.timeouts_fired;
  Qs_obs.Counter.incr stats.Stats.deadline_exceeded;
  (match t.ctx.Ctx.trace with
  | Some tr ->
    Trace.record tr ~proc:(Processor.id t.proc) ~client:t.rid
      Trace.Request_timeout
  | None -> ());
  raise Qs_sched.Timer.Timeout

(* Log an asynchronous call in the packaged-closure representation —
   the fallback for multi-reservation registrations, disabled pooling,
   and traced runs (the trace wraps [run] with span bookkeeping, which
   needs the closure form). *)
let log_call_packaged t ~birth ~admit run =
  match t.ctx.Ctx.trace with
  | None ->
    t.enqueue
      (Request.Call
         {
           run;
           fail = t.fail_to;
           kind = Request.K_call;
           reg = t.rid;
           t_birth = birth;
           t_admit = admit;
         })
  | Some tr ->
    (* Trace the queueing delay: logged now, executed by the handler
       later (§7 instrumentation). *)
    let proc = Processor.id t.proc in
    let rid = t.rid in
    Trace.record tr ~proc ~client:rid Trace.Call_logged;
    let logged = Trace.now tr in
    t.enqueue
      (Request.Call
         {
           run =
             (fun () ->
               Trace.record tr ~proc ~client:rid
                 (Trace.Call_executed (Trace.now tr -. logged));
               run ());
           fail = t.fail_to;
           kind = Request.K_call;
           reg = rid;
           t_birth = birth;
           t_admit = admit;
         })

let call t f =
  touch t;
  Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.calls;
  (* An asynchronous call invalidates the synced status: the handler has
     work again and may be mid-execution during subsequent client reads. *)
  t.synced <- false;
  t.logged <- t.logged + 1;
  let birth = Qs_obs.Clock.now_ns () in
  match t.remote with
  | Some px ->
    (* Remote: ship the thunk itself.  No trace wrapper — a wrapper
       closure would capture the local trace buffer, which must not
       cross the wire; the logging instant is recorded locally. *)
    (match t.ctx.Ctx.trace with
    | Some tr ->
      Trace.record tr ~proc:(Processor.id t.proc) ~client:t.rid
        Trace.Call_logged
    | None -> ());
    px.Processor.px_call f;
    (* Fire-and-forget: no reply carries a completion to time against,
       so the remote call histogram measures the send-side handoff
       (serialization + socket write + any transport backpressure). *)
    Qs_obs.Histogram.record t.ctx.Ctx.stats.Stats.h_call_remote
      (Qs_obs.Clock.now_ns () - birth)
  | None ->
    Processor.admit t.proc;
    let admit = admit_stamp t birth in
    let r =
      if use_flat t && Option.is_none t.ctx.Ctx.trace then alloc_flat t
      else no_flat
    in
    if r != no_flat then begin
      (* Flat fast path: the thunk goes straight into the pooled record's
         inline slot — no packaged record, no Call block, no per-call
         failure closure.  [fail_to] is rewritten only when the record
         last served a different registration. *)
      r.Request.tag <- Request.Call0;
      r.Request.f0 <- f;
      r.Request.reg <- t.rid;
      r.Request.t_birth <- birth;
      r.Request.t_admit <- admit;
      if r.Request.fail_to != t.fail_to then r.Request.fail_to <- t.fail_to;
      t.enqueue r.Request.self
    end
    else log_call_packaged t ~birth ~admit f

let call1 t f x =
  touch t;
  Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.calls;
  t.synced <- false;
  t.logged <- t.logged + 1;
  let birth = Qs_obs.Clock.now_ns () in
  match t.remote with
  | Some px ->
    (match t.ctx.Ctx.trace with
    | Some tr ->
      Trace.record tr ~proc:(Processor.id t.proc) ~client:t.rid
        Trace.Call_logged
    | None -> ());
    px.Processor.px_call (fun () -> f x);
    Qs_obs.Histogram.record t.ctx.Ctx.stats.Stats.h_call_remote
      (Qs_obs.Clock.now_ns () - birth)
  | None ->
    Processor.admit t.proc;
    let admit = admit_stamp t birth in
    let r =
      if use_flat t && Option.is_none t.ctx.Ctx.trace then alloc_flat t
      else no_flat
    in
    if r != no_flat then begin
      (* One-argument flat call: function and argument stored inline under
         the uniform-representation coercion (the [f1]/[a1] pairing
         invariant — both written here, from this one typed call site). *)
      r.Request.tag <- Request.Call1;
      r.Request.f1 <- (Obj.magic (f : _ -> unit) : Obj.t -> unit);
      r.Request.a1 <- Obj.repr x;
      r.Request.reg <- t.rid;
      r.Request.t_birth <- birth;
      r.Request.t_admit <- admit;
      if r.Request.fail_to != t.fail_to then r.Request.fail_to <- t.fail_to;
      t.enqueue r.Request.self
    end
    else log_call_packaged t ~birth ~admit (fun () -> f x)

let force_sync ?timeout t =
  Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.syncs_sent;
  let round_trip () =
    match t.remote with
    | Some px -> (
      let timeout = effective_timeout t timeout in
      if Option.is_some timeout then
        Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.timer_arms;
      (* The wire sync: the node acknowledges once every request this
         registration logged before it has been served (the wait/release
         pair of §3.2, stretched over the connection).  A timeout leaves
         the sync outstanding node-side, exactly like the local flavour
         leaves the Sync request logged. *)
      try px.Processor.px_sync ~timeout
      with Qs_sched.Timer.Timeout -> timed_out t)
    | None -> (
      match effective_timeout t timeout with
    | None ->
      Qs_sched.Sched.suspend (fun resume -> t.enqueue (Request.Sync resume))
    | Some dt -> (
      Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.timer_arms;
      match
        Qs_sched.Sched.suspend_timeout
          (fun resume -> t.enqueue (Request.Sync resume))
          dt
      with
      | `Resumed -> ()
      | `Timed_out ->
        (* The Sync request stays logged; when the handler reaches it the
           resumer is a no-op (its claim was lost to the timer).  The
           synced status is *not* established. *)
        timed_out t))
  in
  (match t.ctx.Ctx.trace with
  | None -> round_trip ()
  | Some tr ->
    let t0 = Trace.now tr in
    round_trip ();
    Trace.record tr ~proc:(Processor.id t.proc) ~client:t.rid
      (Trace.Sync_round_trip (Trace.now tr -. t0)));
  t.synced <- true

let sync ?timeout t =
  touch t;
  (* A known-dirty registration surfaces its failure at the sync point
     without a round trip and without counting an elision: an elision
     on a poisoned registration is exactly what the conformance model
     forbids, and the round trip would learn nothing — the failure is
     already in hand, and the poison is never cleared, so raising now
     is the dirty-processor rule verbatim. *)
  check_poison t;
  if t.synced && t.ctx.Ctx.config.Config.dyn_sync then begin
    Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.syncs_elided;
    match t.ctx.Ctx.trace with
    | Some tr ->
      Trace.record tr ~proc:(Processor.id t.proc) ~client:t.rid
        Trace.Sync_elided
    | None -> ()
  end
  else force_sync ?timeout t;
  (* The sync point is where a dirty handler surfaces (SCOOP raises the
     pending exception when client and handler meet): by the time the
     round trip completed, every previously logged call has been served
     and any failure among them recorded. *)
  check_poison t

(* Tail of a packaged-flavour round trip, shared by the ivar and cell
   representations: close the trace span, re-establish synced (the
   handler has drained everything logged up to the query), surface an
   earlier failed call (matching the client-executed flavour, where
   [sync] raises before [f] ever runs), then unwrap. *)
let finish_round_trip t ~t0 outcome =
  (match t.ctx.Ctx.trace with
  | Some tr ->
    Trace.record tr ~proc:(Processor.id t.proc) ~client:t.rid
      (Trace.Query_round_trip (Trace.now tr -. t0))
  | None -> ());
  t.synced <- true;
  check_poison t;
  match outcome with
  | Ok v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt

(* Blocking wait on a packaged query's heap ivar. *)
let await_ivar ?timeout t result ~t0 =
  let outcome =
    match effective_timeout t timeout with
    | None -> Qs_sched.Ivar.result result
    | Some dt -> (
      Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.timer_arms;
      match Qs_sched.Ivar.result_timeout result dt with
      | Some outcome -> outcome
      | None ->
        (* The packaged call stays logged and will still run; only the
           rendezvous is abandoned.  No poisoning, no synced status. *)
        timed_out t)
  in
  finish_round_trip t ~t0 outcome

(* Blocking wait on a flat query's embedded cell.  On success the record
   is recycled here — the awaiting client is the last party touching it,
   after the outcome has been consumed.  On timeout the client abandons
   the rendezvous by error-filling the cell at its generation: the
   cell's CAS then elects exactly one recycler — if the abandon wins,
   the handler's later fill fails and *it* recycles; if the handler
   already filled, the handler is done with the record and the client
   recycles on its way out.  Either way the slot returns to the pool
   (an abandoned record must never be recycled by the abandoning side
   alone: the handler might be about to run the query). *)
let await_cell ?timeout t (r : Request.flat) ~gen ~t0 =
  let outcome =
    match effective_timeout t timeout with
    | None -> Qs_sched.Cell.result r.Request.cell ~gen
    | Some dt -> (
      Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.timer_arms;
      match Qs_sched.Cell.result_timeout r.Request.cell ~gen dt with
      | Some outcome -> outcome
      | None ->
        let bt = Printexc.get_callstack 0 in
        if
          not
            (Qs_sched.Cell.try_fill_error ~bt r.Request.cell ~gen
               Qs_sched.Timer.Timeout)
        then Processor.recycle_flat t.proc r;
        timed_out t)
  in
  Processor.recycle_flat t.proc r;
  Obj.obj (finish_round_trip t ~t0 outcome)

(* Remote packaged query (Fig. 10a over the wire): the producer closure
   ships to the node; the demultiplexer fills the rendezvous with the
   typed completion that came back.  [client_query] is deliberately
   ignored for remote registrations — running the producer client-side
   is meaningless when the handler's state lives in the node's globals.
   The closure is shipped as-is (no trace wrapper: a wrapper would
   capture the local trace buffer, which must not cross the wire). *)
let remote_query ?timeout t px f =
  Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.packaged_queries;
  let t0 =
    match t.ctx.Ctx.trace with Some tr -> Trace.now tr | None -> 0.0
  in
  t.logged <- t.logged + 1;
  let timeout = effective_timeout t timeout in
  if Option.is_some timeout then
    Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.timer_arms;
  let outcome =
    match px.Processor.px_query ~timeout f with
    | v -> Ok v
    | exception Qs_sched.Timer.Timeout ->
      (* The wire request stays outstanding node-side and will still be
         served; only the rendezvous is abandoned (same contract as the
         local packaged flavour). *)
      timed_out t
    | exception e -> Error (e, Printexc.get_raw_backtrace ())
  in
  finish_round_trip t ~t0 outcome

let query ?timeout t f =
  touch t;
  Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.queries;
  match t.remote with
  | Some px ->
    Obj.obj
      (remote_query ?timeout t px
         (Obj.magic (f : unit -> _) : unit -> Obj.t))
  | None ->
  let birth = Qs_obs.Clock.now_ns () in
  if t.ctx.Ctx.config.Config.client_query then begin
    (* Modified query rule (§3.2): synchronize, then run [f] on the client.
       No packaging, no result transfer, and the OCaml compiler sees the
       call statically.  A raising [f] raises here naturally; a failure
       among the previously logged calls surfaces from [sync].  The
       deadline bounds the sync round trip — the only blocking part.
       No handler request exists to stamp, so the client records the
       whole sync-then-run latency itself. *)
    sync ?timeout t;
    let v = f () in
    Qs_obs.Histogram.record t.ctx.Ctx.stats.Stats.h_query_local
      (Qs_obs.Clock.now_ns () - birth);
    v
  end
  else begin
    (* Original rule (Fig. 10a): package the call, round-trip the result.
       A raising [f] rejects the rendezvous and re-raises here, making
       the packaged flavour observably identical to the client-executed
       one. *)
    Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.packaged_queries;
    let t0 =
      match t.ctx.Ctx.trace with Some tr -> Trace.now tr | None -> 0.0
    in
    t.logged <- t.logged + 1;
    Processor.admit t.proc;
    let admit = admit_stamp t birth in
    let r = if use_flat t then alloc_flat t else no_flat in
    if r != no_flat then begin
      (* Flat round trip: the completion cell is embedded in the pooled
         record — no ivar allocation, no result-filling closure. *)
      let gen = Qs_sched.Cell.generation r.Request.cell in
      r.Request.tag <- Request.Query0;
      r.Request.cgen <- gen;
      r.Request.q0 <- (Obj.magic (f : unit -> _) : unit -> Obj.t);
      r.Request.reg <- t.rid;
      r.Request.t_birth <- birth;
      r.Request.t_admit <- admit;
      t.enqueue r.Request.self;
      await_cell ?timeout t r ~gen ~t0
    end
    else begin
      let result = Qs_sched.Ivar.create () in
      t.enqueue
        (Request.Call
           {
             run = (fun () -> Qs_sched.Ivar.fill result (f ()));
             fail =
               (fun e bt ->
                 ignore (Qs_sched.Ivar.try_fill_error ~bt result e : bool));
             kind = Request.K_query;
             reg = t.rid;
             t_birth = birth;
             t_admit = admit;
           });
      await_ivar ?timeout t result ~t0
    end
  end

let query1 ?timeout t f x =
  touch t;
  Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.queries;
  match t.remote with
  | Some px ->
    Obj.obj (remote_query ?timeout t px (fun () -> Obj.repr (f x)))
  | None ->
  let birth = Qs_obs.Clock.now_ns () in
  if t.ctx.Ctx.config.Config.client_query then begin
    sync ?timeout t;
    let v = f x in
    Qs_obs.Histogram.record t.ctx.Ctx.stats.Stats.h_query_local
      (Qs_obs.Clock.now_ns () - birth);
    v
  end
  else begin
    Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.packaged_queries;
    let t0 =
      match t.ctx.Ctx.trace with Some tr -> Trace.now tr | None -> 0.0
    in
    t.logged <- t.logged + 1;
    Processor.admit t.proc;
    let admit = admit_stamp t birth in
    let r = if use_flat t then alloc_flat t else no_flat in
    if r != no_flat then begin
      let gen = Qs_sched.Cell.generation r.Request.cell in
      r.Request.tag <- Request.Query1;
      r.Request.cgen <- gen;
      r.Request.q1 <- (Obj.magic (f : _ -> _) : Obj.t -> Obj.t);
      r.Request.a1 <- Obj.repr x;
      r.Request.reg <- t.rid;
      r.Request.t_birth <- birth;
      r.Request.t_admit <- admit;
      t.enqueue r.Request.self;
      await_cell ?timeout t r ~gen ~t0
    end
    else begin
      let result = Qs_sched.Ivar.create () in
      t.enqueue
        (Request.Call
           {
             run = (fun () -> Qs_sched.Ivar.fill result (f x));
             fail =
               (fun e bt ->
                 ignore (Qs_sched.Ivar.try_fill_error ~bt result e : bool));
             kind = Request.K_query;
             reg = t.rid;
             t_birth = birth;
             t_admit = admit;
           });
      await_ivar ?timeout t result ~t0
    end
  end

(* Promise-pipelined query (the deferred flavour of Fig. 10a): package
   [f], enqueue it, and hand the client a promise instead of blocking on
   the round trip.  The handler fulfils the promise when it reaches the
   request, so k pipelined queries against k handlers overlap their
   round trips — forcing any of them costs at most the slowest handler,
   not the sum.

   A raising [f] rejects the promise (counted under [rejected_promises]);
   forcing it re-raises on the client.  The rendezvous still happened, so
   rejection does not poison the registration.

   Synced-status rules (§3.4.1 extended to deferred rendezvous): issuing
   the query invalidates [synced] exactly like a call, because the
   handler has pending work again.  Forcing the promise re-establishes
   [synced] — the handler has provably drained everything logged up to
   the query — but only if nothing was logged through this registration
   in between (checked via the [logged] watermark) and the block is
   still open.  The [synced] write happens in the promise's force hook,
   which runs on the forcing client fiber, never on the handler: the
   field stays single-writer. *)
let query_async t f =
  touch t;
  Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.queries;
  Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.promises_created;
  t.synced <- false;
  t.logged <- t.logged + 1;
  let mark = t.logged in
  let stats = t.ctx.Ctx.stats in
  let trace = t.ctx.Ctx.trace in
  let proc = Processor.id t.proc in
  let rid = t.rid in
  let dyn = t.ctx.Ctx.config.Config.dyn_sync in
  (* The hook must consult the promise it belongs to (for the handler's
     drained hint), so knot it through a slot. *)
  let promise_slot = ref None in
  let on_force was_ready =
    Qs_obs.Counter.incr
      (if was_ready then stats.Stats.promises_ready
       else stats.Stats.promises_blocked);
    if (not t.closed) && t.logged = mark then begin
      t.synced <- true;
      (* Dynamic handler-side sync elision (§3.4.1 generalized to
         pipelined traffic): the handler saw a drained log at
         fulfilment and the watermark proves nothing was logged
         since, so this force doubles as the sync — the separate
         round trip that would re-establish synced status is
         skipped, and counted as elided. *)
      match !promise_slot with
      | Some p
        when dyn && Qs_sched.Promise.was_drained p
             && Atomic.get t.poison = None -> (
        (* Never counted on a dirty registration: an elision there
           would claim a sync the conformance model forbids — the
           pending failure still has to surface at a real sync point. *)
        Qs_obs.Counter.incr stats.Stats.syncs_elided;
        match trace with
        | Some tr -> Trace.record tr ~proc ~client:rid Trace.Sync_elided
        | None -> ())
      | _ -> ()
    end
  in
  let promise =
    match t.remote with
    | Some px ->
      (* Remote pipelined query: the proxy ships the producer and hands
         back the promise the demultiplexer will fulfil.  The drained
         hint is not forwarded over the wire, so [was_drained] stays
         false and forcing never elides a remote sync — conservative,
         and correct.  The uniform-representation coercion mirrors the
         flat [q0] pairing invariant: producer and promise are paired at
         this one typed call site. *)
      (Obj.magic
         (px.Processor.px_query_async
            (Obj.magic (f : unit -> _) : unit -> Obj.t)
            ~on_force)
        : _ Qs_sched.Promise.t)
    | None -> Qs_sched.Promise.create ~on_force ()
  in
  promise_slot := Some promise;
  (match trace with
  | Some tr ->
    (* Span from issue to fulfilment: the handler-side pipeline latency,
       recorded by the fulfilling handler via the completion callback. *)
    let t0 = Trace.now tr in
    Qs_sched.Promise.on_fulfill promise (fun _ ->
      Trace.record tr ~proc ~client:rid
        (Trace.Query_pipelined (Trace.now tr -. t0)))
  | None -> ());
  (match t.remote with
  | Some _ -> () (* already shipped through the proxy, which stamps and
                    records the wire round trip itself *)
  | None ->
    let birth = Qs_obs.Clock.now_ns () in
    Processor.admit t.proc;
    let admit = admit_stamp t birth in
    let r = if use_flat t then alloc_flat t else no_flat in
    if r != no_flat then begin
      (* Flat pipelined query: producer and promise stored inline; the
         handler decodes the tag, fulfils the promise (recording the
         drained hint first) and recycles the record itself — the promise,
         not the record, is the client's rendezvous. *)
      r.Request.tag <- Request.Pipelined;
      r.Request.q0 <- (Obj.magic (f : unit -> _) : unit -> Obj.t);
      r.Request.pr <- Obj.repr promise;
      r.Request.reg <- t.rid;
      r.Request.t_birth <- birth;
      r.Request.t_admit <- admit;
      t.enqueue r.Request.self
    end
    else
      t.enqueue
        (Request.Query
           {
             run = (fun () -> Qs_sched.Promise.fulfill promise (f ()));
             fail =
               (fun e bt ->
                 Qs_obs.Counter.incr stats.Stats.rejected_promises;
                 (match trace with
                 | Some tr ->
                   Trace.record tr ~proc ~client:rid Trace.Promise_rejected
                 | None -> ());
                 ignore
                   (Qs_sched.Promise.try_fulfill_error ~bt promise e : bool));
             kind = Request.K_pipelined;
             reg = rid;
             t_birth = birth;
             t_admit = admit;
           }));
  promise

(* Block exit: append the END marker in both modes (the end rule).  In
   queue-of-queues mode it makes the handler recycle the private queue and
   move on to the next one; in lock mode the caller (Separate) additionally
   releases the handler lock, and the marker keeps registration boundaries
   visible to the handler loop (and counted in [Stats.ends_drained])
   instead of being silently dropped.  Deliberately no poison check here:
   [close] runs in the block's [finally], and Separate re-surfaces the
   poison *after* the block has fully exited. *)
let close t =
  if t.closed then invalid_arg "Scoop.Registration: closed twice";
  t.closed <- true;
  match t.remote with
  | Some px -> px.Processor.px_close ()
  | None -> t.enqueue Request.End
