(* Client-side handle on one reserved handler within a separate block.

   A registration is what the compiled code of Fig. 8 calls the private
   queue pointer [h_p]: the client logs asynchronous calls, queries and
   sync requests through it.  It also carries the dynamically-tracked
   synced status of §3.4.1: while [synced] is true the handler is parked
   having drained everything this client logged, so a repeated sync can be
   elided and client-side reads of handler data are race-free.

   Failure discipline (SCOOP's dirty-processor rule, Morandi et al.
   arXiv:1101.1038): an asynchronous call has no rendezvous to reject, so
   when its closure raises on the handler the exception *poisons* the
   registration.  Every subsequent operation through the handle — and the
   separate block's exit — raises [Handler_failure] carrying the original
   exception.  Blocking queries and pipelined promises have a rendezvous,
   so their failures are delivered there (re-raise / rejection) and do
   not poison.  [poison] is the one field written by the handler fiber
   and read by the client, hence the [Atomic.t] (the other mutable fields
   stay single-writer on the client fiber).

   Registrations are only valid between the separate block's entry and
   exit; [call]/[query]/[sync] raise once the block has closed. *)

exception Handler_failure of int * exn

let () =
  Printexc.register_printer (function
    | Handler_failure (id, e) ->
      Some
        (Printf.sprintf "Scoop.Handler_failure(processor %d, %s)" id
           (Printexc.to_string e))
    | _ -> None)

type t = {
  proc : Processor.t;
  ctx : Ctx.t;
  enqueue : Request.t -> unit;
  mutable synced : bool;
  mutable closed : bool;
  mutable logged : int;
      (* requests logged so far; lets a forced promise prove that nothing
         was logged after it was issued (see [query_async]) *)
  poison : (exn * Printexc.raw_backtrace) option Atomic.t;
      (* first failed asynchronous call, set by the handler fiber *)
}

let make ~proc ~ctx ~enqueue =
  {
    proc;
    ctx;
    enqueue;
    synced = false;
    closed = false;
    logged = 0;
    poison = Atomic.make None;
  }

let processor t = t.proc
let is_synced t = t.synced
let is_poisoned t = Atomic.get t.poison <> None

let check_poison t =
  match Atomic.get t.poison with
  | Some (e, _) -> raise (Handler_failure (Processor.id t.proc, e))
  | None -> ()

(* The handler-side failure completion of an asynchronous call: record
   the first failure (later ones are already-dirty, only counted at the
   processor level) and make it visible to the client. *)
let poison t e bt =
  if Atomic.compare_and_set t.poison None (Some (e, bt)) then begin
    Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.poisoned_registrations;
    match t.ctx.Ctx.trace with
    | Some tr ->
      Trace.record tr ~proc:(Processor.id t.proc) Trace.Registration_poisoned
    | None -> ()
  end

let touch t =
  if t.closed then
    invalid_arg "Scoop.Registration: used outside its separate block";
  check_poison t;
  match t.ctx.Ctx.eve with
  | Some eve -> Eve.lookup eve (Processor.id t.proc)
  | None -> ()

(* Effective deadline of a blocking operation: the explicit [?timeout]
   if given, else the configuration's [default_deadline]. *)
let effective_timeout t explicit =
  match explicit with
  | Some _ -> explicit
  | None -> t.ctx.Ctx.config.Config.default_deadline

(* A request-path deadline expired before fulfilment.  Deliberately no
   poisoning: a timeout is a client-side decision to stop waiting, not a
   handler failure — the handler will still serve the request, and the
   registration stays usable. *)
let timed_out t =
  let stats = t.ctx.Ctx.stats in
  Qs_obs.Counter.incr stats.Stats.timeouts_fired;
  Qs_obs.Counter.incr stats.Stats.deadline_exceeded;
  raise Qs_sched.Timer.Timeout

let call t f =
  touch t;
  Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.calls;
  (* An asynchronous call invalidates the synced status: the handler has
     work again and may be mid-execution during subsequent client reads. *)
  t.synced <- false;
  t.logged <- t.logged + 1;
  Processor.admit t.proc;
  let fail = poison t in
  match t.ctx.Ctx.trace with
  | None -> t.enqueue (Request.Call { run = f; fail })
  | Some tr ->
    (* Trace the queueing delay: logged now, executed by the handler
       later (§7 instrumentation). *)
    let proc = Processor.id t.proc in
    Trace.record tr ~proc Trace.Call_logged;
    let logged = Trace.now tr in
    t.enqueue
      (Request.Call
         {
           run =
             (fun () ->
               Trace.record tr ~proc
                 (Trace.Call_executed (Trace.now tr -. logged));
               f ());
           fail;
         })

let force_sync ?timeout t =
  Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.syncs_sent;
  let round_trip () =
    match effective_timeout t timeout with
    | None ->
      Qs_sched.Sched.suspend (fun resume -> t.enqueue (Request.Sync resume))
    | Some dt -> (
      Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.timer_arms;
      match
        Qs_sched.Sched.suspend_timeout
          (fun resume -> t.enqueue (Request.Sync resume))
          dt
      with
      | `Resumed -> ()
      | `Timed_out ->
        (* The Sync request stays logged; when the handler reaches it the
           resumer is a no-op (its claim was lost to the timer).  The
           synced status is *not* established. *)
        timed_out t)
  in
  (match t.ctx.Ctx.trace with
  | None -> round_trip ()
  | Some tr ->
    let t0 = Trace.now tr in
    round_trip ();
    Trace.record tr ~proc:(Processor.id t.proc)
      (Trace.Sync_round_trip (Trace.now tr -. t0)));
  t.synced <- true

let sync ?timeout t =
  touch t;
  if t.synced && t.ctx.Ctx.config.Config.dyn_sync then begin
    Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.syncs_elided;
    match t.ctx.Ctx.trace with
    | Some tr -> Trace.record tr ~proc:(Processor.id t.proc) Trace.Sync_elided
    | None -> ()
  end
  else force_sync ?timeout t;
  (* The sync point is where a dirty handler surfaces (SCOOP raises the
     pending exception when client and handler meet): by the time the
     round trip completed, every previously logged call has been served
     and any failure among them recorded. *)
  check_poison t

let query ?timeout t f =
  touch t;
  Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.queries;
  if t.ctx.Ctx.config.Config.client_query then begin
    (* Modified query rule (§3.2): synchronize, then run [f] on the client.
       No packaging, no result transfer, and the OCaml compiler sees the
       call statically.  A raising [f] raises here naturally; a failure
       among the previously logged calls surfaces from [sync].  The
       deadline bounds the sync round trip — the only blocking part. *)
    sync ?timeout t;
    f ()
  end
  else begin
    (* Original rule (Fig. 10a): package the call, round-trip the result.
       A raising [f] rejects the result ivar and re-raises here, making
       the packaged flavour observably identical to the client-executed
       one. *)
    Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.packaged_queries;
    let t0 =
      match t.ctx.Ctx.trace with Some tr -> Trace.now tr | None -> 0.0
    in
    let result = Qs_sched.Ivar.create () in
    t.logged <- t.logged + 1;
    Processor.admit t.proc;
    t.enqueue
      (Request.Call
         {
           run = (fun () -> Qs_sched.Ivar.fill result (f ()));
           fail =
             (fun e bt ->
               ignore (Qs_sched.Ivar.try_fill_error ~bt result e : bool));
         });
    let outcome =
      match effective_timeout t timeout with
      | None -> Qs_sched.Ivar.result result
      | Some dt -> (
        Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.timer_arms;
        match Qs_sched.Ivar.result_timeout result dt with
        | Some outcome -> outcome
        | None ->
          (* The packaged call stays logged and will still run; only the
             rendezvous is abandoned.  No poisoning, no synced status. *)
          timed_out t)
    in
    (match t.ctx.Ctx.trace with
    | Some tr ->
      Trace.record tr ~proc:(Processor.id t.proc)
        (Trace.Query_round_trip (Trace.now tr -. t0))
    | None -> ());
    (* The handler has drained everything we logged up to the query. *)
    t.synced <- true;
    (* Match the client-executed flavour: an earlier failed call wins
       over the query's own outcome (there, [sync] raises before [f]
       ever runs). *)
    check_poison t;
    match outcome with
    | Ok v -> v
    | Error (e, bt) -> Printexc.raise_with_backtrace e bt
  end

(* Promise-pipelined query (the deferred flavour of Fig. 10a): package
   [f], enqueue it, and hand the client a promise instead of blocking on
   the round trip.  The handler fulfils the promise when it reaches the
   request, so k pipelined queries against k handlers overlap their
   round trips — forcing any of them costs at most the slowest handler,
   not the sum.

   A raising [f] rejects the promise (counted under [rejected_promises]);
   forcing it re-raises on the client.  The rendezvous still happened, so
   rejection does not poison the registration.

   Synced-status rules (§3.4.1 extended to deferred rendezvous): issuing
   the query invalidates [synced] exactly like a call, because the
   handler has pending work again.  Forcing the promise re-establishes
   [synced] — the handler has provably drained everything logged up to
   the query — but only if nothing was logged through this registration
   in between (checked via the [logged] watermark) and the block is
   still open.  The [synced] write happens in the promise's force hook,
   which runs on the forcing client fiber, never on the handler: the
   field stays single-writer. *)
let query_async t f =
  touch t;
  Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.queries;
  Qs_obs.Counter.incr t.ctx.Ctx.stats.Stats.promises_created;
  t.synced <- false;
  t.logged <- t.logged + 1;
  let mark = t.logged in
  let stats = t.ctx.Ctx.stats in
  let promise =
    Qs_sched.Promise.create
      ~on_force:(fun was_ready ->
        Qs_obs.Counter.incr
          (if was_ready then stats.Stats.promises_ready
           else stats.Stats.promises_blocked);
        if (not t.closed) && t.logged = mark then t.synced <- true)
      ()
  in
  let trace = t.ctx.Ctx.trace in
  (match trace with
  | Some tr ->
    (* Span from issue to fulfilment: the handler-side pipeline latency,
       recorded by the fulfilling handler via the completion callback. *)
    let proc = Processor.id t.proc in
    let t0 = Trace.now tr in
    Qs_sched.Promise.on_fulfill promise (fun _ ->
      Trace.record tr ~proc (Trace.Query_pipelined (Trace.now tr -. t0)))
  | None -> ());
  let proc = Processor.id t.proc in
  Processor.admit t.proc;
  t.enqueue
    (Request.Query
       {
         run = (fun () -> Qs_sched.Promise.fulfill promise (f ()));
         fail =
           (fun e bt ->
             Qs_obs.Counter.incr stats.Stats.rejected_promises;
             (match trace with
             | Some tr -> Trace.record tr ~proc Trace.Promise_rejected
             | None -> ());
             ignore (Qs_sched.Promise.try_fulfill_error ~bt promise e : bool));
       });
  promise

(* Block exit: append the END marker in both modes (the end rule).  In
   queue-of-queues mode it makes the handler recycle the private queue and
   move on to the next one; in lock mode the caller (Separate) additionally
   releases the handler lock, and the marker keeps registration boundaries
   visible to the handler loop (and counted in [Stats.ends_drained])
   instead of being silently dropped.  Deliberately no poison check here:
   [close] runs in the block's [finally], and Separate re-surfaces the
   poison *after* the block has fully exited. *)
let close t =
  if t.closed then invalid_arg "Scoop.Registration: closed twice";
  t.closed <- true;
  t.enqueue Request.End
