(* Separate objects: data owned by a processor.

   SCOOP's type system marks objects residing on another handler as
   [separate] and only allows calls on them inside a separate block that
   reserves their handler.  We enforce the same discipline dynamically:
   every access checks that the registration used actually reserves the
   owning processor, which is the runtime analogue of the static
   "protected by the same separate block" rule of §2.1.

   The accessor closures ([apply_f]/[get_f]/[set_f]) are hoisted into
   the object at creation: [apply]/[get]/[set] then log one-argument
   flat requests through [Registration.call1]/[query1] with the caller's
   function (or value) as the inline argument, so a hot access loop
   allocates nothing per access — previously every access built a fresh
   [fun () -> ...] capture.  [get] routes its polymorphic result through
   the uniform-representation coercion ([Obj.magic]/[Obj.obj]), sound
   because the value produced by [f] is returned unchanged. *)

type 'a t = {
  proc : Processor.t;
  mutable data : 'a;
  apply_f : ('a -> unit) -> unit;
  get_f : ('a -> Obj.t) -> Obj.t;
  set_f : 'a -> unit;
}

let create proc data =
  (* A shared object's payload lives in *this* process; a remote
     processor's state must live in node-side globals instead (shipped
     closures execute against the node's globals — a [Shared.t] captured
     by one would be a silently diverging copy). *)
  if Processor.is_remote proc then
    invalid_arg
      "Scoop.Shared: remote processors cannot own in-process shared        objects; keep their state in module-level globals on the node";
  let rec t =
    {
      proc;
      data;
      apply_f = (fun f -> f t.data);
      get_f = (fun f -> f t.data);
      set_f = (fun v -> t.data <- v);
    }
  in
  t

let proc t = t.proc

let check reg t =
  if Registration.processor reg != t.proc then
    invalid_arg
      "Scoop.Shared: object not protected by this separate block \
       (registration reserves a different processor)"

let apply reg t f =
  check reg t;
  Registration.call1 reg t.apply_f f

let get (type b) reg t (f : _ -> b) : b =
  check reg t;
  Obj.obj (Registration.query1 reg t.get_f (Obj.magic f : _ -> Obj.t))

let set reg t v =
  check reg t;
  Registration.call1 reg t.set_f v

let read_synced reg t =
  check reg t;
  (* Make sure the handler is parked w.r.t. this registration, then hand
     the raw data to the client: the access pattern of the hoisted kernels
     (one sync lifted out of the loop, §3.4.2–3.4.3). *)
  Registration.sync reg;
  t.data
