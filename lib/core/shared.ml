(* Separate objects: data owned by a processor.

   SCOOP's type system marks objects residing on another handler as
   [separate] and only allows calls on them inside a separate block that
   reserves their handler.  We enforce the same discipline dynamically:
   every access checks that the registration used actually reserves the
   owning processor, which is the runtime analogue of the static
   "protected by the same separate block" rule of §2.1. *)

type 'a t = {
  proc : Processor.t;
  mutable data : 'a;
}

let create proc data = { proc; data }

let proc t = t.proc

let check reg t =
  if Registration.processor reg != t.proc then
    invalid_arg
      "Scoop.Shared: object not protected by this separate block \
       (registration reserves a different processor)"

let apply reg t f =
  check reg t;
  Registration.call reg (fun () -> f t.data)

let get reg t f =
  check reg t;
  Registration.query reg (fun () -> f t.data)

let set reg t v =
  check reg t;
  Registration.call reg (fun () -> t.data <- v)

let read_synced reg t =
  check reg t;
  (* Make sure the handler is parked w.r.t. this registration, then hand
     the raw data to the client: the access pattern of the hoisted kernels
     (one sync lifted out of the loop, §3.4.2–3.4.3). *)
  Registration.sync reg;
  t.data
