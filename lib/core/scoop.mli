(** SCOOP/Qs: an efficient runtime for the SCOOP object-oriented
    concurrency model (West, Nanz, Meyer — PPoPP 2015).

    This is the curated client surface.  Entry points: {!run} (or
    {!Runtime.run}), {!Runtime.processor}, {!Runtime.separate}, then
    {!Registration} and {!Shared} operations inside the block; pipelined
    queries return a {!Promise}.  Runtime internals that client code
    should not touch — the per-runtime context, the request
    representation, the EVE shadow bookkeeping — are tucked under
    {!Internal} and are not part of the supported API. *)

module Config = Config
(** Runtime configuration: optimization presets and request-path knobs. *)

module Stats = Stats
(** Instrumentation counters, snapshots and derived ratios. *)

module Promise = Qs_sched.Promise
(** Deferred query results ({!Registration.query_async}): force with
    {!Promise.await}, poll with {!Promise.try_read}, combine with
    {!Promise.both}/{!Promise.all}. *)

module Processor = Processor
(** SCOOP processors ("handlers"): opaque handles used to place shared
    objects and open separate blocks. *)

module Registration = Registration
(** Client-side handle on one reserved handler inside a separate block:
    {!Registration.call}, {!Registration.query},
    {!Registration.query_async}, {!Registration.sync}. *)

module Separate = Separate
(** Reservation internals behind {!Runtime.separate} and friends (the
    arity-named [one]/[two]/[many]/[when_]/[many_when] entry points).
    Client code normally goes through {!Runtime}, which supplies the
    context. *)

module Runtime = Runtime
(** Runtime lifecycle: {!Runtime.run}, {!Runtime.processor}, the
    [separate*] block combinators, stats/trace access. *)

module Shared = Shared
(** Handler-owned objects with ownership-checked access. *)

module Trace = Trace
(** Detailed event tracing over the shared observability sink. *)

module Remote = Remote
(** Distributed runtime surface: {!Remote.listen} hosts handlers behind
    the socket transport (the node side); {!Remote.connect} builds the
    client configuration whose processors are remote proxies.  The same
    workload runs unmodified against an in-process or a remote endpoint
    — shipped closures execute against the {e node's} module-level
    globals (same binary both sides, [Marshal.Closures]). *)

exception Handler_failure of int * exn
(** A handler is {e dirty} for this client (SCOOP's dirty-processor
    rule): an asynchronous call logged through the registration raised
    on the handler, and the failure is re-surfacing on the client — at
    the next {!Registration} operation, at a sync point, or at the
    separate block's exit.  Carries the processor id and the original
    exception.  (Same exception as {!Registration.Handler_failure}.) *)

exception Timeout
(** A deadline expired: a blocking query, sync, promise force,
    reservation or wait condition given a [?timeout] (or running under
    the configuration's [default_deadline]) did not complete in time.
    The operation is abandoned {e without} poisoning the registration —
    the handler still serves what was logged, and the handle stays
    usable.  (Same exception as [Qs_sched.Timer.Timeout].) *)

exception Overloaded of int
(** A bounded mailbox ([Config.bound] > 0) refused or shed a request on
    the processor with that id: raised at admission under the [`Fail]
    overflow policy, and delivered as the failure completion — poisoning
    the registration like any failed call — when [`Shed_oldest] sheds a
    logged request.  (Same exception as {!Processor.Overloaded}.) *)

exception Remote_error of string
(** A handler-side exception crossing a node connection: exception
    identity does not survive marshalling, so the node ships the
    original's [Printexc.to_string] rendering and the client re-raises
    this.  A remote query whose producer raised re-raises it directly;
    a remote {e call} that raised poisons the registration, surfacing as
    [Handler_failure (id, Remote_error msg)]. *)

exception Connection_lost of string
(** The connection to the named node died with operations outstanding:
    every pending remote rendezvous is rejected with this, and every
    open registration on the connection is poisoned with it — a client
    blocked on a remote query gets a typed failure, never a hang. *)

val run :
  ?domains:int ->
  ?config:Config.t ->
  ?grace:float ->
  ?trace:bool ->
  ?obs:Qs_obs.Sink.t ->
  ?on_stall:[ `Raise | `Warn ] ->
  ?on_counters:(Qs_sched.Sched.counters -> unit) ->
  (Runtime.t -> 'a) ->
  'a
(** Alias of {!Runtime.run}, the usual entry point. *)

(** {1 Internals}

    Not part of the supported surface: exposed for the runtime's own
    tests and benchmarks.  No stability guarantees. *)

module Internal : sig
  module Ctx = Ctx
  (** Per-runtime wiring (config, stats, trace sink, EVE table). *)

  module Eve = Eve
  (** EVE handler-table simulation (paper §4.5). *)

  module Request = Request
  (** The client→handler request representation. *)

  module Socket_queue = Qs_remote.Socket_queue
  (** The framed socket transport under the distributed runtime
      (re-exported from [Qs_remote]; use {!Remote} for the supported
      distributed surface). *)

  module Remote_proto = Remote_proto
  (** Wire message types and the handshake guard. *)

  module Remote_client = Remote_client
  (** Per-connection demultiplexer and registration proxies. *)

  module Node = Node
  (** The node's accept loop and serve fibers (behind {!Remote.listen}). *)
end
