(* Client half of the distributed runtime: one connection per node, a
   demultiplexer fiber per connection, and per-registration proxies
   implementing [Processor.reg_proxy].

   The proxy speaks the same Mailbox-shaped interface the in-process
   registration does, so call / query / query_async / sync, typed
   completions, [?timeout] and the dirty-processor rule all work
   unchanged against a processor living on a node:

   - calls are fire-and-forget [Rcall] frames (the logged side of the
     separate rule, now a socket write instead of a private-queue push);
   - blocking queries and syncs park the client fiber on an ivar the
     demultiplexer fills when the completion frame arrives;
   - pipelined queries hand back a promise the demultiplexer fulfils —
     k remote queries in flight overlap their round trips exactly like
     the in-process flavour overlaps handler executions;
   - a handler failure on the node arrives as [Rpoisoned] *in stream
     order*, so the client observes it at the same sync point the
     in-process runtime would surface it.

   Connection loss is a poison event: every open registration on the
   connection is poisoned with [Connection_lost] and every outstanding
   rendezvous is rejected with it — a waiting client gets a typed
   failure, never a hang. *)

module SQ = Qs_remote.Socket_queue

type pending =
  | Blocked of Obj.t Qs_sched.Ivar.t (* a blocking query's rendezvous *)
  | Promised of { p : Obj.t Qs_sched.Promise.t; birth : int }
      (* a pipelined query's promise, with its issue stamp (ns) so the
         demultiplexer can fold the wire round trip into the remote
         pipelined latency histogram at fulfilment *)

type conn = {
  label : string; (* "unix:..." / "tcp:...", for errors and stats *)
  fd : Unix.file_descr;
  send_q : Remote_proto.client_msg SQ.t;
  recv_q : Remote_proto.node_msg SQ.t;
  lock : Mutex.t; (* guards the tables, [lost] and [closing] *)
  pending : (int, pending) Hashtbl.t; (* qid -> rendezvous *)
  syncs : (int, unit Qs_sched.Ivar.t) Hashtbl.t; (* sid -> sync latch *)
  poisons : (int, exn -> Printexc.raw_backtrace -> unit) Hashtbl.t;
      (* reg -> the registration's poison completion *)
  mutable lost : bool;
  mutable closing : bool; (* orderly teardown: EOF is expected, not a loss *)
  next_qid : int Atomic.t;
  next_sid : int Atomic.t;
  next_reg : int Atomic.t;
  stats : Stats.t;
}

type t = { conns : conn array }

let with_lock conn f =
  Mutex.lock conn.lock;
  match f () with
  | v ->
    Mutex.unlock conn.lock;
    v
  | exception e ->
    Mutex.unlock conn.lock;
    raise e

(* Tear the connection down: mark it lost, then resolve every observer
   outside the lock — poison callbacks first (so a rejected waiter that
   races ahead already finds its registration poisoned), then pending
   rendezvous and sync latches.  Idempotent; an orderly [close] sets
   [closing] first, which suppresses the failure accounting (EOF after
   [Bye] is the protocol working, not breaking). *)
let connection_lost conn =
  let e = Remote_proto.Connection_lost conn.label in
  let bt = Printexc.get_callstack 0 in
  let observers =
    with_lock conn (fun () ->
      if conn.lost then None
      else begin
        conn.lost <- true;
        let cbs = Hashtbl.fold (fun _ cb acc -> cb :: acc) conn.poisons [] in
        let pend = Hashtbl.fold (fun _ p acc -> p :: acc) conn.pending [] in
        let syn = Hashtbl.fold (fun _ iv acc -> iv :: acc) conn.syncs [] in
        Hashtbl.reset conn.poisons;
        Hashtbl.reset conn.pending;
        Hashtbl.reset conn.syncs;
        Some (conn.closing, cbs, pend, syn)
      end)
  in
  match observers with
  | None -> ()
  | Some (closing, cbs, pend, syn) ->
    if not closing then
      Qs_obs.Counter.incr conn.stats.Stats.remote_failures;
    List.iter (fun cb -> cb e bt) cbs;
    List.iter
      (function
        | Blocked iv -> ignore (Qs_sched.Ivar.try_fill_error ~bt iv e : bool)
        | Promised { p; _ } ->
          ignore (Qs_sched.Promise.try_fulfill_error ~bt p e : bool))
      pend;
    List.iter
      (fun iv -> ignore (Qs_sched.Ivar.try_fill_error ~bt iv e : bool))
      syn

let send conn msg =
  if conn.lost then raise (Remote_proto.Connection_lost conn.label);
  match SQ.enqueue conn.send_q msg with
  | () -> ()
  | exception SQ.Closed ->
    connection_lost conn;
    raise (Remote_proto.Connection_lost conn.label)

(* -- Demultiplexer --------------------------------------------------------
   One fiber per connection: blocks on the receive queue (parking on fd
   readability via the scheduler's poller) and routes each completion to
   its waiter.  Runs until EOF or a torn frame, then declares the
   connection lost and closes the descriptor. *)

let handle conn = function
  | Remote_proto.Rresult { qid; v } -> (
    Qs_obs.Counter.incr conn.stats.Stats.remote_replies;
    match with_lock conn (fun () ->
        let p = Hashtbl.find_opt conn.pending qid in
        Hashtbl.remove conn.pending qid;
        p)
    with
    | Some (Blocked iv) -> ignore (Qs_sched.Ivar.try_fill iv v : bool)
    | Some (Promised { p; birth }) ->
      Qs_obs.Histogram.record conn.stats.Stats.h_pipelined_remote
        (Qs_obs.Clock.now_ns () - birth);
      ignore (Qs_sched.Promise.try_fulfill p v : bool)
    | None -> () (* rendezvous abandoned (timed out) — drop the late result *))
  | Rfailed { qid; msg } -> (
    Qs_obs.Counter.incr conn.stats.Stats.remote_replies;
    let e = Remote_proto.Remote_error msg in
    match with_lock conn (fun () ->
        let p = Hashtbl.find_opt conn.pending qid in
        Hashtbl.remove conn.pending qid;
        p)
    with
    | Some (Blocked iv) -> ignore (Qs_sched.Ivar.try_fill_error iv e : bool)
    | Some (Promised { p; birth }) ->
      (* A failed round trip is still a completed one: fold it in. *)
      Qs_obs.Histogram.record conn.stats.Stats.h_pipelined_remote
        (Qs_obs.Clock.now_ns () - birth);
      ignore (Qs_sched.Promise.try_fulfill_error p e : bool)
    | None -> ())
  | Rsynced { sid } -> (
    Qs_obs.Counter.incr conn.stats.Stats.remote_replies;
    match with_lock conn (fun () ->
        let iv = Hashtbl.find_opt conn.syncs sid in
        Hashtbl.remove conn.syncs sid;
        iv)
    with
    | Some iv -> ignore (Qs_sched.Ivar.try_fill iv () : bool)
    | None -> ())
  | Rpoisoned { reg; msg } -> (
    (* The node-side handler failed a call this registration logged: the
       dirty-processor rule crossing the connection.  The callback CASes
       the registration's poison atomic, so duplicates are harmless. *)
    match with_lock conn (fun () -> Hashtbl.find_opt conn.poisons reg) with
    | Some cb ->
      cb (Remote_proto.Remote_error msg) (Printexc.get_callstack 0)
    | None -> ())

let rec demux conn =
  match SQ.dequeue conn.recv_q with
  | Some msg ->
    handle conn msg;
    demux conn
  | None -> connection_lost conn
  | exception SQ.Truncated_frame -> connection_lost conn
  | exception _ -> connection_lost conn

(* -- Per-registration proxy ----------------------------------------------- *)

let open_reg conn ~proc =
  let reg = Atomic.fetch_and_add conn.next_reg 1 in
  let stats = conn.stats in
  let poison_cb = ref (fun (_ : exn) (_ : Printexc.raw_backtrace) -> ()) in
  with_lock conn (fun () ->
    if conn.lost then raise (Remote_proto.Connection_lost conn.label);
    Hashtbl.replace conn.poisons reg (fun e bt -> !poison_cb e bt));
  send conn (Remote_proto.Open { reg; proc });
  let px_call f =
    Qs_obs.Counter.incr stats.Stats.remote_requests;
    send conn (Remote_proto.Rcall { reg; f })
  in
  let px_query ~timeout f =
    Qs_obs.Counter.incr stats.Stats.remote_requests;
    (* Issue stamp *before* the wire write, so the recorded round trip
       includes serialization and any transport backpressure — the
       remote analogue of a local request's birth stamp. *)
    let birth = Qs_obs.Clock.now_ns () in
    let qid = Atomic.fetch_and_add conn.next_qid 1 in
    let iv = Qs_sched.Ivar.create () in
    with_lock conn (fun () ->
      if conn.lost then raise (Remote_proto.Connection_lost conn.label);
      Hashtbl.replace conn.pending qid (Blocked iv));
    (try send conn (Remote_proto.Rquery { reg; qid; f })
     with e ->
       with_lock conn (fun () -> Hashtbl.remove conn.pending qid);
       raise e);
    let outcome =
      match timeout with
      | None -> Some (Qs_sched.Ivar.result iv)
      | Some dt -> Qs_sched.Ivar.result_timeout iv dt
    in
    (* Completed round trips (including failed ones) fold into the
       remote query histogram; timeouts abandon the rendezvous without
       recording — the deadline is accounted separately. *)
    if Option.is_some outcome then
      Qs_obs.Histogram.record stats.Stats.h_query_remote
        (Qs_obs.Clock.now_ns () - birth);
    match outcome with
    | Some (Ok v) -> v
    | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
    | None ->
      (* Abandon the rendezvous: dropping the table entry makes the
         eventual [Rresult] a no-op (the request is still served
         node-side, same contract as an in-process timed-out query). *)
      with_lock conn (fun () -> Hashtbl.remove conn.pending qid);
      raise Qs_sched.Timer.Timeout
  in
  let px_query_async f ~on_force =
    Qs_obs.Counter.incr stats.Stats.remote_requests;
    let birth = Qs_obs.Clock.now_ns () in
    let qid = Atomic.fetch_and_add conn.next_qid 1 in
    let p = Qs_sched.Promise.create ~on_force () in
    with_lock conn (fun () ->
      if conn.lost then
        ignore
          (Qs_sched.Promise.try_fulfill_error p
             (Remote_proto.Connection_lost conn.label)
            : bool)
      else Hashtbl.replace conn.pending qid (Promised { p; birth }));
    if not (Qs_sched.Promise.is_resolved p) then begin
      try send conn (Remote_proto.Rquery { reg; qid; f })
      with e ->
        with_lock conn (fun () -> Hashtbl.remove conn.pending qid);
        ignore (Qs_sched.Promise.try_fulfill_error p e : bool)
    end;
    p
  in
  let px_sync ~timeout =
    Qs_obs.Counter.incr stats.Stats.remote_requests;
    let birth = Qs_obs.Clock.now_ns () in
    let sid = Atomic.fetch_and_add conn.next_sid 1 in
    let iv = Qs_sched.Ivar.create () in
    with_lock conn (fun () ->
      if conn.lost then raise (Remote_proto.Connection_lost conn.label);
      Hashtbl.replace conn.syncs sid iv);
    (try send conn (Remote_proto.Rsync { reg; sid })
     with e ->
       with_lock conn (fun () -> Hashtbl.remove conn.syncs sid);
       raise e);
    let outcome =
      match timeout with
      | None -> Some (Qs_sched.Ivar.result iv)
      | Some dt -> Qs_sched.Ivar.result_timeout iv dt
    in
    (* Syncs are blocking remote round trips too: same histogram as
       remote queries (this pair replaced the summed [remote_rtt_ns]). *)
    if Option.is_some outcome then
      Qs_obs.Histogram.record stats.Stats.h_query_remote
        (Qs_obs.Clock.now_ns () - birth);
    match outcome with
    | Some (Ok ()) -> ()
    | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
    | None ->
      with_lock conn (fun () -> Hashtbl.remove conn.syncs sid);
      raise Qs_sched.Timer.Timeout
  in
  let px_close () =
    (* Drop the poison callback with the registration: after [close] the
       only remaining consumer is the block-exit poison check, which
       reads what was already recorded — a failure the node reports
       later is missed exactly like the in-process runtime's
       best-effort exit check misses a not-yet-executed failing call. *)
    with_lock conn (fun () -> Hashtbl.remove conn.poisons reg);
    if not conn.lost then
      try send conn (Remote_proto.Rclose { reg })
      with Remote_proto.Connection_lost _ -> ()
  in
  let px_on_poison cb = poison_cb := cb in
  {
    Processor.px_call;
    px_query;
    px_query_async;
    px_sync;
    px_close;
    px_on_poison;
  }

(* -- Connection lifecycle ------------------------------------------------- *)

let open_conn ~stats addr =
  let label = Config.addr_to_string addr in
  let fd = Remote_proto.connect_to addr in
  (* One duplex descriptor wrapped twice: a send-only queue for requests
     and a receive-only queue for completions.  Both directions marshal
     under [Closures] — requests ship producers, completions may carry
     closure-valued results. *)
  let send_q =
    SQ.of_fds ~flags:[ Marshal.Closures ] ~read_fd:fd ~write_fd:fd ()
  in
  let recv_q =
    SQ.of_fds ~flags:[ Marshal.Closures ] ~read_fd:fd ~write_fd:fd ()
  in
  let conn =
    {
      label;
      fd;
      send_q;
      recv_q;
      lock = Mutex.create ();
      pending = Hashtbl.create 64;
      syncs = Hashtbl.create 16;
      poisons = Hashtbl.create 16;
      lost = false;
      closing = false;
      next_qid = Atomic.make 0;
      next_sid = Atomic.make 0;
      next_reg = Atomic.make 0;
      stats;
    }
  in
  SQ.enqueue send_q (Remote_proto.hello ());
  Qs_sched.Sched.spawn (fun () ->
    demux conn;
    try Unix.close conn.fd with Unix.Unix_error _ -> ());
  conn

let connect ~stats addrs =
  { conns = Array.of_list (List.map (open_conn ~stats) addrs) }

(* Static shard map: processor [id] lives on node [id mod n]. *)
let route t id = t.conns.(id mod Array.length t.conns)
let conn_label conn = conn.label

(* Ask every connected node process to stop serving (the remote
   lifecycle hook behind [Scoop.Remote.shutdown_nodes]). *)
let shutdown_nodes t =
  Array.iter
    (fun conn ->
      if not conn.lost then
        try send conn Remote_proto.Shutdown
        with Remote_proto.Connection_lost _ -> ())
    t.conns

(* Orderly teardown: announce [Bye], half-close the send side (the node
   reads EOF after the last frame and tears its end down), and force the
   demultiplexer's pending read to EOF so runtime shutdown never waits
   on a node that died without closing. *)
let close t =
  Array.iter
    (fun conn ->
      if not conn.lost then begin
        conn.closing <- true;
        (try send conn Remote_proto.Bye
         with Remote_proto.Connection_lost _ -> ());
        SQ.close_writer conn.send_q;
        try Unix.shutdown conn.fd Unix.SHUTDOWN_RECEIVE
        with Unix.Unix_error _ -> ()
      end)
    t.conns
