(* SCOOP/Qs client facade.  The curated surface lives in scoop.mli; this
   module only wires the submodules (and the Promise re-export) together. *)

module Config = Config
module Stats = Stats
module Promise = Qs_sched.Promise
module Processor = Processor
module Registration = Registration
module Separate = Separate
module Runtime = Runtime
module Shared = Shared
module Trace = Trace
module Remote = Remote

exception Handler_failure = Registration.Handler_failure
exception Timeout = Qs_sched.Timer.Timeout
exception Overloaded = Processor.Overloaded
exception Remote_error = Remote_proto.Remote_error
exception Connection_lost = Remote_proto.Connection_lost

module Internal = struct
  module Ctx = Ctx
  module Eve = Eve
  module Request = Request
  module Socket_queue = Qs_remote.Socket_queue
  module Remote_proto = Remote_proto
  module Remote_client = Remote_client
  module Node = Node
end

let run = Runtime.run
