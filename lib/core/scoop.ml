(** SCOOP/Qs: an efficient runtime for the SCOOP object-oriented
    concurrency model (West, Nanz, Meyer — PPoPP 2015).

    Entry points: {!Runtime.run}, {!Runtime.processor},
    {!Runtime.separate}, then {!Registration} and {!Shared} operations
    inside the block. *)

module Config = Config
module Stats = Stats
module Request = Request
module Processor = Processor
module Registration = Registration
module Separate = Separate
module Runtime = Runtime
module Shared = Shared
module Eve = Eve
module Trace = Trace
module Ctx = Ctx

let run = Runtime.run
