(* SCOOP/Qs client facade.  The curated surface lives in scoop.mli; this
   module only wires the submodules (and the Promise re-export) together. *)

module Config = Config
module Stats = Stats
module Promise = Qs_sched.Promise
module Processor = Processor
module Registration = Registration
module Separate = Separate
module Runtime = Runtime
module Shared = Shared
module Trace = Trace

exception Handler_failure = Registration.Handler_failure
exception Timeout = Qs_sched.Timer.Timeout
exception Overloaded = Processor.Overloaded

module Internal = struct
  module Ctx = Ctx
  module Eve = Eve
  module Request = Request
end

let run = Runtime.run
