(* EVE/Qs handicap model (paper §4.5).

   The EVE retrofit inherits two costs from EiffelStudio that the paper
   calls out: handler IDs live in object headers, so every access to a
   handler goes through a secondary thread-safe lookup structure; and the
   shadow-stack GC discipline taxes executed calls (modelled on the
   processor side).  This module is the lookup structure: a hash table
   guarded by a spinlock, consulted on every client-side request when the
   [eve] configuration flag is set. *)

type t = {
  lock : Qs_queues.Spinlock.t;
  table : (int, int) Hashtbl.t;
  stats : Stats.t;
}

let create stats =
  { lock = Qs_queues.Spinlock.create (); table = Hashtbl.create 64; stats }

let register t id =
  Qs_queues.Spinlock.with_lock t.lock (fun () ->
    Hashtbl.replace t.table id id)

let lookup t id =
  Qs_obs.Counter.incr t.stats.Stats.eve_lookups;
  Qs_queues.Spinlock.with_lock t.lock (fun () ->
    ignore (Hashtbl.find_opt t.table id : int option))
