(* Node half of the distributed runtime: host real processors behind the
   socket transport and serve remote clients.

   One accept loop parks on the listen descriptor's readability (a
   scheduler poller wake source, like the timer heap); each accepted
   connection gets its own *serve fiber* multiplexed on the same
   scheduler as the handler fibers it feeds — many concurrent
   connections cost fibers, not threads.

   A serve fiber replays the client's wire stream onto ordinary runtime
   operations: [Open] enters a separate block ([Separate.enter_one]) on
   the processor the message names, [Rcall]/[Rquery]/[Rsync] ride that
   registration's stream, [Rclose] exits the block.  Queries and syncs
   are wrapped as *asynchronous calls* whose body runs on the handler
   and writes the completion frame back — so a completion is emitted
   only after every earlier request of the stream has been served, which
   is exactly the ordering the in-process runtime guarantees, stretched
   over a connection.  The wrapped bodies check the registration's
   poison first and report it ahead of the completion, making the
   dirty-processor rule observable client-side at the same points it
   would surface in-process.

   Backpressure is node-side: the serve fiber logs requests through the
   ordinary [Registration] path, so a bounded mailbox's admission
   control blocks *it*, which stops it reading the socket, which fills
   the kernel buffers, which blocks the client's writes — the bound
   propagates over the connection with no extra protocol.

   The node's config must use the queue-of-queues mailbox: a Direct-mode
   reservation holds the handler lock for the block's whole lifetime,
   and a serve fiber holding it across wire messages would head-of-line
   block every other connection's access to that handler. *)

module SQ = Qs_remote.Socket_queue

let nlog fmt =
  Printf.ksprintf (fun s -> Printf.eprintf "[qs-node] %s\n%!" s) fmt

(* Per-connection serving state: the client's processor ids are an
   independent id space, mapped lazily onto node-side processors (two
   clients' processor 0 are two distinct handlers). *)
type conn_state = {
  rt : Runtime.t;
  send_q : Remote_proto.node_msg SQ.t;
  procs : (int, Processor.t) Hashtbl.t; (* client proc id -> handler *)
  regs : (int, Registration.t) Hashtbl.t; (* wire reg id -> open block *)
}

let send st msg = try SQ.enqueue st.send_q msg with SQ.Closed -> ()

let report_poison st ~reg e =
  send st (Remote_proto.Rpoisoned { reg; msg = Printexc.to_string e })

let proc_of st id =
  match Hashtbl.find_opt st.procs id with
  | Some p -> p
  | None ->
    let p = Runtime.processor st.rt in
    Hashtbl.replace st.procs id p;
    p

(* Serve one wire message.  [Registration.call] can itself raise
   [Handler_failure] (the registration observed poison at logging time);
   every request shape catches it and reports — plus, for shapes with a
   rendezvous, resolves the rendezvous so the client never hangs on a
   dirty stream. *)
let serve_msg st = function
  | Remote_proto.Hello _ -> () (* re-checked at accept; ignore *)
  | Open { reg; proc } ->
    let p = proc_of st proc in
    let r = Separate.enter_one (Runtime.ctx st.rt) p in
    Hashtbl.replace st.regs reg r
  | Rcall { reg; f } -> (
    match Hashtbl.find_opt st.regs reg with
    | None -> ()
    | Some r -> (
      try Registration.call r f
      with Registration.Handler_failure (_, e) -> report_poison st ~reg e))
  | Rquery { reg; qid; f } -> (
    match Hashtbl.find_opt st.regs reg with
    | None -> send st (Rfailed { qid; msg = "unknown registration" })
    | Some r -> (
      try
        Registration.call r (fun () ->
          (* Runs on the handler, after every earlier request of this
             stream.  An earlier call's failure is visible here (its
             poison completion ran on this same handler fiber), and is
             reported *before* the query's completion so the client
             demultiplexer poisons the registration first. *)
          match Registration.poisoned r with
          | Some e ->
            report_poison st ~reg e;
            send st (Rfailed { qid; msg = Printexc.to_string e })
          | None -> (
            match f () with
            | v -> send st (Rresult { qid; v })
            | exception e ->
              (* The producer itself raised: a rendezvous failure, not a
                 poisoning — same rule as in-process packaged queries. *)
              send st (Rfailed { qid; msg = Printexc.to_string e })))
      with Registration.Handler_failure (_, e) ->
        report_poison st ~reg e;
        send st (Rfailed { qid; msg = Printexc.to_string e })))
  | Rsync { reg; sid } -> (
    match Hashtbl.find_opt st.regs reg with
    | None -> send st (Rsynced { sid })
    | Some r -> (
      try
        Registration.call r (fun () ->
          (match Registration.poisoned r with
          | Some e -> report_poison st ~reg e
          | None -> ());
          send st (Rsynced { sid }))
      with Registration.Handler_failure (_, e) ->
        report_poison st ~reg e;
        send st (Rsynced { sid })))
  | Rclose { reg } -> (
    match Hashtbl.find_opt st.regs reg with
    | None -> ()
    | Some r ->
      Hashtbl.remove st.regs reg;
      (try Separate.exit_one (Runtime.ctx st.rt) r with _ -> ());
      (* Best-effort exit check, like the in-process block's: a failure
         already observed is reported; one the handler has not reached
         yet is not (it would surface at the client's next sync point —
         but the block is gone, matching in-process semantics). *)
      (match Registration.poisoned r with
      | Some e -> report_poison st ~reg e
      | None -> ()))
  | Bye | Shutdown -> () (* handled by the serve loop *)

(* Tear a connection's state down: exit every still-open block and close
   the connection's processors.  Draining (not aborting) preserves
   at-most-once effects for calls already received. *)
let cleanup st =
  Hashtbl.iter
    (fun _ r -> try Separate.exit_one (Runtime.ctx st.rt) r with _ -> ())
    st.regs;
  Hashtbl.reset st.regs;
  Hashtbl.iter (fun _ p -> Processor.shutdown p) st.procs;
  Hashtbl.iter (fun _ p -> Processor.await_stopped p) st.procs;
  Hashtbl.reset st.procs

(* Serve one accepted connection until Bye, Shutdown, EOF or a torn
   frame.  Returns [`Shutdown] if the client asked the node process to
   stop. *)
let serve_conn rt fd =
  let recv_q : Remote_proto.client_msg SQ.t =
    SQ.of_fds ~flags:[ Marshal.Closures ] ~read_fd:fd ~write_fd:fd ()
  in
  let send_q : Remote_proto.node_msg SQ.t =
    SQ.of_fds ~flags:[ Marshal.Closures ] ~read_fd:fd ~write_fd:fd ()
  in
  let st =
    { rt; send_q; procs = Hashtbl.create 8; regs = Hashtbl.create 16 }
  in
  let result = ref `Bye in
  (* Handshake: first frame must be a matching Hello — a peer built from
     a different binary is refused before any closure is decoded. *)
  (match SQ.dequeue recv_q with
  | Some (Remote_proto.Hello _ as h) -> (
    match Remote_proto.check_hello h with
    | Ok () -> (
      let continue_ = ref true in
      while !continue_ do
        match SQ.dequeue recv_q with
        | Some Remote_proto.Bye | None -> continue_ := false
        | Some Remote_proto.Shutdown ->
          result := `Shutdown;
          continue_ := false
        | Some msg -> serve_msg st msg
        | exception SQ.Truncated_frame ->
          nlog "torn frame: peer died mid-send; dropping connection";
          continue_ := false
        | exception e ->
          nlog "serve error: %s" (Printexc.to_string e);
          continue_ := false
      done)
    | Error why -> nlog "refusing connection: %s" why)
  | Some _ | None -> nlog "refusing connection: no Hello"
  | exception _ -> nlog "refusing connection: unreadable Hello");
  cleanup st;
  SQ.close_writer send_q;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  !result

(* Accept loop: park on the listen fd, spawn a serve fiber per
   connection.  Returns once a client sent [Shutdown] and every serve
   fiber has finished.  Closing the listen descriptor from a serve fiber
   unblocks the accept loop via the poller's EBADF sweep. *)
let serve rt addr =
  if not (Config.uses_qoq (Runtime.config rt)) then
    invalid_arg
      "Scoop.Node: node configs must use the `Qoq mailbox (a Direct-mode \
       reservation would head-of-line block the serve fiber)";
  let lfd = Remote_proto.listen_on addr in
  let stop = Atomic.make false in
  let active = Atomic.make 0 in
  let request_stop () =
    if not (Atomic.exchange stop true) then
      (* Wakes the accept loop out of await_readable: the poller's EBADF
         sweep resumes it, and the retried accept fails out of the loop. *)
      try Unix.close lfd with Unix.Unix_error _ -> ()
  in
  nlog "listening on %s" (Config.addr_to_string addr);
  let rec accept_loop () =
    if not (Atomic.get stop) then begin
      match Remote_proto.accept_nonblock lfd with
      | Some fd ->
        Atomic.incr active;
        Qs_sched.Sched.spawn (fun () ->
          (match serve_conn rt fd with
          | `Shutdown -> request_stop ()
          | `Bye -> ());
          Atomic.decr active);
        accept_loop ()
      | None ->
        Qs_sched.Sched.await_readable lfd;
        accept_loop ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> () (* stopped *)
      | exception Unix.Unix_error _ when Atomic.get stop -> ()
    end
  in
  accept_loop ();
  (try Unix.close lfd with Unix.Unix_error _ -> ());
  (* Let in-flight serve fibers drain before returning to the caller
     (who is about to shut the runtime down). *)
  while Atomic.get active > 0 do
    Qs_sched.Sched.yield ()
  done;
  (match addr with
  | Config.Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Config.Tcp _ -> ());
  nlog "stopped"
