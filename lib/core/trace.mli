(** Detailed runtime tracing (paper §7's "SCOOP-specific instrumentation"):
    timestamped client-side events with queueing and round-trip latencies,
    summarized per processor.

    A compatibility view over a shared {!Qs_obs.Sink.t}: SCOOP-level
    events land in the same per-domain bounded rings as scheduler
    events, so one sink — and one Chrome-trace export — covers the
    whole stack.  Enable with [Runtime.run ~trace:true] (or pass your
    own sink as [~obs]); retrieve via {!Runtime.trace}. *)

type kind =
  | Reserved
  | Call_logged
  | Call_executed of float
      (** seconds the call waited in the private queue before executing *)
  | Sync_round_trip of float
  | Sync_elided
  | Query_round_trip of float  (** packaged-query log→result time *)
  | Query_pipelined of float
      (** pipelined-query issue→fulfilment time (handler-side; excludes
          any delay before the client forces the promise) *)
  | Handler_failed
      (** a handler-side closure raised; the exception was routed into
          the request's typed completion *)
  | Registration_poisoned
      (** a failed asynchronous call dirtied its registration (SCOOP's
          dirty-processor rule) *)
  | Promise_rejected  (** a pipelined query resolved with an exception *)
  | Request_timeout
      (** a blocking rendezvous (sync, query, reservation retry) was
          abandoned at its deadline; the request itself stays logged *)
  | Request_shed
      (** the mailbox shed a logged-but-unexecuted call under the
          [`Shed_oldest] overflow policy, poisoning the issuing
          registration *)
  | Query_shed
      (** the mailbox shed a query-flavoured request under
          [`Shed_oldest]: the rendezvous is rejected with [Overloaded]
          at the query/await site, but no logged-call slot is consumed
          and the registration is not poisoned *)

type event = {
  at : float;  (** seconds since the trace started *)
  proc : int;
  client : int;
      (** issuing registration id ([Registration.rid]) — the attribution
          conformance checking partitions on; [0] when the emitting code
          path had no registration in hand (scheduler- or handler-global
          events) *)
  seq : int;  (** global sink record order, for pinpointing ring slots *)
  kind : kind;
}

type t

val create : unit -> t
(** Fresh trace over a fresh private sink. *)

val of_sink : Qs_obs.Sink.t -> t
(** View an existing sink as a trace; events recorded through either
    interface share the sink's rings. *)

val sink : t -> Qs_obs.Sink.t

val now : t -> float

val record : t -> proc:int -> ?client:int -> kind -> unit
(** [client] (default [0] = unattributed) is the issuing registration's
    id, stored in the sink event's [arg] field. *)

val events : t -> event list
(** All retained SCOOP-level events, oldest first (sink events from
    other layers are filtered out).  The chronological sort is paid
    here, once per call — not hidden in the recording path.  Read only
    in quiescence; under ring overflow the oldest events are gone (the
    loss is counted by [Qs_obs.Sink.dropped], never silent). *)

type dist = {
  count : int;
  mean : float;
  max : float;
}

type proc_summary = {
  sp_proc : int;
  sp_reservations : int;
  sp_calls : int;
  sp_call_latency : dist;
  sp_sync_round_trip : dist;
  sp_syncs_elided : int;
  sp_query_round_trip : dist;
  sp_query_pipelined : dist;
}

val summarize : t -> proc_summary list
val summarize_events : event list -> proc_summary list
(** {!summarize} over an explicit event list (fixtures, tests). *)

val pp_summary : Format.formatter -> proc_summary list -> unit
val pp_dist : Format.formatter -> dist -> unit
