(** Detailed runtime tracing (paper §7's "SCOOP-specific instrumentation"):
    timestamped client-side events with queueing and round-trip latencies,
    collected lock-free and summarized per processor.

    Enable with [Runtime.run ~trace:true]; retrieve via {!Runtime.trace}. *)

type kind =
  | Reserved
  | Call_logged
  | Call_executed of float
      (** seconds the call waited in the private queue before executing *)
  | Sync_round_trip of float
  | Sync_elided
  | Query_round_trip of float  (** packaged-query log→result time *)

type event = {
  at : float;  (** seconds since the trace started *)
  proc : int;
  kind : kind;
}

type t

val create : unit -> t
val now : t -> float
val record : t -> proc:int -> kind -> unit
val events : t -> event list
(** All events, oldest first. *)

type dist = {
  count : int;
  mean : float;
  max : float;
}

type proc_summary = {
  sp_proc : int;
  sp_reservations : int;
  sp_calls : int;
  sp_call_latency : dist;
  sp_sync_round_trip : dist;
  sp_syncs_elided : int;
  sp_query_round_trip : dist;
}

val summarize : t -> proc_summary list
val pp_summary : Format.formatter -> proc_summary list -> unit
val pp_dist : Format.formatter -> dist -> unit
