(* Requests logged by clients in private queues (paper §2.3 syntax).

   Two representations coexist:

   - The *packaged* form — a heap closure per request, the OCaml
     analogue of the libffi-packaged call of Fig. 9 (cif + argument
     block) plus a typed failure completion.  Fully general: any arity,
     any capture, trace-wrapped runs.  [Call] is an asynchronous
     packaged call; [Query] the same shape for a promise-pipelined
     query (the closure fulfils the client's promise).

   - The *flat* form — a preallocated, pooled, mutable record covering
     the hot shapes (0/1-argument calls, blocking queries, pipelined
     queries) with zero allocation at issue time: the function and its
     argument are stored inline in dedicated fields, the completion
     cell is embedded in the record (generation-stamped so a recycled
     record can never satisfy a stale await), and [self] knots the
     record to its own [Flat] constructor so enqueueing reuses one
     preallocated block.  The handler decodes the [tag] structurally —
     no closure is ever built — and routes failures through the same
     typed completions ([fail_to] for calls, the cell for blocking
     queries, the promise for pipelined ones).

   One-argument payloads are stored as [Obj.t].  This is the uniform-
   representation coercion: every OCaml value (boxed or immediate) has
   the same machine representation, so [Obj.repr]/[Obj.obj] merely
   forget and restore the static type.  Soundness rests on the pairing
   invariant kept by [Registration]: [f1]/[a1] (and [q0]'s result type
   vs the cell) are always written together from a single well-typed
   call site, and the record is reset before reuse.  The coercions are
   confined to this module, [Registration] and the handler in
   [Processor].

   [Sync] is the release half of the wait/release pair introduced by
   the modified query rule of §3.2.  [End] is the end-of-private-queue
   marker appended when a separate block closes. *)

(* Request class, for routing a completed request's latency into the
   per-class histogram.  Packaged blocking queries are enqueued as
   [Call] blocks (the closure fills the client's ivar), so the
   constructor alone cannot distinguish a call from a blocking query —
   the kind can. *)
type kind = K_call | K_query | K_pipelined

type packaged = {
  run : unit -> unit;
  fail : exn -> Printexc.raw_backtrace -> unit;
  kind : kind;
  reg : int;  (* issuing registration id, for shed-event attribution *)
  mutable t_birth : int;  (* ns stamp at client issue (Clock.now_ns) *)
  mutable t_admit : int;  (* ns stamp after backpressure admission *)
}

type tag =
  | Free  (* in the pool, or freshly reset *)
  | Call0  (* 0-arg asynchronous call: [f0] *)
  | Call1  (* 1-arg asynchronous call: [f1] applied to [a1] *)
  | Query0  (* blocking query: [q0]'s result fills [cell] at [cgen] *)
  | Query1  (* blocking 1-arg query: [q1] applied to [a1] *)
  | Pipelined  (* promise-pipelined query: [q0]'s result fulfils [pr] *)

type flat = {
  mutable gen : int;  (* bumped on every recycle (debug/qcheck aid) *)
  mutable tag : tag;
  mutable f0 : unit -> unit;
  mutable f1 : Obj.t -> unit;
  mutable q0 : unit -> Obj.t;
  mutable q1 : Obj.t -> Obj.t;
  mutable a1 : Obj.t;
  mutable pr : Obj.t;  (* Obj.t Qs_sched.Promise.t when tag = Pipelined *)
  cell : Obj.t Qs_sched.Cell.t;
      (* embedded completion cell for blocking queries; owned by this
         record for its whole life, never reallocated *)
  mutable cgen : int;  (* cell generation captured when the query was issued *)
  mutable fail_to : exn -> Printexc.raw_backtrace -> unit;
      (* call-failure completion: the registration's preallocated
         poison closure (one per registration, not per request) *)
  mutable self : t;
      (* knot: the one [Flat] block wrapping this record, built once at
         record creation so enqueueing allocates nothing *)
  mutable slot : int;
      (* index in the owning processor's pool slot array, or -1 for a
         record allocated on a pool miss (recycled to the GC instead) *)
  mutable reg : int;
      (* issuing registration id, stamped at every issue (an immediate
         int, so no write barrier); read by the shed path to attribute
         the shed event to its registration *)
  mutable t_birth : int;
      (* ns stamp at client issue; immediate int, so stamping a pooled
         (major-heap) record never triggers a write barrier *)
  mutable t_admit : int;  (* ns stamp after backpressure admission *)
}

and t =
  | Call of packaged
  | Query of packaged
  | Flat of flat
  | Sync of Qs_sched.Sched.resumer
  | End

let nop0 () = ()
let nop1 (_ : Obj.t) = ()
let unit_obj = Obj.repr ()
let dq0 () = unit_obj
let dq1 (_ : Obj.t) = unit_obj
let nofail (_ : exn) (_ : Printexc.raw_backtrace) = ()

let make_flat () =
  let r =
    {
      gen = 0;
      tag = Free;
      f0 = nop0;
      f1 = nop1;
      q0 = dq0;
      q1 = dq1;
      a1 = unit_obj;
      pr = unit_obj;
      cell = Qs_sched.Cell.create ();
      cgen = 0;
      fail_to = nofail;
      self = End;
      slot = -1;
      reg = 0;
      t_birth = 0;
      t_admit = 0;
    }
  in
  r.self <- Flat r;
  r

(* Reset before returning to the pool: drop every captured reference
   (so pooled records don't pin client data against the GC), bump the
   generation.  Tag-directed: pooled records live in the major heap, so
   each field write is a potential old-to-young barrier — only the
   fields the served tag actually wrote are cleared, which keeps the
   hot call path at two or three writes instead of ten.  The embedded
   cell is recycled only when the use consumed it (blocking queries):
   any straggling awaiter from the previous use then gets [Cell.Stale]
   instead of the next use's value; the next query issue re-reads the
   cell generation itself.  [fail_to] is deliberately *not* cleared: it
   points at a registration's preallocated poison closure, which the
   next issue overwrites only when it differs — a record cycling within
   one registration never rewrites it (no repeated old-to-young
   barrier), at the cost of pinning at most [pool_cap] registration
   records per processor between uses. *)
let reset_flat r =
  r.gen <- r.gen + 1;
  (match r.tag with
  | Free -> ()
  | Call0 -> r.f0 <- nop0
  | Call1 ->
    r.f1 <- nop1;
    r.a1 <- unit_obj
  | Query0 ->
    r.q0 <- dq0;
    Qs_sched.Cell.recycle r.cell
  | Query1 ->
    r.q1 <- dq1;
    r.a1 <- unit_obj;
    Qs_sched.Cell.recycle r.cell
  | Pipelined ->
    r.q0 <- dq0;
    r.pr <- unit_obj);
  (* Immediate ints: clearing costs plain stores, never a barrier. *)
  r.reg <- 0;
  r.t_birth <- 0;
  r.t_admit <- 0;
  r.tag <- Free

let pp_tag ppf = function
  | Free -> Format.pp_print_string ppf "free"
  | Call0 -> Format.pp_print_string ppf "call0"
  | Call1 -> Format.pp_print_string ppf "call1"
  | Query0 -> Format.pp_print_string ppf "query0"
  | Query1 -> Format.pp_print_string ppf "query1"
  | Pipelined -> Format.pp_print_string ppf "pipelined"

let pp ppf = function
  | Call _ -> Format.pp_print_string ppf "call"
  | Query _ -> Format.pp_print_string ppf "query"
  | Flat r -> Format.fprintf ppf "flat:%a" pp_tag r.tag
  | Sync _ -> Format.pp_print_string ppf "sync"
  | End -> Format.pp_print_string ppf "end"
