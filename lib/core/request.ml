(* Requests logged by clients in private queues (paper §2.3 syntax).

   [Call] carries a packaged application — the OCaml analogue of the
   libffi-packaged call of Fig. 9 (a heap-allocated closure standing in for
   the cif + argument block) — together with a typed failure completion:
   when [run] raises on the handler, the handler routes the exception into
   [fail] instead of swallowing it, so the issuing client observes the
   failure (a rejected ivar/promise, or a poisoned registration).  [Query]
   is the same packaging shape but for a promise-pipelined query: the
   closure computes the result and fulfils the client's promise, so the
   handler loop can account and trace deferred rendezvous separately from
   plain asynchronous calls.  [Sync] is the release half of the wait /
   release pair introduced by the modified query rule of §3.2: the handler
   resumes the waiting client and, knowing it has no further work until the
   client logs more, parks.  [End] is the end-of-private-queue marker
   appended when a separate block closes. *)

type packaged = {
  run : unit -> unit;
  fail : exn -> Printexc.raw_backtrace -> unit;
}

type t =
  | Call of packaged
  | Query of packaged
  | Sync of Qs_sched.Sched.resumer
  | End

let pp ppf = function
  | Call _ -> Format.pp_print_string ppf "call"
  | Query _ -> Format.pp_print_string ppf "query"
  | Sync _ -> Format.pp_print_string ppf "sync"
  | End -> Format.pp_print_string ppf "end"
