(* Wire protocol of the distributed runtime (the paper's §7 future-work
   direction carried to its conclusion: private queues over sockets, now
   with real processors on the far side).

   One duplex connection carries two independent FIFO streams of
   length-prefixed marshalled messages (the [Qs_remote.Socket_queue]
   framing): client→node requests and node→client completions.  FIFO
   order per direction is the protocol's only ordering guarantee — and
   the only one the SCOOP semantics needs, because a registration's
   requests are ordered by its stream exactly like a private queue
   orders them in-process.

   Request payloads are closures shipped under [Marshal.Closures], which
   requires both peers to run the *same binary*: a closure is encoded as
   a code pointer plus its environment.  Handler state must therefore
   live in module-level globals (the node executes shipped closures
   against *its* globals); closures capturing client-side mutable state
   would silently operate on a copy.  [Hello] carries a digest of the
   running binary so a mismatched peer is rejected before any closure is
   decoded, never crashed mid-execution. *)

exception Remote_error of string
(* A handler-side exception crossing the wire: exception *identity* does
   not survive marshalling (an exception constructor is compared by
   physical identity of its slot), so the node ships
   [Printexc.to_string] of the original and the client re-raises this. *)

exception Connection_lost of string
(* The connection to the named node died (EOF, reset, or a torn frame)
   with operations outstanding: every pending rendezvous is rejected
   with this, and every open registration on the connection is poisoned
   with it (the dirty-processor rule applied to a dead transport). *)

let () =
  Printexc.register_printer (function
    | Remote_error msg -> Some (Printf.sprintf "Scoop.Remote_error(%S)" msg)
    | Connection_lost node ->
      Some (Printf.sprintf "Scoop.Connection_lost(%S)" node)
    | _ -> None)

(* Same-binary guard carried by [Hello]: [Sys.executable_name]'s digest
   is computed once per process.  Two processes running the same
   executable image agree; anything else is refused at handshake. *)
let binary_digest =
  lazy
    (try Digest.to_hex (Digest.file Sys.executable_name)
     with Sys_error _ -> "unknown")

type client_msg =
  | Hello of { version : int; digest : string }
  | Open of { reg : int; proc : int }
      (* enter a separate block on processor [proc] (per-connection id
         space); subsequent requests carrying [reg] ride its stream *)
  | Rcall of { reg : int; f : unit -> unit }
  | Rquery of { reg : int; qid : int; f : unit -> Obj.t }
  | Rsync of { reg : int; sid : int }
  | Rclose of { reg : int } (* exit the separate block *)
  | Bye (* orderly client teardown: no further requests follow *)
  | Shutdown (* ask the node process itself to stop serving *)

type node_msg =
  | Rresult of { qid : int; v : Obj.t }
  | Rfailed of { qid : int; msg : string }
      (* the query's own producer raised: re-raised as [Remote_error]
         (queries have a rendezvous, so no poisoning — same rule as
         in-process) *)
  | Rsynced of { sid : int }
  | Rpoisoned of { reg : int; msg : string }
      (* a previously logged call failed on the handler: the client-side
         registration is poisoned on receipt.  Sent in stream order
         ahead of the completion of whichever query/sync observed the
         poison, so the client sees the failure exactly where the
         in-process runtime would surface it *)

let protocol_version = 1

(* -- Address-level socket plumbing ---------------------------------------- *)

let sockaddr_of = function
  | Config.Unix_sock path -> Unix.ADDR_UNIX path
  | Config.Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
        | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
        | _ ->
          raise
            (Connection_lost
               (Printf.sprintf "tcp:%s:%d: host not found" host port)))
    in
    Unix.ADDR_INET (inet, port)

let domain_of = function
  | Config.Unix_sock _ -> Unix.PF_UNIX
  | Config.Tcp _ -> Unix.PF_INET

(* Bind + listen, non-blocking (the accept loop parks on readability).
   A stale unix-domain socket file from a dead node is unlinked first:
   bind would otherwise fail with EADDRINUSE forever. *)
let listen_on addr =
  (match addr with
  | Config.Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Config.Tcp _ -> ());
  let fd = Unix.socket (domain_of addr) Unix.SOCK_STREAM 0 in
  (match addr with
  | Config.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | Config.Unix_sock _ -> ());
  (try Unix.bind fd (sockaddr_of addr)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  fd

(* Connect with a bounded retry loop: the two-process launch order is
   not controlled (the CI smoke starts node and client concurrently), so
   a refused connection or a not-yet-bound unix path is retried for up
   to [timeout] seconds before giving up. *)
let connect_to ?(timeout = 10.0) addr =
  let give_up = Unix.gettimeofday () +. timeout in
  let rec attempt () =
    let fd = Unix.socket (domain_of addr) Unix.SOCK_STREAM 0 in
    match Unix.connect fd (sockaddr_of addr) with
    | () ->
      Unix.set_nonblock fd;
      fd
    | exception
        Unix.Unix_error
          ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN | Unix.EINTR), _, _)
      ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if Unix.gettimeofday () >= give_up then
        raise
          (Connection_lost
             (Config.addr_to_string addr ^ ": connection refused"))
      else begin
        (* Plain sleep, not a fiber suspension: connection setup runs
           before the demultiplexer fibers exist, possibly outside any
           scheduler. *)
        Unix.sleepf 0.05;
        attempt ()
      end
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  attempt ()

(* Accept one connection on a non-blocking listen fd; [None] on
   would-block (the caller parks on readability and retries), raises on
   a closed listen socket (the node's stop signal). *)
let accept_nonblock lfd =
  match Unix.accept ~cloexec:true lfd with
  | fd, _ ->
    Unix.set_nonblock fd;
    Some fd
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
    None

let hello () = Hello { version = protocol_version; digest = Lazy.force binary_digest }

let check_hello = function
  | Hello { version; digest } ->
    if version <> protocol_version then
      Error (Printf.sprintf "protocol version mismatch: peer %d, ours %d"
               version protocol_version)
    else if digest <> Lazy.force binary_digest then
      Error "peer runs a different binary (closure shipping requires the same image)"
    else Ok ()
  | _ -> Error "peer did not start with Hello"
