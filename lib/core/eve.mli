(** Handler-lookup handicap used by the EVE configurations (paper §4.5):
    a spinlocked hash table consulted on every client-side request,
    modelling EiffelStudio's object-header handler IDs. *)

type t

val create : Stats.t -> t
val register : t -> int -> unit
val lookup : t -> int -> unit
(** Charge one thread-safe handler lookup (counted in the stats). *)
