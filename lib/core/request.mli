(** Requests exchanged between clients and handlers.

    The runtime counterpart of the statement syntax in paper §2.3:
    [Call] is an asynchronous packaged call, [Query] a packaged
    promise-pipelined query (the closure fulfils the client's promise
    with the result), [Sync] the wait/release pair of the
    (client-executed) query protocol, [End] the end-of-registration
    marker a client appends when its separate block closes.

    Every packaged request carries a typed completion: [run] does the
    work, and [fail] is invoked by the handler (with the exception and
    the backtrace captured at the catch site) when [run] raises, so the
    failure propagates to the issuing client instead of dying in a log
    line. *)

type packaged = {
  run : unit -> unit;
  fail : exn -> Printexc.raw_backtrace -> unit;
}

type t =
  | Call of packaged
  | Query of packaged
  | Sync of Qs_sched.Sched.resumer
  | End

val pp : Format.formatter -> t -> unit
