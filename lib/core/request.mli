(** Requests exchanged between clients and handlers.

    The runtime counterpart of the statement syntax in paper §2.3:
    [Call] is an asynchronous packaged call, [Query] a packaged
    promise-pipelined query (the closure fulfils the client's promise
    with the result), [Sync] the wait/release pair of the
    (client-executed) query protocol, [End] the end-of-registration
    marker a client appends when its separate block closes. *)

type t =
  | Call of (unit -> unit)
  | Query of (unit -> unit)
  | Sync of Qs_sched.Sched.resumer
  | End

val pp : Format.formatter -> t -> unit
