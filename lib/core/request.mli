(** Requests exchanged between clients and handlers.

    The runtime counterpart of the statement syntax in paper §2.3, in
    two representations:

    - {e packaged}: a heap closure per request plus a typed failure
      completion — the general fallback (any arity, trace-wrapped runs,
      multi-reservation blocks).  [Call] is an asynchronous packaged
      call, [Query] a packaged promise-pipelined query.

    - {e flat}: a preallocated pooled record ([Flat]) for the hot
      shapes — 0/1-argument calls, blocking queries and pipelined
      queries — with the function and argument stored inline, a
      generation-stamped completion cell embedded for the record's
      whole life, and a knotted [self] constructor so issuing a request
      allocates nothing.  One-argument payloads are [Obj.t] under the
      uniform-representation coercion; the pairing invariant (fields
      written together from one typed call site, reset before reuse) is
      kept by [Registration] and the coercions never escape the
      core request path.

    [Sync] is the wait/release pair of the (client-executed) query
    protocol; [End] the end-of-registration marker a client appends
    when its separate block closes. *)

type kind = K_call | K_query | K_pipelined
(** Request class for per-class latency accounting.  Packaged blocking
    queries ship as [Call] blocks (the closure fills the client's
    ivar), so the constructor alone cannot tell a call from a blocking
    query — the kind can. *)

type packaged = {
  run : unit -> unit;
  fail : exn -> Printexc.raw_backtrace -> unit;
  kind : kind;
  reg : int;  (** issuing registration id ([Registration.rid]) *)
  mutable t_birth : int;  (** ns stamp at client issue *)
  mutable t_admit : int;  (** ns stamp after backpressure admission *)
}

type tag = Free | Call0 | Call1 | Query0 | Query1 | Pipelined

type flat = {
  mutable gen : int;
  mutable tag : tag;
  mutable f0 : unit -> unit;
  mutable f1 : Obj.t -> unit;
  mutable q0 : unit -> Obj.t;
  mutable q1 : Obj.t -> Obj.t;
  mutable a1 : Obj.t;
  mutable pr : Obj.t;
  cell : Obj.t Qs_sched.Cell.t;
  mutable cgen : int;
  mutable fail_to : exn -> Printexc.raw_backtrace -> unit;
  mutable self : t;
  mutable slot : int;
  mutable reg : int;  (** issuing registration id, stamped per issue *)
  mutable t_birth : int;
  mutable t_admit : int;
}

and t =
  | Call of packaged
  | Query of packaged
  | Flat of flat
  | Sync of Qs_sched.Sched.resumer
  | End

val make_flat : unit -> flat
(** A fresh flat record (tag [Free], nop fields, embedded cell at
    generation 0) with [self] knotted to its own [Flat] block. *)

val reset_flat : flat -> unit
(** Reset to tag [Free] for return to the pool: drops captured
    references, bumps [gen], recycles the embedded cell (stale awaiters
    of the previous use get [Cell.Stale]) and refreshes [cgen]. *)

val pp : Format.formatter -> t -> unit
val pp_tag : Format.formatter -> tag -> unit
