(* Public surface of the distributed runtime (re-exported as
   [Scoop.Remote]): the hosting half ([listen]) and the client half
   ([connect], a configuration you hand to [Runtime.run]).

   The same program runs against either endpoint unmodified:

     let main rt =
       let p = Scoop.Runtime.processor rt in
       Scoop.Runtime.separate rt p (fun reg -> ...)

     (* in-process *)   Scoop.Runtime.run main
     (* distributed *)  Scoop.Runtime.run ~config:(Remote.connect [addr]) main

   with the caveat that shipped closures execute against the *node's*
   module-level globals (Marshal.Closures, same binary on both sides). *)

exception Remote_error = Remote_proto.Remote_error
exception Connection_lost = Remote_proto.Connection_lost

let connect addrs = Config.remote addrs

(* Host handlers at [addr] and serve remote clients until one of them
   sends the shutdown request ([Runtime.shutdown_nodes] client-side).
   Blocks the calling process: this *is* the node's main loop. *)
let listen ?(domains = 1) ?(config = Config.qoq) addr =
  let config = Config.with_listen addr (Config.with_name "node" config) in
  Runtime.run ~domains ~config (fun rt -> Node.serve rt addr)

let shutdown_nodes = Runtime.shutdown_nodes
