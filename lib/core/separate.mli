(** Separate blocks: reserve handlers, run a body with registrations, and
    release (paper §2.1, §2.4, §3.2–3.3).

    These functions are the internals behind {!Runtime.separate} and
    friends, which supply the context. *)

val with1 : Ctx.t -> Processor.t -> (Registration.t -> 'a) -> 'a
(** Single-handler separate block (the optimized case of Fig. 8). *)

val with2 :
  Ctx.t -> Processor.t -> Processor.t ->
  (Registration.t -> Registration.t -> 'a) -> 'a
(** Two-handler atomic reservation (Fig. 11). *)

val with_list :
  Ctx.t -> Processor.t list -> (Registration.t list -> 'a) -> 'a
(** Atomic multi-handler reservation; registrations are returned in the
    same order as the argument processors.
    @raise Invalid_argument if a processor appears twice. *)

val with_when :
  Ctx.t ->
  Processor.t ->
  pred:(Registration.t -> bool) ->
  (Registration.t -> 'a) ->
  'a
(** Separate block with a wait condition: reserve, evaluate [pred]; when
    it fails, release, yield and retry.  [pred] and the body run under the
    same registration, so the condition still holds when the body starts. *)

val with_list_when :
  Ctx.t ->
  Processor.t list ->
  pred:(Registration.t list -> bool) ->
  (Registration.t list -> 'a) ->
  'a
