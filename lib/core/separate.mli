(** Separate blocks: reserve handlers, run a body with registrations, and
    release (paper §2.1, §2.4, §3.2–3.3).

    These functions are the internals behind {!Runtime.separate} and
    friends, which supply the context.  Named by arity: {!one}, {!two},
    {!many}, plus the wait-condition variants {!when_} and {!many_when}.
    The historical [with1]/[with2]/[with_list]/[with_when]/
    [with_list_when] spellings remain as deprecated aliases. *)

val one : Ctx.t -> Processor.t -> (Registration.t -> 'a) -> 'a
(** Single-handler separate block (the optimized case of Fig. 8). *)

val two :
  Ctx.t -> Processor.t -> Processor.t ->
  (Registration.t -> Registration.t -> 'a) -> 'a
(** Two-handler atomic reservation (Fig. 11), with a dedicated pairwise
    entry path — the registrations are passed as two typed arguments, not
    destructured from a list.
    @raise Invalid_argument if both arguments are the same processor. *)

val many :
  Ctx.t -> Processor.t list -> (Registration.t list -> 'a) -> 'a
(** Atomic multi-handler reservation; registrations are returned in the
    same order as the argument processors.
    @raise Invalid_argument if a processor appears twice. *)

val when_ :
  Ctx.t ->
  Processor.t ->
  pred:(Registration.t -> bool) ->
  (Registration.t -> 'a) ->
  'a
(** Separate block with a wait condition: reserve, evaluate [pred]; when
    it fails, release, yield and retry under exponential backoff.  [pred]
    and the body run under the same registration, so the condition still
    holds when the body starts. *)

val many_when :
  Ctx.t ->
  Processor.t list ->
  pred:(Registration.t list -> bool) ->
  (Registration.t list -> 'a) ->
  'a

(** {1 Deprecated aliases}

    The original names, kept for source compatibility. *)

val with1 : Ctx.t -> Processor.t -> (Registration.t -> 'a) -> 'a
[@@ocaml.deprecated "use Separate.one"]

val with2 :
  Ctx.t -> Processor.t -> Processor.t ->
  (Registration.t -> Registration.t -> 'a) -> 'a
[@@ocaml.deprecated "use Separate.two"]

val with_list :
  Ctx.t -> Processor.t list -> (Registration.t list -> 'a) -> 'a
[@@ocaml.deprecated "use Separate.many"]

val with_when :
  Ctx.t ->
  Processor.t ->
  pred:(Registration.t -> bool) ->
  (Registration.t -> 'a) ->
  'a
[@@ocaml.deprecated "use Separate.when_"]

val with_list_when :
  Ctx.t ->
  Processor.t list ->
  pred:(Registration.t list -> bool) ->
  (Registration.t list -> 'a) ->
  'a
[@@ocaml.deprecated "use Separate.many_when"]
