(** Separate blocks: reserve handlers, run a body with registrations, and
    release (paper §2.1, §2.4, §3.2–3.3).

    These functions are the internals behind {!Runtime.separate} and
    friends, which supply the context.  Named by arity: {!one}, {!two},
    {!many}, plus the wait-condition variants {!when_} and {!many_when}.

    Every block re-surfaces poison at exit (SCOOP's dirty-processor
    rule): if a registration was dirtied by a failed asynchronous call,
    the block raises {!Registration.Handler_failure} after the body has
    completed normally and the handlers are released.  A body that
    raises on its own keeps its exception — the poison check never runs
    inside the release path.

    [?timeout] bounds the {e blocking} part of reservation — handler-lock
    acquisition in lock mode, and for the wait-condition variants the
    whole retry loop (the deadline is absolute, fixed at entry).
    Queue-of-queues reservation is one asynchronous enqueue and never
    waits, so plain blocks ignore the deadline there.  At the deadline
    the block raises {!Qs_sched.Timer.Timeout} ([Scoop.Timeout]) with no
    handler left reserved. *)

val one : ?timeout:float -> Ctx.t -> Processor.t -> (Registration.t -> 'a) -> 'a
(** Single-handler separate block (the optimized case of Fig. 8). *)

val two :
  ?timeout:float -> Ctx.t -> Processor.t -> Processor.t ->
  (Registration.t -> Registration.t -> 'a) -> 'a
(** Two-handler atomic reservation (Fig. 11), with a dedicated pairwise
    entry path — the registrations are passed as two typed arguments, not
    destructured from a list.
    @raise Invalid_argument if both arguments are the same processor.
    @raise Remote_proto.Remote_error if either processor is a remote
    proxy (checked first: multi-reservation is a local protocol). *)

val many :
  ?timeout:float -> Ctx.t -> Processor.t list -> (Registration.t list -> 'a) -> 'a
(** Atomic multi-handler reservation; registrations are returned in the
    same order as the argument processors.
    @raise Invalid_argument if a processor appears twice.
    @raise Remote_proto.Remote_error if any processor is a remote proxy
    (checked before any queue insertion or lock acquisition, so a
    rejected mixed reservation leaves nothing reserved). *)

val when_ :
  ?timeout:float ->
  Ctx.t ->
  Processor.t ->
  pred:(Registration.t -> bool) ->
  (Registration.t -> 'a) ->
  'a
(** Separate block with a wait condition: reserve, evaluate [pred]; when
    it fails, release, yield and retry under exponential backoff.  [pred]
    and the body run under the same registration, so the condition still
    holds when the body starts. *)

val many_when :
  ?timeout:float ->
  Ctx.t ->
  Processor.t list ->
  pred:(Registration.t list -> bool) ->
  (Registration.t list -> 'a) ->
  'a

(**/**)

val enter_one : ?deadline:float -> Ctx.t -> Processor.t -> Registration.t
(** Reserve one handler without a scoped body — internal; the node's
    serve loop holds registrations open across many incoming wire
    messages, so its block structure cannot be a single OCaml scope.
    Pair with {!exit_one}. *)

val exit_one : Ctx.t -> Registration.t -> unit
(** Close a registration obtained from {!enter_one} (logs End, releases
    the handler lock in lock mode).  Does not re-surface poison — callers
    check {!Registration.poisoned} themselves. *)
