(** Runtime optimization configurations (paper §4).

    Each preset corresponds to a column of Tables 1–2 / Figs. 16–17:

    - {!none}: the original lock-based SCOOP runtime, packaged queries.
    - {!dynamic}: + client-side query execution with dynamic sync
      coalescing (§3.4.1).
    - {!static_}: + client-side query execution; benchmarks use kernels
      with syncs hoisted by the static pass (§3.4.2).
    - {!qoq}: the queue-of-queues communication structure alone (§2.3).
    - {!all}: every optimization combined (the SCOOP/Qs runtime).

    {!eve_base} and {!eve_qs} model the EVE retrofit experiment (§4.5). *)

type t = {
  name : string;
  qoq : bool;
  client_query : bool;
  dyn_sync : bool;
  hoisted : bool;
  eve : bool;
}

val none : t
val dynamic : t
val static_ : t
val qoq : t
val all : t
val eve_base : t
val eve_qs : t

val presets : t list
(** The five columns of the optimization evaluation, in paper order. *)

val by_name : string -> t option
val pp : Format.formatter -> t -> unit
