(** Runtime optimization configurations (paper §4).

    Each preset corresponds to a column of Tables 1–2 / Figs. 16–17:

    - {!none}: the original lock-based SCOOP runtime, packaged queries.
    - {!dynamic}: + client-side query execution with dynamic sync
      coalescing (§3.4.1).
    - {!static_}: + client-side query execution; benchmarks use kernels
      with syncs hoisted by the static pass (§3.4.2).
    - {!qoq}: the queue-of-queues communication structure alone (§2.3).
    - {!all}: every optimization combined (the SCOOP/Qs runtime).

    {!eve_base} and {!eve_qs} model the EVE retrofit experiment (§4.5).

    Orthogonal to the presets, [mailbox], [batch] and [spsc] select the
    request path: which communication structure a processor uses, how
    many requests its handler loop drains per wakeup, and which SPSC
    queue backs the private queues. *)

type t = {
  name : string;
  mailbox : [ `Qoq | `Direct ];
      (** queue-of-queues (Fig. 4) vs lock + single request queue (Fig. 2) *)
  batch : int;
      (** max requests a handler drains per wakeup (>= 1); 1 reproduces
          the paper's one-dequeue-per-iteration handler loop *)
  spsc : [ `Linked | `Ring ];
      (** private-queue backing store (§3.1 ablation) *)
  client_query : bool;
  dyn_sync : bool;
  hoisted : bool;
  eve : bool;
  default_deadline : float option;
      (** deadline (seconds) applied to blocking queries and syncs that do
          not pass an explicit [?timeout]; [None] (every preset) = wait
          forever *)
  bound : int;
      (** admission bound: max requests in flight per handler before
          [overflow] applies; [0] (every preset) = unbounded *)
  overflow : [ `Block | `Fail | `Shed_oldest ];
      (** policy at the bound: back off until the handler drains ([`Block],
          the default), raise [Scoop.Overloaded] at admission ([`Fail]), or
          admit and shed the oldest pending request ([`Shed_oldest]) *)
  pools : string list;
      (** extra named scheduler pools created by [Runtime.run] beyond the
          always-present ["default"] ([[]] in every preset) *)
  pool : string option;
      (** pool new processors' handler fibers are pinned to by default;
          [None] (every preset) = the spawner's pool *)
  pooling : bool;
      (** pooled flat request representation on the arity-named API
          ([true] in every preset); [false] forces the packaged-closure
          path everywhere — a debugging / differential-testing knob
          that also disables the handler-side drained hint feeding
          dynamic sync elision *)
}

val default_batch : int
(** Default [batch] of every preset (16). *)

val none : t
val dynamic : t
val static_ : t
val qoq : t
val all : t
val eve_base : t
val eve_qs : t

val presets : t list
(** The five columns of the optimization evaluation, in paper order. *)

val by_name : string -> t option

val uses_qoq : t -> bool
(** [t.mailbox = `Qoq]. *)

val mailbox_of_string : string -> [ `Qoq | `Direct ] option
(** ["qoq"] / ["direct"]. *)

val spsc_of_string : string -> [ `Linked | `Ring ] option
(** ["linked"] / ["ring"]. *)

val overflow_of_string : string -> [ `Block | `Fail | `Shed_oldest ] option
(** ["block"] / ["fail"] / ["shed"]. *)

val pp : Format.formatter -> t -> unit
