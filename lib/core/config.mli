(** Runtime optimization configurations (paper §4).

    Each preset corresponds to a column of Tables 1–2 / Figs. 16–17:

    - {!none}: the original lock-based SCOOP runtime, packaged queries.
    - {!dynamic}: + client-side query execution with dynamic sync
      coalescing (§3.4.1).
    - {!static_}: + client-side query execution; benchmarks use kernels
      with syncs hoisted by the static pass (§3.4.2).
    - {!qoq}: the queue-of-queues communication structure alone (§2.3).
    - {!all}: every optimization combined (the SCOOP/Qs runtime).

    {!eve_base} and {!eve_qs} model the EVE retrofit experiment (§4.5).

    Orthogonal to the presets, [mailbox], [batch] and [spsc] select the
    request path: which communication structure a processor uses, how
    many requests its handler loop drains per wakeup, and which SPSC
    queue backs the private queues. *)

type addr = Unix_sock of string | Tcp of string * int
(** A node address: a unix-domain socket path or a TCP host/port. *)

type endpoint =
  | In_process
      (** every preset: processors live in this process (the paper's
          runtime) *)
  | Listen of addr
      (** host handlers here and serve remote clients (the [qs node]
          side; see [Scoop.Remote.listen]) *)
  | Connect of addr list
      (** processors are client-side proxies to these nodes; with
          several addresses, processor [id] is routed to node
          [id mod length addrs] (static shard map) *)

type t = {
  name : string;
  mailbox : [ `Qoq | `Direct ];
      (** queue-of-queues (Fig. 4) vs lock + single request queue (Fig. 2) *)
  batch : int;
      (** max requests a handler drains per wakeup (>= 1); 1 reproduces
          the paper's one-dequeue-per-iteration handler loop *)
  spsc : [ `Linked | `Ring ];
      (** private-queue backing store (§3.1 ablation) *)
  client_query : bool;
  dyn_sync : bool;
  hoisted : bool;
  eve : bool;
  default_deadline : float option;
      (** deadline (seconds) applied to blocking queries and syncs that do
          not pass an explicit [?timeout]; [None] (every preset) = wait
          forever *)
  bound : int;
      (** admission bound: max requests in flight per handler before
          [overflow] applies; [0] (every preset) = unbounded *)
  overflow : [ `Block | `Fail | `Shed_oldest ];
      (** policy at the bound: back off until the handler drains ([`Block],
          the default), raise [Scoop.Overloaded] at admission ([`Fail]), or
          admit and shed the oldest pending request ([`Shed_oldest]) *)
  pools : string list;
      (** extra named scheduler pools created by [Runtime.run] beyond the
          always-present ["default"] ([[]] in every preset) *)
  pool : string option;
      (** pool new processors' handler fibers are pinned to by default;
          [None] (every preset) = the spawner's pool *)
  pooling : bool;
      (** pooled flat request representation on the arity-named API
          ([true] in every preset); [false] forces the packaged-closure
          path everywhere — a debugging / differential-testing knob
          that also disables the handler-side drained hint feeding
          dynamic sync elision *)
  endpoint : endpoint;
      (** where processors live ({!In_process} in every preset) *)
  trace : bool;
      (** record runtime events even when no explicit sink is passed
          (equivalent to the old [Runtime.create ~trace:true]) *)
}

val default_batch : int
(** Default [batch] of every preset (16). *)

val none : t
val dynamic : t
val static_ : t
val qoq : t
val all : t
val eve_base : t
val eve_qs : t

val presets : t list
(** The five columns of the optimization evaluation, in paper order. *)

val remote : addr list -> t
(** Client half of the distributed runtime: {!qoq} with
    [endpoint = Connect addrs].  Remote registrations always use the
    packaged wire path; local processors of the same runtime keep the
    queue-of-queues structure. *)

val node : addr -> t
(** Hosting half: {!qoq} with [endpoint = Listen addr].  Node configs
    must use the queue-of-queues mailbox — a Direct-mode reservation
    holds the handler lock, which would head-of-line block the single
    serve fiber multiplexing a connection. *)

val by_name : string -> t option
(** Preset lookup by [name]; additionally understands the remote forms
    ["connect:ADDR[,ADDR...]"] and ["listen:ADDR"] with [ADDR] one of
    ["unix:PATH"] / ["tcp:HOST:PORT"] (see {!addr_of_string}). *)

(** {2 Builders}

    Chainable setters replacing the optional-argument sprawl that used
    to live on [Runtime.create]/[Runtime.run]:

    {[ Config.qoq |> Config.with_deadline 0.5 |> Config.with_bound 64 ]}

    Value first, config last, so [|>] chains read left-to-right; each
    validates at build time what the old runtime argument validated at
    run time ([Invalid_argument] on a bad value). *)

val with_name : string -> t -> t
val with_mailbox : [ `Qoq | `Direct ] -> t -> t

val with_batch : int -> t -> t
(** @raise Invalid_argument if the batch is < 1. *)

val with_spsc : [ `Linked | `Ring ] -> t -> t
val with_client_query : bool -> t -> t
val with_dyn_sync : bool -> t -> t
val with_hoisted : bool -> t -> t
val with_eve : bool -> t -> t

val with_deadline : float -> t -> t
(** Default deadline (seconds) for blocking queries and syncs without an
    explicit [?timeout].  @raise Invalid_argument if not > 0. *)

val with_no_deadline : t -> t

val with_bound : int -> t -> t
(** Admission bound per handler; [0] = unbounded.
    @raise Invalid_argument if negative. *)

val with_overflow : [ `Block | `Fail | `Shed_oldest ] -> t -> t
val with_pools : string list -> t -> t
val with_pool : string -> t -> t
val with_default_pool : t -> t
val with_pooling : bool -> t -> t
val with_trace : bool -> t -> t
val with_endpoint : endpoint -> t -> t
val with_listen : addr -> t -> t

val with_connect : addr list -> t -> t
(** @raise Invalid_argument on an empty address list. *)

(** {2 Addresses} *)

val addr_to_string : addr -> string
(** ["unix:PATH"] / ["tcp:HOST:PORT"]. *)

val addr_of_string : string -> addr option
(** Inverse of {!addr_to_string}. *)

val endpoint_to_string : endpoint -> string
(** ["in-process"], ["listen:ADDR"] or ["connect:ADDR[,ADDR...]"]. *)

val uses_qoq : t -> bool
(** [t.mailbox = `Qoq]. *)

val mailbox_of_string : string -> [ `Qoq | `Direct ] option
(** ["qoq"] / ["direct"]. *)

val spsc_of_string : string -> [ `Linked | `Ring ] option
(** ["linked"] / ["ring"]. *)

val overflow_of_string : string -> [ `Block | `Fail | `Shed_oldest ] option
(** ["block"] / ["fail"] / ["shed"]. *)

val pp : Format.formatter -> t -> unit
(** The preset name, suffixed with ["@listen:..."]/["@connect:..."]
    when the endpoint is not {!In_process}. *)
