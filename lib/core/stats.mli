(** Runtime instrumentation counters (paper §7 "future work": detailed
    measurement of internal runtime components).

    One record per runtime; all counters are atomics safe to bump from any
    fiber.  Use {!snapshot} and {!diff} to attribute counts to a region of
    execution. *)

type t = {
  processors : int Atomic.t;
  reservations : int Atomic.t;
  multi_reservations : int Atomic.t;
  calls : int Atomic.t;
  queries : int Atomic.t;
  packaged_queries : int Atomic.t;
  syncs_sent : int Atomic.t;
  syncs_elided : int Atomic.t;
  eve_lookups : int Atomic.t;
  wait_retries : int Atomic.t;
  handler_wakeups : int Atomic.t;
  batched_requests : int Atomic.t;
  ends_drained : int Atomic.t;
}

val create : unit -> t

type snapshot = {
  s_processors : int;
  s_reservations : int;
  s_multi_reservations : int;
  s_calls : int;
  s_queries : int;
  s_packaged_queries : int;
  s_syncs_sent : int;
  s_syncs_elided : int;
  s_eve_lookups : int;
  s_wait_retries : int;
  s_handler_wakeups : int;
  s_batched_requests : int;
  s_ends_drained : int;
}

val snapshot : t -> snapshot
val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier] is the per-field difference. *)

val mean_batch : snapshot -> float
(** Mean requests delivered per handler wakeup
    ([s_batched_requests /. s_handler_wakeups]; [0.] before any wakeup).
    1.0 is the old one-request-per-park behaviour; larger means the
    batched drain is amortizing park/unpark transitions. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
