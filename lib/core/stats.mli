(** Runtime instrumentation counters (paper §7 "future work": detailed
    measurement of internal runtime components).

    One record per runtime; since the qs_obs refactor each field is a
    [Qs_obs.Counter.t] registered by name in the runtime's counter
    registry, so the same counters are visible both through the
    historical {!snapshot}/{!diff} record view and through the generic
    registry view ({!assoc}, used by machine-readable outputs).  Bump a
    counter with [Qs_obs.Counter.incr]/[add] from any fiber. *)

type t = {
  registry : Qs_obs.Counter.registry;
  processors : Qs_obs.Counter.t;
  reservations : Qs_obs.Counter.t;
  multi_reservations : Qs_obs.Counter.t;
  calls : Qs_obs.Counter.t;
  queries : Qs_obs.Counter.t;
  packaged_queries : Qs_obs.Counter.t;
  requests_flat : Qs_obs.Counter.t;
      (** requests issued in the pooled flat representation (no closure
          packaging) rather than as heap-packaged closures *)
  requests_pooled : Qs_obs.Counter.t;
      (** flat request records reused from a processor's free list *)
  pool_misses : Qs_obs.Counter.t;
      (** flat request records freshly allocated because the free list
          was empty (pool warm-up, or more requests in flight than the
          pool cap) *)
  promises_created : Qs_obs.Counter.t;
      (** pipelined queries issued ({!Registration.query_async}) *)
  promises_fulfilled : Qs_obs.Counter.t;
      (** promise results produced by handler loops *)
  promises_ready : Qs_obs.Counter.t;
      (** promises already resolved at first force — fully overlapped
          round trips (registry name [promises_ready_on_first_poll]) *)
  promises_blocked : Qs_obs.Counter.t;
      (** promises whose first force blocked the client (registry name
          [promises_forced_blocking]) *)
  syncs_sent : Qs_obs.Counter.t;
  syncs_elided : Qs_obs.Counter.t;
  eve_lookups : Qs_obs.Counter.t;
  wait_retries : Qs_obs.Counter.t;
  wait_backoffs : Qs_obs.Counter.t;
      (** wait-condition retries performed under an escalated backoff
          (pause > 1 relax unit) — the contention detail of
          [wait_retries] *)
  handler_wakeups : Qs_obs.Counter.t;
  batched_requests : Qs_obs.Counter.t;
  ends_drained : Qs_obs.Counter.t;
  handler_failures : Qs_obs.Counter.t;
      (** handler-side closure exceptions caught and routed into the
          request's typed completion *)
  poisoned_registrations : Qs_obs.Counter.t;
      (** registrations dirtied by a failed asynchronous call (SCOOP's
          dirty-processor rule) *)
  rejected_promises : Qs_obs.Counter.t;
      (** pipelined query promises resolved with an exception *)
  aborted_requests : Qs_obs.Counter.t;
      (** packaged requests discarded unexecuted by {!Processor.abort} *)
  timer_arms : Qs_obs.Counter.t;
      (** deadline timers armed by the request path (timed queries and
          syncs) — the per-operation cost knob of the timeout ablation *)
  timeouts_fired : Qs_obs.Counter.t;
      (** armed request-path deadlines that expired before fulfilment *)
  deadline_exceeded : Qs_obs.Counter.t;
      (** client operations that raised [Scoop.Timeout] (includes
          wait-condition and reservation deadlines, which bound without
          arming a timer) *)
  shed_requests : Qs_obs.Counter.t;
      (** requests refused at admission ([`Fail]) or shed from the
          backlog ([`Shed_oldest]) by a bounded mailbox *)
  remote_requests : Qs_obs.Counter.t;
      (** calls, queries and syncs shipped over a node connection *)
  remote_replies : Qs_obs.Counter.t;
      (** typed completions received back from a node *)
  remote_failures : Qs_obs.Counter.t;
      (** lost connections and wire-level protocol errors *)
  hist : Qs_obs.Histogram.registry;
      (** latency distributions (ns), one registry per runtime — the
          histogram sibling of [registry] *)
  h_call_local : Qs_obs.Histogram.t;
      (** local asynchronous call: client issue to handler completion *)
  h_query_local : Qs_obs.Histogram.t;
      (** local blocking query (any flavour): issue to result *)
  h_pipelined_local : Qs_obs.Histogram.t;
      (** local pipelined query: issue to promise fulfilment *)
  h_call_remote : Qs_obs.Histogram.t;
      (** remote asynchronous call: issue to wire handoff (fire and
          forget — the reply carries no completion to time against) *)
  h_query_remote : Qs_obs.Histogram.t;
      (** remote blocking round trips (queries {e and} syncs): issue to
          demuxed reply — the distribution that replaced the old summed
          [remote_rtt_ns] counter *)
  h_pipelined_remote : Qs_obs.Histogram.t;
      (** remote pipelined query: issue to reply-driven fulfilment *)
  h_queue_wait : Qs_obs.Histogram.t;
      (** local requests: admission to the start of handler service *)
  h_exec : Qs_obs.Histogram.t;
      (** local requests: handler service start to completion *)
}

val create : unit -> t
val registry : t -> Qs_obs.Counter.registry

val assoc : t -> Qs_obs.Counter.snapshot
(** Name→value snapshot of every registered counter (registration
    order); the machine-readable sibling of {!snapshot}. *)

val histograms : t -> Qs_obs.Histogram.registry

val hist_assoc : t -> Qs_obs.Histogram.snapshot
(** Name→distribution snapshot of every latency histogram
    (registration order), for the bench JSON and trace exports. *)

type snapshot = {
  s_processors : int;
  s_reservations : int;
  s_multi_reservations : int;
  s_calls : int;
  s_queries : int;
  s_packaged_queries : int;
  s_requests_flat : int;
  s_requests_pooled : int;
  s_pool_misses : int;
  s_promises_created : int;
  s_promises_fulfilled : int;
  s_promises_ready : int;
  s_promises_blocked : int;
  s_syncs_sent : int;
  s_syncs_elided : int;
  s_eve_lookups : int;
  s_wait_retries : int;
  s_wait_backoffs : int;
  s_handler_wakeups : int;
  s_batched_requests : int;
  s_ends_drained : int;
  s_handler_failures : int;
  s_poisoned_registrations : int;
  s_rejected_promises : int;
  s_aborted_requests : int;
  s_timer_arms : int;
  s_timeouts_fired : int;
  s_deadline_exceeded : int;
  s_shed_requests : int;
  s_remote_requests : int;
  s_remote_replies : int;
  s_remote_failures : int;
}

val snapshot : t -> snapshot
val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier] is the per-field difference. *)

val mean_batch : snapshot -> float
(** Mean requests delivered per handler wakeup
    ([s_batched_requests /. s_handler_wakeups]; [0.] before any wakeup).
    1.0 is the old one-request-per-park behaviour; larger means the
    batched drain is amortizing park/unpark transitions. *)

val overlap_ratio : snapshot -> float
(** Fraction of forced promises that were already resolved when first
    observed ([s_promises_ready / (s_promises_ready +
    s_promises_blocked)]; [0.] before any force).  1.0 means every
    pipelined round trip was fully overlapped with other work. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
