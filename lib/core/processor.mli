(** SCOOP processors (handlers): one fiber per processor running the
    handler loop of paper Fig. 7.

    The loop is a single generic drain loop parameterized by a {e mailbox}
    — a blocking batched view of the processor's request stream.  The
    configuration selects what backs it: the queue-of-queues of Fig. 4
    ([`Qoq]) or the original lock-plus-single-queue structure of Fig. 2
    ([`Direct]).  Each wakeup drains up to [Config.batch] requests.

    Create processors through {!Runtime.processor}; client-side access goes
    through {!Separate} blocks and {!Registration} operations, which use the
    mode-specific operations below. *)

type pq = Request.t Qs_sched.Bqueue.Spsc.t
(** A private queue of requests. *)

type t

val create :
  ?sink:Qs_obs.Sink.t -> id:int -> config:Config.t -> stats:Stats.t -> unit -> t
(** Create a processor and spawn its handler fiber.  Must run inside a
    scheduler.  With [sink], the handler records one ["core"]/["batch"]
    complete span per drained batch (track = processor id, arg = batch
    size). *)

val id : t -> int

val reserve : t -> Qs_queues.Spinlock.t
(** The multi-reservation spinlock (§3.3). *)

(** {1 Queue-of-queues mode ([`Qoq])}

    These raise [Invalid_argument] on a [`Direct]-mode processor. *)

val take_private_queue : t -> pq
(** A fresh or recycled private queue for a new registration. *)

val enqueue_private_queue : t -> pq -> unit
(** Append a private queue to the queue-of-queues (the separate rule). *)

(** {1 Lock mode ([`Direct])}

    These raise [Invalid_argument] on a [`Qoq]-mode processor. *)

val lock_handler : t -> unit
(** Acquire the handler lock (blocks the client fiber). *)

val unlock_handler : t -> unit

val enqueue_direct : t -> Request.t -> unit
(** Log a request into the handler's single request queue. *)

(** {1 Lifecycle} *)

val shutdown : t -> unit
(** Close the processor's request stream: the handler fiber exits once all
    pending work is drained.  Clients must not register afterwards. *)

val compare_by_id : t -> t -> int
