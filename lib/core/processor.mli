(** SCOOP processors (handlers): one fiber per processor running the
    handler loop of paper Fig. 7.

    Create processors through {!Runtime.processor}; client-side access goes
    through {!Separate} blocks and {!Registration} operations — the fields
    exposed here are for the runtime's own modules and for tests. *)

type pq = Request.t Qs_sched.Bqueue.Spsc.t
(** A private queue of requests. *)

type t = {
  id : int;
  config : Config.t;
  stats : Stats.t;
  qoq : pq Qs_sched.Bqueue.Mpsc.t; (** queue-of-queues (qoq mode) *)
  direct : Request.t Qs_sched.Bqueue.Mpsc.t; (** single request queue (lock mode) *)
  lock : Qs_sched.Fiber_mutex.t; (** handler lock (lock mode) *)
  reserve : Qs_queues.Spinlock.t; (** multi-reservation spinlock (§3.3) *)
  cache : pq Qs_queues.Treiber_stack.t; (** recycled private queues *)
  shadow : int array;
  mutable shadow_top : int;
}

val create : id:int -> config:Config.t -> stats:Stats.t -> t
(** Create a processor and spawn its handler fiber.  Must run inside a
    scheduler. *)

val id : t -> int

val take_private_queue : t -> pq
(** A fresh or recycled private queue for a new registration. *)

val enqueue_private_queue : t -> pq -> unit
(** Append a private queue to the queue-of-queues (the separate rule). *)

val shutdown : t -> unit
(** Close the processor's request stream: the handler fiber exits once all
    pending work is drained.  Clients must not register afterwards. *)

val compare_by_id : t -> t -> int
